// Compile-as-a-service: a multiplexing daemon over resilience::compile.
//
// The paper frames mapping as the repeated, expensive step between every
// algorithm and every device; at service scale the same (circuit, device,
// pipeline, seed) tuples arrive over and over from many clients. The
// CompileService is the long-running front door for that workload:
//
//   request (JSON line)                 response (JSON line)
//   ------------------                  --------------------
//   {"op":"compile","client":"a",      {"id":"r1","status":"ok",
//    "id":"r1","device":"qx4",    -->   "cache":"miss","rung":0,
//    "qasm":"OPENQASM 2.0;...",         "winner":"greedy+sabre",
//    "seed":7,"deadline_ms":500}        "fingerprint":"<digest>",...}
//
//   * multiplexing: dispatcher threads drain per-client FIFO queues in
//     round-robin order, so a client flooding requests cannot starve its
//     neighbours — each full rotation serves every waiting client once.
//     Compiles themselves fan rung-0 portfolio races onto ONE shared
//     engine ThreadPool (pool sharing, not per-request pools);
//   * admission: every cold request passes the same
//     ResilientCompiler::assess() path that resilience::compile and
//     compile_batch use — one AdmissionGuard per device, so reject and
//     down-tier behaviour cannot drift between entry points;
//   * caching: answers come from a sharded content-addressed ResultCache
//     (service/cache.hpp) keyed on the canonical request text — circuit
//     re-serialized as OpenQASM, device name, PipelineSpec::canonical_json
//     (so JSON key order or elided defaults cannot split the cache), seed
//     and deadline. Identical in-flight requests coalesce onto a single
//     compile (single-flight); repeated requests return in microseconds;
//   * determinism: a cache hit replays the byte-identical outcome
//     fingerprint the cold path produced — resilience outcomes are
//     byte-deterministic for a fixed seed, so hit and cold responses are
//     indistinguishable (pinned across 1/2/8 dispatcher threads in
//     tests/test_service.cpp);
//   * disconnects: disconnect(client) flushes the client's queued
//     requests and drops its interest in in-flight compiles; a compile no
//     other client is waiting on is cancelled through the engine's
//     CancelToken parent-links (engine/cancel.hpp) and never cached;
//   * overload control: a global queue budget on top of the per-client
//     cap, deadline-aware shedding (a request whose predicted queue wait
//     already exceeds its deadline is answered `status:"shed"` with a
//     `retry_after_ms` hint instead of compiling doomed work), and a
//     brownout mode that down-tiers cold compiles to the cheap rung-2
//     pipeline while the queue stays hot — degraded answers are delivered
//     but never cached, so they cannot outlive the overload;
//   * circuit breakers: each device owns a resilience::CircuitBreaker;
//     consecutive Permanent/crash outcomes open it and further compiles
//     fast-fail `status:"unavailable"` (cache hits still serve) until
//     timed half-open probes succeed;
//   * graceful drain: drain(deadline_ms) stops admission, waits for
//     in-flight work, then cancels stragglers through the drain token —
//     qmap_serve wires SIGTERM/SIGINT to it so a supervisor restart never
//     drops an accepted request on the floor.
//
// Transport is a JSON-lines loop over any std::istream/std::ostream
// (serve()); the qmap_serve binary wires it to stdin/stdout or a Unix
// socket. Request lines are read under a byte cap (max_request_line_bytes)
// so a hostile client cannot balloon memory with one endless line.
// Metrics land under service.* (DESIGN.md §10, linted).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "arch/device.hpp"
#include "engine/thread_pool.hpp"
#include "ir/circuit.hpp"
#include "pass/spec.hpp"
#include "resilience/breaker.hpp"
#include "resilience/resilience.hpp"
#include "service/cache.hpp"

namespace qmap::service {

/// One parsed JSON-lines request. Unknown fields are rejected at parse so
/// a typo ("sead") fails loudly instead of silently compiling defaults.
struct ServiceRequest {
  /// "compile" (default), "stats", "disconnect", or "ping".
  std::string op = "compile";
  /// Echoed back verbatim so clients can correlate out-of-order responses.
  std::string id;
  /// Fairness/accounting identity; defaults to "anon".
  std::string client = "anon";
  /// Registered device name (compile op).
  std::string device;
  /// OpenQASM 2.0 source (compile op).
  std::string qasm;
  /// Pinned pipeline: the ladder starts at rung 1 running exactly this
  /// spec (with the never-fails rung below it) instead of racing the
  /// portfolio. Absent = full portfolio race.
  std::optional<PipelineSpec> pipeline;
  std::uint64_t seed = 0xC0FFEE;
  /// 0 = the service default.
  double deadline_ms = 0.0;
  /// Bypass the cache entirely (no lookup, no store, no coalescing).
  bool no_cache = false;
  /// Attach the full CompileOutcome JSON to the response.
  bool verbose = false;

  /// Parses one request object; throws MappingError/ParseError on unknown
  /// fields or wrong types.
  [[nodiscard]] static ServiceRequest from_json(const Json& json);
  [[nodiscard]] Json to_json() const;
};

struct ServiceResponse {
  std::string id;
  std::string client;
  /// "ok" | "error" | "rejected" | "cancelled" | "pong" | "stats" |
  /// "shed" (overload admission refused the request; retry after
  /// `retry_after_ms`) | "unavailable" (the device's circuit breaker is
  /// open; retry after `retry_after_ms`).
  std::string status;
  /// Compile ops: "hit" | "negative-hit" | "miss" | "coalesced" | "bypass".
  std::string cache;
  /// content_digest of the outcome fingerprint — byte-identical between a
  /// cold compile and every later cache hit of the same request.
  std::string fingerprint;
  int rung = -1;
  std::string winner;
  bool validated = false;
  /// Service-side latency (queue wait + compile or cache lookup).
  double wall_ms = 0.0;
  std::string error;
  /// Client backoff hint, serialized only when > 0 (shed/unavailable).
  double retry_after_ms = 0.0;
  /// "brownout" when the answer came from an overload-down-tiered compile
  /// (rung 2, never cached); empty otherwise.
  std::string mode;
  /// stats op: cache/queue stats. verbose compile: full outcome JSON.
  Json payload;

  [[nodiscard]] Json to_json() const;
};

/// Overload-control knobs. The global budget and the predicted-wait model
/// gate admission in submit(); brownout is hysteresis on the global queue
/// depth. All of it is disabled by max_queued_total = 0.
struct OverloadConfig {
  /// Global cap on queued requests across all clients (0 = unlimited,
  /// which also disables brownout).
  std::size_t max_queued_total = 256;
  /// Floor for the retry_after_ms hint on shed/unavailable responses.
  double retry_after_ms = 100.0;
  /// Cold-start per-compile cost estimate feeding the predicted-wait
  /// model before any compile has been observed.
  double initial_cost_ms = 50.0;
  /// EMA weight for observed cold-compile cost (0 pins the estimate).
  double cost_ema_alpha = 0.2;
  /// Brownout enters when queued >= enter_fraction * max_queued_total...
  double brownout_enter_fraction = 0.75;
  /// ...and exits when queued <= exit_fraction * max_queued_total.
  double brownout_exit_fraction = 0.25;
  bool brownout_enabled = true;
};

/// One admission verdict from CompileService::assess_load().
struct LoadDecision {
  bool shed = false;
  /// Human-readable shed reason (becomes the response error).
  std::string reason;
  /// outstanding * cost_estimate / num_workers at decision time.
  double predicted_wait_ms = 0.0;
  /// Backoff hint (max of the configured floor and the predicted wait).
  double retry_after_ms = 0.0;
  /// True when brownout mode was active at decision time.
  bool brownout = false;
};

/// Result of CompileService::drain().
struct DrainReport {
  /// True when every outstanding request finished inside the deadline;
  /// false when the drain token had to cancel stragglers.
  bool clean = true;
  double wall_ms = 0.0;
};

struct ServiceConfig {
  /// Dispatcher threads draining the per-client queues. Deliberately
  /// separate from the compile pool: a dispatcher blocks while its
  /// request compiles or waits on a flight, workers in the compile pool
  /// never do.
  int num_workers = 2;
  /// Shared engine ThreadPool for rung-0 portfolio races
  /// (0 = hardware concurrency).
  int num_compile_threads = 0;
  /// Per-client queue cap; submits beyond it are rejected immediately
  /// ("queue full") instead of buffering without bound.
  std::size_t max_queued_per_client = 64;
  /// Deadline applied when a request carries none (0 = unlimited).
  double default_deadline_ms = 0.0;
  /// Result cache shape (the service owns the cache; cache.obs is
  /// overridden with `obs` below).
  CacheConfig cache;
  /// Base policy for every compile; per-request seed/deadline/pipeline/
  /// cancellation are overlaid per request.
  resilience::Policy policy;
  /// Overload admission / brownout knobs.
  OverloadConfig overload;
  /// Per-device circuit breaker shape (breaker.failure_threshold <= 0
  /// disables breakers entirely).
  resilience::BreakerConfig breaker;
  /// serve(): longest request line accepted, in bytes (0 = unlimited).
  /// Over-cap lines are discarded and answered status:"error" without
  /// wedging the connection.
  std::size_t max_request_line_bytes = std::size_t(1) << 20;
  /// Register qx4/qx5/surface7/surface17 at construction.
  bool register_builtin_devices = true;
  /// Metrics/trace sink (not owned; null disables recording).
  obs::Observer* obs = nullptr;
};

/// Canonical cache-key text for a compile request (exposed for tests and
/// tools): the parsed circuit re-serialized as OpenQASM (so source
/// whitespace/register names cannot split the cache), the device name, the
/// canonical pipeline JSON or "portfolio", seed and effective deadline.
[[nodiscard]] std::string canonical_request_text(const ServiceRequest& request,
                                                 const Circuit& circuit,
                                                 double effective_deadline_ms);

class CompileService {
 public:
  explicit CompileService(ServiceConfig config = {});
  /// Drains the queues (outstanding requests are answered), then joins.
  ~CompileService();

  CompileService(const CompileService&) = delete;
  CompileService& operator=(const CompileService&) = delete;

  /// Registers (or replaces) a device; builds its ResilientCompiler and
  /// shared AdmissionGuard eagerly.
  void register_device(Device device);
  [[nodiscard]] std::vector<std::string> device_names() const;

  /// Synchronous path: cache lookup / single-flight / admission / compile
  /// on the calling thread (rung-0 races still fan onto the shared pool).
  /// Thread-safe; this is what dispatcher workers run.
  [[nodiscard]] ServiceResponse handle(const ServiceRequest& request);

  /// Queued path: enqueues onto the client's FIFO queue and returns; a
  /// dispatcher picks it up in round-robin order and invokes `done`
  /// (on the dispatcher thread) with the response.
  void submit(ServiceRequest request,
              std::function<void(ServiceResponse)> done);
  [[nodiscard]] std::future<ServiceResponse> submit(ServiceRequest request);

  /// Flushes the client's queued requests (each answered "cancelled") and
  /// drops its interest in in-flight compiles; a flight with no remaining
  /// interested client is cancelled and not cached.
  void disconnect(const std::string& client);

  /// Overload admission verdict for a request carrying `deadline_ms`
  /// (0 = no deadline). submit() consults this before enqueueing; exposed
  /// so tools/benches can probe the shed decision without side effects.
  [[nodiscard]] LoadDecision assess_load(double deadline_ms) const;

  /// Graceful drain: stop admitting (further submits are shed with
  /// "service draining"), wait up to `deadline_ms` for outstanding
  /// requests, then cancel stragglers through the drain token and wait for
  /// them to flush. Every accepted request still gets its one response.
  /// Idempotent; deadline_ms <= 0 waits without forcing. qmap_serve calls
  /// this from its SIGTERM/SIGINT handler thread.
  DrainReport drain(double deadline_ms);

  /// True once drain() has begun (new submits are being shed).
  [[nodiscard]] bool draining() const;
  /// True while brownout mode is down-tiering cold compiles.
  [[nodiscard]] bool brownout_active() const noexcept;
  /// The named device's breaker state (Closed for unknown devices).
  [[nodiscard]] resilience::BreakerState breaker_state(
      const std::string& device) const;

  /// JSON-lines loop: one request per line from `in`, one response per
  /// line to `out` in completion order (correlate by id). Returns once
  /// `in` hits EOF and every accepted request was answered. Returns the
  /// number of lines consumed.
  int serve(std::istream& in, std::ostream& out);

  /// Blocks until every queued/in-flight request has been answered.
  void wait_idle();

  [[nodiscard]] ResultCache& cache() noexcept { return cache_; }
  [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }

 private:
  struct DeviceEntry {
    Device device;
    /// Base-policy supervisor: its assess() is the one admission path
    /// (shared with resilience::compile/compile_batch by construction).
    std::unique_ptr<resilience::ResilientCompiler> supervisor;
    /// Per-device breaker; cheap no-op when failure_threshold <= 0.
    std::unique_ptr<resilience::CircuitBreaker> breaker;
  };

  struct Pending {
    ServiceRequest request;
    std::function<void(ServiceResponse)> done;
  };

  struct ClientQueue {
    std::deque<Pending> pending;
  };

  void worker_loop();
  [[nodiscard]] ServiceResponse handle_compile(const ServiceRequest& request);
  [[nodiscard]] ServiceResponse stats_response(const ServiceRequest& request);
  [[nodiscard]] CachedOutcome run_compile(const DeviceEntry& entry,
                                          const ServiceRequest& request,
                                          const Circuit& circuit,
                                          double effective_deadline_ms,
                                          const CancelToken* cancel,
                                          bool brownout);
  /// Leader/bypass compile with crash containment and cost accounting;
  /// settles the breaker verdict is left to the caller (the cancelled
  /// path needs release(), not record()).
  [[nodiscard]] CachedOutcome guarded_compile(const DeviceEntry& entry,
                                              const ServiceRequest& request,
                                              const Circuit& circuit,
                                              double effective_deadline_ms,
                                              const CancelToken* cancel,
                                              bool brownout);
  void track_flight(const std::string& client,
                    const std::shared_ptr<ResultCache::Flight>& flight);
  void untrack_flight(const std::string& client,
                      const ResultCache::Flight* flight);
  void finish_one();
  /// Re-evaluates brownout hysteresis; requires queue_mutex_ held.
  void update_brownout_locked();
  /// Folds an observed cold-compile cost into the EMA estimate.
  void record_cost(double wall_ms);

  ServiceConfig config_;
  ResultCache cache_;
  ThreadPool compile_pool_;

  mutable std::mutex devices_mutex_;
  std::map<std::string, DeviceEntry> devices_;

  // Dispatch state: per-client FIFO queues drained round-robin.
  // (mutable: assess_load() is logically const but reads queued_.)
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::map<std::string, ClientQueue> queues_;
  /// Round-robin rotation of client names with waiting requests.
  std::deque<std::string> rotation_;
  std::size_t queued_ = 0;
  bool stopping_ = false;
  bool draining_ = false;
  std::vector<std::thread> workers_;

  // In-flight interest: client -> flights it is waiting on.
  std::mutex flights_mutex_;
  std::multimap<std::string, std::weak_ptr<ResultCache::Flight>> flights_;

  // Outstanding = queued + executing; serve()/wait_idle() block on zero.
  mutable std::mutex outstanding_mutex_;
  std::condition_variable outstanding_cv_;
  std::size_t outstanding_ = 0;

  // Overload state: EMA of cold-compile cost + brownout latch.
  mutable std::mutex cost_mutex_;
  double cost_estimate_ms_ = 0.0;  // seeded from overload.initial_cost_ms
  std::atomic<bool> brownout_{false};

  /// Parent token every leader/bypass compile links to; drain() fires it
  /// to cancel stragglers past the drain deadline.
  CancelToken drain_token_;
};

}  // namespace qmap::service
