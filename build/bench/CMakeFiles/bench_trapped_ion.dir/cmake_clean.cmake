file(REMOVE_RECURSE
  "CMakeFiles/bench_trapped_ion.dir/bench_trapped_ion.cpp.o"
  "CMakeFiles/bench_trapped_ion.dir/bench_trapped_ion.cpp.o.d"
  "bench_trapped_ion"
  "bench_trapped_ion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trapped_ion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
