// Delta-debugging circuit minimizer.
//
// A fuzzer counterexample is only useful once it is small: a 40-gate
// random circuit that breaks a router almost always contains a handful of
// gates that actually matter. The Shrinker runs ddmin-style reduction over
// the gate list — remove halves, then quarters, ... down to single gates,
// keeping every removal after which the failure predicate still fires —
// followed by removal of qubits that no remaining gate touches. The result
// is a local minimum: no single gate can be removed and no idle qubit
// remains, while the predicate still fails.
#pragma once

#include <cstddef>
#include <functional>

#include "engine/cancel.hpp"
#include "ir/circuit.hpp"

namespace qmap::verify {

struct ShrinkOptions {
  /// Hard cap on predicate evaluations (0 = unbounded). Each evaluation
  /// typically re-runs a full compile, so runaway shrinks are bounded.
  std::size_t max_tests = 2000;
  /// Also drop qubits no remaining gate touches and relabel the rest.
  bool drop_idle_qubits = true;
  /// Cooperative cancellation (engine/cancel.hpp), polled before every
  /// predicate evaluation: a deadline bounds ddmin like every other
  /// long-running pass. Throws CancelledError mid-shrink (the partially
  /// minimized circuit is discarded). Not owned; may be null.
  const CancelToken* cancel = nullptr;
};

class Shrinker {
 public:
  /// Returns true when the candidate circuit still exhibits the failure.
  /// The predicate must be deterministic (fix all seeds) or shrinking can
  /// wander; it must also tolerate any gate subset of the original.
  using Predicate = std::function<bool(const Circuit&)>;

  struct Result {
    Circuit circuit;                // the minimized failing circuit
    std::size_t original_gates = 0;
    std::size_t tests = 0;          // predicate evaluations spent
    int rounds = 0;                 // full ddmin passes until fixpoint
  };

  explicit Shrinker(ShrinkOptions options = {}) : options_(options) {}

  /// Minimizes `failing` (which must satisfy the predicate; throws
  /// MappingError otherwise, catching harness bugs early).
  [[nodiscard]] Result shrink(const Circuit& failing,
                              const Predicate& still_fails) const;

 private:
  ShrinkOptions options_;
};

/// Copy of `circuit` without the gates whose indices are listed in
/// `removed` (sorted or not); helper shared with tests.
[[nodiscard]] Circuit remove_gates(const Circuit& circuit,
                                   const std::vector<std::size_t>& removed);

/// Copy of `circuit` with qubits no gate touches removed and the remaining
/// qubits relabeled densely (order preserved). Width-0 circuits are kept
/// at width 1 so downstream passes stay happy.
[[nodiscard]] Circuit compact_qubits(const Circuit& circuit);

}  // namespace qmap::verify
