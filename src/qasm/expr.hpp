// Arithmetic expression evaluator for gate parameters: "pi/2", "-3*pi/4",
// "0.5*(1+2)". Supported: + - * / ^, parentheses, unary minus, numeric
// literals, and the constant pi.
#pragma once

#include <string_view>

namespace qmap {

/// Evaluates the expression; throws ParseError on malformed input.
[[nodiscard]] double eval_expression(std::string_view text);

}  // namespace qmap
