// Pass-pipeline suite (ctest -L pass; rerun under TSan by tier1.sh):
//   - facade-vs-PassManager parity: Compiler::compile must be byte-identical
//     (CompilationResult::fingerprint) to running the same PipelineSpec —
//     round-tripped through JSON text — directly on a PassManager, across
//     every placer x router pairing, three devices, and three seeds;
//   - ArchArtifacts equivalence with the lazy CouplingGraph caches;
//   - PipelineSpec JSON round-trips, aliases, and descriptive errors;
//   - custom pipelines (dropped/reordered stages), hook order, cancellation;
//   - concurrent reads of one shared artifacts bundle and the lazy
//     distance-matrix race the eager Device precompute is meant to close.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "arch/builtin.hpp"
#include "core/compiler.hpp"
#include "engine/cancel.hpp"
#include "engine/portfolio.hpp"
#include "pass/manager.hpp"
#include "workloads/workloads.hpp"

namespace qmap {
namespace {

Device parity_device(const std::string& name) {
  if (name == "qx4") return devices::ibm_qx4();
  if (name == "qx5") return devices::ibm_qx5();
  if (name == "s17") return devices::surface17();
  throw std::runtime_error("unknown device");
}

// Same strategy gates as the differential fuzzer (verify/fuzzer.cpp): the
// exponential strategies only on small devices, calibration/shuttle
// strategies only where the device supports them.
bool strategy_applies(const Device& device, const std::string& placer,
                      const std::string& router) {
  if (placer == "reliability" && !device.has_noise()) return false;
  if (placer == "exhaustive" && device.num_qubits() > 9) return false;
  if (router == "reliability" && !device.has_noise()) return false;
  if (router == "shuttle" && !device.supports_shuttling()) return false;
  if (router == "exact" && device.num_qubits() > 6) return false;
  return true;
}

struct ParityCase {
  std::string device;
  std::string placer;
  std::string router;
  std::uint64_t seed = 0;
};

std::string parity_name(const testing::TestParamInfo<ParityCase>& info) {
  std::string router = info.param.router;
  for (char& c : router) {
    if (c == '+') c = '_';
  }
  return info.param.device + "_" + info.param.placer + "_" + router + "_s" +
         std::to_string(info.param.seed);
}

std::vector<ParityCase> parity_cases() {
  std::vector<ParityCase> cases;
  for (const char* device_name : {"qx4", "qx5", "s17"}) {
    const Device device = parity_device(device_name);
    for (const std::string& placer : known_placers()) {
      for (const std::string& router : known_routers()) {
        if (!strategy_applies(device, placer, router)) continue;
        for (const std::uint64_t seed : {std::uint64_t{0xC0FFEE},
                                         std::uint64_t{1},
                                         std::uint64_t{42}}) {
          cases.push_back({device_name, placer, router, seed});
        }
      }
    }
  }
  return cases;
}

class FacadeSpecParity : public testing::TestWithParam<ParityCase> {};

// The tentpole's acceptance bar: the Compiler facade and an explicit
// PassManager run of the JSON-round-tripped spec must agree byte for byte —
// and when one path throws, the other must throw the same error.
TEST_P(FacadeSpecParity, FingerprintsAreByteIdentical) {
  const ParityCase& param = GetParam();
  const Device device = parity_device(param.device);
  const Circuit circuit = workloads::fig1_example();

  CompilerOptions options;
  options.placer = param.placer;
  options.router = param.router;
  options.seed = param.seed;
  const Compiler compiler(device, options);

  std::string facade_fingerprint;
  std::string facade_error;
  try {
    facade_fingerprint = compiler.compile(circuit).fingerprint();
  } catch (const std::exception& e) {
    facade_error = e.what();
  }

  const PipelineSpec spec =
      PipelineSpec::from_json_text(compiler.pipeline().to_json().dump());
  ASSERT_EQ(spec, compiler.pipeline());
  const PassManager manager(spec);
  PipelineRuntime runtime;
  runtime.seed = param.seed;
  runtime.artifacts = compiler.artifacts();

  std::string spec_fingerprint;
  std::string spec_error;
  try {
    spec_fingerprint = manager.run(circuit, device, runtime).fingerprint();
  } catch (const std::exception& e) {
    spec_error = e.what();
  }

  EXPECT_EQ(facade_error, spec_error);
  EXPECT_EQ(facade_fingerprint, spec_fingerprint);
  if (facade_error.empty()) {
    EXPECT_FALSE(facade_fingerprint.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, FacadeSpecParity,
                         testing::ValuesIn(parity_cases()), parity_name);

// --- ArchArtifacts equivalence ---------------------------------------------

class ArtifactsEquivalence : public testing::TestWithParam<std::string> {};

TEST_P(ArtifactsEquivalence, MatchesCouplingGraphCaches) {
  const Device device = parity_device(GetParam());
  const ArchArtifacts artifacts = ArchArtifacts::build(device);
  const CouplingGraph& coupling = device.coupling();
  const int n = device.num_qubits();
  ASSERT_EQ(artifacts.num_qubits(), n);

  int max_distance = 0;
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      EXPECT_EQ(artifacts.distance(a, b), coupling.distance(a, b))
          << a << " -> " << b;
      // Byte-identical paths, not merely equally long ones: routers pick
      // rescue paths from these, so parity depends on it.
      EXPECT_EQ(artifacts.shortest_path(a, b), coupling.shortest_path(a, b))
          << a << " -> " << b;
      max_distance = std::max(max_distance, artifacts.distance(a, b));
    }
  }
  EXPECT_EQ(artifacts.diameter(), max_distance);

  for (int q = 0; q < n; ++q) {
    std::vector<int> expected = coupling.neighbors(q);
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(artifacts.neighbors(q), expected);
  }
}

TEST_P(ArtifactsEquivalence, NativeGateLookupMatchesDevice) {
  const Device device = parity_device(GetParam());
  const ArchArtifacts artifacts = ArchArtifacts::build(device);
  for (int k = 0; k <= static_cast<int>(GateKind::Barrier); ++k) {
    const auto kind = static_cast<GateKind>(k);
    EXPECT_EQ(artifacts.is_native_kind(kind), device.is_native_kind(kind))
        << "kind " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Devices, ArtifactsEquivalence,
                         testing::Values("qx4", "qx5", "s17"));

TEST(ArchArtifacts, ShortestPathsAreValidWalks) {
  const Device device = devices::surface17();
  const auto artifacts = ArchArtifacts::shared(device);
  for (int a = 0; a < device.num_qubits(); ++a) {
    for (int b = 0; b < device.num_qubits(); ++b) {
      const std::vector<int> path = artifacts->shortest_path(a, b);
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.front(), a);
      EXPECT_EQ(path.back(), b);
      EXPECT_EQ(static_cast<int>(path.size()) - 1, artifacts->distance(a, b));
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_TRUE(device.coupling().connected(path[i], path[i + 1]));
      }
    }
  }
}

TEST(ArchArtifacts, RejectsOutOfRangeQubits) {
  const Device device = devices::ibm_qx4();
  const ArchArtifacts artifacts = ArchArtifacts::build(device);
  EXPECT_THROW((void)artifacts.distance(-1, 0), DeviceError);
  EXPECT_THROW((void)artifacts.distance(0, device.num_qubits()), DeviceError);
  EXPECT_THROW((void)artifacts.shortest_path(0, 99), DeviceError);
}

// --- PipelineSpec as data ---------------------------------------------------

TEST(PipelineSpec, StandardRoundTripsThroughJsonText) {
  const PipelineSpec spec = PipelineSpec::standard("annealing", "astar",
                                                   /*lower_to_native=*/false,
                                                   /*peephole=*/false,
                                                   /*run_scheduler=*/true,
                                                   /*use_control=*/false);
  const PipelineSpec reparsed =
      PipelineSpec::from_json_text(spec.to_json().dump());
  EXPECT_EQ(reparsed, spec);
  EXPECT_EQ(spec.label(), "annealing+astar");
  EXPECT_EQ(spec.placer_name(), "annealing");
  EXPECT_EQ(spec.router_name(), "astar");
  EXPECT_EQ(spec.size(), 5u);
}

TEST(PipelineSpec, AcceptsBareArrayStringsAndAliases) {
  const PipelineSpec spec = PipelineSpec::from_json_text(
      R"(["lower", {"pass": "place"}, "route", "post-route", "scheduler"])");
  ASSERT_EQ(spec.size(), 5u);
  EXPECT_EQ(spec.passes()[0].pass, "decompose");
  EXPECT_EQ(spec.passes()[1].pass, "placer");
  EXPECT_EQ(spec.passes()[2].pass, "router");
  EXPECT_EQ(spec.passes()[3].pass, "postroute");
  EXPECT_EQ(spec.passes()[4].pass, "schedule");
  // Defaults applied: the spec labels itself like a strategy.
  EXPECT_EQ(spec.label(), "greedy+sabre");
}

TEST(PipelineSpec, UnknownPassNameFailsWithTheValidNames) {
  try {
    (void)PipelineSpec::from_json_text(R"(["decompose", "optimize"])");
    FAIL() << "expected MappingError";
  } catch (const MappingError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown pass"), std::string::npos) << what;
    EXPECT_NE(what.find("optimize"), std::string::npos) << what;
    EXPECT_NE(what.find("decompose"), std::string::npos) << what;  // valid list
  }
}

TEST(PipelineSpec, UnknownOptionKeyFailsWithTheValidKeys) {
  try {
    (void)PipelineSpec::from_json_text(
        R"([{"pass": "router", "options": {"algorithm": "sabre", "depth": 3}}])");
    FAIL() << "expected MappingError";
  } catch (const MappingError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("pass 'router'"), std::string::npos) << what;
    EXPECT_NE(what.find("'depth'"), std::string::npos) << what;
    EXPECT_NE(what.find("algorithm"), std::string::npos) << what;
  }
}

TEST(PipelineSpec, UnknownAlgorithmFailsAtParseTimeNotRunTime) {
  EXPECT_THROW((void)PipelineSpec::from_json_text(
                   R"([{"pass": "placer", "options": {"algorithm": "magic"}}])"),
               MappingError);
}

TEST(PipelineSpec, StrategySpecExpandsToItsPipeline) {
  StrategySpec strategy;
  strategy.placer = "identity";
  strategy.router = "naive";
  CompilerOptions base;
  base.run_scheduler = false;
  const PipelineSpec spec = strategy.pipeline(base);
  EXPECT_EQ(spec.label(), strategy.label());
  EXPECT_EQ(spec.size(), 4u);  // no schedule pass
  EXPECT_EQ(spec, PipelineSpec::standard("identity", "naive", true, true,
                                         false, true));
}

// --- Custom pipelines -------------------------------------------------------

TEST(PassManager, DroppingTheSchedulePassSkipsScheduling) {
  const Device device = devices::ibm_qx4();
  const PipelineSpec spec = PipelineSpec::from_json_text(
      R"(["decompose", "placer", "router", "postroute"])");
  const CompilationResult result =
      PassManager(spec).run(workloads::ghz(4), device, PipelineRuntime{});
  EXPECT_EQ(result.scheduled_cycles, 0);
  EXPECT_EQ(result.schedule.size(), 0u);
  EXPECT_GT(result.baseline_cycles, 0);
  EXPECT_TRUE(respects_coupling(result.final_circuit, device));
}

TEST(PassManager, RouterWithoutPlacerFailsWithActionableError) {
  const Device device = devices::ibm_qx4();
  const PipelineSpec spec =
      PipelineSpec::from_json_text(R"(["decompose", "router"])");
  try {
    (void)PassManager(spec).run(workloads::ghz(4), device, PipelineRuntime{});
    FAIL() << "expected MappingError";
  } catch (const MappingError& e) {
    EXPECT_NE(std::string(e.what()).find("needs an initial placement"),
              std::string::npos)
        << e.what();
  }
}

TEST(PassManager, StageHookSeesCanonicalNamesInPipelineOrder) {
  const Device device = devices::ibm_qx4();
  std::vector<std::string> stages;
  PipelineRuntime runtime;
  runtime.stage_hook = [&stages](const char* stage) {
    stages.emplace_back(stage);
  };
  const PassManager manager(PipelineSpec::standard());
  (void)manager.run(workloads::fig1_example(), device, runtime);
  // decompose is not a stage boundary (the pre-pass facade never announced
  // it), so the hook sequence is exactly the historical one the resilience
  // fault matrix matches against.
  const std::vector<std::string> expected = {"placer", "router", "postroute",
                                             "schedule"};
  EXPECT_EQ(stages, expected);
}

TEST(PassManager, RecordsPerPassTimingsInPipelineOrder) {
  const Device device = devices::ibm_qx4();
  const Circuit circuit = workloads::fig1_example();
  CompileContext ctx(circuit, device, PipelineRuntime{});
  PassManager(PipelineSpec::standard()).run(ctx);
  ASSERT_EQ(ctx.timings.size(), 5u);
  const char* expected[] = {"decompose", "placer", "router", "postroute",
                            "schedule"};
  for (std::size_t i = 0; i < ctx.timings.size(); ++i) {
    EXPECT_EQ(ctx.timings[i].pass, expected[i]);
    EXPECT_GE(ctx.timings[i].ms, 0.0);
  }
  EXPECT_TRUE(ctx.placed);
  EXPECT_TRUE(ctx.routed);
  EXPECT_TRUE(ctx.postrouted);
}

TEST(PassManager, PreCancelledTokenAbortsAtTheFirstBoundary) {
  const Device device = devices::ibm_qx4();
  CancelToken token;
  token.cancel();
  PipelineRuntime runtime;
  runtime.cancel = &token;
  int hook_calls = 0;
  runtime.stage_hook = [&hook_calls](const char*) { ++hook_calls; };
  const PassManager manager(PipelineSpec::standard());
  EXPECT_THROW(
      (void)manager.run(workloads::fig1_example(), device, runtime),
      CancelledError);
  // The checkpoint fires before the hook announces the stage.
  EXPECT_EQ(hook_calls, 0);
}

TEST(Compiler, ExplicitSpecOverloadMatchesTheFacadePreset) {
  const Device device = devices::surface17();
  const Compiler compiler(device);
  const Circuit circuit = workloads::qft(4);
  EXPECT_EQ(compiler.compile(circuit).fingerprint(),
            compiler.compile(circuit, compiler.pipeline()).fingerprint());
}

// --- Shared-artifact concurrency (the TSan targets) -------------------------

TEST(ArchArtifacts, ConcurrentRunsSharingOneBundleMatchSerial) {
  const Device device = devices::surface17();
  const auto artifacts = ArchArtifacts::shared(device);
  const Circuit circuit = workloads::qft(4);
  const PassManager manager(PipelineSpec::standard());

  PipelineRuntime serial_runtime;
  serial_runtime.artifacts = artifacts;
  const std::string expected =
      manager.run(circuit, device, serial_runtime).fingerprint();

  constexpr int kThreads = 8;
  std::vector<std::string> fingerprints(kThreads);
  std::atomic<int> failures{0};
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        try {
          PipelineRuntime runtime;
          runtime.artifacts = artifacts;
          fingerprints[static_cast<std::size_t>(t)] =
              manager.run(circuit, device, runtime).fingerprint();
        } catch (...) {
          failures.fetch_add(1);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  for (const std::string& fingerprint : fingerprints) {
    EXPECT_EQ(fingerprint, expected);
  }
}

// --- token_swap_finisher pass ---

TEST(TokenSwapFinisher, RestoresTheInitialPlacementEndToEnd) {
  for (const char* router : {"sabre", "bridge"}) {
    for (const char* device_name : {"qx4", "qx5", "s17"}) {
      const Device device = parity_device(device_name);
      Rng rng(31);
      const int width = std::min(6, device.num_qubits());
      const Circuit circuit = workloads::random_circuit(width, 40, rng, 0.5);
      PipelineSpec spec;
      spec.append("decompose");
      spec.append("placer");
      Json router_options;
      router_options["algorithm"] = Json(std::string(router));
      spec.append("router", std::move(router_options));
      spec.append("token_swap_finisher");
      spec.append("postroute");
      spec.append("schedule");
      const CompilationResult result =
          PassManager(spec).run(circuit, device, PipelineRuntime{});
      // The finisher's whole contract: every program wire ends where it
      // started, so the mapped circuit computes the bare unitary.
      for (int w = 0; w < result.routing.initial.num_program_qubits(); ++w) {
        EXPECT_EQ(result.routing.final.phys_of_wire(w),
                  result.routing.initial.phys_of_wire(w))
            << router << " on " << device_name << ", wire " << w;
      }
      EXPECT_TRUE(respects_coupling(result.final_circuit, device));
      EXPECT_TRUE(Compiler::verify(result))
          << router << " on " << device_name;
    }
  }
}

TEST(TokenSwapFinisher, RemapsTerminalMeasurementsThroughTheCleanup) {
  // Measured circuits are the sharp edge: the cleanup SWAPs must splice in
  // *before* the trailing measurements (postroute's measurement relocation
  // rejects unitaries after a deferred measure), with the measurement
  // operands rerouted through the cleanup permutation.
  const Device device = devices::ibm_qx5();
  Circuit circuit = workloads::ghz(5);
  circuit.measure_all();
  PipelineSpec spec = PipelineSpec::from_json_text(
      R"(["decompose", "placer",
          {"pass": "router", "options": {"algorithm": "bridge"}},
          "token_swap_finisher", "postroute", "schedule"])");
  const CompilationResult result =
      PassManager(spec).run(circuit, device, PipelineRuntime{});
  for (int w = 0; w < result.routing.initial.num_program_qubits(); ++w) {
    EXPECT_EQ(result.routing.final.phys_of_wire(w),
              result.routing.initial.phys_of_wire(w));
  }
  EXPECT_TRUE(Compiler::verify(result));
  std::size_t measures = 0;
  for (const Gate& gate : result.final_circuit) {
    if (gate.kind == GateKind::Measure) ++measures;
  }
  EXPECT_EQ(measures, 5u);
}

TEST(TokenSwapFinisher, TokenSwapAliasAndCanonicalNameBothParse) {
  const PipelineSpec spec = PipelineSpec::from_json_text(
      R"(["decompose", "placer", "router", "token-swap", "postroute"])");
  const Json canonical = spec.canonical_json();
  EXPECT_NE(canonical.dump().find("token_swap_finisher"), std::string::npos);
}

TEST(TokenSwapFinisher, WithoutARouterFailsWithActionableError) {
  const Device device = devices::ibm_qx4();
  const PipelineSpec spec = PipelineSpec::from_json_text(
      R"(["decompose", "placer", "token_swap_finisher"])");
  try {
    (void)PassManager(spec).run(workloads::ghz(4), device, PipelineRuntime{});
    FAIL() << "expected MappingError";
  } catch (const MappingError& e) {
    EXPECT_NE(std::string(e.what()).find("needs a routing result"),
              std::string::npos)
        << e.what();
  }
}

TEST(TokenSwapFinisher, AfterPostrouteFailsWithActionableError) {
  const Device device = devices::ibm_qx4();
  const PipelineSpec spec = PipelineSpec::from_json_text(
      R"(["decompose", "placer", "router", "postroute",
          "token_swap_finisher"])");
  try {
    (void)PassManager(spec).run(workloads::ghz(4), device, PipelineRuntime{});
    FAIL() << "expected MappingError";
  } catch (const MappingError& e) {
    EXPECT_NE(std::string(e.what()).find("must run before 'postroute'"),
              std::string::npos)
        << e.what();
  }
}

TEST(TokenSwapFinisher, RejectsUnknownOptions) {
  EXPECT_THROW((void)PipelineSpec::from_json_text(
                   R"([{"pass": "token_swap_finisher",
                        "options": {"rounds": 3}}])"),
               MappingError);
}

TEST(CouplingGraph, LazyDistanceCacheIsSafeUnderConcurrentFirstUse) {
  // A bare CouplingGraph (not yet wrapped in a Device, which precomputes
  // eagerly) still fills its cache lazily; hammer the first use from many
  // threads so TSan can see the double-checked publish.
  CouplingGraph coupling(17);
  const Device reference_device = devices::surface17();
  const CouplingGraph& reference = reference_device.coupling();
  for (const auto& edge : reference.edges()) {
    if (edge.a_to_b && edge.b_to_a) {
      coupling.add_edge(edge.a, edge.b, /*directed=*/false);
    } else if (edge.a_to_b) {
      coupling.add_edge(edge.a, edge.b, /*directed=*/true);
    } else {
      coupling.add_edge(edge.b, edge.a, /*directed=*/true);
    }
  }

  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int a = 0; a < coupling.num_qubits(); ++a) {
        for (int b = 0; b < coupling.num_qubits(); ++b) {
          if (coupling.distance(a, b) != reference.distance(a, b)) {
            mismatches.fetch_add(1);
          }
          if (coupling.shortest_path((a + t) % coupling.num_qubits(), b) !=
              reference.shortest_path((a + t) % coupling.num_qubits(), b)) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace qmap
