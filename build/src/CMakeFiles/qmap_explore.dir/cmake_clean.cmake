file(REMOVE_RECURSE
  "CMakeFiles/qmap_explore.dir/explore/architecture_search.cpp.o"
  "CMakeFiles/qmap_explore.dir/explore/architecture_search.cpp.o.d"
  "libqmap_explore.a"
  "libqmap_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qmap_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
