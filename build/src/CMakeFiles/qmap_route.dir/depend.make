# Empty dependencies file for qmap_route.
# This may be replaced when dependencies are built.
