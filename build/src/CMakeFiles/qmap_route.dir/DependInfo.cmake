
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/route/astar_layer.cpp" "src/CMakeFiles/qmap_route.dir/route/astar_layer.cpp.o" "gcc" "src/CMakeFiles/qmap_route.dir/route/astar_layer.cpp.o.d"
  "/root/repo/src/route/bidirectional_placer.cpp" "src/CMakeFiles/qmap_route.dir/route/bidirectional_placer.cpp.o" "gcc" "src/CMakeFiles/qmap_route.dir/route/bidirectional_placer.cpp.o.d"
  "/root/repo/src/route/exact.cpp" "src/CMakeFiles/qmap_route.dir/route/exact.cpp.o" "gcc" "src/CMakeFiles/qmap_route.dir/route/exact.cpp.o.d"
  "/root/repo/src/route/measure_relocation.cpp" "src/CMakeFiles/qmap_route.dir/route/measure_relocation.cpp.o" "gcc" "src/CMakeFiles/qmap_route.dir/route/measure_relocation.cpp.o.d"
  "/root/repo/src/route/naive.cpp" "src/CMakeFiles/qmap_route.dir/route/naive.cpp.o" "gcc" "src/CMakeFiles/qmap_route.dir/route/naive.cpp.o.d"
  "/root/repo/src/route/qmap_router.cpp" "src/CMakeFiles/qmap_route.dir/route/qmap_router.cpp.o" "gcc" "src/CMakeFiles/qmap_route.dir/route/qmap_router.cpp.o.d"
  "/root/repo/src/route/router.cpp" "src/CMakeFiles/qmap_route.dir/route/router.cpp.o" "gcc" "src/CMakeFiles/qmap_route.dir/route/router.cpp.o.d"
  "/root/repo/src/route/sabre.cpp" "src/CMakeFiles/qmap_route.dir/route/sabre.cpp.o" "gcc" "src/CMakeFiles/qmap_route.dir/route/sabre.cpp.o.d"
  "/root/repo/src/route/shuttle.cpp" "src/CMakeFiles/qmap_route.dir/route/shuttle.cpp.o" "gcc" "src/CMakeFiles/qmap_route.dir/route/shuttle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qmap_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qmap_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qmap_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qmap_decompose.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qmap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
