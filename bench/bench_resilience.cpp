// Resilience layer overhead and degradation cost, measured:
//
//   1. Guard overhead: resilience::compile with no faults and a generous
//      deadline vs. the bare PortfolioCompiler it wraps — the price of
//      admission control, crash boundaries, and post-validation on the
//      happy path.
//   2. Degradation cost: the same call with a probability-1.0 placer
//      fault on the portfolio rung — what a full rung-0 outage costs in
//      wall time before the ladder hands back a validated rung-1 answer.
//   3. Rejection cost: an inadmissible request, which must be near-free
//      (no pass ever runs).
//
// Exits non-zero if any ladder outcome comes back non-validated, so the
// bench doubles as an integration check of the fallback guarantees.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "resilience/resilience.hpp"

namespace {

using namespace qmap;
using namespace qmap::bench;

resilience::Policy clean_policy() {
  resilience::Policy policy;
  policy.deadline_ms = 5000;
  policy.seed = 0xC0FFEE;
  policy.backoff.base_ms = 0.1;
  policy.backoff.cap_ms = 1.0;
  return policy;
}

resilience::Policy hostile_policy() {
  resilience::Policy policy = clean_policy();
  resilience::FaultSpec fault;
  fault.point = "throw-in-placer";
  fault.rung = 0;
  fault.probability = 1.0;
  policy.faults.push_back(fault);
  return policy;
}

void require_validated(const resilience::CompileOutcome& outcome,
                       const char* what) {
  if (!outcome.ok || !outcome.validated) {
    std::cerr << "FATAL: " << what << " did not return a validated result\n";
    std::exit(1);
  }
}

void print_figure() {
  paper_note(
      "Sec. VII outlook: a mapping service facing real devices needs "
      "predictable behaviour under partial failure, not just a fast happy "
      "path. The ladder's overhead and its degradation cost are the two "
      "numbers that decide whether the hardening is affordable.");

  const Device device = devices::surface17();
  const Circuit circuit = workloads::qft(5);

  section("Ladder outcomes on " + device.name() + " / " + circuit.name());
  TextTable table({"scenario", "rung", "winner", "retries", "validated"});

  resilience::CompileOutcome outcome =
      resilience::compile(circuit, device, clean_policy());
  require_validated(outcome, "clean ladder");
  table.add_row({"no faults", TextTable::num(outcome.rung),
                 outcome.winner_label, TextTable::num(outcome.total_retries),
                 outcome.validated ? "yes" : "no"});

  outcome = resilience::compile(circuit, device, hostile_policy());
  require_validated(outcome, "rung-0 outage ladder");
  table.add_row({"placer fault @ rung 0", TextTable::num(outcome.rung),
                 outcome.winner_label, TextTable::num(outcome.total_retries),
                 outcome.validated ? "yes" : "no"});
  std::cout << table.str();
  std::cout << "(the hostile row must report rung >= 1: the portfolio rung "
               "is dead, the ladder is not)\n";
}

void BM_ResilientCompileClean(benchmark::State& state) {
  const Device device = devices::surface17();
  const resilience::ResilientCompiler compiler(device, clean_policy());
  const Circuit circuit = workloads::qft(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler.compile(circuit));
  }
  state.SetLabel("ladder, no faults");
}
BENCHMARK(BM_ResilientCompileClean);

void BM_BarePortfolioBaseline(benchmark::State& state) {
  const Device device = devices::surface17();
  PortfolioOptions options;
  options.base_seed = 0xC0FFEE;
  const PortfolioCompiler portfolio(device, options);
  const Circuit circuit = workloads::qft(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(portfolio.compile(circuit));
  }
  state.SetLabel("unguarded portfolio");
}
BENCHMARK(BM_BarePortfolioBaseline);

void BM_ResilientCompileRungZeroOutage(benchmark::State& state) {
  const Device device = devices::surface17();
  const resilience::ResilientCompiler compiler(device, hostile_policy());
  const Circuit circuit = workloads::qft(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler.compile(circuit));
  }
  state.SetLabel("placer fault p=1.0 @ rung 0");
}
BENCHMARK(BM_ResilientCompileRungZeroOutage);

void BM_AdmissionRejection(benchmark::State& state) {
  const Device device = devices::surface17();
  const resilience::ResilientCompiler compiler(device, clean_policy());
  const Circuit too_wide = workloads::ghz(device.num_qubits() + 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler.compile(too_wide));
  }
  state.SetLabel("rejected before any pass runs");
}
BENCHMARK(BM_AdmissionRejection);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
