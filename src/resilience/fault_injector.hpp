// Pluggable fault-injection registry for the resilience pipeline.
//
// Generalizes the fuzzer's planted result corruptions (verify/faults.hpp)
// into named fault *points* that fire inside the live pipeline, selected
// by name, rung, probability, and seed:
//
//   throw-in-placer  — MappingError at the placer stage boundary
//                      (Permanent: retrying reproduces it; fall back);
//   throw-in-router  — TransientError at the router stage boundary
//                      (Transient: exercises the retry/backoff path);
//   oom-simulate     — ResourceError at the placer stage boundary
//                      (ResourceExhausted: fall back, never retry);
//   stall-ms         — sleeps at the router stage boundary so the rung's
//                      deadline slice expires (surfaces as CancelledError,
//                      Transient, through the normal cancellation path);
//   corrupt-result   — sabotages the *finished* CompilationResult with a
//                      verify::FaultInjection primitive; only post-compile
//                      validation can catch this one.
//   service.*        — transport faults (truncate-line, garbage-bytes,
//                      oversize-line, disconnect, stall-write) delivered by
//                      the service's ChaosTransport wire harness
//                      (src/service/chaos.hpp) rather than at_stage();
//                      registered here so arming shares the same validated
//                      FaultSpec machinery and seeded fire decisions.
//
// Stage faults are delivered through CompilerOptions::stage_hook /
// PortfolioOptions::stage_hook — the injector never patches a pass. The
// stage names it matches against ("placer", "router", ...) are exactly the
// Pass::name() values the PassManager hands to the hook (src/pass/), so
// the matrix keeps working for any pipeline built from registered passes.
// Decisions are pure functions of (seed, spec index, rung, strategy,
// attempt): no global counters, no clocks, so a fixed seed fires the same
// faults whether the portfolio runs on 1 thread or 16. Fired faults are
// recorded under a mutex and drained sorted, keeping telemetry
// byte-deterministic despite concurrent workers.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "arch/device.hpp"
#include "core/compiler.hpp"
#include "verify/faults.hpp"

namespace qmap::resilience {

/// Names accepted by FaultSpec::point, in canonical order.
[[nodiscard]] const std::vector<std::string>& known_fault_points();

/// One armed fault.
struct FaultSpec {
  /// One of known_fault_points(). Unknown names throw at registration.
  std::string point;
  /// Ladder rung the fault targets (-1 = every rung).
  int rung = -1;
  /// Probability that the fault fires at each eligible (rung, strategy,
  /// attempt) decision.
  double probability = 1.0;
  /// stall-ms only: how long to sleep at the stage boundary.
  double stall_ms = 50.0;
  /// corrupt-result only: which corruption primitive to apply.
  verify::FaultInjection corruption = verify::FaultInjection::FlipLastCx;

  [[nodiscard]] std::string label() const;
};

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(std::vector<FaultSpec> specs,
                         std::uint64_t seed = 0x5EED);

  /// Validates the point name (throws MappingError listing valid names).
  void add(FaultSpec spec);

  [[nodiscard]] bool empty() const noexcept { return specs_.empty(); }
  [[nodiscard]] const std::vector<FaultSpec>& specs() const noexcept {
    return specs_;
  }

  /// Stage-boundary delivery: evaluates every armed stage fault against
  /// (stage, rung, strategy, attempt) and performs the first that fires —
  /// throwing its error or stalling. Deterministic for a fixed seed.
  /// Wire this into CompilerOptions::stage_hook (or the portfolio's
  /// per-strategy variant). Thread-safe.
  void at_stage(const char* stage, int rung, int strategy, int attempt) const;

  /// Post-compile delivery: applies every "corrupt-result" spec that fires
  /// for (rung, strategy, attempt) to the finished result. Returns true
  /// when the result was altered. Thread-safe.
  bool corrupt(CompilationResult& result, const Device& device, int rung,
               int strategy, int attempt) const;

  /// Returns the names of faults fired since the last drain, sorted and
  /// deduplicated, and clears the record. The resilience supervisor drains
  /// once per attempt (workers are joined between attempts).
  [[nodiscard]] std::vector<std::string> drain_fired() const;

 private:
  [[nodiscard]] bool fires_(std::size_t spec_index, const FaultSpec& spec,
                            int rung, int strategy, int attempt) const;
  void record_(const std::string& name) const;

  std::vector<FaultSpec> specs_;
  std::uint64_t seed_ = 0x5EED;
  mutable std::mutex mutex_;
  mutable std::vector<std::string> fired_;
};

}  // namespace qmap::resilience
