#include "layout/placers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"

namespace qmap {

InteractionGraph::InteractionGraph(const Circuit& circuit)
    : n_(circuit.num_qubits()),
      weights_(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_),
               0) {
  for (const Gate& gate : circuit) {
    if (!gate.is_two_qubit()) continue;
    const int a = gate.qubits[0];
    const int b = gate.qubits[1];
    ++weights_[static_cast<std::size_t>(a) * static_cast<std::size_t>(n_) +
               static_cast<std::size_t>(b)];
    ++weights_[static_cast<std::size_t>(b) * static_cast<std::size_t>(n_) +
               static_cast<std::size_t>(a)];
  }
}

int InteractionGraph::weight(int a, int b) const {
  if (a < 0 || a >= n_ || b < 0 || b >= n_) {
    throw CircuitError("interaction weight: qubit out of range");
  }
  return weights_[static_cast<std::size_t>(a) * static_cast<std::size_t>(n_) +
                  static_cast<std::size_t>(b)];
}

int InteractionGraph::degree(int q) const {
  int total = 0;
  for (int other = 0; other < n_; ++other) total += weight(q, other);
  return total;
}

std::vector<std::pair<int, int>> InteractionGraph::edges() const {
  std::vector<std::pair<int, int>> out;
  for (int a = 0; a < n_; ++a) {
    for (int b = a + 1; b < n_; ++b) {
      if (weight(a, b) > 0) out.emplace_back(a, b);
    }
  }
  return out;
}

long placement_cost(const InteractionGraph& interactions,
                    const Placement& placement, const Device& device) {
  long cost = 0;
  for (const auto& [a, b] : interactions.edges()) {
    const int d = device.coupling().distance(placement.phys_of_program(a),
                                             placement.phys_of_program(b));
    if (d < 0) return std::numeric_limits<long>::max();
    cost += static_cast<long>(interactions.weight(a, b)) * (d - 1);
  }
  return cost;
}

namespace {

void check_fits(const Circuit& circuit, const Device& device) {
  if (circuit.num_qubits() > device.num_qubits()) {
    throw MappingError("circuit has " + std::to_string(circuit.num_qubits()) +
                       " qubits; device '" + device.name() + "' has only " +
                       std::to_string(device.num_qubits()));
  }
}

}  // namespace

Placement IdentityPlacer::place(const Circuit& circuit, const Device& device) {
  check_fits(circuit, device);
  return Placement::identity(circuit.num_qubits(), device.num_qubits());
}

Placement GreedyPlacer::place(const Circuit& circuit, const Device& device) {
  check_fits(circuit, device);
  const InteractionGraph interactions(circuit);
  const int n = circuit.num_qubits();
  const int m = device.num_qubits();

  // Program qubits by descending interaction degree (ties: lower index).
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return interactions.degree(a) > interactions.degree(b);
  });

  std::vector<int> program_to_phys(static_cast<std::size_t>(n), -1);
  std::vector<bool> used(static_cast<std::size_t>(m), false);

  for (const int k : order) {
    check_cancelled();  // O(n*m) per qubit: one poll per placement decision
    int best_phys = -1;
    long best_score = std::numeric_limits<long>::max();
    for (int phys = 0; phys < m; ++phys) {
      if (used[static_cast<std::size_t>(phys)]) continue;
      long score = 0;
      bool any_partner = false;
      for (int other = 0; other < n; ++other) {
        const int w = interactions.weight(k, other);
        if (w == 0 || program_to_phys[static_cast<std::size_t>(other)] < 0) {
          continue;
        }
        any_partner = true;
        const int d = device.coupling().distance(
            phys, program_to_phys[static_cast<std::size_t>(other)]);
        if (d < 0) {
          score = std::numeric_limits<long>::max() / 2;
          break;
        }
        score += static_cast<long>(w) * d;
      }
      if (!any_partner) {
        // First qubit (or isolated one): prefer the graph center.
        score = device.coupling().total_distance_from(phys);
      }
      if (score < best_score) {
        best_score = score;
        best_phys = phys;
      }
    }
    program_to_phys[static_cast<std::size_t>(k)] = best_phys;
    used[static_cast<std::size_t>(best_phys)] = true;
  }
  return Placement::from_program_map(program_to_phys, m);
}

Placement ExhaustivePlacer::place(const Circuit& circuit,
                                  const Device& device) {
  check_fits(circuit, device);
  // Entry checkpoint: small searches can finish in fewer than one polling
  // interval, but an already-fired token must still interrupt them.
  check_cancelled();
  const InteractionGraph interactions(circuit);
  const int n = circuit.num_qubits();
  const int m = device.num_qubits();

  // Work estimate: m * (m-1) * ... * (m-n+1) assignments.
  double assignments = 1.0;
  for (int i = 0; i < n; ++i) assignments *= static_cast<double>(m - i);
  if (assignments > static_cast<double>(max_assignments_)) {
    throw ResourceError("exhaustive placement too large (" +
                        std::to_string(static_cast<long>(assignments)) +
                        " assignments); use AnnealingPlacer");
  }

  std::vector<int> program_to_phys(static_cast<std::size_t>(n), -1);
  std::vector<int> best = program_to_phys;
  std::vector<bool> used(static_cast<std::size_t>(m), false);
  long best_cost = std::numeric_limits<long>::max();

  // Depth-first over assignments with incremental cost and pruning.
  // Cancellation is polled every 1024 visited nodes: frequent enough that
  // a 1 ms deadline interrupts the search promptly, rare enough that the
  // steady-clock read never shows up in profiles.
  long visited = 0;
  const auto recurse = [&](const auto& self, int k, long partial) -> void {
    if ((++visited & 1023) == 0) check_cancelled();
    if (partial >= best_cost) return;
    if (k == n) {
      best_cost = partial;
      best = program_to_phys;
      return;
    }
    for (int phys = 0; phys < m; ++phys) {
      if (used[static_cast<std::size_t>(phys)]) continue;
      long delta = 0;
      bool feasible = true;
      for (int other = 0; other < k; ++other) {
        const int w = interactions.weight(k, other);
        if (w == 0) continue;
        const int d = device.coupling().distance(
            phys, program_to_phys[static_cast<std::size_t>(other)]);
        if (d < 0) {
          feasible = false;
          break;
        }
        delta += static_cast<long>(w) * (d - 1);
      }
      if (!feasible) continue;
      used[static_cast<std::size_t>(phys)] = true;
      program_to_phys[static_cast<std::size_t>(k)] = phys;
      self(self, k + 1, partial + delta);
      used[static_cast<std::size_t>(phys)] = false;
      program_to_phys[static_cast<std::size_t>(k)] = -1;
    }
  };
  recurse(recurse, 0, 0);
  if (best_cost == std::numeric_limits<long>::max()) {
    throw MappingError("no feasible placement (device disconnected?)");
  }
  return Placement::from_program_map(best, m);
}

Placement AnnealingPlacer::place(const Circuit& circuit,
                                 const Device& device) {
  check_fits(circuit, device);
  const InteractionGraph interactions(circuit);
  const int m = device.num_qubits();

  Placement current = GreedyPlacer().place(circuit, device);
  long current_cost = placement_cost(interactions, current, device);
  Placement best = current;
  long best_cost = current_cost;

  Rng rng(seed_);
  const double t_start = 4.0;
  const double t_end = 0.05;
  for (int it = 0; it < iterations_; ++it) {
    // One poll per 256 sweeps: each iteration is O(edges), so a deadline
    // interrupts within a fraction of a millisecond even on wide devices.
    if ((it & 255) == 0) check_cancelled();
    const double fraction =
        static_cast<double>(it) / std::max(1, iterations_ - 1);
    const double temperature =
        t_start * std::pow(t_end / t_start, fraction);
    // Propose: exchange the wires on two random physical qubits.
    const int a = static_cast<int>(rng.index(static_cast<std::size_t>(m)));
    int b = static_cast<int>(rng.index(static_cast<std::size_t>(m)));
    if (a == b) continue;
    Placement proposal = current;
    proposal.apply_swap(a, b);
    const long proposal_cost =
        placement_cost(interactions, proposal, device);
    const long delta = proposal_cost - current_cost;
    if (delta <= 0 ||
        rng.uniform() < std::exp(-static_cast<double>(delta) / temperature)) {
      current = std::move(proposal);
      current_cost = proposal_cost;
      if (current_cost < best_cost) {
        best = current;
        best_cost = current_cost;
      }
    }
  }
  return best;
}

}  // namespace qmap
