#include "engine/thread_pool.hpp"

#include <algorithm>

namespace qmap {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  num_threads = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();  // packaged_task captures exceptions into the future
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace qmap
