// PassManager::run_stream: the streaming execution mode declared in
// pass/streaming.hpp.
//
// The window-capable chain is assembled as a source→sink pipeline:
//
//   GateSource → [LoweringSource: chunk-wise decompose]
//              → route_stream (bounded window)
//              → [TokenSwapFinisherSink: cleanup at end-of-stream]
//              → sink (or a CircuitSink when a materialized tail follows)
//
// Stages that cannot stream run exactly as PassManager::run would run them
// (same Pass objects, same stage hooks/spans/timings), on a circuit
// materialized at the latest possible point. Parity contract: whatever the
// mix of streamed and materialized stages, the gates that reach the sink
// are byte-identical to the materialized pipeline's product (pinned by the
// `stream` test suite against the golden fingerprint matrix).
#include "pass/manager.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "decompose/decomposer.hpp"
#include "pass/registry.hpp"
#include "route/token_swap.hpp"

namespace qmap {
namespace {

/// Slot index of each standard stage in the spec, or -1. `standard` is
/// false when a pass repeats or appears out of the canonical order — such
/// pipelines take the full materialized fallback.
struct StageLayout {
  int decompose = -1;
  int placer = -1;
  int router = -1;
  int token_swap = -1;
  int postroute = -1;
  int schedule = -1;
  bool standard = true;
};

StageLayout analyze(const PipelineSpec& spec) {
  StageLayout layout;
  int last_rank = -1;
  for (std::size_t i = 0; i < spec.passes().size(); ++i) {
    const std::string& name = spec.passes()[i].pass;
    int rank = -1;
    int* slot = nullptr;
    if (name == "decompose") {
      rank = 0;
      slot = &layout.decompose;
    } else if (name == "placer") {
      rank = 1;
      slot = &layout.placer;
    } else if (name == "router") {
      rank = 2;
      slot = &layout.router;
    } else if (name == "token_swap_finisher") {
      rank = 3;
      slot = &layout.token_swap;
    } else if (name == "postroute") {
      rank = 4;
      slot = &layout.postroute;
    } else if (name == "schedule") {
      rank = 5;
      slot = &layout.schedule;
    }
    if (slot == nullptr || rank <= last_rank) {
      layout.standard = false;
      return layout;
    }
    *slot = static_cast<int>(i);
    last_rank = rank;
  }
  return layout;
}

/// Drains a source into an in-memory circuit (the materialization
/// fallback). Gates are trusted, matching CircuitSink.
Circuit materialize_source(GateSource& source, std::size_t chunk_gates) {
  Circuit circuit(source.num_qubits(), source.name());
  std::vector<Gate> chunk;
  while (true) {
    chunk.clear();
    if (source.pull(chunk, std::max<std::size_t>(chunk_gates, 1)) == 0) break;
    for (Gate& gate : chunk) circuit.add_unchecked(std::move(gate));
  }
  return circuit;
}

/// Pushes a materialized circuit to the sink in chunks and flushes it.
std::size_t push_circuit(const Circuit& circuit, GateSink& sink,
                         std::size_t chunk_gates) {
  const std::size_t chunk = std::max<std::size_t>(chunk_gates, 1);
  std::vector<Gate> buf;
  buf.reserve(std::min(chunk, circuit.size()));
  for (const Gate& gate : circuit) {
    buf.push_back(gate);
    if (buf.size() >= chunk) {
      sink.put_chunk(buf);
      buf.clear();
    }
  }
  if (!buf.empty()) sink.put_chunk(buf);
  sink.flush();
  return circuit.size();
}

/// Incremental dependency-only ASAP latency — what
/// schedule_asap(...).total_cycles() reports, without materializing the
/// schedule: per-qubit availability plus a running maximum.
class AsapLatencyTracker {
 public:
  AsapLatencyTracker(const Device& device, int num_qubits)
      : device_(&device),
        available_(static_cast<std::size_t>(num_qubits), 0) {}

  void push(const Gate& gate) {
    const int duration = device_->cycles_for(gate);
    int start = 0;
    for (const int q : gate.qubits) {
      start = std::max(start, available_[static_cast<std::size_t>(q)]);
    }
    for (const int q : gate.qubits) {
      available_[static_cast<std::size_t>(q)] = start + duration;
    }
    total_ = std::max(total_, start + duration);
  }

  [[nodiscard]] int total_cycles() const noexcept { return total_; }

 private:
  const Device* device_;
  std::vector<int> available_;
  int total_ = 0;
};

/// GateSource adapter running the decompose stage chunk-by-chunk: lowers
/// upstream gates through a StreamingLowerer (byte-identical to
/// lower_to_device on the whole circuit) and maintains the baseline
/// latency DecomposePass records (ASAP cycles of the keep_swaps=false
/// lowering — tracked by a second lowerer so SWAP expansion matches the
/// materialized pass exactly).
class LoweringSource final : public GateSource {
 public:
  LoweringSource(GateSource& inner, const Device& device, bool lower_to_native,
                 std::size_t chunk_gates)
      : inner_(&inner),
        chunk_gates_(std::max<std::size_t>(chunk_gates, 1)),
        scratch_(inner.num_qubits(), inner.name()),
        baseline_scratch_(inner.num_qubits(), inner.name()),
        tracker_(device, inner.num_qubits()) {
    if (lower_to_native) {
      lowerer_.emplace(device, inner.num_qubits(), /*keep_swaps=*/true);
      baseline_lowerer_.emplace(device, inner.num_qubits(),
                                /*keep_swaps=*/false);
    }
  }

  [[nodiscard]] int num_qubits() const override {
    return inner_->num_qubits();
  }
  [[nodiscard]] int num_cbits() const override { return inner_->num_cbits(); }
  [[nodiscard]] std::string name() const override { return inner_->name(); }

  std::size_t pull(std::vector<Gate>& out, std::size_t max_gates) override {
    std::size_t appended = 0;
    while (appended < max_gates) {
      if (pos_ < pending_.size()) {
        out.push_back(std::move(pending_[pos_++]));
        ++appended;
        continue;
      }
      if (done_) break;
      refill();
    }
    return appended;
  }

  /// Gates pulled from the wrapped source (pre-lowering).
  [[nodiscard]] std::size_t raw_gates_in() const noexcept { return raw_in_; }
  /// Valid once the stream is drained.
  [[nodiscard]] int baseline_cycles() const noexcept {
    return tracker_.total_cycles();
  }

 private:
  void refill() {
    // Recycle the consumed pending buffer as the scratch circuit's storage.
    pending_.clear();
    pos_ = 0;
    scratch_.set_gates(std::move(pending_));
    raw_.clear();
    const std::size_t pulled = inner_->pull(raw_, chunk_gates_);
    if (pulled == 0) {
      done_ = true;
      if (lowerer_) {
        lowerer_->finish(scratch_);
        baseline_lowerer_->finish(baseline_scratch_);
        track_baseline_scratch();
      }
      pending_ = scratch_.take_gates();
      return;
    }
    raw_in_ += pulled;
    if (!lowerer_) {
      // lower_to_native=false: gates pass through verbatim; the baseline
      // is the ASAP latency of the raw stream (DecomposePass semantics).
      for (const Gate& gate : raw_) tracker_.push(gate);
      pending_ = std::move(raw_);
      raw_.clear();
      return;
    }
    lowerer_->lower_chunk(raw_, scratch_);
    baseline_lowerer_->lower_chunk(raw_, baseline_scratch_);
    track_baseline_scratch();
    pending_ = scratch_.take_gates();
  }

  void track_baseline_scratch() {
    for (const Gate& gate : baseline_scratch_) tracker_.push(gate);
    std::vector<Gate> drained = baseline_scratch_.take_gates();
    drained.clear();
    baseline_scratch_.set_gates(std::move(drained));
  }

  GateSource* inner_;
  std::size_t chunk_gates_;
  std::optional<StreamingLowerer> lowerer_;
  std::optional<StreamingLowerer> baseline_lowerer_;
  Circuit scratch_;
  Circuit baseline_scratch_;
  AsapLatencyTracker tracker_;
  std::vector<Gate> raw_;
  std::vector<Gate> pending_;
  std::size_t pos_ = 0;
  std::size_t raw_in_ = 0;
  bool done_ = false;
};

/// GateSink adapter running the token-swap finisher at end-of-stream:
/// forwards the routed stream, buffering only the current trailing run of
/// Measure/Barrier gates (O(trailing suffix), not O(circuit)). The
/// upstream flush is swallowed — the final placement is not known until
/// route_stream returns, so the driver triggers the cleanup via finish(),
/// which emits the SWAPs, the remapped suffix, and the downstream flush.
class TokenSwapFinisherSink final : public GateSink {
 public:
  explicit TokenSwapFinisherSink(GateSink& downstream)
      : downstream_(&downstream) {}

  void put(Gate gate) override {
    if (gate.kind == GateKind::Measure || gate.kind == GateKind::Barrier) {
      suffix_.push_back(std::move(gate));
      return;
    }
    forward_suffix();
    ++forwarded_;
    downstream_->put(std::move(gate));
  }

  void put_chunk(std::vector<Gate>& gates) override {
    for (Gate& gate : gates) put(std::move(gate));
  }

  void flush() override {}

  /// End of routing: plans the cleanup against the routed stream's final
  /// placement (mutating it, like the materialized pass), emits SWAPs +
  /// remapped suffix, and flushes downstream.
  void finish(Placement& final_placement, const Placement& initial,
              const Device& device, const ArchArtifacts* artifacts) {
    TokenSwapCleanup cleanup =
        plan_token_swap_cleanup(final_placement, initial, device, artifacts);
    rounds_ = cleanup.rounds;
    swaps_ = cleanup.total_swaps();
    if (!cleanup.swaps.empty()) {
      for (Gate& gate : suffix_) {
        for (int& q : gate.qubits) {
          q = cleanup.position_of[static_cast<std::size_t>(q)];
        }
      }
      forwarded_ += cleanup.swaps.size();
      downstream_->put_chunk(cleanup.swaps);
    }
    forward_suffix();
    downstream_->flush();
  }

  [[nodiscard]] std::size_t rounds() const noexcept { return rounds_; }
  [[nodiscard]] std::size_t swaps() const noexcept { return swaps_; }
  /// Gates forwarded downstream (program gates + cleanup SWAPs + suffix).
  [[nodiscard]] std::size_t forwarded() const noexcept { return forwarded_; }

 private:
  void forward_suffix() {
    if (suffix_.empty()) return;
    forwarded_ += suffix_.size();
    downstream_->put_chunk(suffix_);
    suffix_.clear();
  }

  GateSink* downstream_;
  std::vector<Gate> suffix_;
  std::size_t rounds_ = 0;
  std::size_t swaps_ = 0;
  std::size_t forwarded_ = 0;
};

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

bool decompose_lowers_to_native(const PipelineSpec& spec, int index) {
  const Json& options = spec.passes()[static_cast<std::size_t>(index)].options;
  if (options.is_null()) return true;
  const Json* value = options.find("lower_to_native");
  return value ? value->as_bool() : true;
}

}  // namespace

StreamReport PassManager::run_stream(GateSource& source, const Device& device,
                                     GateSink& sink,
                                     const PipelineRuntime& runtime,
                                     const StreamPipelineOptions& options) const {
  StreamReport report;
  StreamStats& stats = report.stream;
  const StageLayout layout = analyze(spec_);

  bool router_streams = false;
  std::string router_alg;
  if (layout.standard && layout.router >= 0) {
    router_alg = spec_.router_name();
    router_streams = make_router(router_alg)->supports_streaming();
  }
  const bool full_fallback = !router_streams;
  const bool stream_head =
      !full_fallback && layout.placer >= 0 && spec_.placer_name() == "identity";

  obs::Observer* obs = runtime.obs;
  obs::Span compile_span(obs, "compile_stream", "core",
                         runtime.obs_parent_span);
  if (compile_span.active()) {
    compile_span.arg("circuit", source.name());
    if (!placer_label_.empty()) compile_span.arg("placer", placer_label_);
    if (!router_label_.empty()) compile_span.arg("router", router_label_);
    compile_span.arg("mode", full_fallback  ? "materialized"
                             : stream_head ? "streamed"
                                           : "streamed-route");
  }
  obs::add(obs, "compile.stream_runs");

  // --- Input: materialize unless the whole head streams. ---
  Circuit input = stream_head ? Circuit(source.num_qubits(), source.name())
                              : materialize_source(source, options.chunk_gates);
  if (!stream_head) {
    stats.materialized_input = true;
    stats.gates_in = input.size();
  }
  CompileContext ctx(input, device, runtime);

  if (full_fallback) {
    for (const std::unique_ptr<Pass>& pass : passes_) {
      stats.materialized_passes.push_back(pass->name());
    }
    run(ctx);
    const Circuit& product = ctx.postrouted ? ctx.result.final_circuit
                             : ctx.routed   ? ctx.result.routing.circuit
                                            : ctx.result.lowered;
    stats.gates_out = push_circuit(product, sink, options.chunk_gates);
    report.result = std::move(ctx.result);
    return report;
  }

  if (layout.placer < 0) {
    throw MappingError(
        "pass 'router' needs an initial placement: add a 'placer' pass "
        "earlier in the pipeline");
  }

  // Ceremony identical to run() for every pass executed materialized.
  obs::Span stage_span;
  const auto run_materialized = [&](int index) {
    Pass& pass = *passes_[static_cast<std::size_t>(index)];
    const std::string name = pass.name();
    if (pass.is_stage_boundary()) {
      ctx.checkpoint();
      if (ctx.runtime().stage_hook) ctx.runtime().stage_hook(name.c_str());
      stage_span.end();
      stage_span = obs::Span(obs, name, "stage");
    }
    const auto start = std::chrono::steady_clock::now();
    pass.run(ctx);
    ctx.timings.push_back({name, ms_since(start)});
    stats.materialized_passes.push_back(name);
  };
  const auto streamed_stage_boundary = [&](const char* name) {
    ctx.checkpoint();
    if (ctx.runtime().stage_hook) ctx.runtime().stage_hook(name);
    stage_span.end();
    stage_span = obs::Span(obs, name, "stage");
  };

  // --- Head: decompose + placer, streamed or materialized. ---
  std::optional<LoweringSource> lowering;
  std::optional<CircuitSource> lowered_source;
  GateSource* route_source = &source;
  if (stream_head) {
    if (layout.decompose >= 0) {
      lowering.emplace(source, device,
                       decompose_lowers_to_native(spec_, layout.decompose),
                       options.chunk_gates);
      route_source = &*lowering;
    }
    streamed_stage_boundary("placer");
    ctx.placement =
        Placement::identity(source.num_qubits(), device.num_qubits());
    ctx.placed = true;
  } else {
    if (layout.decompose >= 0) run_materialized(layout.decompose);
    run_materialized(layout.placer);
    lowered_source.emplace(ctx.result.lowered);
    route_source = &*lowered_source;
  }

  // --- Route: always through the bounded window. ---
  streamed_stage_boundary("router");
  std::unique_ptr<Router> router = make_router(router_alg);
  router->set_cancel_token(ctx.cancel());
  router->set_observer(obs);
  router->set_artifacts(&ctx.artifacts());
  StreamRouteOptions route_options;
  route_options.chunk_gates = options.chunk_gates;
  route_options.spill_gates = options.spill_gates;

  const bool tail_materializes =
      layout.postroute >= 0 || layout.schedule >= 0;
  std::optional<CircuitSink> collect;
  GateSink* route_dest = &sink;
  if (tail_materializes) {
    collect.emplace(device.num_qubits(),
                    route_source->name() + "@" + device.name());
    route_dest = &*collect;
  }
  std::optional<TokenSwapFinisherSink> token_swap_sink;
  if (layout.token_swap >= 0) {
    token_swap_sink.emplace(*route_dest);
    route_dest = &*token_swap_sink;
  }

  const auto route_start = std::chrono::steady_clock::now();
  StreamRouteStats route_stats = router->route_stream(
      *route_source, device, ctx.placement, *route_dest, route_options);
  ctx.timings.push_back({"router", ms_since(route_start)});
  stats.streamed_route = true;
  stats.window_peak_gates = route_stats.window_peak_gates;
  if (stream_head) {
    stats.gates_in =
        lowering ? lowering->raw_gates_in() : route_stats.gates_in;
    if (lowering) ctx.result.baseline_cycles = lowering->baseline_cycles();
  }

  if (token_swap_sink) {
    streamed_stage_boundary("token_swap_finisher");
    const auto start = std::chrono::steady_clock::now();
    token_swap_sink->finish(route_stats.final, route_stats.initial, device,
                            &ctx.artifacts());
    obs::add(obs, "router.bridge.token_swap_rounds",
             token_swap_sink->rounds());
    obs::add(obs, "router.bridge.token_swap_swaps", token_swap_sink->swaps());
    route_stats.added_swaps += token_swap_sink->swaps();
    ctx.timings.push_back({"token_swap_finisher", ms_since(start)});
  }

  RoutingResult& routing = ctx.result.routing;
  routing.initial = std::move(route_stats.initial);
  routing.final = std::move(route_stats.final);
  routing.added_swaps = route_stats.added_swaps;
  routing.added_moves = route_stats.added_moves;
  routing.added_bridges = route_stats.added_bridges;
  routing.direction_fixes = route_stats.direction_fixes;
  routing.runtime_ms = route_stats.runtime_ms;
  if (collect) routing.circuit = std::move(*collect).take();
  ctx.routed = true;

  // --- Tail: postroute/schedule on the collected circuit. ---
  if (layout.postroute >= 0) run_materialized(layout.postroute);
  if (layout.schedule >= 0) run_materialized(layout.schedule);
  stage_span.end();
  obs::observe(obs, "compile.final_two_qubit_gates",
               static_cast<double>(ctx.result.final_metrics.two_qubit_gates));

  if (tail_materializes) {
    const Circuit& product = ctx.postrouted ? ctx.result.final_circuit
                                            : ctx.result.routing.circuit;
    stats.gates_out = push_circuit(product, sink, options.chunk_gates);
  } else {
    stats.gates_out =
        token_swap_sink ? token_swap_sink->forwarded() : route_stats.gates_out;
  }
  report.result = std::move(ctx.result);
  return report;
}

}  // namespace qmap
