// E3 / Fig. 3 — mapping the example circuit on IBM QX4:
//   (b) the naive SWAP-chain solution ("significant overhead"),
//   (c) a heuristic solution [54] ("significantly cheaper", uses H gates to
//       flip CNOT directions),
//   (d) the exact minimal-SWAP/H solution [57].
//
// Reproduces the figure's qualitative ordering — naive >= heuristic >=
// exact in added cost — on the Fig. 1 skeleton with the paper's trivial
// placement, then across a small benchmark suite. Expected shape: the
// overhead columns shrink monotonically left to right.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace qmap;
using namespace qmap::bench;

struct Row {
  std::string workload;
  Circuit circuit;
};

std::vector<Row> suite() {
  Rng rng(1234);
  std::vector<Row> rows;
  rows.push_back({"fig1_skeleton", workloads::fig1_skeleton()});
  rows.push_back({"fig1_full", workloads::fig1_example()});
  rows.push_back({"ghz4", workloads::ghz(4)});
  rows.push_back({"qft4", workloads::qft(4)});
  rows.push_back({"grover2", workloads::grover(2, 3)});
  rows.push_back({"random4_a", workloads::random_circuit(4, 24, rng, 0.5)});
  rows.push_back({"random4_b", workloads::random_circuit(4, 24, rng, 0.5)});
  rows.push_back({"random5", workloads::random_circuit(5, 30, rng, 0.5)});
  return rows;
}

void print_figure() {
  const Device qx4 = devices::ibm_qx4();

  section("Fig. 3(a): IBM QX4 coupling graph (control -> target)");
  for (const auto& edge : qx4.coupling().edges()) {
    if (edge.a_to_b) {
      std::cout << "  Q" << edge.a << " -> Q" << edge.b << "\n";
    }
    if (edge.b_to_a) {
      std::cout << "  Q" << edge.b << " -> Q" << edge.a << "\n";
    }
  }

  section("Fig. 3(b)-(d): naive vs heuristic [54] vs exact [57]");
  paper_note(
      "'the naive approach yields a significant overhead, a heuristic "
      "solution is significantly cheaper... even this solution can be "
      "further improved by an exact approach'");
  TextTable table({"workload", "router", "swaps", "H-fixes", "gates",
                   "depth", "gate ratio", "runtime ms"});
  for (const Row& row : suite()) {
    const CircuitMetrics before = compute_metrics(row.circuit);
    // Paper setting: trivial placement q_i -> Q_i.
    const Placement trivial =
        Placement::identity(row.circuit.num_qubits(), qx4.num_qubits());
    for (const char* router : {"naive", "astar", "exact"}) {
      const MappedOutcome outcome =
          map_and_verify(row.circuit, qx4, router, trivial);
      table.add_row(
          {row.workload, router, TextTable::num(outcome.routing.added_swaps),
           TextTable::num(outcome.routing.direction_fixes),
           TextTable::num(outcome.metrics.total_gates),
           TextTable::num(outcome.metrics.depth),
           TextTable::num(static_cast<double>(outcome.metrics.total_gates) /
                              static_cast<double>(before.total_gates),
                          2),
           TextTable::num(outcome.routing.runtime_ms, 3)});
    }
  }
  std::cout << table.str();

  section("Routed Fig. 1 skeleton, heuristic solution (cf. Fig. 3(c))");
  const MappedOutcome heuristic = map_and_verify(
      workloads::fig1_skeleton(), qx4, "astar",
      Placement::identity(4, 5));
  AsciiOptions physical;
  physical.qubit_prefix = 'Q';
  std::cout << draw_ascii(heuristic.routing.circuit, physical);
}

void BM_RouteQx4(benchmark::State& state) {
  static const char* routers[] = {"naive", "astar", "exact"};
  const char* router = routers[state.range(0)];
  const Device qx4 = devices::ibm_qx4();
  const Circuit circuit =
      lower_to_device(workloads::fig1_skeleton(), qx4, true);
  const Placement initial = Placement::identity(4, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        make_router(router)->route(circuit, qx4, initial));
  }
  state.SetLabel(router);
}
BENCHMARK(BM_RouteQx4)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
