#include "arch/draw.hpp"

#include <algorithm>
#include <cmath>

namespace qmap {

std::string draw_device(const Device& device) {
  const auto& coords = device.coordinates();
  if (coords.empty()) {
    // Fallback: plain edge list.
    std::string out = device.name() + ":\n";
    for (const auto& edge : device.coupling().edges()) {
      out += "  Q" + std::to_string(edge.a);
      if (edge.a_to_b && edge.b_to_a) out += " -- ";
      else if (edge.a_to_b) out += " -> ";
      else out += " <- ";
      out += "Q" + std::to_string(edge.b) + "\n";
    }
    return out;
  }

  // Canvas: 4 columns per lattice column, 2 rows per lattice row.
  double min_r = coords[0].first;
  double min_c = coords[0].second;
  double max_r = min_r;
  double max_c = min_c;
  for (const auto& [r, c] : coords) {
    min_r = std::min(min_r, r);
    max_r = std::max(max_r, r);
    min_c = std::min(min_c, c);
    max_c = std::max(max_c, c);
  }
  const int cell_w = 5;
  const int cell_h = 2;
  const int width =
      static_cast<int>((max_c - min_c) + 1.0) * cell_w + cell_w;
  const int height =
      static_cast<int>((max_r - min_r) + 1.0) * cell_h + cell_h;
  std::vector<std::string> canvas(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width),
                                              ' '));
  const auto x_of = [&](double c) {
    return static_cast<int>(std::lround((c - min_c) * cell_w)) + 1;
  };
  const auto y_of = [&](double r) {
    return static_cast<int>(std::lround((r - min_r) * cell_h)) + 1;
  };
  const auto put = [&](int y, int x, const std::string& text) {
    if (y < 0 || y >= height) return;
    for (std::size_t i = 0; i < text.size(); ++i) {
      const int xi = x + static_cast<int>(i);
      if (xi >= 0 && xi < width) {
        canvas[static_cast<std::size_t>(y)][static_cast<std::size_t>(xi)] =
            text[i];
      }
    }
  };

  // Bonds first so node labels overwrite them.
  for (const auto& edge : device.coupling().edges()) {
    const auto [ra, ca] = coords[static_cast<std::size_t>(edge.a)];
    const auto [rb, cb] = coords[static_cast<std::size_t>(edge.b)];
    const int ya = y_of(ra);
    const int xa = x_of(ca);
    const int yb = y_of(rb);
    const int xb = x_of(cb);
    if (ya == yb) {
      for (int x = std::min(xa, xb) + 1; x < std::max(xa, xb); ++x) {
        put(ya, x, "-");
      }
    } else if (xa == xb) {
      for (int y = std::min(ya, yb) + 1; y < std::max(ya, yb); ++y) {
        put(y, xa, "|");
      }
    } else {
      // Diagonal bond (rotated lattices): draw a single slash midway.
      const int ym = (ya + yb) / 2;
      const int xm = (xa + xb) / 2;
      const bool down_right = (yb - ya) * (xb - xa) > 0;
      put(ym, xm + (down_right ? 0 : 1), down_right ? "\\" : "/");
    }
  }
  // Nodes.
  const char group_letters[] = {'a', 'b', 'c', 'd'};
  for (int q = 0; q < device.num_qubits(); ++q) {
    const auto [r, c] = coords[static_cast<std::size_t>(q)];
    std::string label = std::to_string(q);
    const int group = device.frequency_group(q);
    if (group >= 0 && group < 4) label += group_letters[group];
    put(y_of(r), x_of(c) - static_cast<int>(label.size() / 2), label);
  }

  std::string out = device.name() + " (labels: qubit index";
  if (!device.frequency_groups().empty()) {
    out += " + frequency group a=f1, b=f2, c=f3";
  }
  out += ")\n";
  for (std::string& line : canvas) {
    while (!line.empty() && line.back() == ' ') line.pop_back();
    if (!line.empty()) out += line + "\n";
  }
  return out;
}

std::string device_to_dot(const Device& device) {
  bool any_directed = false;
  for (const auto& edge : device.coupling().edges()) {
    if (!edge.a_to_b || !edge.b_to_a) any_directed = true;
  }
  std::string out = any_directed ? "digraph " : "graph ";
  out += "\"" + device.name() + "\" {\n";
  for (int q = 0; q < device.num_qubits(); ++q) {
    out += "  Q" + std::to_string(q) + " [label=\"Q" + std::to_string(q);
    const int group = device.frequency_group(q);
    if (group >= 0) out += "\\nf" + std::to_string(group + 1);
    const int line = device.feedline(q);
    if (line >= 0) out += "\\nFL" + std::to_string(line);
    out += "\"];\n";
  }
  for (const auto& edge : device.coupling().edges()) {
    if (any_directed) {
      if (edge.a_to_b) {
        out += "  Q" + std::to_string(edge.a) + " -> Q" +
               std::to_string(edge.b) + ";\n";
      }
      if (edge.b_to_a) {
        out += "  Q" + std::to_string(edge.b) + " -> Q" +
               std::to_string(edge.a) + ";\n";
      }
    } else {
      out += "  Q" + std::to_string(edge.a) + " -- Q" +
             std::to_string(edge.b) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace qmap
