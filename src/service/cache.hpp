// Sharded, content-addressed result cache with single-flight deduplication.
//
// At millions-of-users scale the request mix a mapping service sees is
// dominated by *identical* (circuit, device, pipeline, seed) submissions —
// the same textbook circuits against the same backends. The ResultCache
// turns that repetition into microsecond answers:
//
//   * content-addressed: keys are 128-bit digests of the canonical request
//     text (common/digest.hpp), so two clients submitting the same circuit
//     with shuffled JSON keys or elided pipeline defaults collapse onto
//     one entry (see PipelineSpec::canonical_json);
//   * sharded: keys hash onto independent (mutex, LRU list, map) shards,
//     so concurrent dispatch workers never serialize on one lock;
//   * bounded: each shard owns an equal slice of the byte budget and
//     evicts least-recently-used entries when an insert would overflow it;
//     an entry larger than a whole shard is rejected, never stored;
//   * single-flight: the first acquire() of a missing key becomes the
//     Leader (it must compile and complete()/abandon() the flight); every
//     concurrent acquire() of the same key becomes a Follower that wait()s
//     for the leader's value instead of racing a duplicate compile. N
//     identical in-flight requests trigger exactly one compile;
//   * negative caching: failed outcomes (exhausted ladder, admission
//     rejection) are stored with a TTL so a poisoned request cannot be
//     retried hot, but does get another chance once the TTL lapses.
//
// Observability (obs/): hit/miss/coalesced/eviction/expiry counters plus
// bytes/entries gauges under the service.cache.* names documented in
// DESIGN.md §10 (linted by scripts/check_service_metrics.sh).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "engine/cancel.hpp"
#include "obs/obs.hpp"

namespace qmap::service {

/// The cached value: everything a cache hit needs to answer a request
/// byte-identically to the cold path, stored as serialized strings so the
/// byte accounting is exact and hits never re-serialize.
struct CachedOutcome {
  /// True when the compile produced a usable result (CompileOutcome::ok).
  bool ok = false;
  /// CompileOutcome::fingerprint() — byte-deterministic for a fixed seed,
  /// so a hit replays exactly what the cold path would have produced.
  std::string fingerprint;
  /// content_digest(fingerprint): the short identity echoed to clients.
  std::string fingerprint_digest;
  /// CompileOutcome::to_json().dump() — replayed verbatim on verbose hits.
  std::string outcome_json;
  std::string winner_label;
  int rung = -1;
  bool validated = false;
  /// Failure detail when !ok (negative entry).
  std::string error;
  /// Recovery classification of the failure when !ok — the terminal
  /// attempt's ErrorClass (Transient for cancellations). The service's
  /// per-device circuit breaker counts only Permanent ones.
  ErrorClass error_class = ErrorClass::Permanent;
  /// True when the outcome was produced by a brownout-down-tiered compile.
  /// Brownout outcomes are never stored (complete(..., store=false)), so a
  /// degraded answer cannot be replayed after the overload clears.
  bool brownout = false;

  /// Approximate heap footprint used for the byte budget.
  [[nodiscard]] std::size_t bytes() const;
};

struct CacheConfig {
  /// Total byte budget across all shards (entries' CachedOutcome::bytes()).
  std::size_t max_bytes = std::size_t(64) << 20;
  /// Lock shards (clamped to >= 1). Each owns max_bytes / shards.
  int shards = 8;
  /// Lifetime of negative (!ok) entries in milliseconds; 0 disables
  /// negative caching entirely. Positive entries never expire (they are
  /// deterministic replays), only LRU-evict.
  double negative_ttl_ms = 2000.0;
  /// Metrics sink (not owned; null disables recording).
  obs::Observer* obs = nullptr;
  /// Microsecond clock for TTL bookkeeping; defaults to steady_clock.
  /// Tests inject a fake to step time over the negative TTL.
  std::function<std::int64_t()> now_us;
};

struct CacheStats {
  std::uint64_t hits = 0;           // positive hits
  std::uint64_t negative_hits = 0;  // cached-failure hits
  std::uint64_t misses = 0;         // acquire() became Leader
  std::uint64_t coalesced = 0;      // acquire() became Follower
  std::uint64_t evictions = 0;      // LRU evictions under byte pressure
  std::uint64_t expired = 0;        // negative entries aged out
  std::uint64_t insert_rejected = 0;  // entry larger than one shard
  std::size_t bytes = 0;
  std::size_t entries = 0;
};

class ResultCache {
 public:
  explicit ResultCache(CacheConfig config = {});

  /// One in-flight computation of one key. The Leader's compile token is
  /// exposed so a service can cancel work no client is waiting for any
  /// more: interest starts at 1 (the leader) and rises by 1 per follower;
  /// drop_interest() fires the token once every interested party has hung
  /// up. Completion is sticky — a token fired after complete() is a no-op.
  class Flight {
   public:
    explicit Flight(std::string key, std::size_t shard)
        : key_(std::move(key)), shard_(shard) {}

    [[nodiscard]] const std::string& key() const noexcept { return key_; }
    [[nodiscard]] CancelToken& token() noexcept { return token_; }

    void retain_interest() noexcept;
    /// Fires token() when the count reaches zero.
    void drop_interest() noexcept;

   private:
    friend class ResultCache;

    std::string key_;
    std::size_t shard_ = 0;
    CancelToken token_;
    std::atomic<int> interest_{1};

    mutable std::mutex mutex_;
    std::condition_variable done_cv_;
    bool done_ = false;
    std::shared_ptr<const CachedOutcome> result_;  // null after abandon()
  };

  struct Lookup {
    enum class Kind { Hit, Leader, Follower };
    Kind kind = Kind::Hit;
    /// Set when Hit.
    std::shared_ptr<const CachedOutcome> value;
    /// Set when Leader (must complete()/abandon()) or Follower (wait()).
    std::shared_ptr<Flight> flight;
  };

  /// Single-flight acquire; see Lookup. An expired negative entry reads as
  /// a miss (and is erased). Hits refresh LRU recency.
  [[nodiscard]] Lookup acquire(const std::string& key);

  /// Publishes the leader's outcome: stores it (positive always, negative
  /// only when negative_ttl_ms > 0), wakes every follower with the shared
  /// value, and retires the flight. `store` = false delivers the value to
  /// the followers but keeps it out of the cache — the service uses this
  /// for brownout-degraded outcomes that must not outlive the overload.
  void complete(const std::shared_ptr<Flight>& flight, CachedOutcome outcome,
                bool store = true);

  /// Retires the flight without a value (e.g. the compile was cancelled):
  /// followers wake with nullptr and nothing is cached, so the next
  /// request recomputes.
  void abandon(const std::shared_ptr<Flight>& flight);

  /// Follower side: blocks until the leader completes or abandons.
  [[nodiscard]] std::shared_ptr<const CachedOutcome> wait(
      const std::shared_ptr<Flight>& flight) const;

  /// Plain lookup (no flight creation): refreshes recency on hit.
  [[nodiscard]] std::shared_ptr<const CachedOutcome> lookup(
      const std::string& key);
  /// Direct insert, bypassing single-flight (tests/tools).
  void insert(const std::string& key, CachedOutcome outcome);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  void clear();

 private:
  struct Entry {
    std::shared_ptr<const CachedOutcome> value;
    std::list<std::string>::iterator lru_it;
    /// Absolute expiry in clock microseconds; 0 = never (positive entry).
    std::int64_t expires_us = 0;
    std::size_t bytes = 0;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Entry> entries;
    /// Front = most recently used.
    std::list<std::string> lru;
    std::unordered_map<std::string, std::shared_ptr<Flight>> flights;
    std::size_t bytes = 0;
  };

  [[nodiscard]] std::size_t shard_of(const std::string& key) const;
  [[nodiscard]] std::int64_t now_us() const;
  /// Inserts under the shard lock; evicts LRU entries to fit.
  void insert_locked(Shard& shard, const std::string& key,
                     std::shared_ptr<const CachedOutcome> value);
  void update_gauges() const;

  CacheConfig config_;
  std::size_t shard_budget_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> negative_hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> insert_rejected_{0};
  std::atomic<std::size_t> bytes_{0};
  std::atomic<std::size_t> entries_{0};
};

}  // namespace qmap::service
