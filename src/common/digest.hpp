// Content digests for cache keys and fingerprint summaries.
//
// The compile service (src/service/) addresses its result cache by the
// *content* of a request — circuit text, device name, canonical pipeline
// JSON, seed — not by object identity, so identical submissions from
// different clients collapse onto one entry. These helpers provide the
// digest: two independently seeded 64-bit FNV-1a passes concatenated into
// a 128-bit hex string. Not cryptographic — collision resistance here
// guards against accidental aliasing in an in-memory cache, not against an
// adversary; at 128 bits a billion distinct requests collide with
// probability ~1e-20, which is the same trust level the rest of the repo
// puts in fingerprint string comparison.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace qmap {

/// 64-bit FNV-1a over `data`, starting from `basis` (default is the
/// standard offset basis). Deterministic across platforms and runs.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view data,
                                    std::uint64_t basis = 0xCBF29CE484222325ULL);

/// 32-hex-character content digest: fnv1a64 under two unrelated bases,
/// concatenated. Stable by contract — cached artifacts and golden tests
/// may pin these strings.
[[nodiscard]] std::string content_digest(std::string_view data);

}  // namespace qmap
