// Streaming workload generators for out-of-core benchmarks.
//
// A RepeatedBlockSource materializes ONE block circuit and serves it
// `repeats` times back-to-back as a GateSource — a million-gate workload
// costs the memory of a single block, so peak-RSS measurements of the
// streaming pipeline see the window, not the generator. Every qubit of a
// block is touched by the block's gates, so the router's bounded window
// retires steadily (the repeated structure never forces unbounded
// lookahead).
#pragma once

#include <cstddef>
#include <cstdint>

#include "ir/circuit.hpp"
#include "ir/gate_stream.hpp"

namespace qmap::workloads {

/// Serves `repeats` back-to-back copies of `block` as a gate stream.
class RepeatedBlockSource final : public GateSource {
 public:
  RepeatedBlockSource(Circuit block, std::size_t repeats);

  [[nodiscard]] int num_qubits() const override {
    return block_.num_qubits();
  }
  [[nodiscard]] int num_cbits() const override { return block_.num_cbits(); }
  [[nodiscard]] std::string name() const override { return block_.name(); }

  std::size_t pull(std::vector<Gate>& out, std::size_t max_gates) override;

  /// Gates the full stream will deliver.
  [[nodiscard]] std::size_t total_gates() const noexcept {
    return block_.size() * repeats_;
  }

 private:
  Circuit block_;
  std::size_t repeats_;
  std::size_t block_pos_ = 0;
  std::size_t blocks_served_ = 0;
};

/// Repeated n-qubit QFT blocks (without the final reversal SWAPs, so every
/// repeat has the same all-to-all phase-ladder structure), totalling at
/// least `min_gates` gates.
[[nodiscard]] RepeatedBlockSource qft_stream(int n, std::size_t min_gates);

/// Repeated Cuccaro ripple-carry adder blocks (2n+2 qubits), totalling at
/// least `min_gates` gates.
[[nodiscard]] RepeatedBlockSource cuccaro_stream(int n, std::size_t min_gates);

/// Repeated random-circuit blocks (CNOTs + random rotations, seeded),
/// totalling at least `min_gates` gates. `block_gates` sets the block
/// size.
[[nodiscard]] RepeatedBlockSource random_stream(int n, std::size_t min_gates,
                                                std::uint64_t seed,
                                                int block_gates = 512);

}  // namespace qmap::workloads
