// Built-in device models: the two devices the paper studies in depth
// (IBM QX4, Sec. IV; Surface-17, Sec. V), their relatives (IBM QX5,
// Surface-7), and parametric generators for the topology families the
// prior-work survey classifies (1D linear, 2D grid, all-to-all).
#pragma once

#include "arch/device.hpp"

namespace qmap::devices {

/// IBM QX4 "Tenerife": 5 qubits, *directed* CNOT coupling graph of
/// Fig. 3(a); native gates U(theta, phi, lambda) and CX.
/// Directed edges: Q1->Q0, Q2->Q0, Q2->Q1, Q2->Q4, Q3->Q2, Q3->Q4.
[[nodiscard]] Device ibm_qx4();

/// IBM QX5 "Albatross": 16 qubits, directed ladder.
[[nodiscard]] Device ibm_qx5();

/// QuTech/Intel Surface-17 (Fig. 4): 17 transmons in the rotated
/// distance-3 surface-code lattice, symmetric CZ coupling, native gates
/// {Rx, Ry, CZ}, three microwave frequency groups (f1 > f2 > f3), three
/// measurement feedlines, and CZ parking.
///
/// Numbering is reading order of the standard lattice drawing, which
/// reproduces the facts stated in the paper: qubits 1 and 5 are connected,
/// 1 and 7 are not, and qubits {0, 2, 3, 6, 9, 12} share a feedline.
[[nodiscard]] Device surface17();

/// QuTech Surface-7: the 7-qubit predecessor used in Fig. 2's example
/// (rows of 2/3/2 qubits, symmetric CZ coupling).
[[nodiscard]] Device surface7();

/// 1D chain of n qubits, symmetric native `two_qubit` gate.
[[nodiscard]] Device linear(int n, GateKind two_qubit = GateKind::CX);

/// rows x cols nearest-neighbour grid, symmetric coupling.
[[nodiscard]] Device grid(int rows, int cols,
                          GateKind two_qubit = GateKind::CZ);

/// All-to-all connectivity (trapped-ion-like, Sec. VI-C).
[[nodiscard]] Device all_to_all(int n, GateKind two_qubit = GateKind::CX);

/// Trapped-ion module (Sec. VI-C): all-to-all connectivity inside the
/// trap, but two-qubit gates are serialized on the shared motional bus
/// (max_parallel_two_qubit = 1) and run much slower than single-qubit
/// rotations.
[[nodiscard]] Device trapped_ion(int n);

/// Silicon quantum-dot array (Sec. VI-C): a rows x cols grid of dots with
/// exchange-interaction CZ gates and native shuttling (Move) — qubits can
/// be relocated into empty dots, enabling non-SWAP routing.
[[nodiscard]] Device quantum_dot_array(int rows, int cols);

}  // namespace qmap::devices
