// Euler-angle decompositions of single-qubit unitaries.
//
// Sec. IV: IBM devices natively run U(theta, phi, lambda) =
// Rz(phi) Ry(theta) Rz(lambda) — the ZYZ decomposition. Sec. V: Surface-17
// natively runs only Rx and Ry rotations, so single-qubit unitaries are
// lowered via the YXY decomposition U = Ry(phi) Rx(theta) Ry(lambda).
#pragma once

#include "common/matrix.hpp"

namespace qmap {

struct EulerAngles {
  double theta = 0.0;   // middle rotation
  double phi = 0.0;     // left (last applied) rotation
  double lambda = 0.0;  // right (first applied) rotation
  double phase = 0.0;   // global phase alpha

  /// Reconstruction helper for tests: e^{i phase} A(phi) B(theta) A(lambda).
};

/// U = e^{i phase} Rz(phi) Ry(theta) Rz(lambda). `u` must be 2x2 unitary.
[[nodiscard]] EulerAngles zyz_decompose(const Matrix& u);

/// U = e^{i phase} Ry(phi) Rx(theta) Ry(lambda).
[[nodiscard]] EulerAngles yxy_decompose(const Matrix& u);

/// Rebuilds the matrix from ZYZ angles (test helper).
[[nodiscard]] Matrix matrix_from_zyz(const EulerAngles& angles);

/// Rebuilds the matrix from YXY angles (test helper).
[[nodiscard]] Matrix matrix_from_yxy(const EulerAngles& angles);

}  // namespace qmap
