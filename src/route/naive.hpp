// Naive router — the "straight-forward approach" of Sec. IV / Fig. 3(b):
// for every two-qubit gate whose operands are not adjacent, SWAP one
// operand along a shortest path until the pair is connected, then execute
// the gate. No lookahead, no placement reuse — the overhead baseline every
// smarter mapper is measured against.
#pragma once

#include "route/router.hpp"

namespace qmap {

class NaiveRouter final : public Router {
 public:
  [[nodiscard]] std::string name() const override { return "naive"; }
  [[nodiscard]] RoutingResult route(const Circuit& circuit,
                                    const Device& device,
                                    const Placement& initial) override;
};

}  // namespace qmap
