// Registries for the three extensible families: placers, routers, passes.
//
// The placer/router factories moved here from core/compiler.cpp so that
// passes, the engine, benches, and tests all resolve strategy names through
// one seam (core/compiler.hpp re-exports them; existing includes keep
// working). The pass registry maps pipeline-spec names to Pass instances
// and is the single list the DESIGN.md §9 table — and the
// scripts/check_pass_registry.sh lint — must cover.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "layout/placers.hpp"
#include "pass/pass.hpp"
#include "route/router.hpp"

namespace qmap {

/// Factory helpers shared by the compiler, engine, benches and tests.
/// Unknown names throw a MappingError whose message lists every valid name.
/// `seed` feeds stochastic placers (annealing); deterministic placers
/// ignore it.
[[nodiscard]] std::unique_ptr<Placer> make_placer(const std::string& name,
                                                  std::uint64_t seed = 0xC0FFEE);
[[nodiscard]] std::unique_ptr<Router> make_router(const std::string& name);

/// Registered strategy names, in the factories' canonical order. The
/// portfolio engine enumerates these to build/validate its strategy set.
[[nodiscard]] const std::vector<std::string>& known_placers();
[[nodiscard]] const std::vector<std::string>& known_routers();

/// Registered pass names, canonical order: the standard pipeline top to
/// bottom ("decompose", "placer", "router", "postroute", "schedule").
[[nodiscard]] const std::vector<std::string>& known_passes();

/// Resolves a pass name or alias ("place" -> "placer", "route" ->
/// "router", "lower" -> "decompose", "scheduler" -> "schedule") to its
/// canonical name. Unknown names throw a MappingError listing every valid
/// name and alias.
[[nodiscard]] std::string canonical_pass_name(const std::string& name);

/// Builds a pass from its (canonical or aliased) name and a JSON options
/// object (null = defaults). Unknown option keys throw a MappingError
/// naming the key and the valid keys for that pass.
[[nodiscard]] std::unique_ptr<Pass> make_pass(const std::string& name,
                                              const Json& options = Json());

/// The complete option object a pass runs with when none is given — every
/// key present, every value the default make_pass() would substitute.
/// This is the normal form PipelineSpec::canonical() materializes so that
/// option elision cannot split a content-addressed cache: {"pass":
/// "router"} and {"pass": "router", "options": {"algorithm": "sabre"}}
/// canonicalize identically. Must stay in lock-step with make_pass()'s
/// fallbacks (pinned by tests/test_pass.cpp).
[[nodiscard]] Json default_pass_options(const std::string& name);

}  // namespace qmap
