#include "explore/architecture_search.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "decompose/decomposer.hpp"
#include "layout/placers.hpp"

namespace qmap {
namespace {

Device device_from_edges(int num_qubits,
                         const std::vector<std::pair<int, int>>& edges,
                         GateKind native_two_qubit) {
  CouplingGraph coupling(num_qubits);
  for (const auto& [a, b] : edges) coupling.add_edge(a, b);
  Device device("explored" + std::to_string(num_qubits),
                std::move(coupling));
  device.set_native_two_qubit(native_two_qubit);
  return device;
}

/// Maximum-weight spanning tree of the combined interaction graph
/// (Kruskal); qubits without interactions are chained on at weight 0.
std::vector<std::pair<int, int>> interaction_spanning_tree(
    int num_qubits, const std::vector<Circuit>& workloads) {
  std::vector<std::vector<long>> weight(
      static_cast<std::size_t>(num_qubits),
      std::vector<long>(static_cast<std::size_t>(num_qubits), 0));
  for (const Circuit& circuit : workloads) {
    for (const Gate& gate : circuit) {
      if (!gate.is_two_qubit()) continue;
      const int a = gate.qubits[0];
      const int b = gate.qubits[1];
      ++weight[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
      ++weight[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)];
    }
  }
  struct Candidate {
    long w;
    int a;
    int b;
  };
  std::vector<Candidate> candidates;
  for (int a = 0; a < num_qubits; ++a) {
    for (int b = a + 1; b < num_qubits; ++b) {
      candidates.push_back(
          {weight[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)],
           a, b});
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& x, const Candidate& y) {
                     return x.w > y.w;
                   });
  // Union-find.
  std::vector<int> parent(static_cast<std::size_t>(num_qubits));
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      x = parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(x)])];
    }
    return x;
  };
  std::vector<std::pair<int, int>> tree;
  for (const Candidate& c : candidates) {
    const int ra = find(c.a);
    const int rb = find(c.b);
    if (ra == rb) continue;
    parent[static_cast<std::size_t>(ra)] = rb;
    tree.emplace_back(c.a, c.b);
    if (tree.size() + 1 == static_cast<std::size_t>(num_qubits)) break;
  }
  return tree;
}

}  // namespace

long evaluate_architecture(const Device& device,
                           const std::vector<Circuit>& workloads,
                           const ArchitectureSearchOptions& options) {
  long total = 0;
  const auto router = make_router(options.router);
  const auto placer = make_placer(options.placer);
  for (const Circuit& circuit : workloads) {
    const Circuit lowered =
        lower_to_device(circuit, device, /*keep_swaps=*/true);
    const Placement initial = placer->place(lowered, device);
    const RoutingResult result = router->route(lowered, device, initial);
    total += 3 * static_cast<long>(result.added_swaps) +
             static_cast<long>(result.direction_fixes);
  }
  return total;
}

ArchitectureSearchResult search_architecture(
    int num_qubits, const std::vector<Circuit>& workloads,
    const ArchitectureSearchOptions& options) {
  if (num_qubits < 2) throw MappingError("need at least 2 qubits");
  for (const Circuit& circuit : workloads) {
    if (circuit.num_qubits() > num_qubits) {
      throw MappingError("workload wider than the architecture under search");
    }
  }
  const int budget =
      options.edge_budget == 0 ? num_qubits - 1 : options.edge_budget;
  if (budget < num_qubits - 1) {
    throw MappingError("edge budget cannot connect " +
                       std::to_string(num_qubits) + " qubits");
  }

  std::vector<std::pair<int, int>> edges =
      interaction_spanning_tree(num_qubits, workloads);
  ArchitectureSearchResult result;
  {
    const Device tree =
        device_from_edges(num_qubits, edges, options.native_two_qubit);
    result.initial_cost = evaluate_architecture(tree, workloads, options);
  }
  long current_cost = result.initial_cost;

  while (static_cast<int>(edges.size()) < budget && current_cost > 0) {
    long best_cost = current_cost;
    std::pair<int, int> best_edge{-1, -1};
    for (int a = 0; a < num_qubits; ++a) {
      for (int b = a + 1; b < num_qubits; ++b) {
        if (std::find(edges.begin(), edges.end(), std::pair{a, b}) !=
            edges.end()) {
          continue;
        }
        std::vector<std::pair<int, int>> trial = edges;
        trial.emplace_back(a, b);
        const Device device =
            device_from_edges(num_qubits, trial, options.native_two_qubit);
        const long cost = evaluate_architecture(device, workloads, options);
        if (cost < best_cost) {
          best_cost = cost;
          best_edge = {a, b};
        }
      }
    }
    if (best_edge.first < 0) break;  // no edge helps any more
    edges.push_back(best_edge);
    result.added_edges.push_back(best_edge);
    current_cost = best_cost;
  }

  result.device =
      device_from_edges(num_qubits, edges, options.native_two_qubit);
  result.final_cost = current_cost;
  return result;
}

}  // namespace qmap
