file(REMOVE_RECURSE
  "CMakeFiles/qmap_arch.dir/arch/builtin.cpp.o"
  "CMakeFiles/qmap_arch.dir/arch/builtin.cpp.o.d"
  "CMakeFiles/qmap_arch.dir/arch/config.cpp.o"
  "CMakeFiles/qmap_arch.dir/arch/config.cpp.o.d"
  "CMakeFiles/qmap_arch.dir/arch/device.cpp.o"
  "CMakeFiles/qmap_arch.dir/arch/device.cpp.o.d"
  "CMakeFiles/qmap_arch.dir/arch/draw.cpp.o"
  "CMakeFiles/qmap_arch.dir/arch/draw.cpp.o.d"
  "CMakeFiles/qmap_arch.dir/arch/noise.cpp.o"
  "CMakeFiles/qmap_arch.dir/arch/noise.cpp.o.d"
  "CMakeFiles/qmap_arch.dir/arch/topology.cpp.o"
  "CMakeFiles/qmap_arch.dir/arch/topology.cpp.o.d"
  "libqmap_arch.a"
  "libqmap_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qmap_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
