// Exact router — minimal SWAP/direction-fix mapping in the spirit of
// Wille, Burgholzer, Zulehner [57] (used for Fig. 3(d)).
//
// Runs Dijkstra over the state space
//     (next two-qubit gate to execute, placement of program qubits)
// with SWAP transitions weighted `cost_per_swap` and gate executions
// weighted `cost_per_direction_fix` when the CX orientation must be
// inverted. With the default weights this minimizes the number of SWAPs
// and, among SWAP-minimal solutions, the number of inverted CNOTs — the
// "minimal number of SWAP and H operations" objective of [57].
//
// The state space is (#physical)! / (#free)! placements per gate, so this
// is intentionally limited to small devices (Sec. IV: exact approaches
// "are not scalable"); the scalability wall is itself one of the paper's
// talking points and is measured in bench_exact_scalability.
//
// Optimality caveat (shared with [57]): the result is minimal with respect
// to the circuit's *given total gate order*. DAG-based heuristic routers
// may reorder independent gates and can therefore occasionally use fewer
// SWAPs on circuits with much commuting freedom; on a fixed gate sequence
// this router lower-bounds every SWAP-inserting strategy.
#pragma once

#include "route/router.hpp"

namespace qmap {

class ExactRouter final : public Router {
 public:
  struct Options {
    long cost_per_swap = 1000;        // primary objective
    long cost_per_direction_fix = 1;  // tie-breaker (4 H gates per fix)
    /// Dijkstra state budget; throws MappingError when exceeded.
    std::size_t max_states = 4'000'000;
  };

  ExactRouter() = default;
  explicit ExactRouter(const Options& options) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "exact"; }
  [[nodiscard]] RoutingResult route(const Circuit& circuit,
                                    const Device& device,
                                    const Placement& initial) override;

 private:
  Options options_;
};

}  // namespace qmap
