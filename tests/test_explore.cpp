// Workload-aware architecture-search tests ([69], Sec. VII discussion).
#include <gtest/gtest.h>

#include "arch/builtin.hpp"
#include "explore/architecture_search.hpp"
#include "workloads/workloads.hpp"

namespace qmap {
namespace {

TEST(ArchitectureSearch, SpanningTreeBudgetYieldsConnectedDevice) {
  const std::vector<Circuit> workloads{workloads::ghz(5)};
  ArchitectureSearchOptions options;
  const ArchitectureSearchResult result =
      search_architecture(5, workloads, options);
  EXPECT_TRUE(result.device.coupling().is_connected());
  EXPECT_EQ(result.device.coupling().num_edges(), 4u);  // n - 1
}

TEST(ArchitectureSearch, GhzChainNeedsNoExtraEdges) {
  // GHZ's interaction graph IS a chain: the spanning tree already routes
  // it SWAP-free (with an optimal placement; the greedy placer cannot
  // always find the perfect chain embedding).
  const std::vector<Circuit> workloads{workloads::ghz(6)};
  ArchitectureSearchOptions options;
  options.placer = "exhaustive";
  const ArchitectureSearchResult result =
      search_architecture(6, workloads, options);
  EXPECT_EQ(result.final_cost, 0);
  for (int q = 0; q + 1 < 6; ++q) {
    EXPECT_TRUE(result.device.coupling().connected(q, q + 1));
  }
}

TEST(ArchitectureSearch, ExtraBudgetNeverHurts) {
  Rng rng(3);
  const std::vector<Circuit> workloads{
      workloads::random_circuit(5, 25, rng, 0.5)};
  ArchitectureSearchOptions tree_only;
  const long tree_cost =
      search_architecture(5, workloads, tree_only).final_cost;
  ArchitectureSearchOptions generous;
  generous.edge_budget = 8;
  const ArchitectureSearchResult richer =
      search_architecture(5, workloads, generous);
  EXPECT_LE(richer.final_cost, tree_cost);
  EXPECT_LE(richer.device.coupling().num_edges(), 8u);
}

TEST(ArchitectureSearch, BeatsGenericLineAtEqualBudget) {
  // QFT interacts all-to-all; at a grid-level edge budget the workload-
  // aware topology must not lose to the same-budget line device.
  const std::vector<Circuit> workloads{workloads::qft(6)};
  ArchitectureSearchOptions options;
  options.edge_budget = 7;
  const ArchitectureSearchResult found =
      search_architecture(6, workloads, options);
  Device line = devices::linear(6, GateKind::CZ);
  line.set_native_two_qubit(GateKind::CZ);
  const long line_cost = evaluate_architecture(line, workloads, options);
  EXPECT_LE(found.final_cost, line_cost);
}

TEST(ArchitectureSearch, ValidatesInputs) {
  EXPECT_THROW((void)search_architecture(1, {}, {}), MappingError);
  ArchitectureSearchOptions tight;
  tight.edge_budget = 2;
  EXPECT_THROW((void)search_architecture(5, {}, tight), MappingError);
  const std::vector<Circuit> wide{workloads::ghz(8)};
  EXPECT_THROW((void)search_architecture(4, wide, {}), MappingError);
}

TEST(ArchitectureSearch, EvaluateCountsRoutedCost) {
  // On an all-to-all device every workload routes for free.
  const std::vector<Circuit> workloads{workloads::qft(5)};
  EXPECT_EQ(evaluate_architecture(devices::all_to_all(5, GateKind::CZ),
                                  workloads, {}),
            0);
  // On a line, QFT needs SWAPs.
  EXPECT_GT(evaluate_architecture(devices::linear(5, GateKind::CZ),
                                  workloads, {}),
            0);
}

}  // namespace
}  // namespace qmap
