// Internal OpenQASM 2.0 parser machinery, shared by the materializing
// front end (openqasm.cpp) and the chunked streaming source (stream.cpp).
//
// The parser is statement-incremental: a StatementLexer cuts an
// std::istream into statements without ever holding more than one
// statement in memory, and OpenQasmParser consumes them one at a time,
// appending gates to an internal Circuit that a streaming caller may
// drain between statements. parse_openqasm() is the degenerate loop
// "lex, handle, repeat, finalize, take everything" — so the streaming
// and materialized paths are the same code and stay byte-identical.
//
// Not part of the public API; include only from within src/qasm/.
#pragma once

#include <istream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "ir/circuit.hpp"

namespace qmap {
namespace qasm_detail {

/// Splits an OpenQASM character stream into statements. A statement ends
/// at a ';' at brace depth 0 or at the '}' closing a gate-definition
/// body. Line comments are skipped inline, with newlines still counted,
/// so diagnostics carry the true line/column even after comment lines
/// (the old slurp-and-strip front end lost them).
class StatementLexer {
 public:
  explicit StatementLexer(std::istream& in) : in_(&in) {}

  /// Reads the next statement into `statement` (leading whitespace
  /// dropped). On success fills the 1-based line/column of the
  /// statement's first character and returns true; returns false at
  /// end-of-stream. Throws ParseError on unbalanced braces or trailing
  /// content without a ';'.
  bool next(std::string& statement, int& line, int& column);

  /// Position of the next unread character (for end-of-stream errors).
  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] int column() const noexcept { return column_; }

 private:
  /// One character, comment-skipped; EOF at end. Records the consumed
  /// character's own position in char_line_/char_column_.
  int get();
  int raw_get();

  std::istream* in_;
  int line_ = 1;       // position of the next unread character
  int column_ = 1;
  int char_line_ = 1;  // position of the last character returned by get()
  int char_column_ = 1;
};

/// Statement-at-a-time OpenQASM 2.0 parser. Feed statements from a
/// StatementLexer via handle_statement(); call finalize() after the last
/// one. Gates accumulate in circuit(); a streaming caller drains them
/// with drain_gates() between statements, a materializing caller calls
/// take() once at the end.
class OpenQasmParser {
 public:
  OpenQasmParser() = default;

  void handle_statement(std::string_view statement, int line, int column);

  /// Header check + circuit construction for gate-free programs. Throws
  /// ParseError when the 'OPENQASM 2.0;' header never appeared.
  void finalize();

  /// True once the first gate-producing statement froze the register
  /// layout and constructed the circuit.
  [[nodiscard]] bool circuit_started() const noexcept {
    return circuit_initialized_;
  }
  [[nodiscard]] int num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] int num_cbits() const noexcept { return num_cbits_; }

  /// Moves the gates parsed so far out of the internal circuit (empty
  /// if the circuit has not started). Register metadata is retained.
  [[nodiscard]] std::vector<Gate> drain_gates();

  /// Moves the finished circuit out (materializing path).
  [[nodiscard]] Circuit take() && { return std::move(circuit_); }

 private:
  struct Register {
    int offset = 0;
    int size = 0;
  };

  /// One operand: a whole register or a single element of one.
  struct Operand {
    Register reg;
    int element = -1;  // -1 = whole register (broadcast)
  };

  /// User gate definition: "gate name(p1, p2) a, b { body; }" — stored as
  /// raw body statements and expanded by textual substitution at call
  /// sites (the OpenQASM 2.0 macro semantics).
  struct GateDefinition {
    std::vector<std::string> params;
    std::vector<std::string> args;
    std::vector<std::string> body;
  };

  [[noreturn]] void fail(const std::string& message, int line) const;

  void declare_register(std::string_view rest, int line, bool quantum);
  [[nodiscard]] Operand parse_operand(std::string_view text, int line,
                                      bool quantum) const;
  void ensure_circuit();
  void handle_measure(std::string_view rest, int line);
  void handle_barrier(std::string_view rest, int line);
  void define_gate(std::string_view rest, int line);
  void expand_definition(const std::string& name,
                         const GateDefinition& definition,
                         const std::vector<double>& params,
                         const std::vector<std::string>& operand_texts,
                         int line);
  void handle_gate(std::string_view statement, int line);

  Circuit circuit_;
  bool circuit_initialized_ = false;
  bool saw_header_ = false;
  std::map<std::string, Register> qregs_;
  std::map<std::string, Register> cregs_;
  std::map<std::string, GateDefinition> gate_definitions_;
  int expansion_depth_ = 0;
  int num_qubits_ = 0;
  int num_cbits_ = 0;
  int column_ = 1;  // column of the statement currently being handled
};

/// Appends one gate as an OpenQASM 2.0 line (trailing "\n" included) —
/// the single formatter behind to_openqasm() and QasmStreamSink, so the
/// streamed writer is byte-identical to the materialized one.
void append_openqasm_gate(std::string& out, const Gate& gate);

}  // namespace qasm_detail
}  // namespace qmap
