// Cooperative cancellation for long-running compilation passes.
//
// The portfolio engine gives every strategy a CancelToken carrying an
// optional soft deadline. The routers' main loops poll the token (through
// Router::check_cancelled) and abort by throwing CancelledError, which the
// engine records as `cancelled` telemetry instead of a failure. Tokens are
// plain data + atomics: signalling is lock-free and polling is cheap
// enough for per-iteration checks in SWAP-selection loops.
//
// Header-only on purpose: src/route/ polls tokens but must not link
// against the engine library (the engine sits *above* routing in the
// dependency order).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/error.hpp"

namespace qmap {

/// Thrown by a cancellation checkpoint once its token fires. Derived from
/// qmap::Error so generic error handling still works, but distinct so the
/// engine can tell "gave up on request" from "genuinely failed". Classified
/// Transient: a deadline slice expiring is exactly the failure the
/// resilience pipeline retries when wall-clock budget remains.
class CancelledError : public Error {
 public:
  using Error::Error;
  [[nodiscard]] ErrorClass error_class() const noexcept override {
    return ErrorClass::Transient;
  }
};

/// Cooperative cancellation token: a manual flag plus an optional
/// steady-clock deadline. Thread-safe; one writer (the engine) and many
/// readers (worker checkpoints) need no locking.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;

  /// Requests cancellation. Idempotent; never blocks.
  void cancel() noexcept { flag_.store(true, std::memory_order_relaxed); }

  /// Arms a soft deadline: cancelled() turns true once `deadline` passes.
  void set_deadline(Clock::time_point deadline) noexcept {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  /// Convenience: deadline `ms` milliseconds from now (<= 0 disarms).
  void set_deadline_after_ms(double ms) noexcept {
    if (ms <= 0.0) {
      deadline_ns_.store(0, std::memory_order_relaxed);
      return;
    }
    set_deadline(Clock::now() +
                 std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double, std::milli>(ms)));
  }

  [[nodiscard]] bool has_deadline() const noexcept {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }

  /// Links an upstream token: this token reads as cancelled once either it
  /// or `parent` fires. The compile service uses this to tie every rung's
  /// deadline token to the client's disconnect token without merging
  /// deadlines. `parent` must outlive this token (the service keeps the
  /// client token alive until the request's compile returns); call with
  /// nullptr to unlink. Set-once-before-sharing: link before handing the
  /// token to workers, like set_deadline.
  void link_parent(const CancelToken* parent) noexcept {
    parent_.store(parent, std::memory_order_relaxed);
  }

  /// True once cancel() was called, the deadline passed, or a linked
  /// parent token fired.
  [[nodiscard]] bool cancelled() const noexcept {
    if (flag_.load(std::memory_order_relaxed)) return true;
    const std::int64_t deadline =
        deadline_ns_.load(std::memory_order_relaxed);
    if (deadline != 0 &&
        Clock::now().time_since_epoch().count() >= deadline) {
      return true;
    }
    const CancelToken* parent = parent_.load(std::memory_order_relaxed);
    return parent != nullptr && parent->cancelled();
  }

  /// Checkpoint: throws CancelledError once the token fired.
  void check() const {
    if (cancelled()) {
      throw CancelledError("compilation cancelled (deadline or request)");
    }
  }

 private:
  std::atomic<bool> flag_{false};
  // Deadline as steady-clock nanoseconds since epoch; 0 = disarmed.
  std::atomic<std::int64_t> deadline_ns_{0};
  // Optional upstream token (not owned); null = unlinked.
  std::atomic<const CancelToken*> parent_{nullptr};
};

}  // namespace qmap
