file(REMOVE_RECURSE
  "libqmap_route.a"
)
