# Empty compiler generated dependencies file for bench_exact_scalability.
# This may be replaced when dependencies are built.
