file(REMOVE_RECURSE
  "CMakeFiles/qmap_decompose.dir/decompose/decomposer.cpp.o"
  "CMakeFiles/qmap_decompose.dir/decompose/decomposer.cpp.o.d"
  "CMakeFiles/qmap_decompose.dir/decompose/euler.cpp.o"
  "CMakeFiles/qmap_decompose.dir/decompose/euler.cpp.o.d"
  "CMakeFiles/qmap_decompose.dir/decompose/peephole.cpp.o"
  "CMakeFiles/qmap_decompose.dir/decompose/peephole.cpp.o.d"
  "libqmap_decompose.a"
  "libqmap_decompose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qmap_decompose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
