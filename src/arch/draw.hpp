// Device visualization: ASCII lattice drawings (the Fig. 3(a)/Fig. 4
// style) and Graphviz DOT export for papers/dashboards.
#pragma once

#include <string>

#include "arch/device.hpp"

namespace qmap {

/// ASCII drawing of a device with coordinates: qubits at their (row, col)
/// lattice positions, diagonal/straight bonds between coupled neighbours,
/// frequency group as a suffix letter when the device declares groups.
/// Devices without coordinates fall back to an edge list.
[[nodiscard]] std::string draw_device(const Device& device);

/// Graphviz DOT: one node per qubit (labelled with frequency group and
/// feedline when present), one edge per coupling (directed when the
/// orientation is restricted).
[[nodiscard]] std::string device_to_dot(const Device& device);

}  // namespace qmap
