# Empty dependencies file for bench_fig4_surface17_device.
# This may be replaced when dependencies are built.
