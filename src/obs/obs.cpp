#include "obs/obs.hpp"

#include <algorithm>

namespace qmap::obs {

namespace {

/// One open span, as seen by the calling thread's nesting stack.
struct ActiveSpan {
  const Observer* observer;
  std::uint64_t seq;
};

/// Innermost-open-span stack of the calling thread. Entries for different
/// observers interleave without interfering: parent lookup scans for the
/// matching observer.
thread_local std::vector<ActiveSpan> t_open_spans;

std::uint64_t current_parent(const Observer* observer) {
  for (auto it = t_open_spans.rbegin(); it != t_open_spans.rend(); ++it) {
    if (it->observer == observer) return it->seq;
  }
  return 0;
}

void push_open(const Observer* observer, std::uint64_t seq) {
  t_open_spans.push_back(ActiveSpan{observer, seq});
}

void pop_open(const Observer* observer, std::uint64_t seq) {
  // RAII makes this the top entry in the overwhelming case; the backward
  // scan only matters for spans ended out of order via end().
  for (auto it = t_open_spans.rbegin(); it != t_open_spans.rend(); ++it) {
    if (it->observer == observer && it->seq == seq) {
      t_open_spans.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace

const std::vector<double>& default_histogram_boundaries() {
  // Powers of two cover everything the pipeline observes (SWAP counts,
  // iteration totals, cycle counts) with stable, seed-independent edges.
  static const std::vector<double> boundaries = {1,  2,  4,   8,   16,
                                                 32, 64, 128, 256, 512};
  return boundaries;
}

Json HistogramSnapshot::to_json() const {
  Json out;
  JsonArray edges;
  for (const double b : boundaries) edges.push_back(Json(b));
  out["boundaries"] = Json(std::move(edges));
  JsonArray bucket_counts;
  for (const std::uint64_t c : counts) {
    bucket_counts.push_back(Json(static_cast<std::size_t>(c)));
  }
  out["counts"] = Json(std::move(bucket_counts));
  out["count"] = Json(static_cast<std::size_t>(count));
  out["sum"] = Json(sum);
  return out;
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    it->second += delta;
  } else {
    counters_.emplace(std::string(name), delta);
  }
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    it->second = value;
  } else {
    gauges_.emplace(std::string(name), value);
  }
}

void MetricsRegistry::observe(std::string_view name, double value) {
  observe(name, value, default_histogram_boundaries());
}

void MetricsRegistry::observe(std::string_view name, double value,
                              const std::vector<double>& boundaries) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    Histogram fresh;
    fresh.boundaries = boundaries;
    fresh.counts.assign(boundaries.size() + 1, 0);
    it = histograms_.emplace(std::string(name), std::move(fresh)).first;
  }
  Histogram& histogram = it->second;
  std::size_t bucket = histogram.boundaries.size();  // overflow by default
  for (std::size_t i = 0; i < histogram.boundaries.size(); ++i) {
    if (value <= histogram.boundaries[i]) {
      bucket = i;
      break;
    }
  }
  ++histogram.counts[bucket];
  ++histogram.count;
  histogram.sum += value;
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

HistogramSnapshot MetricsRegistry::histogram(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  HistogramSnapshot snapshot;
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) return snapshot;
  snapshot.boundaries = it->second.boundaries;
  snapshot.counts = it->second.counts;
  snapshot.count = it->second.count;
  snapshot.sum = it->second.sum;
  return snapshot;
}

namespace {

bool is_timing_name(std::string_view name) {
  return name.size() >= 3 && name.substr(name.size() - 3) == "_ms";
}

}  // namespace

Json MetricsRegistry::to_json(bool include_timing) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Json counters;
  counters = JsonObject{};
  for (const auto& [name, value] : counters_) {
    if (!include_timing && is_timing_name(name)) continue;
    counters[name] = Json(static_cast<std::size_t>(value));
  }
  Json gauges;
  gauges = JsonObject{};
  for (const auto& [name, value] : gauges_) {
    if (!include_timing && is_timing_name(name)) continue;
    gauges[name] = Json(value);
  }
  Json histograms;
  histograms = JsonObject{};
  for (const auto& [name, histogram] : histograms_) {
    if (!include_timing && is_timing_name(name)) continue;
    HistogramSnapshot snapshot;
    snapshot.boundaries = histogram.boundaries;
    snapshot.counts = histogram.counts;
    snapshot.count = histogram.count;
    snapshot.sum = histogram.sum;
    histograms[name] = snapshot.to_json();
  }
  Json out;
  out["counters"] = std::move(counters);
  out["gauges"] = std::move(gauges);
  out["histograms"] = std::move(histograms);
  return out;
}

std::string MetricsRegistry::fingerprint() const {
  return to_json(/*include_timing=*/false).dump();
}

void MetricsRegistry::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

TraceBuffer::TraceBuffer(std::size_t capacity, int shards)
    : capacity_(capacity) {
  const int n = std::max(1, shards);
  shards_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool TraceBuffer::record(SpanRecord record) {
  // Admission by global ticket: the first `capacity_` tickets store, every
  // later one drops. fetch_add hands out each ticket exactly once, which
  // is what makes the drop counter exact under concurrency.
  const std::uint64_t ticket =
      accepted_.fetch_add(1, std::memory_order_relaxed);
  if (ticket >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Shard& shard = *shards_[static_cast<std::size_t>(record.tid) %
                          shards_.size()];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.records.push_back(std::move(record));
  return true;
}

std::size_t TraceBuffer::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->records.size();
  }
  return total;
}

std::vector<SpanRecord> TraceBuffer::snapshot() const {
  std::vector<SpanRecord> merged;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    merged.insert(merged.end(), shard->records.begin(),
                  shard->records.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.tid != b.tid ? a.tid < b.tid : a.seq < b.seq;
            });
  return merged;
}

void TraceBuffer::clear() {
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->records.clear();
  }
  accepted_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

Observer::Observer(ObsConfig config)
    : config_(config),
      trace_(config.trace_capacity, config.trace_shards) {}

std::int64_t Observer::now_us() const {
  {
    const std::lock_guard<std::mutex> lock(clock_mutex_);
    if (now_us_) return now_us_();
  }
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Observer::set_clock(std::function<std::int64_t()> now_us) {
  const std::lock_guard<std::mutex> lock(clock_mutex_);
  now_us_ = std::move(now_us);
}

int Observer::thread_ordinal() {
  const std::lock_guard<std::mutex> lock(tid_mutex_);
  const auto [it, inserted] =
      tids_.emplace(std::this_thread::get_id(), static_cast<int>(tids_.size()));
  (void)inserted;
  return it->second;
}

void Observer::instant(std::string name, std::string category,
                       std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled()) return;
  SpanRecord record;
  record.seq = next_seq();
  record.parent_seq = current_parent(this);
  record.tid = thread_ordinal();
  record.start_us = now_us();
  record.end_us = record.start_us;
  record.name = std::move(name);
  record.category = std::move(category);
  record.args = std::move(args);
  trace_.record(std::move(record));
}

Span::Span(Observer* observer, std::string name, std::string category,
           std::uint64_t parent_seq) {
  if (observer == nullptr || !observer->enabled()) return;
  observer_ = observer;
  record_.seq = observer->next_seq();
  record_.parent_seq =
      parent_seq != 0 ? parent_seq : current_parent(observer);
  record_.tid = observer->thread_ordinal();
  record_.start_us = observer->now_us();
  record_.name = std::move(name);
  record_.category = std::move(category);
  push_open(observer, record_.seq);
}

Span::Span(Span&& other) noexcept
    : observer_(other.observer_), record_(std::move(other.record_)) {
  other.observer_ = nullptr;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    observer_ = other.observer_;
    record_ = std::move(other.record_);
    other.observer_ = nullptr;
  }
  return *this;
}

void Span::arg(std::string key, std::string value) {
  if (observer_ == nullptr) return;
  record_.args.emplace_back(std::move(key), std::move(value));
}

void Span::end() {
  if (observer_ == nullptr) return;
  Observer* observer = observer_;
  observer_ = nullptr;
  record_.end_us = observer->now_us();
  if (record_.end_us < record_.start_us) record_.end_us = record_.start_us;
  pop_open(observer, record_.seq);
  observer->trace().record(std::move(record_));
}

}  // namespace qmap::obs
