// The uniform pass interface: one mapping stage, run against a
// CompileContext that carries the evolving circuit/placement/schedule state.
//
// The paper's Fig. 2 draws compilation as a pipeline of interchangeable
// stages; this type is that picture as code. A Pass reads and writes the
// CompileContext and nothing else — ordering, cancellation checkpoints,
// stage hooks, obs spans, and timing all live in the PassManager, so a new
// pass composes with every existing subsystem (portfolio engine, resilience
// ladder, observability) for free.
#pragma once

#include <string>

namespace qmap {

class CompileContext;

class Pass {
 public:
  virtual ~Pass() = default;

  /// Canonical stage name — the single source of truth for stage-hook
  /// names, obs stage-span names, and pipeline JSON. The classic names are
  /// "decompose", "placer", "router", "postroute", "schedule".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Stage boundaries get the full ceremony before running: a cancellation
  /// checkpoint, the stage hook (fault-injection seam), and a fresh obs
  /// stage span. Non-boundary passes (decompose, historically un-hooked)
  /// run silently so hook sequences and golden traces stay stable.
  [[nodiscard]] virtual bool is_stage_boundary() const { return true; }

  /// Runs the stage. Must be safe to call concurrently on the same Pass
  /// object: configuration lives in the pass, all mutable state in `ctx`.
  virtual void run(CompileContext& ctx) = 0;
};

}  // namespace qmap
