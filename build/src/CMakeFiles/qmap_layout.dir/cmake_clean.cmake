file(REMOVE_RECURSE
  "CMakeFiles/qmap_layout.dir/layout/placement.cpp.o"
  "CMakeFiles/qmap_layout.dir/layout/placement.cpp.o.d"
  "CMakeFiles/qmap_layout.dir/layout/placers.cpp.o"
  "CMakeFiles/qmap_layout.dir/layout/placers.cpp.o.d"
  "libqmap_layout.a"
  "libqmap_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qmap_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
