#include "route/stream_core.hpp"

#include <chrono>
#include <string>

#include "common/error.hpp"

namespace qmap {

StreamRouteCore::StreamRouteCore(GateSource& source, const Device& device,
                                 const ArchArtifacts* artifacts,
                                 const Placement& initial,
                                 std::size_t chunk_gates,
                                 std::size_t extended_window,
                                 bool enable_bridge)
    : source_(&source),
      device_(&device),
      artifacts_(artifacts),
      chunk_gates_(std::max<std::size_t>(chunk_gates, 1)),
      extended_window_(extended_window),
      enable_bridge_(enable_bridge),
      num_phys_(device.num_qubits()),
      num_program_qubits_(source.num_qubits()) {
  // check_routable's width/connectivity legs, up front; the arity legs
  // run per gate as chunks arrive (append_gate).
  if (num_program_qubits_ > num_phys_) {
    throw MappingError("circuit has " + std::to_string(num_program_qubits_) +
                       " qubits; device '" + device.name() + "' has " +
                       std::to_string(num_phys_));
  }
  if (!device.coupling().is_connected()) {
    throw MappingError("device coupling graph is disconnected");
  }
  if (artifacts_ != nullptr) {
    dist_ = artifacts_->distance_data();
  } else {
    const auto n = static_cast<std::size_t>(num_phys_);
    dist_store_.resize(n * n);
    const std::vector<std::vector<int>>& rows =
        device.coupling().distance_rows();
    for (std::size_t r = 0; r < n; ++r) {
      std::copy(rows[r].begin(), rows[r].end(), dist_store_.begin() + r * n);
    }
    dist_ = dist_store_.data();
  }
  phys_of_.resize(static_cast<std::size_t>(num_program_qubits_));
  for (int k = 0; k < num_program_qubits_; ++k) {
    phys_of_[static_cast<std::size_t>(k)] =
        static_cast<std::uint32_t>(initial.phys_of_program(k));
  }
  prog_at_.resize(static_cast<std::size_t>(num_phys_));
  for (int p = 0; p < num_phys_; ++p) {
    prog_at_[static_cast<std::size_t>(p)] = initial.program_at_phys(p);
  }

  last_writer_.assign(static_cast<std::size_t>(num_program_qubits_), -1);
  unscheduled_touchers_.assign(static_cast<std::size_t>(num_program_qubits_),
                               0);
  num_idle_qubits_ = num_program_qubits_;

  decay_.resize(static_cast<std::size_t>(num_phys_));
  relevant_.resize(static_cast<std::size_t>(num_phys_));
  extended_.resize(extended_window_);
  ext_pa_.resize(extended_window_);
  ext_pb_.resize(extended_window_);
  buffers_.decay = decay_.data();
  buffers_.relevant = relevant_.data();
  buffers_.extended = extended_.data();
  buffers_.ext_pa = ext_pa_.data();
  buffers_.ext_pb = ext_pb_.data();
  // The front-sized buffers start empty; refresh_front() grows them and
  // re-points buffers_ as the front layer widens.

  advance_window();
}

void StreamRouteCore::advance_window() {
  // Invariant (a): no qubit idle; invariant (b): enough unscheduled
  // two-qubit gates to cover the lookahead quota past any possible front
  // (ready_.size() over-counts the front — the slack only ever widens the
  // window, never changes a decision).
  while (!dry_ && (num_idle_qubits_ > 0 ||
                   unscheduled_2q_ < extended_window_ + ready_.size())) {
    pull_chunk();
  }
}

bool StreamRouteCore::pull_chunk() {
  pull_buf_.clear();
  const std::size_t n = source_->pull(pull_buf_, chunk_gates_);
  if (n == 0) {
    dry_ = true;
    return false;
  }
  for (Gate& gate : pull_buf_) append_gate(std::move(gate));
  window_peak_ = std::max(window_peak_, gates_.size());
  return true;
}

void StreamRouteCore::append_gate(Gate&& gate) {
  const std::size_t arity = gate.qubits.size();
  if (arity > 2 && gate.kind != GateKind::Barrier) {
    throw MappingError(
        "circuit contains a gate of arity > 2; run gate decomposition "
        "before routing");
  }
  if (arity == 0) {
    // A zero-operand gate is ready from the start regardless of position,
    // which no bounded window can order correctly.
    throw MappingError(
        "streaming route: gate with no qubit operands cannot be "
        "window-ordered; materialize the circuit and call route()");
  }
  const std::uint32_t gid = next_gid_++;
  ++gates_seen_;
  const bool two_q = arity == 2 && gate.kind != GateKind::Barrier;
  kind_.push_back(static_cast<std::uint8_t>(gate.kind));
  flags_.push_back(two_q ? kFlagTwoQubit : std::uint8_t{0});
  nops_.push_back(static_cast<std::uint8_t>(std::min<std::size_t>(arity, 3)));
  q0_.push_back(static_cast<std::uint32_t>(gate.qubits[0]));
  q1_.push_back(arity >= 2 ? static_cast<std::uint32_t>(gate.qubits[1])
                           : kNoQubit);
  succ_inline_.emplace_back();
  succ_count_.push_back(0);
  indegree_.push_back(0);
  scheduled_.push_back(0);

  // Sequential last-writer edge discovery, one pred per operand, deduped
  // per (pred, gate) pair — the same rule as RouteIR::build.
  pred_scratch_.clear();
  const auto visit = [&](int q) {
    if (q < 0 || q >= num_program_qubits_) {
      throw MappingError("streaming route: gate operand q" +
                         std::to_string(q) + " out of range for a " +
                         std::to_string(num_program_qubits_) +
                         "-qubit source");
    }
    const std::int64_t prev = last_writer_[static_cast<std::size_t>(q)];
    if (prev >= 0) {
      const auto p = static_cast<std::uint32_t>(prev);
      if (std::find(pred_scratch_.begin(), pred_scratch_.end(), p) ==
          pred_scratch_.end()) {
        pred_scratch_.push_back(p);
      }
    }
    last_writer_[static_cast<std::size_t>(q)] = gid;
    if (unscheduled_touchers_[static_cast<std::size_t>(q)]++ == 0) {
      --num_idle_qubits_;
    }
  };
  if (arity <= 2) {
    visit(gate.qubits[0]);
    if (arity == 2) visit(gate.qubits[1]);
  } else {
    for (const int q : gate.qubits) visit(q);
  }
  // Edges from already-scheduled (possibly retired) predecessors are
  // skipped instead of pre-decremented: equivalent in-degree.
  std::uint32_t in = 0;
  for (const std::uint32_t prev : pred_scratch_) {
    if (prev < base_ || scheduled_[idx(prev)] != 0) continue;
    add_successor(prev, gid);
    ++in;
  }
  indegree_.back() = in;
  gates_.push_back(std::move(gate));
  ++num_unscheduled_;
  if (two_q) {
    two_qubit_.push_back(gid);
    ++seen_two_qubit_;
    ++unscheduled_2q_;
  }
  // gid is the largest resident id, so push_back keeps ready_ sorted.
  if (in == 0) ready_.push_back(gid);
}

void StreamRouteCore::add_successor(std::uint32_t prev, std::uint32_t gid) {
  const std::size_t p = idx(prev);
  if (succ_count_[p] < 2) {
    succ_inline_[p][succ_count_[p]++] = gid;
    return;
  }
  std::vector<std::uint32_t>& overflow = succ_overflow_[prev];
  if (succ_count_[p] == 2) {
    overflow.assign(succ_inline_[p].begin(), succ_inline_[p].end());
    succ_count_[p] = 3;
  }
  overflow.push_back(gid);
}

bool StreamRouteCore::flush(RoutingEmitter& emitter) {
  bool any = false;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    // Re-establish the invariant before every pass: scheduling the last
    // pass's gates may have made beyond-tail gates ready in the full DAG.
    advance_window();
    // Snapshot: mark_scheduled mutates the ready list.
    snapshot_.assign(ready_.begin(), ready_.end());
    for (const std::uint32_t node : snapshot_) {
      if (!executable(node)) continue;
      const std::size_t i = idx(node);
      if (nops_[i] <= 2) {
        emitter.emit_program_gate(std::move(gates_[i]));
      } else {
        // Wide barrier: mark_scheduled still needs its operand list.
        emitter.emit_program_gate(gates_[i]);
      }
      mark_scheduled(node);
      progressed = true;
      any = true;
    }
  }
  retire();
  emitter.spill_if_needed();
  return any;
}

void StreamRouteCore::mark_scheduled(std::uint32_t node) {
  const auto at = std::lower_bound(ready_.begin(), ready_.end(), node);
  if (at == ready_.end() || *at != node) {
    throw CircuitError("mark_scheduled: node " + std::to_string(node) +
                       " is not ready");
  }
  ready_.erase(at);
  const std::size_t i = idx(node);
  scheduled_[i] = 1;
  --num_unscheduled_;
  if ((flags_[i] & kFlagTwoQubit) != 0) --unscheduled_2q_;
  const auto touch = [&](int q) {
    if (--unscheduled_touchers_[static_cast<std::size_t>(q)] == 0) {
      ++num_idle_qubits_;
    }
  };
  if (nops_[i] <= 2) {
    touch(static_cast<int>(q0_[i]));
    if (nops_[i] == 2) touch(static_cast<int>(q1_[i]));
  } else {
    for (const int q : gates_[i].qubits) touch(q);
  }
  const auto unlock = [&](std::uint32_t s) {
    if (--indegree_[idx(s)] == 0) {
      // Sorted insert, like FrontLayer / DependencyDag.
      ready_.insert(std::upper_bound(ready_.begin(), ready_.end(), s), s);
    }
  };
  const std::uint8_t count = succ_count_[i];
  if (count <= 2) {
    for (std::uint8_t e = 0; e < count; ++e) unlock(succ_inline_[i][e]);
  } else {
    for (const std::uint32_t s : succ_overflow_[node]) unlock(s);
  }
}

void StreamRouteCore::retire() {
  // Every gid below the minimal unscheduled one is done. When the ready
  // list is non-empty its head IS that minimum (the minimal unscheduled
  // gate has only scheduled predecessors, hence sits in the sorted ready
  // list); when it is empty, everything resident is scheduled.
  const std::uint32_t min_unscheduled =
      ready_.empty() ? next_gid_ : ready_.front();
  const std::size_t retired = min_unscheduled - base_;
  // Compact only when the prefix erase is amortized: a sizeable run that
  // is also a sizeable fraction of the resident window.
  if (retired < std::max<std::size_t>(chunk_gates_, 1024)) return;
  if (retired * 2 < gates_.size()) return;
  const auto drop_prefix = [retired](auto& v) {
    v.erase(v.begin(),
            v.begin() + static_cast<std::ptrdiff_t>(retired));
  };
  drop_prefix(gates_);
  drop_prefix(kind_);
  drop_prefix(flags_);
  drop_prefix(nops_);
  drop_prefix(q0_);
  drop_prefix(q1_);
  drop_prefix(succ_inline_);
  drop_prefix(succ_count_);
  drop_prefix(indegree_);
  drop_prefix(scheduled_);
  for (auto it = succ_overflow_.begin(); it != succ_overflow_.end();) {
    it = it->first < min_unscheduled ? succ_overflow_.erase(it)
                                     : std::next(it);
  }
  std::size_t done = 0;
  while (done < two_qubit_.size() && two_qubit_[done] < min_unscheduled) {
    ++done;
  }
  two_qubit_.erase(two_qubit_.begin(),
                   two_qubit_.begin() + static_cast<std::ptrdiff_t>(done));
  tq_cursor_ = tq_cursor_ > done ? tq_cursor_ - done : 0;
  base_ = min_unscheduled;
}

void StreamRouteCore::refresh_front() {
  front_buf_.clear();
  for (const std::uint32_t gid : ready_) {
    if ((flags_[idx(gid)] & kFlagTwoQubit) != 0) front_buf_.push_back(gid);
  }
  const std::size_t n = front_buf_.size();
  if (front_pa_.size() < n) {
    front_pa_.resize(n);
    front_pb_.resize(n);
  }
  if (enable_bridge_ && to_bridge_.size() < n) to_bridge_.resize(n);
  buffers_.front_pa = front_pa_.data();
  buffers_.front_pb = front_pb_.data();
  buffers_.to_bridge = enable_bridge_ ? to_bridge_.data() : nullptr;
}

std::uint32_t StreamRouteCore::collect_extended(std::size_t window,
                                                std::uint32_t* out) {
  // Same scan as RouteCore::collect_extended over the resident suffix of
  // the two-qubit list; the quota invariant guarantees the suffix holds
  // at least `window` candidates (or the whole remainder when dry).
  while (tq_cursor_ < two_qubit_.size() &&
         scheduled_[idx(two_qubit_[tq_cursor_])] != 0) {
    ++tq_cursor_;
  }
  std::uint32_t count = 0;
  std::size_t fi = 0;  // merge pointer into the sorted front
  const std::size_t nfront = front_buf_.size();
  for (std::size_t k = tq_cursor_;
       k < two_qubit_.size() && count < window; ++k) {
    const std::uint32_t node = two_qubit_[k];
    if (scheduled_[idx(node)] != 0) continue;
    while (fi < nfront && front_buf_[fi] < node) ++fi;
    if (fi < nfront && front_buf_[fi] == node) continue;
    out[count++] = node;
  }
  return count;
}

void StreamRouteCore::mark_relevant(std::uint8_t* relevant) const {
  std::fill(relevant, relevant + num_phys_, std::uint8_t{0});
  for (const std::uint32_t node : front_buf_) {
    relevant[phys_of_[q0_[idx(node)]]] = 1;
    relevant[phys_of_[q1_[idx(node)]]] = 1;
  }
}

StreamRouteStats run_sabre_stream(GateSource& source, const Device& device,
                                  const ArchArtifacts* artifacts,
                                  const Placement& initial, GateSink& sink,
                                  const StreamRouteOptions& options,
                                  std::size_t extended_window,
                                  const SabreLoopParams& params,
                                  const std::function<void()>& check_cancelled,
                                  SabreLoopStats* loop_stats) {
  const auto start_time = std::chrono::steady_clock::now();
  StreamRouteCore core(source, device, artifacts, initial,
                       options.chunk_gates, extended_window,
                       params.enable_bridge);
  const std::size_t spill = std::max<std::size_t>(options.spill_gates, 1);
  RoutingEmitter emitter(device, initial,
                         source.name() + "@" + device.name());
  // The emitter's resident buffer tops out around the spill threshold
  // (plus one flush pass of slack).
  emitter.reserve(spill * 2 + 16);
  emitter.set_sink(&sink, spill);
  const SabreLoopStats stats =
      run_sabre_loop(core, emitter, device.coupling(), device.num_qubits(),
                     params, check_cancelled);
  emitter.spill_all();
  sink.flush();
  if (loop_stats != nullptr) *loop_stats = stats;

  StreamRouteStats out;
  out.initial = initial;
  out.final = emitter.placement();
  out.added_swaps = emitter.added_swaps();
  out.added_moves = emitter.added_moves();
  out.added_bridges = emitter.added_bridges();
  out.direction_fixes = emitter.direction_fixes();
  out.gates_in = core.gates_seen();
  out.gates_out = emitter.total_emitted();
  out.window_peak_gates = core.window_peak_gates();
  out.runtime_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start_time)
                       .count();
  return out;
}

}  // namespace qmap
