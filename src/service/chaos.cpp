#include "service/chaos.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "qasm/openqasm.hpp"
#include "service/service.hpp"
#include "workloads/workloads.hpp"

namespace qmap::service {

ChaosTransport::ChaosTransport(ChaosConfig config)
    : config_(std::move(config)) {
  const auto& names = resilience::known_fault_points();
  for (const auto& spec : config_.faults) {
    const bool known =
        std::find(names.begin(), names.end(), spec.point) != names.end();
    if (!known || !starts_with(spec.point, "service.")) {
      throw MappingError("ChaosTransport: '" + spec.point +
                         "' is not a service.* fault point (valid: "
                         "service.truncate-line, service.garbage-bytes, "
                         "service.oversize-line, service.disconnect, "
                         "service.stall-write)");
    }
  }
}

std::uint64_t ChaosTransport::draw_(std::size_t spec_index,
                                    std::size_t line_index,
                                    std::uint64_t salt) const {
  // Same chaining discipline as FaultInjector::fires_: a pure function of
  // (seed, spec, line, salt), so the corruption pattern is replayable from
  // the config alone.
  std::uint64_t h = Rng::derive_stream(config_.seed, spec_index);
  h = Rng::derive_stream(h, line_index + 1);
  return Rng::derive_stream(h, salt);
}

bool ChaosTransport::fires_(std::size_t spec_index, double probability,
                            std::size_t line_index) const {
  if (probability >= 1.0) return true;
  if (probability <= 0.0) return false;
  const std::uint64_t h = draw_(spec_index, line_index, 0);
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0, 1)
  return u < probability;
}

std::vector<ChaosTransport::LineFate> ChaosTransport::corrupt(
    const std::vector<std::string>& lines) const {
  std::vector<LineFate> fates;
  fates.reserve(lines.size());
  bool disconnected = false;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    LineFate fate;
    fate.original = lines[li];
    fate.wire = lines[li];
    if (disconnected) {
      fate.delivered = false;
      fate.intact = false;
      fates.push_back(std::move(fate));
      continue;
    }
    for (std::size_t si = 0; si < config_.faults.size(); ++si) {
      const resilience::FaultSpec& spec = config_.faults[si];
      if (spec.point == "service.stall-write") continue;  // output-side
      if (!fires_(si, spec.probability, li)) continue;
      fate.faults.push_back(spec.point);
      fate.intact = false;
      if (spec.point == "service.truncate-line") {
        // Cut somewhere strictly inside the line (keeps the newline, so
        // framing continues and the stub must be answered as one line).
        const std::size_t cut =
            fate.wire.empty() ? 0 : draw_(si, li, 1) % fate.wire.size();
        fate.wire.resize(cut);
      } else if (spec.point == "service.garbage-bytes") {
        // Splice high-bit bytes (never '\n', never whitespace) into the
        // middle so the line stays one non-empty frame of invalid UTF-8.
        std::string garbage;
        for (std::size_t g = 0; g < config_.garbage_bytes; ++g) {
          garbage.push_back(
              static_cast<char>(0x80 + (draw_(si, li, 2 + g) % 0x7F)));
        }
        const std::size_t at =
            fate.wire.empty() ? 0 : draw_(si, li, 1) % fate.wire.size();
        fate.wire.insert(at, garbage);
      } else if (spec.point == "service.oversize-line") {
        if (fate.wire.size() < config_.oversize_bytes) {
          fate.wire.append(config_.oversize_bytes - fate.wire.size(), 'x');
        }
      } else if (spec.point == "service.disconnect") {
        // Send a prefix of the line and then nothing, ever again.
        const std::size_t cut =
            fate.wire.empty() ? 0 : draw_(si, li, 1) % fate.wire.size();
        fate.wire.resize(cut);
        fate.cut_here = true;
        disconnected = true;
      }
      break;  // at most one wire fault per line, like at_stage
    }
    fates.push_back(std::move(fate));
    if (disconnected) continue;
  }
  return fates;
}

std::string ChaosTransport::wire(const std::vector<LineFate>& fates) {
  std::string out;
  for (const LineFate& fate : fates) {
    if (!fate.delivered) break;
    out += fate.wire;
    if (fate.cut_here) break;  // mid-line EOF: no trailing newline
    out += '\n';
  }
  return out;
}

int ChaosTransport::expected_lines(const std::string& wire_text) {
  // Mirror of the serve() loop: getline-split, skip lines that trim to
  // empty, count the rest (a trailing unterminated fragment still counts).
  int lines = 0;
  std::size_t begin = 0;
  while (begin <= wire_text.size()) {
    const std::size_t end = wire_text.find('\n', begin);
    const std::size_t stop = end == std::string::npos ? wire_text.size() : end;
    if (!trim(wire_text.substr(begin, stop - begin)).empty()) ++lines;
    if (end == std::string::npos) break;
    begin = end + 1;
  }
  return lines;
}

// ------------------------------------------------------- StallingStream --

struct StallingStream::Buf : std::streambuf {
  Buf(std::ostream& sink, double stall_ms, int stall_every)
      : sink_(sink), stall_ms_(stall_ms),
        stall_every_(std::max(1, stall_every)) {}

  int_type overflow(int_type ch) override {
    if (ch == traits_type::eof()) return traits_type::not_eof(ch);
    sink_.put(static_cast<char>(ch));
    return ch;
  }

  std::streamsize xsputn(const char* data, std::streamsize n) override {
    sink_.write(data, n);
    return n;
  }

  int sync() override {
    if (++flushes_ % stall_every_ == 0 && stall_ms_ > 0.0) {
      ++stalls_;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(stall_ms_));
    }
    sink_.flush();
    return 0;
  }

  std::ostream& sink_;
  double stall_ms_;
  int stall_every_;
  int flushes_ = 0;
  int stalls_ = 0;
};

StallingStream::StallingStream(std::ostream& sink, double stall_ms,
                               int stall_every)
    : std::ostream(nullptr), buf_(new Buf(sink, stall_ms, stall_every)) {
  rdbuf(buf_);
}

StallingStream::~StallingStream() {
  rdbuf(nullptr);
  delete buf_;
}

int StallingStream::stalls() const noexcept { return buf_->stalls_; }

// -------------------------------------------------------- RequestFuzzer --

RequestFuzzer::RequestFuzzer(std::uint64_t seed) : seed_(seed) {}

std::vector<FuzzItem> RequestFuzzer::generate(int n) {
  // A small pool of (circuit, device) pairs so the request mix is heavy on
  // repeats — the regime the cache exists for — and the cold-compile count
  // stays bounded no matter how many lines the matrix asks for.
  static const std::vector<std::pair<std::string, std::string>> kPool = [] {
    std::vector<std::pair<std::string, std::string>> pool;
    pool.emplace_back(to_openqasm(workloads::ghz(3)), "ibm_qx4");
    pool.emplace_back(to_openqasm(workloads::ghz(4)), "ibm_qx4");
    pool.emplace_back(to_openqasm(workloads::qft(4, false)), "ibm_qx5");
    pool.emplace_back(to_openqasm(workloads::fig1_example()), "ibm_qx5");
    return pool;
  }();

  std::vector<FuzzItem> items;
  items.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    Rng rng(Rng::derive_stream(seed_, static_cast<std::uint64_t>(k)));
    FuzzItem item;
    item.id = "f" + std::to_string(next_id_++);
    const int shape = rng.integer(0, 9);  // 0-6 well-formed, 7-9 malformed
    if (shape <= 4) {
      // Valid compile from the pool; few distinct seeds so most repeat.
      const auto& [qasm, device] = kPool[rng.index(kPool.size())];
      ServiceRequest request;
      request.op = "compile";
      request.id = item.id;
      request.client = "fuzz" + std::to_string(rng.integer(0, 2));
      request.device = device;
      request.qasm = qasm;
      request.seed = static_cast<std::uint64_t>(rng.integer(1, 2));
      item.line = request.to_json().dump();
      item.well_formed = true;
      item.is_compile = true;
    } else if (shape == 5) {
      item.line = "{\"op\":\"ping\",\"id\":\"" + item.id + "\"}";
      item.well_formed = true;
    } else if (shape == 6) {
      item.line = "{\"op\":\"stats\",\"id\":\"" + item.id + "\"}";
      item.well_formed = true;
    } else if (shape == 7) {
      // Structurally broken: not JSON at all / wrong top-level type /
      // unknown field or op — all must bounce as status:"error" without
      // wedging the connection.
      switch (rng.integer(0, 3)) {
        case 0: item.line = "!!! not json at all #" + item.id; break;
        case 1: item.line = "[1,2,3]"; break;
        case 2:
          item.line = "{\"op\":\"ping\",\"sead\":1,\"id\":\"x\"}";
          break;
        default: item.line = "{\"op\":\"explode\",\"id\":\"x\"}"; break;
      }
      item.id.clear();  // parse fails before the id is extracted
    } else if (shape == 8) {
      // Parses fine, fails semantically: unknown device (answers with id).
      item.line = "{\"op\":\"compile\",\"id\":\"" + item.id +
                  "\",\"device\":\"no_such_chip\",\"qasm\":\"OPENQASM 2.0;\"}";
    } else {
      // Parses fine, QASM does not.
      item.line = "{\"op\":\"compile\",\"id\":\"" + item.id +
                  "\",\"device\":\"ibm_qx4\",\"qasm\":\"qreg q[2]; woops\"}";
    }
    items.push_back(std::move(item));
  }
  return items;
}

}  // namespace qmap::service
