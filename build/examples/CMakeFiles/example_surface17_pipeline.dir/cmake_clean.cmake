file(REMOVE_RECURSE
  "CMakeFiles/example_surface17_pipeline.dir/surface17_pipeline.cpp.o"
  "CMakeFiles/example_surface17_pipeline.dir/surface17_pipeline.cpp.o.d"
  "example_surface17_pipeline"
  "example_surface17_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_surface17_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
