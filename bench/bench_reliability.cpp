// E12 / Sec. III-B + Sec. VII open question 1 — the reliability cost
// function: "Recent works started optimising directly for circuit
// reliability (i.e. minimize the error rate by choosing the most reliable
// paths)" and "what is the best metric to optimize?"
//
// On devices with heterogeneous calibration ("not all qubits are created
// equal", [50]), compares distance-optimizing mapping against
// reliability-aware mapping on three metrics: added SWAPs, analytic
// Estimated Success Probability, and Monte Carlo trajectory fidelity.
// Expected shape: the reliability-aware mapper gives equal-or-higher ESP
// and fidelity, occasionally at the price of a few extra SWAPs — gate
// count and reliability are genuinely different objectives.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "noise/estimator.hpp"
#include "noise/reliability.hpp"
#include "noise/trajectory.hpp"

namespace {

using namespace qmap;
using namespace qmap::bench;

Device noisy_surface17(std::uint64_t seed, double spread) {
  Device device = devices::surface17();
  Rng rng(seed);
  device.set_noise(NoiseModel::randomized(device.coupling(), rng,
                                          /*1q*/ 1e-3, /*2q*/ 1.5e-2,
                                          /*readout*/ 2e-2, spread));
  return device;
}

void print_figure() {
  paper_note(
      "Sec. III-B: reliability as routing cost function [45]-[47], [50]. "
      "Calibration heterogeneity: log-uniform spread 4x around 1q=1e-3, "
      "2q=1.5e-2.");

  Rng workload_rng(3);
  std::vector<std::pair<std::string, Circuit>> suite;
  suite.emplace_back("fig1", workloads::fig1_example());
  suite.emplace_back("ghz5", workloads::ghz(5));
  suite.emplace_back("qft5", workloads::qft(5));
  suite.emplace_back("random6",
                     workloads::random_circuit(6, 40, workload_rng, 0.4));

  section("Distance-optimized vs reliability-optimized mapping, noisy "
          "Surface-17 (3 calibration draws)");
  TextTable table({"workload", "calib", "mapper", "swaps", "ESP",
                   "MC fidelity"});
  double esp_wins = 0;
  double cases = 0;
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    const Device device = noisy_surface17(seed, 4.0);
    for (const auto& [label, circuit] : suite) {
      const Circuit lowered =
          lower_to_device(circuit, device, /*keep_swaps=*/true);
      struct Config {
        const char* name;
        const char* placer;
        const char* router;
      };
      double esp_by_config[2] = {0.0, 0.0};
      const Config configs[] = {{"distance", "greedy", "sabre"},
                                {"reliability", "reliability", "reliability"}};
      for (int c = 0; c < 2; ++c) {
        const Placement initial =
            make_placer(configs[c].placer)->place(lowered, device);
        const MappedOutcome outcome =
            map_and_verify(circuit, device, configs[c].router, initial);
        const double esp =
            estimated_success_probability(outcome.final_circuit, device);
        esp_by_config[c] = esp;
        Rng mc_rng(seed * 1000 + 7);
        // Mapped circuits live on all 17 physical qubits; keep the Monte
        // Carlo budget modest (the analytic ESP is the primary metric).
        const TrajectoryResult mc =
            simulate_noisy(outcome.final_circuit, device, mc_rng, 40);
        table.add_row({label, TextTable::num(seed), configs[c].name,
                       TextTable::num(outcome.routing.added_swaps),
                       TextTable::num(esp, 4),
                       TextTable::num(mc.fidelity, 3)});
      }
      cases += 1;
      if (esp_by_config[1] >= esp_by_config[0] - 1e-9) esp_wins += 1;
    }
  }
  std::cout << table.str();
  std::printf("reliability-aware mapping matched or beat distance-optimized "
              "ESP in %.0f/%.0f cases\n",
              esp_wins, cases);

  section("ESP vs calibration spread (fig1, reliability mapper)");
  TextTable spread_table({"spread", "distance ESP", "reliability ESP",
                          "gain %"});
  for (const double spread : {1.0, 2.0, 4.0, 8.0}) {
    const Device device = noisy_surface17(99, spread);
    const Circuit circuit = workloads::fig1_example();
    const Circuit lowered = lower_to_device(circuit, device, true);
    const Placement greedy_placement =
        GreedyPlacer().place(lowered, device);
    const MappedOutcome plain =
        map_and_verify(circuit, device, "sabre", greedy_placement);
    const Placement aware_placement =
        ReliabilityPlacer().place(lowered, device);
    const MappedOutcome aware =
        map_and_verify(circuit, device, "reliability", aware_placement);
    const double esp_plain =
        estimated_success_probability(plain.final_circuit, device);
    const double esp_aware =
        estimated_success_probability(aware.final_circuit, device);
    spread_table.add_row(
        {TextTable::num(spread, 0), TextTable::num(esp_plain, 4),
         TextTable::num(esp_aware, 4),
         TextTable::num(100.0 * (esp_aware / esp_plain - 1.0), 1)});
  }
  std::cout << spread_table.str();
  paper_note(
      "expected shape: the reliability mapper's advantage grows with "
      "calibration spread; at spread 1 (uniform) the objectives coincide.");
}

void BM_ReliabilityRouter(benchmark::State& state) {
  const Device device = noisy_surface17(11, 4.0);
  Rng rng(3);
  const Circuit lowered = lower_to_device(
      workloads::random_circuit(6, 40, rng, 0.4), device, true);
  const Placement initial = ReliabilityPlacer().place(lowered, device);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ReliabilityRouter().route(lowered, device, initial));
  }
}
BENCHMARK(BM_ReliabilityRouter);

void BM_TrajectorySimulation(benchmark::State& state) {
  const Device device = noisy_surface17(11, 4.0);
  // Trajectory simulation runs on *routed* circuits (only coupling edges
  // carry two-qubit calibration).
  const Circuit circuit =
      Compiler(device).compile(workloads::ghz(5)).final_circuit;
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_noisy(circuit, device, rng, 5));
  }
}
BENCHMARK(BM_TrajectorySimulation);

void BM_EspEstimator(benchmark::State& state) {
  const Device device = noisy_surface17(11, 4.0);
  const Circuit circuit =
      Compiler(device).compile(workloads::qft(5)).final_circuit;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        estimated_success_probability(circuit, device));
  }
}
BENCHMARK(BM_EspEstimator);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
