
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/equivalence.cpp" "src/CMakeFiles/qmap_sim.dir/sim/equivalence.cpp.o" "gcc" "src/CMakeFiles/qmap_sim.dir/sim/equivalence.cpp.o.d"
  "/root/repo/src/sim/stabilizer.cpp" "src/CMakeFiles/qmap_sim.dir/sim/stabilizer.cpp.o" "gcc" "src/CMakeFiles/qmap_sim.dir/sim/stabilizer.cpp.o.d"
  "/root/repo/src/sim/statevector.cpp" "src/CMakeFiles/qmap_sim.dir/sim/statevector.cpp.o" "gcc" "src/CMakeFiles/qmap_sim.dir/sim/statevector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qmap_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qmap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
