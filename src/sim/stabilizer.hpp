// Stabilizer (Clifford tableau) simulator, Aaronson-Gottesman CHP style.
//
// The state-vector verifier caps out around 24 qubits; Clifford circuits —
// which include every routing artefact (SWAP chains, CX/CZ rewrites, H
// direction fixes) and workloads like GHZ — can be checked *exactly* at
// hundreds of qubits with a tableau. Two uses here:
//
//  * StabilizerState: simulate a Clifford circuit from |0...0>, including
//    projective measurements (the CHP algorithm).
//  * CliffordTableau / clifford_equivalent: track the conjugation action
//    U P U^dagger for all Pauli generators, which determines the Clifford
//    unitary up to global phase — an exact unitary-equality check for
//    mapped Clifford circuits at any width.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ir/circuit.hpp"

namespace qmap {

/// True when the gate is simulable on a tableau (Clifford + measure).
[[nodiscard]] bool is_clifford_gate(const Gate& gate);
/// True when every gate of the circuit is Clifford (barriers allowed).
[[nodiscard]] bool is_clifford_circuit(const Circuit& circuit);

/// The shared tableau core: 2n rows (n destabilizers, n stabilizers) of
/// X/Z bits plus a sign bit per row.
class CliffordTableau {
 public:
  explicit CliffordTableau(int num_qubits);

  [[nodiscard]] int num_qubits() const noexcept { return n_; }

  // Generator access (row r in [0, 2n): destabilizers first).
  [[nodiscard]] bool x(int row, int qubit) const;
  [[nodiscard]] bool z(int row, int qubit) const;
  [[nodiscard]] bool sign(int row) const;

  /// Applies a Clifford gate (throws SimulationError otherwise; barriers
  /// are no-ops, measurements are rejected — use StabilizerState).
  void apply(const Gate& gate);
  /// Applies every gate of a Clifford circuit.
  void run(const Circuit& circuit);

  /// Relabels qubits: column `from[i]` moves to column `to[i]`.
  void permute(const std::vector<int>& from, const std::vector<int>& to);

  /// Exact row-wise equality (same generators, same signs).
  [[nodiscard]] bool operator==(const CliffordTableau& other) const;

  /// Human-readable Pauli strings ("+XIZ..." per row).
  [[nodiscard]] std::string to_string() const;

 protected:
  // Gate primitives.
  void apply_h(int q);
  void apply_s(int q);
  void apply_cx(int control, int target);
  /// Aaronson-Gottesman rowsum: row h *= row i (phase-correct).
  void rowsum(int h, int i);

  int n_ = 0;
  // Bit-packed rows: words_per_row_ 64-bit words for x, then for z.
  std::vector<std::uint64_t> x_bits_;
  std::vector<std::uint64_t> z_bits_;
  std::vector<std::uint8_t> r_;  // sign bit per row
  int words_ = 0;                // words per row

  [[nodiscard]] bool get_bit(const std::vector<std::uint64_t>& bits, int row,
                             int qubit) const;
  void set_bit(std::vector<std::uint64_t>& bits, int row, int qubit,
               bool value);
};

/// Stabilizer state |psi> = U |0...0> with CHP measurements.
class StabilizerState : public CliffordTableau {
 public:
  explicit StabilizerState(int num_qubits)
      : CliffordTableau(num_qubits) {}

  /// Runs the circuit; measurements collapse using `rng` (throws without
  /// one when a measurement occurs).
  void run_with_measurements(const Circuit& circuit, Rng* rng = nullptr);

  /// Projective Z measurement of `qubit` (CHP): returns 0/1.
  int measure(int qubit, Rng& rng);

  /// True when a Z measurement of `qubit` has a deterministic outcome.
  [[nodiscard]] bool deterministic(int qubit) const;
};

/// Exact Clifford unitary equality up to global phase: compares the
/// conjugation tableaux of the two circuits. Throws SimulationError when a
/// circuit contains non-Clifford gates.
[[nodiscard]] bool clifford_equivalent(const Circuit& a, const Circuit& b);

/// Mapping-aware variant, mirroring mapping_equivalent(): `mapped` (on m
/// physical qubits) realizes `original` under the wire->physical maps.
[[nodiscard]] bool clifford_mapping_equivalent(
    const Circuit& original, const Circuit& mapped,
    const std::vector<int>& initial_wire_to_phys,
    const std::vector<int>& final_wire_to_phys);

}  // namespace qmap
