
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_rendering.cpp" "tests/CMakeFiles/test_rendering.dir/test_rendering.cpp.o" "gcc" "tests/CMakeFiles/test_rendering.dir/test_rendering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qmap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qmap_explore.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qmap_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qmap_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qmap_route.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qmap_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qmap_decompose.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qmap_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qmap_qasm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qmap_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qmap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qmap_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qmap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
