// Parallel portfolio compilation engine.
//
// Sec. III-VI of the paper survey a zoo of mapping approaches and conclude
// that no single one wins everywhere: heuristic routers (SABRE [40],
// layer-A* [54], Qmap [39]) trade optimality for speed, the exact mapper
// [57] only scales to small instances, and the ranking flips per
// circuit/device pair. Instead of making the caller pick, the
// PortfolioCompiler fans one circuit out across a configurable set of
// placer x router strategy combinations on a ThreadPool, gives each run a
// soft deadline with cooperative cancellation (engine/cancel.hpp, polled
// in the router main loops), scores every finished result with a pluggable
// CostFunction (engine/cost.hpp), and returns the cheapest — ties broken
// by strategy index, so the winner is reproducible regardless of thread
// timing. Every strategy run records structured telemetry.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "arch/device.hpp"
#include "common/error.hpp"
#include "core/compiler.hpp"
#include "engine/cost.hpp"
#include "engine/thread_pool.hpp"

namespace qmap {

/// One portfolio entry: an initial-placement algorithm paired with a
/// router, plus the guards deciding when/how long it may run.
struct StrategySpec {
  std::string placer = "greedy";
  std::string router = "sabre";
  /// Only attempted when the circuit has at most this many qubits
  /// (0 = no limit). Gates expensive exact strategies to small instances.
  int max_qubits = 0;
  /// Per-strategy soft deadline in milliseconds, measured from the
  /// strategy's own start (0 = inherit PortfolioOptions.strategy_deadline_ms).
  double deadline_ms = 0.0;

  [[nodiscard]] std::string label() const { return placer + "+" + router; }

  /// The strategy as pipeline data: the standard preset with this spec's
  /// placer/router and the shared toggles (lower_to_native, peephole,
  /// scheduler, control constraints) taken from `base`. Portfolio workers
  /// execute exactly this spec, so a strategy *is* a PipelineSpec.
  [[nodiscard]] PipelineSpec pipeline(const CompilerOptions& base) const;
};

/// Structured telemetry of one strategy run.
struct StrategyTelemetry {
  enum class Status { Completed, Cancelled, Failed, Skipped };

  int strategy_index = -1;
  StrategySpec spec;
  Status status = Status::Skipped;
  /// Recovery taxonomy of the failure (meaningful for Cancelled/Failed):
  /// Cancelled is always Transient; Failed carries the thrown error's own
  /// class (common/error.hpp). The resilience pipeline reads this to
  /// decide between retrying the rung and falling back.
  ErrorClass error_class = ErrorClass::Permanent;
  double wall_ms = 0.0;
  /// Selection cost (only meaningful when status == Completed).
  double cost = std::numeric_limits<double>::infinity();
  /// cost - winning cost; 0 for the winner, +inf when not completed.
  double margin = std::numeric_limits<double>::infinity();
  bool winner = false;
  /// Widest cycle of the strategy's schedule: the peak number of
  /// operations in flight at once (0 when the scheduler was disabled).
  int peak_layer_ops = 0;
  std::size_t added_swaps = 0;
  std::string error;  // message for Failed / Cancelled runs

  [[nodiscard]] std::string status_name() const;
  [[nodiscard]] Json to_json() const;
};

struct PortfolioOptions {
  /// Strategies to race; empty selects default_portfolio(device).
  std::vector<StrategySpec> strategies;
  /// Worker threads (0 = hardware concurrency). Results are identical for
  /// every thread count; only wall time changes.
  int num_threads = 0;
  /// Base RNG seed. Worker k draws its stream from
  /// Rng::derive_stream(base_seed, k), so parallel and serial runs produce
  /// bit-identical circuits.
  std::uint64_t base_seed = 0xC0FFEE;
  /// Default per-strategy soft deadline (ms, 0 = none); a spec's own
  /// deadline_ms takes precedence.
  double strategy_deadline_ms = 0.0;
  /// Soft deadline for the whole portfolio measured from compile() entry
  /// (0 = none). Outstanding strategies are cancelled when it passes; the
  /// best result finished by then is returned.
  double portfolio_deadline_ms = 0.0;
  /// Winner-selection cost; unset falls back to make_cost_function(cost_name).
  CostFunction cost;
  std::string cost_name = "balanced";
  /// Per-strategy stage hook: called as (stage, strategy_index) at the
  /// compiler's stage boundaries ("placer"/"router"/"postroute"/
  /// "schedule") of every racing strategy. The engine wraps it into each
  /// strategy's CompilerOptions::stage_hook; exceptions it throws are
  /// caught by the same crash boundary that contains placer/router
  /// crashes, which is how the resilience fault injector plants
  /// deterministic per-strategy faults. Empty by default.
  std::function<void(const char* stage, int strategy_index)> stage_hook;
  /// Pipeline toggles shared by every strategy (placer/router/seed/cancel
  /// fields are overwritten per strategy; stage_hook is overwritten when
  /// the portfolio-level stage_hook above is set).
  CompilerOptions base;
  /// Observability sink (obs/): a race-root span, one strategy span per
  /// entrant (explicitly parented under the root across threads), and
  /// post-join win/cancellation counters aggregated deterministically on
  /// the calling thread. Not owned; null disables recording. Overrides
  /// base.obs for every strategy.
  obs::Observer* obs = nullptr;
  /// Upstream cancellation (not owned; null = none): every strategy's
  /// per-run deadline token is parent-linked to it, so firing it — e.g. the
  /// compile service noticing the last interested client disconnected —
  /// cancels the whole race at the next router checkpoint. Must outlive
  /// the compile call.
  const CancelToken* cancel = nullptr;
  /// Immutable shared device artifacts. Null = the PortfolioCompiler
  /// builds one bundle at construction; either way every racing strategy
  /// reads the same matrix instead of copying the device per worker, so
  /// setup work no longer scales with strategy count (bench_pipeline).
  std::shared_ptr<const ArchArtifacts> artifacts;
};

/// Outcome of a portfolio run: the winning compilation plus per-strategy
/// telemetry.
struct PortfolioResult {
  CompilationResult best;
  int winner_index = -1;
  std::string winner_label;
  /// Winner cost minus runner-up cost gap (how decisively it won);
  /// 0 when only one strategy completed.
  double winning_margin = 0.0;
  std::vector<StrategyTelemetry> telemetry;
  double wall_ms = 0.0;
  int num_threads = 1;

  [[nodiscard]] std::size_t completed_count() const;
  [[nodiscard]] std::size_t cancelled_count() const;

  /// Human-readable per-strategy telemetry table.
  [[nodiscard]] std::string report() const;
  /// Machine-readable report: winner + full telemetry array.
  [[nodiscard]] Json to_json() const;
  /// Deterministic digest of the *result* (winner identity, final circuit,
  /// placements, metrics) excluding wall-clock fields — byte-identical
  /// across runs and thread counts for a fixed base seed.
  [[nodiscard]] std::string fingerprint() const;

 private:
  [[nodiscard]] double best_cost_() const;
};

class PortfolioCompiler {
 public:
  /// Validates every strategy name eagerly (throws MappingError listing
  /// the valid names otherwise) and builds the shared ArchArtifacts bundle
  /// (unless options.artifacts supplies one) so workers only ever read
  /// immutable shared state.
  explicit PortfolioCompiler(Device device, PortfolioOptions options = {});

  [[nodiscard]] const Device& device() const noexcept { return device_; }
  [[nodiscard]] const std::vector<StrategySpec>& strategies() const noexcept {
    return options_.strategies;
  }
  /// The immutable artifacts bundle every strategy run shares.
  [[nodiscard]] const std::shared_ptr<const ArchArtifacts>& artifacts()
      const noexcept {
    return artifacts_;
  }

  /// Races the portfolio on an internally owned pool.
  [[nodiscard]] PortfolioResult compile(const Circuit& circuit) const;
  /// Races the portfolio on a caller-owned pool (lets BatchCompiler share
  /// one pool across many circuits).
  [[nodiscard]] PortfolioResult compile(const Circuit& circuit,
                                        ThreadPool& pool) const;

  /// Non-throwing variant for supervisors (src/resilience/): when no
  /// strategy completes, returns winner_index == -1 with the full
  /// per-strategy telemetry (status + error_class per failure) instead of
  /// throwing away the evidence — the caller decides between retry and
  /// fallback from the telemetry. compile() is try_compile() plus a throw
  /// on the empty outcome.
  [[nodiscard]] PortfolioResult try_compile(const Circuit& circuit,
                                            ThreadPool& pool) const;

  /// The built-in strategy set: every heuristic placer x router pairing
  /// worth racing, exact/exhaustive entries gated to small widths, and a
  /// reliability pairing when the device carries calibration data. Built
  /// from known_placers()/known_routers(), so it never names a strategy
  /// the factories would reject.
  [[nodiscard]] static std::vector<StrategySpec> default_portfolio(
      const Device& device);

 private:
  Device device_;
  PortfolioOptions options_;
  std::shared_ptr<const ArchArtifacts> artifacts_;
};

}  // namespace qmap
