// E14 / Sec. IV — gate-commutation rules in mapping ([58], "Quantum
// circuit compilers using gate commutation rules").
//
// Ablation: the SABRE-style router with the strict sequential dependency
// DAG vs the commutation-aware DAG, on commutation-rich workloads (QFT
// phase ladders, shared-control CNOT fans) and on commutation-poor random
// circuits. Expected shape: the relaxed DAG never hurts and helps most on
// diagonal-heavy circuits.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "ir/dag.hpp"
#include "route/sabre.hpp"

namespace {

using namespace qmap;
using namespace qmap::bench;

Circuit cnot_fan(int n) {
  // All CNOTs share the control: fully commuting fan.
  Circuit c(n, "fan" + std::to_string(n));
  for (int q = 1; q < n; ++q) c.cx(0, q);
  for (int q = n - 1; q >= 1; --q) c.cx(0, q);
  return c;
}

Circuit phase_ladder(int n, int gates, Rng& rng) {
  Circuit c(n, "ladder" + std::to_string(n));
  for (int i = 0; i < gates; ++i) {
    const int a = static_cast<int>(rng.index(static_cast<std::size_t>(n)));
    int b = static_cast<int>(rng.index(static_cast<std::size_t>(n - 1)));
    if (b >= a) ++b;
    c.cp(rng.uniform(0.1, 1.2), a, b);
  }
  return c;
}

void print_figure() {
  paper_note(
      "Sec. IV cites commutation-rule compilers [58]; this ablation "
      "measures what the relaxed dependency DAG buys the router.");
  section("Strict vs commutation-aware SABRE routing (added SWAPs)");
  TextTable table({"workload", "device", "strict swaps", "commute swaps",
                   "strict depth", "commute depth"});
  Rng rng(21);
  std::vector<std::pair<std::string, Circuit>> suite;
  suite.emplace_back("qft6", workloads::qft(6, false));
  suite.emplace_back("fan8", cnot_fan(8));
  suite.emplace_back("ladder8", phase_ladder(8, 16, rng));
  suite.emplace_back("random8", workloads::random_circuit(8, 50, rng, 0.5));
  for (const Device& device :
       {devices::linear(8), devices::grid(3, 3), devices::surface17()}) {
    for (const auto& [label, circuit] : suite) {
      const Circuit lowered = lower_to_device(circuit, device, true);
      const Placement initial = GreedyPlacer().place(lowered, device);
      const RoutingResult strict =
          SabreRouter().route(lowered, device, initial);
      SabreRouter::Options options;
      options.use_commutation = true;
      const RoutingResult relaxed =
          SabreRouter(options).route(lowered, device, initial);
      // Verify the relaxed result (reordering must stay equivalent).
      Circuit legal = expand_swaps(relaxed.circuit, device);
      legal = fix_cx_directions(legal, device);
      Rng verify_rng(3);
      if (!mapping_equivalent(circuit, legal,
                              relaxed.initial.wire_to_phys(),
                              relaxed.final.wire_to_phys(), verify_rng, 2)) {
        std::cerr << "FATAL: commutation routing incorrect on " << label
                  << "\n";
        std::exit(1);
      }
      table.add_row({label, device.name(),
                     TextTable::num(strict.added_swaps),
                     TextTable::num(relaxed.added_swaps),
                     TextTable::num(compute_metrics(strict.circuit).depth),
                     TextTable::num(compute_metrics(relaxed.circuit).depth)});
    }
  }
  std::cout << table.str();

  section("Front-layer width after the opening Hadamard (QFT-6)");
  const Circuit qft = workloads::qft(6, false);
  DependencyDag sequential(qft, DagMode::Sequential);
  DependencyDag relaxed(qft, DagMode::Commutation);
  sequential.mark_scheduled(sequential.ready().front());
  relaxed.mark_scheduled(relaxed.ready().front());
  std::cout << "strict ready 2q gates:  "
            << sequential.ready_two_qubit().size() << "\n"
            << "relaxed ready 2q gates: " << relaxed.ready_two_qubit().size()
            << "\n";
}

void BM_DagConstruction(benchmark::State& state) {
  Rng rng(4);
  const Circuit circuit = workloads::random_circuit(10, 200, rng, 0.5);
  const DagMode mode =
      state.range(0) == 0 ? DagMode::Sequential : DagMode::Commutation;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DependencyDag(circuit, mode));
  }
  state.SetLabel(state.range(0) == 0 ? "sequential" : "commutation");
}
BENCHMARK(BM_DagConstruction)->Arg(0)->Arg(1);

void BM_SabreCommutation(benchmark::State& state) {
  const Device device = devices::surface17();
  const Circuit lowered =
      lower_to_device(workloads::qft(6, false), device, true);
  const Placement initial = GreedyPlacer().place(lowered, device);
  SabreRouter::Options options;
  options.use_commutation = state.range(0) == 1;
  SabreRouter router(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route(lowered, device, initial));
  }
  state.SetLabel(state.range(0) == 1 ? "commutation" : "strict");
}
BENCHMARK(BM_SabreCommutation)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
