// Placement: the program-qubit <-> physical-qubit map (Sec. VI-B).
//
// "Qubit placement is represented by an array of integers of size equal to
//  the number of physical qubits: the k-th entry corresponds to the index
//  of the program qubit associated to the k-th physical qubit, apart from
//  a special integer indicating that the qubit is free."
//
// We track a full bijection over `wires`: wires 0..n-1 are the program
// qubits; wires n..m-1 are free-but-tracked. Keeping free wires in the
// bijection lets the equivalence checker validate routed circuits exactly
// (SWAPs move free-qubit contents too).
#pragma once

#include <string>
#include <vector>

namespace qmap {

class Placement {
 public:
  Placement() = default;

  /// Identity placement: wire w on physical qubit w.
  [[nodiscard]] static Placement identity(int num_program_qubits,
                                          int num_physical_qubits);

  /// Places program qubit k on `program_to_phys[k]`; free wires fill the
  /// remaining physical qubits in ascending order.
  [[nodiscard]] static Placement from_program_map(
      const std::vector<int>& program_to_phys, int num_physical_qubits);

  [[nodiscard]] int num_program_qubits() const noexcept {
    return num_program_qubits_;
  }
  [[nodiscard]] int num_physical_qubits() const noexcept {
    return static_cast<int>(wire_to_phys_.size());
  }

  /// Physical qubit currently holding program qubit k.
  [[nodiscard]] int phys_of_program(int k) const;
  /// Program qubit on physical qubit p, or -1 when p holds a free wire
  /// (the paper's "special integer").
  [[nodiscard]] int program_at_phys(int p) const;
  /// Wire (program or free) on physical qubit p.
  [[nodiscard]] int wire_at_phys(int p) const;
  [[nodiscard]] int phys_of_wire(int w) const;

  /// Full wire -> physical map, including free wires.
  [[nodiscard]] const std::vector<int>& wire_to_phys() const noexcept {
    return wire_to_phys_;
  }

  /// Paper-style physical -> program array (-1 = free).
  [[nodiscard]] std::vector<int> phys_to_program() const;

  /// Effect of a SWAP on physical qubits (a, b): their wires exchange.
  void apply_swap(int phys_a, int phys_b);

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Placement& x, const Placement& y) = default;

 private:
  void check_phys(int p) const;

  int num_program_qubits_ = 0;
  std::vector<int> wire_to_phys_;
  std::vector<int> phys_to_wire_;
};

}  // namespace qmap
