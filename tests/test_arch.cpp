// Device-model tests: coupling graphs, the built-in devices (with the
// concrete facts the paper states about QX4 and Surface-17), and the JSON
// device-config loader.
#include <algorithm>

#include <gtest/gtest.h>

#include "arch/builtin.hpp"
#include "arch/config.hpp"
#include "arch/draw.hpp"
#include "arch/topology.hpp"
#include "common/error.hpp"

namespace qmap {
namespace {

TEST(CouplingGraph, EdgesAndConnectivity) {
  CouplingGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2, /*directed=*/true);
  EXPECT_TRUE(g.connected(0, 1));
  EXPECT_TRUE(g.connected(1, 0));
  EXPECT_TRUE(g.connected(1, 2));
  EXPECT_FALSE(g.connected(0, 2));
  EXPECT_TRUE(g.orientation_allowed(0, 1));
  EXPECT_TRUE(g.orientation_allowed(1, 0));
  EXPECT_TRUE(g.orientation_allowed(1, 2));
  EXPECT_FALSE(g.orientation_allowed(2, 1));
  EXPECT_FALSE(g.orientation_allowed(0, 3));
}

TEST(CouplingGraph, AddingReverseDirectedEdgeWidens) {
  CouplingGraph g(2);
  g.add_edge(0, 1, true);
  EXPECT_FALSE(g.orientation_allowed(1, 0));
  g.add_edge(1, 0, true);
  EXPECT_TRUE(g.orientation_allowed(1, 0));
  EXPECT_EQ(g.num_edges(), 1u);  // still one physical connection
}

TEST(CouplingGraph, RejectsBadEdges) {
  CouplingGraph g(3);
  EXPECT_THROW(g.add_edge(0, 0), DeviceError);
  EXPECT_THROW(g.add_edge(0, 3), DeviceError);
  EXPECT_THROW((void)g.connected(-1, 0), DeviceError);
}

TEST(CouplingGraph, DistancesAndPaths) {
  CouplingGraph g(5);  // line
  for (int q = 0; q + 1 < 5; ++q) g.add_edge(q, q + 1);
  EXPECT_EQ(g.distance(0, 4), 4);
  EXPECT_EQ(g.distance(2, 2), 0);
  const auto path = g.shortest_path(0, 3);
  EXPECT_EQ(path, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.diameter(), 4);
}

TEST(CouplingGraph, DisconnectedGraphs) {
  CouplingGraph g(4);
  g.add_edge(0, 1);
  EXPECT_EQ(g.distance(0, 3), -1);
  EXPECT_TRUE(g.shortest_path(0, 3).empty());
  EXPECT_FALSE(g.is_connected());
  EXPECT_EQ(g.total_distance_from(0), -1);
}

TEST(CouplingGraph, DistanceCacheInvalidatedByNewEdges) {
  CouplingGraph g(3);
  g.add_edge(0, 1);
  EXPECT_EQ(g.distance(0, 2), -1);
  g.add_edge(1, 2);
  EXPECT_EQ(g.distance(0, 2), 2);
}

TEST(IbmQx4, MatchesFig3aCouplingGraph) {
  const Device qx4 = devices::ibm_qx4();
  EXPECT_EQ(qx4.num_qubits(), 5);
  EXPECT_EQ(qx4.coupling().num_edges(), 6u);
  EXPECT_EQ(qx4.native_two_qubit(), GateKind::CX);
  // Allowed CNOT orientations (control -> target).
  const std::pair<int, int> allowed[] = {{1, 0}, {2, 0}, {2, 1},
                                         {2, 4}, {3, 2}, {3, 4}};
  for (const auto& [c, t] : allowed) {
    EXPECT_TRUE(qx4.coupling().orientation_allowed(c, t))
        << c << "->" << t;
    EXPECT_FALSE(qx4.coupling().orientation_allowed(t, c))
        << t << "->" << c << " should be forbidden";
  }
  // The Sec. IV narrative: the example's first CNOT (paper q3 -> q4,
  // trivially placed) is not allowed.
  EXPECT_FALSE(qx4.coupling().orientation_allowed(2, 3));
  EXPECT_TRUE(qx4.accepts(make_gate(GateKind::CX, {1, 0})));
  EXPECT_FALSE(qx4.accepts(make_gate(GateKind::CX, {0, 1})));
  EXPECT_FALSE(qx4.accepts(make_gate(GateKind::CZ, {1, 0})));
}

TEST(IbmQx5, SixteenQubitLadder) {
  const Device qx5 = devices::ibm_qx5();
  EXPECT_EQ(qx5.num_qubits(), 16);
  EXPECT_TRUE(qx5.coupling().is_connected());
  EXPECT_EQ(qx5.coupling().num_edges(), 22u);
}

TEST(Surface17, MatchesThePaperFacts) {
  const Device s17 = devices::surface17();
  EXPECT_EQ(s17.num_qubits(), 17);
  EXPECT_EQ(s17.native_two_qubit(), GateKind::CZ);
  // "qubits 1 and 5 can interact"
  EXPECT_TRUE(s17.coupling().connected(1, 5));
  // "realising a two-qubit gate between qubits 1 and 7 is not possible"
  EXPECT_FALSE(s17.coupling().connected(1, 7));
  // Symmetric: "no restriction on which qubit can act as control/target".
  EXPECT_TRUE(s17.coupling().orientation_allowed(1, 5));
  EXPECT_TRUE(s17.coupling().orientation_allowed(5, 1));
  // "qubits 0, 2, 3, 6, 9, and 12 are coupled to the same feedline"
  const int line = s17.feedline(0);
  for (const int q : {2, 3, 6, 9, 12}) {
    EXPECT_EQ(s17.feedline(q), line) << "qubit " << q;
  }
  EXPECT_NE(s17.feedline(1), line);
  // Three frequency groups, all used.
  std::vector<int> groups = s17.frequency_groups();
  std::sort(groups.begin(), groups.end());
  EXPECT_EQ(groups.front(), 0);
  EXPECT_EQ(groups.back(), 2);
  EXPECT_TRUE(s17.has_control_constraints());
}

TEST(Surface17, LatticeIsTriangleFreeAndConnected) {
  const Device s17 = devices::surface17();
  const CouplingGraph& g = s17.coupling();
  EXPECT_TRUE(g.is_connected());
  // Bipartite data/ancilla lattice: no triangles (this is why a 3-clique of
  // program interactions always costs at least one SWAP on Surface-17).
  int triangles = 0;
  for (int a = 0; a < 17; ++a) {
    for (int b = a + 1; b < 17; ++b) {
      for (int c = b + 1; c < 17; ++c) {
        if (g.connected(a, b) && g.connected(b, c) && g.connected(a, c)) {
          ++triangles;
        }
      }
    }
  }
  EXPECT_EQ(triangles, 0);
}

TEST(Surface17, EveryCzPairsAdjacentFrequencyGroups) {
  // Versluis scheme: data qubits at f1/f3 (groups 0/2), ancillas at f2
  // (group 1) — so every edge connects group 1 with group 0 or 2.
  const Device s17 = devices::surface17();
  for (const auto& edge : s17.coupling().edges()) {
    const int ga = s17.frequency_group(edge.a);
    const int gb = s17.frequency_group(edge.b);
    EXPECT_EQ(std::abs(ga - gb), 1)
        << "edge " << edge.a << "-" << edge.b << " groups " << ga << "," << gb;
  }
}

TEST(Surface17, ParkingRuleMatchesModel) {
  const Device s17 = devices::surface17();
  // Pick an edge whose high-frequency endpoint has other neighbours at the
  // low endpoint's frequency.
  for (const auto& edge : s17.coupling().edges()) {
    const std::vector<int> parked = s17.parked_qubits(edge.a, edge.b);
    const int ga = s17.frequency_group(edge.a);
    const int gb = s17.frequency_group(edge.b);
    const int high = ga < gb ? edge.a : edge.b;
    const int low = ga < gb ? edge.b : edge.a;
    for (const int p : parked) {
      EXPECT_EQ(s17.frequency_group(p), s17.frequency_group(low));
      EXPECT_TRUE(s17.coupling().connected(high, p));
      EXPECT_NE(p, low);
    }
  }
  // Parking is symmetric in the operand order.
  const auto& edge = s17.coupling().edges().front();
  EXPECT_EQ(s17.parked_qubits(edge.a, edge.b),
            s17.parked_qubits(edge.b, edge.a));
}

TEST(Surface17, DurationsMatchSec5) {
  const Durations& d = devices::surface17().durations();
  EXPECT_DOUBLE_EQ(d.cycle_ns, 20.0);  // "26 cycles (20 ns per cycle)"
  EXPECT_EQ(d.single_qubit_cycles, 1);
  EXPECT_EQ(d.two_qubit_cycles, 2);
  EXPECT_GT(d.measure_cycles, 2);  // "measurement takes several cycles"
}

TEST(Surface7, SevenQubitTwoThreeTwo) {
  const Device s7 = devices::surface7();
  EXPECT_EQ(s7.num_qubits(), 7);
  EXPECT_EQ(s7.coupling().num_edges(), 8u);
  EXPECT_TRUE(s7.coupling().connected(0, 2));
  EXPECT_TRUE(s7.coupling().connected(3, 6));
  EXPECT_FALSE(s7.coupling().connected(0, 1));
}

TEST(Generators, LinearGridAllToAll) {
  const Device line = devices::linear(6);
  EXPECT_EQ(line.coupling().num_edges(), 5u);
  EXPECT_EQ(line.coupling().diameter(), 5);
  const Device grid = devices::grid(3, 4);
  EXPECT_EQ(grid.num_qubits(), 12);
  EXPECT_EQ(grid.coupling().num_edges(), 17u);  // 3*3 + 2*4
  const Device full = devices::all_to_all(5);
  EXPECT_EQ(full.coupling().num_edges(), 10u);
  EXPECT_EQ(full.coupling().diameter(), 1);
}

TEST(DeviceGates, CyclesForGateFamilies) {
  const Device s17 = devices::surface17();
  EXPECT_EQ(s17.cycles_for(make_gate(GateKind::Ry, {0}, {0.5})), 1);
  EXPECT_EQ(s17.cycles_for(make_gate(GateKind::CZ, {1, 5})), 2);
  EXPECT_EQ(s17.cycles_for(make_measure(0, 0)), 30);
  EXPECT_EQ(s17.cycles_for(make_barrier({0, 1})), 0);
  EXPECT_GT(s17.cycles_for(make_gate(GateKind::SWAP, {1, 5})), 3 * 2 - 1);
}

TEST(DeviceConfig, JsonRoundTripPreservesEverything) {
  const Device original = devices::surface17();
  const Json encoded = device_to_json(original);
  const Device decoded = device_from_json(encoded);
  EXPECT_EQ(decoded.name(), original.name());
  EXPECT_EQ(decoded.num_qubits(), original.num_qubits());
  EXPECT_EQ(decoded.coupling().num_edges(), original.coupling().num_edges());
  for (const auto& edge : original.coupling().edges()) {
    EXPECT_TRUE(decoded.coupling().connected(edge.a, edge.b));
  }
  EXPECT_EQ(decoded.native_two_qubit(), original.native_two_qubit());
  EXPECT_EQ(decoded.frequency_groups(), original.frequency_groups());
  EXPECT_EQ(decoded.feedlines(), original.feedlines());
  EXPECT_DOUBLE_EQ(decoded.durations().cycle_ns,
                   original.durations().cycle_ns);
}

TEST(DeviceConfig, DirectedEdgesRoundTrip) {
  const Device original = devices::ibm_qx4();
  const Device decoded = device_from_json(device_to_json(original));
  EXPECT_TRUE(decoded.coupling().orientation_allowed(1, 0));
  EXPECT_FALSE(decoded.coupling().orientation_allowed(0, 1));
}

TEST(DeviceConfig, ParsesMinimalConfig) {
  const Device device = device_from_json_text(R"({
    "name": "tiny",
    "num_qubits": 2,
    "edges": [[0, 1]],
    "native_two_qubit": "cz"
  })");
  EXPECT_EQ(device.name(), "tiny");
  EXPECT_TRUE(device.coupling().connected(0, 1));
  EXPECT_FALSE(device.has_control_constraints());
}

TEST(DeviceConfig, RejectsMalformedConfigs) {
  EXPECT_THROW((void)device_from_json_text("{}"), DeviceError);
  EXPECT_THROW((void)device_from_json_text(
                   R"({"num_qubits": 2, "edges": [[0, 5]]})"),
               DeviceError);
  EXPECT_THROW((void)load_device("/nonexistent/path.json"), DeviceError);
}

// Hard errors carry the offending key path so a bad config is fixable
// from the message alone.
TEST(DeviceConfig, ErrorsNameTheOffendingKeyPath) {
  const auto message_of = [](const std::string& text) {
    try {
      (void)device_from_json_text(text);
    } catch (const DeviceError& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  EXPECT_NE(message_of("{}").find("num_qubits"), std::string::npos);
  EXPECT_NE(message_of(R"({"num_qubits": "three"})").find("'num_qubits'"),
            std::string::npos);
  EXPECT_NE(message_of(R"({"num_qubits": 0})").find("at least 1"),
            std::string::npos);
  const std::string bad_edge =
      message_of(R"({"num_qubits": 2, "edges": [[0, 1], [0, 5]]})");
  EXPECT_NE(bad_edge.find("edges[1]"), std::string::npos);
  EXPECT_NE(message_of(R"({"num_qubits": 2, "edges": [[0], [0, 1]]})")
                .find("edges[0]"),
            std::string::npos);
  EXPECT_NE(message_of("[1, 2]").find("top level"), std::string::npos);
}

// Malformed *optional* fields degrade to documented defaults with a
// warning recorded on the device instead of failing the load.
TEST(DeviceConfig, OptionalFieldsFallBackWithWarnings) {
  const Device device = device_from_json_text(R"({
    "num_qubits": 3,
    "edges": [[0, 1], [1, 2]],
    "native_two_qubit": "not-a-gate",
    "durations": {"cycle_ns": -5, "two_qubit": 3},
    "frequency_groups": [0, 1],
    "supports_shuttling": "yes"
  })");
  // Defaults held where values were bad...
  EXPECT_EQ(device.native_two_qubit(), GateKind::CZ);
  EXPECT_DOUBLE_EQ(device.durations().cycle_ns, 20.0);
  EXPECT_TRUE(device.frequency_groups().empty());
  EXPECT_FALSE(device.supports_shuttling());
  // ...good values inside a partly bad section still applied...
  EXPECT_EQ(device.durations().two_qubit_cycles, 3);
  // ...and every fallback left a named warning.
  ASSERT_EQ(device.load_warnings().size(), 4u);
  const auto warned = [&device](const std::string& key) {
    for (const std::string& w : device.load_warnings()) {
      if (w.find(key) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(warned("native_two_qubit"));
  EXPECT_TRUE(warned("durations.cycle_ns"));
  EXPECT_TRUE(warned("frequency_groups"));
  EXPECT_TRUE(warned("supports_shuttling"));
}

TEST(DeviceConfig, CleanConfigLoadsWithoutWarnings) {
  const Device device = device_from_json_text(R"({
    "num_qubits": 2,
    "edges": [[0, 1]],
    "durations": {"cycle_ns": 10, "two_qubit": 2}
  })");
  EXPECT_TRUE(device.load_warnings().empty());
  EXPECT_DOUBLE_EQ(device.durations().cycle_ns, 10.0);
}

TEST(DeviceMisc, FrequencyGroupValidation) {
  Device device("d", CouplingGraph(3));
  EXPECT_THROW(device.set_frequency_groups({0, 1}), DeviceError);
  device.set_frequency_groups({0, 1, 2});
  EXPECT_EQ(device.frequency_group(1), 1);
  EXPECT_THROW((void)device.frequency_group(5), DeviceError);
}

TEST(DeviceDraw, LatticeArtShowsEveryQubit) {
  const std::string art = draw_device(devices::surface17());
  for (int q = 0; q < 17; ++q) {
    EXPECT_NE(art.find(std::to_string(q)), std::string::npos) << q;
  }
  // Frequency-group suffix letters appear.
  EXPECT_NE(art.find("a"), std::string::npos);
  EXPECT_NE(art.find("b"), std::string::npos);
  // Diagonal bonds of the rotated lattice.
  EXPECT_NE(art.find('\\'), std::string::npos);
  EXPECT_NE(art.find('/'), std::string::npos);
}

TEST(DeviceDraw, FallsBackToEdgeListWithoutCoordinates) {
  const std::string art = draw_device(devices::ibm_qx4());
  // Edges are stored with a < b; the Q1 -> Q0 coupling prints as "Q0 <- Q1".
  EXPECT_NE(art.find("Q0 <- Q1"), std::string::npos);
  EXPECT_NE(art.find("Q3 -> Q4"), std::string::npos);
}

TEST(DeviceDraw, DotExportShapes) {
  const std::string directed = device_to_dot(devices::ibm_qx4());
  EXPECT_NE(directed.find("digraph"), std::string::npos);
  EXPECT_NE(directed.find("Q1 -> Q0"), std::string::npos);
  EXPECT_EQ(directed.find("--"), std::string::npos);
  const std::string undirected = device_to_dot(devices::surface17());
  EXPECT_EQ(undirected.find("digraph"), std::string::npos);
  EXPECT_NE(undirected.find("Q1 -- Q5"), std::string::npos);
  EXPECT_NE(undirected.find("FL0"), std::string::npos);  // feedline labels
}

TEST(DeviceMisc, SummaryMentionsKeyProperties) {
  const std::string summary = devices::surface17().summary();
  EXPECT_NE(summary.find("17 qubits"), std::string::npos);
  EXPECT_NE(summary.find("cz"), std::string::npos);
  EXPECT_NE(summary.find("frequency groups: 3"), std::string::npos);
  EXPECT_NE(summary.find("feedlines: 3"), std::string::npos);
}

}  // namespace
}  // namespace qmap
