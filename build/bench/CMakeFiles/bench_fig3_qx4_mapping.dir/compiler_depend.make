# Empty compiler generated dependencies file for bench_fig3_qx4_mapping.
# This may be replaced when dependencies are built.
