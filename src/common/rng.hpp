// Deterministic random-number utilities.
//
// Every stochastic component (random workloads, annealing placer, SABRE
// tie-breaking) takes an explicit Rng so results are reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace qmap {

/// Thin wrapper around std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xC0FFEE) : engine_(seed) {}

  /// Uniform integer in [0, bound). Requires bound > 0.
  [[nodiscard]] std::size_t index(std::size_t bound) {
    std::uniform_int_distribution<std::size_t> dist(0, bound - 1);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] int integer(int lo, int hi) {
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Bernoulli draw.
  [[nodiscard]] bool chance(double p) { return uniform() < p; }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace qmap
