# Empty dependencies file for bench_control_constraints.
# This may be replaced when dependencies are built.
