file(REMOVE_RECURSE
  "CMakeFiles/qmap_noise.dir/noise/estimator.cpp.o"
  "CMakeFiles/qmap_noise.dir/noise/estimator.cpp.o.d"
  "CMakeFiles/qmap_noise.dir/noise/reliability.cpp.o"
  "CMakeFiles/qmap_noise.dir/noise/reliability.cpp.o.d"
  "CMakeFiles/qmap_noise.dir/noise/trajectory.cpp.o"
  "CMakeFiles/qmap_noise.dir/noise/trajectory.cpp.o.d"
  "libqmap_noise.a"
  "libqmap_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qmap_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
