// Compiler facade: the full Fig. 2 pipeline as a thin preset over the
// composable pass layer (src/pass/).
//
//   quantum circuit (program qubits)          device description
//        |                                        |
//        +---> gate decomposition  <--------------+
//        +---> initial placement
//        +---> qubit routing (SWAP insertion, direction fixes)
//        +---> SWAP expansion + re-lowering to native gates
//        +---> operation scheduling (control constraints included)
//        |
//        v
//   scheduled native circuit on physical qubits
//
// CompilerOptions describes the classic pipeline; Compiler::pipeline()
// expands it into a PipelineSpec and compile() hands it to a PassManager.
// Custom pipelines (reordered stages, dropped scheduler, ...) go through
// compile(circuit, spec) with a spec built in code or parsed from JSON.
//
// CompilationResult and the make_placer/make_router factories live in the
// pass layer now (pass/context.hpp, pass/registry.hpp); this header
// re-exports them so existing includes keep working.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/artifacts.hpp"
#include "arch/device.hpp"
#include "common/json.hpp"
#include "ir/circuit.hpp"
#include "ir/metrics.hpp"
#include "layout/placers.hpp"
#include "obs/obs.hpp"
#include "pass/context.hpp"
#include "pass/registry.hpp"
#include "pass/spec.hpp"
#include "route/router.hpp"
#include "schedule/schedule.hpp"

namespace qmap {

class CancelToken;  // engine/cancel.hpp

struct CompilerOptions {
  std::string placer = "greedy";   // see known_placers()
  std::string router = "sabre";    // see known_routers()
  bool lower_to_native = true;     // decompose before routing
  bool peephole = true;            // post-routing gate-count clean-up
  bool run_scheduler = true;
  bool use_control_constraints = true;  // when the device declares them
  /// Seed for stochastic placers (annealing). The portfolio engine derives
  /// a distinct stream per strategy so parallel runs stay reproducible.
  std::uint64_t seed = 0xC0FFEE;
  /// Cooperative cancellation (engine/cancel.hpp): checked between pipeline
  /// stages and inside the placer/router main loops. Not owned; may be null.
  const CancelToken* cancel = nullptr;
  /// Instrumentation/fault-injection hook called at pipeline stage
  /// boundaries with the pass's canonical name — "placer", "router",
  /// "postroute", "schedule" in that order for the standard pipeline,
  /// before the named stage runs (Pass::name() is the single source of
  /// truth; see pass/registry.hpp for the accepted aliases in pipeline
  /// JSON). An exception thrown from the hook aborts the compile exactly
  /// like a crash inside the stage would, which is how the resilience
  /// fault injector (src/resilience/) plants deterministic placer/router
  /// crashes without patching any pass. Empty by default and never on any
  /// hot path.
  std::function<void(const char* stage)> stage_hook;
  /// Observability sink (obs/): a compile span with one child span per
  /// pipeline stage, plus router/scheduler counters. Not owned; null (the
  /// default) disables all recording at the cost of one pointer compare.
  obs::Observer* obs = nullptr;
  /// Explicit parent for the compile span — used when compile() runs on a
  /// pool worker but belongs under a span opened on another thread (the
  /// portfolio race root). 0 = the calling thread's innermost open span.
  std::uint64_t obs_parent_span = 0;
  /// Immutable shared device artifacts (arch/artifacts.hpp). Null = the
  /// Compiler derives its own copy at construction; the portfolio/batch
  /// engines pass one bundle so N strategies share a single matrix.
  std::shared_ptr<const ArchArtifacts> artifacts;
};

class Compiler {
 public:
  Compiler(Device device, CompilerOptions options = {});

  [[nodiscard]] const Device& device() const noexcept { return device_; }
  [[nodiscard]] const CompilerOptions& options() const noexcept {
    return options_;
  }
  /// The device artifacts this compiler shares with every compile() run.
  [[nodiscard]] const std::shared_ptr<const ArchArtifacts>& artifacts()
      const noexcept {
    return artifacts_;
  }

  /// The options expanded into pipeline-as-data (decompose, placer,
  /// router, postroute[, schedule]).
  [[nodiscard]] PipelineSpec pipeline() const;

  /// Compiles with the standard preset — equivalent to
  /// compile(circuit, pipeline()).
  [[nodiscard]] CompilationResult compile(const Circuit& circuit) const;

  /// Compiles with an explicit pipeline (built in code or parsed from
  /// JSON via PipelineSpec::from_json). Seed/cancel/hook/obs still come
  /// from this compiler's options.
  [[nodiscard]] CompilationResult compile(const Circuit& circuit,
                                          const PipelineSpec& spec) const;

  /// Randomized end-to-end correctness check of a compilation result
  /// (state-vector equivalence under the reported placements).
  [[nodiscard]] static bool verify(const CompilationResult& result,
                                   int trials = 3,
                                   std::uint64_t seed = 0xC0FFEE);

 private:
  Device device_;
  CompilerOptions options_;
  std::shared_ptr<const ArchArtifacts> artifacts_;
};

}  // namespace qmap
