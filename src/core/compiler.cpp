#include "core/compiler.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "decompose/decomposer.hpp"
#include "engine/cancel.hpp"
#include "decompose/peephole.hpp"
#include "noise/reliability.hpp"
#include "route/astar_layer.hpp"
#include "route/bidirectional_placer.hpp"
#include "route/exact.hpp"
#include "route/measure_relocation.hpp"
#include "route/naive.hpp"
#include "route/qmap_router.hpp"
#include "route/sabre.hpp"
#include "route/shuttle.hpp"
#include "schedule/schedulers.hpp"
#include "sim/equivalence.hpp"
#include "sim/stabilizer.hpp"

namespace qmap {

const std::vector<std::string>& known_placers() {
  static const std::vector<std::string> names = {
      "identity",    "greedy",      "exhaustive",
      "annealing",   "reliability", "bidirectional"};
  return names;
}

const std::vector<std::string>& known_routers() {
  static const std::vector<std::string> names = {
      "naive", "sabre", "sabre+commute", "astar",
      "exact", "qmap",  "reliability",   "shuttle"};
  return names;
}

std::unique_ptr<Placer> make_placer(const std::string& name,
                                    std::uint64_t seed) {
  if (name == "identity") return std::make_unique<IdentityPlacer>();
  if (name == "greedy") return std::make_unique<GreedyPlacer>();
  if (name == "exhaustive") return std::make_unique<ExhaustivePlacer>();
  if (name == "annealing") return std::make_unique<AnnealingPlacer>(seed);
  if (name == "reliability") return std::make_unique<ReliabilityPlacer>();
  if (name == "bidirectional") return std::make_unique<BidirectionalPlacer>();
  throw MappingError("unknown placer: '" + name + "' (valid: " +
                     join(known_placers(), ", ") + ")");
}

std::unique_ptr<Router> make_router(const std::string& name) {
  if (name == "naive") return std::make_unique<NaiveRouter>();
  if (name == "sabre") return std::make_unique<SabreRouter>();
  if (name == "sabre+commute") {
    SabreRouter::Options options;
    options.use_commutation = true;
    return std::make_unique<SabreRouter>(options);
  }
  if (name == "astar") return std::make_unique<AStarLayerRouter>();
  if (name == "exact") return std::make_unique<ExactRouter>();
  if (name == "qmap") return std::make_unique<QmapRouter>();
  if (name == "reliability") return std::make_unique<ReliabilityRouter>();
  if (name == "shuttle") return std::make_unique<ShuttleRouter>();
  throw MappingError("unknown router: '" + name + "' (valid: " +
                     join(known_routers(), ", ") + ")");
}

Compiler::Compiler(Device device, CompilerOptions options)
    : device_(std::move(device)), options_(std::move(options)) {}

CompilationResult Compiler::compile(const Circuit& circuit) const {
  const auto checkpoint = [this] {
    if (options_.cancel) options_.cancel->check();
  };
  const auto stage = [this](const char* name) {
    if (options_.stage_hook) options_.stage_hook(name);
  };
  obs::Span compile_span(options_.obs, "compile", "core",
                         options_.obs_parent_span);
  if (compile_span.active()) {
    compile_span.arg("circuit", circuit.name());
    compile_span.arg("placer", options_.placer);
    compile_span.arg("router", options_.router);
  }
  obs::add(options_.obs, "compile.runs");
  // Per-stage spans auto-parent under compile_span (same thread). End the
  // previous stage before opening the next — otherwise the new span would
  // nest under the still-open old one instead of under compile_span.
  obs::Span stage_span;
  const auto obs_stage = [&](const char* name) {
    stage_span.end();
    stage_span = obs::Span(options_.obs, name, "stage");
  };
  CompilationResult result;
  result.original = circuit;
  result.original_metrics = compute_metrics(circuit);

  // 1. Gate decomposition (SWAPs kept as routing placeholders).
  result.lowered =
      options_.lower_to_native
          ? lower_to_device(circuit, device_, /*keep_swaps=*/true)
          : circuit;

  // Baseline latency: decomposed, dependency-only schedule (Sec. V).
  {
    const Circuit baseline =
        options_.lower_to_native
            ? lower_to_device(circuit, device_, /*keep_swaps=*/false)
            : circuit;
    result.baseline_cycles =
        schedule_asap(baseline, device_).total_cycles();
  }

  // 2. Initial placement (cooperatively cancellable inside the placer
  //    search loops).
  checkpoint();
  stage("placer");
  obs_stage("placer");
  std::unique_ptr<Placer> placer = make_placer(options_.placer, options_.seed);
  placer->set_cancel_token(options_.cancel);
  const Placement initial = placer->place(result.lowered, device_);

  // 3. Routing (cooperatively cancellable inside the router main loop).
  checkpoint();
  stage("router");
  obs_stage("router");
  std::unique_ptr<Router> router = make_router(options_.router);
  router->set_cancel_token(options_.cancel);
  router->set_observer(options_.obs);
  result.routing = router->route(result.lowered, device_, initial);
  checkpoint();
  stage("postroute");
  obs_stage("postroute");

  // 4. Measurement relocation (devices where not every qubit is
  //    measurable, Sec. VI-A), SWAP expansion, direction repair, final
  //    native lowering.
  Circuit relocated = relocate_measurements(result.routing.circuit, device_,
                                            result.routing.final);
  if (options_.peephole) relocated = peephole_optimize(relocated);
  Circuit final_circuit = expand_swaps(relocated, device_);
  final_circuit = fix_cx_directions(final_circuit, device_);
  if (options_.peephole) final_circuit = peephole_optimize(final_circuit);
  if (options_.lower_to_native) {
    final_circuit = fuse_single_qubit(final_circuit);
    final_circuit = lower_single_qubit(final_circuit, device_);
  }
  final_circuit.set_name(circuit.name() + "@" + device_.name());
  result.final_circuit = std::move(final_circuit);
  result.final_metrics = compute_metrics(result.final_circuit);

  // 5. Scheduling.
  if (options_.run_scheduler) {
    checkpoint();
    stage("schedule");
    obs_stage("schedule");
    result.schedule =
        options_.use_control_constraints
            ? schedule_for_device(result.final_circuit, device_, options_.obs)
            : schedule_asap(result.final_circuit, device_);
    result.scheduled_cycles = result.schedule.total_cycles();
  }
  stage_span.end();
  obs::observe(options_.obs, "compile.final_two_qubit_gates",
               static_cast<double>(result.final_metrics.two_qubit_gates));
  return result;
}

bool Compiler::verify(const CompilationResult& result, int trials,
                      std::uint64_t seed) {
  // Clifford circuits get the exact tableau check, which scales to any
  // width; everything else uses randomized state-vector equivalence.
  if (is_clifford_circuit(result.original) &&
      is_clifford_circuit(result.final_circuit)) {
    return clifford_mapping_equivalent(
        result.original, result.final_circuit,
        result.routing.initial.wire_to_phys(),
        result.routing.final.wire_to_phys());
  }
  Rng rng(seed);
  return mapping_equivalent(result.original, result.final_circuit,
                            result.routing.initial.wire_to_phys(),
                            result.routing.final.wire_to_phys(), rng, trials);
}

namespace {

Json metrics_to_json(const CircuitMetrics& m) {
  Json out;
  out["total_gates"] = Json(m.total_gates);
  out["single_qubit_gates"] = Json(m.single_qubit_gates);
  out["two_qubit_gates"] = Json(m.two_qubit_gates);
  out["swap_gates"] = Json(m.swap_gates);
  out["measurements"] = Json(m.measurements);
  out["depth"] = Json(m.depth);
  out["two_qubit_depth"] = Json(m.two_qubit_depth);
  return out;
}

Json placement_to_json(const Placement& placement) {
  JsonArray array;
  for (const int p : placement.phys_to_program()) array.push_back(Json(p));
  return Json(std::move(array));
}

}  // namespace

Json CompilationResult::to_json() const {
  Json out;
  out["circuit"] = Json(original.name());
  out["original"] = metrics_to_json(original_metrics);
  out["mapped"] = metrics_to_json(final_metrics);
  Json routing_json;
  routing_json["added_swaps"] = Json(routing.added_swaps);
  routing_json["added_moves"] = Json(routing.added_moves);
  routing_json["direction_fixes"] = Json(routing.direction_fixes);
  routing_json["runtime_ms"] = Json(routing.runtime_ms);
  routing_json["initial_placement"] = placement_to_json(routing.initial);
  routing_json["final_placement"] = placement_to_json(routing.final);
  out["routing"] = std::move(routing_json);
  out["baseline_cycles"] = Json(baseline_cycles);
  out["scheduled_cycles"] = Json(scheduled_cycles);
  if (baseline_cycles > 0 && scheduled_cycles > 0) {
    out["latency_ratio"] = Json(latency_ratio());
  }
  return out;
}

std::string CompilationResult::report() const {
  std::string out;
  out += "circuit: " + original.name() + "\n";
  out += "  original: " + original_metrics.to_string() + "\n";
  out += "  mapped:   " + final_metrics.to_string() + "\n";
  out += "  routing:  " + routing.to_string() + "\n";
  char buffer[160];
  if (scheduled_cycles > 0) {
    std::snprintf(buffer, sizeof(buffer),
                  "  latency: %d cycles (baseline %d, ratio %.2fx)\n",
                  scheduled_cycles, baseline_cycles, latency_ratio());
    out += buffer;
  }
  return out;
}

}  // namespace qmap
