// Resilient compilation front door: guarded, supervised, degradable.
//
// The paper's Fig. 2 pipeline — and the PR-1 portfolio engine racing it —
// assumes a well-behaved request and a healthy pass stack. This module is
// the hardened wrapper a mapping *service* actually exposes:
//
//   resilience::compile(circuit, device, policy)
//
// runs the request through
//
//   1. admission control (resilience/admission.hpp): structured validation
//      and resource budgets; hopeless or oversized requests are rejected
//      before any compute is spent, tight budgets down-tier past the
//      portfolio race;
//   2. a fallback ladder of rungs, each cheaper and more predictable than
//      the last, each inside its own crash boundary with its own slice of
//      the wall-clock deadline:
//        rung 0  portfolio race (PortfolioCompiler, all strategies);
//        rung 1  single best-known strategy (greedy+sabre by default);
//        rung 2  trivial identity placement + naive router — guaranteed to
//                terminate on any connected device (see route/naive.hpp),
//                runs with no deadline and (by default) shielded from
//                fault injection, so the ladder as a whole cannot come
//                back empty-handed;
//   3. retry with decorrelated-jitter backoff (resilience/backoff.hpp) for
//      attempts that failed with ErrorClass::Transient — a deadline slice
//      expiring, a transient pass error — while Permanent failures fall
//      through to the next rung immediately and ResourceExhausted ones are
//      never retried at the same tier;
//   4. post-compile validation (verify::ValidityChecker) — policy-gated on
//      the early rungs, always on at the last — so a corrupted result
//      degrades to the next rung instead of escaping to the caller;
//   5. systematic fault injection (resilience/fault_injector.hpp) armed
//      from the policy, so every one of those degradation paths is
//      exercisable in tests rather than discovered in production.
//
// The CompileOutcome records exactly how degraded the answer is: which
// rung produced it, how many retries were spent, which faults fired, and
// whether the result was re-validated. For a fixed policy seed the outcome
// fingerprint is byte-identical across runs and thread counts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arch/device.hpp"
#include "common/json.hpp"
#include "engine/cancel.hpp"
#include "engine/portfolio.hpp"
#include "engine/thread_pool.hpp"
#include "resilience/admission.hpp"
#include "resilience/backoff.hpp"
#include "resilience/fault_injector.hpp"

namespace qmap::resilience {

struct Policy {
  /// Admission budgets (see resilience/admission.hpp).
  ResourceBudget budget;
  /// Total wall-clock deadline for the whole ladder in milliseconds
  /// (0 = none). Rung 0 gets rung0_deadline_fraction of it, rung 1 the
  /// same fraction of what is left; rung 2 always runs unbounded.
  double deadline_ms = 0.0;
  double rung0_deadline_fraction = 0.6;
  double rung1_deadline_fraction = 0.5;
  /// Retries per rung for Transient failures (on top of the first
  /// attempt). Permanent and ResourceExhausted failures never retry.
  int max_retries_per_rung = 2;
  BackoffOptions backoff;
  /// Seed for everything stochastic: strategy streams, backoff jitter,
  /// fault-injection decisions.
  std::uint64_t seed = 0xC0FFEE;
  /// Worker threads for the portfolio rung (0 = hardware concurrency).
  int num_threads = 0;
  /// Run the ValidityChecker on rung-0/1 results (the last rung is always
  /// validated regardless).
  bool validate_intermediate = true;
  /// Keep fault hooks and deadlines away from the last rung so its
  /// never-fails guarantee survives even a probability-1.0 injection
  /// campaign. Disable only to test the ladder's own failure path.
  bool shield_last_rung = true;
  /// First ladder rung to attempt (0 = portfolio race). Admission can only
  /// push this *down* (DownTier starts at max(first_rung, 1)). The compile
  /// service sets 1 for requests that pin an explicit pipeline: the pinned
  /// spec runs as rung 1 with the never-fails rung below it, and no
  /// portfolio race is spent on a request that asked for one strategy.
  int first_rung = 0;
  /// Upstream cancellation (not owned; null = none): checked between rungs
  /// and attempts, parent-linked into the rung-0 race and the rung-1
  /// deadline token. Explicit cancellation is a caller request, not a
  /// failure mode, so it stops the ladder even ahead of the shielded last
  /// rung. Must outlive the compile call. The compile service fires it
  /// when the last client interested in a request disconnects.
  const CancelToken* cancel = nullptr;
  /// Rung 0 strategy set; empty = PortfolioCompiler::default_portfolio.
  /// Each StrategySpec expands to a PipelineSpec (StrategySpec::pipeline),
  /// so all three rungs are pipeline data in the end.
  std::vector<StrategySpec> portfolio;
  /// Rung 1 strategy.
  std::string fallback_placer = "greedy";
  std::string fallback_router = "sabre";
  /// Explicit pipelines for rungs 1/2 as declarative data (build with
  /// PipelineSpec::standard or parse with PipelineSpec::from_json). Unset
  /// (the default) derives rung 1 from fallback_placer/fallback_router and
  /// rung 2 from identity+naive, each with `base`'s toggles — exactly the
  /// historical ladder. The seed/deadline/fault wiring is identical either
  /// way; the rung label becomes the pipeline's label().
  std::optional<PipelineSpec> rung1_pipeline;
  std::optional<PipelineSpec> rung2_pipeline;
  /// Armed faults (empty in production).
  std::vector<FaultSpec> faults;
  /// Pipeline toggles shared by every rung (placer/router/seed/cancel/
  /// stage_hook fields are overwritten per rung).
  CompilerOptions base;
  /// Observability sink (obs/): a root span per compile, one span per rung
  /// and per attempt, instant events for fired faults, and ladder counters.
  /// Not owned; null disables recording. Overrides base.obs on every rung.
  obs::Observer* obs = nullptr;
};

/// One compile attempt inside one rung.
struct AttemptReport {
  int attempt = 0;   // 0 = first try, >0 = retry
  bool ok = false;
  /// Meaningful when !ok.
  ErrorClass error_class = ErrorClass::Permanent;
  std::string error;
  /// Backoff slept *before* this attempt (0 for attempt 0).
  double backoff_ms = 0.0;
  double wall_ms = 0.0;
  /// Faults that fired during this attempt (sorted, deduplicated).
  std::vector<std::string> injected_faults;

  [[nodiscard]] Json to_json() const;
};

/// One ladder rung's history.
struct RungReport {
  int rung = -1;
  std::string label;  // "portfolio" / "greedy+sabre" / "identity+naive"
  bool ok = false;
  bool skipped = false;  // admission down-tier or earlier rung succeeded
  std::vector<AttemptReport> attempts;
  /// Rung 0 only: per-strategy telemetry of the last attempt's race.
  std::vector<StrategyTelemetry> strategies;

  [[nodiscard]] Json to_json() const;
};

/// What the caller gets back: the result plus an honest account of how it
/// was obtained.
struct CompileOutcome {
  bool ok = false;
  AdmissionReport admission;
  /// Valid when ok.
  CompilationResult result;
  /// Ladder rung that produced the result (-1 when !ok).
  int rung = -1;
  /// Winning strategy ("greedy+sabre", "identity+naive", ...).
  std::string winner_label;
  /// Transient retries spent across all rungs.
  int total_retries = 0;
  /// Union of fault points that fired anywhere (sorted, deduplicated).
  std::vector<std::string> injected_faults;
  /// True when the returned result passed a ValidityChecker audit.
  bool validated = false;
  std::vector<RungReport> rungs;
  double wall_ms = 0.0;
  /// Failure summary when !ok (admission rejection or — only possible
  /// with shield_last_rung off — a fully exhausted ladder).
  std::string error;

  /// True when the answer came from a rung below the portfolio race.
  [[nodiscard]] bool degraded() const noexcept { return ok && rung > 0; }
  /// Human-readable account: admission verdict, per-rung attempt table,
  /// winner, degradation summary.
  [[nodiscard]] std::string report() const;
  [[nodiscard]] Json to_json() const;
  /// Deterministic digest excluding wall-clock fields: byte-identical
  /// across runs and thread counts for a fixed policy seed.
  [[nodiscard]] std::string fingerprint() const;
};

class ResilientCompiler {
 public:
  /// Validates the policy eagerly: strategy and fault-point names, rung-1
  /// pairing, deadline fractions. Throws MappingError on nonsense.
  explicit ResilientCompiler(Device device, Policy policy = {});

  [[nodiscard]] const Device& device() const noexcept { return device_; }
  [[nodiscard]] const Policy& policy() const noexcept { return policy_; }

  /// The one admission path every entry point shares — compile(),
  /// compile_batch(), and the compile service's pre-queue check all call
  /// this, so reject/down-tier behaviour cannot drift between front doors.
  /// Wraps the guard with the policy-derived race width and deadline.
  [[nodiscard]] AdmissionReport assess(const Circuit& circuit) const;
  [[nodiscard]] const AdmissionGuard& admission_guard() const noexcept {
    return guard_;
  }

  /// Never throws for any admitted circuit: every failure is contained in
  /// the outcome. Runs the portfolio rung on an internally owned pool.
  [[nodiscard]] CompileOutcome compile(const Circuit& circuit) const;
  /// Same, sharing a caller-owned pool.
  [[nodiscard]] CompileOutcome compile(const Circuit& circuit,
                                       ThreadPool& pool) const;

  /// Per-item isolation: circuit k is compiled with a seed derived from
  /// (policy.seed, k) and its own outcome slot; a poisoned item — even one
  /// rejected at admission — never sinks its siblings. Outcomes are in
  /// submission order.
  [[nodiscard]] std::vector<CompileOutcome> compile_batch(
      const std::vector<Circuit>& circuits) const;

 private:
  [[nodiscard]] CompileOutcome compile_(const Circuit& circuit,
                                        ThreadPool& pool,
                                        std::uint64_t seed) const;

  Device device_;
  Policy policy_;
  /// Width of the rung-0 race, resolved once (empty policy portfolio =
  /// default_portfolio size); feeds the guard's memory estimate.
  std::size_t num_strategies_ = 1;
  /// One guard per supervisor, shared by every entry point (see assess()).
  AdmissionGuard guard_;
  /// One immutable artifacts bundle shared by every rung, attempt, and
  /// portfolio strategy of every compile this supervisor runs.
  std::shared_ptr<const ArchArtifacts> artifacts_;
};

/// Front door: one call, one hardened answer.
[[nodiscard]] CompileOutcome compile(const Circuit& circuit,
                                     const Device& device,
                                     const Policy& policy = {});

}  // namespace qmap::resilience
