// OpenQASM 2.0 front end (reader + writer) for the subset used by mapping
// benchmarks: register declarations, the standard qelib1 gate names,
// parameter expressions, measurement, and barriers. Multiple quantum
// registers are flattened into one contiguous qubit index space.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "ir/circuit.hpp"

namespace qmap {

/// Parses OpenQASM 2.0 source text. Throws ParseError carrying the
/// 1-based line and column of the offending statement.
[[nodiscard]] Circuit parse_openqasm(std::string_view source);

/// Parses OpenQASM 2.0 incrementally from a stream: the source is lexed
/// statement-at-a-time and never fully resident. Same grammar, same
/// diagnostics, same result as the string overload.
[[nodiscard]] Circuit parse_openqasm(std::istream& in);

/// Reads and parses a .qasm file (streamed, not slurped).
[[nodiscard]] Circuit load_openqasm(const std::string& path);

/// Serializes the circuit as OpenQASM 2.0 (single register q[n]).
[[nodiscard]] std::string to_openqasm(const Circuit& circuit);

void save_openqasm(const Circuit& circuit, const std::string& path);

}  // namespace qmap
