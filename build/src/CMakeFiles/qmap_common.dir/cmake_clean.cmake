file(REMOVE_RECURSE
  "CMakeFiles/qmap_common.dir/common/json.cpp.o"
  "CMakeFiles/qmap_common.dir/common/json.cpp.o.d"
  "CMakeFiles/qmap_common.dir/common/matrix.cpp.o"
  "CMakeFiles/qmap_common.dir/common/matrix.cpp.o.d"
  "CMakeFiles/qmap_common.dir/common/strings.cpp.o"
  "CMakeFiles/qmap_common.dir/common/strings.cpp.o.d"
  "libqmap_common.a"
  "libqmap_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qmap_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
