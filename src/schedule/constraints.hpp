// Classical-control resource constraints (Sec. V).
//
// "control instruments need to be shared among different qubits. This
//  restriction may severely affect the scheduling of quantum operations as
//  it will limit the possible parallelism leading to larger circuit depths."
//
// Three concrete Surface-17 constraints are modelled:
//  * SharedMicrowaveConstraint — qubits in one frequency group share an
//    AWG: concurrently executing single-qubit gates on same-group qubits
//    must be the *same* gate, started in the same cycle.
//  * FeedlineConstraint — measurements on one feedline either start in the
//    same cycle or do not overlap at all.
//  * ParkingConstraint — while CZ(a,b) runs, the frequency-adjacent
//    neighbours returned by Device::parked_qubits(a,b) are detuned and may
//    not execute anything.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "arch/device.hpp"
#include "schedule/schedule.hpp"

namespace qmap {

class ResourceConstraint {
 public:
  virtual ~ResourceConstraint() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// True when `candidate` may run alongside the already-admitted,
  /// time-overlapping `running` operations.
  [[nodiscard]] virtual bool compatible(
      const ScheduledGate& candidate,
      const std::vector<ScheduledGate>& running,
      const Device& device) const = 0;
};

class SharedMicrowaveConstraint final : public ResourceConstraint {
 public:
  [[nodiscard]] std::string name() const override {
    return "shared-microwave";
  }
  [[nodiscard]] bool compatible(const ScheduledGate& candidate,
                                const std::vector<ScheduledGate>& running,
                                const Device& device) const override;
};

class FeedlineConstraint final : public ResourceConstraint {
 public:
  [[nodiscard]] std::string name() const override { return "feedline"; }
  [[nodiscard]] bool compatible(const ScheduledGate& candidate,
                                const std::vector<ScheduledGate>& running,
                                const Device& device) const override;
};

class ParkingConstraint final : public ResourceConstraint {
 public:
  [[nodiscard]] std::string name() const override { return "cz-parking"; }
  [[nodiscard]] bool compatible(const ScheduledGate& candidate,
                                const std::vector<ScheduledGate>& running,
                                const Device& device) const override;
};

/// Limits device-wide two-qubit gate concurrency (Sec. VI-C: trapped ions
/// pay for all-to-all connectivity with "reduced two-qubit gate
/// parallelism" on the shared motional bus).
class TwoQubitParallelismConstraint final : public ResourceConstraint {
 public:
  explicit TwoQubitParallelismConstraint(int max_concurrent)
      : max_concurrent_(max_concurrent) {}
  [[nodiscard]] std::string name() const override {
    return "two-qubit-parallelism";
  }
  [[nodiscard]] bool compatible(const ScheduledGate& candidate,
                                const std::vector<ScheduledGate>& running,
                                const Device& device) const override;

 private:
  int max_concurrent_;
};

/// The full Surface-17 constraint stack.
[[nodiscard]] std::vector<std::unique_ptr<ResourceConstraint>>
surface_control_constraints();

/// The constraint stack appropriate for `device`: the Surface control
/// constraints when frequency groups / feedlines are declared, plus the
/// two-qubit parallelism limit when one is set. Empty for unconstrained
/// devices.
[[nodiscard]] std::vector<std::unique_ptr<ResourceConstraint>>
constraints_for_device(const Device& device);

}  // namespace qmap
