file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_surface17_device.dir/bench_fig4_surface17_device.cpp.o"
  "CMakeFiles/bench_fig4_surface17_device.dir/bench_fig4_surface17_device.cpp.o.d"
  "bench_fig4_surface17_device"
  "bench_fig4_surface17_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_surface17_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
