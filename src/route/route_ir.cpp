#include "route/route_ir.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace qmap {

// --- RouteArena ---

namespace {
constexpr std::size_t kMinBlockBytes = 64 * 1024;
}  // namespace

void* RouteArena::slow_alloc(std::size_t bytes, std::size_t align) {
  // Walk forward over retained blocks (resetting each — everything past
  // the active block belongs to an already-rewound epoch) until one fits,
  // else grow geometrically.
  while (active_ + 1 < blocks_.size()) {
    Block& block = blocks_[++active_];
    block.used = 0;
    if (bytes + align <= block.size) return raw_alloc(bytes, align);
  }
  const std::size_t last = blocks_.empty() ? 0 : blocks_.back().size;
  const std::size_t size =
      std::max({bytes + align, last * 2, kMinBlockBytes});
  blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size, 0});
  active_ = blocks_.size() - 1;
  return raw_alloc(bytes, align);
}

std::size_t RouteArena::bytes_reserved() const noexcept {
  std::size_t total = 0;
  for (const Block& block : blocks_) total += block.size;
  return total;
}

RouteArena& RouteArena::scratch() {
  static thread_local RouteArena arena;
  return arena;
}

// --- RouteIR ---

RouteIR RouteIR::build(const Circuit& circuit, DagMode mode,
                       RouteArena& arena) {
  RouteIR ir;
  const std::uint32_t n = static_cast<std::uint32_t>(circuit.size());
  ir.num_gates = n;
  ir.num_program_qubits = static_cast<std::uint32_t>(circuit.num_qubits());

  // SoA gate records. The two-qubit index list is filled in the same pass
  // (over-allocated to n entries — bump allocation makes slack free).
  // All same-width arrays are carved from two block allocations: the bump
  // pointer is cheap, but a dozen separate calls are measurable fixed
  // overhead on toy circuits where the whole build is a few hundred ns.
  std::uint32_t* u32_block = arena.alloc<std::uint32_t>(
      static_cast<std::size_t>(n) * 7 + 1);
  std::uint32_t* q0 = u32_block;
  std::uint32_t* q1 = q0 + n;
  std::uint32_t* two_qubit = q1 + n;
  std::uint32_t* stamp = two_qubit + n;
  std::uint32_t* offsets = stamp + n;           // n + 1 entries
  std::uint32_t* pred_count = offsets + n + 1;
  std::uint32_t* cursor = pred_count + n;
  std::uint8_t* u8_block = arena.alloc<std::uint8_t>(
      static_cast<std::size_t>(n) * 3);
  std::uint8_t* kind = u8_block;
  std::uint8_t* flags = kind + n;
  // Operand count per gate, saturated at 3: lets the edge-discovery pass
  // below walk the flat q0/q1 arrays for the (overwhelmingly common)
  // arity <= 2 gates instead of chasing each Gate's heap vector again;
  // 3 means "consult the Gate" (barriers, pre-lowered CCX/CSWAP).
  std::uint8_t* nops = flags + n;
  std::size_t total_operands = 0;
  std::uint32_t num_two_qubit = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const Gate& gate = circuit.gate(i);
    const GateKind gkind = gate.kind;
    const std::size_t count = gate.qubits.size();
    kind[i] = static_cast<std::uint8_t>(gkind);
    // Equivalent to Gate::is_two_qubit() without the gate_info call:
    // every gate built through make_gate has qubits.size() == arity, and
    // the one any-arity kind (Barrier) is excluded explicitly.
    std::uint8_t f = 0;
    if (count == 2 && gkind != GateKind::Barrier) {
      f = kFlagTwoQubit;
      two_qubit[num_two_qubit++] = i;
    }
    flags[i] = f;
    q0[i] = count == 0 ? kNoQubit : static_cast<std::uint32_t>(gate.qubits[0]);
    q1[i] = count < 2 ? kNoQubit : static_cast<std::uint32_t>(gate.qubits[1]);
    nops[i] = static_cast<std::uint8_t>(std::min<std::size_t>(count, 3));
    total_operands += count;
  }

  // Edge discovery, replicating DependencyDag (ir/dag.cpp) exactly. Edges
  // are found grouped by destination in ascending order, so filling the
  // CSR successor array in discovery order reproduces the DAG's ascending
  // successor lists. stamp[] dedups (src, dst) pairs in O(1): the original
  // add_edge's find-in-successors can only ever match an edge added for
  // the *current* destination, so a per-destination stamp is equivalent.
  const std::uint32_t* edge_src = nullptr;
  const std::uint32_t* edge_dst = nullptr;
  std::size_t num_edges = 0;
  std::fill(stamp, stamp + n, kNoQubit);
  // CSR degree arrays, counted during discovery on the Sequential path
  // (the commutation path counts in a separate pass below).
  std::fill(offsets, offsets + n + 1, 0u);
  std::fill(pred_count, pred_count + n, 0u);
  if (mode == DagMode::Sequential) {
    // last_writer[q] = most recent gate touching qubit q; at most one edge
    // per operand, so total_operands bounds the edge count.
    std::uint32_t* seq_block = arena.alloc<std::uint32_t>(
        2 * total_operands + ir.num_program_qubits);
    std::uint32_t* src = seq_block;
    std::uint32_t* dst = src + total_operands;
    std::int32_t* last_writer =
        reinterpret_cast<std::int32_t*>(dst + total_operands);
    std::fill(last_writer, last_writer + ir.num_program_qubits,
              std::int32_t{-1});
    const auto visit = [&](std::uint32_t i, int q) {
      const std::int32_t prev = last_writer[q];
      if (prev >= 0 && stamp[prev] != i) {
        stamp[prev] = i;
        src[num_edges] = static_cast<std::uint32_t>(prev);
        dst[num_edges] = i;
        ++num_edges;
        ++offsets[prev + 1];
        ++pred_count[i];
      }
      last_writer[q] = static_cast<std::int32_t>(i);
    };
    for (std::uint32_t i = 0; i < n; ++i) {
      // Flat q0/q1 for arity <= 2 (operand order preserved); the rare
      // wider gates re-read the Gate, keeping discovery identical to the
      // old per-Gate loop.
      if (nops[i] <= 2) {
        if (nops[i] >= 1) visit(i, static_cast<int>(q0[i]));
        if (nops[i] == 2) visit(i, static_cast<int>(q1[i]));
      } else {
        for (const int q : circuit.gate(i).qubits) visit(i, q);
      }
    }
    edge_src = src;
    edge_dst = dst;
  } else {
    // Commutation-aware: gate i depends on every earlier gate sharing a
    // qubit that it does not provably commute with. Edge count is
    // unbounded (quadratic worst case), so discovery goes through heap
    // vectors and the result is copied into the arena.
    std::vector<std::uint32_t> src_v;
    std::vector<std::uint32_t> dst_v;
    src_v.reserve(4 * n);
    dst_v.reserve(4 * n);
    std::vector<std::vector<std::uint32_t>> per_qubit(
        ir.num_program_qubits);
    for (std::uint32_t i = 0; i < n; ++i) {
      const Gate& gate = circuit.gate(i);
      for (const int q : gate.qubits) {
        for (const std::uint32_t prev : per_qubit[static_cast<std::size_t>(q)]) {
          if (stamp[prev] != i && !gates_commute(circuit.gate(prev), gate)) {
            stamp[prev] = i;
            src_v.push_back(prev);
            dst_v.push_back(i);
          }
        }
        per_qubit[static_cast<std::size_t>(q)].push_back(i);
      }
    }
    num_edges = src_v.size();
    std::uint32_t* src = arena.alloc<std::uint32_t>(num_edges);
    std::uint32_t* dst = arena.alloc<std::uint32_t>(num_edges);
    std::copy(src_v.begin(), src_v.end(), src);
    std::copy(dst_v.begin(), dst_v.end(), dst);
    edge_src = src;
    edge_dst = dst;
    for (std::size_t e = 0; e < num_edges; ++e) {
      ++offsets[edge_src[e] + 1];
      ++pred_count[edge_dst[e]];
    }
  }

  // CSR: degrees were counted during discovery; prefix-sum, then scatter
  // in discovery order (ascending destinations => ascending successor
  // lists).
  for (std::uint32_t i = 0; i < n; ++i) offsets[i + 1] += offsets[i];
  std::uint32_t* succ = arena.alloc<std::uint32_t>(num_edges);
  std::copy(offsets, offsets + n, cursor);
  for (std::size_t e = 0; e < num_edges; ++e) {
    succ[cursor[edge_src[e]]++] = edge_dst[e];
  }

  ir.kind = kind;
  ir.flags = flags;
  ir.q0 = q0;
  ir.q1 = q1;
  ir.succ_offsets = offsets;
  ir.succ = succ;
  ir.pred_count = pred_count;
  ir.two_qubit = two_qubit;
  ir.num_two_qubit = num_two_qubit;
  return ir;
}

// --- FrontLayer ---

void FrontLayer::init(const RouteIR& ir, RouteArena& arena) {
  ir_ = &ir;
  std::uint32_t* block =
      arena.alloc<std::uint32_t>(2 * static_cast<std::size_t>(ir.num_gates));
  indegree_ = block;
  ready_ = block + ir.num_gates;
  scheduled_ = arena.alloc<std::uint8_t>(ir.num_gates);
  reset();
}

void FrontLayer::reset() {
  num_scheduled_ = 0;
  ready_size_ = 0;
  const std::uint32_t n = ir_->num_gates;
  std::memcpy(indegree_, ir_->pred_count, n * sizeof(std::uint32_t));
  std::memset(scheduled_, 0, n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (indegree_[i] == 0) ready_[ready_size_++] = i;
  }
}

void FrontLayer::mark_scheduled(std::uint32_t node) {
  std::uint32_t* const end = ready_ + ready_size_;
  std::uint32_t* const at = std::find(ready_, end, node);
  if (at == end) {
    throw CircuitError("mark_scheduled: node " + std::to_string(node) +
                       " is not ready");
  }
  std::memmove(at, at + 1,
               static_cast<std::size_t>(end - at - 1) * sizeof(std::uint32_t));
  --ready_size_;
  scheduled_[node] = 1;
  ++num_scheduled_;
  const std::uint32_t begin = ir_->succ_offsets[node];
  const std::uint32_t finish = ir_->succ_offsets[node + 1];
  for (std::uint32_t e = begin; e < finish; ++e) {
    const std::uint32_t succ = ir_->succ[e];
    if (--indegree_[succ] == 0) {
      // Keep the ready list sorted, like DependencyDag's upper_bound
      // insert, for deterministic iteration.
      std::uint32_t* const pos =
          std::upper_bound(ready_, ready_ + ready_size_, succ);
      std::memmove(pos + 1, pos,
                   static_cast<std::size_t>(ready_ + ready_size_ - pos) *
                       sizeof(std::uint32_t));
      *pos = succ;
      ++ready_size_;
    }
  }
}

std::uint32_t FrontLayer::ready_two_qubit(std::uint32_t* out) const {
  std::uint32_t count = 0;
  for (std::uint32_t k = 0; k < ready_size_; ++k) {
    const std::uint32_t node = ready_[k];
    if (ir_->is_two_qubit(node)) out[count++] = node;
  }
  return count;
}

// --- RouteCore ---

RouteCore::RouteCore(const Circuit& circuit, const Device& device,
                     const ArchArtifacts* artifacts, DagMode mode,
                     const Placement& initial, RouteArena& arena)
    : circuit_(&circuit),
      device_(&device),
      artifacts_(artifacts),
      arena_(&arena),
      num_phys_(device.num_qubits()) {
  ir = RouteIR::build(circuit, mode, arena);
  front.init(ir, arena);
  if (artifacts_ != nullptr) {
    dist_ = artifacts_->distance_data();
  } else {
    // No artifacts attached: flatten the device's (eagerly warmed)
    // distance cache once, so the inner loops still index a contiguous
    // matrix instead of calling through the lazy per-pair accessor.
    const std::size_t n = static_cast<std::size_t>(num_phys_);
    int* flat = arena.alloc<int>(n * n);
    const std::vector<std::vector<int>>& rows =
        device.coupling().distance_rows();
    for (std::size_t r = 0; r < n; ++r) {
      std::memcpy(flat + r * n, rows[r].data(), n * sizeof(int));
    }
    dist_ = flat;
  }
  phys_of_ = arena.alloc<std::uint32_t>(ir.num_program_qubits);
  prog_at_ = arena.alloc<std::int32_t>(num_phys_);
  for (std::uint32_t k = 0; k < ir.num_program_qubits; ++k) {
    phys_of_[k] =
        static_cast<std::uint32_t>(initial.phys_of_program(static_cast<int>(k)));
  }
  for (int p = 0; p < num_phys_; ++p) {
    prog_at_[p] = initial.program_at_phys(p);
  }
  ready_snapshot_ = arena.alloc<std::uint32_t>(ir.num_gates);
  front_buf_ = arena.alloc<std::uint32_t>(ir.num_two_qubit);
  front_gates = front_buf_;
  if (artifacts_ == nullptr) {
    // Parent rows for shortest_path reconstruction, filled per source on
    // first use. Allocated here — not lazily — so the pointers never
    // outlive a nested scope (astar's per-layer rewind).
    const auto n = static_cast<std::size_t>(num_phys_);
    path_parent_ = arena.alloc<std::int32_t>(n * n);
    path_row_valid_ = arena.alloc<std::uint8_t>(n);
    std::memset(path_row_valid_, 0, n);
    path_queue_ = arena.alloc<std::int32_t>(n);
  }
}

std::uint32_t RouteCore::collect_extended(std::size_t window,
                                          std::uint32_t* out) {
  // Equivalent to the old full scan over the circuit: non-2q gates were
  // never collected, so scanning the ascending two-qubit index list with
  // a monotonic scheduled-prefix cursor visits the same candidates.
  while (ext_cursor_ < ir.num_two_qubit &&
         front.scheduled(ir.two_qubit[ext_cursor_])) {
    ++ext_cursor_;
  }
  std::uint32_t count = 0;
  std::uint32_t fi = 0;  // merge pointer into the sorted front
  for (std::uint32_t k = ext_cursor_;
       k < ir.num_two_qubit && count < window; ++k) {
    const std::uint32_t node = ir.two_qubit[k];
    if (front.scheduled(node)) continue;
    while (fi < front_size && front_gates[fi] < node) ++fi;
    if (fi < front_size && front_gates[fi] == node) continue;
    out[count++] = node;
  }
  return count;
}

void RouteCore::mark_relevant(std::uint8_t* relevant) const {
  std::memset(relevant, 0, static_cast<std::size_t>(num_phys_));
  for (std::uint32_t k = 0; k < front_size; ++k) {
    const std::uint32_t node = front_gates[k];
    relevant[phys_of_[ir.q0[node]]] = 1;
    relevant[phys_of_[ir.q1[node]]] = 1;
  }
}

void RouteCore::ensure_path_row(int a) const {
  if (path_row_valid_[a]) return;
  const auto n = static_cast<std::size_t>(num_phys_);
  std::int32_t* row = path_parent_ + static_cast<std::size_t>(a) * n;
  std::fill(row, row + n, -1);
  row[a] = a;
  // Full BFS in ascending-neighbor order: the same discovery — and so the
  // same parents along every shortest path — as CouplingGraph's
  // early-exit BFS, which finalizes a target's parent chain before
  // popping the target.
  std::size_t head = 0;
  std::size_t tail = 0;
  path_queue_[tail++] = a;
  const CouplingGraph& coupling = device_->coupling();
  while (head < tail) {
    const int u = path_queue_[head++];
    for (const int v : coupling.neighbors(u)) {
      if (row[v] < 0) {
        row[v] = u;
        path_queue_[tail++] = v;
      }
    }
  }
  path_row_valid_[a] = 1;
}

std::vector<int> RouteCore::shortest_path(int a, int b) const {
  if (artifacts_ != nullptr) return artifacts_->shortest_path(a, b);
  if (a == b) return {a};
  ensure_path_row(a);
  const std::int32_t* row =
      path_parent_ + static_cast<std::size_t>(a) *
                         static_cast<std::size_t>(num_phys_);
  if (row[b] < 0) return {};
  std::vector<int> path;
  for (int v = b; v != a; v = row[v]) path.push_back(v);
  path.push_back(a);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace qmap
