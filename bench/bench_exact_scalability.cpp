// E9 / Sec. IV — "exact approaches ... are often not that scalable";
// heuristics "are still the best solution" for actual use cases.
//
// Measures the exact router's runtime wall against the heuristics as the
// device (and hence the placement-permutation state space) grows, plus the
// quality gap on instances the exact router can still solve. Expected
// shape: exact runtime explodes combinatorially with device size while
// heuristic runtime stays flat in the milliseconds, at a modest SWAP-count
// premium for the heuristics.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.hpp"
#include "common/error.hpp"
#include "route/exact.hpp"

namespace {

using namespace qmap;
using namespace qmap::bench;

Circuit chain_workload(int n, int gates, Rng& rng) {
  // Dependency-chain CNOTs: a fair instance family for the order-exact
  // router (no commuting freedom; see route/exact.hpp).
  Circuit circuit(n, "chain" + std::to_string(n));
  int previous = 0;
  for (int g = 0; g < gates; ++g) {
    int other = static_cast<int>(rng.index(static_cast<std::size_t>(n - 1)));
    if (other >= previous) ++other;
    circuit.cx(previous, other);
    previous = other;
  }
  return circuit;
}

void print_figure() {
  paper_note(
      "Sec. IV: exact approaches 'can guarantee minimal or close-to-minimal "
      "solutions [but] are often not that scalable'.");
  section("Runtime vs device size (line devices, 12-CNOT chain circuits)");
  TextTable table({"device qubits", "exact ms", "sabre ms", "astar ms",
                   "exact swaps", "sabre swaps", "astar swaps"});
  for (int n = 3; n <= 8; ++n) {
    const Device device = devices::linear(n);
    Rng rng(1000 + static_cast<std::uint64_t>(n));
    const Circuit circuit = chain_workload(n, 12, rng);
    const Placement initial = Placement::identity(n, n);
    double runtime[3] = {0, 0, 0};
    std::size_t swaps[3] = {0, 0, 0};
    const char* routers[] = {"exact", "sabre", "astar"};
    for (int r = 0; r < 3; ++r) {
      // Median of 3 runs.
      std::vector<double> times;
      RoutingResult result;
      for (int rep = 0; rep < 3; ++rep) {
        result = make_router(routers[r])->route(circuit, device, initial);
        times.push_back(result.runtime_ms);
      }
      std::sort(times.begin(), times.end());
      runtime[r] = times[1];
      swaps[r] = result.added_swaps;
    }
    table.add_row({TextTable::num(n), TextTable::num(runtime[0], 3),
                   TextTable::num(runtime[1], 3),
                   TextTable::num(runtime[2], 3), TextTable::num(swaps[0]),
                   TextTable::num(swaps[1]), TextTable::num(swaps[2])});
    // Heuristics never beat exact on these chain instances.
    if (swaps[1] < swaps[0] || swaps[2] < swaps[0]) {
      std::cerr << "FATAL: heuristic beat the exact router on a fixed-order "
                   "instance\n";
      std::exit(1);
    }
  }
  std::cout << table.str();

  section("Exact router state budget wall");
  ExactRouter::Options tight;
  tight.max_states = 50000;
  Rng rng(77);
  const Device grid = devices::grid(3, 3);
  const Circuit big = chain_workload(9, 20, rng);
  try {
    (void)ExactRouter(tight).route(big, grid, Placement::identity(9, 9));
    std::cout << "9-qubit grid instance fit in 50k states\n";
  } catch (const MappingError& e) {
    std::cout << "9-qubit grid instance exceeds 50k states: " << e.what()
              << "\n";
  }
  paper_note(
      "'For actual use cases, however, the heuristic approaches are still "
      "the best solution.'");
}

void BM_ExactByDeviceSize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Device device = devices::linear(n);
  Rng rng(1000 + static_cast<std::uint64_t>(n));
  const Circuit circuit = chain_workload(n, 12, rng);
  const Placement initial = Placement::identity(n, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        make_router("exact")->route(circuit, device, initial));
  }
}
BENCHMARK(BM_ExactByDeviceSize)->DenseRange(3, 7);

void BM_SabreByDeviceSize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Device device = devices::linear(n);
  Rng rng(1000 + static_cast<std::uint64_t>(n));
  const Circuit circuit = chain_workload(n, 12, rng);
  const Placement initial = Placement::identity(n, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        make_router("sabre")->route(circuit, device, initial));
  }
}
BENCHMARK(BM_SabreByDeviceSize)->DenseRange(3, 7);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
