// Gate-decomposition passes (task 1 of the compiler in Sec. III-A).
//
// The passes are deliberately split so the mapping pipeline can interleave
// them with routing the way Sec. VI-A describes: lowering to the native
// two-qubit gate and fusing single-qubit runs is placement-independent and
// happens before routing; fixing CNOT directions on directed-coupling
// devices (extra Hadamards, Sec. IV) can only happen at routing time when
// the placement is known.
#pragma once

#include "arch/device.hpp"
#include "ir/circuit.hpp"

namespace qmap {

/// Rewrites every gate of arity >= 3 and every non-`target` two-qubit gate
/// into single-qubit gates plus `target` (CX or CZ) two-qubit gates.
/// SWAPs are preserved when `keep_swaps` is set (routers insert SWAPs as
/// placeholders that are lowered at the end).
[[nodiscard]] Circuit lower_two_qubit(const Circuit& circuit, GateKind target,
                                      bool keep_swaps = false);

/// Merges maximal runs of adjacent single-qubit gates on each qubit into a
/// single U(theta, phi, lambda) gate; exact identities are dropped.
[[nodiscard]] Circuit fuse_single_qubit(const Circuit& circuit);

/// Re-expresses every single-qubit gate in the device's native basis:
///  * IBM-style ({U}): one U gate via ZYZ;
///  * Surface-style ({Rx, Ry}): up to three rotations via YXY, with
///    zero-angle rotations skipped;
///  * unrestricted: gates pass through unchanged.
[[nodiscard]] Circuit lower_single_qubit(const Circuit& circuit,
                                         const Device& device);

/// Full placement-independent lowering: lower_two_qubit to the device's
/// native two-qubit gate, fuse, then lower_single_qubit.
[[nodiscard]] Circuit lower_to_device(const Circuit& circuit,
                                      const Device& device,
                                      bool keep_swaps = false);

/// Replaces CX gates whose orientation the coupling graph forbids with the
/// 4-Hadamard inversion H H . CX(reversed) . H H (Sec. IV / Fig. 3(c)).
/// Throws MappingError if some CX connects qubits that are not coupled at
/// all (that is a routing failure, not a direction issue).
[[nodiscard]] Circuit fix_cx_directions(const Circuit& circuit,
                                        const Device& device);

/// Expands every SWAP into the device-native sequence: 3 CX (CX devices)
/// or 3 (H-wrapped) CZ (CZ devices, Fig. 6). Other gates pass through.
[[nodiscard]] Circuit expand_swaps(const Circuit& circuit,
                                   const Device& device);

/// Number of native two-qubit gates one routing SWAP costs on this device.
[[nodiscard]] int swap_two_qubit_cost(const Device& device);

}  // namespace qmap
