// Noise-model, reliability-estimation and reliability-aware mapping tests.
#include <cmath>

#include <gtest/gtest.h>

#include "arch/builtin.hpp"
#include "arch/config.hpp"
#include "arch/noise.hpp"
#include "core/compiler.hpp"
#include "decompose/decomposer.hpp"
#include "noise/estimator.hpp"
#include "noise/reliability.hpp"
#include "noise/trajectory.hpp"
#include "route/sabre.hpp"
#include "schedule/schedulers.hpp"
#include "sim/equivalence.hpp"
#include "workloads/workloads.hpp"

namespace qmap {
namespace {

Device noisy_line(int n, double e1 = 1e-3, double e2 = 1e-2,
                  double em = 2e-2) {
  Device device = devices::linear(n);
  device.set_noise(
      NoiseModel::uniform(device.coupling(), e1, e2, em));
  return device;
}

TEST(NoiseModel, UniformAccessors) {
  const Device device = noisy_line(4);
  const NoiseModel& noise = device.noise();
  EXPECT_DOUBLE_EQ(noise.single_qubit_error(0), 1e-3);
  EXPECT_DOUBLE_EQ(noise.two_qubit_error(1, 2), 1e-2);
  EXPECT_DOUBLE_EQ(noise.two_qubit_error(2, 1), 1e-2);  // order-free
  EXPECT_DOUBLE_EQ(noise.readout_error(3), 2e-2);
  EXPECT_THROW((void)noise.two_qubit_error(0, 2), DeviceError);  // not an edge
  EXPECT_THROW((void)noise.single_qubit_error(9), DeviceError);
}

TEST(NoiseModel, Validation) {
  CouplingGraph g(2);
  g.add_edge(0, 1);
  NoiseModel model = NoiseModel::uniform(g, 0.0, 0.0, 0.0);
  EXPECT_THROW(model.set_single_qubit_error(0, 1.5), DeviceError);
  EXPECT_THROW(model.set_single_qubit_error(0, -0.1), DeviceError);
  EXPECT_THROW(model.set_coherence(0, -1.0, 1.0), DeviceError);
}

TEST(NoiseModel, RandomizedStaysWithinSpread) {
  Rng rng(3);
  const Device base = devices::surface17();
  const NoiseModel model = NoiseModel::randomized(
      base.coupling(), rng, 1e-3, 1e-2, 2e-2, /*spread=*/4.0);
  for (int q = 0; q < 17; ++q) {
    EXPECT_GE(model.single_qubit_error(q), 1e-3 / 4.0);
    EXPECT_LE(model.single_qubit_error(q), 1e-3 * 4.0);
  }
  for (const auto& edge : base.coupling().edges()) {
    EXPECT_GE(model.two_qubit_error(edge.a, edge.b), 1e-2 / 4.0);
    EXPECT_LE(model.two_qubit_error(edge.a, edge.b), 1e-2 * 4.0);
  }
}

TEST(NoiseModel, JsonRoundTrip) {
  Rng rng(4);
  const Device base = devices::ibm_qx4();
  const NoiseModel original = NoiseModel::randomized(
      base.coupling(), rng, 1e-3, 1e-2, 2e-2);
  const NoiseModel decoded = NoiseModel::from_json(original.to_json());
  for (int q = 0; q < 5; ++q) {
    EXPECT_NEAR(decoded.single_qubit_error(q), original.single_qubit_error(q),
                1e-12);
    EXPECT_NEAR(decoded.t1_us(q), original.t1_us(q), 1e-9);
  }
  for (const auto& edge : base.coupling().edges()) {
    EXPECT_NEAR(decoded.two_qubit_error(edge.a, edge.b),
                original.two_qubit_error(edge.a, edge.b), 1e-12);
  }
}

TEST(NoiseModel, DeviceConfigRoundTripIncludesNoise) {
  Device device = noisy_line(3);
  const Device decoded = device_from_json(device_to_json(device));
  ASSERT_TRUE(decoded.has_noise());
  EXPECT_DOUBLE_EQ(decoded.noise().two_qubit_error(0, 1), 1e-2);
}

TEST(NoiseModel, DeviceRejectsSizeMismatch) {
  Device device = devices::linear(3);
  CouplingGraph other(2);
  other.add_edge(0, 1);
  EXPECT_THROW(device.set_noise(NoiseModel::uniform(other, 0, 0, 0)),
               DeviceError);
  EXPECT_THROW((void)devices::linear(3).noise(), DeviceError);
}

TEST(Estimator, NoiselessCircuitHasUnitEsp) {
  Device device = noisy_line(3, 0.0, 0.0, 0.0);
  Circuit c(3);
  c.h(0).cx(0, 1).cx(1, 2).measure_all();
  EXPECT_DOUBLE_EQ(estimated_success_probability(c, device), 1.0);
}

TEST(Estimator, ProductFormMatchesHandComputation) {
  Device device = noisy_line(3, 0.01, 0.05, 0.1);
  Circuit c(3);
  c.h(0).cx(0, 1).measure(0, 0);
  const double expected = (1 - 0.01) * (1 - 0.05) * (1 - 0.1);
  EXPECT_NEAR(estimated_success_probability(c, device), expected, 1e-12);
}

TEST(Estimator, SwapPlaceholderCostsThreeTwoQubitGates) {
  Device device = noisy_line(2, 0.0, 0.05, 0.0);
  Circuit with_placeholder(2);
  with_placeholder.swap(0, 1);
  Circuit expanded(2);
  expanded.cx(0, 1).cx(1, 0).cx(0, 1);
  EXPECT_NEAR(estimated_success_probability(with_placeholder, device),
              estimated_success_probability(expanded, device), 1e-12);
}

TEST(Estimator, MoreGatesMeanLowerEsp) {
  Device device = noisy_line(4);
  const Circuit small = workloads::ghz(4);
  Circuit big = workloads::ghz(4);
  big.append(workloads::ghz(4));
  EXPECT_GT(estimated_success_probability(small, device),
            estimated_success_probability(big, device));
}

TEST(Estimator, ScheduleVersionChargesIdleDecoherence) {
  Device device = noisy_line(2, 0.0, 0.0, 0.0);
  // Qubit 1 idles for many cycles between its two gates.
  Circuit c(2);
  c.x(1);
  for (int i = 0; i < 50; ++i) c.x(0);
  c.cx(0, 1);
  const Schedule schedule = schedule_asap(c, device);
  const double esp = estimated_success_probability(schedule, device);
  EXPECT_LT(esp, 1.0);
  EXPECT_GT(esp, 0.9);  // small but non-zero decoherence charge
}

TEST(Trajectory, NoNoiseGivesUnitFidelity) {
  Device device = noisy_line(3, 0.0, 0.0, 0.0);
  Rng rng(5);
  const TrajectoryResult result =
      simulate_noisy(workloads::ghz(3), device, rng, 50);
  EXPECT_DOUBLE_EQ(result.fidelity, 1.0);
  EXPECT_DOUBLE_EQ(result.error_free_rate, 1.0);
}

TEST(Trajectory, FidelityTracksEstimatorOrdering) {
  // Higher analytic ESP must correspond to higher sampled fidelity. Use
  // all-to-all devices so the lowered-but-unrouted circuit only touches
  // calibrated pairs.
  Device quiet = devices::all_to_all(3);
  quiet.set_noise(NoiseModel::uniform(quiet.coupling(), 1e-4, 1e-3, 0.0));
  Device loud = devices::all_to_all(3);
  loud.set_noise(NoiseModel::uniform(loud.coupling(), 1e-2, 8e-2, 0.0));
  const Circuit circuit = workloads::qft(3);
  const Circuit lowered = lower_to_device(circuit, quiet);
  Rng rng(6);
  const TrajectoryResult on_quiet = simulate_noisy(lowered, quiet, rng, 300);
  const TrajectoryResult on_loud = simulate_noisy(lowered, loud, rng, 300);
  EXPECT_GT(on_quiet.fidelity, on_loud.fidelity);
  EXPECT_GT(on_quiet.error_free_rate, on_loud.error_free_rate);
}

TEST(Trajectory, ErrorFreeRateMatchesAnalyticEsp) {
  // With gate errors only, the fraction of fault-free trajectories is an
  // unbiased estimate of the gate-error ESP.
  Device device = noisy_line(4, 5e-3, 2e-2, 0.0);
  const Circuit circuit = lower_to_device(workloads::ghz(4), device);
  const double esp = estimated_success_probability(circuit, device);
  Rng rng(7);
  const TrajectoryResult result = simulate_noisy(circuit, device, rng, 4000);
  EXPECT_NEAR(result.error_free_rate, esp, 0.03);
  // Fidelity can exceed the fault-free rate (some faults are benign).
  EXPECT_GE(result.fidelity + 1e-9, result.error_free_rate);
}

TEST(ReliabilityDistance, PrefersReliableDetours) {
  // Triangle device: direct edge 0-1 is terrible, path 0-2-1 is clean.
  Device device = devices::all_to_all(3);
  NoiseModel noise = NoiseModel::uniform(device.coupling(), 1e-4, 1e-3, 0.0);
  noise.set_two_qubit_error(0, 1, 0.4);
  device.set_noise(noise);
  const ReliabilityDistance distance(device);
  const double direct = distance.swap_cost(0, 1);
  const double detour = distance.cost(0, 1);
  EXPECT_LT(detour, direct);  // cheapest path avoids the bad coupler
}

TEST(ReliabilityRouter, RoutesCorrectlyAndLegally) {
  Rng noise_rng(11);
  Device device = devices::surface17();
  device.set_noise(NoiseModel::randomized(device.coupling(), noise_rng, 1e-3,
                                          1e-2, 2e-2));
  Rng rng(12);
  for (const Circuit& circuit :
       {workloads::fig1_example(), workloads::qft(5),
        workloads::random_circuit(6, 40, rng, 0.4)}) {
    const Circuit lowered = lower_to_device(circuit, device, true);
    const Placement initial = ReliabilityPlacer().place(lowered, device);
    const RoutingResult result =
        ReliabilityRouter().route(lowered, device, initial);
    Circuit legal = expand_swaps(result.circuit, device);
    legal = fix_cx_directions(legal, device);
    EXPECT_TRUE(respects_coupling(legal, device));
    Rng verify_rng(13);
    EXPECT_TRUE(mapping_equivalent(circuit, legal,
                                   result.initial.wire_to_phys(),
                                   result.final.wire_to_phys(), verify_rng,
                                   2));
  }
}

TEST(ReliabilityRouter, AvoidsBadCouplerOnLine) {
  // Line 0-1-2-3-4 where edge 2-3 is awful. Route cx(q0, q4)-style traffic
  // and check the mapped circuit's ESP beats the distance-only router when
  // a reliable alternative exists. On a line there is no alternative path,
  // so instead weight placement: the reliability placer should keep the
  // program away from the bad coupler entirely.
  Device device = noisy_line(5, 1e-4, 1e-3, 0.0);
  NoiseModel noise = device.noise();
  noise.set_two_qubit_error(2, 3, 0.3);
  device.set_noise(noise);
  Circuit c(2);
  c.cx(0, 1).cx(1, 0).cx(0, 1);
  const Placement placement = ReliabilityPlacer().place(c, device);
  const int pa = placement.phys_of_program(0);
  const int pb = placement.phys_of_program(1);
  EXPECT_FALSE((pa == 2 && pb == 3) || (pa == 3 && pb == 2));
}

TEST(ReliabilityRouter, BeatsDistanceRouterOnEspWhenDetourExists) {
  // Ring of 6 with one very bad edge: going the long way round is worth it.
  Device device = [] {
    CouplingGraph g(6);
    for (int q = 0; q < 6; ++q) g.add_edge(q, (q + 1) % 6);
    Device d("ring6", std::move(g));
    d.set_native_two_qubit(GateKind::CX);
    return d;
  }();
  NoiseModel noise = NoiseModel::uniform(device.coupling(), 1e-4, 2e-3, 0.0);
  noise.set_two_qubit_error(0, 1, 0.25);
  device.set_noise(noise);

  Circuit circuit(2);
  for (int i = 0; i < 3; ++i) circuit.cx(0, 1);
  // Place the interacting pair across the bad edge.
  const Placement initial = Placement::from_program_map({0, 1}, 6);

  const RoutingResult plain =
      SabreRouter().route(circuit, device, initial);
  const RoutingResult aware =
      ReliabilityRouter().route(circuit, device, initial);
  const double esp_plain =
      estimated_success_probability(plain.circuit, device);
  const double esp_aware =
      estimated_success_probability(aware.circuit, device);
  EXPECT_GE(esp_aware, esp_plain);
}

TEST(ReliabilityFactories, RegisteredInCompiler) {
  Rng rng(21);
  Device device = devices::surface17();
  device.set_noise(NoiseModel::randomized(device.coupling(), rng, 1e-3, 1e-2,
                                          2e-2));
  CompilerOptions options;
  options.placer = "reliability";
  options.router = "reliability";
  const Compiler compiler(device, options);
  const CompilationResult result = compiler.compile(workloads::qft(4));
  EXPECT_TRUE(Compiler::verify(result));
}

TEST(ReliabilityFactories, ThrowWithoutNoiseModel) {
  const Device device = devices::surface17();  // no noise attached
  CompilerOptions options;
  options.router = "reliability";
  const Compiler compiler(device, options);
  EXPECT_THROW((void)compiler.compile(workloads::ghz(3)), DeviceError);
}

}  // namespace
}  // namespace qmap
