#include "schedule/schedule.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace qmap {

int Schedule::total_cycles() const {
  int latest = 0;
  for (const ScheduledGate& op : operations_) {
    latest = std::max(latest, op.end_cycle());
  }
  return latest;
}

Circuit Schedule::to_circuit(const std::string& name) const {
  std::vector<std::size_t> order(operations_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [this](std::size_t a,
                                                      std::size_t b) {
    return operations_[a].start_cycle < operations_[b].start_cycle;
  });
  Circuit out(num_qubits_, name);
  for (const std::size_t i : order) out.add(operations_[i].gate);
  return out;
}

bool Schedule::is_consistent_with(const Circuit& source) const {
  // 1. No two overlapping operations share a qubit.
  for (std::size_t i = 0; i < operations_.size(); ++i) {
    for (std::size_t j = i + 1; j < operations_.size(); ++j) {
      if (!operations_[i].overlaps(operations_[j])) continue;
      for (const int qa : operations_[i].gate.qubits) {
        for (const int qb : operations_[j].gate.qubits) {
          if (qa == qb) return false;
        }
      }
    }
  }
  // 2. Same multiset of gates and same per-qubit order as the source.
  if (operations_.size() != source.size()) return false;
  std::vector<std::size_t> order(operations_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [this](std::size_t a,
                                                      std::size_t b) {
    return operations_[a].start_cycle < operations_[b].start_cycle;
  });
  std::map<int, std::vector<const Gate*>> scheduled_per_qubit;
  for (const std::size_t i : order) {
    for (const int q : operations_[i].gate.qubits) {
      scheduled_per_qubit[q].push_back(&operations_[i].gate);
    }
  }
  std::map<int, std::vector<const Gate*>> source_per_qubit;
  for (const Gate& gate : source) {
    for (const int q : gate.qubits) source_per_qubit[q].push_back(&gate);
  }
  if (scheduled_per_qubit.size() != source_per_qubit.size()) return false;
  for (const auto& [q, gates] : source_per_qubit) {
    const auto it = scheduled_per_qubit.find(q);
    if (it == scheduled_per_qubit.end() ||
        it->second.size() != gates.size()) {
      return false;
    }
    for (std::size_t i = 0; i < gates.size(); ++i) {
      if (!(*gates[i] == *it->second[i])) return false;
    }
  }
  return true;
}

std::string Schedule::to_table() const {
  const int cycles = total_cycles();
  // label per (cycle, qubit)
  std::vector<std::vector<std::string>> cells(
      static_cast<std::size_t>(cycles),
      std::vector<std::string>(static_cast<std::size_t>(num_qubits_)));
  for (const ScheduledGate& op : operations_) {
    std::string label{gate_info(op.gate.kind).name};
    for (const int q : op.gate.qubits) {
      for (int c = op.start_cycle; c < op.end_cycle(); ++c) {
        cells[static_cast<std::size_t>(c)][static_cast<std::size_t>(q)] =
            c == op.start_cycle ? label : "|";
      }
    }
  }
  std::size_t width = 3;
  for (const auto& row : cells) {
    for (const auto& cell : row) width = std::max(width, cell.size());
  }
  std::string out = "cycle";
  for (int q = 0; q < num_qubits_; ++q) {
    std::string header = " Q" + std::to_string(q);
    header.resize(width + 1, ' ');
    out += header;
  }
  out += "\n";
  for (int c = 0; c < cycles; ++c) {
    std::string row = std::to_string(c);
    row.resize(5, ' ');
    for (int q = 0; q < num_qubits_; ++q) {
      std::string cell =
          " " +
          cells[static_cast<std::size_t>(c)][static_cast<std::size_t>(q)];
      cell.resize(width + 1, ' ');
      row += cell;
    }
    while (!row.empty() && row.back() == ' ') row.pop_back();
    out += row + "\n";
  }
  return out;
}

}  // namespace qmap
