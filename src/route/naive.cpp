#include "route/naive.hpp"

#include <chrono>

#include "common/error.hpp"

namespace qmap {

RoutingResult NaiveRouter::route(const Circuit& circuit, const Device& device,
                                 const Placement& initial) {
  const auto start_time = std::chrono::steady_clock::now();
  check_routable(circuit, device);
  RoutingEmitter emitter(device, initial, circuit.name() + "@" + device.name());
  for (const Gate& gate : circuit) {
    check_cancelled();
    if (gate.is_two_qubit()) {
      const int pa = emitter.placement().phys_of_program(gate.qubits[0]);
      const int pb = emitter.placement().phys_of_program(gate.qubits[1]);
      if (!device.coupling().connected(pa, pb)) {
        const std::vector<int> path = phys_shortest_path(device, pa, pb);
        if (path.empty()) {
          throw MappingError("no path between Q" + std::to_string(pa) +
                             " and Q" + std::to_string(pb));
        }
        // Walk the first operand down the path until adjacent to the last
        // hop.
        for (std::size_t i = 0; i + 2 < path.size(); ++i) {
          emitter.emit_swap(path[i], path[i + 1]);
        }
      }
    }
    emitter.emit_program_gate(gate);
  }
  const double runtime_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_time)
          .count();
  return std::move(emitter).finish(initial, runtime_ms);
}

}  // namespace qmap
