// Resilient compilation pipeline: admission, fallback ladder, retry with
// backoff, fault injection, and degradation reporting (src/resilience/).
//
// The heart of the file is the table-driven fault matrix: every registered
// fault point, armed at probability 1.0 against the rung it targets, on
// every reference device — and resilience::compile must still hand back a
// ValidityChecker-clean mapping with telemetry naming exactly what went
// wrong and which rung recovered.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "arch/builtin.hpp"
#include "common/error.hpp"
#include "engine/cancel.hpp"
#include "layout/placers.hpp"
#include "resilience/admission.hpp"
#include "resilience/backoff.hpp"
#include "resilience/breaker.hpp"
#include "resilience/fault_injector.hpp"
#include "resilience/resilience.hpp"
#include "verify/shrink.hpp"
#include "verify/validity.hpp"
#include "workloads/workloads.hpp"

namespace qmap {
namespace {

using resilience::AdmissionGuard;
using resilience::AdmissionVerdict;
using resilience::Backoff;
using resilience::BackoffOptions;
using resilience::CompileOutcome;
using resilience::FaultInjector;
using resilience::FaultSpec;
using resilience::Policy;
using resilience::ResilientCompiler;
using resilience::ResourceBudget;

bool contains(const std::vector<std::string>& haystack,
              const std::string& needle) {
  return std::find(haystack.begin(), haystack.end(), needle) !=
         haystack.end();
}

/// A small single-strategy portfolio keeps the matrix fast: the ladder
/// semantics under test do not depend on the race width.
Policy small_policy() {
  Policy policy;
  StrategySpec spec;
  spec.placer = "greedy";
  spec.router = "sabre";
  policy.portfolio = {spec};
  policy.max_retries_per_rung = 1;
  policy.backoff.base_ms = 0.1;
  policy.backoff.cap_ms = 1.0;
  return policy;
}

// ---------------------------------------------------------------------------
// Fault-injection matrix: point x targeted rungs x device.
// ---------------------------------------------------------------------------

struct MatrixCase {
  const char* point;
  int rung;  // targeted rung: 0, or -1 for every rung
};

struct DeviceCase {
  const char* name;
  Device (*make)();
  int workload_qubits;
};

class FaultMatrix
    : public ::testing::TestWithParam<std::tuple<MatrixCase, DeviceCase>> {};

TEST_P(FaultMatrix, RecoversWithValidMapping) {
  const auto& [fault, dev] = GetParam();
  const Device device = dev.make();
  const Circuit circuit = workloads::ghz(dev.workload_qubits);

  Policy policy = small_policy();
  FaultSpec spec;
  spec.point = fault.point;
  spec.rung = fault.rung;
  spec.probability = 1.0;
  spec.stall_ms = 120.0;
  policy.faults = {spec};
  if (std::string(fault.point) == "stall-ms") {
    // A stall only bites when a deadline can expire around it.
    policy.deadline_ms = 60.0;
    policy.max_retries_per_rung = 0;
  }

  const CompileOutcome outcome =
      ResilientCompiler(device, policy).compile(circuit);

  // The ladder must always come back with a result...
  ASSERT_TRUE(outcome.ok) << outcome.report();
  // ...that independently re-audits clean.
  const verify::ValidityChecker checker(device);
  EXPECT_TRUE(checker.check_result(outcome.result).ok()) << outcome.report();
  EXPECT_TRUE(outcome.validated);

  // corrupt-result flips the last CX; a CZ-native device has none, so the
  // fault legitimately cannot fire there and rung 0 wins untouched.
  const bool can_fire = std::string(fault.point) != "corrupt-result" ||
                        device.native_two_qubit() == GateKind::CX;
  if (!can_fire) {
    EXPECT_EQ(outcome.rung, 0) << outcome.report();
    EXPECT_TRUE(outcome.injected_faults.empty());
    return;
  }
  // The telemetry names the fault that fired...
  EXPECT_TRUE(contains(outcome.injected_faults, fault.point))
      << outcome.report();
  // ...and the answer came from below the sabotaged rung(s): rung 0
  // attacks recover at rung 1, everywhere-attacks at the shielded rung 2.
  if (fault.rung == 0) {
    EXPECT_GE(outcome.rung, 1) << outcome.report();
  } else {
    EXPECT_EQ(outcome.rung, 2) << outcome.report();
    EXPECT_EQ(outcome.winner_label, "identity+naive");
  }
  EXPECT_TRUE(outcome.degraded());
}

std::string matrix_test_name(
    const ::testing::TestParamInfo<FaultMatrix::ParamType>& info) {
  const MatrixCase& fault = std::get<0>(info.param);
  const DeviceCase& dev = std::get<1>(info.param);
  std::string point = fault.point;
  std::replace(point.begin(), point.end(), '-', '_');
  return point + (fault.rung == 0 ? "_rung0_" : "_all_rungs_") + dev.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllPointsAllDevices, FaultMatrix,
    ::testing::Combine(
        ::testing::Values(MatrixCase{"throw-in-placer", 0},
                          MatrixCase{"throw-in-placer", -1},
                          MatrixCase{"throw-in-router", 0},
                          MatrixCase{"throw-in-router", -1},
                          MatrixCase{"oom-simulate", 0},
                          MatrixCase{"oom-simulate", -1},
                          MatrixCase{"corrupt-result", 0},
                          MatrixCase{"corrupt-result", -1},
                          MatrixCase{"stall-ms", 0},
                          MatrixCase{"stall-ms", -1}),
        ::testing::Values(DeviceCase{"qx4", devices::ibm_qx4, 4},
                          DeviceCase{"qx5", devices::ibm_qx5, 6},
                          DeviceCase{"surface17", devices::surface17, 5})),
    matrix_test_name);

// ---------------------------------------------------------------------------
// Clean path, degradation report, determinism.
// ---------------------------------------------------------------------------

TEST(Resilience, CleanCompileWinsAtRungZero) {
  const CompileOutcome outcome = resilience::compile(
      workloads::fig1_example(), devices::ibm_qx4(), small_policy());
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.rung, 0);
  EXPECT_FALSE(outcome.degraded());
  EXPECT_EQ(outcome.total_retries, 0);
  EXPECT_TRUE(outcome.injected_faults.empty());
  EXPECT_TRUE(outcome.validated);
  ASSERT_EQ(outcome.rungs.size(), 3u);
  EXPECT_FALSE(outcome.rungs[0].skipped);
  EXPECT_TRUE(outcome.rungs[1].skipped);
  EXPECT_TRUE(outcome.rungs[2].skipped);
  EXPECT_FALSE(outcome.rungs[0].strategies.empty());
}

TEST(Resilience, RetryTelemetryRecordsBackoffAndClasses) {
  Policy policy = small_policy();
  policy.max_retries_per_rung = 2;
  FaultSpec spec;
  spec.point = "throw-in-router";
  spec.rung = 0;
  policy.faults = {spec};

  const CompileOutcome outcome = resilience::compile(
      workloads::ghz(4), devices::ibm_qx4(), policy);
  ASSERT_TRUE(outcome.ok) << outcome.report();
  EXPECT_EQ(outcome.rung, 1);
  EXPECT_EQ(outcome.total_retries, 2);
  const resilience::RungReport& r0 = outcome.rungs[0];
  ASSERT_EQ(r0.attempts.size(), 3u);
  for (const resilience::AttemptReport& a : r0.attempts) {
    EXPECT_FALSE(a.ok);
    EXPECT_EQ(a.error_class, ErrorClass::Transient);
    EXPECT_TRUE(contains(a.injected_faults, "throw-in-router"));
  }
  EXPECT_EQ(r0.attempts[0].backoff_ms, 0.0);
  EXPECT_GT(r0.attempts[1].backoff_ms, 0.0);
  EXPECT_GT(r0.attempts[2].backoff_ms, 0.0);
  // Permanent rung-1 success needed no retries.
  ASSERT_EQ(outcome.rungs[1].attempts.size(), 1u);
  EXPECT_TRUE(outcome.rungs[1].attempts[0].ok);
}

TEST(Resilience, ResourceExhaustionFallsBackWithoutRetry) {
  Policy policy = small_policy();
  policy.max_retries_per_rung = 3;
  FaultSpec spec;
  spec.point = "oom-simulate";
  spec.rung = 0;
  policy.faults = {spec};

  const CompileOutcome outcome = resilience::compile(
      workloads::ghz(4), devices::ibm_qx4(), policy);
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.rung, 1);
  // ResourceExhausted must not burn the retry budget at the same tier.
  EXPECT_EQ(outcome.total_retries, 0);
  ASSERT_EQ(outcome.rungs[0].attempts.size(), 1u);
  EXPECT_EQ(outcome.rungs[0].attempts[0].error_class,
            ErrorClass::ResourceExhausted);
}

TEST(Resilience, FingerprintByteIdenticalAcrossThreadCounts) {
  // Probabilistic faults + retries + a multi-strategy race: the full
  // decision surface must depend only on the seed, never on scheduling.
  Policy policy;
  StrategySpec a;
  a.placer = "greedy";
  a.router = "sabre";
  StrategySpec b;
  b.placer = "annealing";
  b.router = "astar";
  policy.portfolio = {a, b};
  policy.max_retries_per_rung = 1;
  policy.backoff.base_ms = 0.1;
  policy.backoff.cap_ms = 0.5;
  FaultSpec flaky;
  flaky.point = "throw-in-router";
  flaky.rung = 0;
  flaky.probability = 0.5;
  policy.faults = {flaky};
  policy.seed = 0xD15EA5E;

  std::vector<std::string> fingerprints;
  for (const int threads : {1, 4, 1}) {
    policy.num_threads = threads;
    const CompileOutcome outcome = resilience::compile(
        workloads::qft(4), devices::surface17(), policy);
    ASSERT_TRUE(outcome.ok);
    fingerprints.push_back(outcome.fingerprint());
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
  EXPECT_EQ(fingerprints[0], fingerprints[2]);
}

TEST(Resilience, ShieldedLastRungSurvivesTotalInjection) {
  Policy policy = small_policy();
  for (const std::string& point : resilience::known_fault_points()) {
    FaultSpec spec;
    spec.point = point;
    spec.rung = -1;
    spec.stall_ms = 5.0;
    policy.faults.push_back(spec);
  }
  const CompileOutcome outcome = resilience::compile(
      workloads::ghz(4), devices::ibm_qx4(), policy);
  ASSERT_TRUE(outcome.ok) << outcome.report();
  EXPECT_EQ(outcome.rung, 2);
  EXPECT_EQ(outcome.winner_label, "identity+naive");
  EXPECT_TRUE(outcome.validated);
  EXPECT_TRUE(
      verify::ValidityChecker(devices::ibm_qx4()).check_result(outcome.result)
          .ok());
}

TEST(Resilience, UnshieldedLastRungReportsHonestFailure) {
  Policy policy = small_policy();
  policy.shield_last_rung = false;
  FaultSpec spec;
  spec.point = "throw-in-placer";
  spec.rung = -1;
  policy.faults = {spec};
  const CompileOutcome outcome = resilience::compile(
      workloads::ghz(3), devices::ibm_qx4(), policy);
  EXPECT_FALSE(outcome.ok);
  EXPECT_FALSE(outcome.error.empty());
  EXPECT_EQ(outcome.rung, -1);
  ASSERT_EQ(outcome.rungs.size(), 3u);
  EXPECT_FALSE(outcome.rungs[2].attempts.empty());
}

// ---------------------------------------------------------------------------
// Admission guards.
// ---------------------------------------------------------------------------

TEST(Admission, RejectsCircuitsThatCanNeverSucceed) {
  const CompileOutcome wide = resilience::compile(
      workloads::ghz(8), devices::ibm_qx4(), small_policy());
  EXPECT_FALSE(wide.ok);
  EXPECT_NE(wide.error.find("admission"), std::string::npos);
  EXPECT_NE(wide.error.find("8 qubits"), std::string::npos);
  EXPECT_EQ(wide.admission.verdict, AdmissionVerdict::Reject);
  EXPECT_TRUE(wide.rungs.empty());  // no compute was spent
}

TEST(Admission, BudgetsRejectWithNamedReasons) {
  Policy policy = small_policy();
  policy.budget.max_gates = 3;
  const CompileOutcome outcome = resilience::compile(
      workloads::ghz(4), devices::ibm_qx4(), policy);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("max_gates"), std::string::npos);

  Policy depth_policy = small_policy();
  depth_policy.budget.max_depth = 1;
  const CompileOutcome deep = resilience::compile(
      workloads::ghz(4), devices::ibm_qx4(), depth_policy);
  EXPECT_FALSE(deep.ok);
  EXPECT_NE(deep.error.find("max_depth"), std::string::npos);
}

TEST(Admission, MemoryPressureDownTiersPastThePortfolio) {
  const Device device = devices::ibm_qx5();
  const Circuit circuit = workloads::ghz(6);
  Policy policy;
  StrategySpec spec;
  spec.placer = "greedy";
  spec.router = "sabre";
  policy.portfolio = std::vector<StrategySpec>(6, spec);
  // Budget sized between one strategy's estimate and six strategies'.
  const AdmissionGuard probe(device, ResourceBudget{});
  const std::size_t one = probe.assess(circuit, 1).estimated_strategy_bytes;
  policy.budget.max_memory_bytes = one * 3;

  const CompileOutcome outcome =
      ResilientCompiler(device, policy).compile(circuit);
  ASSERT_TRUE(outcome.ok) << outcome.report();
  EXPECT_EQ(outcome.admission.verdict, AdmissionVerdict::DownTier);
  EXPECT_EQ(outcome.rung, 1);
  EXPECT_TRUE(outcome.rungs[0].skipped);
}

TEST(Admission, ReportsMalformedGatesStructurally) {
  Circuit bad(3);
  bad.add(Gate{GateKind::CX, {0, 0}, {}});
  const AdmissionGuard guard(devices::ibm_qx4(), ResourceBudget{});
  const auto report = guard.assess(bad);
  EXPECT_EQ(report.verdict, AdmissionVerdict::Reject);
  ASSERT_FALSE(report.reasons.empty());
  EXPECT_NE(report.reasons[0].find("gate 0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fault injector registry.
// ---------------------------------------------------------------------------

TEST(FaultInjectorRegistry, UnknownPointThrowsWithValidNames) {
  FaultInjector injector;
  FaultSpec spec;
  spec.point = "segfault-in-scheduler";
  try {
    injector.add(spec);
    FAIL() << "expected MappingError";
  } catch (const MappingError& e) {
    EXPECT_NE(std::string(e.what()).find("throw-in-placer"),
              std::string::npos);
  }
  // The policy validator rejects it just as eagerly.
  Policy policy;
  policy.faults = {spec};
  EXPECT_THROW(ResilientCompiler(devices::ibm_qx4(), policy), MappingError);
}

TEST(FaultInjectorRegistry, DecisionsAreDeterministicPerCoordinates) {
  FaultSpec spec;
  spec.point = "throw-in-router";
  spec.probability = 0.5;
  const FaultInjector a({spec}, 42);
  const FaultInjector b({spec}, 42);
  for (int rung = 0; rung < 2; ++rung) {
    for (int strategy = 0; strategy < 4; ++strategy) {
      for (int attempt = 0; attempt < 3; ++attempt) {
        bool fired_a = false;
        bool fired_b = false;
        try {
          a.at_stage("router", rung, strategy, attempt);
        } catch (const TransientError&) {
          fired_a = true;
        }
        try {
          b.at_stage("router", rung, strategy, attempt);
        } catch (const TransientError&) {
          fired_b = true;
        }
        EXPECT_EQ(fired_a, fired_b);
      }
    }
  }
  // Both injectors saw identical firings.
  EXPECT_EQ(a.drain_fired(), b.drain_fired());
}

TEST(FaultInjectorRegistry, KnownPointsAreStable) {
  const std::vector<std::string> expected = {
      "throw-in-placer", "throw-in-router", "stall-ms", "corrupt-result",
      "oom-simulate", "service.truncate-line", "service.garbage-bytes",
      "service.oversize-line", "service.disconnect", "service.stall-write"};
  EXPECT_EQ(resilience::known_fault_points(), expected);
}

// ---------------------------------------------------------------------------
// Backoff.
// ---------------------------------------------------------------------------

TEST(BackoffSchedule, DecorrelatedJitterStaysInBounds) {
  BackoffOptions options;
  options.base_ms = 2.0;
  options.cap_ms = 50.0;
  Backoff backoff(options, 7);
  double prev = options.base_ms;
  for (int i = 0; i < 64; ++i) {
    const double d = backoff.next_ms();
    EXPECT_GE(d, options.base_ms);
    EXPECT_LE(d, options.cap_ms);
    EXPECT_LE(d, std::max(options.base_ms, prev * options.multiplier));
    prev = d;
  }
}

TEST(BackoffSchedule, SameSeedSameSequence) {
  Backoff a({}, 99);
  Backoff b({}, 99);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_ms(), b.next_ms());
  Backoff c({}, 100);
  bool any_different = false;
  Backoff d({}, 99);
  for (int i = 0; i < 16; ++i) {
    any_different = any_different || c.next_ms() != d.next_ms();
  }
  EXPECT_TRUE(any_different);
}

// ---------------------------------------------------------------------------
// Batch isolation.
// ---------------------------------------------------------------------------

TEST(ResilienceBatch, PoisonedItemsNeverSinkSiblings) {
  const std::vector<Circuit> circuits = {
      workloads::ghz(3),   // fine
      workloads::ghz(12),  // wider than QX4: rejected at admission
      workloads::ghz(4),   // fine
  };
  const std::vector<CompileOutcome> outcomes =
      ResilientCompiler(devices::ibm_qx4(), small_policy())
          .compile_batch(circuits);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_NE(outcomes[1].error.find("admission"), std::string::npos);
  EXPECT_TRUE(outcomes[2].ok);
}

TEST(ResilienceBatch, DerivedSeedsKeepItemsIndependent) {
  // Every item derives its own seed stream from (policy.seed, index): a
  // probabilistic fault hitting item 0 says nothing about item 1.
  Policy policy = small_policy();
  policy.seed = 123;
  const std::vector<Circuit> circuits = {workloads::ghz(3),
                                         workloads::ghz(3)};
  const std::vector<CompileOutcome> first =
      ResilientCompiler(devices::ibm_qx4(), policy).compile_batch(circuits);
  const std::vector<CompileOutcome> second =
      ResilientCompiler(devices::ibm_qx4(), policy).compile_batch(circuits);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].fingerprint(), second[0].fingerprint());
  EXPECT_EQ(first[1].fingerprint(), second[1].fingerprint());
}

// ---------------------------------------------------------------------------
// Satellite: 1 ms deadlines cancel every search pass promptly.
// ---------------------------------------------------------------------------

template <typename PlacerT>
void expect_placer_cancels(PlacerT&& placer, const Device& device,
                           const Circuit& circuit) {
  CancelToken token;
  token.cancel();
  placer.set_cancel_token(&token);
  EXPECT_THROW((void)placer.place(circuit, device), CancelledError);
}

TEST(CancellationCoverage, PlacersHonorFiredTokens) {
  const Device device = devices::surface17();
  Rng rng(7);
  const Circuit circuit = workloads::random_circuit(10, 60, rng);
  expect_placer_cancels(GreedyPlacer(), device, circuit);
  expect_placer_cancels(AnnealingPlacer(7), device, circuit);
  const Device small = devices::ibm_qx4();
  const Circuit small_circuit = workloads::ghz(4);
  expect_placer_cancels(ExhaustivePlacer(), small, small_circuit);
}

TEST(CancellationCoverage, OneMillisecondDeadlineCancelsPlacersPromptly) {
  const Device device = devices::surface17();
  Rng rng(11);
  const Circuit circuit = workloads::random_circuit(14, 220, rng);
  for (const char* name : {"greedy", "annealing"}) {
    CancelToken token;
    token.set_deadline_after_ms(1.0);
    const auto placer = make_placer(name, 3);
    placer->set_cancel_token(&token);
    const auto start = std::chrono::steady_clock::now();
    try {
      (void)placer->place(circuit, device);
    } catch (const CancelledError&) {
    }
    const double elapsed =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    // Promptly: well under a second even on a loaded CI box.
    EXPECT_LT(elapsed, 500.0) << name;
  }
}

TEST(CancellationCoverage, ShrinkerDdminHonorsDeadline) {
  Rng rng(5);
  const Circuit failing = workloads::random_circuit(5, 40, rng);
  CancelToken token;
  token.cancel();
  verify::ShrinkOptions options;
  options.cancel = &token;
  const verify::Shrinker shrinker(options);
  EXPECT_THROW(
      (void)shrinker.shrink(failing, [](const Circuit&) { return true; }),
      CancelledError);
}

// ---------------------------------------------------------------------------
// Reporting surface.
// ---------------------------------------------------------------------------

TEST(Resilience, ReportAndJsonNameRungsAndFaults) {
  Policy policy = small_policy();
  FaultSpec spec;
  spec.point = "throw-in-placer";
  spec.rung = 0;
  policy.faults = {spec};
  const CompileOutcome outcome = resilience::compile(
      workloads::ghz(4), devices::ibm_qx4(), policy);
  ASSERT_TRUE(outcome.ok);

  const std::string text = outcome.report();
  EXPECT_NE(text.find("rung 0"), std::string::npos);
  EXPECT_NE(text.find("throw-in-placer"), std::string::npos);
  EXPECT_NE(text.find("degraded"), std::string::npos);

  const Json json = outcome.to_json();
  EXPECT_TRUE(json.at("ok").as_bool());
  EXPECT_EQ(json.at("rung").as_int(), 1);
  EXPECT_TRUE(json.at("degraded").as_bool());
  EXPECT_TRUE(json.at("validated").as_bool());
  EXPECT_EQ(json.at("injected_faults").at(0).as_string(), "throw-in-placer");
  EXPECT_EQ(json.at("rungs").size(), 3u);
  EXPECT_EQ(json.at("admission").at("verdict").as_string(), "admit");
}

// ---------------------------------------------------------------------------
// Rungs as pipeline data.
// ---------------------------------------------------------------------------

TEST(Resilience, Rung1PipelineOverrideIsHonoredAndLabelsTheRung) {
  Policy policy = small_policy();
  // Force rung 0 to fail permanently so the ladder lands on rung 1.
  FaultSpec fault;
  fault.point = "throw-in-placer";
  fault.rung = 0;
  policy.faults = {fault};
  // Rung 1 as declarative JSON instead of fallback_placer/fallback_router:
  // identity+naive without a schedule pass.
  policy.rung1_pipeline = PipelineSpec::from_json_text(R"([
    "decompose",
    {"pass": "placer", "options": {"algorithm": "identity"}},
    {"pass": "router", "options": {"algorithm": "naive"}},
    "postroute"
  ])");

  const CompileOutcome outcome =
      resilience::compile(workloads::ghz(4), devices::ibm_qx4(), policy);
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.rung, 1);
  EXPECT_EQ(outcome.winner_label, "identity+naive");
  ASSERT_GE(outcome.rungs.size(), 2u);
  EXPECT_EQ(outcome.rungs[1].label, "identity+naive");
  // The override really ran: no schedule pass, so no scheduled cycles.
  EXPECT_EQ(outcome.result.scheduled_cycles, 0);
  EXPECT_TRUE(respects_coupling(outcome.result.final_circuit,
                                devices::ibm_qx4()));
}

TEST(Resilience, BridgeWithTokenSwapFinisherServesAsRung1) {
  // The BRIDGE router + token_swap_finisher pair enrolls in the fallback
  // ladder like any registered strategy: kill rung 0 and the ladder must
  // recover through the bridge pipeline with a checker-clean result whose
  // final placement equals the initial one (the finisher's contract).
  Policy policy = small_policy();
  FaultSpec fault;
  fault.point = "throw-in-placer";
  fault.rung = 0;
  policy.faults = {fault};
  policy.rung1_pipeline = PipelineSpec::from_json_text(R"([
    "decompose",
    {"pass": "placer", "options": {"algorithm": "greedy"}},
    {"pass": "router", "options": {"algorithm": "bridge"}},
    "token_swap_finisher",
    "postroute",
    "schedule"
  ])");

  const Device device = devices::ibm_qx5();
  const CompileOutcome outcome =
      resilience::compile(workloads::qft(5), device, policy);
  ASSERT_TRUE(outcome.ok) << outcome.report();
  EXPECT_EQ(outcome.rung, 1);
  EXPECT_EQ(outcome.winner_label, "greedy+bridge");
  EXPECT_TRUE(outcome.validated);
  const verify::ValidityChecker checker(device);
  EXPECT_TRUE(checker.check_result(outcome.result).ok()) << outcome.report();
  const RoutingResult& routing = outcome.result.routing;
  for (int w = 0; w < routing.initial.num_program_qubits(); ++w) {
    EXPECT_EQ(routing.final.phys_of_wire(w), routing.initial.phys_of_wire(w))
        << "wire " << w;
  }
}

TEST(Resilience, DefaultRungsMatchTheirPipelineSpecForm) {
  // Without overrides the ladder behaves exactly as before; the explicit
  // PipelineSpec form of the same rung produces an identical result.
  Policy policy = small_policy();
  FaultSpec fault;
  fault.point = "throw-in-placer";
  fault.rung = 0;
  policy.faults = {fault};

  Policy spelled_out = policy;
  spelled_out.rung1_pipeline = PipelineSpec::standard(
      policy.fallback_placer, policy.fallback_router);

  const Device device = devices::ibm_qx4();
  const Circuit circuit = workloads::ghz(4);
  const CompileOutcome implicit =
      resilience::compile(circuit, device, policy);
  const CompileOutcome explicit_spec =
      resilience::compile(circuit, device, spelled_out);
  ASSERT_TRUE(implicit.ok);
  ASSERT_TRUE(explicit_spec.ok);
  EXPECT_EQ(implicit.fingerprint(), explicit_spec.fingerprint());
}

// ---------------------------------------------------------------------------
// Circuit breaker (fake clock; no sleeping).
// ---------------------------------------------------------------------------

using resilience::BreakerConfig;
using resilience::BreakerState;
using resilience::CircuitBreaker;

namespace {

BreakerConfig fast_breaker(std::int64_t* clock_us) {
  BreakerConfig config;
  config.failure_threshold = 3;
  config.open_ms = 100.0;
  config.now_us = [clock_us] { return *clock_us; };
  return config;
}

}  // namespace

TEST(CircuitBreaker, ConsecutivePermanentFailuresOpenIt) {
  std::int64_t clock_us = 0;
  CircuitBreaker breaker(fast_breaker(&clock_us));
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(breaker.try_acquire());
    breaker.on_failure();
    EXPECT_EQ(breaker.state(), BreakerState::Closed);
  }
  ASSERT_TRUE(breaker.try_acquire());
  breaker.on_failure();
  EXPECT_EQ(breaker.state(), BreakerState::Open);
  EXPECT_FALSE(breaker.try_acquire());
  EXPECT_GT(breaker.retry_after_ms(), 0.0);
  EXPECT_LE(breaker.retry_after_ms(), 100.0);
}

TEST(CircuitBreaker, SuccessResetsTheConsecutiveCount) {
  std::int64_t clock_us = 0;
  CircuitBreaker breaker(fast_breaker(&clock_us));
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(breaker.try_acquire());
    breaker.on_failure();
    ASSERT_TRUE(breaker.try_acquire());
    breaker.on_failure();
    ASSERT_TRUE(breaker.try_acquire());
    breaker.on_success();  // the streak never reaches 3
  }
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
}

TEST(CircuitBreaker, TransientAndResourceOutcomesNeverCount) {
  std::int64_t clock_us = 0;
  CircuitBreaker breaker(fast_breaker(&clock_us));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(breaker.try_acquire());
    breaker.record(false, i % 2 == 0 ? ErrorClass::Transient
                                     : ErrorClass::ResourceExhausted);
  }
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
}

TEST(CircuitBreaker, HalfOpenProbeClosesOnSuccess) {
  std::int64_t clock_us = 0;
  CircuitBreaker breaker(fast_breaker(&clock_us));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.try_acquire());
    breaker.on_failure();
  }
  ASSERT_EQ(breaker.state(), BreakerState::Open);
  EXPECT_FALSE(breaker.try_acquire());

  clock_us += 100 * 1000;  // open window lapses
  ASSERT_TRUE(breaker.try_acquire());  // the probe
  EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);
  // Only one concurrent probe is admitted.
  EXPECT_FALSE(breaker.try_acquire());
  breaker.on_success();
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  EXPECT_TRUE(breaker.try_acquire());
  breaker.release();
}

TEST(CircuitBreaker, HalfOpenProbeFailureReopensWithFreshWindow) {
  std::int64_t clock_us = 0;
  CircuitBreaker breaker(fast_breaker(&clock_us));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.try_acquire());
    breaker.on_failure();
  }
  clock_us += 100 * 1000;
  ASSERT_TRUE(breaker.try_acquire());
  breaker.on_failure();
  EXPECT_EQ(breaker.state(), BreakerState::Open);
  // Fresh window: still denied until another open_ms passes.
  clock_us += 50 * 1000;
  EXPECT_FALSE(breaker.try_acquire());
  clock_us += 50 * 1000;
  EXPECT_TRUE(breaker.try_acquire());
  EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);
  breaker.release();  // neutral verdict frees the probe slot
  EXPECT_TRUE(breaker.try_acquire());
  breaker.on_success();
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
}

TEST(CircuitBreaker, TransitionCallbackSeesEveryState) {
  std::int64_t clock_us = 0;
  CircuitBreaker breaker(fast_breaker(&clock_us));
  std::vector<BreakerState> seen;
  breaker.on_transition = [&seen](BreakerState state) {
    seen.push_back(state);
  };
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.try_acquire());
    breaker.on_failure();
  }
  clock_us += 100 * 1000;
  ASSERT_TRUE(breaker.try_acquire());
  breaker.on_success();
  const std::vector<BreakerState> expected = {
      BreakerState::Open, BreakerState::HalfOpen, BreakerState::Closed};
  EXPECT_EQ(seen, expected);
  EXPECT_STREQ(resilience::breaker_state_name(BreakerState::HalfOpen),
               "half-open");
}

TEST(CircuitBreaker, ZeroThresholdDisablesEntirely) {
  BreakerConfig config;
  config.failure_threshold = 0;
  CircuitBreaker breaker(config);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(breaker.try_acquire());
    breaker.on_failure();
  }
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  EXPECT_EQ(breaker.retry_after_ms(), 0.0);
}

}  // namespace
}  // namespace qmap
