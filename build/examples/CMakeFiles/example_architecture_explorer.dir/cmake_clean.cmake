file(REMOVE_RECURSE
  "CMakeFiles/example_architecture_explorer.dir/architecture_explorer.cpp.o"
  "CMakeFiles/example_architecture_explorer.dir/architecture_explorer.cpp.o.d"
  "example_architecture_explorer"
  "example_architecture_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_architecture_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
