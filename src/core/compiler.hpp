// Compiler facade: the full Fig. 2 pipeline.
//
//   quantum circuit (program qubits)          device description
//        |                                        |
//        +---> gate decomposition  <--------------+
//        +---> initial placement
//        +---> qubit routing (SWAP insertion, direction fixes)
//        +---> SWAP expansion + re-lowering to native gates
//        +---> operation scheduling (control constraints included)
//        |
//        v
//   scheduled native circuit on physical qubits
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/device.hpp"
#include "common/json.hpp"
#include "ir/circuit.hpp"
#include "ir/metrics.hpp"
#include "layout/placers.hpp"
#include "obs/obs.hpp"
#include "route/router.hpp"
#include "schedule/schedule.hpp"

namespace qmap {

class CancelToken;  // engine/cancel.hpp

struct CompilerOptions {
  std::string placer = "greedy";   // see known_placers()
  std::string router = "sabre";    // see known_routers()
  bool lower_to_native = true;     // decompose before routing
  bool peephole = true;            // post-routing gate-count clean-up
  bool run_scheduler = true;
  bool use_control_constraints = true;  // when the device declares them
  /// Seed for stochastic placers (annealing). The portfolio engine derives
  /// a distinct stream per strategy so parallel runs stay reproducible.
  std::uint64_t seed = 0xC0FFEE;
  /// Cooperative cancellation (engine/cancel.hpp): checked between pipeline
  /// stages and inside the placer/router main loops. Not owned; may be null.
  const CancelToken* cancel = nullptr;
  /// Instrumentation/fault-injection hook called at pipeline stage
  /// boundaries with "placer", "router", "postroute", "schedule" — in that
  /// order, before the named stage runs. An exception thrown from the hook
  /// aborts the compile exactly like a crash inside the stage would, which
  /// is how the resilience fault injector (src/resilience/) plants
  /// deterministic placer/router crashes without patching any pass. Empty
  /// by default and never on any hot path.
  std::function<void(const char* stage)> stage_hook;
  /// Observability sink (obs/): a compile span with one child span per
  /// pipeline stage, plus router/scheduler counters. Not owned; null (the
  /// default) disables all recording at the cost of one pointer compare.
  obs::Observer* obs = nullptr;
  /// Explicit parent for the compile span — used when compile() runs on a
  /// pool worker but belongs under a span opened on another thread (the
  /// portfolio race root). 0 = the calling thread's innermost open span.
  std::uint64_t obs_parent_span = 0;
};

struct CompilationResult {
  Circuit original;        // input, program qubits
  Circuit lowered;         // after decomposition (program qubits)
  RoutingResult routing;   // physical qubits, SWAP placeholders
  Circuit final_circuit;   // native gate set, coupling-legal
  Schedule schedule;       // empty unless run_scheduler
  CircuitMetrics original_metrics;
  CircuitMetrics final_metrics;
  /// Latency of the lowered-but-unrouted circuit, dependencies only —
  /// the paper's "before mapping" baseline (Sec. V).
  int baseline_cycles = 0;
  /// Latency of the final scheduled circuit (0 unless run_scheduler).
  int scheduled_cycles = 0;

  [[nodiscard]] double latency_ratio() const {
    return baseline_cycles > 0
               ? static_cast<double>(scheduled_cycles) / baseline_cycles
               : 0.0;
  }
  [[nodiscard]] std::string report() const;

  /// Machine-readable report (for toolchain integration / CI dashboards):
  /// metrics before/after, routing statistics, placements, latency.
  [[nodiscard]] Json to_json() const;
};

/// Factory helpers shared by the compiler, engine, benches and tests.
/// Unknown names throw a MappingError whose message lists every valid name.
/// `seed` feeds stochastic placers (annealing); deterministic placers
/// ignore it.
[[nodiscard]] std::unique_ptr<Placer> make_placer(const std::string& name,
                                                  std::uint64_t seed = 0xC0FFEE);
[[nodiscard]] std::unique_ptr<Router> make_router(const std::string& name);

/// Registered strategy names, in the factories' canonical order. The
/// portfolio engine enumerates these to build/validate its strategy set.
[[nodiscard]] const std::vector<std::string>& known_placers();
[[nodiscard]] const std::vector<std::string>& known_routers();

class Compiler {
 public:
  Compiler(Device device, CompilerOptions options = {});

  [[nodiscard]] const Device& device() const noexcept { return device_; }
  [[nodiscard]] const CompilerOptions& options() const noexcept {
    return options_;
  }

  [[nodiscard]] CompilationResult compile(const Circuit& circuit) const;

  /// Randomized end-to-end correctness check of a compilation result
  /// (state-vector equivalence under the reported placements).
  [[nodiscard]] static bool verify(const CompilationResult& result,
                                   int trials = 3,
                                   std::uint64_t seed = 0xC0FFEE);

 private:
  Device device_;
  CompilerOptions options_;
};

}  // namespace qmap
