// Workload-generator tests: each generator must produce the algorithm it
// claims (checked by simulation), not just a plausible-looking circuit.
#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/statevector.hpp"
#include "workloads/workloads.hpp"

namespace qmap {
namespace {

constexpr double kTol = 1e-9;
constexpr double kPi = 3.14159265358979323846;

TEST(Fig1, MatchesThePaperDescription) {
  const Circuit c = workloads::fig1_example();
  EXPECT_EQ(c.num_qubits(), 4);
  // First two-qubit gate: CNOT with (paper) q3 control, q4 target.
  for (const Gate& gate : c) {
    if (!gate.is_two_qubit()) continue;
    EXPECT_EQ(gate.kind, GateKind::CX);
    EXPECT_EQ(gate.qubits, (std::vector<int>{2, 3}));
    break;
  }
  // Skeleton = example minus single-qubit gates.
  const Circuit skeleton = workloads::fig1_skeleton();
  EXPECT_EQ(skeleton.size(), 5u);
  std::size_t i = 0;
  for (const Gate& gate : c) {
    if (gate.is_two_qubit()) {
      EXPECT_EQ(gate, skeleton.gate(i++));
    }
  }
  // The interaction graph contains a triangle (q0, q1, q2) — the reason one
  // SWAP is unavoidable on the triangle-free Surface-17 lattice.
  bool has_01 = false;
  bool has_12 = false;
  bool has_02 = false;
  for (const Gate& gate : skeleton) {
    const int a = std::min(gate.qubits[0], gate.qubits[1]);
    const int b = std::max(gate.qubits[0], gate.qubits[1]);
    if (a == 0 && b == 1) has_01 = true;
    if (a == 1 && b == 2) has_12 = true;
    if (a == 0 && b == 2) has_02 = true;
  }
  EXPECT_TRUE(has_01 && has_12 && has_02);
}

TEST(Ghz, ProducesGhzState) {
  for (const int n : {2, 3, 5, 8}) {
    StateVector state(n);
    state.run(workloads::ghz(n));
    EXPECT_NEAR(std::norm(state.amplitude(0)), 0.5, kTol) << n;
    EXPECT_NEAR(std::norm(state.amplitude(state.dimension() - 1)), 0.5, kTol)
        << n;
  }
  EXPECT_THROW((void)workloads::ghz(0), CircuitError);
}

TEST(Qft, MatchesDiscreteFourierTransform) {
  const int n = 3;
  const std::size_t dim = 8;
  const Matrix u = circuit_unitary(workloads::qft(n, /*with_swaps=*/true));
  // DFT matrix: U[j][k] = omega^{jk} / sqrt(N).
  Matrix dft(dim, dim);
  for (std::size_t j = 0; j < dim; ++j) {
    for (std::size_t k = 0; k < dim; ++k) {
      dft.at(j, k) = std::polar(1.0 / std::sqrt(static_cast<double>(dim)),
                                2.0 * kPi * static_cast<double>(j * k) /
                                    static_cast<double>(dim));
    }
  }
  EXPECT_TRUE(u.equal_up_to_global_phase(dft, 1e-7));
}

TEST(Qft, WithoutSwapsIsBitReversedDft) {
  const Circuit no_swaps = workloads::qft(3, /*with_swaps=*/false);
  std::size_t swap_count = 0;
  for (const Gate& gate : no_swaps) {
    if (gate.kind == GateKind::SWAP) ++swap_count;
  }
  EXPECT_EQ(swap_count, 0u);
}

TEST(BernsteinVazirani, RecoversTheSecret) {
  const std::vector<int> secret{1, 0, 1, 1};
  const Circuit c = workloads::bernstein_vazirani(secret);
  StateVector state(c.num_qubits());
  state.run(c.unitary_part());
  // Data qubits must be exactly |secret>.
  for (std::size_t q = 0; q < secret.size(); ++q) {
    EXPECT_NEAR(state.probability_one(static_cast<int>(q)),
                static_cast<double>(secret[q]), 1e-9)
        << "qubit " << q;
  }
}

TEST(CuccaroAdder, AddsAllTwoBitPairs) {
  const int n = 2;
  const Circuit adder = workloads::cuccaro_adder(n);
  ASSERT_EQ(adder.num_qubits(), 6);
  // Layout: 0 = carry-in, b0 = 1, a0 = 2, b1 = 3, a1 = 4, 5 = carry-out.
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      StateVector state(6);
      std::uint64_t input = 0;
      const auto set_bit = [&](int qubit) {
        input |= std::uint64_t{1} << (6 - 1 - qubit);
      };
      if (a & 1) set_bit(2);
      if (a & 2) set_bit(4);
      if (b & 1) set_bit(1);
      if (b & 2) set_bit(3);
      state.reset(input);
      state.run(adder);
      const int sum = a + b;
      // Read back: b0 (qubit 1), b1 (qubit 3), carry-out (qubit 5).
      const int result =
          static_cast<int>(state.probability_one(1) + 0.5) +
          2 * static_cast<int>(state.probability_one(3) + 0.5) +
          4 * static_cast<int>(state.probability_one(5) + 0.5);
      EXPECT_EQ(result, sum) << a << "+" << b;
      // a must be preserved.
      const int a_after = static_cast<int>(state.probability_one(2) + 0.5) +
                          2 * static_cast<int>(state.probability_one(4) + 0.5);
      EXPECT_EQ(a_after, a);
    }
  }
}

TEST(Grover, AmplifiesTheMarkedState) {
  for (int marked = 0; marked < 4; ++marked) {
    const Circuit c = workloads::grover(2, marked, 1);
    StateVector state(2);
    state.run(c);
    // One Grover iteration on 2 qubits finds the marked item exactly.
    EXPECT_NEAR(std::norm(state.amplitude(static_cast<std::uint64_t>(marked))),
                1.0, 1e-9)
        << "marked " << marked;
  }
}

TEST(Grover, ThreeQubitsTwoIterations) {
  const int marked = 5;
  const Circuit c = workloads::grover(3, marked, 2);
  StateVector state(3);
  state.run(c);
  // 2 iterations on 8 items: success probability ~0.945.
  EXPECT_GT(std::norm(state.amplitude(marked)), 0.9);
}

TEST(Grover, ValidatesArguments) {
  EXPECT_THROW((void)workloads::grover(4, 0), CircuitError);
  EXPECT_THROW((void)workloads::grover(2, 4), CircuitError);
}

TEST(RandomCircuit, RespectsGateBudgetAndSeed) {
  Rng rng_a(7);
  Rng rng_b(7);
  const Circuit a = workloads::random_circuit(5, 50, rng_a);
  const Circuit b = workloads::random_circuit(5, 50, rng_b);
  EXPECT_EQ(a.size(), 50u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.gate(i), b.gate(i));
  }
}

TEST(RandomCircuit, TwoQubitFractionRoughlyHolds) {
  Rng rng(11);
  const Circuit c = workloads::random_circuit(6, 400, rng, 0.5);
  std::size_t two_qubit = 0;
  for (const Gate& gate : c) {
    if (gate.is_two_qubit()) ++two_qubit;
  }
  EXPECT_GT(two_qubit, 150u);
  EXPECT_LT(two_qubit, 250u);
}

TEST(Qaoa, StructureAndDiagonalSeparators) {
  Rng rng(3);
  const std::vector<std::pair<int, int>> edges{{0, 1}, {1, 2}, {2, 3},
                                               {3, 0}};
  const Circuit c = workloads::qaoa_maxcut(4, edges, 2, rng);
  std::size_t cx = 0;
  std::size_t rx = 0;
  for (const Gate& gate : c) {
    if (gate.kind == GateKind::CX) ++cx;
    if (gate.kind == GateKind::Rx) ++rx;
  }
  EXPECT_EQ(cx, 2u * edges.size() * 2u);  // 2 CX per edge per layer
  EXPECT_EQ(rx, 2u * 4u);                 // mixer per qubit per layer
  EXPECT_THROW((void)workloads::qaoa_maxcut(3, {{0, 5}}, 1, rng),
               CircuitError);
}

TEST(DeutschJozsa, BalancedOracleRevealsTheMask) {
  const std::vector<int> mask{1, 0, 1};
  const Circuit c = workloads::deutsch_jozsa(mask);
  StateVector state(c.num_qubits());
  state.run(c);
  for (std::size_t q = 0; q < mask.size(); ++q) {
    EXPECT_NEAR(state.probability_one(static_cast<int>(q)),
                static_cast<double>(mask[q]), 1e-9);
  }
}

TEST(DeutschJozsa, ConstantOracleReturnsAllZeros) {
  const Circuit c = workloads::deutsch_jozsa({0, 0, 0});
  StateVector state(c.num_qubits());
  state.run(c);
  for (int q = 0; q < 3; ++q) {
    EXPECT_NEAR(state.probability_one(q), 0.0, 1e-9);
  }
}

TEST(WState, UniformOneHotSuperposition) {
  for (const int n : {2, 3, 4, 6}) {
    const Circuit c = workloads::w_state(n);
    StateVector state(n);
    state.run(c);
    double total = 0.0;
    for (int k = 0; k < n; ++k) {
      const std::uint64_t one_hot = std::uint64_t{1} << (n - 1 - k);
      const double p = std::norm(state.amplitude(one_hot));
      EXPECT_NEAR(p, 1.0 / n, 1e-9) << "n=" << n << " k=" << k;
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);  // no amplitude outside one-hot strings
  }
}

TEST(PhaseEstimation, ReadsExactPhasesExactly) {
  const int m = 3;
  for (int k = 0; k < 8; ++k) {
    const double phase = static_cast<double>(k) / 8.0;
    const Circuit c = workloads::phase_estimation(m, phase);
    StateVector state(c.num_qubits());
    state.run(c);
    // Counting register (qubits 0..2, MSB first) must read binary k.
    for (int bit = 0; bit < m; ++bit) {
      const int expected = (k >> (m - 1 - bit)) & 1;
      EXPECT_NEAR(state.probability_one(bit), expected, 1e-9)
          << "k=" << k << " bit=" << bit;
    }
  }
}

TEST(PhaseEstimation, InexactPhaseConcentratesNearTruth) {
  const Circuit c = workloads::phase_estimation(4, 0.3);
  StateVector state(c.num_qubits());
  state.run(c);
  // Best 4-bit approximation of 0.3 is 5/16 = 0.3125 -> |0101>.
  const std::uint64_t best = 0b0101u << 1;  // target qubit is LSB, in |1>
  EXPECT_GT(std::norm(state.amplitude(best | 1u)), 0.4);
}

TEST(QuantumVolume, LayerStructure) {
  Rng rng(13);
  const Circuit c = workloads::quantum_volume(4, 3, rng);
  std::size_t cx_count = 0;
  for (const Gate& gate : c) {
    if (gate.kind == GateKind::CX) ++cx_count;
  }
  EXPECT_EQ(cx_count, 3u * 2u * 3u);  // depth * pairs * 3 CX per block
}

}  // namespace
}  // namespace qmap
