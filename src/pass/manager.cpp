#include "pass/manager.hpp"

#include <chrono>

namespace qmap {

PassManager::PassManager(const PipelineSpec& spec)
    : spec_(spec),
      passes_(spec.build()),
      placer_label_(spec.placer_name()),
      router_label_(spec.router_name()) {}

void PassManager::run(CompileContext& ctx) const {
  obs::Observer* obs = ctx.obs();
  obs::Span compile_span(obs, "compile", "core",
                         ctx.runtime().obs_parent_span);
  if (compile_span.active()) {
    compile_span.arg("circuit", ctx.input().name());
    if (!placer_label_.empty()) compile_span.arg("placer", placer_label_);
    if (!router_label_.empty()) compile_span.arg("router", router_label_);
  }
  obs::add(obs, "compile.runs");
  // Per-stage spans auto-parent under compile_span (same thread). End the
  // previous stage before opening the next — otherwise the new span would
  // nest under the still-open old one instead of under compile_span.
  obs::Span stage_span;
  for (const std::unique_ptr<Pass>& pass : passes_) {
    const std::string name = pass->name();
    if (pass->is_stage_boundary()) {
      ctx.checkpoint();
      if (ctx.runtime().stage_hook) ctx.runtime().stage_hook(name.c_str());
      stage_span.end();
      stage_span = obs::Span(obs, name, "stage");
    }
    const auto start = std::chrono::steady_clock::now();
    pass->run(ctx);
    const auto elapsed = std::chrono::duration<double, std::milli>(
        std::chrono::steady_clock::now() - start);
    ctx.timings.push_back({name, elapsed.count()});
  }
  stage_span.end();
  obs::observe(obs, "compile.final_two_qubit_gates",
               static_cast<double>(ctx.result.final_metrics.two_qubit_gates));
}

CompilationResult PassManager::run(const Circuit& circuit,
                                   const Device& device,
                                   const PipelineRuntime& runtime) const {
  CompileContext ctx(circuit, device, runtime);
  run(ctx);
  return std::move(ctx.result);
}

}  // namespace qmap
