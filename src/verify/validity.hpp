// Mapping-validity auditing.
//
// The paper's implicit contract for a mapped circuit: every two-qubit gate
// sits on a coupling-graph edge with an allowed CNOT orientation (Sec. IV),
// only native gates remain after decomposition (Sec. IV/V), measurements
// only touch measurable qubits (Sec. VI-A), and the schedule respects real
// gate durations plus the Surface-17 classical-control constraints —
// shared microwave generators, measurement feedlines, CZ parking (Sec. V).
// MQT QMAP calls this the "validity" half of verification (the other half,
// functional equivalence, lives in sim/equivalence.hpp); the checker here
// audits a circuit/schedule/CompilationResult against a Device and returns
// a structured report instead of a bare bool, so fuzzing and CI can say
// *which* invariant broke and where.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "arch/device.hpp"
#include "common/json.hpp"
#include "core/compiler.hpp"
#include "ir/circuit.hpp"
#include "layout/placement.hpp"
#include "schedule/schedule.hpp"

namespace qmap::verify {

/// One broken invariant, tied to the gate (or schedule operation) index
/// where it was detected.
struct Violation {
  enum class Kind {
    WidthMismatch,       // circuit wider than the device
    NonNativeGate,       // gate kind outside the native set
    UncoupledOperands,   // two-qubit gate off the coupling graph
    BadOrientation,      // directional gate against the allowed direction
    UnmeasurableQubit,   // measurement on a qubit without readout
    ShuttleUnsupported,  // Move on a device without shuttling
    BadPlacement,        // placement is not a bijection onto the device
    BadDuration,         // scheduled duration != device duration
    QubitOverlap,        // schedule runs two gates on one qubit at once
    OrderMismatch,       // schedule reorders a qubit's gate sequence
    ControlConflict,     // classical-control resource constraint violated
  };

  Kind kind = Kind::WidthMismatch;
  /// Index into the audited circuit's gate list (or the schedule's
  /// operation list); npos for circuit-level findings.
  std::size_t index = npos;
  std::string message;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] std::string violation_kind_name(Violation::Kind kind);

/// Audit outcome: empty violation list == valid.
struct ValidityReport {
  std::vector<Violation> violations;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  /// One violation per line; "valid" when ok().
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] Json to_json() const;

  /// Concatenates another report's findings (used by check_result).
  void merge(ValidityReport other);
};

struct CheckOptions {
  /// Audit gate kinds against the device native set. Disable for
  /// pre-lowering circuits that legitimately contain SWAP placeholders
  /// or un-decomposed single-qubit gates.
  bool require_native = true;
  /// Accept SWAP gates even when require_native is set (routed-but-not-
  /// yet-expanded circuits).
  bool allow_swap = false;
  /// Audit the schedule when the result carries one.
  bool check_schedule = true;
  /// Re-audit the classical-control constraint stack
  /// (constraints_for_device) over the schedule. Disable when the
  /// schedule was deliberately built without control constraints.
  bool check_control_constraints = true;
  /// Stop collecting after this many violations (0 = unbounded); a
  /// fuzzer shrinking a badly broken circuit only needs the first few.
  std::size_t max_violations = 64;
};

class ValidityChecker {
 public:
  explicit ValidityChecker(Device device, CheckOptions options = {});

  [[nodiscard]] const Device& device() const noexcept { return device_; }

  /// Gate-level audit: width, native kinds, coupling, orientation,
  /// measurability, shuttling support.
  [[nodiscard]] ValidityReport check_circuit(const Circuit& circuit) const;

  /// Placement audit: one wire per physical qubit, bijective.
  [[nodiscard]] ValidityReport check_placement(
      const Placement& placement) const;

  /// Schedule audit against its source circuit: durations match the
  /// device, no qubit is double-booked, per-qubit gate order is preserved,
  /// and every operation is compatible with the device's classical-control
  /// constraint stack (Sec. V) re-checked in admission order.
  [[nodiscard]] ValidityReport check_schedule(const Schedule& schedule,
                                              const Circuit& source) const;

  /// Full end-to-end audit of a compilation result: both placements, the
  /// final circuit, and (when present) the schedule.
  [[nodiscard]] ValidityReport check_result(
      const CompilationResult& result) const;

 private:
  [[nodiscard]] bool full_(const ValidityReport& report) const;
  void add_(ValidityReport& report, Violation::Kind kind, std::size_t index,
            std::string message) const;

  Device device_;
  CheckOptions options_;
};

}  // namespace qmap::verify
