
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qasm/cqasm.cpp" "src/CMakeFiles/qmap_qasm.dir/qasm/cqasm.cpp.o" "gcc" "src/CMakeFiles/qmap_qasm.dir/qasm/cqasm.cpp.o.d"
  "/root/repo/src/qasm/expr.cpp" "src/CMakeFiles/qmap_qasm.dir/qasm/expr.cpp.o" "gcc" "src/CMakeFiles/qmap_qasm.dir/qasm/expr.cpp.o.d"
  "/root/repo/src/qasm/openqasm.cpp" "src/CMakeFiles/qmap_qasm.dir/qasm/openqasm.cpp.o" "gcc" "src/CMakeFiles/qmap_qasm.dir/qasm/openqasm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qmap_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qmap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
