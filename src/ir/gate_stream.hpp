// GateStream: pull/push interfaces for out-of-core compilation.
//
// A GateSource yields a circuit's gates in program order, a chunk at a
// time, without requiring the full circuit to be resident; a GateSink
// accepts gates in program order. The streaming pass pipeline (pass/
// streaming.hpp) threads a source through window-capable passes into a
// sink, keeping peak memory proportional to the routing window rather
// than the circuit. In-memory adapters (CircuitSource / CircuitSink)
// bridge to the materialized world so every streaming component can be
// pinned byte-for-byte against its non-streaming counterpart.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ir/circuit.hpp"
#include "ir/gate.hpp"

namespace qmap {

/// Pull side of a gate stream. Register metadata (qubit/cbit counts,
/// name) must be known up front — consumers size their state before the
/// first chunk arrives. pull() appends up to `max_gates` gates to `out`
/// and returns how many were appended; 0 means end-of-stream. Sources
/// are single-pass: once drained they stay drained.
class GateSource {
 public:
  virtual ~GateSource() = default;
  [[nodiscard]] virtual int num_qubits() const = 0;
  [[nodiscard]] virtual int num_cbits() const { return 0; }
  [[nodiscard]] virtual std::string name() const = 0;
  virtual std::size_t pull(std::vector<Gate>& out, std::size_t max_gates) = 0;
};

/// Push side of a gate stream. put_chunk() consumes the vector's gates
/// (moving them out; the vector is left with unspecified size — callers
/// clear() before reuse). flush() signals that no more gates follow.
class GateSink {
 public:
  virtual ~GateSink() = default;
  virtual void put(Gate gate) = 0;
  virtual void put_chunk(std::vector<Gate>& gates) {
    for (Gate& gate : gates) put(std::move(gate));
  }
  virtual void flush() {}
};

/// Streams an in-memory circuit. The circuit is borrowed and must
/// outlive the source.
class CircuitSource final : public GateSource {
 public:
  explicit CircuitSource(const Circuit& circuit) : circuit_(&circuit) {}

  [[nodiscard]] int num_qubits() const override {
    return circuit_->num_qubits();
  }
  [[nodiscard]] int num_cbits() const override { return circuit_->num_cbits(); }
  [[nodiscard]] std::string name() const override { return circuit_->name(); }

  std::size_t pull(std::vector<Gate>& out, std::size_t max_gates) override;

 private:
  const Circuit* circuit_;
  std::size_t cursor_ = 0;
};

/// Collects a stream back into an in-memory circuit (gates appended
/// unchecked — upstream components have already validated operands).
class CircuitSink final : public GateSink {
 public:
  CircuitSink(int num_qubits, std::string name);

  void put(Gate gate) override { circuit_.add_unchecked(std::move(gate)); }
  void put_chunk(std::vector<Gate>& gates) override;

  [[nodiscard]] const Circuit& circuit() const noexcept { return circuit_; }
  [[nodiscard]] Circuit take() && { return std::move(circuit_); }

 private:
  Circuit circuit_;
};

/// Discards gates, keeping only counts — the measurement sink for
/// throughput/memory benchmarks where storing the output would itself
/// be O(circuit).
class CountingSink final : public GateSink {
 public:
  void put(Gate gate) override;
  void put_chunk(std::vector<Gate>& gates) override;

  [[nodiscard]] std::size_t total_gates() const noexcept { return total_; }
  [[nodiscard]] std::size_t two_qubit_gates() const noexcept {
    return two_qubit_;
  }

 private:
  std::size_t total_ = 0;
  std::size_t two_qubit_ = 0;
};

}  // namespace qmap
