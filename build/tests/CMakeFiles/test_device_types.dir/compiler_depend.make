# Empty compiler generated dependencies file for test_device_types.
# This may be replaced when dependencies are built.
