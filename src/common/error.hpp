// Error types shared across the library.
//
// All qmap subsystems report unrecoverable misuse or malformed input by
// throwing an exception derived from qmap::Error. Each subsystem has its
// own subclass so callers can discriminate without string matching.
//
// Every error additionally carries an ErrorClass, the recovery taxonomy the
// resilience pipeline (src/resilience/) acts on: transient failures are
// worth retrying with backoff, resource-exhausted failures call for a
// cheaper strategy, and permanent failures mean the same attempt can only
// fail again.
#pragma once

#include <new>
#include <stdexcept>
#include <string>

namespace qmap {

/// Recovery classification of a failure (see src/resilience/).
enum class ErrorClass {
  /// Timing- or scheduling-dependent: a deadline slice expired, a shared
  /// resource was briefly unavailable. Retrying the same work can succeed.
  Transient,
  /// Deterministic for this input: malformed circuit, impossible mapping,
  /// logic error. Retrying the identical attempt is pointless.
  Permanent,
  /// The attempt outgrew its budget (memory, search-space work limit).
  /// Retry only with a cheaper strategy, never the same one.
  ResourceExhausted,
};

[[nodiscard]] inline std::string error_class_name(ErrorClass c) {
  switch (c) {
    case ErrorClass::Transient: return "transient";
    case ErrorClass::Permanent: return "permanent";
    case ErrorClass::ResourceExhausted: return "resource-exhausted";
  }
  return "permanent";
}

/// Base class of all exceptions thrown by qmaplib.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}

  /// Recovery classification; Permanent unless a subclass knows better
  /// (CancelledError is Transient, ResourceError is ResourceExhausted).
  [[nodiscard]] virtual ErrorClass error_class() const noexcept {
    return ErrorClass::Permanent;
  }
};

/// Malformed textual input (QASM, cQASM, JSON device configs).
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line = 0, int column = 0)
      : Error(format(what, line, column)), line_(line), column_(column) {}

  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] int column() const noexcept { return column_; }

 private:
  static std::string format(const std::string& what, int line, int column) {
    if (line <= 0) return what;
    return what + " (line " + std::to_string(line) + ", column " +
           std::to_string(column) + ")";
  }

  int line_ = 0;
  int column_ = 0;
};

/// Violation of a circuit-level invariant (qubit out of range, duplicate
/// operands, malformed gate arity, ...).
class CircuitError : public Error {
 public:
  using Error::Error;
};

/// Violation of a device-model invariant (unknown qubit, bad edge, ...).
class DeviceError : public Error {
 public:
  using Error::Error;
};

/// A mapping/routing/scheduling pass was asked to do something impossible
/// (disconnected device, circuit larger than device, ...).
class MappingError : public Error {
 public:
  using Error::Error;
};

/// Simulation-layer failures (too many qubits for a state vector, ...).
class SimulationError : public Error {
 public:
  using Error::Error;
};

/// A pass exceeded a resource budget (memory estimate, search-space work
/// limit). Classified ResourceExhausted: callers should fall back to a
/// cheaper strategy instead of retrying the same one.
class ResourceError : public Error {
 public:
  using Error::Error;
  [[nodiscard]] ErrorClass error_class() const noexcept override {
    return ErrorClass::ResourceExhausted;
  }
};

/// A failure known to be timing-dependent (and therefore retryable), e.g.
/// an injected transient fault in tests. Deadline expiry throws the more
/// specific CancelledError (engine/cancel.hpp), which is also Transient.
class TransientError : public Error {
 public:
  using Error::Error;
  [[nodiscard]] ErrorClass error_class() const noexcept override {
    return ErrorClass::Transient;
  }
};

/// Classifies an arbitrary in-flight exception for a crash boundary:
/// qmap::Error subclasses self-classify, std::bad_alloc is resource
/// exhaustion, anything else is permanent.
[[nodiscard]] inline ErrorClass classify_exception(const std::exception& e) {
  if (const auto* error = dynamic_cast<const Error*>(&e)) {
    return error->error_class();
  }
  if (dynamic_cast<const std::bad_alloc*>(&e) != nullptr) {
    return ErrorClass::ResourceExhausted;
  }
  return ErrorClass::Permanent;
}

}  // namespace qmap
