# Empty compiler generated dependencies file for bench_commutation.
# This may be replaced when dependencies are built.
