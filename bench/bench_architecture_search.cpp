// E16 / Sec. VII + [69] — workload-aware architecture exploration:
// "these optimizations should consider both the quantum device and the
// quantum application characteristics ... reference [69] proposes an
// approach which takes the planned quantum functionality into account
// when determining an architecture."
//
// For each workload family and a fixed coupling-edge budget, compares the
// routing cost (SWAP-equivalent native two-qubit ops) on generic
// topologies (line, ring, grid) against the topology found by the greedy
// workload-aware search. Expected shape: the found architecture matches or
// beats every generic one at equal budget, most visibly for structured
// workloads whose interaction graphs differ from a grid.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "explore/architecture_search.hpp"

namespace {

using namespace qmap;
using namespace qmap::bench;

Device ring(int n) {
  CouplingGraph g(n);
  for (int q = 0; q < n; ++q) g.add_edge(q, (q + 1) % n);
  Device device("ring" + std::to_string(n), std::move(g));
  device.set_native_two_qubit(GateKind::CZ);
  return device;
}

void print_figure() {
  paper_note(
      "Sec. VII / [69]: architecture determined from the planned quantum "
      "functionality. Budget = 9 edges over 8 qubits (a ring plus one "
      "chord).");
  section("Routing cost (3*SWAPs) by topology, budget 9 edges, 8 qubits");
  TextTable table({"workload", "line8(7e)", "ring8(8e)", "grid2x4(10e)",
                   "searched(<=9e)", "searched edges"});
  Rng rng(13);
  std::vector<std::pair<std::string, std::vector<Circuit>>> suite;
  suite.emplace_back("qft8", std::vector<Circuit>{workloads::qft(8)});
  suite.emplace_back("adder3",
                     std::vector<Circuit>{workloads::cuccaro_adder(3)});
  suite.emplace_back(
      "qv8", std::vector<Circuit>{workloads::quantum_volume(8, 2, rng)});
  suite.emplace_back(
      "mixed",
      std::vector<Circuit>{workloads::ghz(8), workloads::qft(6),
                           workloads::random_circuit(8, 40, rng, 0.5)});
  ArchitectureSearchOptions options;
  options.edge_budget = 9;
  for (const auto& [label, workload_set] : suite) {
    Device line = devices::linear(8, GateKind::CZ);
    const long line_cost = evaluate_architecture(line, workload_set, options);
    const long ring_cost =
        evaluate_architecture(ring(8), workload_set, options);
    const long grid_cost = evaluate_architecture(
        devices::grid(2, 4, GateKind::CZ), workload_set, options);
    const ArchitectureSearchResult searched =
        search_architecture(8, workload_set, options);
    std::string edges;
    for (const auto& [a, b] : searched.added_edges) {
      if (!edges.empty()) edges += " ";
      edges += "+" + std::to_string(a) + "-" + std::to_string(b);
    }
    if (edges.empty()) edges = "(tree sufficed)";
    table.add_row({label, TextTable::num(line_cost),
                   TextTable::num(ring_cost), TextTable::num(grid_cost),
                   TextTable::num(searched.final_cost), edges});
  }
  std::cout << table.str();
}

void BM_ArchitectureSearch(benchmark::State& state) {
  Rng rng(13);
  const std::vector<Circuit> workloads{
      workloads::random_circuit(6, 30, rng, 0.5)};
  ArchitectureSearchOptions options;
  options.edge_budget = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(search_architecture(6, workloads, options));
  }
}
BENCHMARK(BM_ArchitectureSearch);

void BM_EvaluateArchitecture(benchmark::State& state) {
  Rng rng(13);
  const std::vector<Circuit> workloads{
      workloads::random_circuit(8, 40, rng, 0.5)};
  const Device grid = devices::grid(2, 4, GateKind::CZ);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_architecture(grid, workloads, {}));
  }
}
BENCHMARK(BM_EvaluateArchitecture);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
