#!/usr/bin/env bash
# Bench snapshot: run the headline benchmark binaries and write one
# BENCH_<name>.json per bench at the repo root in a stable schema, so
# successive PRs can diff performance claims instead of re-deriving them
# from logs.
#
# Schema (keys stable by contract; values change run to run):
#   {
#     "bench":      "<name>",
#     "schema":     "qmap-bench-snapshot/v1",
#     "benchmarks": [{"name": ..., "label": ..., "real_time_ms": ...,
#                     "cpu_time_ms": ..., "iterations": ...}, ...],
#     "derived":    {<bench-specific ratios>}
#   }
#
# Usage: scripts/bench_snapshot.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
BENCHES="bench_router_comparison bench_pipeline bench_service"

cmake --build "${BUILD}" -j "$(nproc)" --target ${BENCHES}

for bench in ${BENCHES}; do
  name="${bench#bench_}"
  raw="${BUILD}/${bench}.raw.json"
  out="BENCH_${name}.json"
  # The binaries print their paper-figure prose to stdout, so take the
  # JSON via --benchmark_out instead of mixing both streams.
  "./${BUILD}/bench/${bench}" \
    --benchmark_out="${raw}" --benchmark_out_format=json \
    --benchmark_repetitions=1 >/dev/null
  python3 - "${raw}" "${out}" "${name}" <<'PY'
import json, sys

raw_path, out_path, name = sys.argv[1], sys.argv[2], sys.argv[3]
with open(raw_path) as f:
    raw = json.load(f)

def to_ms(value, unit):
    scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[unit]
    return value * scale

STANDARD_KEYS = {
    "name", "label", "real_time", "cpu_time", "time_unit", "iterations",
    "run_name", "run_type", "repetitions", "repetition_index", "threads",
    "family_index", "per_family_instance_index", "aggregate_name",
}

benchmarks = []
for bench in raw.get("benchmarks", []):
    if bench.get("run_type") == "aggregate":
        continue
    entry = {
        "name": bench["name"],
        "label": bench.get("label", ""),
        "real_time_ms": round(to_ms(bench["real_time"], bench["time_unit"]), 6),
        "cpu_time_ms": round(to_ms(bench["cpu_time"], bench["time_unit"]), 6),
        "iterations": bench["iterations"],
    }
    # User counters (quality metrics like added_cx/depth) appear as extra
    # numeric keys in the raw JSON; carry them into the snapshot.
    counters = {k: v for k, v in bench.items()
                if k not in STANDARD_KEYS and isinstance(v, (int, float))}
    if counters:
        entry["counters"] = counters
    benchmarks.append(entry)

by_name = {bench["name"]: bench for bench in benchmarks}
derived = {}
if name == "router_comparison":
    # BM_Router/<router>/<workload>: diff each router's quality counters
    # against sabre per workload. Negative added_cx delta = fewer inserted
    # CXs than sabre (the BRIDGE router's reason to exist).
    routers = ["naive", "sabre", "bridge", "astar", "qmap"]
    workloads = {"0": "random10", "1": "fig1_qx5"}
    for arg, workload in workloads.items():
        sabre = by_name.get(f"BM_Router/1/{arg}", {}).get("counters")
        if not sabre:
            continue
        for idx, router in enumerate(routers):
            if router == "sabre":
                continue
            counters = by_name.get(f"BM_Router/{idx}/{arg}", {}).get("counters")
            if not counters:
                continue
            derived[f"{router}_vs_sabre_added_cx_delta_{workload}"] = \
                counters.get("added_cx", 0) - sabre.get("added_cx", 0)
            derived[f"{router}_vs_sabre_depth_delta_{workload}"] = \
                counters.get("depth", 0) - sabre.get("depth", 0)
if name == "service":
    cold = by_name.get("BM_ServiceColdCompile")
    warm = by_name.get("BM_ServiceWarmHit")
    if cold and warm and warm["real_time_ms"] > 0:
        derived["warm_cold_ratio"] = round(
            cold["real_time_ms"] / warm["real_time_ms"], 1)
    # Overload-control economics: the admission verdict runs on every
    # submit, so its cost relative to a cold compile is the number that
    # says shedding is free; drain_ms is the SIGTERM-to-exit budget a
    # supervisor should allow with compiles in flight.
    shed = by_name.get("BM_ServiceShedDecision")
    if cold and shed and cold["real_time_ms"] > 0:
        derived["shed_decision_pct_of_cold"] = round(
            100.0 * shed["real_time_ms"] / cold["real_time_ms"], 6)
    # BM_ServiceDrain pins its iteration count, which google-benchmark
    # appends to the name ("BM_ServiceDrain/iterations:3").
    drain = next((b for b in benchmarks
                  if b["name"].startswith("BM_ServiceDrain")), None)
    if drain:
        derived["drain_ms"] = round(drain["real_time_ms"], 3)

snapshot = {
    "bench": name,
    "schema": "qmap-bench-snapshot/v1",
    "benchmarks": benchmarks,
    "derived": derived,
}
with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"bench_snapshot: wrote {out_path} ({len(benchmarks)} benchmarks)")
PY
done

# The service snapshot carries the PR's headline claim: fail the snapshot
# run outright if the warm/cold ratio regressed below the 100x gate.
python3 - <<'PY'
import json, sys
with open("BENCH_service.json") as f:
    snapshot = json.load(f)
ratio = snapshot.get("derived", {}).get("warm_cold_ratio", 0)
if ratio < 100:
    sys.exit(f"bench_snapshot: warm/cold ratio {ratio} below the 100x gate")
print(f"bench_snapshot: service warm/cold ratio {ratio}x (gate: >= 100x)")
shed_pct = snapshot.get("derived", {}).get("shed_decision_pct_of_cold")
if shed_pct is None:
    sys.exit("bench_snapshot: no shed-decision latency recorded")
if shed_pct >= 1.0:
    sys.exit(f"bench_snapshot: shed decision costs {shed_pct}% of a cold "
             "compile (gate: < 1%)")
print(f"bench_snapshot: shed decision {shed_pct}% of a cold compile "
      "(gate: < 1%)")
drain_ms = snapshot.get("derived", {}).get("drain_ms")
if drain_ms is None:
    sys.exit("bench_snapshot: no drain latency recorded")
print(f"bench_snapshot: graceful drain {drain_ms}ms with compiles in flight")
PY

# The BRIDGE router's headline claim: it must insert fewer CXs than sabre
# on at least one device/workload pair in the snapshot.
python3 - <<'PY'
import json, sys
with open("BENCH_router_comparison.json") as f:
    snapshot = json.load(f)
derived = snapshot.get("derived", {})
deltas = {k: v for k, v in derived.items()
          if k.startswith("bridge_vs_sabre_added_cx_delta_")}
if not deltas:
    sys.exit("bench_snapshot: no bridge-vs-sabre added-CX deltas recorded")
if min(deltas.values()) >= 0:
    sys.exit(f"bench_snapshot: bridge never beat sabre on added CX: {deltas}")
for key, value in sorted(deltas.items()):
    print(f"bench_snapshot: {key} = {value:+g}")
PY
