// Deterministic random-number utilities.
//
// Every stochastic component (random workloads, annealing placer, SABRE
// tie-breaking) takes an explicit Rng so results are reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace qmap {

/// Thin wrapper around std::mt19937_64 with convenience draws.
///
/// An Rng instance is NOT thread-safe: concurrent draws from one engine
/// are a data race. Concurrent components (the portfolio engine's
/// workers) must each own an Rng seeded with derive_stream, never share
/// one.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xC0FFEE) : engine_(seed) {}

  /// Derives an independent, well-mixed seed for stream `stream` of a run
  /// keyed by `base_seed` (splitmix64 finalizer). Portfolio worker k seeds
  /// its Rng with derive_stream(base_seed, k), making parallel and serial
  /// runs bit-identical: the stream depends only on (base_seed, k), never
  /// on thread scheduling. Nearby base seeds / stream indices yield
  /// unrelated streams.
  [[nodiscard]] static std::uint64_t derive_stream(std::uint64_t base_seed,
                                                   std::uint64_t stream) {
    std::uint64_t z = base_seed + 0x9E3779B97F4A7C15ULL * (stream + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  [[nodiscard]] std::size_t index(std::size_t bound) {
    std::uniform_int_distribution<std::size_t> dist(0, bound - 1);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] int integer(int lo, int hi) {
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Bernoulli draw.
  [[nodiscard]] bool chance(double p) { return uniform() < p; }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace qmap
