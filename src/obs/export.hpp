// Exporters for the observability layer (obs/obs.hpp):
//
//   export_chrome_trace — the Trace Event Format JSON that
//                         chrome://tracing and Perfetto load directly:
//                         one "B"/"E" duration pair per recorded span
//                         (instants are zero-duration pairs), per-span
//                         args, plus the metrics dump under a top-level
//                         "metrics" key (ignored by the viewers).
//   export_metrics_json — the flat metrics dump on its own.
//   ascii_span_tree     — human-readable nested span summary for CLI
//                         examples and failure logs.
//   validate_chrome_trace — structural audit used by tests and CI: valid
//                         JSON, every "B" closed by a matching "E" on the
//                         same (pid, tid) with a non-negative duration.
//
// Export ordering is deterministic for a deterministic workload: spans are
// taken in (tid, seq) snapshot order and begin/end events are emitted in
// per-thread nesting order, so a fixed-seed single-threaded trace with a
// fake clock is byte-stable (the golden test pins it).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"

namespace qmap::obs {

/// Chrome-trace JSON for an explicit span list (no metrics attached).
[[nodiscard]] std::string export_chrome_trace(
    const std::vector<SpanRecord>& spans);

/// Chrome-trace JSON for everything the observer holds: its trace
/// snapshot plus its metrics under "metrics".
[[nodiscard]] std::string export_chrome_trace(const Observer& observer);

/// Flat metrics JSON (pretty-printed). `include_timing` = false drops the
/// "_ms" metrics, leaving the byte-deterministic subset.
[[nodiscard]] std::string export_metrics_json(const MetricsRegistry& metrics,
                                              bool include_timing = true);

/// Indented span tree: name, category, duration, args, children nested by
/// parent_seq (cross-thread edges included).
[[nodiscard]] std::string ascii_span_tree(
    const std::vector<SpanRecord>& spans);
[[nodiscard]] std::string ascii_span_tree(const Observer& observer);

/// Result of a structural chrome-trace audit.
struct TraceValidation {
  bool ok = false;
  std::vector<std::string> errors;
  std::size_t events = 0;
  std::size_t begin_events = 0;
  std::size_t end_events = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Parses `trace_json` and checks the B/E discipline: every event carries
/// name/ph/ts/pid/tid, every "B" is closed by an "E" with the same name on
/// the same (pid, tid), ends never precede their begins, and no "E" lacks
/// an open "B". Reports every violation, not just the first.
[[nodiscard]] TraceValidation validate_chrome_trace(
    std::string_view trace_json);

}  // namespace qmap::obs
