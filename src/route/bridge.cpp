#include "route/bridge.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "route/route_ir.hpp"
#include "route/sabre_loop.hpp"
#include "route/stream_core.hpp"

namespace qmap {

RoutingResult BridgeRouter::route(const Circuit& circuit, const Device& device,
                                  const Placement& initial) {
  const auto start_time = std::chrono::steady_clock::now();
  check_routable(circuit, device);
  const CouplingGraph& coupling = device.coupling();
  RouteArena& arena = RouteArena::scratch();
  const ArenaScope scope(arena);
  RouteCore core(circuit, device, artifacts(), DagMode::Sequential, initial,
                 arena);
  RoutingEmitter emitter(device, initial,
                         circuit.name() + "@" + device.name());
  // Output bound: every program gate plus room for SWAPs and direction
  // fixes; generous slack beats mid-route growth reallocations.
  emitter.reserve(circuit.size() * 3 + 16);

  const int num_phys = device.num_qubits();
  const std::size_t ext_cap =
      std::min(static_cast<std::size_t>(options_.extended_window),
               static_cast<std::size_t>(core.ir.num_two_qubit));
  const std::size_t front_cap = core.ir.num_two_qubit;
  SabreLoopBuffers buffers;
  buffers.decay = arena.alloc<double>(num_phys);
  buffers.relevant = arena.alloc<std::uint8_t>(num_phys);
  buffers.extended = arena.alloc<std::uint32_t>(ext_cap);
  buffers.to_bridge = arena.alloc<std::uint32_t>(core.ir.num_two_qubit);
  // Endpoint pairs of the front/extended gates, recollected per swap
  // decision: invariant across candidate edges and across the bridge
  // decisions (pure reads, placement untouched).
  buffers.front_pa = arena.alloc<std::int32_t>(front_cap);
  buffers.front_pb = arena.alloc<std::int32_t>(front_cap);
  buffers.ext_pa = arena.alloc<std::int32_t>(ext_cap);
  buffers.ext_pb = arena.alloc<std::int32_t>(ext_cap);

  SabreLoopParams params;
  params.extended_weight = options_.extended_weight;
  params.decay_increment = options_.decay_increment;
  params.decay_reset_interval = options_.decay_reset_interval;
  params.enable_bridge = true;
  params.label = "bridge";

  MaterializedLoopCore loop_core(core, ext_cap, buffers);
  const SabreLoopStats stats = run_sabre_loop(
      loop_core, emitter, coupling, num_phys, params,
      [this] { check_cancelled(); });

  const double runtime_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_time)
          .count();
  RoutingResult result = std::move(emitter).finish(initial, runtime_ms);
  // One flush per route() keeps the loop body free of locking.
  obs::add(observer(), "router.bridge.routes");
  obs::add(observer(), "router.bridge.iterations", stats.iterations);
  obs::add(observer(), "router.bridge.rescues", stats.rescues);
  obs::add(observer(), "router.bridge.bridges", result.added_bridges);
  obs::add(observer(), "router.bridge.swaps_avoided", stats.swaps_avoided);
  obs::observe(observer(), "route.swaps_inserted",
               static_cast<double>(result.added_swaps));
  return result;
}

StreamRouteStats BridgeRouter::route_stream(
    GateSource& source, const Device& device, const Placement& initial,
    GateSink& sink, const StreamRouteOptions& options) {
  SabreLoopParams params;
  params.extended_weight = options_.extended_weight;
  params.decay_increment = options_.decay_increment;
  params.decay_reset_interval = options_.decay_reset_interval;
  params.enable_bridge = true;
  params.label = "bridge";
  SabreLoopStats loop_stats;
  const StreamRouteStats stats = run_sabre_stream(
      source, device, artifacts(), initial, sink, options,
      static_cast<std::size_t>(std::max(options_.extended_window, 0)), params,
      [this] { check_cancelled(); }, &loop_stats);
  obs::add(observer(), "router.bridge.routes");
  obs::add(observer(), "router.bridge.iterations", loop_stats.iterations);
  obs::add(observer(), "router.bridge.rescues", loop_stats.rescues);
  obs::add(observer(), "router.bridge.bridges", stats.added_bridges);
  obs::add(observer(), "router.bridge.swaps_avoided",
           loop_stats.swaps_avoided);
  obs::observe(observer(), "route.swaps_inserted",
               static_cast<double>(stats.added_swaps));
  return stats;
}

}  // namespace qmap
