#include "resilience/fault_injector.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace qmap::resilience {

const std::vector<std::string>& known_fault_points() {
  // The service.* points are transport faults: they are armed through the
  // same FaultSpec/registry machinery (so a typo fails at registration and
  // the probability/seed determinism is shared), but they are delivered by
  // the ChaosTransport wire harness (src/service/chaos.hpp), not by
  // at_stage() — a stage hook cannot corrupt bytes on a socket.
  static const std::vector<std::string> names = {
      "throw-in-placer", "throw-in-router", "stall-ms", "corrupt-result",
      "oom-simulate", "service.truncate-line", "service.garbage-bytes",
      "service.oversize-line", "service.disconnect", "service.stall-write"};
  return names;
}

std::string FaultSpec::label() const {
  std::string out = point;
  out += rung < 0 ? "@all" : "@rung" + std::to_string(rung);
  if (probability < 1.0) out += " p=" + std::to_string(probability);
  return out;
}

FaultInjector::FaultInjector(std::vector<FaultSpec> specs, std::uint64_t seed)
    : seed_(seed) {
  for (FaultSpec& spec : specs) add(std::move(spec));
}

void FaultInjector::add(FaultSpec spec) {
  const auto& names = known_fault_points();
  if (std::find(names.begin(), names.end(), spec.point) == names.end()) {
    throw MappingError("unknown fault point: '" + spec.point +
                       "' (valid: " + join(names, ", ") + ")");
  }
  specs_.push_back(std::move(spec));
}

bool FaultInjector::fires_(std::size_t spec_index, const FaultSpec& spec,
                           int rung, int strategy, int attempt) const {
  if (spec.rung >= 0 && spec.rung != rung) return false;
  if (spec.probability >= 1.0) return true;
  if (spec.probability <= 0.0) return false;
  // Pure function of (seed, spec, rung, strategy, attempt): chain the
  // splitmix64 finalizer so the decision is identical for every thread
  // count and replayable from the outcome's seed.
  std::uint64_t h = Rng::derive_stream(seed_, spec_index);
  h = Rng::derive_stream(h, static_cast<std::uint64_t>(rung + 1));
  h = Rng::derive_stream(h, static_cast<std::uint64_t>(strategy + 1));
  h = Rng::derive_stream(h, static_cast<std::uint64_t>(attempt + 1));
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0, 1)
  return u < spec.probability;
}

void FaultInjector::record_(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  fired_.push_back(name);
}

void FaultInjector::at_stage(const char* stage, int rung, int strategy,
                             int attempt) const {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const FaultSpec& spec = specs_[i];
    const bool placer_stage = std::strcmp(stage, "placer") == 0;
    const bool router_stage = std::strcmp(stage, "router") == 0;
    if (spec.point == "throw-in-placer" && placer_stage) {
      if (!fires_(i, spec, rung, strategy, attempt)) continue;
      record_(spec.point);
      throw MappingError("fault-injected: throw-in-placer");
    }
    if (spec.point == "throw-in-router" && router_stage) {
      if (!fires_(i, spec, rung, strategy, attempt)) continue;
      record_(spec.point);
      throw TransientError("fault-injected: throw-in-router");
    }
    if (spec.point == "oom-simulate" && placer_stage) {
      if (!fires_(i, spec, rung, strategy, attempt)) continue;
      record_(spec.point);
      throw ResourceError("fault-injected: oom-simulate");
    }
    if (spec.point == "stall-ms" && router_stage) {
      if (!fires_(i, spec, rung, strategy, attempt)) continue;
      record_(spec.point);
      // Not a throw: the stall makes the rung's deadline slice expire, so
      // the failure surfaces through the *real* cancellation path
      // (CancelledError from the next token poll), which is the scenario
      // this fault exists to rehearse.
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          spec.stall_ms));
    }
  }
}

bool FaultInjector::corrupt(CompilationResult& result, const Device& device,
                            int rung, int strategy, int attempt) const {
  bool altered = false;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const FaultSpec& spec = specs_[i];
    if (spec.point != "corrupt-result") continue;
    if (!fires_(i, spec, rung, strategy, attempt)) continue;
    if (verify::inject_fault(result, device, spec.corruption)) {
      record_(spec.point);
      altered = true;
    }
  }
  return altered;
}

std::vector<std::string> FaultInjector::drain_fired() const {
  std::vector<std::string> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out.swap(fired_);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace qmap::resilience
