#include "engine/portfolio.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <optional>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/report.hpp"
#include "engine/cancel.hpp"
#include "pass/manager.hpp"
#include "qasm/openqasm.hpp"

namespace qmap {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Widest cycle of a schedule: the peak number of operations in flight.
int peak_parallel_ops(const Schedule& schedule) {
  std::vector<std::pair<int, int>> events;
  events.reserve(2 * schedule.size());
  for (const ScheduledGate& op : schedule.operations()) {
    if (op.duration_cycles <= 0) continue;
    events.emplace_back(op.start_cycle, +1);
    events.emplace_back(op.end_cycle(), -1);
  }
  // Pairs sort (cycle, delta): at equal cycles the -1 comes first, so
  // back-to-back gates do not count as overlapping.
  std::sort(events.begin(), events.end());
  int current = 0;
  int peak = 0;
  for (const auto& [cycle, delta] : events) {
    current += delta;
    peak = std::max(peak, current);
  }
  return peak;
}

/// One strategy's slot: telemetry always, result only when completed.
/// Workers write disjoint slots, so no locking is needed.
struct StrategyRun {
  StrategyTelemetry telemetry;
  std::optional<CompilationResult> result;
};

std::string format_cost(double cost) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.6g", cost);
  return buffer;
}

}  // namespace

PipelineSpec StrategySpec::pipeline(const CompilerOptions& base) const {
  return PipelineSpec::standard(placer, router, base.lower_to_native,
                                base.peephole, base.run_scheduler,
                                base.use_control_constraints);
}

std::string StrategyTelemetry::status_name() const {
  switch (status) {
    case Status::Completed: return "completed";
    case Status::Cancelled: return "cancelled";
    case Status::Failed: return "failed";
    case Status::Skipped: return "skipped";
  }
  return "unknown";
}

Json StrategyTelemetry::to_json() const {
  Json out;
  out["index"] = Json(strategy_index);
  out["placer"] = Json(spec.placer);
  out["router"] = Json(spec.router);
  out["label"] = Json(spec.label());
  out["status"] = Json(status_name());
  out["wall_ms"] = Json(wall_ms);
  out["winner"] = Json(winner);
  if (status == Status::Completed) {
    out["cost"] = Json(cost);
    out["margin"] = Json(margin);
    out["peak_layer_ops"] = Json(peak_layer_ops);
    out["added_swaps"] = Json(added_swaps);
  }
  if (status == Status::Cancelled || status == Status::Failed) {
    out["error_class"] = Json(error_class_name(error_class));
  }
  if (!error.empty()) out["error"] = Json(error);
  return out;
}

std::size_t PortfolioResult::completed_count() const {
  return static_cast<std::size_t>(std::count_if(
      telemetry.begin(), telemetry.end(), [](const StrategyTelemetry& t) {
        return t.status == StrategyTelemetry::Status::Completed;
      }));
}

std::size_t PortfolioResult::cancelled_count() const {
  return static_cast<std::size_t>(std::count_if(
      telemetry.begin(), telemetry.end(), [](const StrategyTelemetry& t) {
        return t.status == StrategyTelemetry::Status::Cancelled;
      }));
}

std::string PortfolioResult::report() const {
  TextTable table({"#", "strategy", "status", "wall ms", "swaps", "cost",
                   "margin", "peak ops", "winner"});
  for (const StrategyTelemetry& t : telemetry) {
    const bool done = t.status == StrategyTelemetry::Status::Completed;
    table.add_row({TextTable::num(t.strategy_index), t.spec.label(),
                   t.status_name(), TextTable::num(t.wall_ms, 2),
                   done ? TextTable::num(t.added_swaps) : "-",
                   done ? format_cost(t.cost) : "-",
                   done ? format_cost(t.margin) : "-",
                   done ? TextTable::num(t.peak_layer_ops) : "-",
                   t.winner ? "<==" : ""});
  }
  std::string out = table.str();
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "winner: %s (cost %s, margin to runner-up %s), "
                "%zu/%zu completed, wall %.2f ms on %d thread(s)\n",
                winner_label.c_str(), format_cost(best_cost_()).c_str(),
                format_cost(winning_margin).c_str(), completed_count(),
                telemetry.size(), wall_ms, num_threads);
  out += buffer;
  return out;
}

Json PortfolioResult::to_json() const {
  Json out;
  out["circuit"] = Json(best.original.name());
  out["num_threads"] = Json(num_threads);
  out["wall_ms"] = Json(wall_ms);
  Json winner;
  winner["index"] = Json(winner_index);
  winner["label"] = Json(winner_label);
  winner["cost"] = Json(best_cost_());
  winner["margin"] = Json(winning_margin);
  out["winner"] = std::move(winner);
  out["completed"] = Json(completed_count());
  out["cancelled"] = Json(cancelled_count());
  JsonArray strategies;
  for (const StrategyTelemetry& t : telemetry) {
    strategies.push_back(t.to_json());
  }
  out["strategies"] = Json(std::move(strategies));
  out["best"] = best.to_json();
  return out;
}

std::string PortfolioResult::fingerprint() const {
  std::string out;
  out += "winner " + std::to_string(winner_index) + " " + winner_label + "\n";
  out += "cost " + format_cost(best_cost_()) + "\n";
  out += "scheduled_cycles " + std::to_string(best.scheduled_cycles) + "\n";
  out += "initial";
  for (const int p : best.routing.initial.wire_to_phys()) {
    out += " " + std::to_string(p);
  }
  out += "\nfinal";
  for (const int p : best.routing.final.wire_to_phys()) {
    out += " " + std::to_string(p);
  }
  out += "\n" + to_openqasm(best.final_circuit);
  return out;
}

double PortfolioResult::best_cost_() const {
  return winner_index >= 0 &&
                 static_cast<std::size_t>(winner_index) < telemetry.size()
             ? telemetry[static_cast<std::size_t>(winner_index)].cost
             : std::numeric_limits<double>::infinity();
}

PortfolioCompiler::PortfolioCompiler(Device device, PortfolioOptions options)
    : device_(std::move(device)), options_(std::move(options)) {
  if (options_.strategies.empty()) {
    options_.strategies = default_portfolio(device_);
  }
  if (!options_.cost) {
    options_.cost = make_cost_function(options_.cost_name);
  }
  // Fail fast on misspelled strategies (the factory error lists the valid
  // names) instead of failing every run at compile() time.
  for (const StrategySpec& spec : options_.strategies) {
    (void)make_placer(spec.placer);
    (void)make_router(spec.router);
  }
  // One immutable artifacts bundle (distances, shortest-path forest,
  // neighbour lists, native-gate lookup) shared read-only by every racing
  // strategy — the per-strategy Device copies (and their per-copy matrix
  // recomputation) are gone.
  artifacts_ = options_.artifacts ? options_.artifacts
                                  : ArchArtifacts::shared(device_);
}

std::vector<StrategySpec> PortfolioCompiler::default_portfolio(
    const Device& device) {
  // Preferred pairings, in priority order (priority = tie-break index):
  // fast heuristics first, then the slow near-optimal entries gated to
  // small widths (the paper's "exact approaches are not scalable",
  // Sec. IV). Filtered against the registered factory names so a renamed
  // or removed strategy silently drops out instead of breaking every
  // default-constructed portfolio.
  std::vector<StrategySpec> preferred = {
      {"greedy", "sabre", 0, 0.0},
      {"greedy", "bridge", 0, 0.0},
      {"annealing", "qmap", 0, 0.0},
      {"greedy", "sabre+commute", 0, 0.0},
      // Exhaustive placement walks m!/(m-n)! assignments; width 5 keeps it
      // under the placer's own work limit on devices up to Surface-17.
      {"exhaustive", "astar", 5, 0.0},
      {"greedy", "exact", 6, 0.0},
  };
  if (device.has_noise()) {
    preferred.push_back({"reliability", "reliability", 0, 0.0});
  }
  const auto known = [](const std::vector<std::string>& names,
                        const std::string& name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  std::vector<StrategySpec> portfolio;
  for (StrategySpec& spec : preferred) {
    if (known(known_placers(), spec.placer) &&
        known(known_routers(), spec.router)) {
      portfolio.push_back(std::move(spec));
    }
  }
  return portfolio;
}

PortfolioResult PortfolioCompiler::compile(const Circuit& circuit) const {
  ThreadPool pool(options_.num_threads);
  return compile(circuit, pool);
}

PortfolioResult PortfolioCompiler::compile(const Circuit& circuit,
                                           ThreadPool& pool) const {
  PortfolioResult result = try_compile(circuit, pool);
  if (result.winner_index < 0) {
    std::string detail;
    for (const StrategyTelemetry& t : result.telemetry) {
      detail += "\n  " + t.spec.label() + ": " + t.status_name() +
                (t.error.empty() ? "" : " (" + t.error + ")");
    }
    throw MappingError("portfolio: no strategy completed for circuit '" +
                       circuit.name() + "'" + detail);
  }
  return result;
}

PortfolioResult PortfolioCompiler::try_compile(const Circuit& circuit,
                                               ThreadPool& pool) const {
  const auto portfolio_start = Clock::now();
  const std::size_t n = options_.strategies.size();
  if (n == 0) throw MappingError("portfolio: no strategies configured");

  obs::Observer* const obs =
      options_.obs != nullptr ? options_.obs : options_.base.obs;
  obs::Span race_span(obs, "portfolio", "engine");
  if (race_span.active()) {
    race_span.arg("circuit", circuit.name());
    race_span.arg("strategies", std::to_string(n));
  }
  const std::uint64_t race_seq = race_span.seq();

  std::optional<Clock::time_point> portfolio_deadline;
  if (options_.portfolio_deadline_ms > 0.0) {
    portfolio_deadline =
        portfolio_start +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(
                options_.portfolio_deadline_ms));
  }

  // One cancellation token and one result slot per strategy; workers touch
  // only their own slot, so the fan-out needs no synchronization beyond
  // the futures.
  std::vector<CancelToken> tokens(n);
  std::vector<StrategyRun> runs(n);
  std::vector<std::future<void>> futures;
  futures.reserve(n);

  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.async([this, &circuit, &runs, &tokens, i,
                                  portfolio_deadline, obs, race_seq] {
      const StrategySpec& spec = options_.strategies[i];
      StrategyRun& run = runs[i];
      StrategyTelemetry& telemetry = run.telemetry;
      telemetry.strategy_index = static_cast<int>(i);
      telemetry.spec = spec;

      // Explicitly parented under the race root: this worker's thread-local
      // span stack is empty, so auto-parenting would orphan the span.
      obs::Span strategy_span(obs, spec.label(), "strategy", race_seq);
      if (strategy_span.active()) {
        strategy_span.arg("index", std::to_string(i));
      }

      if (spec.max_qubits > 0 && circuit.num_qubits() > spec.max_qubits) {
        telemetry.status = StrategyTelemetry::Status::Skipped;
        telemetry.error = "circuit wider than the strategy's max_qubits (" +
                          std::to_string(spec.max_qubits) + ")";
        strategy_span.arg("status", telemetry.status_name());
        return;
      }

      // Soft deadline: the stricter of the strategy's own budget
      // (measured from this start) and the portfolio-wide deadline.
      CancelToken& token = tokens[i];
      const auto start = Clock::now();
      const double deadline_ms = spec.deadline_ms > 0.0
                                     ? spec.deadline_ms
                                     : options_.strategy_deadline_ms;
      std::optional<Clock::time_point> deadline = portfolio_deadline;
      if (deadline_ms > 0.0) {
        const auto own =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(deadline_ms));
        deadline = deadline ? std::min(*deadline, own) : own;
      }
      if (deadline) token.set_deadline(*deadline);
      if (options_.cancel != nullptr) token.link_parent(options_.cancel);

      // The strategy as data: the standard pipeline with this spec's
      // placer/router, executed directly against the shared device and the
      // shared immutable artifacts — no per-strategy Device copy.
      PipelineRuntime runtime;
      runtime.seed = Rng::derive_stream(options_.base_seed, i);
      runtime.cancel = &token;
      runtime.obs = obs;
      runtime.obs_parent_span = strategy_span.seq();
      runtime.artifacts = artifacts_;
      if (options_.stage_hook) {
        runtime.stage_hook = [this, i](const char* stage) {
          options_.stage_hook(stage, static_cast<int>(i));
        };
      } else {
        runtime.stage_hook = options_.base.stage_hook;
      }

      // Crash boundary: nothing a strategy throws may escape its worker —
      // a crashing placer/router (or injected fault) becomes Failed
      // telemetry with an error class, and its siblings race on.
      try {
        const PassManager manager(spec.pipeline(options_.base));
        CompilationResult result = manager.run(circuit, device_, runtime);
        telemetry.wall_ms = ms_since(start);
        telemetry.status = StrategyTelemetry::Status::Completed;
        telemetry.cost = options_.cost(result, device_);
        telemetry.peak_layer_ops = peak_parallel_ops(result.schedule);
        telemetry.added_swaps = result.routing.added_swaps;
        run.result = std::move(result);
      } catch (const CancelledError& e) {
        telemetry.wall_ms = ms_since(start);
        telemetry.status = StrategyTelemetry::Status::Cancelled;
        telemetry.error = e.what();
        telemetry.error_class = ErrorClass::Transient;
      } catch (const std::exception& e) {
        telemetry.wall_ms = ms_since(start);
        telemetry.status = StrategyTelemetry::Status::Failed;
        telemetry.error = e.what();
        telemetry.error_class = classify_exception(e);
      } catch (...) {
        telemetry.wall_ms = ms_since(start);
        telemetry.status = StrategyTelemetry::Status::Failed;
        telemetry.error = "unknown exception";
        telemetry.error_class = ErrorClass::Permanent;
      }
      strategy_span.arg("status", telemetry.status_name());
    }));
  }
  for (std::future<void>& future : futures) future.get();

  // Winner: smallest cost among completed strategies; ties and the
  // iteration order both resolve by strategy index, so the pick does not
  // depend on which worker finished first. NaN costs never win.
  int winner = -1;
  double winner_cost = std::numeric_limits<double>::infinity();
  double runner_up_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    const StrategyTelemetry& t = runs[i].telemetry;
    if (t.status != StrategyTelemetry::Status::Completed) continue;
    if (std::isnan(t.cost)) continue;
    if (winner < 0 || t.cost < winner_cost) {
      runner_up_cost = winner_cost;
      winner_cost = t.cost;
      winner = static_cast<int>(i);
    } else if (t.cost < runner_up_cost) {
      runner_up_cost = t.cost;
    }
  }
  // winner < 0 (no strategy completed) is a valid try_compile outcome: the
  // telemetry below is the caller's evidence for retry-vs-fallback.
  PortfolioResult result;
  result.telemetry.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    StrategyTelemetry t = std::move(runs[i].telemetry);
    if (winner >= 0 && t.status == StrategyTelemetry::Status::Completed) {
      t.margin = t.cost - winner_cost;
    }
    t.winner = winner >= 0 && static_cast<int>(i) == winner;
    result.telemetry.push_back(std::move(t));
  }
  if (winner >= 0) {
    result.best = std::move(*runs[static_cast<std::size_t>(winner)].result);
    result.winner_index = winner;
    result.winner_label =
        options_.strategies[static_cast<std::size_t>(winner)].label();
    result.winning_margin = std::isfinite(runner_up_cost)
                                ? runner_up_cost - winner_cost
                                : 0.0;
  }
  result.wall_ms = ms_since(portfolio_start);
  result.num_threads = pool.size();

  // Aggregated on the calling thread after the join, so counter values are
  // identical for every pool size (the adds themselves are commutative, but
  // doing them here also keeps win attribution in one place).
  obs::add(obs, "portfolio.races");
  for (const StrategyTelemetry& t : result.telemetry) {
    obs::add(obs, std::string("portfolio.strategies_") + t.status_name());
  }
  if (winner >= 0) {
    obs::add(obs, "portfolio.wins");
    obs::add(obs, "portfolio.win." + result.winner_label);
  } else {
    obs::add(obs, "portfolio.empty_races");
  }
  obs::set_gauge(obs, "portfolio.last_wall_ms", result.wall_ms);
  return result;
}

}  // namespace qmap
