#include "qasm/expr.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <string>

#include "common/error.hpp"

namespace qmap {
namespace {

class ExpressionParser {
 public:
  explicit ExpressionParser(std::string_view text) : text_(text) {}

  double parse() {
    const double value = parse_sum();
    skip_spaces();
    if (pos_ != text_.size()) {
      throw ParseError("trailing characters in expression: '" +
                       std::string(text_) + "'");
    }
    return value;
  }

 private:
  void skip_spaces() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_spaces();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  double parse_sum() {
    double value = parse_product();
    while (true) {
      if (consume('+')) {
        value += parse_product();
      } else if (consume('-')) {
        value -= parse_product();
      } else {
        return value;
      }
    }
  }

  double parse_product() {
    double value = parse_power();
    while (true) {
      if (consume('*')) {
        value *= parse_power();
      } else if (consume('/')) {
        const double divisor = parse_power();
        if (divisor == 0.0) throw ParseError("division by zero in expression");
        value /= divisor;
      } else {
        return value;
      }
    }
  }

  double parse_power() {
    const double base = parse_unary();
    if (consume('^')) return std::pow(base, parse_power());
    return base;
  }

  double parse_unary() {
    if (consume('-')) return -parse_unary();
    if (consume('+')) return parse_unary();
    return parse_atom();
  }

  double parse_atom() {
    skip_spaces();
    if (pos_ >= text_.size()) {
      throw ParseError("unexpected end of expression: '" + std::string(text_) +
                       "'");
    }
    if (consume('(')) {
      const double value = parse_sum();
      if (!consume(')')) throw ParseError("missing ')' in expression");
      return value;
    }
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c))) {
      std::size_t end = pos_;
      while (end < text_.size() &&
             std::isalpha(static_cast<unsigned char>(text_[end]))) {
        ++end;
      }
      const std::string_view word = text_.substr(pos_, end - pos_);
      pos_ = end;
      if (word == "pi" || word == "PI") return 3.14159265358979323846;
      throw ParseError("unknown identifier in expression: '" +
                       std::string(word) + "'");
    }
    // Numeric literal.
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '.' ||
            ((text_[end] == 'e' || text_[end] == 'E') && end > pos_) ||
            ((text_[end] == '+' || text_[end] == '-') && end > pos_ &&
             (text_[end - 1] == 'e' || text_[end - 1] == 'E')))) {
      ++end;
    }
    double value = 0.0;
    const auto result =
        std::from_chars(text_.data() + pos_, text_.data() + end, value);
    if (result.ec != std::errc() || result.ptr == text_.data() + pos_) {
      throw ParseError("invalid number in expression: '" + std::string(text_) +
                       "'");
    }
    pos_ = static_cast<std::size_t>(result.ptr - text_.data());
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

double eval_expression(std::string_view text) {
  return ExpressionParser(text).parse();
}

}  // namespace qmap
