// Parallel portfolio engine: thread pool, cancellation, determinism
// across thread counts, winner optimality vs. serial strategies, batch
// throughput mode, and the factory enumerations the engine builds on.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "arch/builtin.hpp"
#include "common/rng.hpp"
#include "engine/batch.hpp"
#include "engine/cancel.hpp"
#include "engine/portfolio.hpp"
#include "engine/thread_pool.hpp"
#include "qasm/openqasm.hpp"
#include "route/router.hpp"
#include "workloads/workloads.hpp"

namespace qmap {
namespace {

// --- CancelToken -----------------------------------------------------------

TEST(CancelToken, ManualCancellation) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.check());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_THROW(token.check(), CancelledError);
}

TEST(CancelToken, DeadlineFires) {
  CancelToken token;
  token.set_deadline_after_ms(1.0);
  EXPECT_TRUE(token.has_deadline());
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!token.cancelled() && std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelToken, DisarmedDeadlineNeverFires) {
  CancelToken token;
  token.set_deadline_after_ms(0.0);
  EXPECT_FALSE(token.has_deadline());
  EXPECT_FALSE(token.cancelled());
}

// --- ThreadPool ------------------------------------------------------------

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, AsyncReturnsValuesAndExceptions) {
  ThreadPool pool(2);
  auto value = pool.async([] { return 6 * 7; });
  auto thrown = pool.async([]() -> int { throw MappingError("boom"); });
  EXPECT_EQ(value.get(), 42);
  EXPECT_THROW(thrown.get(), MappingError);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // ~ThreadPool joins after draining
  EXPECT_EQ(counter.load(), 50);
}

// --- Factory enumerations (engine satellite) -------------------------------

TEST(StrategyFactories, UnknownNamesListValidOnes) {
  try {
    (void)make_placer("no-such-placer");
    FAIL() << "expected MappingError";
  } catch (const MappingError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-placer"), std::string::npos) << what;
    for (const std::string& name : known_placers()) {
      EXPECT_NE(what.find(name), std::string::npos) << what;
    }
  }
  try {
    (void)make_router("no-such-router");
    FAIL() << "expected MappingError";
  } catch (const MappingError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-router"), std::string::npos) << what;
    for (const std::string& name : known_routers()) {
      EXPECT_NE(what.find(name), std::string::npos) << what;
    }
  }
}

TEST(StrategyFactories, BridgeIsARegisteredRouter) {
  // The BRIDGE router is first-class: enumerated, constructible, and named
  // in the unknown-router error so users discover it from the message.
  EXPECT_TRUE(std::find(known_routers().begin(), known_routers().end(),
                        "bridge") != known_routers().end());
  const auto router = make_router("bridge");
  ASSERT_NE(router, nullptr);
  EXPECT_EQ(router->name(), "bridge");
  try {
    (void)make_router("no-such-router");
    FAIL() << "expected MappingError";
  } catch (const MappingError& e) {
    EXPECT_NE(std::string(e.what()).find("bridge"), std::string::npos)
        << e.what();
  }
}

TEST(StrategyFactories, EveryKnownNameConstructs) {
  for (const std::string& name : known_placers()) {
    EXPECT_NE(make_placer(name), nullptr) << name;
  }
  for (const std::string& name : known_routers()) {
    EXPECT_NE(make_router(name), nullptr) << name;
  }
}

TEST(StrategyFactories, DerivedStreamsAreStableAndDistinct) {
  const std::uint64_t a = Rng::derive_stream(0xC0FFEE, 0);
  EXPECT_EQ(a, Rng::derive_stream(0xC0FFEE, 0));  // pure function
  EXPECT_NE(a, Rng::derive_stream(0xC0FFEE, 1));
  EXPECT_NE(a, Rng::derive_stream(0xC0FFED, 0));
}

// --- Portfolio -------------------------------------------------------------

PortfolioOptions small_portfolio_options(int num_threads) {
  PortfolioOptions options;
  options.num_threads = num_threads;
  options.cost_name = "gates";
  return options;
}

TEST(Portfolio, WinnerMatchesBestSerialStrategyOnQx4) {
  const Device device = devices::ibm_qx4();
  const Circuit circuit = workloads::fig1_example();
  PortfolioOptions options = small_portfolio_options(2);
  const PortfolioCompiler portfolio(device, options);
  const PortfolioResult result = portfolio.compile(circuit);

  ASSERT_GE(result.winner_index, 0);
  EXPECT_TRUE(Compiler::verify(result.best));

  // Re-run every portfolio strategy serially through the plain Compiler
  // with the same derived seed; the portfolio winner must cost no more
  // than any of them.
  const CostFunction cost = make_cost_function("gates");
  double best_serial = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < portfolio.strategies().size(); ++i) {
    const StrategySpec& spec = portfolio.strategies()[i];
    if (spec.max_qubits > 0 && circuit.num_qubits() > spec.max_qubits) {
      continue;
    }
    CompilerOptions compiler_options;
    compiler_options.placer = spec.placer;
    compiler_options.router = spec.router;
    compiler_options.seed = Rng::derive_stream(options.base_seed, i);
    const CompilationResult serial =
        Compiler(device, compiler_options).compile(circuit);
    best_serial = std::min(best_serial, cost(serial, device));
  }
  const double winner_cost =
      cost(result.best, device);
  EXPECT_LE(winner_cost, best_serial);
  EXPECT_DOUBLE_EQ(winner_cost, best_serial);  // ties break by index
}

TEST(Portfolio, WinnerVerifiesOnSurface17) {
  const Device device = devices::surface17();
  const Circuit circuit = workloads::qft(5);
  const PortfolioCompiler portfolio(device, small_portfolio_options(4));
  const PortfolioResult result = portfolio.compile(circuit);

  ASSERT_GE(result.winner_index, 0);
  EXPECT_GE(result.completed_count(), 2u);
  EXPECT_TRUE(Compiler::verify(result.best));
  // Telemetry is complete: one entry per strategy, margins consistent.
  ASSERT_EQ(result.telemetry.size(), portfolio.strategies().size());
  for (const StrategyTelemetry& t : result.telemetry) {
    if (t.status == StrategyTelemetry::Status::Completed) {
      EXPECT_GE(t.margin, 0.0);
      if (t.winner) EXPECT_EQ(t.margin, 0.0);
    }
  }
}

TEST(Portfolio, DeterministicAcrossThreadCounts) {
  const Device device = devices::surface17();
  Rng rng(123);
  const Circuit circuit = workloads::random_circuit(6, 40, rng, 0.5);

  std::string reference;
  for (const int threads : {1, 2, 8}) {
    PortfolioOptions options = small_portfolio_options(threads);
    options.base_seed = 0xDEADBEEF;
    const PortfolioCompiler portfolio(device, options);
    // Repeat each thread count twice: catches timing-dependent selection
    // as well as cross-thread-count divergence.
    for (int repeat = 0; repeat < 2; ++repeat) {
      const std::string fingerprint =
          portfolio.compile(circuit).fingerprint();
      if (reference.empty()) {
        reference = fingerprint;
        ASSERT_FALSE(reference.empty());
      } else {
        EXPECT_EQ(fingerprint, reference)
            << "diverged at " << threads << " threads, repeat " << repeat;
      }
    }
  }
}

TEST(Portfolio, SlowExactStrategyIsCancelledAtDeadline) {
  const Device device = devices::surface17();
  // 8 qubits on a 17-qubit device: the exact router's Dijkstra state space
  // is astronomically large, so this strategy can only end via its
  // deadline; the heuristics finish long before.
  Rng rng(7);
  const Circuit circuit = workloads::random_circuit(8, 60, rng, 0.5);

  PortfolioOptions options;
  options.num_threads = 2;
  options.cost_name = "gates";
  options.strategies = {
      {"greedy", "sabre", 0, 0.0},
      {"greedy", "astar", 0, 0.0},
      {"identity", "exact", 0, /*deadline_ms=*/50.0},
  };
  const PortfolioCompiler portfolio(device, options);
  const PortfolioResult result = portfolio.compile(circuit);

  ASSERT_EQ(result.telemetry.size(), 3u);
  EXPECT_EQ(result.telemetry[2].status, StrategyTelemetry::Status::Cancelled);
  EXPECT_EQ(result.cancelled_count(), 1u);
  // The portfolio still returns a valid, verified result from the others.
  ASSERT_GE(result.winner_index, 0);
  EXPECT_NE(result.winner_index, 2);
  EXPECT_TRUE(Compiler::verify(result.best));
}

TEST(Portfolio, SkipsStrategiesGatedByWidth) {
  const Device device = devices::surface17();
  const Circuit circuit = workloads::ghz(7);  // wider than the exact gates
  const PortfolioCompiler portfolio(device,
                                    small_portfolio_options(2));
  const PortfolioResult result = portfolio.compile(circuit);
  bool saw_skip = false;
  for (const StrategyTelemetry& t : result.telemetry) {
    if (t.spec.max_qubits > 0 && circuit.num_qubits() > t.spec.max_qubits) {
      EXPECT_EQ(t.status, StrategyTelemetry::Status::Skipped);
      saw_skip = true;
    }
  }
  EXPECT_TRUE(saw_skip);
  EXPECT_TRUE(Compiler::verify(result.best));
}

TEST(Portfolio, ThrowsWhenNothingCompletes) {
  const Device device = devices::surface17();
  Rng rng(7);
  const Circuit circuit = workloads::random_circuit(8, 60, rng, 0.5);
  PortfolioOptions options;
  options.num_threads = 2;
  options.strategies = {{"identity", "exact", 0, /*deadline_ms=*/20.0}};
  const PortfolioCompiler portfolio(device, options);
  EXPECT_THROW((void)portfolio.compile(circuit), MappingError);
}

TEST(Portfolio, RejectsMisspelledStrategyAtConstruction) {
  PortfolioOptions options;
  options.strategies = {{"greedy", "sabre-typo", 0, 0.0}};
  EXPECT_THROW(PortfolioCompiler(devices::ibm_qx4(), options), MappingError);
}

TEST(Portfolio, ReportAndJsonCarryTelemetry) {
  const Device device = devices::ibm_qx4();
  const PortfolioCompiler portfolio(device, small_portfolio_options(2));
  const PortfolioResult result =
      portfolio.compile(workloads::fig1_example());

  const std::string report = result.report();
  EXPECT_NE(report.find("winner"), std::string::npos);
  EXPECT_NE(report.find(result.winner_label), std::string::npos);

  const Json json = result.to_json();
  EXPECT_EQ(json.at("winner").at("label").as_string(), result.winner_label);
  EXPECT_EQ(json.at("strategies").size(), result.telemetry.size());
  EXPECT_TRUE(json.at("best").contains("mapped"));
  // Round-trips through the serializer.
  EXPECT_NO_THROW((void)Json::parse(json.dump(2)));
}

TEST(Portfolio, DefaultPortfolioAddsReliabilityOnNoisyDevices) {
  Device noisy = devices::surface17();
  noisy.set_noise(NoiseModel::uniform(noisy.coupling(), 0.001, 0.01, 0.02));
  const auto plain = PortfolioCompiler::default_portfolio(devices::surface17());
  const auto with_noise = PortfolioCompiler::default_portfolio(noisy);
  EXPECT_EQ(with_noise.size(), plain.size() + 1);
  EXPECT_EQ(with_noise.back().router, "reliability");
}

TEST(Portfolio, DefaultPortfolioEntersBridgeInTheRace) {
  const auto strategies =
      PortfolioCompiler::default_portfolio(devices::surface17());
  const bool has_bridge =
      std::any_of(strategies.begin(), strategies.end(),
                  [](const StrategySpec& s) { return s.router == "bridge"; });
  EXPECT_TRUE(has_bridge);
}

// --- Cancellation plumbed through the plain Compiler -----------------------

TEST(CompilerCancellation, PreCancelledTokenAborts) {
  CancelToken token;
  token.cancel();
  CompilerOptions options;
  options.cancel = &token;
  const Compiler compiler(devices::ibm_qx4(), options);
  EXPECT_THROW((void)compiler.compile(workloads::fig1_example()),
               CancelledError);
}

TEST(CompilerCancellation, RouterLoopHonoursDeadline) {
  // Exact routing of a wide random circuit never finishes in 30 ms; the
  // in-loop checkpoint must abort it via CancelledError (not run forever
  // and not report a MappingError).
  CancelToken token;
  token.set_deadline_after_ms(30.0);
  CompilerOptions options;
  options.placer = "identity";
  options.router = "exact";
  options.cancel = &token;
  Rng rng(11);
  const Circuit circuit = workloads::random_circuit(8, 60, rng, 0.5);
  const Compiler compiler(devices::surface17(), options);
  EXPECT_THROW((void)compiler.compile(circuit), CancelledError);
}

// --- BatchCompiler ---------------------------------------------------------

TEST(Batch, CompilesManyCircuitsAndKeepsOrder) {
  const Device device = devices::surface17();
  std::vector<Circuit> circuits = {
      workloads::ghz(4), workloads::qft(4), workloads::fig1_example(),
      workloads::bernstein_vazirani({1, 0, 1}).unitary_part()};
  BatchOptions options;
  options.num_threads = 4;
  const BatchCompiler batch(device, options);
  const BatchResult result = batch.compile_all(circuits);

  ASSERT_EQ(result.items.size(), circuits.size());
  EXPECT_EQ(result.ok_count(), circuits.size());
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    ASSERT_TRUE(result.items[i].ok) << result.items[i].error;
    // Submission order is preserved no matter which worker finished first.
    EXPECT_EQ(result.items[i].result.original.name(), circuits[i].name());
    EXPECT_TRUE(Compiler::verify(result.items[i].result));
  }
  EXPECT_NO_THROW((void)Json::parse(result.to_json().dump()));
}

TEST(Batch, RecordsPerCircuitFailuresWithoutThrowing) {
  const Device device = devices::ibm_qx4();  // 5 qubits
  std::vector<Circuit> circuits = {workloads::ghz(4),
                                   workloads::ghz(9)};  // too wide
  const BatchCompiler batch(device, BatchOptions{});
  const BatchResult result = batch.compile_all(circuits);
  ASSERT_EQ(result.items.size(), 2u);
  EXPECT_TRUE(result.items[0].ok);
  EXPECT_FALSE(result.items[1].ok);
  EXPECT_FALSE(result.items[1].error.empty());
  EXPECT_EQ(result.ok_count(), 1u);
}

TEST(Batch, MatchesSerialCompilationBitForBit) {
  const Device device = devices::surface17();
  std::vector<Circuit> circuits = {workloads::ghz(5), workloads::qft(4)};
  BatchOptions options;
  options.num_threads = 2;
  options.compiler.placer = "annealing";  // stochastic: exercises seeding
  const BatchCompiler batch(device, options);
  const BatchResult parallel = batch.compile_all(circuits);

  for (std::size_t i = 0; i < circuits.size(); ++i) {
    CompilerOptions serial_options = options.compiler;
    serial_options.seed = Rng::derive_stream(options.base_seed, i);
    const CompilationResult serial =
        Compiler(device, serial_options).compile(circuits[i]);
    ASSERT_TRUE(parallel.items[i].ok);
    EXPECT_EQ(to_openqasm(parallel.items[i].result.final_circuit),
              to_openqasm(serial.final_circuit));
  }
}

TEST(Batch, NonQmapExceptionFromStageHookIsIsolatedPerItem) {
  // Regression: a stage hook throwing a foreign exception type (not
  // derived from qmap::Error) used to escape the per-item boundary. The
  // hook fires for every circuit here, so without isolation the whole
  // batch would sink instead of recording three failures.
  const Device device = devices::ibm_qx4();
  std::vector<Circuit> circuits = {workloads::ghz(3), workloads::ghz(4),
                                   workloads::fig1_example()};
  BatchOptions options;
  options.compiler.stage_hook = [](const char* stage) {
    if (std::string(stage) == "router") {
      throw std::runtime_error("planted foreign fault");
    }
  };
  const BatchCompiler batch(device, options);
  BatchResult result;
  EXPECT_NO_THROW(result = batch.compile_all(circuits));
  ASSERT_EQ(result.items.size(), 3u);
  for (const BatchItem& item : result.items) {
    EXPECT_FALSE(item.ok);
    EXPECT_NE(item.error.find("planted foreign fault"), std::string::npos);
    EXPECT_EQ(item.error_class, ErrorClass::Permanent);
  }
  // JSON report survives the failure classes.
  EXPECT_NO_THROW((void)Json::parse(result.to_json().dump()));
}

TEST(Batch, PortfolioModeReturnsWinnersPerCircuit) {
  const Device device = devices::ibm_qx4();
  std::vector<Circuit> circuits = {workloads::fig1_example(),
                                   workloads::ghz(4)};
  BatchOptions options;
  options.num_threads = 2;
  options.use_portfolio = true;
  const BatchCompiler batch(device, options);
  const BatchResult result = batch.compile_all(circuits);
  ASSERT_EQ(result.ok_count(), circuits.size());
  for (const BatchItem& item : result.items) {
    EXPECT_FALSE(item.winner_label.empty());
    EXPECT_TRUE(Compiler::verify(item.result));
  }
}

}  // namespace
}  // namespace qmap
