// Immutable per-device derived data, computed once and shared read-only.
//
// Every mapping stage keeps re-deriving the same facts about a device: the
// routers ask for all-pairs hop distances, the naive router re-runs a BFS
// per gate for a shortest path, placement heuristics scan neighbour lists,
// and the decomposer probes the native gate set kind-by-kind. When the
// portfolio engine races N strategies, each used to copy the whole Device
// (distance matrix included) just to get a private warm cache. ArchArtifacts
// hoists all of it into one immutable bundle built once per Device and
// handed to every pipeline (and every portfolio worker) as a
// shared_ptr<const ArchArtifacts> — concurrent reads, zero recomputation.
//
// Fidelity contract: shortest_path() reconstructs *byte-identical* paths to
// CouplingGraph::shortest_path for every pair, because the parent table is
// filled by the same ascending-adjacency BFS with the same first-discovery
// parent rule. Parity is pinned by tests/test_pass.cpp.
#pragma once

#include <memory>
#include <vector>

#include "arch/device.hpp"

namespace qmap {

class ArchArtifacts {
 public:
  /// Derives the full bundle from `device`. O(V * (V + E)) BFS sweeps.
  [[nodiscard]] static ArchArtifacts build(const Device& device);

  /// build(), boxed for sharing across threads/pipelines.
  [[nodiscard]] static std::shared_ptr<const ArchArtifacts> shared(
      const Device& device);

  [[nodiscard]] int num_qubits() const noexcept { return num_qubits_; }

  // --- All-pairs distances (flat row-major matrix) ---

  /// Hop distance over the undirected coupling graph; -1 when disconnected.
  [[nodiscard]] int distance(int a, int b) const;

  /// Raw row-major matrix behind distance(): data[a * num_qubits + b].
  /// RouteIR-backed router inner loops index this directly.
  [[nodiscard]] const int* distance_data() const noexcept {
    return dist_.data();
  }

  /// Max pairwise distance; -1 when the graph is disconnected.
  [[nodiscard]] int diameter() const noexcept { return diameter_; }

  /// Sum of distances from q to all other qubits; -1 when disconnected.
  /// (Placement heuristics use this to find the graph center.)
  [[nodiscard]] long total_distance_from(int q) const;

  // --- Shortest paths (per-source BFS parent forest) ---

  /// Predecessor of `v` on the BFS tree rooted at `source` (-1 when
  /// unreachable; `source` is its own parent). next_hop(source, v) is the
  /// first step of the v -> source walk along that tree.
  [[nodiscard]] int parent(int source, int v) const;

  /// One shortest path from a to b, endpoints inclusive; empty when
  /// disconnected. Identical to CouplingGraph::shortest_path(a, b).
  [[nodiscard]] std::vector<int> shortest_path(int a, int b) const;

  // --- Adjacency ---

  /// Neighbours of q in ascending order (same storage layout the
  /// CouplingGraph keeps; copied so the artifacts outlive the device).
  [[nodiscard]] const std::vector<int>& neighbors(int q) const;

  // --- Native gate set ---

  /// O(1) lookup table over all GateKind values; equals
  /// Device::is_native_kind for the source device.
  [[nodiscard]] bool is_native_kind(GateKind kind) const;

  [[nodiscard]] GateKind native_two_qubit() const noexcept {
    return native_two_qubit_;
  }

 private:
  ArchArtifacts() = default;
  void check_qubit(int q) const;

  int num_qubits_ = 0;
  std::vector<int> dist_;    // num_qubits_^2, row-major: dist_[a * n + b]
  std::vector<int> parent_;  // num_qubits_^2: parent_[source * n + v]
  std::vector<std::vector<int>> neighbors_;
  std::vector<long> total_distance_;
  std::vector<bool> native_kind_;  // indexed by GateKind value
  GateKind native_two_qubit_ = GateKind::CZ;
  int diameter_ = 0;
};

}  // namespace qmap
