
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/builtin.cpp" "src/CMakeFiles/qmap_arch.dir/arch/builtin.cpp.o" "gcc" "src/CMakeFiles/qmap_arch.dir/arch/builtin.cpp.o.d"
  "/root/repo/src/arch/config.cpp" "src/CMakeFiles/qmap_arch.dir/arch/config.cpp.o" "gcc" "src/CMakeFiles/qmap_arch.dir/arch/config.cpp.o.d"
  "/root/repo/src/arch/device.cpp" "src/CMakeFiles/qmap_arch.dir/arch/device.cpp.o" "gcc" "src/CMakeFiles/qmap_arch.dir/arch/device.cpp.o.d"
  "/root/repo/src/arch/draw.cpp" "src/CMakeFiles/qmap_arch.dir/arch/draw.cpp.o" "gcc" "src/CMakeFiles/qmap_arch.dir/arch/draw.cpp.o.d"
  "/root/repo/src/arch/noise.cpp" "src/CMakeFiles/qmap_arch.dir/arch/noise.cpp.o" "gcc" "src/CMakeFiles/qmap_arch.dir/arch/noise.cpp.o.d"
  "/root/repo/src/arch/topology.cpp" "src/CMakeFiles/qmap_arch.dir/arch/topology.cpp.o" "gcc" "src/CMakeFiles/qmap_arch.dir/arch/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qmap_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qmap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
