#include "ir/ascii.hpp"

#include <algorithm>
#include <vector>

#include "common/strings.hpp"

namespace qmap {
namespace {

/// Column content for one gate occurrence.
struct Cell {
  int column = 0;
  int qubit = 0;
  std::string label;  // what to draw on this wire
  int span_min = 0;   // vertical extent of the gate (for connector bars)
  int span_max = 0;
};

std::string gate_label(const Gate& gate, int operand_index) {
  switch (gate.kind) {
    case GateKind::CX:
      return operand_index == 0 ? "*" : "+";
    case GateKind::CZ:
      return "*";
    case GateKind::SWAP:
    case GateKind::ISWAP:
      return "x";
    case GateKind::CPhase:
    case GateKind::CRz:
      return operand_index == 0
                 ? "*"
                 : "[" + std::string(gate_info(gate.kind).name) + "(" +
                       format_double(gate.params[0]) + ")]";
    case GateKind::CCX:
      return operand_index < 2 ? "*" : "+";
    case GateKind::CSWAP:
      return operand_index == 0 ? "*" : "x";
    case GateKind::Measure:
      return "[M]";
    case GateKind::Barrier:
      return "|";
    default: {
      std::string name(gate_info(gate.kind).name);
      // Upper-case the mnemonic for figure-style boxes ("[H]", "[T]").
      for (char& c : name) c = static_cast<char>(std::toupper(c));
      if (!gate.params.empty()) {
        std::string args;
        for (std::size_t i = 0; i < gate.params.size(); ++i) {
          if (i != 0) args += ",";
          args += format_double(gate.params[i]);
        }
        return "[" + name + "(" + args + ")]";
      }
      return "[" + name + "]";
    }
  }
}

}  // namespace

std::string draw_ascii(const Circuit& circuit, const AsciiOptions& options) {
  const int n = circuit.num_qubits();
  if (n == 0) return "(empty register)\n";

  // ASAP column assignment. A multi-qubit gate occupies its own column for
  // every wire it spans (including pass-through wires) so connectors are
  // unobstructed.
  std::vector<int> next_free(static_cast<std::size_t>(n), 0);
  std::vector<Cell> cells;
  int num_columns = 0;
  for (const Gate& gate : circuit) {
    if (gate.qubits.empty()) continue;
    const auto [lo_it, hi_it] =
        std::minmax_element(gate.qubits.begin(), gate.qubits.end());
    const int lo = *lo_it;
    const int hi = *hi_it;
    int column = 0;
    for (int q = lo; q <= hi; ++q) {
      column = std::max(column, next_free[static_cast<std::size_t>(q)]);
    }
    for (std::size_t k = 0; k < gate.qubits.size(); ++k) {
      Cell cell;
      cell.column = column;
      cell.qubit = gate.qubits[k];
      cell.label = gate_label(gate, static_cast<int>(k));
      cell.span_min = lo;
      cell.span_max = hi;
      cells.push_back(std::move(cell));
    }
    for (int q = lo; q <= hi; ++q) {
      next_free[static_cast<std::size_t>(q)] = column + 1;
    }
    num_columns = std::max(num_columns, column + 1);
  }

  // Column widths.
  std::vector<std::size_t> width(static_cast<std::size_t>(num_columns), 1);
  for (const Cell& cell : cells) {
    width[static_cast<std::size_t>(cell.column)] =
        std::max(width[static_cast<std::size_t>(cell.column)],
                 cell.label.size());
  }

  // Grid of labels: wire rows (2*q) and connector rows (2*q+1).
  const int rows = 2 * n - 1;
  std::vector<std::vector<std::string>> grid(
      static_cast<std::size_t>(rows),
      std::vector<std::string>(static_cast<std::size_t>(num_columns)));
  for (const Cell& cell : cells) {
    grid[static_cast<std::size_t>(2 * cell.qubit)]
        [static_cast<std::size_t>(cell.column)] = cell.label;
    // Vertical connector through spanned rows.
    for (int q = cell.span_min; q < cell.span_max; ++q) {
      auto& bar = grid[static_cast<std::size_t>(2 * q + 1)]
                      [static_cast<std::size_t>(cell.column)];
      if (bar.empty()) bar = "|";
      // Pass-through wires also get a connector mark.
      if (q > cell.span_min) {
        auto& wire = grid[static_cast<std::size_t>(2 * q)]
                         [static_cast<std::size_t>(cell.column)];
        if (wire.empty()) wire = "|";
      }
    }
  }

  // Render.
  std::size_t label_width = 0;
  if (options.show_qubit_labels) {
    label_width = std::to_string(n - 1).size() + 3;  // "qN: "
  }
  std::string out;
  for (int row = 0; row < rows; ++row) {
    const bool is_wire = (row % 2) == 0;
    std::string line;
    if (options.show_qubit_labels) {
      if (is_wire) {
        std::string label;
        label += options.qubit_prefix;
        label += std::to_string(row / 2);
        label += ": ";
        line += label;
        line.append(label_width > label.size() ? label_width - label.size()
                                               : 0,
                    ' ');
      } else {
        line.append(label_width, ' ');
      }
    }
    const char filler = is_wire ? '-' : ' ';
    for (int col = 0; col < num_columns; ++col) {
      const std::string& content =
          grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)];
      const std::size_t w = width[static_cast<std::size_t>(col)];
      line += filler;  // inter-column spacing
      const std::size_t pad = w - std::min(w, content.size());
      const std::size_t left = pad / 2;
      line.append(left, filler);
      line += content.empty() ? std::string(1, filler) : content;
      if (!content.empty()) {
        line.append(pad - left, filler);
      } else {
        line.append(w - 1 - left, filler);
      }
      line += filler;
    }
    // Trim trailing spaces on connector rows.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    out += line + "\n";
  }
  return out;
}

}  // namespace qmap
