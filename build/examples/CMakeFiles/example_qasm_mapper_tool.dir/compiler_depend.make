# Empty compiler generated dependencies file for example_qasm_mapper_tool.
# This may be replaced when dependencies are built.
