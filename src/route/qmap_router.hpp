// Latency-aware router in the spirit of Qmap (Lao et al. [39], Sec. V):
// the cost function is circuit latency rather than gate count. The router
// keeps a busy-until time per physical qubit computed from real gate
// durations — the "look-back" feature: already-scheduled operations decide
// which routing path is cheapest — and among SWAPs that help the front
// layer it picks the one that can start (and finish) earliest, maximizing
// instruction-level parallelism.
#pragma once

#include "route/router.hpp"

namespace qmap {

class QmapRouter final : public Router {
 public:
  struct Options {
    int extended_window = 10;      // small lookahead over future 2q gates
    double extended_weight = 0.3;
  };

  QmapRouter() = default;
  explicit QmapRouter(const Options& options) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "qmap"; }
  [[nodiscard]] RoutingResult route(const Circuit& circuit,
                                    const Device& device,
                                    const Placement& initial) override;

 private:
  Options options_;
};

}  // namespace qmap
