// The five standard passes — Fig. 2's pipeline, one class per stage.
//
// Each pass replicates exactly what the pre-refactor Compiler::compile did
// for its stage (pinned by the parity suite in tests/test_pass.cpp), with
// prerequisites checked explicitly so a mis-ordered pipeline fails with a
// message naming the missing stage instead of crashing downstream.
#pragma once

#include <string>

#include "pass/pass.hpp"

namespace qmap {

/// Gate decomposition: lowers the input to the device's native set with
/// SWAPs kept as routing placeholders, and records the paper's "before
/// mapping" baseline latency (dependency-only ASAP schedule of the fully
/// lowered circuit). With `lower_to_native == false` the input passes
/// through verbatim but the baseline is still recorded. Not a stage
/// boundary: the facade never hooked/spanned decomposition, and keeping it
/// silent preserves hook sequences and golden traces.
class DecomposePass final : public Pass {
 public:
  explicit DecomposePass(bool lower_to_native = true)
      : lower_to_native_(lower_to_native) {}
  [[nodiscard]] std::string name() const override { return "decompose"; }
  [[nodiscard]] bool is_stage_boundary() const override { return false; }
  void run(CompileContext& ctx) override;

 private:
  bool lower_to_native_;
};

/// Initial placement. `algorithm` is any known_placers() name; stochastic
/// placers draw from the context's seed. Cooperatively cancellable inside
/// the placer search loops.
class PlacePass final : public Pass {
 public:
  explicit PlacePass(std::string algorithm = "greedy");
  [[nodiscard]] std::string name() const override { return "placer"; }
  [[nodiscard]] const std::string& algorithm() const noexcept {
    return algorithm_;
  }
  void run(CompileContext& ctx) override;

 private:
  std::string algorithm_;
};

/// Routing (SWAP insertion). `algorithm` is any known_routers() name.
/// Requires a placement from an earlier placer pass. The router receives
/// the context's shared ArchArtifacts so distance/shortest-path queries
/// never touch the device's lazy cache.
class RoutePass final : public Pass {
 public:
  explicit RoutePass(std::string algorithm = "sabre");
  [[nodiscard]] std::string name() const override { return "router"; }
  [[nodiscard]] const std::string& algorithm() const noexcept {
    return algorithm_;
  }
  void run(CompileContext& ctx) override;

 private:
  std::string algorithm_;
};

/// Final-permutation cleanup by greedy token swapping (Cowtan et al., "On
/// the qubit routing problem"): appends rounds of disjoint SWAPs to the
/// routed circuit until every program wire is back on the physical qubit
/// the initial placement gave it, so the mapped circuit computes the bare
/// unitary with no trailing relabeling. Runs between 'router' and
/// 'postroute' — the cleanup SWAPs are placeholders the postroute pass
/// expands to native gates like any routing SWAP.
class TokenSwapFinisherPass final : public Pass {
 public:
  [[nodiscard]] std::string name() const override {
    return "token_swap_finisher";
  }
  void run(CompileContext& ctx) override;
};

/// Post-routing clean-up: measurement relocation (Sec. VI-A), optional
/// peephole, SWAP expansion, CX direction repair, final native lowering,
/// and the final metrics. Requires a routing result.
class PostRoutePass final : public Pass {
 public:
  PostRoutePass(bool peephole = true, bool lower_to_native = true)
      : peephole_(peephole), lower_to_native_(lower_to_native) {}
  [[nodiscard]] std::string name() const override { return "postroute"; }
  void run(CompileContext& ctx) override;

 private:
  bool peephole_;
  bool lower_to_native_;
};

/// Operation scheduling (control constraints included when the device
/// declares them and `use_control_constraints` is set). Requires the
/// postroute pass's final circuit.
class SchedulePass final : public Pass {
 public:
  explicit SchedulePass(bool use_control_constraints = true)
      : use_control_constraints_(use_control_constraints) {}
  [[nodiscard]] std::string name() const override { return "schedule"; }
  void run(CompileContext& ctx) override;

 private:
  bool use_control_constraints_;
};

}  // namespace qmap
