file(REMOVE_RECURSE
  "CMakeFiles/test_device_types.dir/test_device_types.cpp.o"
  "CMakeFiles/test_device_types.dir/test_device_types.cpp.o.d"
  "test_device_types"
  "test_device_types.pdb"
  "test_device_types[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
