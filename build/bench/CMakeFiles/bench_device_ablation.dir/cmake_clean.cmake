file(REMOVE_RECURSE
  "CMakeFiles/bench_device_ablation.dir/bench_device_ablation.cpp.o"
  "CMakeFiles/bench_device_ablation.dir/bench_device_ablation.cpp.o.d"
  "bench_device_ablation"
  "bench_device_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_device_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
