#include "route/sabre.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/error.hpp"
#include "route/route_ir.hpp"

namespace qmap {

RoutingResult SabreRouter::route(const Circuit& circuit, const Device& device,
                                 const Placement& initial) {
  const auto start_time = std::chrono::steady_clock::now();
  check_routable(circuit, device);
  const CouplingGraph& coupling = device.coupling();
  RouteArena& arena = RouteArena::scratch();
  const ArenaScope scope(arena);
  RouteCore core(circuit, device, artifacts(),
                 options_.use_commutation ? DagMode::Commutation
                                          : DagMode::Sequential,
                 initial, arena);
  RoutingEmitter emitter(device, initial,
                         circuit.name() + "@" + device.name());
  // Output bound: every program gate plus room for SWAPs and direction
  // fixes; generous slack beats mid-route growth reallocations.
  emitter.reserve(circuit.size() * 3 + 16);

  const int num_phys = device.num_qubits();
  double* decay = arena.alloc<double>(num_phys);
  std::fill(decay, decay + num_phys, 1.0);
  std::uint8_t* relevant = arena.alloc<std::uint8_t>(num_phys);
  const std::size_t ext_cap =
      std::min(static_cast<std::size_t>(options_.extended_window),
               static_cast<std::size_t>(core.ir.num_two_qubit));
  std::uint32_t* extended = arena.alloc<std::uint32_t>(ext_cap);
  // Endpoint pairs of the front/extended gates, recollected per swap
  // decision: invariant across candidate edges, so the scoring loop below
  // never re-reads q0/q1/phys_of.
  const std::size_t front_cap = core.ir.num_two_qubit;
  std::int32_t* front_pa = arena.alloc<std::int32_t>(front_cap);
  std::int32_t* front_pb = arena.alloc<std::int32_t>(front_cap);
  std::int32_t* ext_pa = arena.alloc<std::int32_t>(ext_cap);
  std::int32_t* ext_pb = arena.alloc<std::int32_t>(ext_cap);
  int swaps_since_reset = 0;
  int swaps_since_progress = 0;
  const int stall_limit = 10 * std::max(1, num_phys);

  std::uint64_t iterations = 0;
  std::uint64_t rescues = 0;

  while (!core.front.all_scheduled()) {
    check_cancelled();
    ++iterations;
    if (core.flush_executable(emitter, [](std::uint32_t) {})) {
      swaps_since_progress = 0;
      continue;
    }
    core.refresh_front();
    if (core.front_size == 0) {
      throw MappingError("sabre: stalled with no ready two-qubit gate");
    }

    // Extended lookahead: the next unscheduled 2q gates in program order
    // beyond the front layer.
    const std::uint32_t num_extended = core.collect_extended(ext_cap, extended);

    // Candidate SWAPs: edges touching a physical qubit that currently holds
    // an operand of a front-layer gate.
    core.mark_relevant(relevant);
    core.collect_endpoints(core.front_gates, core.front_size, front_pa,
                           front_pb);
    core.collect_endpoints(extended, num_extended, ext_pa, ext_pb);

    double best_score = std::numeric_limits<double>::infinity();
    int best_a = -1;
    int best_b = -1;
    for (const auto& edge : coupling.edges()) {
      if (!relevant[edge.a] && !relevant[edge.b]) continue;
      double front_term = 0.0;
      for (std::uint32_t k = 0; k < core.front_size; ++k) {
        front_term += core.dist_pair_swapped(front_pa[k], front_pb[k],
                                             edge.a, edge.b);
      }
      front_term /= static_cast<double>(core.front_size);
      double extended_term = 0.0;
      if (num_extended > 0) {
        for (std::uint32_t k = 0; k < num_extended; ++k) {
          extended_term += core.dist_pair_swapped(ext_pa[k], ext_pb[k],
                                                  edge.a, edge.b);
        }
        extended_term /= static_cast<double>(num_extended);
      }
      const double decay_factor = std::max(decay[edge.a], decay[edge.b]);
      const double score =
          decay_factor *
          (front_term + options_.extended_weight * extended_term);
      if (score < best_score) {
        best_score = score;
        best_a = edge.a;
        best_b = edge.b;
      }
    }
    if (best_a < 0) {
      throw MappingError("sabre: no candidate SWAP found");
    }

    ++swaps_since_progress;
    if (swaps_since_progress > stall_limit) {
      // Safeguard: force progress by walking the first front gate together
      // along a shortest path (the naive step). Guarantees termination.
      const std::uint32_t gate = core.front_gates[0];
      const int pa = core.phys_of(core.ir.q0[gate]);
      const int pb = core.phys_of(core.ir.q1[gate]);
      const std::vector<int> path = core.shortest_path(pa, pb);
      for (std::size_t i = 0; i + 2 < path.size(); ++i) {
        core.emit_swap(emitter, path[i], path[i + 1]);
      }
      ++rescues;
      swaps_since_progress = 0;
      continue;
    }

    core.emit_swap(emitter, best_a, best_b);
    decay[best_a] += options_.decay_increment;
    decay[best_b] += options_.decay_increment;
    if (++swaps_since_reset >= options_.decay_reset_interval) {
      std::fill(decay, decay + num_phys, 1.0);
      swaps_since_reset = 0;
    }
  }

  const double runtime_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_time)
          .count();
  RoutingResult result = std::move(emitter).finish(initial, runtime_ms);
  // One flush per route() keeps the loop body free of locking.
  obs::add(observer(), "sabre.routes");
  obs::add(observer(), "sabre.iterations", iterations);
  obs::add(observer(), "sabre.rescues", rescues);
  obs::observe(observer(), "route.swaps_inserted",
               static_cast<double>(result.added_swaps));
  return result;
}

}  // namespace qmap
