#include "decompose/decomposer.hpp"

#include <cmath>
#include <optional>

#include "common/error.hpp"
#include "decompose/euler.hpp"

namespace qmap {
namespace {

constexpr double kAngleTolerance = 1e-12;

/// Stage A: expand arity-3 gates and exotic two-qubit gates into
/// {single-qubit, CX, CZ, SWAP} form. CX/CZ/SWAP pass through untouched.
class StageA {
 public:
  explicit StageA(Circuit& out) : out_(out) {}

  void gate(const Gate& g) {
    switch (g.kind) {
      case GateKind::ISWAP: {
        // iSWAP(a,b) = (S x S) . H_a . CX(a,b) . CX(b,a) . H_b
        const int a = g.qubits[0];
        const int b = g.qubits[1];
        out_.s(a).s(b).h(a).cx(a, b).cx(b, a).h(b);
        break;
      }
      case GateKind::CPhase: {
        const int a = g.qubits[0];
        const int b = g.qubits[1];
        const double lambda = g.params[0];
        out_.p(lambda / 2.0, a)
            .cx(a, b)
            .p(-lambda / 2.0, b)
            .cx(a, b)
            .p(lambda / 2.0, b);
        break;
      }
      case GateKind::CRz: {
        const int a = g.qubits[0];
        const int b = g.qubits[1];
        const double lambda = g.params[0];
        out_.rz(lambda / 2.0, b).cx(a, b).rz(-lambda / 2.0, b).cx(a, b);
        break;
      }
      case GateKind::CCX:
        toffoli(g.qubits[0], g.qubits[1], g.qubits[2]);
        break;
      case GateKind::CSWAP: {
        // Fredkin(c; a, b) = CX(b,a) . CCX(c,a,b) . CX(b,a)
        const int c = g.qubits[0];
        const int a = g.qubits[1];
        const int b = g.qubits[2];
        out_.cx(b, a);
        toffoli(c, a, b);
        out_.cx(b, a);
        break;
      }
      default:
        out_.add(g);
    }
  }

 private:
  void toffoli(int a, int b, int c) {
    // Standard 6-CNOT, 7-T decomposition (Nielsen & Chuang Fig. 4.9).
    out_.h(c)
        .cx(b, c)
        .tdg(c)
        .cx(a, c)
        .t(c)
        .cx(b, c)
        .tdg(c)
        .cx(a, c)
        .t(b)
        .t(c)
        .h(c)
        .cx(a, b)
        .t(a)
        .tdg(b)
        .cx(a, b);
  }

  Circuit& out_;
};

void emit_two_qubit(Circuit& out, GateKind kind, GateKind target, int a,
                    int b) {
  if (kind == target) {
    out.add(make_gate(kind, {a, b}));
    return;
  }
  // CX <-> CZ via Hadamards on the target qubit: CX(a,b) = H_b CZ(a,b) H_b.
  if (kind == GateKind::CX && target == GateKind::CZ) {
    out.h(b).cz(a, b).h(b);
    return;
  }
  if (kind == GateKind::CZ && target == GateKind::CX) {
    out.h(b).cx(a, b).h(b);
    return;
  }
  throw MappingError("unsupported two-qubit lowering target");
}

bool is_identity_up_to_phase(const Matrix& m) {
  return m.equal_up_to_global_phase(Matrix::identity(2), 1e-10);
}

/// Stage B, one gate: convert CX/CZ/SWAP to the target two-qubit kind.
/// Shared by the batch pass and the streaming lowerer so the rewrite has a
/// single source of truth.
void lower_intermediate_gate(const Gate& gate, GateKind target,
                             bool keep_swaps, Circuit& out) {
  switch (gate.kind) {
    case GateKind::CX:
    case GateKind::CZ:
      emit_two_qubit(out, gate.kind, target, gate.qubits[0], gate.qubits[1]);
      break;
    case GateKind::SWAP: {
      if (keep_swaps) {
        out.add(gate);
        break;
      }
      const int a = gate.qubits[0];
      const int b = gate.qubits[1];
      emit_two_qubit(out, GateKind::CX, target, a, b);
      emit_two_qubit(out, GateKind::CX, target, b, a);
      emit_two_qubit(out, GateKind::CX, target, a, b);
      break;
    }
    default:
      out.add(gate);
  }
}

/// Native-basis rewrite, one gate (the body of lower_single_qubit's loop).
void lower_single_gate(const Gate& gate, const Device& device, bool has_u,
                       Circuit& out) {
  if (!gate.is_unitary() || gate_info(gate.kind).arity != 1 ||
      device.is_native_kind(gate.kind)) {
    out.add(gate);
    return;
  }
  const int q = gate.qubits[0];
  if (has_u) {
    const EulerAngles angles = zyz_decompose(gate.matrix());
    out.u(angles.theta, angles.phi, angles.lambda, q);
    return;
  }
  const EulerAngles angles = yxy_decompose(gate.matrix());
  if (std::abs(angles.lambda) > kAngleTolerance) out.ry(angles.lambda, q);
  if (std::abs(angles.theta) > kAngleTolerance) out.rx(angles.theta, q);
  if (std::abs(angles.phi) > kAngleTolerance) out.ry(angles.phi, q);
}

/// Empties a scratch circuit, keeping its gate-list capacity.
void clear_gates(Circuit& circuit) {
  std::vector<Gate> gates = circuit.take_gates();
  gates.clear();
  circuit.set_gates(std::move(gates));
}

}  // namespace

Circuit lower_two_qubit(const Circuit& circuit, GateKind target,
                        bool keep_swaps) {
  if (target != GateKind::CX && target != GateKind::CZ) {
    throw MappingError("two-qubit lowering target must be CX or CZ");
  }
  // Stage A: everything into {1q, CX, CZ, SWAP}.
  Circuit intermediate(circuit.num_qubits(), circuit.name());
  StageA stage_a(intermediate);
  for (const Gate& gate : circuit) stage_a.gate(gate);

  // Stage B: convert the two-qubit kinds to the target.
  Circuit out(circuit.num_qubits(), circuit.name());
  for (const Gate& gate : intermediate) {
    lower_intermediate_gate(gate, target, keep_swaps, out);
  }
  return out;
}

SingleQubitFuser::SingleQubitFuser(int num_qubits)
    : pending_(static_cast<std::size_t>(num_qubits)) {}

void SingleQubitFuser::flush(int qubit, Circuit& out) {
  auto& entry = pending_[static_cast<std::size_t>(qubit)];
  if (!entry.has_value()) return;
  if (!is_identity_up_to_phase(*entry)) {
    const EulerAngles angles = zyz_decompose(*entry);
    out.u(angles.theta, angles.phi, angles.lambda, qubit);
  }
  entry.reset();
}

void SingleQubitFuser::push(const Gate& gate, Circuit& out) {
  if (gate.is_unitary() && gate_info(gate.kind).arity == 1) {
    auto& entry = pending_[static_cast<std::size_t>(gate.qubits[0])];
    const Matrix m = gate.matrix();
    entry = entry.has_value() ? m * *entry : m;
    return;
  }
  for (const int q : gate.qubits) flush(q, out);
  out.add(gate);
}

void SingleQubitFuser::finish(Circuit& out) {
  for (int q = 0; q < static_cast<int>(pending_.size()); ++q) flush(q, out);
}

Circuit fuse_single_qubit(const Circuit& circuit) {
  Circuit out(circuit.num_qubits(), circuit.name());
  SingleQubitFuser fuser(circuit.num_qubits());
  for (const Gate& gate : circuit) fuser.push(gate, out);
  fuser.finish(out);
  return out;
}

Circuit lower_single_qubit(const Circuit& circuit, const Device& device) {
  const auto& natives = device.native_single_qubit();
  if (natives.empty()) return circuit;  // unrestricted device
  const bool has_u =
      device.is_native_kind(GateKind::U);
  const bool has_rx = device.is_native_kind(GateKind::Rx);
  const bool has_ry = device.is_native_kind(GateKind::Ry);
  if (!has_u && !(has_rx && has_ry)) {
    throw MappingError(
        "device native single-qubit set must include u or {rx, ry}");
  }
  Circuit out(circuit.num_qubits(), circuit.name());
  for (const Gate& gate : circuit) {
    lower_single_gate(gate, device, has_u, out);
  }
  return out;
}

StreamingLowerer::StreamingLowerer(const Device& device, int num_qubits,
                                   bool keep_swaps)
    : device_(&device),
      target_(device.native_two_qubit()),
      keep_swaps_(keep_swaps),
      lower_single_(!device.native_single_qubit().empty()),
      fuser_(num_qubits),
      stage_a_(num_qubits, "chunk"),
      stage_b_(num_qubits, "chunk"),
      fused_(num_qubits, "chunk") {
  if (target_ != GateKind::CX && target_ != GateKind::CZ) {
    throw MappingError("two-qubit lowering target must be CX or CZ");
  }
  if (lower_single_) {
    has_u_ = device.is_native_kind(GateKind::U);
    const bool has_rx = device.is_native_kind(GateKind::Rx);
    const bool has_ry = device.is_native_kind(GateKind::Ry);
    if (!has_u_ && !(has_rx && has_ry)) {
      throw MappingError(
          "device native single-qubit set must include u or {rx, ry}");
    }
  }
}

void StreamingLowerer::lower_fused(Circuit& fused, Circuit& out) {
  if (!lower_single_) {
    for (Gate& gate : fused.take_gates()) out.add(std::move(gate));
    return;
  }
  for (const Gate& gate : fused) {
    lower_single_gate(gate, *device_, has_u_, out);
  }
  clear_gates(fused);
}

void StreamingLowerer::lower_chunk(const std::vector<Gate>& gates,
                                   Circuit& out) {
  StageA stage_a(stage_a_);
  for (const Gate& gate : gates) stage_a.gate(gate);
  for (const Gate& gate : stage_a_) {
    lower_intermediate_gate(gate, target_, keep_swaps_, stage_b_);
  }
  clear_gates(stage_a_);
  for (const Gate& gate : stage_b_) fuser_.push(gate, fused_);
  clear_gates(stage_b_);
  lower_fused(fused_, out);
}

void StreamingLowerer::finish(Circuit& out) {
  fuser_.finish(fused_);
  lower_fused(fused_, out);
}

Circuit lower_to_device(const Circuit& circuit, const Device& device,
                        bool keep_swaps) {
  Circuit lowered =
      lower_two_qubit(circuit, device.native_two_qubit(), keep_swaps);
  lowered = fuse_single_qubit(lowered);
  return lower_single_qubit(lowered, device);
}

Circuit fix_cx_directions(const Circuit& circuit, const Device& device) {
  const CouplingGraph& coupling = device.coupling();
  Circuit out(circuit.num_qubits(), circuit.name());
  for (const Gate& gate : circuit) {
    if (!gate.is_two_qubit()) {
      out.add(gate);
      continue;
    }
    const int a = gate.qubits[0];
    const int b = gate.qubits[1];
    if (!coupling.connected(a, b)) {
      throw MappingError("two-qubit gate on unconnected qubits Q" +
                         std::to_string(a) + ", Q" + std::to_string(b) +
                         " — route the circuit first");
    }
    if (!gate.is_directional() || coupling.orientation_allowed(a, b)) {
      out.add(gate);
      continue;
    }
    if (gate.kind != GateKind::CX) {
      throw MappingError("cannot fix direction of non-CX directional gate");
    }
    // Sec. IV: "H gates are employed to flip the direction of the control
    // and target qubits": CX(a,b) = (H x H) CX(b,a) (H x H).
    out.h(a).h(b).cx(b, a).h(a).h(b);
  }
  return out;
}

Circuit expand_swaps(const Circuit& circuit, const Device& device) {
  const GateKind target = device.native_two_qubit();
  Circuit out(circuit.num_qubits(), circuit.name());
  for (const Gate& gate : circuit) {
    if (gate.kind != GateKind::SWAP) {
      out.add(gate);
      continue;
    }
    const int a = gate.qubits[0];
    const int b = gate.qubits[1];
    emit_two_qubit(out, GateKind::CX, target, a, b);
    emit_two_qubit(out, GateKind::CX, target, b, a);
    emit_two_qubit(out, GateKind::CX, target, a, b);
  }
  return out;
}

int swap_two_qubit_cost(const Device& device) {
  (void)device;
  return 3;  // three native two-qubit gates on both CX and CZ devices
}

}  // namespace qmap
