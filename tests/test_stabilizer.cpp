// Stabilizer-simulator tests: CHP semantics cross-checked against the
// state-vector simulator on small instances, then used at widths the
// state vector cannot reach.
#include <gtest/gtest.h>

#include "arch/builtin.hpp"
#include "core/compiler.hpp"
#include "decompose/decomposer.hpp"
#include "layout/placers.hpp"
#include "route/sabre.hpp"
#include "sim/stabilizer.hpp"
#include "sim/statevector.hpp"
#include "workloads/workloads.hpp"

namespace qmap {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(CliffordClassification, GateKinds) {
  EXPECT_TRUE(is_clifford_gate(make_gate(GateKind::H, {0})));
  EXPECT_TRUE(is_clifford_gate(make_gate(GateKind::CX, {0, 1})));
  EXPECT_TRUE(is_clifford_gate(make_gate(GateKind::Rz, {0}, {kPi / 2.0})));
  EXPECT_TRUE(is_clifford_gate(make_gate(GateKind::CPhase, {0, 1}, {kPi})));
  EXPECT_FALSE(is_clifford_gate(make_gate(GateKind::T, {0})));
  EXPECT_FALSE(is_clifford_gate(make_gate(GateKind::Rz, {0}, {0.3})));
  EXPECT_FALSE(is_clifford_gate(make_gate(GateKind::CCX, {0, 1, 2})));
  EXPECT_TRUE(is_clifford_circuit(workloads::ghz(5)));
  EXPECT_FALSE(is_clifford_circuit(workloads::fig1_example()));  // has T
}

TEST(Tableau, IdentityTableauShape) {
  const CliffordTableau t(3);
  // Destabilizers X_i, stabilizers Z_i, all positive.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(t.x(i, i));
    EXPECT_FALSE(t.z(i, i));
    EXPECT_TRUE(t.z(3 + i, i));
    EXPECT_FALSE(t.x(3 + i, i));
    EXPECT_FALSE(t.sign(i));
    EXPECT_FALSE(t.sign(3 + i));
  }
}

TEST(Tableau, HadamardExchangesXandZ) {
  CliffordTableau t(1);
  t.apply(make_gate(GateKind::H, {0}));
  // H X H = Z, H Z H = X.
  EXPECT_TRUE(t.z(0, 0));
  EXPECT_FALSE(t.x(0, 0));
  EXPECT_TRUE(t.x(1, 0));
}

TEST(Tableau, XFlipsZSign) {
  CliffordTableau t(1);
  t.apply(make_gate(GateKind::X, {0}));
  // X Z X = -Z.
  EXPECT_TRUE(t.sign(1));
  EXPECT_FALSE(t.sign(0));  // X X X = X
}

TEST(Tableau, RejectsNonClifford) {
  CliffordTableau t(2);
  EXPECT_THROW(t.apply(make_gate(GateKind::T, {0})), SimulationError);
  EXPECT_THROW(t.apply(make_gate(GateKind::Rz, {0}, {0.3})),
               SimulationError);
}

TEST(CliffordEquivalence, AgreesWithUnitarySimulatorOnRandomCliffords) {
  // Random Clifford circuits: tableau equality must exactly match
  // state-vector unitary equality (up to global phase).
  Rng rng(77);
  const auto random_clifford = [&](int n, int gates) {
    Circuit c(n, "cliff");
    for (int g = 0; g < gates; ++g) {
      switch (rng.index(7)) {
        case 0: c.h(static_cast<int>(rng.index(n))); break;
        case 1: c.s(static_cast<int>(rng.index(n))); break;
        case 2: c.x(static_cast<int>(rng.index(n))); break;
        case 3: c.sdg(static_cast<int>(rng.index(n))); break;
        case 4: c.sx(static_cast<int>(rng.index(n))); break;
        default: {
          const int a = static_cast<int>(rng.index(n));
          int b = static_cast<int>(rng.index(n - 1));
          if (b >= a) ++b;
          if (rng.chance(0.5)) c.cx(a, b);
          else c.cz(a, b);
        }
      }
    }
    return c;
  };
  for (int trial = 0; trial < 12; ++trial) {
    const Circuit a = random_clifford(3, 25);
    const Circuit b = random_clifford(3, 25);
    const bool tableau_equal = clifford_equivalent(a, b);
    const Matrix ua = circuit_unitary(a);
    const Matrix ub = circuit_unitary(b);
    EXPECT_EQ(tableau_equal, ua.equal_up_to_global_phase(ub, 1e-8))
        << "trial " << trial;
    // Self-equivalence and composition identities.
    EXPECT_TRUE(clifford_equivalent(a, a));
    Circuit ai = a;
    ai.append(a.inverse());
    EXPECT_TRUE(clifford_equivalent(ai, Circuit(3)));
  }
}

TEST(CliffordEquivalence, KnownIdentities) {
  // CX = H_t CZ H_t.
  Circuit lhs(2);
  lhs.cx(0, 1);
  Circuit rhs(2);
  rhs.h(1).cz(0, 1).h(1);
  EXPECT_TRUE(clifford_equivalent(lhs, rhs));
  // SWAP = 3 CX.
  Circuit swap_gate(2);
  swap_gate.swap(0, 1);
  Circuit three_cx(2);
  three_cx.cx(0, 1).cx(1, 0).cx(0, 1);
  EXPECT_TRUE(clifford_equivalent(swap_gate, three_cx));
  // Direction inversion with 4 H.
  Circuit inverted(2);
  inverted.h(0).h(1).cx(1, 0).h(0).h(1);
  Circuit plain(2);
  plain.cx(0, 1);
  EXPECT_TRUE(clifford_equivalent(inverted, plain));
  // Negative case.
  Circuit cz(2);
  cz.cz(0, 1);
  EXPECT_FALSE(clifford_equivalent(plain, cz));
}

TEST(StabilizerMeasurement, GhzCorrelationsAtFortyQubits) {
  const int n = 40;  // far beyond the state-vector limit
  Rng rng(5);
  for (int shot = 0; shot < 10; ++shot) {
    StabilizerState state(n);
    state.run(workloads::ghz(n));
    EXPECT_FALSE(state.deterministic(0));
    const int first = state.measure(0, rng);
    // After the first measurement every other qubit is determined equal.
    for (int q = 1; q < n; ++q) {
      EXPECT_TRUE(state.deterministic(q));
      EXPECT_EQ(state.measure(q, rng), first) << "qubit " << q;
    }
  }
}

TEST(StabilizerMeasurement, DeterministicOutcomes) {
  Rng rng(9);
  StabilizerState state(2);
  state.apply(make_gate(GateKind::X, {0}));
  EXPECT_TRUE(state.deterministic(0));
  EXPECT_EQ(state.measure(0, rng), 1);
  EXPECT_EQ(state.measure(1, rng), 0);
}

TEST(StabilizerMeasurement, PlusStateIsUniform) {
  Rng rng(31);
  int ones = 0;
  const int shots = 400;
  for (int shot = 0; shot < shots; ++shot) {
    StabilizerState state(1);
    state.apply(make_gate(GateKind::H, {0}));
    ones += state.measure(0, rng);
  }
  EXPECT_GT(ones, shots / 2 - 60);
  EXPECT_LT(ones, shots / 2 + 60);
}

TEST(CliffordMapping, VerifiesGhz16OnQx5) {
  // A verification the state-vector checker cannot do: 16 program qubits
  // mapped onto the 16-qubit QX5.
  const Device qx5 = devices::ibm_qx5();
  const Circuit circuit = workloads::ghz(16);
  const Circuit lowered = lower_to_device(circuit, qx5, true);
  const Placement initial = GreedyPlacer().place(lowered, qx5);
  const RoutingResult result = SabreRouter().route(lowered, qx5, initial);
  Circuit legal = expand_swaps(result.circuit, qx5);
  legal = fix_cx_directions(legal, qx5);
  EXPECT_TRUE(clifford_mapping_equivalent(circuit, legal,
                                          result.initial.wire_to_phys(),
                                          result.final.wire_to_phys()));
  // Tamper with the mapped circuit: the check must catch it.
  Circuit tampered = legal;
  tampered.z(0);
  EXPECT_FALSE(clifford_mapping_equivalent(circuit, tampered,
                                           result.initial.wire_to_phys(),
                                           result.final.wire_to_phys()));
}

TEST(CliffordMapping, AgreesWithStateVectorChecker) {
  // On a small Clifford instance both verifiers must say yes.
  const Device s7 = devices::surface7();
  const Circuit circuit = workloads::ghz(4);
  const Circuit lowered = lower_to_device(circuit, s7, true);
  const Placement initial = GreedyPlacer().place(lowered, s7);
  const RoutingResult result = SabreRouter().route(lowered, s7, initial);
  const Circuit legal = expand_swaps(result.circuit, s7);
  EXPECT_TRUE(clifford_mapping_equivalent(circuit, legal,
                                          result.initial.wire_to_phys(),
                                          result.final.wire_to_phys()));
}

TEST(Tableau, PermuteRelabelsColumns) {
  CliffordTableau t(3);
  t.apply(make_gate(GateKind::X, {0}));  // flips sign of Z_0 stabilizer
  t.permute({0, 1, 2}, {2, 0, 1});
  // The X destabilizer that lived on column 0 is now on column 2.
  EXPECT_TRUE(t.x(0, 2));
  EXPECT_FALSE(t.x(0, 0));
}

}  // namespace
}  // namespace qmap
