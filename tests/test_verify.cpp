// Verification harness unit tests: ValidityChecker accepts known-good
// mappings and rejects hand-built violations of every invariant class,
// the Shrinker converges on planted bugs, reproducers round-trip through
// disk, and the planted-fault path proves the differential oracle catches
// a real routing bug end to end (caught -> shrunk to <= 10 gates ->
// dumped -> reloaded -> same failure).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "arch/builtin.hpp"
#include "core/compiler.hpp"
#include "schedule/schedulers.hpp"
#include "verify/fuzzer.hpp"
#include "verify/reproducer.hpp"
#include "verify/shrink.hpp"
#include "verify/validity.hpp"
#include "workloads/workloads.hpp"

namespace qmap::verify {
namespace {

bool has_kind(const ValidityReport& report, Violation::Kind kind) {
  for (const Violation& v : report.violations) {
    if (v.kind == kind) return true;
  }
  return false;
}

// --- ValidityChecker: accepts known-good mappings --------------------------

TEST(ValidityChecker, AcceptsCompiledCircuits) {
  for (const Device& device :
       {devices::ibm_qx4(), devices::surface17(), devices::surface7()}) {
    const CompilationResult result =
        Compiler(device).compile(workloads::fig1_example());
    const ValidityReport report = ValidityChecker(device).check_result(result);
    EXPECT_TRUE(report.ok()) << device.name() << ":\n" << report.to_string();
  }
}

TEST(ValidityChecker, AcceptsGhzOnQx5) {
  const Device qx5 = devices::ibm_qx5();
  const CompilationResult result = Compiler(qx5).compile(workloads::ghz(8));
  const ValidityReport report = ValidityChecker(qx5).check_result(result);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// --- ValidityChecker: rejects hand-built violations ------------------------

TEST(ValidityChecker, RejectsWrongCnotDirection) {
  const Device qx4 = devices::ibm_qx4();
  Circuit c(5);
  c.cx(0, 1);  // only 1 -> 0 is allowed on QX4
  const ValidityReport report = ValidityChecker(qx4).check_circuit(c);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_kind(report, Violation::Kind::BadOrientation))
      << report.to_string();
}

TEST(ValidityChecker, RejectsUncoupledOperands) {
  const Device qx4 = devices::ibm_qx4();
  Circuit c(5);
  c.cx(1, 0);  // legal warm-up gate
  c.cx(0, 3);  // 0 and 3 share no edge
  const ValidityReport report = ValidityChecker(qx4).check_circuit(c);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(has_kind(report, Violation::Kind::UncoupledOperands));
  EXPECT_EQ(report.violations[0].index, 1u);
}

TEST(ValidityChecker, RejectsNonNativeGates) {
  const Device s17 = devices::surface17();
  Circuit c(17);
  c.cx(1, 5);  // Surface-17 is a CZ device; CX is not native
  const ValidityReport report = ValidityChecker(s17).check_circuit(c);
  EXPECT_TRUE(has_kind(report, Violation::Kind::NonNativeGate))
      << report.to_string();

  // The same circuit passes a pre-lowering audit.
  CheckOptions relaxed;
  relaxed.require_native = false;
  const ValidityReport ok = ValidityChecker(s17, relaxed).check_circuit(c);
  EXPECT_TRUE(ok.ok()) << ok.to_string();
}

TEST(ValidityChecker, RejectsOversizedCircuits) {
  const Device qx4 = devices::ibm_qx4();
  const Circuit c(6);
  const ValidityReport report = ValidityChecker(qx4).check_circuit(c);
  EXPECT_TRUE(has_kind(report, Violation::Kind::WidthMismatch));
}

TEST(ValidityChecker, RejectsUnmeasurableQubit) {
  Device line = devices::linear(3);
  line.set_measurable({true, false, true});
  Circuit c(3);
  c.measure(1, 0);
  const ValidityReport report = ValidityChecker(line).check_circuit(c);
  EXPECT_TRUE(has_kind(report, Violation::Kind::UnmeasurableQubit));
}

TEST(ValidityChecker, RejectsMoveWithoutShuttling) {
  const Device line = devices::linear(3);
  Circuit c(3);
  c.add(make_gate(GateKind::Move, {0, 1}));
  const ValidityReport report = ValidityChecker(line).check_circuit(c);
  EXPECT_TRUE(has_kind(report, Violation::Kind::ShuttleUnsupported));
}

TEST(ValidityChecker, RejectsMismatchedPlacement) {
  const Device qx4 = devices::ibm_qx4();
  const Placement undersized = Placement::identity(3, 3);
  const ValidityReport report =
      ValidityChecker(qx4).check_placement(undersized);
  EXPECT_TRUE(has_kind(report, Violation::Kind::BadPlacement));
  EXPECT_TRUE(
      ValidityChecker(qx4).check_placement(Placement::identity(4, 5)).ok());
}

// --- ValidityChecker: schedule audits --------------------------------------

TEST(ValidityChecker, RejectsWrongDuration) {
  const Device s7 = devices::surface7();
  Circuit c(7);
  c.cz(0, 2);
  Schedule schedule(7);
  schedule.add(ScheduledGate{c.gate(0), 0, s7.cycles_for(c.gate(0)) + 1});
  const ValidityReport report =
      ValidityChecker(s7).check_schedule(schedule, c);
  EXPECT_TRUE(has_kind(report, Violation::Kind::BadDuration))
      << report.to_string();
}

TEST(ValidityChecker, RejectsDoubleBookedQubit) {
  const Device s7 = devices::surface7();
  Circuit c(7);
  c.rx(0.5, 0).ry(0.5, 0);
  Schedule schedule(7);
  schedule.add(ScheduledGate{c.gate(0), 0, 1});
  schedule.add(ScheduledGate{c.gate(1), 0, 1});  // same qubit, same cycle
  const ValidityReport report =
      ValidityChecker(s7).check_schedule(schedule, c);
  EXPECT_TRUE(has_kind(report, Violation::Kind::QubitOverlap))
      << report.to_string();
}

TEST(ValidityChecker, RejectsReorderedQubitSequence) {
  const Device s7 = devices::surface7();
  Circuit c(7);
  c.rx(0.5, 0).ry(0.7, 0);
  Schedule schedule(7);
  schedule.add(ScheduledGate{c.gate(1), 0, 1});  // ry before rx
  schedule.add(ScheduledGate{c.gate(0), 1, 1});
  const ValidityReport report =
      ValidityChecker(s7).check_schedule(schedule, c);
  EXPECT_TRUE(has_kind(report, Violation::Kind::OrderMismatch))
      << report.to_string();
}

TEST(ValidityChecker, RejectsSharedMicrowaveConflict) {
  // Two qubits of one Surface-17 frequency group running *different*
  // single-qubit gates in the same cycle violate the shared-AWG rule.
  const Device s17 = devices::surface17();
  const auto& groups = s17.frequency_groups();
  int a = -1;
  int b = -1;
  for (std::size_t i = 0; i < groups.size() && a < 0; ++i) {
    for (std::size_t j = i + 1; j < groups.size(); ++j) {
      if (groups[i] >= 0 && groups[i] == groups[j]) {
        a = static_cast<int>(i);
        b = static_cast<int>(j);
        break;
      }
    }
  }
  ASSERT_GE(a, 0) << "Surface-17 should declare frequency groups";
  Circuit c(17);
  c.rx(0.5, a).ry(0.5, b);
  Schedule schedule(17);
  schedule.add(ScheduledGate{c.gate(0), 0, 1});
  schedule.add(ScheduledGate{c.gate(1), 0, 1});
  const ValidityReport report =
      ValidityChecker(s17).check_schedule(schedule, c);
  EXPECT_TRUE(has_kind(report, Violation::Kind::ControlConflict))
      << report.to_string();
}

TEST(ValidityChecker, AcceptsConstrainedSchedulerOutput) {
  const Device s17 = devices::surface17();
  Rng rng(11);
  const CompilationResult result =
      Compiler(s17).compile(workloads::random_circuit(5, 30, rng, 0.4));
  ASSERT_GT(result.schedule.size(), 0u);
  const ValidityReport report = ValidityChecker(s17).check_schedule(
      result.schedule, result.final_circuit);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// --- Shrinker ---------------------------------------------------------------

TEST(Shrinker, ConvergesOnPlantedGate) {
  // Plant one CCX in a 40-gate random circuit (random_circuit never emits
  // CCX); the predicate fires while the needle survives. Note the
  // predicate is kind-based, i.e. invariant under qubit relabeling —
  // shrink predicates must be, or compaction is (correctly) rejected.
  Rng rng(123);
  Circuit haystack = workloads::random_circuit(6, 40, rng, 0.3);
  Circuit planted(6, "planted");
  for (std::size_t i = 0; i < haystack.size(); ++i) {
    if (i == 20) planted.ccx(0, 2, 4);
    planted.add(haystack.gate(i));
  }
  const auto contains_needle = [](const Circuit& c) {
    for (const Gate& gate : c) {
      if (gate.kind == GateKind::CCX) return true;
    }
    return false;
  };
  const Shrinker::Result result =
      Shrinker().shrink(planted, contains_needle);
  EXPECT_EQ(result.circuit.size(), 1u) << result.circuit.to_string();
  EXPECT_EQ(result.circuit.num_qubits(), 3);
  EXPECT_EQ(result.original_gates, planted.size());
  EXPECT_GT(result.tests, 0u);
}

TEST(Shrinker, ThrowsWhenInputDoesNotFail) {
  const Circuit c(2, "healthy");
  EXPECT_THROW(
      (void)Shrinker().shrink(c, [](const Circuit&) { return false; }),
      MappingError);
}

TEST(Shrinker, RespectsTestBudget) {
  Rng rng(5);
  const Circuit big = workloads::random_circuit(5, 60, rng, 0.4);
  ShrinkOptions options;
  options.max_tests = 10;
  const Shrinker::Result result =
      Shrinker(options).shrink(big, [](const Circuit&) { return true; });
  EXPECT_LE(result.tests, 10u);
}

TEST(Shrinker, CompactQubitsRelabelsDensely) {
  Circuit c(6, "sparse");
  c.h(1).cx(1, 4);
  const Circuit compact = compact_qubits(c);
  EXPECT_EQ(compact.num_qubits(), 2);
  EXPECT_EQ(compact.gate(1).qubits, (std::vector<int>{0, 1}));
}

// --- Reproducers ------------------------------------------------------------

TEST(Reproducer, RoundTripsThroughDisk) {
  const std::string dir =
      (std::filesystem::path(testing::TempDir()) / "qmap_repro_rt").string();
  Reproducer repro;
  Rng rng(77);
  repro.circuit = workloads::random_circuit(4, 12, rng, 0.5);
  repro.device = "ibm_qx4";
  repro.strategy = {"greedy", "sabre"};
  repro.seed = 0xDEADBEEFCAFEF00DULL;  // must survive JSON losslessly
  repro.trials = 2;
  repro.fault = FaultInjection::DropLastSwap;
  repro.kind = "equivalence";
  repro.message = "state-vector mismatch";

  const std::string path = save_reproducer(repro, dir, "case0");
  const Reproducer loaded = load_reproducer(path);
  EXPECT_EQ(loaded.device, repro.device);
  EXPECT_EQ(loaded.strategy.placer, repro.strategy.placer);
  EXPECT_EQ(loaded.strategy.router, repro.strategy.router);
  EXPECT_EQ(loaded.seed, repro.seed);
  EXPECT_EQ(loaded.trials, repro.trials);
  EXPECT_EQ(loaded.fault, repro.fault);
  EXPECT_EQ(loaded.kind, repro.kind);
  EXPECT_EQ(loaded.message, repro.message);
  EXPECT_EQ(loaded.circuit.size(), repro.circuit.size());
  EXPECT_EQ(loaded.circuit.num_qubits(), repro.circuit.num_qubits());
}

TEST(Reproducer, DeviceByNameCoversBuiltins) {
  EXPECT_EQ(device_by_name("ibm_qx4").num_qubits(), 5);
  EXPECT_EQ(device_by_name("ibm_qx5").num_qubits(), 16);
  EXPECT_EQ(device_by_name("surface17").num_qubits(), 17);
  EXPECT_EQ(device_by_name("surface7").num_qubits(), 7);
  EXPECT_EQ(device_by_name("linear6").num_qubits(), 6);
  EXPECT_EQ(device_by_name("grid3x4").num_qubits(), 12);
  EXPECT_EQ(device_by_name("all_to_all5").num_qubits(), 5);
  EXPECT_EQ(device_by_name("ion4").num_qubits(), 4);
  EXPECT_THROW((void)device_by_name("no_such_device"), DeviceError);
}

TEST(Reproducer, CleanRunReplaysClean) {
  Reproducer repro;
  Rng rng(3);
  repro.circuit = workloads::random_circuit(4, 10, rng, 0.4);
  repro.device = "ibm_qx4";
  repro.strategy = {"greedy", "sabre"};
  repro.seed = 42;
  const RunOutcome outcome = replay(repro);
  EXPECT_EQ(outcome.kind, FailureKind::None) << outcome.message;
}

// --- Planted routing bug: the acceptance-criterion path ---------------------

TEST(PlantedBug, DroppedSwapIsCaughtShrunkAndReplayable) {
  const std::string dir =
      (std::filesystem::path(testing::TempDir()) / "qmap_repro_bug").string();
  FuzzOptions options;
  options.num_circuits = 8;
  options.min_qubits = 4;
  options.max_qubits = 5;
  options.min_gates = 16;
  options.max_gates = 28;
  options.two_qubit_fraction = 0.6;
  options.base_seed = 0xB0661E;
  options.num_threads = 2;
  options.trials = 2;
  options.placers = {"greedy"};
  options.routers = {"sabre"};
  options.fault = FaultInjection::DropLastSwap;
  options.reproducer_dir = dir;

  const DifferentialFuzzer fuzzer({devices::ibm_qx4()}, options);
  const FuzzReport report = fuzzer.run();
  ASSERT_FALSE(report.failures.empty())
      << "a dropped routing SWAP must be caught:\n" << report.report();

  for (const FuzzFailure& failure : report.failures) {
    EXPECT_EQ(failure.kind, FailureKind::Equivalence) << failure.to_string();
    EXPECT_LE(failure.shrunk.size(), 10u)
        << "shrinker left too many gates:\n" << failure.shrunk.to_string();
    ASSERT_FALSE(failure.reproducer_path.empty());

    // Round-trip: dumped reproducer replays to the same failure.
    const Reproducer loaded = load_reproducer(failure.reproducer_path);
    const RunOutcome replayed = replay(loaded);
    EXPECT_EQ(failure_kind_name(replayed.kind), loaded.kind)
        << failure.reproducer_path;
    EXPECT_NE(replayed.kind, FailureKind::None);
  }
}

TEST(PlantedBug, FlippedCxIsAValidityFailureOnDirectedDevices) {
  FuzzOptions options;
  options.num_circuits = 6;
  options.min_qubits = 4;
  options.max_qubits = 5;
  options.min_gates = 12;
  options.max_gates = 20;
  options.two_qubit_fraction = 0.6;
  options.base_seed = 0xF11F;
  options.num_threads = 2;
  options.trials = 2;
  options.placers = {"greedy"};
  options.routers = {"sabre"};
  options.fault = FaultInjection::FlipLastCx;
  options.shrink_failures = false;  // keep the self-test fast

  const DifferentialFuzzer fuzzer({devices::ibm_qx4()}, options);
  const FuzzReport report = fuzzer.run();
  ASSERT_FALSE(report.failures.empty()) << report.report();
  for (const FuzzFailure& failure : report.failures) {
    EXPECT_EQ(failure.kind, FailureKind::Validity) << failure.to_string();
  }
}

// --- Fuzzer plumbing --------------------------------------------------------

TEST(DifferentialFuzzer, StrategyGatingRespectsDeviceFeatures) {
  FuzzOptions options;
  const DifferentialFuzzer fuzzer(
      {devices::ibm_qx4(), devices::ibm_qx5()}, options);
  for (const FuzzStrategy& s : fuzzer.strategies_for(devices::ibm_qx4())) {
    EXPECT_NE(s.placer, "reliability");  // no noise model attached
    EXPECT_NE(s.router, "reliability");
    EXPECT_NE(s.router, "shuttle");
  }
  bool qx4_has_exact = false;
  for (const FuzzStrategy& s : fuzzer.strategies_for(devices::ibm_qx4())) {
    qx4_has_exact |= s.router == "exact";
  }
  EXPECT_TRUE(qx4_has_exact);
  for (const FuzzStrategy& s : fuzzer.strategies_for(devices::ibm_qx5())) {
    EXPECT_NE(s.router, "exact") << "exact must be width-gated off QX5";
    EXPECT_NE(s.placer, "exhaustive");
  }
}

TEST(DifferentialFuzzer, RejectsUnknownStrategyNames) {
  FuzzOptions options;
  options.routers = {"no-such-router"};
  EXPECT_THROW(DifferentialFuzzer({devices::ibm_qx4()}, options),
               MappingError);
}

TEST(DifferentialFuzzer, FingerprintIsThreadCountInvariant) {
  FuzzOptions options;
  options.num_circuits = 6;
  options.max_qubits = 4;
  options.max_gates = 18;
  options.base_seed = 0xABCD;
  options.trials = 2;
  options.placers = {"identity", "greedy"};
  options.routers = {"naive", "sabre"};

  options.num_threads = 1;
  const FuzzReport serial =
      DifferentialFuzzer({devices::ibm_qx4(), devices::surface7()}, options)
          .run();
  options.num_threads = 4;
  const FuzzReport parallel =
      DifferentialFuzzer({devices::ibm_qx4(), devices::surface7()}, options)
          .run();
  EXPECT_EQ(serial.fingerprint(), parallel.fingerprint());
  EXPECT_TRUE(serial.ok()) << serial.report();
  EXPECT_GT(serial.runs, 0u);
}

}  // namespace
}  // namespace qmap::verify
