file(REMOVE_RECURSE
  "CMakeFiles/test_export_and_bidir.dir/test_export_and_bidir.cpp.o"
  "CMakeFiles/test_export_and_bidir.dir/test_export_and_bidir.cpp.o.d"
  "test_export_and_bidir"
  "test_export_and_bidir.pdb"
  "test_export_and_bidir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_export_and_bidir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
