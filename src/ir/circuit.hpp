// Circuit: an ordered list of gates over a fixed qubit register.
//
// This is the paper's "sequential list of quantum gates" program
// representation (Fig. 2, left input of the compiler). Order is program
// order; actual parallelism is derived later by the dependency DAG and the
// schedulers.
#pragma once

#include <string>
#include <vector>

#include "ir/gate.hpp"

namespace qmap {

class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(int num_qubits, std::string name = "circuit");

  [[nodiscard]] int num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] int num_cbits() const noexcept { return num_cbits_; }
  /// Grows the classical register (e.g. for declared-but-unused bits).
  void declare_cbits(int count);
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] std::size_t size() const noexcept { return gates_.size(); }
  [[nodiscard]] bool empty() const noexcept { return gates_.empty(); }
  [[nodiscard]] const Gate& gate(std::size_t i) const { return gates_[i]; }
  [[nodiscard]] const std::vector<Gate>& gates() const noexcept {
    return gates_;
  }
  [[nodiscard]] auto begin() const noexcept { return gates_.begin(); }
  [[nodiscard]] auto end() const noexcept { return gates_.end(); }

  /// Append a gate, validating qubit ranges. Returns the gate index.
  std::size_t add(Gate gate);

  /// Append without the operand range check, for trusted producers (the
  /// routing emitter) whose own invariants already guarantee validity —
  /// the emitter verifies adjacency against the device coupling graph,
  /// which subsumes the range check. Classical-register tracking matches
  /// add().
  std::size_t add_unchecked(Gate gate) {
    if (gate.kind == GateKind::Measure && gate.cbit >= num_cbits_) {
      num_cbits_ = gate.cbit + 1;
    }
    gates_.push_back(std::move(gate));
    return gates_.size() - 1;
  }

  /// Pre-sizes the gate list; producers that know an output bound
  /// (routing emitters) skip the growth reallocations.
  void reserve(std::size_t gates) { gates_.reserve(gates); }

  /// Moves the gate list out, leaving the circuit empty (register metadata
  /// intact). Trusted bulk-transfer primitive for the streaming layer: a
  /// chunked source drains parsed gates without per-gate copies, and the
  /// splice-style passes take / rewrite / set instead of rebuilding.
  [[nodiscard]] std::vector<Gate> take_gates() {
    std::vector<Gate> out = std::move(gates_);
    gates_.clear();
    return out;
  }

  /// Replaces the gate list wholesale, without re-validating operands.
  /// Counterpart of take_gates() for trusted producers; classical-register
  /// tracking matches add_unchecked().
  void set_gates(std::vector<Gate> gates) {
    gates_ = std::move(gates);
    for (const Gate& gate : gates_) {
      if (gate.kind == GateKind::Measure && gate.cbit >= num_cbits_) {
        num_cbits_ = gate.cbit + 1;
      }
    }
  }

  // Fluent single-gate builders. Each returns *this for chaining.
  Circuit& i(int q) { return emit(GateKind::I, {q}); }
  Circuit& x(int q) { return emit(GateKind::X, {q}); }
  Circuit& y(int q) { return emit(GateKind::Y, {q}); }
  Circuit& z(int q) { return emit(GateKind::Z, {q}); }
  Circuit& h(int q) { return emit(GateKind::H, {q}); }
  Circuit& s(int q) { return emit(GateKind::S, {q}); }
  Circuit& sdg(int q) { return emit(GateKind::Sdg, {q}); }
  Circuit& t(int q) { return emit(GateKind::T, {q}); }
  Circuit& tdg(int q) { return emit(GateKind::Tdg, {q}); }
  Circuit& sx(int q) { return emit(GateKind::SX, {q}); }
  Circuit& sxdg(int q) { return emit(GateKind::SXdg, {q}); }
  Circuit& rx(double theta, int q) { return emit(GateKind::Rx, {q}, {theta}); }
  Circuit& ry(double theta, int q) { return emit(GateKind::Ry, {q}, {theta}); }
  Circuit& rz(double theta, int q) { return emit(GateKind::Rz, {q}, {theta}); }
  Circuit& p(double lambda, int q) {
    return emit(GateKind::Phase, {q}, {lambda});
  }
  Circuit& u(double theta, double phi, double lambda, int q) {
    return emit(GateKind::U, {q}, {theta, phi, lambda});
  }
  Circuit& cx(int control, int target) {
    return emit(GateKind::CX, {control, target});
  }
  Circuit& cz(int a, int b) { return emit(GateKind::CZ, {a, b}); }
  Circuit& swap(int a, int b) { return emit(GateKind::SWAP, {a, b}); }
  Circuit& iswap(int a, int b) { return emit(GateKind::ISWAP, {a, b}); }
  Circuit& cp(double lambda, int a, int b) {
    return emit(GateKind::CPhase, {a, b}, {lambda});
  }
  Circuit& crz(double lambda, int control, int target) {
    return emit(GateKind::CRz, {control, target}, {lambda});
  }
  Circuit& ccx(int c1, int c2, int target) {
    return emit(GateKind::CCX, {c1, c2, target});
  }
  Circuit& cswap(int control, int a, int b) {
    return emit(GateKind::CSWAP, {control, a, b});
  }
  Circuit& measure(int qubit, int cbit);
  Circuit& measure_all();
  Circuit& barrier(std::vector<int> qubits = {});

  /// Append all gates of `other` (operand qubits are used verbatim).
  Circuit& append(const Circuit& other);

  /// Append all gates of `other`, relabeling its qubit k to `mapping[k]`.
  Circuit& append_mapped(const Circuit& other, const std::vector<int>& mapping);

  /// Adjoint circuit (reversed order, each unitary gate inverted).
  /// Throws CircuitError if the circuit contains measurements.
  [[nodiscard]] Circuit inverse() const;

  /// Copy containing only the unitary gates (drops measure/barrier).
  [[nodiscard]] Circuit unitary_part() const;

  /// Copy containing only the two-qubit gates (Fig. 1(b)'s CNOT skeleton).
  [[nodiscard]] Circuit two_qubit_skeleton() const;

  /// Multi-line textual listing, one gate per line.
  [[nodiscard]] std::string to_string() const;

 private:
  Circuit& emit(GateKind kind, std::vector<int> qubits,
                std::vector<double> params = {});
  void validate(const Gate& gate) const;

  int num_qubits_ = 0;
  int num_cbits_ = 0;
  std::string name_ = "circuit";
  std::vector<Gate> gates_;
};

}  // namespace qmap
