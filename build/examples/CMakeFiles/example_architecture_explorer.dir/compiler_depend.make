# Empty compiler generated dependencies file for example_architecture_explorer.
# This may be replaced when dependencies are built.
