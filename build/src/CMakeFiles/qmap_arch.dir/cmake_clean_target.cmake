file(REMOVE_RECURSE
  "libqmap_arch.a"
)
