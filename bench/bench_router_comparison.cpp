// E8 / Sec. III-B — the survey's solution-space, made measurable:
//   * cost functions: gate count vs depth vs latency (Sec. III-B "Cost
//     function") across routers that optimize different objectives,
//   * solution features: look-ahead (sabre/astar) and look-back (qmap),
//   * exact vs heuristic quality gap.
//
// One table per device over the standard workload suite. Expected shape:
// naive is worst on every metric; the latency-aware router wins latency;
// lookahead routers win SWAP count on deep circuits.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "route/route_ir.hpp"
#include "schedule/constraints.hpp"

namespace {

using namespace qmap;
using namespace qmap::bench;

std::vector<std::pair<std::string, Circuit>> suite() {
  Rng rng(99);
  std::vector<std::pair<std::string, Circuit>> rows;
  rows.emplace_back("fig1", workloads::fig1_example());
  rows.emplace_back("ghz8", workloads::ghz(8));
  rows.emplace_back("qft6", workloads::qft(6));
  rows.emplace_back("bv7",
                    workloads::bernstein_vazirani({1, 0, 1, 1, 0, 1})
                        .unitary_part());
  rows.emplace_back("adder2", workloads::cuccaro_adder(2));
  rows.emplace_back("qv8", workloads::quantum_volume(8, 2, rng));
  rows.emplace_back("random10", workloads::random_circuit(10, 80, rng, 0.45));
  return rows;
}

void print_figure() {
  paper_note(
      "Sec. III-B: 'The most common cost functions are the number of gates "
      "... and the circuit depth or latency.' Different routers optimize "
      "different objectives; this table measures all three per router.");
  for (const Device& device :
       {devices::surface17(), devices::ibm_qx5(), devices::grid(4, 4)}) {
    section("Router comparison on " + device.name());
    TextTable table({"workload", "router", "swaps", "bridges", "gates",
                     "depth", "latency cycles", "runtime ms"});
    for (const auto& [label, circuit] : suite()) {
      if (circuit.num_qubits() > device.num_qubits()) continue;
      const Circuit lowered =
          lower_to_device(circuit, device, /*keep_swaps=*/true);
      const Placement initial = GreedyPlacer().place(lowered, device);
      for (const char* router : {"naive", "sabre", "bridge", "astar",
                                 "qmap"}) {
        const MappedOutcome outcome =
            map_and_verify(circuit, device, router, initial);
        const Schedule schedule =
            schedule_for_device(outcome.final_circuit, device);
        table.add_row({label, router,
                       TextTable::num(outcome.routing.added_swaps),
                       TextTable::num(outcome.routing.added_bridges),
                       TextTable::num(outcome.metrics.total_gates),
                       TextTable::num(outcome.metrics.depth),
                       TextTable::num(schedule.total_cycles()),
                       TextTable::num(outcome.routing.runtime_ms, 3)});
      }
    }
    std::cout << table.str();
  }
}

// Router x workload grid. Besides wall time, each entry exports quality
// counters so the snapshot script can diff routers: added_cx counts the
// CXs the router inserted (3 per SWAP, 3 net per BRIDGE — the template is
// 4 CXs replacing the 1 the bare gate would have been) and depth is the
// mapped circuit's depth. bench_snapshot.sh derives bridge-vs-sabre deltas
// from these.
void BM_Router(benchmark::State& state) {
  static const char* routers[] = {"naive", "sabre", "bridge", "astar",
                                  "qmap"};
  const char* router = routers[state.range(0)];
  const int workload = static_cast<int>(state.range(1));
  Device device = devices::surface17();
  Circuit program;
  const char* workload_label = "random10";
  if (workload == 0) {
    Rng rng(99);
    program = workloads::random_circuit(10, 80, rng, 0.45);
  } else if (workload == 1) {
    // The paper's Fig. 1 example on QX5: the front-layer CX at distance 2
    // is exactly the shape BRIDGE exists for — sabre pays two SWAPs where
    // bridge pays one 4-CX template and keeps the placement.
    device = devices::ibm_qx5();
    program = workloads::fig1_example();
    workload_label = "fig1@qx5";
  } else {
    // QFT(8) on QX5: the dense controlled-phase ladder keeps every router's
    // front layer busy — the headline workload for RouteIR's route-time
    // gate in scripts/bench_snapshot.sh.
    device = devices::ibm_qx5();
    program = workloads::qft(8);
    workload_label = "qft8@qx5";
  }
  const Circuit circuit = lower_to_device(program, device, true);
  const Placement initial = GreedyPlacer().place(circuit, device);
  const MappedOutcome quality =
      map_and_verify(program, device, router, initial);
  state.counters["added_cx"] = static_cast<double>(
      3 * (quality.routing.added_swaps + quality.routing.added_bridges));
  state.counters["bridges"] =
      static_cast<double>(quality.routing.added_bridges);
  state.counters["depth"] = static_cast<double>(quality.metrics.depth);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        make_router(router)->route(circuit, device, initial));
  }
  state.SetLabel(std::string(router) + "/" + workload_label);
}
BENCHMARK(BM_Router)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {0, 1, 2}});

// Conversion overhead at the pass boundary: Circuit -> RouteIR (SoA gate
// records + CSR dependency DAG) + FrontLayer init, alone. The argument is
// the BM_Router workload index (1 = fig1@qx5, 2 = qft8@qx5) so
// bench_snapshot.sh can express this as a percentage of the matching sabre
// route time; its gate fails the snapshot when conversion exceeds 5%.
void BM_RouteIRConvert(benchmark::State& state) {
  const Device device = devices::ibm_qx5();
  const Circuit program =
      state.range(0) == 1 ? workloads::fig1_example() : workloads::qft(8);
  const Circuit circuit = lower_to_device(program, device, true);
  RouteArena& arena = RouteArena::scratch();
  for (auto _ : state) {
    const ArenaScope scope(arena);
    const RouteIR ir = RouteIR::build(circuit, DagMode::Sequential, arena);
    const FrontLayer front(ir, arena);
    benchmark::DoNotOptimize(ir.num_edges() + front.ready_size());
  }
  state.SetLabel(std::string("convert/") +
                 (state.range(0) == 1 ? "fig1@qx5" : "qft8@qx5"));
}
BENCHMARK(BM_RouteIRConvert)->Arg(1)->Arg(2);

void BM_GreedyPlacement(benchmark::State& state) {
  const Device device = devices::surface17();
  Rng rng(99);
  const Circuit circuit = workloads::random_circuit(10, 80, rng, 0.45);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyPlacer().place(circuit, device));
  }
}
BENCHMARK(BM_GreedyPlacement);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
