#include "resilience/breaker.hpp"

#include <chrono>
#include <utility>

namespace qmap::resilience {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half-open";
  }
  return "closed";
}

CircuitBreaker::CircuitBreaker(BreakerConfig config)
    : config_(std::move(config)) {}

std::int64_t CircuitBreaker::now_us_() const {
  if (config_.now_us) return config_.now_us();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void CircuitBreaker::transition_(BreakerState next) {
  if (state_ == next) return;
  state_ = next;
  if (next == BreakerState::Open) {
    opened_at_us_ = now_us_();
  }
  if (next == BreakerState::HalfOpen) {
    probes_in_flight_ = 0;
    probe_successes_ = 0;
  }
  if (next == BreakerState::Closed) {
    consecutive_failures_ = 0;
  }
  if (on_transition) on_transition(next);
}

bool CircuitBreaker::try_acquire() {
  if (config_.failure_threshold <= 0) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == BreakerState::Open) {
    const double elapsed_ms =
        static_cast<double>(now_us_() - opened_at_us_) / 1000.0;
    if (elapsed_ms < config_.open_ms) return false;
    transition_(BreakerState::HalfOpen);
  }
  if (state_ == BreakerState::HalfOpen) {
    if (probes_in_flight_ >= config_.half_open_max_probes) return false;
    ++probes_in_flight_;
  }
  return true;
}

void CircuitBreaker::release() {
  if (config_.failure_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == BreakerState::HalfOpen && probes_in_flight_ > 0) {
    --probes_in_flight_;
  }
}

void CircuitBreaker::on_success() {
  if (config_.failure_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == BreakerState::HalfOpen) {
    if (probes_in_flight_ > 0) --probes_in_flight_;
    if (++probe_successes_ >= config_.half_open_successes) {
      transition_(BreakerState::Closed);
    }
    return;
  }
  consecutive_failures_ = 0;
}

void CircuitBreaker::on_failure() {
  if (config_.failure_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == BreakerState::HalfOpen) {
    if (probes_in_flight_ > 0) --probes_in_flight_;
    transition_(BreakerState::Open);
    return;
  }
  if (state_ == BreakerState::Closed &&
      ++consecutive_failures_ >= config_.failure_threshold) {
    transition_(BreakerState::Open);
  }
}

void CircuitBreaker::record(bool ok, ErrorClass error_class) {
  if (ok) {
    on_success();
  } else if (error_class == ErrorClass::Permanent) {
    on_failure();
  } else {
    release();
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

double CircuitBreaker::retry_after_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != BreakerState::Open) return 0.0;
  const double elapsed_ms =
      static_cast<double>(now_us_() - opened_at_us_) / 1000.0;
  return elapsed_ms >= config_.open_ms ? 0.0 : config_.open_ms - elapsed_ms;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return consecutive_failures_;
}

}  // namespace qmap::resilience
