# Empty compiler generated dependencies file for qmap_arch.
# This may be replaced when dependencies are built.
