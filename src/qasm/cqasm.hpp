// cQASM v1 front end (reader + writer) — the common quantum assembly
// language [17] the paper's Fig. 2 uses as compiler input.
//
// Supported subset: "version 1.0", "qubits N", '#' comments, the standard
// gate mnemonics (x, y, z, h, s, sdag, t, tdag, x90/y90/mx90/my90,
// rx/ry/rz with trailing angle, cnot, cz, swap, toffoli), prep_z,
// measure / measure_z, and single-line parallel bundles
// "{ g1 | g2 | ... }" which are parsed and flattened in bundle order.
#pragma once

#include <string>
#include <string_view>

#include "ir/circuit.hpp"

namespace qmap {

[[nodiscard]] Circuit parse_cqasm(std::string_view source);
[[nodiscard]] Circuit load_cqasm(const std::string& path);

/// Serializes as cQASM v1. Gates that cQASM cannot express (U, iSWAP, ...)
/// raise ParseError; lower the circuit first.
[[nodiscard]] std::string to_cqasm(const Circuit& circuit);

/// One gate as a cQASM instruction (no trailing newline), e.g.
/// "cnot q[0], q[1]". Throws ParseError for inexpressible gates; returns
/// an empty string for barriers (cQASM v1 has none).
[[nodiscard]] std::string cqasm_instruction(const Gate& gate);

void save_cqasm(const Circuit& circuit, const std::string& path);

}  // namespace qmap
