file(REMOVE_RECURSE
  "CMakeFiles/example_noise_aware_mapping.dir/noise_aware_mapping.cpp.o"
  "CMakeFiles/example_noise_aware_mapping.dir/noise_aware_mapping.cpp.o.d"
  "example_noise_aware_mapping"
  "example_noise_aware_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_noise_aware_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
