# Empty dependencies file for qmap_qasm.
# This may be replaced when dependencies are built.
