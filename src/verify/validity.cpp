#include "verify/validity.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "schedule/constraints.hpp"

namespace qmap::verify {

std::string violation_kind_name(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::WidthMismatch: return "width-mismatch";
    case Violation::Kind::NonNativeGate: return "non-native-gate";
    case Violation::Kind::UncoupledOperands: return "uncoupled-operands";
    case Violation::Kind::BadOrientation: return "bad-orientation";
    case Violation::Kind::UnmeasurableQubit: return "unmeasurable-qubit";
    case Violation::Kind::ShuttleUnsupported: return "shuttle-unsupported";
    case Violation::Kind::BadPlacement: return "bad-placement";
    case Violation::Kind::BadDuration: return "bad-duration";
    case Violation::Kind::QubitOverlap: return "qubit-overlap";
    case Violation::Kind::OrderMismatch: return "order-mismatch";
    case Violation::Kind::ControlConflict: return "control-conflict";
  }
  return "unknown";
}

std::string Violation::to_string() const {
  std::string out = violation_kind_name(kind);
  if (index != npos) out += " @" + std::to_string(index);
  out += ": " + message;
  return out;
}

std::string ValidityReport::to_string() const {
  if (ok()) return "valid";
  std::string out;
  for (const Violation& v : violations) out += v.to_string() + "\n";
  return out;
}

Json ValidityReport::to_json() const {
  Json out;
  out["ok"] = Json(ok());
  JsonArray list;
  for (const Violation& v : violations) {
    Json entry;
    entry["kind"] = Json(violation_kind_name(v.kind));
    if (v.index != Violation::npos) {
      entry["index"] = Json(v.index);
    }
    entry["message"] = Json(v.message);
    list.push_back(std::move(entry));
  }
  out["violations"] = Json(std::move(list));
  return out;
}

void ValidityReport::merge(ValidityReport other) {
  violations.insert(violations.end(),
                    std::make_move_iterator(other.violations.begin()),
                    std::make_move_iterator(other.violations.end()));
}

ValidityChecker::ValidityChecker(Device device, CheckOptions options)
    : device_(std::move(device)), options_(options) {
  // The audit reads distances never, but warming keeps the checker safe to
  // share across fuzzer worker threads alongside the routers.
  device_.coupling().precompute_distances();
}

bool ValidityChecker::full_(const ValidityReport& report) const {
  return options_.max_violations != 0 &&
         report.violations.size() >= options_.max_violations;
}

void ValidityChecker::add_(ValidityReport& report, Violation::Kind kind,
                           std::size_t index, std::string message) const {
  if (full_(report)) return;
  report.violations.push_back(Violation{kind, index, std::move(message)});
}

ValidityReport ValidityChecker::check_circuit(const Circuit& circuit) const {
  ValidityReport report;
  if (circuit.num_qubits() > device_.num_qubits()) {
    add_(report, Violation::Kind::WidthMismatch, Violation::npos,
         "circuit has " + std::to_string(circuit.num_qubits()) +
             " qubits, device '" + device_.name() + "' has " +
             std::to_string(device_.num_qubits()));
    // Operand indices may exceed the device register; per-gate coupling
    // queries would throw, so stop here.
    return report;
  }
  const CouplingGraph& coupling = device_.coupling();
  for (std::size_t i = 0; i < circuit.size() && !full_(report); ++i) {
    const Gate& gate = circuit.gate(i);
    if (gate.kind == GateKind::Barrier) continue;
    if (gate.kind == GateKind::Measure) {
      if (!device_.measurable(gate.qubits[0])) {
        add_(report, Violation::Kind::UnmeasurableQubit, i,
             gate.to_string() + ": qubit has no direct readout");
      }
      continue;
    }
    if (gate.kind == GateKind::Move && !device_.supports_shuttling()) {
      add_(report, Violation::Kind::ShuttleUnsupported, i,
           gate.to_string() + ": device does not support shuttling");
    }
    if (options_.require_native && gate.kind != GateKind::Move &&
        !device_.is_native_kind(gate.kind) &&
        !(options_.allow_swap && gate.kind == GateKind::SWAP)) {
      add_(report, Violation::Kind::NonNativeGate, i,
           gate.to_string() + ": not in the native set of '" +
               device_.name() + "'");
    }
    if (gate.is_two_qubit()) {
      const int a = gate.qubits[0];
      const int b = gate.qubits[1];
      if (!coupling.connected(a, b)) {
        add_(report, Violation::Kind::UncoupledOperands, i,
             gate.to_string() + ": qubits are not coupled");
      } else if (gate.is_directional() &&
                 !coupling.orientation_allowed(a, b)) {
        add_(report, Violation::Kind::BadOrientation, i,
             gate.to_string() + ": orientation forbidden (allowed: " +
                 std::to_string(b) + " -> " + std::to_string(a) + ")");
      }
    }
  }
  return report;
}

ValidityReport ValidityChecker::check_placement(
    const Placement& placement) const {
  ValidityReport report;
  const int m = device_.num_qubits();
  if (placement.num_physical_qubits() != m) {
    add_(report, Violation::Kind::BadPlacement, Violation::npos,
         "placement covers " +
             std::to_string(placement.num_physical_qubits()) +
             " physical qubits, device has " + std::to_string(m));
    return report;
  }
  std::vector<bool> used(static_cast<std::size_t>(m), false);
  for (int w = 0; w < m; ++w) {
    const int p = placement.wire_to_phys()[static_cast<std::size_t>(w)];
    if (p < 0 || p >= m) {
      add_(report, Violation::Kind::BadPlacement, Violation::npos,
           "wire " + std::to_string(w) + " mapped to invalid qubit " +
               std::to_string(p));
      continue;
    }
    if (used[static_cast<std::size_t>(p)]) {
      add_(report, Violation::Kind::BadPlacement, Violation::npos,
           "physical qubit " + std::to_string(p) +
               " holds more than one wire");
    }
    used[static_cast<std::size_t>(p)] = true;
  }
  return report;
}

ValidityReport ValidityChecker::check_schedule(const Schedule& schedule,
                                               const Circuit& source) const {
  ValidityReport report;
  const auto& ops = schedule.operations();

  // Admission order: by start cycle, ties broken by insertion order (the
  // order the scheduler actually admitted them).
  std::vector<std::size_t> order(ops.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&ops](std::size_t a, std::size_t b) {
                     return ops[a].start_cycle < ops[b].start_cycle;
                   });

  // Durations must match the device's timing model.
  for (std::size_t i = 0; i < ops.size() && !full_(report); ++i) {
    const int expected = device_.cycles_for(ops[i].gate);
    if (ops[i].duration_cycles != expected) {
      add_(report, Violation::Kind::BadDuration, i,
           ops[i].gate.to_string() + ": scheduled for " +
               std::to_string(ops[i].duration_cycles) + " cycles, device says " +
               std::to_string(expected));
    }
  }

  // Per-qubit audit: no double-booking, and the per-qubit gate sequence of
  // the schedule must equal the source program order.
  const int width = std::max(schedule.num_qubits(), source.num_qubits());
  std::vector<std::vector<std::size_t>> per_qubit(
      static_cast<std::size_t>(width));
  for (const std::size_t i : order) {
    if (ops[i].gate.kind == GateKind::Barrier) continue;
    for (const int q : ops[i].gate.qubits) {
      per_qubit[static_cast<std::size_t>(q)].push_back(i);
    }
  }
  for (int q = 0; q < width && !full_(report); ++q) {
    const auto& lane = per_qubit[static_cast<std::size_t>(q)];
    for (std::size_t k = 1; k < lane.size(); ++k) {
      if (ops[lane[k - 1]].overlaps(ops[lane[k]])) {
        add_(report, Violation::Kind::QubitOverlap, lane[k],
             ops[lane[k]].gate.to_string() + " overlaps " +
                 ops[lane[k - 1]].gate.to_string() + " on qubit " +
                 std::to_string(q));
      }
    }
    // Source-order comparison.
    std::vector<const Gate*> expected;
    for (const Gate& gate : source) {
      if (gate.kind == GateKind::Barrier) continue;
      for (const int oq : gate.qubits) {
        if (oq == q) {
          expected.push_back(&gate);
          break;
        }
      }
    }
    if (expected.size() != lane.size()) {
      add_(report, Violation::Kind::OrderMismatch, Violation::npos,
           "qubit " + std::to_string(q) + ": schedule has " +
               std::to_string(lane.size()) + " gates, source has " +
               std::to_string(expected.size()));
      continue;
    }
    for (std::size_t k = 0; k < lane.size(); ++k) {
      if (!(ops[lane[k]].gate == *expected[k])) {
        add_(report, Violation::Kind::OrderMismatch, lane[k],
             "qubit " + std::to_string(q) + ": scheduled '" +
                 ops[lane[k]].gate.to_string() + "' where program order has '" +
                 expected[k]->to_string() + "'");
        break;
      }
    }
  }

  // Classical-control constraint re-audit (Sec. V), replayed in admission
  // order exactly as the constrained scheduler admits operations.
  if (options_.check_control_constraints) {
    const auto constraints = constraints_for_device(device_);
    if (!constraints.empty()) {
      std::vector<ScheduledGate> admitted;
      admitted.reserve(ops.size());
      for (const std::size_t i : order) {
        if (full_(report)) break;
        std::vector<ScheduledGate> running;
        for (const ScheduledGate& prior : admitted) {
          if (prior.overlaps(ops[i])) running.push_back(prior);
        }
        for (const auto& constraint : constraints) {
          if (!constraint->compatible(ops[i], running, device_)) {
            add_(report, Violation::Kind::ControlConflict, i,
                 ops[i].gate.to_string() + " at cycle " +
                     std::to_string(ops[i].start_cycle) + " violates '" +
                     constraint->name() + "'");
          }
        }
        admitted.push_back(ops[i]);
      }
    }
  }
  return report;
}

ValidityReport ValidityChecker::check_result(
    const CompilationResult& result) const {
  ValidityReport report = check_placement(result.routing.initial);
  report.merge(check_placement(result.routing.final));
  report.merge(check_circuit(result.final_circuit));
  if (options_.check_schedule && result.schedule.size() > 0) {
    report.merge(check_schedule(result.schedule, result.final_circuit));
  }
  return report;
}

}  // namespace qmap::verify
