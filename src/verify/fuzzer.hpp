// Differential fuzzing of the whole mapping stack.
//
// The harness manufactures seeded random circuits (Rng::derive_stream per
// circuit, so a report is bit-identical for a fixed base seed regardless
// of thread count), fans each across every applicable placer x router
// strategy on every device under test, runs the full Compiler pipeline,
// and checks two properties per run:
//
//   validity     — the ValidityChecker audit: coupling edges, CNOT
//                  directions, native gates, durations, Surface-17
//                  classical-control constraints;
//   equivalence  — the mapped circuit realizes the original under the
//                  reported placements. Clifford circuits use the exact
//                  tableau check at any width; everything else uses
//                  randomized state-vector equivalence (<= a width cap).
//
// Because every strategy is checked against the *same* original circuit,
// agreement between strategies is transitive: one strategy failing while
// its siblings pass pinpoints the guilty router/placer immediately.
//
// Failures are minimized with the delta-debugging Shrinker and (optional)
// dumped as QASM + JSON-seed reproducers that replay as ordinary unit
// tests (see verify/reproducer.hpp).
//
// Fault injection: the fuzzer can deliberately sabotage results after
// routing (drop the last SWAP, flip the last CX) to prove — in tests and
// demos — that the oracle actually catches real router bugs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/device.hpp"
#include "common/json.hpp"
#include "core/compiler.hpp"
#include "engine/thread_pool.hpp"
#include "verify/faults.hpp"
#include "verify/shrink.hpp"
#include "verify/validity.hpp"

namespace qmap::verify {

// FaultInjection + fault_name/fault_from_name/inject_fault moved to
// verify/faults.hpp (shared with the resilience fault injector); included
// above so existing users keep compiling unchanged.

enum class FailureKind { None, Validity, Equivalence, Exception };

[[nodiscard]] std::string failure_kind_name(FailureKind kind);

/// Outcome of one (circuit, device, placer, router) compile + check.
struct RunOutcome {
  FailureKind kind = FailureKind::None;
  std::string message;       // violation list / mismatch note / what()
  bool equivalence_checked = false;  // false when the width cap skipped it
  std::size_t final_gates = 0;
  std::size_t added_swaps = 0;
};

/// One strategy to fuzz. Unlike the portfolio engine's StrategySpec this
/// carries no deadline — the fuzzer wants failures, not wall-clock wins.
struct FuzzStrategy {
  std::string placer;
  std::string router;
  /// Append the token_swap_finisher pass between router and postroute, so
  /// the permutation-cleanup path is cross-checked by the same oracles.
  bool finisher = false;

  [[nodiscard]] std::string label() const {
    return placer + "+" + router + (finisher ? "+tsf" : "");
  }
};

struct FuzzOptions {
  /// Number of random circuits to generate.
  int num_circuits = 50;
  int min_qubits = 2;
  /// Circuits wider than a device skip that device.
  int max_qubits = 8;
  int min_gates = 4;
  int max_gates = 40;
  double two_qubit_fraction = 0.4;
  /// Draw gates from the Clifford set only: the exact tableau check then
  /// applies at any width, so 16/17-qubit devices fuzz at full speed.
  bool clifford_only = false;
  /// Per-circuit streams derive from this (Rng::derive_stream).
  std::uint64_t base_seed = 0xFADED;
  /// Worker threads (0 = hardware concurrency). The report is
  /// byte-identical for every thread count.
  int num_threads = 0;
  /// Random-state trials for the state-vector equivalence check.
  int trials = 3;
  /// Non-Clifford circuits on devices wider than this skip the
  /// equivalence check (validity is still audited).
  int max_statevector_qubits = 20;
  /// Placers/routers to pair up; empty = every known_placers()/known_
  /// routers() entry applicable to the device (reliability needs noise,
  /// shuttle needs shuttling support, exact/exhaustive are width-gated).
  std::vector<std::string> placers;
  std::vector<std::string> routers;
  /// Width gates for the exponential strategies.
  int exact_router_max_device = 6;
  int exhaustive_placer_max_device = 9;
  /// Routers that additionally fuzz with the token_swap_finisher pass
  /// appended (strategy label suffix "+tsf"); empty disables the variants.
  std::vector<std::string> finisher_routers = {"sabre", "bridge"};
  /// Planted bug applied to every run (harness self-test).
  FaultInjection fault = FaultInjection::None;
  /// Minimize failing circuits with the Shrinker.
  bool shrink_failures = true;
  /// When non-empty, dump each shrunk failure as a QASM + JSON reproducer
  /// into this directory (created if missing).
  std::string reproducer_dir;
  /// Observability sink (obs/): a campaign root span, one per-case span
  /// per generated circuit (explicitly parented across threads), a
  /// "fuzz.case_ms" timing histogram, and post-join run/failure counters.
  /// Not owned; null disables recording.
  obs::Observer* obs = nullptr;
};

/// One confirmed failure, fully replayable from (seed, device, strategy).
struct FuzzFailure {
  int circuit_index = -1;
  std::uint64_t seed = 0;  // the per-circuit derived stream seed
  std::string device;
  FuzzStrategy strategy;
  FailureKind kind = FailureKind::None;
  std::string message;
  Circuit circuit;            // original (pre-shrink) failing circuit
  Circuit shrunk;             // minimized (== circuit when shrinking off)
  std::size_t shrink_tests = 0;
  std::string reproducer_path;  // JSON path when dumped, else empty

  [[nodiscard]] std::string to_string() const;
};

/// Aggregate per-strategy tallies (summed over devices).
struct StrategyTally {
  FuzzStrategy strategy;
  std::size_t runs = 0;
  std::size_t failures = 0;
  std::size_t equivalence_skipped = 0;
  std::size_t total_added_swaps = 0;
};

struct FuzzReport {
  int circuits = 0;
  std::size_t runs = 0;
  std::vector<FuzzFailure> failures;
  std::vector<StrategyTally> tallies;
  double wall_ms = 0.0;
  int num_threads = 1;

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
  [[nodiscard]] std::string report() const;
  [[nodiscard]] Json to_json() const;
  /// Deterministic digest excluding wall-clock fields: byte-identical
  /// across runs and thread counts for a fixed base seed.
  [[nodiscard]] std::string fingerprint() const;
};

/// Compiles `circuit` onto `device` with one strategy and runs both
/// checks. This is the single source of truth shared by the fuzzer, the
/// reproducer replay, and the tests: a reproducer replays by calling
/// exactly this function with the recorded arguments.
[[nodiscard]] RunOutcome run_strategy(const Circuit& circuit,
                                      const Device& device,
                                      const FuzzStrategy& strategy,
                                      std::uint64_t seed, int trials = 3,
                                      FaultInjection fault =
                                          FaultInjection::None,
                                      int max_statevector_qubits = 20);

class DifferentialFuzzer {
 public:
  /// Validates strategy names eagerly and warms every device's distance
  /// cache so worker threads only read shared state.
  DifferentialFuzzer(std::vector<Device> devices, FuzzOptions options = {});

  [[nodiscard]] const std::vector<Device>& devices() const noexcept {
    return devices_;
  }
  /// The strategy pairings applicable to `device` under the options.
  [[nodiscard]] std::vector<FuzzStrategy> strategies_for(
      const Device& device) const;

  /// Runs the whole campaign on an internally owned pool.
  [[nodiscard]] FuzzReport run() const;
  /// Runs on a caller-owned pool.
  [[nodiscard]] FuzzReport run(ThreadPool& pool) const;

 private:
  std::vector<Device> devices_;
  FuzzOptions options_;
};

}  // namespace qmap::verify
