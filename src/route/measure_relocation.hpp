// Measurement relocation (Sec. VI-A device types):
//
//   "when not all qubits can be directly measured ... additional gates are
//    required ... to move the quantum state towards measurable qubits."
//
// Rewrites a routed physical circuit so that every measurement lands on a
// measurable qubit, inserting SWAP chains along shortest coupling paths.
// The placement is updated in place so end-to-end equivalence checking
// keeps working.
//
// Supported shape: measurements on non-measurable qubits must be terminal
// (no further non-measurement gate after the first relocation) — the
// standard read-out-at-the-end pattern. A mid-circuit measurement on a
// measurable qubit is always fine.
#pragma once

#include "arch/artifacts.hpp"
#include "arch/device.hpp"
#include "ir/circuit.hpp"
#include "layout/placement.hpp"

namespace qmap {

/// Returns the rewritten circuit; `placement_io` (the routing's final
/// placement) is advanced over the inserted SWAPs. Throws MappingError for
/// unsupported shapes (unitary gates after a relocated measurement, or no
/// free measurable qubit reachable). `artifacts` (optional) answers the
/// distance/shortest-path queries from the shared immutable bundle instead
/// of the device's lazy cache; results are identical either way.
[[nodiscard]] Circuit relocate_measurements(
    const Circuit& circuit, const Device& device, Placement& placement_io,
    const ArchArtifacts* artifacts = nullptr);

}  // namespace qmap
