#include "noise/reliability.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "common/error.hpp"
#include "ir/dag.hpp"

namespace qmap {

ReliabilityDistance::ReliabilityDistance(const Device& device)
    : num_qubits_(device.num_qubits()), device_(&device) {
  const NoiseModel& noise = device.noise();  // throws without a model
  (void)noise;
  const auto n = static_cast<std::size_t>(num_qubits_);
  cost_.assign(n * n, std::numeric_limits<double>::infinity());
  // Dijkstra from every source over SWAP log-error edge weights.
  for (int source = 0; source < num_qubits_; ++source) {
    auto row = cost_.begin() + static_cast<long>(source) * num_qubits_;
    row[source] = 0.0;
    using Entry = std::pair<double, int>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> open;
    open.emplace(0.0, source);
    while (!open.empty()) {
      const auto [d, u] = open.top();
      open.pop();
      if (d > row[u]) continue;
      for (const int v : device.coupling().neighbors(u)) {
        const double w = device.noise().swap_log_cost(u, v);
        if (row[u] + w < row[v]) {
          row[v] = row[u] + w;
          open.emplace(row[v], v);
        }
      }
    }
  }
}

double ReliabilityDistance::cost(int a, int b) const {
  if (a < 0 || a >= num_qubits_ || b < 0 || b >= num_qubits_) {
    throw DeviceError("reliability distance: qubit out of range");
  }
  return cost_[static_cast<std::size_t>(a) *
                   static_cast<std::size_t>(num_qubits_) +
               static_cast<std::size_t>(b)];
}

double ReliabilityDistance::edge_gate_cost(int a, int b) const {
  return -std::log(1.0 - device_->noise().two_qubit_error(a, b));
}

double ReliabilityDistance::swap_cost(int a, int b) const {
  return device_->noise().swap_log_cost(a, b);
}

Placement ReliabilityPlacer::place(const Circuit& circuit,
                                   const Device& device) {
  if (circuit.num_qubits() > device.num_qubits()) {
    throw MappingError("circuit wider than device");
  }
  const ReliabilityDistance distance(device);
  const InteractionGraph interactions(circuit);
  const int n = circuit.num_qubits();
  const int m = device.num_qubits();

  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return interactions.degree(a) > interactions.degree(b);
  });

  std::vector<int> program_to_phys(static_cast<std::size_t>(n), -1);
  std::vector<bool> used(static_cast<std::size_t>(m), false);
  for (const int k : order) {
    check_cancelled();  // one poll per O(n*m) placement decision
    int best_phys = -1;
    double best_score = std::numeric_limits<double>::infinity();
    for (int phys = 0; phys < m; ++phys) {
      if (used[static_cast<std::size_t>(phys)]) continue;
      double score = 0.0;
      bool any_partner = false;
      for (int other = 0; other < n; ++other) {
        const int w = interactions.weight(k, other);
        if (w == 0 || program_to_phys[static_cast<std::size_t>(other)] < 0) {
          continue;
        }
        any_partner = true;
        score += w * distance.cost(
                         phys, program_to_phys[static_cast<std::size_t>(other)]);
      }
      if (!any_partner) {
        // Seed position: total reliability-weighted centrality plus the
        // qubit's own single-qubit quality.
        for (int other = 0; other < m; ++other) {
          score += distance.cost(phys, other);
        }
        score += 100.0 * device.noise().single_qubit_error(phys);
      }
      if (score < best_score) {
        best_score = score;
        best_phys = phys;
      }
    }
    program_to_phys[static_cast<std::size_t>(k)] = best_phys;
    used[static_cast<std::size_t>(best_phys)] = true;
  }
  return Placement::from_program_map(program_to_phys, m);
}

RoutingResult ReliabilityRouter::route(const Circuit& circuit,
                                       const Device& device,
                                       const Placement& initial) {
  const auto start_time = std::chrono::steady_clock::now();
  check_routable(circuit, device);
  const ReliabilityDistance distance(device);
  const CouplingGraph& coupling = device.coupling();
  DependencyDag dag(circuit);
  RoutingEmitter emitter(device, initial,
                         circuit.name() + "@" + device.name());

  std::vector<double> decay(static_cast<std::size_t>(device.num_qubits()),
                            1.0);
  int swaps_since_reset = 0;
  int swaps_since_progress = 0;
  const int stall_limit = 10 * std::max(1, device.num_qubits());

  const auto executable = [&](int node) {
    const Gate& gate = circuit.gate(static_cast<std::size_t>(node));
    if (!gate.is_two_qubit()) return true;
    return coupling.connected(
        emitter.placement().phys_of_program(gate.qubits[0]),
        emitter.placement().phys_of_program(gate.qubits[1]));
  };

  const auto flush_executable = [&] {
    bool progressed = true;
    bool any = false;
    while (progressed) {
      progressed = false;
      const std::vector<int> ready = dag.ready();
      for (const int node : ready) {
        if (!executable(node)) continue;
        emitter.emit_program_gate(
            circuit.gate(static_cast<std::size_t>(node)));
        dag.mark_scheduled(node);
        progressed = true;
        any = true;
      }
    }
    return any;
  };

  const auto gate_cost = [&](int node, const Placement& placement) {
    const Gate& gate = circuit.gate(static_cast<std::size_t>(node));
    return distance.cost(placement.phys_of_program(gate.qubits[0]),
                         placement.phys_of_program(gate.qubits[1]));
  };

  while (!dag.all_scheduled()) {
    if (flush_executable()) {
      swaps_since_progress = 0;
      continue;
    }
    const std::vector<int> front = dag.ready_two_qubit();
    if (front.empty()) {
      throw MappingError("reliability router: stalled");
    }
    std::vector<int> extended;
    for (std::size_t i = 0;
         i < circuit.size() &&
         extended.size() < static_cast<std::size_t>(options_.extended_window);
         ++i) {
      const int node = static_cast<int>(i);
      if (dag.color(node) == NodeColor::Scheduled) continue;
      if (std::find(front.begin(), front.end(), node) != front.end()) continue;
      if (circuit.gate(i).is_two_qubit()) extended.push_back(node);
    }

    std::vector<bool> relevant(static_cast<std::size_t>(device.num_qubits()),
                               false);
    for (const int node : front) {
      const Gate& gate = circuit.gate(static_cast<std::size_t>(node));
      for (const int q : gate.qubits) {
        relevant[static_cast<std::size_t>(
            emitter.placement().phys_of_program(q))] = true;
      }
    }

    double best_score = std::numeric_limits<double>::infinity();
    int best_a = -1;
    int best_b = -1;
    for (const auto& edge : coupling.edges()) {
      if (!relevant[static_cast<std::size_t>(edge.a)] &&
          !relevant[static_cast<std::size_t>(edge.b)]) {
        continue;
      }
      Placement trial = emitter.placement();
      trial.apply_swap(edge.a, edge.b);
      double front_term = 0.0;
      for (const int node : front) front_term += gate_cost(node, trial);
      front_term /= static_cast<double>(front.size());
      double extended_term = 0.0;
      if (!extended.empty()) {
        for (const int node : extended) {
          extended_term += gate_cost(node, trial);
        }
        extended_term /= static_cast<double>(extended.size());
      }
      const double decay_factor =
          std::max(decay[static_cast<std::size_t>(edge.a)],
                   decay[static_cast<std::size_t>(edge.b)]);
      // The SWAP itself costs log-error; add it so noisy couplers are used
      // only when the downstream gain justifies them.
      const double score =
          decay_factor * (distance.swap_cost(edge.a, edge.b) + front_term +
                          options_.extended_weight * extended_term);
      if (score < best_score) {
        best_score = score;
        best_a = edge.a;
        best_b = edge.b;
      }
    }
    if (best_a < 0) throw MappingError("reliability router: no candidate");

    ++swaps_since_progress;
    if (swaps_since_progress > stall_limit) {
      const Gate& gate = circuit.gate(static_cast<std::size_t>(front.front()));
      const int pa = emitter.placement().phys_of_program(gate.qubits[0]);
      const int pb = emitter.placement().phys_of_program(gate.qubits[1]);
      const std::vector<int> path = phys_shortest_path(device, pa, pb);
      for (std::size_t i = 0; i + 2 < path.size(); ++i) {
        emitter.emit_swap(path[i], path[i + 1]);
      }
      swaps_since_progress = 0;
      continue;
    }

    emitter.emit_swap(best_a, best_b);
    decay[static_cast<std::size_t>(best_a)] += options_.decay_increment;
    decay[static_cast<std::size_t>(best_b)] += options_.decay_increment;
    if (++swaps_since_reset >= options_.decay_reset_interval) {
      std::fill(decay.begin(), decay.end(), 1.0);
      swaps_since_reset = 0;
    }
  }

  const double runtime_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_time)
          .count();
  return std::move(emitter).finish(initial, runtime_ms);
}

}  // namespace qmap
