// SABRE-style heuristic router (Li, Ding, Xie [40] — the "look-ahead"
// heuristic family of Sec. III-B): repeatedly executes every ready gate
// that is already physically adjacent, then picks the SWAP that most
// reduces a weighted distance score over the front layer plus an extended
// lookahead window, with a decay term that discourages ping-ponging the
// same qubits.
#pragma once

#include "route/router.hpp"

namespace qmap {

class SabreRouter final : public Router {
 public:
  struct Options {
    int extended_window = 20;      // lookahead: # future 2q gates scored
    double extended_weight = 0.5;  // weight of the lookahead term
    double decay_increment = 0.1;  // per-use decay added to a qubit
    int decay_reset_interval = 5;  // SWAPs between decay resets
    /// Use the commutation-aware dependency graph ([58]): commuting gates
    /// (e.g. the QFT's controlled-phase ladder) may execute in any order,
    /// widening the front layer the router can satisfy.
    bool use_commutation = false;
  };

  SabreRouter() = default;
  explicit SabreRouter(const Options& options) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "sabre"; }
  [[nodiscard]] RoutingResult route(const Circuit& circuit,
                                    const Device& device,
                                    const Placement& initial) override;

  /// Streaming is supported on the sequential DAG only: the
  /// commutation-aware dependency rule needs unbounded lookahead.
  [[nodiscard]] bool supports_streaming() const override {
    return !options_.use_commutation;
  }
  StreamRouteStats route_stream(GateSource& source, const Device& device,
                                const Placement& initial, GateSink& sink,
                                const StreamRouteOptions& options) override;

 private:
  Options options_;
};

}  // namespace qmap
