# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_commutation[1]_include.cmake")
include("/root/repo/build/tests/test_configs[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_decompose[1]_include.cmake")
include("/root/repo/build/tests/test_device_types[1]_include.cmake")
include("/root/repo/build/tests/test_explore[1]_include.cmake")
include("/root/repo/build/tests/test_export_and_bidir[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_layout[1]_include.cmake")
include("/root/repo/build/tests/test_noise[1]_include.cmake")
include("/root/repo/build/tests/test_peephole[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_qasm[1]_include.cmake")
include("/root/repo/build/tests/test_rendering[1]_include.cmake")
include("/root/repo/build/tests/test_route[1]_include.cmake")
include("/root/repo/build/tests/test_schedule[1]_include.cmake")
include("/root/repo/build/tests/test_shuttle[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_stabilizer[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
