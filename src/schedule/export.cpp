#include "schedule/export.hpp"

#include <algorithm>
#include <map>

#include "qasm/cqasm.hpp"

namespace qmap {

std::string to_cqasm_bundled(const Schedule& schedule, bool cycle_comments) {
  // Group operations by start cycle (ordered).
  std::map<int, std::vector<const ScheduledGate*>> bundles;
  for (const ScheduledGate& op : schedule.operations()) {
    if (op.gate.kind == GateKind::Barrier) continue;
    bundles[op.start_cycle].push_back(&op);
  }
  std::string out = "version 1.0\n";
  out += "qubits " + std::to_string(schedule.num_qubits()) + "\n";
  for (const auto& [cycle, ops] : bundles) {
    if (cycle_comments) {
      out += "# cycle " + std::to_string(cycle) + "\n";
    }
    if (ops.size() == 1) {
      out += cqasm_instruction(ops.front()->gate) + "\n";
      continue;
    }
    out += "{ ";
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (i != 0) out += " | ";
      out += cqasm_instruction(ops[i]->gate);
    }
    out += " }\n";
  }
  return out;
}

}  // namespace qmap
