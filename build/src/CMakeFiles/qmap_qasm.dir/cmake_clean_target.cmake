file(REMOVE_RECURSE
  "libqmap_qasm.a"
)
