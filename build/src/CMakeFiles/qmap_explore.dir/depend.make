# Empty dependencies file for qmap_explore.
# This may be replaced when dependencies are built.
