file(REMOVE_RECURSE
  "CMakeFiles/test_shuttle.dir/test_shuttle.cpp.o"
  "CMakeFiles/test_shuttle.dir/test_shuttle.cpp.o.d"
  "test_shuttle"
  "test_shuttle.pdb"
  "test_shuttle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shuttle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
