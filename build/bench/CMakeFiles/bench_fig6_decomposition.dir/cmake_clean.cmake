file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_decomposition.dir/bench_fig6_decomposition.cpp.o"
  "CMakeFiles/bench_fig6_decomposition.dir/bench_fig6_decomposition.cpp.o.d"
  "bench_fig6_decomposition"
  "bench_fig6_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
