// Router property tests.
//
// For every (router, device, workload) combination:
//   1. the routed circuit only uses coupling-legal interactions/orientations
//      (after SWAP expansion and direction fixing),
//   2. the routed circuit is unitarily equivalent to the input under the
//      reported initial/final placements,
//   3. routing statistics are internally consistent.
// Plus router-specific guarantees (exact <= heuristics on shared
// instances; naive >= smarter routers on the Fig. 3 example).
#include <gtest/gtest.h>

#include "arch/builtin.hpp"
#include "core/compiler.hpp"
#include "decompose/decomposer.hpp"
#include "layout/placers.hpp"
#include "route/astar_layer.hpp"
#include "route/exact.hpp"
#include "route/naive.hpp"
#include "route/qmap_router.hpp"
#include "route/sabre.hpp"
#include "sim/equivalence.hpp"
#include "verify/validity.hpp"
#include "workloads/workloads.hpp"

namespace qmap {
namespace {

/// Shared post-condition for every routing result: after SWAP expansion
/// and direction repair the circuit passes the verify-subsystem audit
/// (coupling edges, orientations, measurability) and is unitarily
/// equivalent to the input under the reported placements. Swap-count
/// assertions alone would accept a router that silently corrupts the
/// permutation; this closes that hole.
void expect_routed_valid_and_equivalent(const Circuit& original,
                                        const Device& device,
                                        const RoutingResult& result) {
  Circuit legal = expand_swaps(result.circuit, device);
  legal = fix_cx_directions(legal, device);
  verify::CheckOptions options;
  options.require_native = false;  // audit happens before gate lowering
  const verify::ValidityReport report =
      verify::ValidityChecker(device, options).check_circuit(legal);
  EXPECT_TRUE(report.ok()) << report.to_string();
  Rng rng(99);
  EXPECT_TRUE(mapping_equivalent(original.unitary_part(),
                                 legal.unitary_part(),
                                 result.initial.wire_to_phys(),
                                 result.final.wire_to_phys(), rng, 3));
}

struct RouteCase {
  std::string router;
  std::string device;
  std::string workload;
};

std::string case_name(const testing::TestParamInfo<RouteCase>& info) {
  return info.param.router + "_" + info.param.device + "_" +
         info.param.workload;
}

Device get_device(const std::string& name) {
  if (name == "qx4") return devices::ibm_qx4();
  if (name == "qx5") return devices::ibm_qx5();
  if (name == "s17") return devices::surface17();
  if (name == "s7") return devices::surface7();
  if (name == "line5") return devices::linear(5);
  if (name == "grid9") return devices::grid(3, 3);
  throw std::runtime_error("unknown device " + name);
}

Circuit get_workload(const std::string& name) {
  Rng rng(2026);
  if (name == "fig1") return workloads::fig1_example();
  if (name == "ghz4") return workloads::ghz(4);
  if (name == "ghz5") return workloads::ghz(5);
  if (name == "qft4") return workloads::qft(4);
  if (name == "bv4") {
    Circuit c = workloads::bernstein_vazirani({1, 0, 1}).unitary_part();
    return c;
  }
  if (name == "random") return workloads::random_circuit(4, 30, rng, 0.4);
  if (name == "random5") return workloads::random_circuit(5, 40, rng, 0.4);
  throw std::runtime_error("unknown workload " + name);
}

class RouterProperty : public testing::TestWithParam<RouteCase> {};

TEST_P(RouterProperty, RoutedCircuitIsLegalAndEquivalent) {
  const RouteCase& param = GetParam();
  const Device device = get_device(param.device);
  const Circuit circuit = get_workload(param.workload);
  ASSERT_LE(circuit.num_qubits(), device.num_qubits());

  // Route the (un-lowered) circuit directly: routers accept any arity-<=2
  // gates. CPhase on directed devices cannot be direction-fixed, so lower
  // first exactly as the compiler pipeline does.
  const Circuit input = lower_to_device(circuit, device, /*keep_swaps=*/true);
  const Placement initial = GreedyPlacer().place(input, device);
  const auto router = make_router(param.router);
  const RoutingResult result = router->route(input, device, initial);

  // Stats consistency: output SWAPs = routing SWAPs + program SWAPs
  // (e.g. the QFT's final reversal SWAPs are semantic gates, not routing).
  std::size_t program_swaps = 0;
  for (const Gate& gate : input) {
    if (gate.kind == GateKind::SWAP) ++program_swaps;
  }
  std::size_t swap_count = 0;
  for (const Gate& gate : result.circuit) {
    if (gate.kind == GateKind::SWAP) ++swap_count;
  }
  EXPECT_EQ(swap_count, result.added_swaps + program_swaps);
  EXPECT_EQ(result.initial, initial);

  // Legality after SWAP expansion + direction repair.
  Circuit legal = expand_swaps(result.circuit, device);
  legal = fix_cx_directions(legal, device);
  EXPECT_TRUE(respects_coupling(legal, device));

  // Unitary equivalence under the reported placements.
  Rng rng(99);
  EXPECT_TRUE(mapping_equivalent(circuit, legal,
                                 result.initial.wire_to_phys(),
                                 result.final.wire_to_phys(), rng, 3));
}

const char* kRouters[] = {"naive", "sabre", "astar", "qmap"};
const char* kDevices[] = {"qx4", "s17", "s7", "line5", "grid9"};
const char* kWorkloads[] = {"fig1", "ghz4", "qft4", "random"};

std::vector<RouteCase> all_cases() {
  std::vector<RouteCase> cases;
  for (const char* router : kRouters) {
    for (const char* device : kDevices) {
      for (const char* workload : kWorkloads) {
        cases.push_back({router, device, workload});
      }
    }
  }
  // Exact router only on the small device (by design).
  for (const char* workload : kWorkloads) {
    cases.push_back({"exact", "qx4", workload});
    cases.push_back({"exact", "line5", workload});
  }
  // Bigger instances for the scalable routers.
  for (const char* router : {"sabre", "astar", "qmap"}) {
    cases.push_back({router, "qx5", "random5"});
    cases.push_back({router, "s17", "random5"});
    cases.push_back({router, "qx5", "ghz5"});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, RouterProperty,
                         testing::ValuesIn(all_cases()), case_name);

// --- Router-specific guarantees ---

TEST(ExactRouter, NeverWorseThanHeuristicsOnQx4) {
  // Exact minimality holds w.r.t. the given total gate order, so compare on
  // circuits whose dependency DAG is a chain (each CNOT shares a qubit with
  // its predecessor): there the heuristics have no reordering freedom.
  const Device qx4 = devices::ibm_qx4();
  Rng rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    Circuit circuit(4, "chain");
    int previous = 0;
    for (int g = 0; g < 10; ++g) {
      int other =
          static_cast<int>(rng.index(static_cast<std::size_t>(3)));
      if (other >= previous) ++other;
      circuit.cx(previous, other);
      previous = other;
    }
    const Placement initial =
        Placement::identity(circuit.num_qubits(), qx4.num_qubits());
    const RoutingResult exact = ExactRouter().route(circuit, qx4, initial);
    expect_routed_valid_and_equivalent(circuit, qx4, exact);
    for (const char* name : {"naive", "sabre", "astar", "qmap"}) {
      const RoutingResult heuristic =
          make_router(name)->route(circuit, qx4, initial);
      EXPECT_LE(exact.added_swaps, heuristic.added_swaps)
          << "exact beat by " << name << " on trial " << trial;
      expect_routed_valid_and_equivalent(circuit, qx4, heuristic);
    }
  }
}

TEST(ExactRouter, ZeroSwapsWhenAlreadyRoutable) {
  const Device line = devices::linear(4);
  Circuit c(4);
  c.cx(0, 1).cx(1, 2).cx(2, 3);
  const RoutingResult result = ExactRouter().route(
      c, line, Placement::identity(4, 4));
  EXPECT_EQ(result.added_swaps, 0u);
  expect_routed_valid_and_equivalent(c, line, result);
}

TEST(ExactRouter, SingleSwapOnLineEndToEnd) {
  // cx(0, 2) on a 3-qubit line needs exactly one SWAP.
  const Device line = devices::linear(3);
  Circuit c(3);
  c.cx(0, 2);
  const RoutingResult result =
      ExactRouter().route(c, line, Placement::identity(3, 3));
  EXPECT_EQ(result.added_swaps, 1u);
  expect_routed_valid_and_equivalent(c, line, result);
}

TEST(ExactRouter, ThrowsWhenStateBudgetExceeded) {
  ExactRouter::Options options;
  options.max_states = 10;
  const Device grid = devices::grid(3, 3);
  Rng rng(5);
  const Circuit circuit = workloads::random_circuit(8, 30, rng, 0.7);
  EXPECT_THROW((void)ExactRouter(options).route(
                   circuit, grid, Placement::identity(8, 9)),
               MappingError);
}

TEST(Routers, NaiveIsTheOverheadBaselineOnFig1Skeleton) {
  // Fig. 3: the naive solution "yields a significant overhead", heuristics
  // are "significantly cheaper", the exact result is minimal.
  const Device qx4 = devices::ibm_qx4();
  const Circuit skeleton = workloads::fig1_skeleton();
  const Placement initial =
      Placement::identity(skeleton.num_qubits(), qx4.num_qubits());
  const RoutingResult naive = NaiveRouter().route(skeleton, qx4, initial);
  const RoutingResult exact = ExactRouter().route(skeleton, qx4, initial);
  EXPECT_LE(exact.added_swaps, naive.added_swaps);
  expect_routed_valid_and_equivalent(skeleton, qx4, naive);
  expect_routed_valid_and_equivalent(skeleton, qx4, exact);
}

TEST(Routers, RejectArityThreeGates) {
  const Device qx4 = devices::ibm_qx4();
  Circuit c(3);
  c.ccx(0, 1, 2);
  for (const char* name : {"naive", "sabre", "astar", "exact", "qmap"}) {
    EXPECT_THROW((void)make_router(name)->route(
                     c, qx4, Placement::identity(3, 5)),
                 MappingError)
        << name;
  }
}

TEST(Routers, RejectOversizedCircuits) {
  const Device qx4 = devices::ibm_qx4();
  const Circuit c = workloads::ghz(6);
  for (const char* name : {"naive", "sabre", "astar", "exact", "qmap"}) {
    EXPECT_THROW((void)make_router(name)->route(
                     c, qx4, Placement::identity(6, 6)),
                 MappingError)
        << name;
  }
}

TEST(Routers, EmptyCircuitRoutesToEmpty) {
  const Device s7 = devices::surface7();
  const Circuit c(3, "empty");
  for (const char* name : {"naive", "sabre", "astar", "exact", "qmap"}) {
    const RoutingResult result =
        make_router(name)->route(c, s7, Placement::identity(3, 7));
    EXPECT_EQ(result.circuit.size(), 0u) << name;
    EXPECT_EQ(result.added_swaps, 0u) << name;
  }
}

TEST(Routers, SingleQubitOnlyCircuitNeedsNoSwaps) {
  const Device qx4 = devices::ibm_qx4();
  Circuit c(4);
  c.h(0).t(1).x(2).rz(0.4, 3);
  for (const char* name : {"naive", "sabre", "astar", "exact", "qmap"}) {
    const RoutingResult result =
        make_router(name)->route(c, qx4, Placement::identity(4, 5));
    EXPECT_EQ(result.added_swaps, 0u) << name;
    EXPECT_EQ(result.circuit.size(), c.size()) << name;
    expect_routed_valid_and_equivalent(c, qx4, result);
  }
}

TEST(Routers, MeasurementsSurviveRouting) {
  const Device s7 = devices::surface7();
  Circuit c = workloads::ghz(3);
  c.measure_all();
  const RoutingResult result =
      SabreRouter().route(c, s7, GreedyPlacer().place(c, s7));
  std::size_t measures = 0;
  for (const Gate& gate : result.circuit) {
    if (gate.kind == GateKind::Measure) ++measures;
  }
  EXPECT_EQ(measures, 3u);
  expect_routed_valid_and_equivalent(c, s7, result);
}

TEST(RoutingEmitter, RefusesNonAdjacentTwoQubitGate) {
  const Device line = devices::linear(3);
  RoutingEmitter emitter(line, Placement::identity(3, 3), "t");
  EXPECT_THROW(emitter.emit_program_gate(make_gate(GateKind::CX, {0, 2})),
               MappingError);
}

TEST(RoutingEmitter, RefusesNonAdjacentSwap) {
  const Device line = devices::linear(3);
  RoutingEmitter emitter(line, Placement::identity(3, 3), "t");
  EXPECT_THROW(emitter.emit_swap(0, 2), MappingError);
}

TEST(RespectsCoupling, DetectsBadOrientation) {
  const Device qx4 = devices::ibm_qx4();
  Circuit c(5);
  c.cx(0, 1);  // reversed orientation
  EXPECT_FALSE(respects_coupling(c, qx4));
  Circuit ok(5);
  ok.cx(1, 0);
  EXPECT_TRUE(respects_coupling(ok, qx4));
}

}  // namespace
}  // namespace qmap
