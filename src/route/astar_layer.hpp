// Layer-based A* router in the style of Zulehner, Paler, Wille [54] — the
// heuristic used for Fig. 3(c) of the paper.
//
// The circuit is split into ASAP layers of disjoint-qubit gates. For every
// layer whose two-qubit gates are not all executable, an A* search over
// placements finds a minimal SWAP sequence making the *whole layer*
// executable at once. The per-layer heuristic
//     h = ceil( sum_g (dist(g) - 1) / 2 )
// is admissible (one SWAP moves two wires, and layer gates are
// qubit-disjoint), so each layer is solved with a minimal number of SWAPs.
// An optional lookahead term biases the search toward placements that also
// help the following layers (Sec. III-B "look-ahead feature").
#pragma once

#include "route/router.hpp"

namespace qmap {

class AStarLayerRouter final : public Router {
 public:
  struct Options {
    /// Weight of the next-layers term added to h (0 = per-layer optimal).
    double lookahead_weight = 0.0;
    /// Number of subsequent layers included in the lookahead term.
    int lookahead_layers = 1;
    /// A* node-expansion budget per layer before falling back to
    /// shortest-path routing for that layer.
    std::size_t max_expansions = 200000;
  };

  AStarLayerRouter() = default;
  explicit AStarLayerRouter(const Options& options) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "astar_layer"; }
  [[nodiscard]] RoutingResult route(const Circuit& circuit,
                                    const Device& device,
                                    const Placement& initial) override;

 private:
  Options options_;
};

}  // namespace qmap
