// E13 / Sec. VI-C — shuttling as an alternative to SWAP-based routing on
// silicon quantum-dot arrays.
//
// "The electron movement can be interpreted either as a change in the
//  device connectivity or as an alternative qubit routing not based on
//  SWAP gates. Specialized mappers are required to take full advantage of
//  these capabilities."
//
// Compares the SWAP-only SABRE router against the shuttle-aware router on
// dot arrays at varying occupancy (program qubits / dots). Cost unit:
// native two-qubit-equivalent operations (SWAP = 3, Move = 1). Expected
// shape: the shuttle router's advantage grows as occupancy drops (more
// empty dots to move through) and vanishes at 100% occupancy.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "route/sabre.hpp"
#include "route/shuttle.hpp"

namespace {

using namespace qmap;
using namespace qmap::bench;

void print_figure() {
  paper_note("Sec. VI-C: shuttling routing on quantum-dot arrays.");
  section("Routing cost vs array occupancy (2x5 dot array, random "
          "circuits, native-2q-op units)");
  TextTable table({"program qubits", "occupancy %", "swap-only ops",
                   "shuttle ops (3*swap+move)", "moves", "saving %"});
  const Device dots = devices::quantum_dot_array(2, 5);
  Rng rng(17);
  for (const int n : {3, 4, 5, 6, 8, 10}) {
    double swap_only_total = 0.0;
    double shuttle_total = 0.0;
    double moves_total = 0.0;
    const int trials = 5;
    for (int trial = 0; trial < trials; ++trial) {
      const Circuit circuit = workloads::random_circuit(n, 6 * n, rng, 0.5);
      const Placement initial = GreedyPlacer().place(circuit, dots);
      const RoutingResult swapped =
          SabreRouter().route(circuit, dots, initial);
      const RoutingResult shuttled =
          ShuttleRouter().route(circuit, dots, initial);
      swap_only_total += 3.0 * static_cast<double>(swapped.added_swaps);
      shuttle_total += 3.0 * static_cast<double>(shuttled.added_swaps) +
                       static_cast<double>(shuttled.added_moves);
      moves_total += static_cast<double>(shuttled.added_moves);
      // Sanity: both must be correct.
      Rng verify_rng(5);
      const Circuit legal = expand_swaps(shuttled.circuit, dots);
      if (!mapping_equivalent(circuit, legal,
                              shuttled.initial.wire_to_phys(),
                              shuttled.final.wire_to_phys(), verify_rng, 2)) {
        std::cerr << "FATAL: shuttle routing incorrect\n";
        std::exit(1);
      }
    }
    const double saving =
        swap_only_total > 0.0
            ? 100.0 * (1.0 - shuttle_total / swap_only_total)
            : 0.0;
    table.add_row({TextTable::num(n),
                   TextTable::num(100.0 * n / dots.num_qubits(), 0),
                   TextTable::num(swap_only_total / trials, 1),
                   TextTable::num(shuttle_total / trials, 1),
                   TextTable::num(moves_total / trials, 1),
                   TextTable::num(saving, 1)});
  }
  std::cout << table.str();

  section("End-to-end: QFT-4 on a 2x4 dot array through the full compiler");
  CompilerOptions options;
  options.router = "shuttle";
  const Device array = devices::quantum_dot_array(2, 4);
  const Compiler compiler(array, options);
  const CompilationResult result = compiler.compile(workloads::qft(4));
  std::cout << result.report();
  if (!Compiler::verify(result)) {
    std::cerr << "FATAL: pipeline verification failed\n";
    std::exit(1);
  }
  std::cout << "verification: EQUIVALENT\n";
}

void BM_ShuttleRouter(benchmark::State& state) {
  const Device dots = devices::quantum_dot_array(2, 5);
  Rng rng(17);
  const Circuit circuit = workloads::random_circuit(5, 30, rng, 0.5);
  const Placement initial = GreedyPlacer().place(circuit, dots);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShuttleRouter().route(circuit, dots, initial));
  }
}
BENCHMARK(BM_ShuttleRouter);

void BM_SwapOnlyRouterSameInstance(benchmark::State& state) {
  const Device dots = devices::quantum_dot_array(2, 5);
  Rng rng(17);
  const Circuit circuit = workloads::random_circuit(5, 30, rng, 0.5);
  const Placement initial = GreedyPlacer().place(circuit, dots);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SabreRouter().route(circuit, dots, initial));
  }
}
BENCHMARK(BM_SwapOnlyRouterSameInstance);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
