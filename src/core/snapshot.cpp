#include "core/snapshot.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qmap {

ExecutionSnapshot::ExecutionSnapshot(Circuit circuit, const Device& device,
                                     Placement initial)
    : circuit_(std::move(circuit)),
      device_(&device),
      initial_(initial),
      current_(std::move(initial)),
      schedule_(circuit_.num_qubits()) {
  if (circuit_.num_qubits() != device.num_qubits()) {
    throw MappingError(
        "execution snapshot expects a routed circuit on physical qubits");
  }
  dag_ = std::make_unique<DependencyDag>(circuit_);
  if (device.has_control_constraints()) {
    constraints_ = surface_control_constraints();
  }
  priority_.assign(dag_->num_nodes(), 0.0);
  for (std::size_t i = dag_->num_nodes(); i-- > 0;) {
    double downstream = 0.0;
    for (const int succ : dag_->successors(static_cast<int>(i))) {
      downstream =
          std::max(downstream, priority_[static_cast<std::size_t>(succ)]);
    }
    priority_[i] = downstream + device.cycles_for(circuit_.gate(i));
  }
  end_cycle_.assign(dag_->num_nodes(), 0);
  qubit_busy_.assign(static_cast<std::size_t>(circuit_.num_qubits()), 0);
}

bool ExecutionSnapshot::step() {
  if (dag_->all_scheduled()) return false;
  // Highest-priority ready gate.
  std::vector<int> ready = dag_->ready();
  if (ready.empty()) {
    throw MappingError("execution snapshot: no ready gate (cyclic DAG?)");
  }
  std::stable_sort(ready.begin(), ready.end(), [&](int a, int b) {
    return priority_[static_cast<std::size_t>(a)] >
           priority_[static_cast<std::size_t>(b)];
  });
  const int node = ready.front();
  const Gate& gate = circuit_.gate(static_cast<std::size_t>(node));
  const int duration = device_->cycles_for(gate);

  int earliest = 0;
  for (const int pred : dag_->predecessors(node)) {
    earliest = std::max(earliest, end_cycle_[static_cast<std::size_t>(pred)]);
  }
  for (const int q : gate.qubits) {
    earliest = std::max(earliest, qubit_busy_[static_cast<std::size_t>(q)]);
  }
  // Earliest feasible cycle under the control constraints.
  int start = earliest;
  const int horizon = schedule_.total_cycles() + duration + 1;
  while (true) {
    const ScheduledGate candidate{gate, start, duration};
    bool allowed = true;
    for (const auto& constraint : constraints_) {
      if (!constraint->compatible(candidate, schedule_.operations(),
                                  *device_)) {
        allowed = false;
        break;
      }
    }
    if (allowed) break;
    ++start;
    if (start > horizon + earliest) {
      throw MappingError("execution snapshot: no feasible start cycle");
    }
  }

  schedule_.add(ScheduledGate{gate, start, duration});
  end_cycle_[static_cast<std::size_t>(node)] = start + duration;
  for (const int q : gate.qubits) {
    qubit_busy_[static_cast<std::size_t>(q)] = start + duration;
  }
  if (gate.kind == GateKind::SWAP) {
    current_.apply_swap(gate.qubits[0], gate.qubits[1]);
  }
  dag_->mark_scheduled(node);
  return true;
}

int ExecutionSnapshot::run_to_completion() {
  while (step()) {
  }
  return schedule_.total_cycles();
}

std::map<std::pair<int, int>, std::string>
ExecutionSnapshot::control_settings() const {
  std::map<std::pair<int, int>, std::string> out;
  if (device_->frequency_groups().empty()) return out;
  for (const ScheduledGate& op : schedule_.operations()) {
    if (!op.gate.is_unitary() || gate_info(op.gate.kind).arity != 1) continue;
    const int group = device_->frequency_group(op.gate.qubits[0]);
    if (group < 0) continue;
    for (int c = op.start_cycle; c < op.end_cycle(); ++c) {
      out[{c, group}] = op.gate.to_string().substr(
          0, op.gate.to_string().find(' '));  // pulse mnemonic only
    }
  }
  return out;
}

std::string ExecutionSnapshot::to_string() const {
  std::string out = "ExecutionSnapshot: " +
                    std::to_string(dag_->num_scheduled()) + "/" +
                    std::to_string(dag_->num_nodes()) + " gates scheduled\n";
  out += "  ready: {";
  bool first = true;
  for (const int node : dag_->ready()) {
    if (!first) out += ", ";
    first = false;
    out += std::to_string(node);
  }
  out += "}\n";
  out += "  initial placement: " + initial_.to_string() + "\n";
  out += "  current placement: " + current_.to_string() + "\n";
  out += "  partial schedule: " + std::to_string(schedule_.size()) +
         " ops, " + std::to_string(schedule_.total_cycles()) + " cycles\n";
  return out;
}

}  // namespace qmap
