#include "noise/trajectory.hpp"

#include "common/error.hpp"
#include "sim/statevector.hpp"

namespace qmap {
namespace {

/// Applies a uniformly random non-identity Pauli string over `qubits`
/// (the depolarizing-channel trajectory unravelling: one fault event per
/// gate, drawn from the 4^k - 1 non-identity Paulis, matching the per-gate
/// error probability the ESP estimator uses).
void inject_pauli(StateVector& state, const std::vector<int>& qubits,
                  Rng& rng) {
  static const GateKind paulis[] = {GateKind::I, GateKind::X, GateKind::Y,
                                    GateKind::Z};
  const std::size_t combinations =
      (std::size_t{1} << (2 * qubits.size())) - 1;  // 4^k - 1
  std::size_t draw = rng.index(combinations) + 1;   // skip all-identity
  for (const int q : qubits) {
    const GateKind kind = paulis[draw & 3];
    draw >>= 2;
    if (kind != GateKind::I) state.apply(make_gate(kind, {q}));
  }
}

}  // namespace

TrajectoryResult simulate_noisy(const Circuit& circuit, const Device& device,
                                Rng& rng, int trajectories) {
  const NoiseModel& noise = device.noise();
  const Circuit unitary = circuit.unitary_part();

  // Mapped circuits live on the full physical register but usually touch
  // only a few qubits; untouched |0> qubits factor out of the fidelity, so
  // simulate on the compacted register (calibration lookups keep the
  // original physical indices).
  std::vector<int> local_index(
      static_cast<std::size_t>(unitary.num_qubits()), -1);
  int touched = 0;
  for (const Gate& gate : unitary) {
    for (const int q : gate.qubits) {
      if (local_index[static_cast<std::size_t>(q)] < 0) {
        local_index[static_cast<std::size_t>(q)] = touched++;
      }
    }
  }
  if (touched == 0) touched = 1;  // empty circuit: trivial state
  Circuit compact(touched, unitary.name());
  std::vector<double> error_probability;
  error_probability.reserve(unitary.size());
  for (const Gate& gate : unitary) {
    Gate relabeled = gate;
    for (int& q : relabeled.qubits) {
      q = local_index[static_cast<std::size_t>(q)];
    }
    compact.add(std::move(relabeled));
    error_probability.push_back(
        gate.is_two_qubit()
            ? noise.two_qubit_error(gate.qubits[0], gate.qubits[1])
            : (gate_info(gate.kind).arity == 1
                   ? noise.single_qubit_error(gate.qubits[0])
                   : 0.0));
  }

  StateVector ideal(touched);
  ideal.run(compact);

  TrajectoryResult result;
  result.trajectories = trajectories;
  double fidelity_sum = 0.0;
  int error_free = 0;
  for (int t = 0; t < trajectories; ++t) {
    StateVector state(touched);
    bool fault = false;
    for (std::size_t g = 0; g < compact.size(); ++g) {
      const Gate& gate = compact.gate(g);
      state.apply(gate);
      if (rng.chance(error_probability[g])) {
        inject_pauli(state, gate.qubits, rng);
        fault = true;
      }
    }
    const double overlap = state.fidelity(ideal);
    fidelity_sum += overlap * overlap;
    if (!fault) ++error_free;
  }
  result.fidelity = fidelity_sum / trajectories;
  result.error_free_rate = static_cast<double>(error_free) / trajectories;
  return result;
}

}  // namespace qmap
