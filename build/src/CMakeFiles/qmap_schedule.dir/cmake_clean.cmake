file(REMOVE_RECURSE
  "CMakeFiles/qmap_schedule.dir/schedule/constraints.cpp.o"
  "CMakeFiles/qmap_schedule.dir/schedule/constraints.cpp.o.d"
  "CMakeFiles/qmap_schedule.dir/schedule/export.cpp.o"
  "CMakeFiles/qmap_schedule.dir/schedule/export.cpp.o.d"
  "CMakeFiles/qmap_schedule.dir/schedule/schedule.cpp.o"
  "CMakeFiles/qmap_schedule.dir/schedule/schedule.cpp.o.d"
  "CMakeFiles/qmap_schedule.dir/schedule/schedulers.cpp.o"
  "CMakeFiles/qmap_schedule.dir/schedule/schedulers.cpp.o.d"
  "libqmap_schedule.a"
  "libqmap_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qmap_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
