// Pass-pipeline setup economics: what the shared immutable ArchArtifacts
// bundle buys the portfolio engine.
//
// Before the pass layer, every racing strategy copied the Device (and with
// it the all-pairs distance matrix) into its worker; per-strategy setup
// therefore scaled linearly with the strategy count. Now the
// PortfolioCompiler builds one ArchArtifacts bundle at construction and
// every PipelineRuntime carries a shared_ptr to it, so setup is one BFS
// sweep total regardless of how many strategies race. The figure prints
// both curves; the bench exits non-zero if the shared-setup curve grows
// with the strategy count (the regression this file exists to catch).
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>

#include "bench_util.hpp"
#include "engine/portfolio.hpp"
#include "pass/manager.hpp"

namespace {

using namespace qmap;
using namespace qmap::bench;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// A 16-entry portfolio: every heuristic placer x router pairing worth
// racing on a noiseless 17-qubit device, padded with seed-sensitive
// annealing entries so the race genuinely saturates 16 slots.
std::vector<StrategySpec> sixteen_strategies() {
  std::vector<StrategySpec> specs;
  for (const char* placer : {"greedy", "identity", "bidirectional"}) {
    for (const char* router : {"sabre", "sabre+commute", "astar", "qmap"}) {
      specs.push_back({placer, router});
    }
  }
  for (const char* router : {"sabre", "sabre+commute", "astar", "qmap"}) {
    specs.push_back({"annealing", router});
  }
  return specs;  // 3*4 + 4 = 16
}

// Setup cost only: what it takes to hand `count` strategies their device
// artifacts, old way vs new way. Compile time is excluded on purpose.
double setup_per_strategy_ms(const Device& device, int count) {
  const auto start = Clock::now();
  for (int i = 0; i < count; ++i) {
    benchmark::DoNotOptimize(ArchArtifacts::build(device));
  }
  return ms_since(start);
}

double setup_shared_ms(const Device& device, int count) {
  const auto start = Clock::now();
  const auto artifacts = ArchArtifacts::shared(device);
  for (int i = 0; i < count; ++i) {
    PipelineRuntime runtime;
    runtime.artifacts = artifacts;
    benchmark::DoNotOptimize(runtime);
  }
  return ms_since(start);
}

void print_figure() {
  paper_note(
      "The pass layer's CompileContext reads one immutable ArchArtifacts "
      "bundle (all-pairs distances, BFS next-hops, sorted neighbor lists, "
      "native-gate lookup) computed once per device — racing strategies "
      "share it instead of each rebuilding device caches.");

  const Device device = devices::surface17();

  section("Setup cost vs strategy count on " + device.name() +
          " (artifacts only, no compiles)");
  TextTable table({"strategies", "per-strategy build (ms)",
                   "shared bundle (ms)", "ratio"});
  double shared_1 = 0.0;
  double shared_16 = 0.0;
  for (const int count : {1, 2, 4, 8, 16}) {
    // Median-of-3 to keep one scheduler hiccup from deciding the table.
    double per = setup_per_strategy_ms(device, count);
    double shared = setup_shared_ms(device, count);
    for (int rep = 0; rep < 2; ++rep) {
      per = std::min(per, setup_per_strategy_ms(device, count));
      shared = std::min(shared, setup_shared_ms(device, count));
    }
    if (count == 1) shared_1 = shared;
    if (count == 16) shared_16 = shared;
    table.add_row({TextTable::num(count), TextTable::num(per, 3),
                   TextTable::num(shared, 3),
                   TextTable::num(per / std::max(shared, 1e-6), 1) + "x"});
  }
  std::cout << table.str();
  // The acceptance gate: shared setup must not scale with the strategy
  // count. Allow generous noise (10x over the single-strategy cost covers
  // timer jitter on loaded CI hosts; linear scaling would show ~16x over a
  // much larger base).
  if (shared_16 > std::max(10.0 * shared_1, 0.5)) {
    std::cerr << "FATAL: shared-artifacts setup grew with strategy count ("
              << shared_1 << " ms for 1 vs " << shared_16
              << " ms for 16)\n";
    std::exit(1);
  }

  section("16-strategy race on " + device.name() + " (shared bundle)");
  PortfolioOptions options;
  options.strategies = sixteen_strategies();
  options.base_seed = 0xC0FFEE;
  const PortfolioCompiler racer(device, options);
  Rng rng(99);
  const Circuit circuit = workloads::random_circuit(10, 80, rng, 0.45);
  const PortfolioResult result = racer.compile(circuit);
  if (!Compiler::verify(result.best)) {
    std::cerr << "FATAL: 16-strategy race produced an unverifiable result\n";
    std::exit(1);
  }
  std::printf(
      "winner %s, %zu/%zu completed, wall %.1f ms on %d thread(s)\n",
      result.winner_label.c_str(), result.completed_count(),
      result.telemetry.size(), result.wall_ms, result.num_threads);
}

void BM_ArtifactsBuild(benchmark::State& state) {
  const Device device = devices::surface17();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ArchArtifacts::build(device));
  }
  state.SetLabel("surface17 all-pairs BFS + lookups");
}
BENCHMARK(BM_ArtifactsBuild);

void BM_SetupPerStrategyArtifacts(benchmark::State& state) {
  const Device device = devices::surface17();
  const int count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int i = 0; i < count; ++i) {
      benchmark::DoNotOptimize(ArchArtifacts::build(device));
    }
  }
  state.SetLabel(std::to_string(count) + " strategies, rebuild each");
}
BENCHMARK(BM_SetupPerStrategyArtifacts)->Arg(1)->Arg(4)->Arg(16);

void BM_SetupSharedArtifacts(benchmark::State& state) {
  const Device device = devices::surface17();
  const int count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto artifacts = ArchArtifacts::shared(device);
    for (int i = 0; i < count; ++i) {
      PipelineRuntime runtime;
      runtime.artifacts = artifacts;
      benchmark::DoNotOptimize(runtime);
    }
  }
  state.SetLabel(std::to_string(count) + " strategies, one shared bundle");
}
BENCHMARK(BM_SetupSharedArtifacts)->Arg(1)->Arg(4)->Arg(16);

void BM_SixteenStrategyRace(benchmark::State& state) {
  const Device device = devices::surface17();
  PortfolioOptions options;
  options.strategies = sixteen_strategies();
  options.num_threads = static_cast<int>(state.range(0));
  const PortfolioCompiler racer(device, options);
  Rng rng(99);
  const Circuit circuit = workloads::random_circuit(10, 80, rng, 0.45);
  for (auto _ : state) {
    benchmark::DoNotOptimize(racer.compile(circuit));
  }
  state.SetLabel(std::to_string(state.range(0)) + " threads, 16 strategies");
}
BENCHMARK(BM_SixteenStrategyRace)->Arg(1)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
