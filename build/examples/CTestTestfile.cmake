# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/example_quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_surface17_pipeline "/root/repo/build/examples/example_surface17_pipeline")
set_tests_properties(example_surface17_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compare_routers "/root/repo/build/examples/example_compare_routers")
set_tests_properties(example_compare_routers PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_qasm_mapper_tool "/root/repo/build/examples/example_qasm_mapper_tool")
set_tests_properties(example_qasm_mapper_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_noise_aware_mapping "/root/repo/build/examples/example_noise_aware_mapping")
set_tests_properties(example_noise_aware_mapping PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_architecture_explorer "/root/repo/build/examples/example_architecture_explorer")
set_tests_properties(example_architecture_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
