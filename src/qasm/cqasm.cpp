#include "qasm/cqasm.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "qasm/expr.hpp"

namespace qmap {
namespace {

constexpr double kPi = 3.14159265358979323846;

class CqasmParser {
 public:
  explicit CqasmParser(std::string_view source) : source_(source) {}

  Circuit parse() {
    int line_number = 0;
    for (const std::string& raw_line : split(std::string(source_), '\n')) {
      ++line_number;
      std::string line = raw_line;
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      const std::string_view text = trim(line);
      if (text.empty()) continue;
      handle_line(text, line_number);
    }
    if (!circuit_initialized_) {
      throw ParseError("cQASM: missing 'qubits N' declaration");
    }
    return std::move(circuit_);
  }

 private:
  [[noreturn]] void fail(const std::string& message, int line) const {
    throw ParseError("cQASM: " + message, line, 1);
  }

  void handle_line(std::string_view text, int line) {
    if (starts_with(text, "version")) return;
    if (starts_with(text, "qubits")) {
      if (circuit_initialized_) fail("duplicate 'qubits' declaration", line);
      int n = 0;
      try {
        n = static_cast<int>(eval_expression(text.substr(6)));
      } catch (const ParseError&) {
        fail("malformed qubit count", line);
      }
      if (n <= 0) fail("qubit count must be positive", line);
      circuit_ = Circuit(n, "cqasm");
      circuit_initialized_ = true;
      return;
    }
    if (!circuit_initialized_) {
      fail("instruction before 'qubits N' declaration", line);
    }
    if (text.front() == '{') {
      // Parallel bundle: { g1 | g2 | ... }. Parallelism is re-derived from
      // the dependency DAG, so flattening preserves semantics.
      if (text.back() != '}') fail("unterminated parallel bundle", line);
      const std::string_view inner = text.substr(1, text.size() - 2);
      for (const std::string& part : split(inner, '|')) {
        const std::string_view instruction = trim(part);
        if (!instruction.empty()) handle_instruction(instruction, line);
      }
      return;
    }
    handle_instruction(text, line);
  }

  int parse_qubit(std::string_view token, int line) const {
    const std::string_view spec = trim(token);
    const std::size_t open = spec.find('[');
    const std::size_t close = spec.find(']');
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close < open || trim(spec.substr(0, open)) != "q") {
      fail("malformed qubit operand '" + std::string(spec) + "'", line);
    }
    int index = 0;
    try {
      index = static_cast<int>(
          eval_expression(spec.substr(open + 1, close - open - 1)));
    } catch (const ParseError&) {
      fail("malformed qubit index", line);
    }
    if (index < 0 || index >= circuit_.num_qubits()) {
      fail("qubit index out of range: " + std::to_string(index), line);
    }
    return index;
  }

  void handle_instruction(std::string_view text, int line) {
    // Mnemonic, then comma-separated operands (angles come last in cQASM).
    std::size_t name_end = 0;
    while (name_end < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[name_end])) ||
            text[name_end] == '_')) {
      ++name_end;
    }
    const std::string name = to_lower(text.substr(0, name_end));
    std::vector<std::string> args;
    for (const std::string& token : split(text.substr(name_end), ',')) {
      if (!trim(token).empty()) args.emplace_back(trim(token));
    }

    const auto one_qubit = [&](GateKind kind) {
      if (args.size() != 1) fail(name + " expects 1 operand", line);
      circuit_.add(make_gate(kind, {parse_qubit(args[0], line)}));
    };
    const auto two_qubit = [&](GateKind kind) {
      if (args.size() != 2) fail(name + " expects 2 operands", line);
      circuit_.add(make_gate(kind, {parse_qubit(args[0], line),
                                    parse_qubit(args[1], line)}));
    };
    const auto rotation = [&](GateKind kind) {
      if (args.size() != 2) fail(name + " expects qubit, angle", line);
      double angle = 0.0;
      try {
        angle = eval_expression(args[1]);
      } catch (const ParseError&) {
        fail("malformed angle", line);
      }
      circuit_.add(make_gate(kind, {parse_qubit(args[0], line)}, {angle}));
    };
    const auto fixed_rotation = [&](GateKind kind, double angle) {
      if (args.size() != 1) fail(name + " expects 1 operand", line);
      circuit_.add(make_gate(kind, {parse_qubit(args[0], line)}, {angle}));
    };

    if (name == "i") one_qubit(GateKind::I);
    else if (name == "x") one_qubit(GateKind::X);
    else if (name == "y") one_qubit(GateKind::Y);
    else if (name == "z") one_qubit(GateKind::Z);
    else if (name == "h") one_qubit(GateKind::H);
    else if (name == "s") one_qubit(GateKind::S);
    else if (name == "sdag") one_qubit(GateKind::Sdg);
    else if (name == "t") one_qubit(GateKind::T);
    else if (name == "tdag") one_qubit(GateKind::Tdg);
    else if (name == "x90") fixed_rotation(GateKind::Rx, kPi / 2.0);
    else if (name == "mx90") fixed_rotation(GateKind::Rx, -kPi / 2.0);
    else if (name == "y90") fixed_rotation(GateKind::Ry, kPi / 2.0);
    else if (name == "my90") fixed_rotation(GateKind::Ry, -kPi / 2.0);
    else if (name == "rx") rotation(GateKind::Rx);
    else if (name == "ry") rotation(GateKind::Ry);
    else if (name == "rz") rotation(GateKind::Rz);
    else if (name == "cnot") two_qubit(GateKind::CX);
    else if (name == "cz") two_qubit(GateKind::CZ);
    else if (name == "swap") two_qubit(GateKind::SWAP);
    else if (name == "toffoli") {
      if (args.size() != 3) fail("toffoli expects 3 operands", line);
      circuit_.add(make_gate(
          GateKind::CCX, {parse_qubit(args[0], line),
                          parse_qubit(args[1], line),
                          parse_qubit(args[2], line)}));
    } else if (name == "measure" || name == "measure_z") {
      if (args.size() != 1) fail("measure expects 1 operand", line);
      const int q = parse_qubit(args[0], line);
      circuit_.measure(q, q);
    } else if (name == "measure_all") {
      circuit_.measure_all();
    } else if (name == "prep_z" || name == "prep") {
      // Qubits start in |0>; an explicit prep on a fresh register is a
      // no-op for the unitary pipeline, so accept and ignore it.
      if (args.size() != 1) fail("prep expects 1 operand", line);
      (void)parse_qubit(args[0], line);
    } else if (name == "display") {
      // Debug directive; ignored.
    } else {
      fail("unknown instruction '" + name + "'", line);
    }
  }

  std::string_view source_;
  Circuit circuit_;
  bool circuit_initialized_ = false;
};

}  // namespace

Circuit parse_cqasm(std::string_view source) {
  return CqasmParser(source).parse();
}

Circuit load_cqasm(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open file: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  Circuit circuit = parse_cqasm(buffer.str());
  circuit.set_name(path);
  return circuit;
}

std::string cqasm_instruction(const Gate& gate) {
  const auto q = [](int index) { return "q[" + std::to_string(index) + "]"; };
  switch (gate.kind) {
    case GateKind::I: return "i " + q(gate.qubits[0]);
    case GateKind::X: return "x " + q(gate.qubits[0]);
    case GateKind::Y: return "y " + q(gate.qubits[0]);
    case GateKind::Z: return "z " + q(gate.qubits[0]);
    case GateKind::H: return "h " + q(gate.qubits[0]);
    case GateKind::S: return "s " + q(gate.qubits[0]);
    case GateKind::Sdg: return "sdag " + q(gate.qubits[0]);
    case GateKind::T: return "t " + q(gate.qubits[0]);
    case GateKind::Tdg: return "tdag " + q(gate.qubits[0]);
    case GateKind::Rx:
      return "rx " + q(gate.qubits[0]) + ", " + format_double(gate.params[0]);
    case GateKind::Ry:
      return "ry " + q(gate.qubits[0]) + ", " + format_double(gate.params[0]);
    case GateKind::Rz:
      return "rz " + q(gate.qubits[0]) + ", " + format_double(gate.params[0]);
    case GateKind::CX:
      return "cnot " + q(gate.qubits[0]) + ", " + q(gate.qubits[1]);
    case GateKind::CZ:
      return "cz " + q(gate.qubits[0]) + ", " + q(gate.qubits[1]);
    case GateKind::SWAP:
    case GateKind::Move:  // exported as its SWAP wire semantics
      return "swap " + q(gate.qubits[0]) + ", " + q(gate.qubits[1]);
    case GateKind::CCX:
      return "toffoli " + q(gate.qubits[0]) + ", " + q(gate.qubits[1]) +
             ", " + q(gate.qubits[2]);
    case GateKind::Measure:
      return "measure " + q(gate.qubits[0]);
    case GateKind::Barrier:
      return "";  // cQASM v1 has no barrier; parallelism is re-derived
    default:
      throw ParseError("to_cqasm: gate '" +
                       std::string(gate_info(gate.kind).name) +
                       "' is not expressible in cQASM v1");
  }
}

std::string to_cqasm(const Circuit& circuit) {
  std::string out = "version 1.0\n";
  out += "qubits " + std::to_string(circuit.num_qubits()) + "\n";
  for (const Gate& gate : circuit) {
    const std::string instruction = cqasm_instruction(gate);
    if (!instruction.empty()) out += instruction + "\n";
  }
  return out;
}

void save_cqasm(const Circuit& circuit, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw ParseError("cannot write file: " + path);
  out << to_cqasm(circuit);
}

}  // namespace qmap
