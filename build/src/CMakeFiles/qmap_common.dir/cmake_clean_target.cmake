file(REMOVE_RECURSE
  "libqmap_common.a"
)
