// Compile-service suite: ResultCache single-flight/LRU/TTL semantics,
// canonical content-addressed cache keys, request framing, multiplexing,
// disconnect handling, and the determinism pin the whole design rests on —
// a cache hit replays the byte-identical outcome fingerprint the cold path
// produced, across 1/2/8 dispatcher threads.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/builtin.hpp"
#include "common/digest.hpp"
#include "common/error.hpp"
#include "qasm/openqasm.hpp"
#include "resilience/resilience.hpp"
#include "service/cache.hpp"
#include "service/service.hpp"
#include "workloads/workloads.hpp"

namespace qmap::service {
namespace {

CachedOutcome make_outcome(const std::string& tag, bool ok = true) {
  CachedOutcome outcome;
  outcome.ok = ok;
  outcome.fingerprint = "fingerprint:" + tag;
  outcome.fingerprint_digest = content_digest(outcome.fingerprint);
  outcome.outcome_json = "{\"tag\":\"" + tag + "\"}";
  outcome.winner_label = "greedy+sabre";
  outcome.rung = ok ? 0 : -1;
  outcome.validated = ok;
  if (!ok) outcome.error = "exhausted: " + tag;
  return outcome;
}

std::string ghz_qasm(int n) { return to_openqasm(workloads::ghz(n)); }

ServiceRequest compile_request(const std::string& id,
                               const std::string& client,
                               const std::string& qasm,
                               std::uint64_t seed = 7) {
  ServiceRequest request;
  request.op = "compile";
  request.id = id;
  request.client = client;
  request.device = "ibm_qx4";
  request.qasm = qasm;
  request.seed = seed;
  return request;
}

// ---------------------------------------------------------------- cache --

TEST(ResultCache, HitAfterCompleteReturnsStoredValue) {
  ResultCache cache;
  auto lookup = cache.acquire("k");
  ASSERT_EQ(lookup.kind, ResultCache::Lookup::Kind::Leader);
  cache.complete(lookup.flight, make_outcome("a"));

  auto again = cache.acquire("k");
  ASSERT_EQ(again.kind, ResultCache::Lookup::Kind::Hit);
  EXPECT_EQ(again.value->fingerprint, "fingerprint:a");
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCache, SingleFlightFollowersAllReceiveLeaderValue) {
  ResultCache cache;
  auto leader = cache.acquire("k");
  ASSERT_EQ(leader.kind, ResultCache::Lookup::Kind::Leader);

  constexpr int kFollowers = 8;
  std::vector<std::thread> threads;
  std::vector<std::string> fingerprints(kFollowers);
  std::atomic<int> joined{0};
  for (int i = 0; i < kFollowers; ++i) {
    threads.emplace_back([&cache, &fingerprints, &joined, i] {
      auto follower = cache.acquire("k");
      EXPECT_EQ(follower.kind, ResultCache::Lookup::Kind::Follower);
      joined.fetch_add(1);
      const auto value = cache.wait(follower.flight);
      ASSERT_NE(value, nullptr);
      fingerprints[static_cast<std::size_t>(i)] = value->fingerprint;
      follower.flight->drop_interest();
    });
  }
  // Wait until every follower has actually joined the flight, then publish.
  while (joined.load() < kFollowers) std::this_thread::yield();
  cache.complete(leader.flight, make_outcome("x"));
  for (auto& thread : threads) thread.join();

  for (const auto& fingerprint : fingerprints) {
    EXPECT_EQ(fingerprint, "fingerprint:x");
  }
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);  // exactly one compile for 9 requests
  EXPECT_EQ(stats.coalesced, static_cast<std::uint64_t>(kFollowers));
}

TEST(ResultCache, AbandonWakesFollowersWithNull) {
  ResultCache cache;
  auto leader = cache.acquire("k");
  auto follower_result =
      std::async(std::launch::async, [&cache] {
        auto follower = cache.acquire("k");
        if (follower.kind != ResultCache::Lookup::Kind::Follower) {
          // Raced past the leader's abandon: a fresh leader, give it back.
          cache.abandon(follower.flight);
          return std::string("not-a-follower");
        }
        const auto value = cache.wait(follower.flight);
        follower.flight->drop_interest();
        return value == nullptr ? std::string("null") : value->fingerprint;
      });
  // Give the async a chance to join the flight before abandoning.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  cache.abandon(leader.flight);
  const std::string got = follower_result.get();
  EXPECT_TRUE(got == "null" || got == "not-a-follower");
  // Nothing cached: the next acquire is a fresh leader.
  auto again = cache.acquire("k");
  EXPECT_EQ(again.kind, ResultCache::Lookup::Kind::Leader);
  cache.abandon(again.flight);
}

TEST(ResultCache, FlightInterestCountFiresTokenAtZero) {
  ResultCache cache;
  auto leader = cache.acquire("k");
  leader.flight->retain_interest();  // a follower joins
  EXPECT_FALSE(leader.flight->token().cancelled());
  leader.flight->drop_interest();  // follower hangs up
  EXPECT_FALSE(leader.flight->token().cancelled());
  leader.flight->drop_interest();  // leader's client hangs up too
  EXPECT_TRUE(leader.flight->token().cancelled());
  cache.abandon(leader.flight);
}

TEST(ResultCache, LruEvictsOldestUnderByteBudget) {
  CacheConfig config;
  config.shards = 1;  // deterministic eviction order
  const std::size_t entry_bytes = make_outcome("0").bytes();
  config.max_bytes = 3 * entry_bytes;
  ResultCache cache(config);

  cache.insert("a", make_outcome("0"));
  cache.insert("b", make_outcome("1"));
  cache.insert("c", make_outcome("2"));
  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_LE(cache.stats().bytes, config.max_bytes);

  // Touch "a" so "b" becomes least-recently-used, then overflow.
  EXPECT_NE(cache.lookup("a"), nullptr);
  cache.insert("d", make_outcome("3"));

  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.lookup("b"), nullptr);  // the LRU victim
  EXPECT_NE(cache.lookup("a"), nullptr);
  EXPECT_NE(cache.lookup("c"), nullptr);
  EXPECT_NE(cache.lookup("d"), nullptr);
  EXPECT_LE(cache.stats().bytes, config.max_bytes);
}

TEST(ResultCache, OversizedEntryRejectedNotStored) {
  CacheConfig config;
  config.shards = 1;
  config.max_bytes = 64;  // smaller than any real entry
  ResultCache cache(config);
  cache.insert("big", make_outcome("oversized"));
  EXPECT_EQ(cache.stats().insert_rejected, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.lookup("big"), nullptr);
}

TEST(ResultCache, NegativeEntryExpiresAfterTtlOnFakeClock) {
  std::int64_t fake_now_us = 0;
  CacheConfig config;
  config.shards = 1;
  config.negative_ttl_ms = 5.0;
  config.now_us = [&fake_now_us] { return fake_now_us; };
  ResultCache cache(config);

  cache.insert("poison", make_outcome("bad", /*ok=*/false));
  auto hit = cache.acquire("poison");
  ASSERT_EQ(hit.kind, ResultCache::Lookup::Kind::Hit);
  EXPECT_FALSE(hit.value->ok);
  EXPECT_EQ(cache.stats().negative_hits, 1u);

  fake_now_us += 5000;  // exactly the TTL: expired
  auto after = cache.acquire("poison");
  EXPECT_EQ(after.kind, ResultCache::Lookup::Kind::Leader);
  EXPECT_EQ(cache.stats().expired, 1u);
  cache.abandon(after.flight);
}

TEST(ResultCache, RePoisoningAfterExpiryGetsAFreshTtl) {
  std::int64_t fake_now_us = 0;
  CacheConfig config;
  config.shards = 1;
  config.negative_ttl_ms = 5.0;
  config.now_us = [&fake_now_us] { return fake_now_us; };
  ResultCache cache(config);

  cache.insert("poison", make_outcome("bad", /*ok=*/false));
  fake_now_us += 5000;  // first poisoning expires
  auto leader = cache.acquire("poison");
  ASSERT_EQ(leader.kind, ResultCache::Lookup::Kind::Leader);
  EXPECT_EQ(cache.stats().expired, 1u);
  // The fresh failure re-poisons the key: its TTL is stamped now, not
  // inherited from the dead entry.
  cache.complete(leader.flight, make_outcome("bad-again", /*ok=*/false));

  fake_now_us += 4999;  // one tick inside the new window: still served
  auto inside = cache.acquire("poison");
  ASSERT_EQ(inside.kind, ResultCache::Lookup::Kind::Hit);
  EXPECT_FALSE(inside.value->ok);
  EXPECT_EQ(cache.stats().negative_hits, 1u);

  fake_now_us += 1;  // the new window lapses too
  auto fresh = cache.acquire("poison");
  EXPECT_EQ(fresh.kind, ResultCache::Lookup::Kind::Leader);
  EXPECT_EQ(cache.stats().expired, 2u);
  cache.abandon(fresh.flight);
}

TEST(ResultCache, LookupPathExpiresNegativeEntriesToo) {
  // lookup() — the read-only path the open-breaker fast-lane uses — must
  // apply the same TTL as acquire(), not resurrect stale poison.
  std::int64_t fake_now_us = 0;
  CacheConfig config;
  config.shards = 1;
  config.negative_ttl_ms = 5.0;
  config.now_us = [&fake_now_us] { return fake_now_us; };
  ResultCache cache(config);

  cache.insert("poison", make_outcome("bad", /*ok=*/false));
  ASSERT_NE(cache.lookup("poison"), nullptr);

  fake_now_us += 5000;
  EXPECT_EQ(cache.lookup("poison"), nullptr);
  EXPECT_EQ(cache.stats().expired, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCache, NegativeTtlZeroDisablesNegativeCaching) {
  CacheConfig config;
  config.negative_ttl_ms = 0.0;
  ResultCache cache(config);
  cache.insert("bad", make_outcome("bad", /*ok=*/false));
  EXPECT_EQ(cache.stats().entries, 0u);
  auto lookup = cache.acquire("bad");
  EXPECT_EQ(lookup.kind, ResultCache::Lookup::Kind::Leader);
  cache.abandon(lookup.flight);
}

// ----------------------------------------------------- request framing --

TEST(ServiceRequest, FromJsonRejectsUnknownFieldsAndOps) {
  EXPECT_THROW(ServiceRequest::from_json(Json::parse(R"({"sead": 1})")),
               MappingError);
  EXPECT_THROW(ServiceRequest::from_json(Json::parse(R"({"op": "explode"})")),
               MappingError);
}

TEST(ServiceRequest, JsonRoundTripPreservesFields) {
  ServiceRequest request = compile_request("r1", "alice", ghz_qasm(3), 42);
  request.deadline_ms = 250.0;
  request.verbose = true;
  request.pipeline = PipelineSpec::standard();
  const ServiceRequest reparsed =
      ServiceRequest::from_json(request.to_json());
  EXPECT_EQ(reparsed.id, "r1");
  EXPECT_EQ(reparsed.client, "alice");
  EXPECT_EQ(reparsed.device, "ibm_qx4");
  EXPECT_EQ(reparsed.seed, 42u);
  EXPECT_EQ(reparsed.deadline_ms, 250.0);
  EXPECT_TRUE(reparsed.verbose);
  ASSERT_TRUE(reparsed.pipeline.has_value());
  EXPECT_EQ(*reparsed.pipeline, *request.pipeline);
}

// ------------------------------------------------------ canonical keys --

TEST(CanonicalKey, PipelineKeyOrderAndElisionDoNotSplitCache) {
  // Same pipeline, three spellings: shuffled JSON key order, elided
  // default options, fully spelled out. All must produce one cache entry.
  const char* spelled = R"({"passes": [
      {"pass": "decompose", "options": {"lower_to_native": true}},
      {"pass": "placer", "options": {"algorithm": "greedy"}},
      {"options": {"algorithm": "sabre"}, "pass": "router"}]})";
  const char* elided = R"({"passes": ["decompose", "placer", "router"]})";
  const PipelineSpec a = PipelineSpec::from_json_text(spelled);
  const PipelineSpec b = PipelineSpec::from_json_text(elided);
  EXPECT_EQ(a.canonical_json().dump(), b.canonical_json().dump());

  CompileService service;
  const std::string qasm = ghz_qasm(3);
  ServiceRequest first = compile_request("r1", "alice", qasm);
  first.pipeline = a;
  ServiceRequest second = compile_request("r2", "bob", qasm);
  second.pipeline = b;

  const ServiceResponse cold = service.handle(first);
  ASSERT_EQ(cold.status, "ok");
  EXPECT_EQ(cold.cache, "miss");
  const ServiceResponse warm = service.handle(second);
  EXPECT_EQ(warm.status, "ok");
  EXPECT_EQ(warm.cache, "hit");  // regression: used to depend on spelling
  EXPECT_EQ(warm.fingerprint, cold.fingerprint);
  EXPECT_EQ(service.cache_stats().entries, 1u);
}

TEST(CanonicalKey, QasmFormattingDoesNotSplitCache) {
  CompileService service;
  const char* compact =
      "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\n"
      "h q[0];\ncx q[0],q[1];\ncx q[1],q[2];\n";
  const char* noisy =
      "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n// a GHZ state\n"
      "qreg r[3];\n\nh  r[0] ;\ncx r[0] , r[1];\ncx r[1],r[2];\n";
  const ServiceResponse cold =
      service.handle(compile_request("r1", "a", compact));
  const ServiceResponse warm =
      service.handle(compile_request("r2", "b", noisy));
  EXPECT_EQ(cold.cache, "miss");
  EXPECT_EQ(warm.cache, "hit");
  EXPECT_EQ(warm.fingerprint, cold.fingerprint);
}

TEST(CanonicalKey, SeedAndDeviceAndPipelineSplitCache) {
  CompileService service;
  const std::string qasm = ghz_qasm(3);
  const ServiceResponse base =
      service.handle(compile_request("r1", "a", qasm, 7));
  EXPECT_EQ(base.cache, "miss");

  ServiceRequest other_seed = compile_request("r2", "a", qasm, 8);
  EXPECT_EQ(service.handle(other_seed).cache, "miss");

  ServiceRequest other_device = compile_request("r3", "a", qasm, 7);
  other_device.device = "ibm_qx5";
  EXPECT_EQ(service.handle(other_device).cache, "miss");

  ServiceRequest pinned = compile_request("r4", "a", qasm, 7);
  pinned.pipeline = PipelineSpec::standard();
  EXPECT_EQ(service.handle(pinned).cache, "miss");
}

// ----------------------------------------------------------- semantics --

TEST(CompileService, HitReplaysColdFingerprintByteIdentically) {
  CompileService service;
  const std::string qasm = ghz_qasm(4);
  ServiceRequest request = compile_request("r", "a", qasm);
  request.verbose = true;

  const ServiceResponse cold = service.handle(request);
  ASSERT_EQ(cold.status, "ok");
  ASSERT_EQ(cold.cache, "miss");
  const ServiceResponse warm = service.handle(request);
  ASSERT_EQ(warm.cache, "hit");

  // The whole design rests on this: hit and cold are indistinguishable.
  EXPECT_EQ(warm.fingerprint, cold.fingerprint);
  EXPECT_EQ(warm.payload.dump(), cold.payload.dump());
  EXPECT_EQ(warm.rung, cold.rung);
  EXPECT_EQ(warm.winner, cold.winner);

  // And the cold fingerprint matches a direct resilience::compile of the
  // same request — the service adds caching, not semantics.
  resilience::Policy policy;
  policy.seed = 7;
  const auto direct =
      resilience::compile(parse_openqasm(qasm), devices::ibm_qx4(), policy);
  EXPECT_EQ(cold.fingerprint, content_digest(direct.fingerprint()));
}

TEST(CompileService, NIdenticalRequestsCompileExactlyOnce) {
  CompileService service;
  const std::string qasm = ghz_qasm(4);

  constexpr int kClients = 8;
  std::vector<std::future<ServiceResponse>> futures;
  futures.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    futures.push_back(service.submit(compile_request(
        "r" + std::to_string(i), "client" + std::to_string(i), qasm)));
  }
  std::vector<ServiceResponse> responses;
  responses.reserve(kClients);
  for (auto& future : futures) responses.push_back(future.get());

  // Whatever the interleaving — coalesced onto the in-flight compile or a
  // hit on the completed entry — exactly one compile ran and every client
  // got the identical fingerprint.
  const CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.coalesced, kClients - 1u);
  for (const auto& response : responses) {
    EXPECT_EQ(response.status, "ok");
    EXPECT_EQ(response.fingerprint, responses.front().fingerprint);
  }
}

TEST(CompileService, RejectedRequestIsNegativelyCachedWithTtl) {
  std::int64_t fake_now_us = 0;
  ServiceConfig config;
  config.cache.negative_ttl_ms = 5.0;
  config.cache.now_us = [&fake_now_us] { return fake_now_us; };
  CompileService service(std::move(config));

  // 6 qubits can never fit the 5-qubit QX4: admission rejects, and the
  // rejection is cached as a poisoned entry so retries stay cheap.
  const std::string qasm = ghz_qasm(6);
  const ServiceResponse cold =
      service.handle(compile_request("r1", "a", qasm));
  EXPECT_EQ(cold.status, "rejected");
  EXPECT_EQ(cold.cache, "miss");
  EXPECT_NE(cold.error.find("rejected"), std::string::npos);

  const ServiceResponse warm =
      service.handle(compile_request("r2", "a", qasm));
  EXPECT_EQ(warm.status, "rejected");
  EXPECT_EQ(warm.cache, "negative-hit");
  EXPECT_EQ(service.cache_stats().negative_hits, 1u);

  fake_now_us += 5000;  // TTL lapsed: the request gets a fresh assessment
  const ServiceResponse after =
      service.handle(compile_request("r3", "a", qasm));
  EXPECT_EQ(after.status, "rejected");
  EXPECT_EQ(after.cache, "miss");
  EXPECT_EQ(service.cache_stats().expired, 1u);
}

TEST(CompileService, PoisonedRequestDoesNotSinkNeighbours) {
  CompileService service;
  const ServiceResponse bad =
      service.handle(compile_request("bad", "a", ghz_qasm(6)));
  EXPECT_EQ(bad.status, "rejected");
  const ServiceResponse good =
      service.handle(compile_request("good", "a", ghz_qasm(3)));
  EXPECT_EQ(good.status, "ok");
}

TEST(CompileService, SharedAdmissionPathMatchesResilienceCompile) {
  // The service's pre-queue admission and resilience::compile's must agree
  // — both run the same supervisor assess() (satellite: shared admission).
  ServiceConfig config;
  config.policy.budget.max_gates = 4;
  CompileService service(std::move(config));
  const std::string qasm = ghz_qasm(4);  // 4 gates... plus measure? >4 gates

  resilience::Policy policy;
  policy.budget.max_gates = 4;
  const auto direct =
      resilience::compile(parse_openqasm(qasm), devices::ibm_qx4(), policy);
  const ServiceResponse response =
      service.handle(compile_request("r", "a", qasm));
  EXPECT_EQ(response.status == "rejected", !direct.admission.admitted());
}

TEST(CompileService, UnknownDeviceAndBadQasmAnswerStructuredErrors) {
  CompileService service;
  ServiceRequest request = compile_request("r1", "a", ghz_qasm(3));
  request.device = "nonexistent";
  const ServiceResponse unknown = service.handle(request);
  EXPECT_EQ(unknown.status, "error");
  EXPECT_NE(unknown.error.find("unknown device"), std::string::npos);
  EXPECT_NE(unknown.error.find("ibm_qx4"), std::string::npos);

  const ServiceResponse bad =
      service.handle(compile_request("r2", "a", "qreg q[2]; nonsense"));
  EXPECT_EQ(bad.status, "error");
  EXPECT_NE(bad.error.find("parse"), std::string::npos);
}

TEST(CompileService, NoCacheBypassesLookupAndStore) {
  CompileService service;
  const std::string qasm = ghz_qasm(3);
  ServiceRequest request = compile_request("r", "a", qasm);
  request.no_cache = true;
  const ServiceResponse first = service.handle(request);
  EXPECT_EQ(first.cache, "bypass");
  EXPECT_EQ(service.cache_stats().entries, 0u);
  const ServiceResponse second = service.handle(request);
  EXPECT_EQ(second.cache, "bypass");
  EXPECT_EQ(second.fingerprint, first.fingerprint);
}

TEST(CompileService, PinnedPipelineRunsAsRungOne) {
  CompileService service;
  ServiceRequest request = compile_request("r", "a", ghz_qasm(3));
  request.pipeline = PipelineSpec::standard("identity", "naive");
  const ServiceResponse response = service.handle(request);
  ASSERT_EQ(response.status, "ok");
  EXPECT_EQ(response.rung, 1);  // pinned pipeline, not the portfolio race
  EXPECT_EQ(response.winner, "identity+naive");
}

TEST(CompileService, QueueCapRejectsFloodingClient) {
  ServiceConfig config;
  config.num_workers = 1;
  config.max_queued_per_client = 2;
  CompileService service(std::move(config));

  const std::string qasm = to_openqasm(workloads::qft(5, false));
  std::vector<std::future<ServiceResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    ServiceRequest request =
        compile_request("r" + std::to_string(i), "flood", qasm);
    request.device = "ibm_qx5";
    futures.push_back(service.submit(std::move(request)));
  }
  int rejected = 0;
  for (auto& future : futures) {
    const ServiceResponse response = future.get();
    if (response.status == "rejected" &&
        response.error.find("queue full") != std::string::npos) {
      ++rejected;
    }
  }
  // With one worker and a cap of 2, at most 3 of 6 submissions can ever be
  // in the system (1 executing + 2 queued): at least 3 must bounce.
  EXPECT_GE(rejected, 3);
}

TEST(CompileService, DisconnectFlushesQueuedRequests) {
  ServiceConfig config;
  config.num_workers = 1;
  CompileService service(std::move(config));

  const std::string qasm = to_openqasm(workloads::qft(6, false));
  std::vector<std::future<ServiceResponse>> futures;
  for (int i = 0; i < 4; ++i) {
    ServiceRequest request =
        compile_request("r" + std::to_string(i), "leaver", qasm,
                        static_cast<std::uint64_t>(i));  // distinct keys
    request.device = "ibm_qx5";
    futures.push_back(service.submit(std::move(request)));
  }
  service.disconnect("leaver");
  // Every future resolves (no hangs); whatever had not been dispatched
  // yet was answered "cancelled" without compiling.
  int cancelled = 0;
  for (auto& future : futures) {
    const ServiceResponse response = future.get();
    EXPECT_TRUE(response.status == "ok" || response.status == "cancelled")
        << response.status;
    if (response.status == "cancelled") ++cancelled;
    if (response.status == "cancelled") {
      EXPECT_TRUE(response.fingerprint.empty());
    }
  }
  service.wait_idle();
  // The service stays usable after the disconnect.
  const ServiceResponse after =
      service.handle(compile_request("after", "other", ghz_qasm(3)));
  EXPECT_EQ(after.status, "ok");
}

TEST(CompileService, CancelledPolicyTokenStopsLadderBeforeAdmission) {
  // The engine-side contract disconnect cancellation rides on.
  CancelToken token;
  token.cancel();
  resilience::Policy policy;
  policy.cancel = &token;
  const auto outcome = resilience::compile(workloads::ghz(3),
                                           devices::ibm_qx4(), policy);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("cancelled"), std::string::npos);
}

// --------------------------------------------------------- determinism --

TEST(CompileService, FingerprintsIdenticalAcrossOneTwoEightWorkers) {
  // The tentpole determinism pin: the same request mix through 1-, 2- and
  // 8-worker services produces byte-identical fingerprints per request,
  // and every response agrees with its own service's cold answer.
  const std::vector<std::string> circuits = {
      ghz_qasm(3), ghz_qasm(4), to_openqasm(workloads::qft(4, false)),
      to_openqasm(workloads::fig1_example()),
      to_openqasm(workloads::w_state(4))};

  std::vector<std::map<std::string, std::string>> by_workers;
  for (const int workers : {1, 2, 8}) {
    ServiceConfig config;
    config.num_workers = workers;
    config.num_compile_threads = 2;
    CompileService service(std::move(config));

    std::vector<std::future<ServiceResponse>> futures;
    // Two rounds so round two is all warm hits/coalesced joins.
    for (int round = 0; round < 2; ++round) {
      for (std::size_t i = 0; i < circuits.size(); ++i) {
        futures.push_back(service.submit(compile_request(
            "q" + std::to_string(i) + "-" + std::to_string(round),
            "client" + std::to_string(i % 3), circuits[i])));
      }
    }
    std::map<std::string, std::string> fingerprints;
    for (auto& future : futures) {
      const ServiceResponse response = future.get();
      ASSERT_EQ(response.status, "ok");
      const std::string key = response.id.substr(0, response.id.find('-'));
      auto [it, inserted] =
          fingerprints.emplace(key, response.fingerprint);
      // Warm answers must equal the cold answer byte for byte.
      EXPECT_EQ(it->second, response.fingerprint) << response.id;
    }
    EXPECT_EQ(fingerprints.size(), circuits.size());
    by_workers.push_back(std::move(fingerprints));
  }
  EXPECT_EQ(by_workers[0], by_workers[1]);
  EXPECT_EQ(by_workers[0], by_workers[2]);
}

// ------------------------------------------------------------ framing ---

TEST(CompileService, ServeAnswersJsonLines) {
  std::istringstream in(
      "{\"op\":\"ping\",\"id\":\"p\"}\n"
      "not json at all\n"
      "{\"op\":\"compile\",\"id\":\"c\",\"device\":\"ibm_qx4\",\"qasm\":" +
      Json(ghz_qasm(3)).dump() +
      "}\n"
      "{\"op\":\"stats\",\"id\":\"s\"}\n");
  std::ostringstream out;
  CompileService service;
  const int lines = service.serve(in, out);
  EXPECT_EQ(lines, 4);

  std::map<std::string, Json> responses;  // id -> response
  std::istringstream replies(out.str());
  std::string line;
  int errors = 0;
  while (std::getline(replies, line)) {
    const Json json = Json::parse(line);
    if (json.contains("id")) {
      responses.emplace(json.at("id").as_string(), json);
    } else {
      EXPECT_EQ(json.at("status").as_string(), "error");
      ++errors;
    }
  }
  EXPECT_EQ(errors, 1);  // the unparseable line
  ASSERT_TRUE(responses.count("p"));
  EXPECT_EQ(responses.at("p").at("status").as_string(), "pong");
  ASSERT_TRUE(responses.count("c"));
  EXPECT_EQ(responses.at("c").at("status").as_string(), "ok");
  EXPECT_FALSE(responses.at("c").at("fingerprint").as_string().empty());
  ASSERT_TRUE(responses.count("s"));
  // Control ops answer inline, possibly before the queued compile runs, so
  // assert the stats *shape* here and the final counts on the service.
  EXPECT_TRUE(responses.at("s").at("payload").at("cache").contains("misses"));
  EXPECT_EQ(service.cache_stats().misses, 1u);
}

TEST(CompileService, StatsReportsCacheAndDevices) {
  CompileService service;
  ServiceRequest stats_request;
  stats_request.op = "stats";
  const ServiceResponse response = service.handle(stats_request);
  EXPECT_EQ(response.status, "stats");
  EXPECT_EQ(response.payload.at("devices").size(), 4u);
  EXPECT_TRUE(response.payload.at("cache").contains("evictions"));
}

}  // namespace
}  // namespace qmap::service
