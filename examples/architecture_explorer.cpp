// Architecture exploration walkthrough — the Sec. VII closing direction
// ([69]): decide the device topology from the circuits you plan to run.
//
// Given a workload mix and a coupling-edge budget, the greedy search grows
// a topology from the workload's interaction spanning tree and reports how
// it compares against generic line/ring/grid devices at the same budget.
#include <cstdio>
#include <iostream>

#include "arch/builtin.hpp"
#include "core/report.hpp"
#include "explore/architecture_search.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace qmap;
  Rng rng(2026);

  // The "planned quantum functionality": a mixed workload.
  std::vector<Circuit> workload_mix;
  workload_mix.push_back(workloads::qft(6));
  workload_mix.push_back(workloads::cuccaro_adder(2));
  workload_mix.push_back(workloads::qaoa_maxcut(
      8, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0}},
      2, rng));
  std::cout << "workload mix:";
  for (const Circuit& circuit : workload_mix) {
    std::cout << " " << circuit.name();
  }
  std::cout << "\n\n";

  ArchitectureSearchOptions options;
  options.edge_budget = 10;  // grid-class budget over 8 qubits
  const ArchitectureSearchResult found =
      search_architecture(8, workload_mix, options);

  std::cout << "searched topology (" << found.device.coupling().num_edges()
            << " edges):\n";
  for (const auto& edge : found.device.coupling().edges()) {
    std::cout << "  Q" << edge.a << " -- Q" << edge.b << "\n";
  }
  std::printf("spanning-tree cost: %ld  ->  final cost: %ld\n\n",
              found.initial_cost, found.final_cost);

  TextTable table({"topology", "edges", "routed cost (3*swaps)"});
  Device line = devices::linear(8, GateKind::CZ);
  table.add_row({"line8", "7",
                 TextTable::num(evaluate_architecture(line, workload_mix,
                                                      options))});
  table.add_row({"grid2x4", "10",
                 TextTable::num(evaluate_architecture(
                     devices::grid(2, 4, GateKind::CZ), workload_mix,
                     options))});
  table.add_row({"searched",
                 TextTable::num(found.device.coupling().num_edges()),
                 TextTable::num(found.final_cost)});
  std::cout << table.str();
  std::cout << "\nThe searched device embeds the workloads' interaction "
               "graph directly, so routing traffic drops without spending "
               "more couplers than the generic grid.\n";
  return 0;
}
