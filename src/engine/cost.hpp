// Winner selection for the portfolio engine (ISSUE: pluggable cost over
// CircuitMetrics + schedule + noise).
//
// A cost function maps a finished CompilationResult to a scalar; the
// portfolio keeps the strategy with the smallest value, ties broken by
// strategy index so the outcome is independent of thread timing. Weighted
// linear combinations cover the cost functions the paper's Sec. III-B
// taxonomy discusses (gate count, depth, latency, reliability); fully
// custom std::function costs are accepted too.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "arch/device.hpp"
#include "core/compiler.hpp"

namespace qmap {

/// Scalar selection cost; lower is better. Must be a pure function of the
/// result + device (it runs concurrently from several workers).
using CostFunction =
    std::function<double(const CompilationResult&, const Device&)>;

/// Weights of the built-in linear cost. Each term is multiplied into the
/// sum only when its weight is non-zero, so unused terms cost nothing.
struct CostWeights {
  double two_qubit_gates = 1.0;  // routed two-qubit gate count
  double depth = 0.0;            // unit-depth of the final circuit
  double scheduled_cycles = 0.0; // cycle-accurate latency (0 w/o scheduler)
  /// Weight on -log(estimated success probability), the additive
  /// reliability cost of src/noise/. Ignored when the device carries no
  /// calibration data.
  double neg_log_esp = 0.0;
};

[[nodiscard]] CostFunction make_cost_function(const CostWeights& weights);

/// Named presets: "gates" | "depth" | "cycles" | "esp" | "balanced".
/// Throws MappingError listing the valid names on an unknown string.
[[nodiscard]] CostFunction make_cost_function(const std::string& name);

[[nodiscard]] const std::vector<std::string>& known_cost_functions();

}  // namespace qmap
