// ASCII circuit diagrams in the style of the paper's figures: qubits as
// horizontal wires, time flowing left to right, boxed single-qubit gates,
// '*' control dots, '+' CNOT targets, 'x' SWAP endpoints.
#pragma once

#include <string>

#include "ir/circuit.hpp"

namespace qmap {

struct AsciiOptions {
  bool show_qubit_labels = true;
  /// Wire-name prefix: 'q' for program qubits, 'Q' for physical qubits
  /// (matching the paper's q_i / Q_i notation).
  char qubit_prefix = 'q';
};

/// Renders the circuit as a multi-line ASCII diagram. Gates are packed into
/// ASAP time slots so that gates drawn in the same column are parallel.
[[nodiscard]] std::string draw_ascii(const Circuit& circuit,
                                     const AsciiOptions& options = {});

}  // namespace qmap
