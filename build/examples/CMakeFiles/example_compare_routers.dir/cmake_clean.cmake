file(REMOVE_RECURSE
  "CMakeFiles/example_compare_routers.dir/compare_routers.cpp.o"
  "CMakeFiles/example_compare_routers.dir/compare_routers.cpp.o.d"
  "example_compare_routers"
  "example_compare_routers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_compare_routers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
