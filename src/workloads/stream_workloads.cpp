#include "workloads/stream_workloads.hpp"

#include <algorithm>

#include "workloads/workloads.hpp"

namespace qmap::workloads {

RepeatedBlockSource::RepeatedBlockSource(Circuit block, std::size_t repeats)
    : block_(std::move(block)), repeats_(repeats) {}

std::size_t RepeatedBlockSource::pull(std::vector<Gate>& out,
                                      std::size_t max_gates) {
  std::size_t appended = 0;
  while (appended < max_gates && blocks_served_ < repeats_) {
    if (block_pos_ >= block_.size()) {
      block_pos_ = 0;
      ++blocks_served_;
      continue;
    }
    out.push_back(block_.gate(block_pos_++));
    ++appended;
  }
  return appended;
}

namespace {

std::size_t repeats_for(std::size_t block_gates, std::size_t min_gates) {
  if (block_gates == 0) return 0;
  return std::max<std::size_t>(
      1, (min_gates + block_gates - 1) / block_gates);
}

}  // namespace

RepeatedBlockSource qft_stream(int n, std::size_t min_gates) {
  Circuit block = qft(n, /*with_swaps=*/false);
  const std::size_t repeats = repeats_for(block.size(), min_gates);
  return RepeatedBlockSource(std::move(block), repeats);
}

RepeatedBlockSource cuccaro_stream(int n, std::size_t min_gates) {
  Circuit block = cuccaro_adder(n);
  const std::size_t repeats = repeats_for(block.size(), min_gates);
  return RepeatedBlockSource(std::move(block), repeats);
}

RepeatedBlockSource random_stream(int n, std::size_t min_gates,
                                  std::uint64_t seed, int block_gates) {
  Rng rng(seed);
  Circuit block = random_circuit(n, block_gates, rng);
  const std::size_t repeats = repeats_for(block.size(), min_gates);
  return RepeatedBlockSource(std::move(block), repeats);
}

}  // namespace qmap::workloads
