// Compile-as-a-service demo: drive a CompileService the way qmap_serve's
// clients do — JSON-lines in, JSON-lines out — then use the C++ API
// directly to show what the cache does for repeated requests.
//
// Run: ./example_service_demo   (exits non-zero if a verification fails)
#include <iostream>
#include <sstream>
#include <string>

#include "qasm/openqasm.hpp"
#include "service/service.hpp"
#include "workloads/workloads.hpp"

using namespace qmap;

int main() {
  obs::Observer observer;
  service::ServiceConfig config;
  config.obs = &observer;
  service::CompileService compile_service(std::move(config));

  // --- 1. The wire protocol: one JSON request per line, one JSON
  // response per line (this is exactly what `qmap_serve` speaks on
  // stdin/stdout or a Unix socket).
  const std::string qasm = to_openqasm(workloads::ghz(4));
  std::ostringstream session;
  session << R"({"op":"ping","id":"hello"})" << "\n";
  session << R"({"op":"compile","id":"cold","client":"alice","device":"ibm_qx4","qasm":)"
          << Json(qasm).dump() << R"(,"seed":7})" << "\n";
  session << R"({"op":"compile","id":"warm","client":"bob","device":"ibm_qx4","qasm":)"
          << Json(qasm).dump() << R"(,"seed":7})" << "\n";
  session << R"({"op":"stats","id":"stats"})" << "\n";

  std::cout << "=== JSON-lines session ===\n";
  std::istringstream in(session.str());
  std::ostringstream out;
  compile_service.serve(in, out);
  std::cout << out.str();

  // --- 2. Same thing through the C++ API: the second answer comes from
  // the content-addressed cache and must replay the identical fingerprint.
  service::ServiceRequest request;
  request.client = "carol";
  request.device = "surface17";
  request.qasm = to_openqasm(workloads::qft(4));
  request.seed = 11;

  const service::ServiceResponse cold = compile_service.handle(request);
  const service::ServiceResponse warm = compile_service.handle(request);
  std::cout << "\n=== C++ API: cold vs warm ===\n";
  std::cout << "cold: status=" << cold.status << " cache=" << cold.cache
            << " rung=" << cold.rung << " winner=" << cold.winner
            << " wall_ms=" << cold.wall_ms << "\n";
  std::cout << "warm: status=" << warm.status << " cache=" << warm.cache
            << " wall_ms=" << warm.wall_ms << "\n";
  std::cout << "fingerprint: " << cold.fingerprint << "\n";

  if (cold.status != "ok" || cold.cache != "miss") {
    std::cerr << "FATAL: cold request did not compile\n";
    return 1;
  }
  if (warm.cache != "hit" || warm.fingerprint != cold.fingerprint) {
    std::cerr << "FATAL: warm request did not replay the cold answer\n";
    return 1;
  }

  // --- 3. A pinned pipeline: the request names its exact pass sequence;
  // the service runs it as rung 1 with the never-fails rung below it.
  service::ServiceRequest pinned = request;
  pinned.pipeline = PipelineSpec::standard("identity", "naive");
  const service::ServiceResponse custom = compile_service.handle(pinned);
  std::cout << "\n=== Pinned pipeline ===\n";
  std::cout << "status=" << custom.status << " rung=" << custom.rung
            << " winner=" << custom.winner << "\n";
  if (custom.status != "ok" || custom.rung != 1) {
    std::cerr << "FATAL: pinned pipeline did not run as rung 1\n";
    return 1;
  }

  // --- 4. Service metrics land in the shared obs registry.
  const auto& metrics = observer.metrics();
  std::cout << "\n=== service.* metrics ===\n";
  std::cout << "requests:  " << metrics.counter("service.requests") << "\n";
  std::cout << "compiles:  " << metrics.counter("service.compiles") << "\n";
  std::cout << "cache hit: " << metrics.counter("service.cache.hit") << "\n";
  std::cout << "cache miss:" << metrics.counter("service.cache.miss") << "\n";

  if (metrics.counter("service.cache.hit") < 1) {
    std::cerr << "FATAL: expected at least one recorded cache hit\n";
    return 1;
  }
  std::cout << "\nservice demo OK\n";
  return 0;
}
