// Shuttling-router tests (Sec. VI-C quantum-dot routing).
#include <gtest/gtest.h>

#include "arch/builtin.hpp"
#include "arch/config.hpp"
#include "core/compiler.hpp"
#include "decompose/decomposer.hpp"
#include "route/sabre.hpp"
#include "route/shuttle.hpp"
#include "sim/equivalence.hpp"
#include "workloads/workloads.hpp"

namespace qmap {
namespace {

TEST(MoveGate, SemanticsEqualSwap) {
  EXPECT_TRUE(make_gate(GateKind::Move, {0, 1})
                  .matrix()
                  .approx_equal(make_gate(GateKind::SWAP, {0, 1}).matrix()));
  EXPECT_TRUE(gate_info(GateKind::Move).symmetric);
}

TEST(QuantumDotArray, DeclaresShuttling) {
  const Device dots = devices::quantum_dot_array(3, 4);
  EXPECT_TRUE(dots.supports_shuttling());
  EXPECT_EQ(dots.num_qubits(), 12);
  EXPECT_TRUE(dots.is_native_kind(GateKind::Move));
  EXPECT_EQ(dots.cycles_for(make_gate(GateKind::Move, {0, 1})), 1);
  // Non-shuttling devices reject Move.
  EXPECT_FALSE(devices::surface17().is_native_kind(GateKind::Move));
}

TEST(QuantumDotArray, ConfigRoundTripKeepsShuttling) {
  const Device decoded =
      device_from_json(device_to_json(devices::quantum_dot_array(2, 3)));
  EXPECT_TRUE(decoded.supports_shuttling());
  EXPECT_EQ(decoded.durations().move_cycles, 1);
}

TEST(Emitter, MoveValidation) {
  const Device dots = devices::quantum_dot_array(1, 3);
  // 2 program qubits on 3 sites: site holding wire 2 is free.
  RoutingEmitter emitter(dots, Placement::identity(2, 3), "t");
  EXPECT_THROW(emitter.emit_move(0, 1), MappingError);  // target occupied
  emitter.emit_move(1, 2);                              // ok: site 2 free
  EXPECT_EQ(emitter.placement().phys_of_program(1), 2);
  const Device no_shuttle = devices::linear(3);
  RoutingEmitter emitter2(no_shuttle, Placement::identity(2, 3), "t");
  EXPECT_THROW(emitter2.emit_move(1, 2), MappingError);
}

TEST(ShuttleRouter, RequiresShuttlingDevice) {
  const Device line = devices::linear(4);
  Circuit c(3);
  c.cx(0, 2);
  EXPECT_THROW(
      (void)ShuttleRouter().route(c, line, Placement::identity(3, 4)),
      MappingError);
}

TEST(ShuttleRouter, UsesMovesWhenSitesAreFree) {
  // 3 program qubits on a 1x6 dot array: plenty of empty dots.
  const Device dots = devices::quantum_dot_array(1, 6);
  Circuit c(3);
  c.cx(0, 1).cx(1, 2).cx(0, 2).cx(0, 1);
  const Placement initial = Placement::from_program_map({0, 2, 4}, 6);
  const RoutingResult result = ShuttleRouter().route(c, dots, initial);
  EXPECT_GT(result.added_moves, 0u);
  Rng rng(3);
  Circuit legal = expand_swaps(result.circuit, dots);
  EXPECT_TRUE(respects_coupling(legal, dots));
  EXPECT_TRUE(mapping_equivalent(c, legal, result.initial.wire_to_phys(),
                                 result.final.wire_to_phys(), rng, 3));
}

TEST(ShuttleRouter, DegradesToSwapsOnFullRegister) {
  // Program fills every dot: no empty site ever exists, so routing must be
  // pure SWAPs.
  const Device dots = devices::quantum_dot_array(1, 4);
  Circuit c(4);
  c.cx(0, 3).cx(1, 2).cx(0, 2);
  const RoutingResult result =
      ShuttleRouter().route(c, dots, Placement::identity(4, 4));
  EXPECT_EQ(result.added_moves, 0u);
  EXPECT_GT(result.added_swaps, 0u);
  Rng rng(4);
  Circuit legal = expand_swaps(result.circuit, dots);
  EXPECT_TRUE(mapping_equivalent(c, legal, result.initial.wire_to_phys(),
                                 result.final.wire_to_phys(), rng, 3));
}

TEST(ShuttleRouter, CheaperThanSwapRoutingOnSparseArrays) {
  // Cost unit: native two-qubit operations (SWAP = 3, Move = 1).
  const Device dots = devices::quantum_dot_array(2, 5);
  Rng workload_rng(8);
  std::size_t shuttle_total = 0;
  std::size_t swap_total = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const Circuit circuit =
        workloads::random_circuit(4, 24, workload_rng, 0.6);
    const Placement initial = GreedyPlacer().place(circuit, dots);
    const RoutingResult shuttled =
        ShuttleRouter().route(circuit, dots, initial);
    const RoutingResult swapped = SabreRouter().route(circuit, dots, initial);
    shuttle_total += 3 * shuttled.added_swaps + shuttled.added_moves;
    swap_total += 3 * swapped.added_swaps;
  }
  // Aggregated over the sparse instance family, shuttling routing must be
  // strictly cheaper than SWAP-only routing in native-op units.
  EXPECT_LT(shuttle_total, swap_total);
}

TEST(ShuttleRouter, WorksThroughCompilerPipeline) {
  Device dots = devices::quantum_dot_array(2, 4);
  CompilerOptions options;
  options.router = "shuttle";
  const Compiler compiler(dots, options);
  const CompilationResult result = compiler.compile(workloads::qft(4));
  for (const Gate& gate : result.final_circuit) {
    EXPECT_TRUE(dots.accepts(gate)) << gate.to_string();
  }
  EXPECT_TRUE(Compiler::verify(result));
}

TEST(ShuttleRouter, MovesSurviveSchedulingAndMetrics) {
  const Device dots = devices::quantum_dot_array(1, 5);
  Circuit c(2);
  c.cx(0, 1);
  const Placement initial = Placement::from_program_map({0, 4}, 5);
  const RoutingResult result = ShuttleRouter().route(c, dots, initial);
  const CircuitMetrics metrics = compute_metrics(result.circuit);
  EXPECT_EQ(metrics.two_qubit_gates, result.added_moves +
                                         result.added_swaps * 1 + 1);
}

}  // namespace
}  // namespace qmap
