// Streaming demo: compile a million-gate circuit from a .qasm file
// without ever holding the circuit in memory.
//
// The demo generates a ~1M-gate Cuccaro ripple-carry adder workload and
// writes it straight to disk through the chunked OpenQASM sink (the
// generator holds one adder block, the sink holds a ~64 KiB buffer). It
// then compiles the file through PassManager::run_stream — incremental
// QASM parse, chunk-wise decompose, windowed sabre routing, token-swap
// cleanup — and prints the throughput and the process peak RSS, which
// stays at the routing window, not the circuit.
//
// Usage: example_streaming_demo [gate-count]   (default 1000000)
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "arch/builtin.hpp"
#include "pass/manager.hpp"
#include "qasm/stream.hpp"
#include "workloads/stream_workloads.hpp"

namespace {

double peak_rss_mb() {
  struct rusage usage = {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB on Linux
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qmap;
  const std::size_t target_gates =
      argc > 1 ? static_cast<std::size_t>(std::stoull(argv[1])) : 1000000;

  std::cout << "=== Streaming out-of-core compilation ===\n";

  // --- 1. Generate the workload on disk, out-of-core. ---
  const std::filesystem::path qasm_path =
      std::filesystem::temp_directory_path() / "streaming_demo_cuccaro.qasm";
  workloads::RepeatedBlockSource generator =
      workloads::cuccaro_stream(/*n=*/6, target_gates);
  {
    std::ofstream out(qasm_path);
    QasmStreamSink qasm_sink(out, generator.num_qubits(),
                             generator.num_cbits());
    std::vector<Gate> chunk;
    while (generator.pull(chunk, 4096) > 0) {
      qasm_sink.put_chunk(chunk);
      chunk.clear();
    }
    qasm_sink.flush();
    std::cout << "wrote " << qasm_sink.gates_written()
              << " gates (6-bit Cuccaro adder blocks, "
              << generator.num_qubits() << " qubits) to " << qasm_path
              << " (" << std::filesystem::file_size(qasm_path) / (1 << 20)
              << " MiB)\n";
  }

  // --- 2. Compile the file through the streaming pipeline. ---
  // Every stage of this spec is window-capable: chunk-wise decompose,
  // identity placement, windowed sabre routing, token-swap cleanup at
  // end-of-stream. Peak memory is O(routing window).
  PipelineSpec spec;
  spec.append("decompose");
  Json placer_options;
  placer_options["algorithm"] = Json(std::string("identity"));
  spec.append("placer", std::move(placer_options));
  Json router_options;
  router_options["algorithm"] = Json(std::string("sabre"));
  spec.append("router", std::move(router_options));
  spec.append("token_swap_finisher");
  const PassManager manager(spec);

  const Device device = devices::ibm_qx5();
  std::ifstream in(qasm_path);
  QasmStreamSource source(in, qasm_path.filename().string());
  CountingSink sink;  // swap in a QasmStreamSink to write the result
  const PipelineRuntime runtime;
  const auto start = std::chrono::steady_clock::now();
  const StreamReport report =
      manager.run_stream(source, device, sink, runtime);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::filesystem::remove(qasm_path);

  if (report.stream.materialized_input || !report.stream.streamed_route ||
      !report.stream.materialized_passes.empty()) {
    std::cerr << "FATAL: pipeline did not run out-of-core\n";
    return 1;
  }

  std::cout << "compiled for " << device.name() << ": "
            << report.stream.gates_in << " gates in -> "
            << report.stream.gates_out << " native gates out\n";
  std::printf("throughput      %.0f gates/sec (%.1f s wall)\n",
              static_cast<double>(report.stream.gates_in) / seconds, seconds);
  std::printf("peak RSS        %.1f MiB (window high-water mark: %zu gates)\n",
              peak_rss_mb(), report.stream.window_peak_gates);
  std::cout << "added SWAPs     " << report.result.routing.added_swaps
            << " (incl. " << report.result.routing.added_bridges
            << " bridges)\n";
  std::cout << "baseline cycles " << report.result.baseline_cycles << "\n";
  std::cout << "\nThe circuit never existed in memory: the QASM file was "
               "parsed, lowered,\nrouted, and counted chunk-by-chunk with "
               "O(window) resident state.\n";
  return 0;
}
