file(REMOVE_RECURSE
  "libqmap_sim.a"
)
