// Commutation-aware dependency analysis tests ([58], Sec. IV).
//
// The safety-critical property: gates_commute may return false negatives
// but NEVER false positives — verified here against the actual matrix
// commutator on randomized gate pairs, plus routing equivalence end to end.
#include <gtest/gtest.h>

#include "arch/builtin.hpp"
#include "decompose/decomposer.hpp"
#include "ir/dag.hpp"
#include "layout/placers.hpp"
#include "route/sabre.hpp"
#include "sim/equivalence.hpp"
#include "sim/statevector.hpp"
#include "workloads/workloads.hpp"

namespace qmap {
namespace {

/// Ground truth: do the two gates commute as operators on 4 qubits?
bool commute_by_matrix(const Gate& a, const Gate& b) {
  Circuit ab(4);
  ab.add(a);
  ab.add(b);
  Circuit ba(4);
  ba.add(b);
  ba.add(a);
  return circuits_equivalent_exact(ab, ba, 1e-9);
}

TEST(Commutation, KnownCommutingPairs) {
  // Two CNOTs sharing their control.
  EXPECT_TRUE(gates_commute(make_gate(GateKind::CX, {0, 1}),
                            make_gate(GateKind::CX, {0, 2})));
  // Two CNOTs sharing their target.
  EXPECT_TRUE(gates_commute(make_gate(GateKind::CX, {0, 2}),
                            make_gate(GateKind::CX, {1, 2})));
  // Rz on a CNOT control.
  EXPECT_TRUE(gates_commute(make_gate(GateKind::Rz, {0}, {0.3}),
                            make_gate(GateKind::CX, {0, 1})));
  // X on a CNOT target.
  EXPECT_TRUE(gates_commute(make_gate(GateKind::X, {1}),
                            make_gate(GateKind::CX, {0, 1})));
  // Controlled-phase gates on overlapping pairs (the QFT ladder).
  EXPECT_TRUE(gates_commute(make_gate(GateKind::CPhase, {0, 1}, {0.5}),
                            make_gate(GateKind::CPhase, {1, 2}, {0.25})));
  // CZ with CZ on any overlap.
  EXPECT_TRUE(gates_commute(make_gate(GateKind::CZ, {0, 1}),
                            make_gate(GateKind::CZ, {1, 2})));
  // Disjoint gates always commute.
  EXPECT_TRUE(gates_commute(make_gate(GateKind::H, {0}),
                            make_gate(GateKind::CX, {1, 2})));
}

TEST(Commutation, KnownNonCommutingPairs) {
  // CNOT chain: target of one is control of the next.
  EXPECT_FALSE(gates_commute(make_gate(GateKind::CX, {0, 1}),
                             make_gate(GateKind::CX, {1, 2})));
  // H orders with everything on its qubit.
  EXPECT_FALSE(gates_commute(make_gate(GateKind::H, {0}),
                             make_gate(GateKind::CX, {0, 1})));
  // X on a CNOT control.
  EXPECT_FALSE(gates_commute(make_gate(GateKind::X, {0}),
                             make_gate(GateKind::CX, {0, 1})));
  // Measurement never commutes.
  EXPECT_FALSE(
      gates_commute(make_measure(0, 0), make_gate(GateKind::Z, {0})));
}

TEST(Commutation, NoFalsePositivesOnRandomPairs) {
  // Exhaustive-ish sweep over the gate zoo on overlapping operand sets.
  Rng rng(5);
  const GateKind kinds[] = {
      GateKind::X,  GateKind::Y,     GateKind::Z,    GateKind::H,
      GateKind::S,  GateKind::T,     GateKind::Rx,   GateKind::Ry,
      GateKind::Rz, GateKind::Phase, GateKind::CX,   GateKind::CZ,
      GateKind::SWAP, GateKind::CPhase, GateKind::CRz, GateKind::CCX};
  int checked_positive = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const auto pick = [&](GateKind kind) {
      const GateInfo& info = gate_info(kind);
      std::vector<int> qubits;
      while (qubits.size() < static_cast<std::size_t>(info.arity)) {
        const int q = static_cast<int>(rng.index(4));
        if (std::find(qubits.begin(), qubits.end(), q) == qubits.end()) {
          qubits.push_back(q);
        }
      }
      std::vector<double> params(
          static_cast<std::size_t>(info.num_params), rng.uniform(0.1, 1.4));
      return make_gate(kind, qubits, params);
    };
    const Gate a = pick(kinds[rng.index(std::size(kinds))]);
    const Gate b = pick(kinds[rng.index(std::size(kinds))]);
    if (gates_commute(a, b)) {
      ++checked_positive;
      EXPECT_TRUE(commute_by_matrix(a, b))
          << "FALSE POSITIVE: " << a.to_string() << " vs " << b.to_string();
    }
  }
  EXPECT_GT(checked_positive, 30);  // the sweep must actually exercise it
}

TEST(CommutationDag, QftFrontLayerWidens) {
  // After the leading H, the whole controlled-phase ladder on qubit 0
  // commutes pairwise and becomes ready at once under the relaxed DAG.
  const Circuit qft = workloads::qft(5, /*with_swaps=*/false);
  DependencyDag sequential(qft, DagMode::Sequential);
  DependencyDag relaxed(qft, DagMode::Commutation);
  ASSERT_EQ(sequential.ready(), relaxed.ready());  // both start at {h q0}
  sequential.mark_scheduled(sequential.ready().front());
  relaxed.mark_scheduled(relaxed.ready().front());
  EXPECT_EQ(sequential.ready_two_qubit().size(), 1u);
  EXPECT_EQ(relaxed.ready_two_qubit().size(), 4u);  // cp(q1..q4, q0)
}

TEST(CommutationDag, SharedControlCnotsAllReady) {
  Circuit c(4);
  c.cx(0, 1).cx(0, 2).cx(0, 3);
  const DependencyDag dag(c, DagMode::Commutation);
  EXPECT_EQ(dag.ready().size(), 3u);
  const DependencyDag strict(c, DagMode::Sequential);
  EXPECT_EQ(strict.ready().size(), 1u);
}

TEST(CommutationDag, SchedulingAnyReadyOrderPreservesSemantics) {
  // Emit gates in a scrambled-but-DAG-legal order; result must stay
  // equivalent. This is the property routers rely on.
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const Circuit circuit = workloads::random_circuit(4, 30, rng, 0.5);
    DependencyDag dag(circuit, DagMode::Commutation);
    Circuit reordered(circuit.num_qubits(), "reordered");
    while (!dag.all_scheduled()) {
      const std::vector<int>& ready = dag.ready();
      // Pick the LAST ready node to maximally scramble the order.
      const int node = ready.back();
      reordered.add(circuit.gate(static_cast<std::size_t>(node)));
      dag.mark_scheduled(node);
    }
    EXPECT_TRUE(circuits_equivalent_exact(circuit, reordered, 1e-7))
        << "trial " << trial;
  }
}

TEST(CommutationRouting, SabreWithCommutationStaysCorrect) {
  SabreRouter::Options options;
  options.use_commutation = true;
  SabreRouter router(options);
  Rng rng(9);
  for (const Device& device : {devices::surface17(), devices::ibm_qx5()}) {
    for (const Circuit& circuit :
         {workloads::qft(5), workloads::random_circuit(5, 40, rng, 0.5)}) {
      const Circuit lowered = lower_to_device(circuit, device, true);
      const Placement initial = GreedyPlacer().place(lowered, device);
      const RoutingResult result = router.route(lowered, device, initial);
      Circuit legal = expand_swaps(result.circuit, device);
      legal = fix_cx_directions(legal, device);
      EXPECT_TRUE(respects_coupling(legal, device));
      Rng verify_rng(10);
      EXPECT_TRUE(mapping_equivalent(circuit, legal,
                                     result.initial.wire_to_phys(),
                                     result.final.wire_to_phys(),
                                     verify_rng, 3));
    }
  }
}

TEST(CommutationRouting, HelpsOnPhaseLadders) {
  // A circuit of mutually commuting CPhase gates on many pairs: with the
  // strict DAG the order forces long SWAP chains; the relaxed DAG lets the
  // router pick whichever pair is local. Aggregate over instances.
  const Device device = devices::linear(6);
  Rng rng(11);
  std::size_t strict_swaps = 0;
  std::size_t relaxed_swaps = 0;
  for (int trial = 0; trial < 4; ++trial) {
    Circuit ladder(6, "ladder");
    for (int i = 0; i < 10; ++i) {
      const int a = static_cast<int>(rng.index(6));
      int b = static_cast<int>(rng.index(5));
      if (b >= a) ++b;
      ladder.cp(rng.uniform(0.1, 1.0), a, b);
    }
    const Circuit lowered = lower_to_device(ladder, device, true);
    const Placement initial = GreedyPlacer().place(lowered, device);
    strict_swaps +=
        SabreRouter().route(lowered, device, initial).added_swaps;
    SabreRouter::Options options;
    options.use_commutation = true;
    relaxed_swaps +=
        SabreRouter(options).route(lowered, device, initial).added_swaps;
  }
  EXPECT_LE(relaxed_swaps, strict_swaps);
}

}  // namespace
}  // namespace qmap
