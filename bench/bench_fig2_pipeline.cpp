// E2 / Fig. 2 — the compilation flow: cQASM program + machine description
// in, scheduled physical operations out.
//
// Regenerates the figure's data flow stage by stage on Surface-7 (the
// device drawn in Fig. 2) and Surface-17, reporting what each compiler
// stage produced, and times the full pipeline.
#include <benchmark/benchmark.h>

#include "arch/config.hpp"
#include "bench_util.hpp"
#include "qasm/cqasm.hpp"

namespace {

using namespace qmap;
using namespace qmap::bench;

const char* kProgram = R"(version 1.0
qubits 3
h q[0]
cnot q[0], q[1]
cnot q[1], q[2]
h q[2]
cnot q[2], q[0]
measure q[0]
measure q[1]
measure q[2]
)";

void run_pipeline(const Device& device) {
  section("Fig. 2 pipeline on " + device.name());
  // Left input: the algorithm as cQASM.
  const Circuit circuit = parse_cqasm(kProgram);
  std::cout << "input: " << circuit.size() << " gates ("
            << compute_metrics(circuit).to_string() << ")\n";
  // Right input: the machine description (JSON config round trip, exactly
  // what a config file would contain).
  const Device loaded = device_from_json(device_to_json(device));
  std::cout << "machine description: " << loaded.summary();

  CompilerOptions options;
  options.placer = "exhaustive";
  options.router = "qmap";
  const Compiler compiler(loaded, options);
  const CompilationResult result = compiler.compile(circuit);

  std::cout << "stage 1 (gate decomposition): "
            << compute_metrics(result.lowered).to_string() << "\n";
  std::cout << "stage 2 (initial placement):  "
            << result.routing.initial.to_string() << "\n";
  std::cout << "stage 3 (routing):            " << result.routing.to_string()
            << "\n";
  std::cout << "stage 4 (native circuit):     "
            << result.final_metrics.to_string() << "\n";
  std::cout << "stage 5 (schedule):           " << result.scheduled_cycles
            << " cycles = "
            << result.scheduled_cycles * loaded.durations().cycle_ns
            << " ns (baseline " << result.baseline_cycles << " cycles)\n";
  std::cout << "final placement:              " << result.routing.final.to_string()
            << "\n";
  paper_note(
      "Fig. 2: 'The initial placement of the program qubits may differ from "
      "the final placement.'");
  if (!Compiler::verify(result)) {
    std::cerr << "FATAL: pipeline verification failed\n";
    std::exit(1);
  }
  std::cout << "verification: EQUIVALENT\n";
}

void BM_FullPipeline(benchmark::State& state) {
  const Device device =
      state.range(0) == 0 ? devices::surface7() : devices::surface17();
  const Circuit circuit = parse_cqasm(kProgram);
  const Compiler compiler(device);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler.compile(circuit));
  }
  state.SetLabel(device.name());
}
BENCHMARK(BM_FullPipeline)->Arg(0)->Arg(1);

void BM_CqasmParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_cqasm(kProgram));
  }
}
BENCHMARK(BM_CqasmParse);

}  // namespace

int main(int argc, char** argv) {
  run_pipeline(devices::surface7());
  run_pipeline(devices::surface17());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
