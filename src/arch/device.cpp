#include "arch/device.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qmap {

Device::Device(std::string name, CouplingGraph coupling)
    : name_(std::move(name)), coupling_(std::move(coupling)) {
  // Warm the all-pairs distance matrix eagerly: every constructed device
  // hands pool workers a pure-read coupling().distance() with no lazy
  // first-call fill to contend on.
  coupling_.precompute_distances();
}

void Device::set_native_two_qubit(GateKind kind) {
  if (gate_info(kind).arity != 2) {
    throw DeviceError("native two-qubit gate must have arity 2");
  }
  native_two_qubit_ = kind;
}

bool Device::is_native_kind(GateKind kind) const {
  const GateInfo& info = gate_info(kind);
  if (kind == GateKind::Measure || kind == GateKind::Barrier) return true;
  if (kind == GateKind::Move) return supports_shuttling_;
  if (info.arity == 2) return kind == native_two_qubit_;
  if (info.arity != 1) return false;
  if (native_single_qubit_.empty()) return true;  // unrestricted device
  return std::find(native_single_qubit_.begin(), native_single_qubit_.end(),
                   kind) != native_single_qubit_.end();
}

bool Device::accepts(const Gate& gate) const {
  if (gate.kind == GateKind::Measure) return measurable(gate.qubits[0]);
  if (gate.kind == GateKind::Barrier) return true;
  if (!is_native_kind(gate.kind)) return false;
  if (gate.is_two_qubit()) {
    const int a = gate.qubits[0];
    const int b = gate.qubits[1];
    if (gate.is_directional()) return coupling_.orientation_allowed(a, b);
    return coupling_.connected(a, b);
  }
  return true;
}

int Device::cycles_for(const Gate& gate) const {
  switch (gate.kind) {
    case GateKind::Barrier:
      return 0;
    case GateKind::Measure:
      return durations_.measure_cycles;
    case GateKind::Move:
      return durations_.move_cycles;
    default:
      break;
  }
  const int arity = gate_info(gate.kind).arity;
  if (arity == 1) return durations_.single_qubit_cycles;
  if (gate.kind == GateKind::SWAP) {
    // A SWAP is not native on either paper device; it costs its
    // decomposition: 3 CX back-to-back (IBM) or 3 CZ + interleaved Ry
    // (Surface-17, Fig. 6) — both serialize three two-qubit gates, plus
    // the surrounding single-qubit layers on the CZ device.
    if (native_two_qubit_ == GateKind::CX) {
      return 3 * durations_.two_qubit_cycles;
    }
    return 3 * durations_.two_qubit_cycles + 4 * durations_.single_qubit_cycles;
  }
  if (arity == 2) return durations_.two_qubit_cycles;
  // Three-qubit gates are never native; charge their standard 6-CX
  // decomposition depth as a conservative estimate.
  return 6 * durations_.two_qubit_cycles + 8 * durations_.single_qubit_cycles;
}

void Device::set_frequency_groups(std::vector<int> groups) {
  if (!groups.empty() &&
      groups.size() != static_cast<std::size_t>(num_qubits())) {
    throw DeviceError("frequency group vector size mismatch");
  }
  frequency_group_ = std::move(groups);
}

int Device::frequency_group(int qubit) const {
  if (frequency_group_.empty()) return -1;
  if (qubit < 0 || qubit >= num_qubits()) {
    throw DeviceError("frequency_group: qubit out of range");
  }
  return frequency_group_[static_cast<std::size_t>(qubit)];
}

void Device::set_feedlines(std::vector<int> lines) {
  if (!lines.empty() &&
      lines.size() != static_cast<std::size_t>(num_qubits())) {
    throw DeviceError("feedline vector size mismatch");
  }
  feedline_ = std::move(lines);
}

int Device::feedline(int qubit) const {
  if (feedline_.empty()) return -1;
  if (qubit < 0 || qubit >= num_qubits()) {
    throw DeviceError("feedline: qubit out of range");
  }
  return feedline_[static_cast<std::size_t>(qubit)];
}

std::vector<int> Device::parked_qubits(int a, int b) const {
  if (frequency_group_.empty()) return {};
  const int ga = frequency_group(a);
  const int gb = frequency_group(b);
  if (ga < 0 || gb < 0 || ga == gb) return {};
  // Convention: smaller group index = higher frequency (f1 > f2 > f3).
  const int high = ga < gb ? a : b;
  const int low = ga < gb ? b : a;
  const int low_group = frequency_group(low);
  std::vector<int> parked;
  for (const int n : coupling_.neighbors(high)) {
    if (n == low) continue;
    if (frequency_group(n) == low_group) parked.push_back(n);
  }
  return parked;
}

void Device::set_max_parallel_two_qubit(int limit) {
  if (limit < 0) throw DeviceError("parallelism limit must be >= 0");
  max_parallel_two_qubit_ = limit;
}

bool Device::measurable(int qubit) const {
  if (qubit < 0 || qubit >= num_qubits()) {
    throw DeviceError("measurable: qubit out of range");
  }
  if (measurable_.empty()) return true;
  return measurable_[static_cast<std::size_t>(qubit)];
}

void Device::set_measurable(std::vector<bool> mask) {
  if (!mask.empty() && mask.size() != static_cast<std::size_t>(num_qubits())) {
    throw DeviceError("measurable mask size mismatch");
  }
  if (!mask.empty() &&
      std::find(mask.begin(), mask.end(), true) == mask.end()) {
    throw DeviceError("device must have at least one measurable qubit");
  }
  measurable_ = std::move(mask);
}

const NoiseModel& Device::noise() const {
  if (!noise_.has_value()) {
    throw DeviceError("device '" + name_ + "' has no noise model attached");
  }
  return *noise_;
}

void Device::set_noise(NoiseModel noise) {
  if (noise.num_qubits() != num_qubits()) {
    throw DeviceError("noise model size does not match device");
  }
  noise_ = std::move(noise);
}

bool Device::has_control_constraints() const {
  return !frequency_group_.empty() || !feedline_.empty() ||
         max_parallel_two_qubit_ > 0;
}

std::string Device::summary() const {
  std::string out = name_ + ": " + std::to_string(num_qubits()) + " qubits, " +
                    std::to_string(coupling_.num_edges()) + " edges\n";
  out += "  native 2q: " + std::string(gate_info(native_two_qubit_).name);
  bool symmetric = true;
  for (const auto& edge : coupling_.edges()) {
    if (!edge.a_to_b || !edge.b_to_a) symmetric = false;
  }
  out += symmetric ? " (symmetric)\n" : " (directed edges)\n";
  out += "  native 1q: ";
  if (native_single_qubit_.empty()) {
    out += "(unrestricted)";
  } else {
    for (std::size_t i = 0; i < native_single_qubit_.size(); ++i) {
      if (i != 0) out += ", ";
      out += gate_info(native_single_qubit_[i]).name;
    }
  }
  out += "\n";
  if (!frequency_group_.empty()) {
    int groups = 0;
    for (const int g : frequency_group_) groups = std::max(groups, g + 1);
    out += "  frequency groups: " + std::to_string(groups) + "\n";
  }
  if (!feedline_.empty()) {
    int lines = 0;
    for (const int f : feedline_) lines = std::max(lines, f + 1);
    out += "  measurement feedlines: " + std::to_string(lines) + "\n";
  }
  return out;
}

}  // namespace qmap
