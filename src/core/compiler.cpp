#include "core/compiler.hpp"

#include "common/rng.hpp"
#include "pass/manager.hpp"
#include "sim/equivalence.hpp"
#include "sim/stabilizer.hpp"

namespace qmap {

Compiler::Compiler(Device device, CompilerOptions options)
    : device_(std::move(device)), options_(std::move(options)) {
  artifacts_ = options_.artifacts ? options_.artifacts
                                  : ArchArtifacts::shared(device_);
}

PipelineSpec Compiler::pipeline() const {
  return PipelineSpec::standard(options_.placer, options_.router,
                                options_.lower_to_native, options_.peephole,
                                options_.run_scheduler,
                                options_.use_control_constraints);
}

CompilationResult Compiler::compile(const Circuit& circuit) const {
  return compile(circuit, pipeline());
}

CompilationResult Compiler::compile(const Circuit& circuit,
                                    const PipelineSpec& spec) const {
  const PassManager manager(spec);
  PipelineRuntime runtime;
  runtime.seed = options_.seed;
  runtime.cancel = options_.cancel;
  runtime.stage_hook = options_.stage_hook;
  runtime.obs = options_.obs;
  runtime.obs_parent_span = options_.obs_parent_span;
  runtime.artifacts = artifacts_;
  return manager.run(circuit, device_, runtime);
}

bool Compiler::verify(const CompilationResult& result, int trials,
                      std::uint64_t seed) {
  // Clifford circuits get the exact tableau check, which scales to any
  // width; everything else uses randomized state-vector equivalence.
  if (is_clifford_circuit(result.original) &&
      is_clifford_circuit(result.final_circuit)) {
    return clifford_mapping_equivalent(
        result.original, result.final_circuit,
        result.routing.initial.wire_to_phys(),
        result.routing.final.wire_to_phys());
  }
  Rng rng(seed);
  return mapping_equivalent(result.original, result.final_circuit,
                            result.routing.initial.wire_to_phys(),
                            result.routing.final.wire_to_phys(), rng, trials);
}

}  // namespace qmap
