# Empty compiler generated dependencies file for bench_shuttling.
# This may be replaced when dependencies are built.
