#include "common/matrix.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "common/error.hpp"

namespace qmap {

Matrix::Matrix(std::size_t n, std::initializer_list<Complex> values)
    : Matrix(n, n) {
  if (values.size() != n * n) {
    throw Error("Matrix: initializer list size does not match dimensions");
  }
  std::size_t i = 0;
  for (const Complex& v : values) data_[i++] = v;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = Complex{1.0, 0.0};
  return m;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) {
    throw Error("Matrix: dimension mismatch in multiplication");
  }
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const Complex a = at(i, k);
      if (a == Complex{0.0, 0.0}) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out.at(i, j) += a * rhs.at(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::dagger() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      out.at(j, i) = std::conj(at(i, j));
    }
  }
  return out;
}

Matrix Matrix::kron(const Matrix& rhs) const {
  Matrix out(rows_ * rhs.rows_, cols_ * rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      const Complex a = at(i, j);
      if (a == Complex{0.0, 0.0}) continue;
      for (std::size_t k = 0; k < rhs.rows_; ++k) {
        for (std::size_t l = 0; l < rhs.cols_; ++l) {
          out.at(i * rhs.rows_ + k, j * rhs.cols_ + l) = a * rhs.at(k, l);
        }
      }
    }
  }
  return out;
}

double Matrix::distance(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw Error("Matrix: dimension mismatch in distance");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    sum += std::norm(data_[i] - other.data_[i]);
  }
  return std::sqrt(sum);
}

bool Matrix::is_unitary(double tolerance) const {
  if (rows_ != cols_) return false;
  const Matrix product = *this * dagger();
  return product.approx_equal(identity(rows_), tolerance);
}

bool Matrix::approx_equal(const Matrix& other, double tolerance) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - other.data_[i]) > tolerance) return false;
  }
  return true;
}

bool Matrix::equal_up_to_global_phase(const Matrix& other,
                                      double tolerance) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  // Find the largest-magnitude entry to fix the phase robustly.
  std::size_t best = 0;
  double best_mag = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double mag = std::abs(data_[i]);
    if (mag > best_mag) {
      best_mag = mag;
      best = i;
    }
  }
  if (best_mag < tolerance) {
    // `this` is (numerically) zero: equal iff `other` is too.
    for (const Complex& v : other.data_) {
      if (std::abs(v) > tolerance) return false;
    }
    return true;
  }
  if (std::abs(other.data_[best]) < tolerance) return false;
  const Complex phase = other.data_[best] / data_[best];
  if (std::abs(std::abs(phase) - 1.0) > tolerance) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] * phase - other.data_[i]) > tolerance) return false;
  }
  return true;
}

std::string Matrix::to_string(int precision) const {
  std::string out;
  char buffer[96];
  for (std::size_t i = 0; i < rows_; ++i) {
    out += "[ ";
    for (std::size_t j = 0; j < cols_; ++j) {
      const Complex& v = at(i, j);
      std::snprintf(buffer, sizeof(buffer), "%+.*f%+.*fi ", precision,
                    v.real(), precision, v.imag());
      out += buffer;
    }
    out += "]\n";
  }
  return out;
}

}  // namespace qmap
