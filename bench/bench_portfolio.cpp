// Portfolio engine vs. every fixed strategy — the engine's two promises,
// measured on the workload suite:
//
//   1. Quality: the portfolio winner's selection cost is <= the cost of
//      every fixed strategy it raced (it IS the per-circuit min, and the
//      table shows how often each fixed strategy would have been the wrong
//      default — the paper's "no single mapper wins everywhere" point made
//      quantitative).
//   2. Throughput: racing N strategies on a pool costs close to
//      max(strategy time), not sum — reported as the parallel speedup
//      (needs a multi-core machine to show a >1 factor; on one core the
//      wall time degenerates to the serial sum).
//
// The bench exits non-zero if the portfolio result fails verification or
// ever costs more than a fixed strategy.
#include <benchmark/benchmark.h>

#include <thread>

#include "bench_util.hpp"
#include "engine/portfolio.hpp"

namespace {

using namespace qmap;
using namespace qmap::bench;

std::vector<std::pair<std::string, Circuit>> suite() {
  Rng rng(99);
  std::vector<std::pair<std::string, Circuit>> rows;
  rows.emplace_back("fig1", workloads::fig1_example());
  rows.emplace_back("ghz8", workloads::ghz(8));
  rows.emplace_back("qft6", workloads::qft(6));
  rows.emplace_back("bv7", workloads::bernstein_vazirani({1, 0, 1, 1, 0, 1})
                               .unitary_part());
  rows.emplace_back("adder2", workloads::cuccaro_adder(2));
  rows.emplace_back("qv8", workloads::quantum_volume(8, 2, rng));
  rows.emplace_back("random10",
                    workloads::random_circuit(10, 80, rng, 0.45));
  return rows;
}

PortfolioOptions bench_options(int num_threads) {
  PortfolioOptions options;
  options.num_threads = num_threads;
  options.cost_name = "gates";
  options.base_seed = 0xC0FFEE;
  return options;
}

void print_figure() {
  paper_note(
      "Secs. III-VI: heuristic routers trade optimality for speed, exact "
      "approaches do not scale, and the ranking flips per circuit/device "
      "pair. The portfolio races them all and keeps the cheapest result.");

  const Device device = devices::surface17();
  const PortfolioCompiler portfolio(device, bench_options(0));

  section("Portfolio-best vs fixed strategies on " + device.name() +
          " (selection cost: routed two-qubit gates)");
  std::vector<std::string> header = {"workload"};
  for (const StrategySpec& spec : portfolio.strategies()) {
    header.push_back(spec.label());
  }
  header.push_back("portfolio");
  header.push_back("winner");
  TextTable table(header);

  const CostFunction cost = make_cost_function("gates");
  std::vector<int> wins(portfolio.strategies().size(), 0);
  double serial_sum_ms = 0.0;
  double portfolio_wall_ms = 0.0;

  for (const auto& [label, circuit] : suite()) {
    const PortfolioResult result = portfolio.compile(circuit);
    if (!Compiler::verify(result.best)) {
      std::cerr << "FATAL: portfolio result failed verification on " << label
                << "\n";
      std::exit(1);
    }
    portfolio_wall_ms += result.wall_ms;
    const double winner_cost =
        result.telemetry[static_cast<std::size_t>(result.winner_index)].cost;

    std::vector<std::string> row = {label};
    for (const StrategyTelemetry& t : result.telemetry) {
      serial_sum_ms += t.wall_ms;
      if (t.status != StrategyTelemetry::Status::Completed) {
        row.push_back("-");
        continue;
      }
      if (winner_cost > t.cost) {
        std::cerr << "FATAL: portfolio winner (" << winner_cost
                  << ") costs more than fixed strategy " << t.spec.label()
                  << " (" << t.cost << ") on " << label << "\n";
        std::exit(1);
      }
      row.push_back(TextTable::num(t.cost, 0));
    }
    row.push_back(TextTable::num(winner_cost, 0));
    row.push_back(result.winner_label);
    wins[static_cast<std::size_t>(result.winner_index)] += 1;
    table.add_row(row);
  }
  std::cout << table.str();

  section("Winner distribution (why a fixed default is the wrong bet)");
  TextTable wins_table({"strategy", "wins"});
  for (std::size_t i = 0; i < portfolio.strategies().size(); ++i) {
    wins_table.add_row(
        {portfolio.strategies()[i].label(), TextTable::num(wins[i])});
  }
  std::cout << wins_table.str();

  section("Throughput: portfolio wall time vs serial strategy sum");
  std::printf(
      "portfolio wall %.1f ms, serial strategy sum %.1f ms, speedup %.2fx "
      "on %u hardware thread(s)\n",
      portfolio_wall_ms, serial_sum_ms, serial_sum_ms / portfolio_wall_ms,
      std::thread::hardware_concurrency());
  std::printf(
      "(speedup approaches the strategy count on machines with >= 4 cores; "
      "a single-core host degenerates to the serial sum)\n");
}

void BM_PortfolioCompile(benchmark::State& state) {
  const Device device = devices::surface17();
  const PortfolioCompiler portfolio(
      device, bench_options(static_cast<int>(state.range(0))));
  Rng rng(99);
  const Circuit circuit = workloads::random_circuit(10, 80, rng, 0.45);
  for (auto _ : state) {
    benchmark::DoNotOptimize(portfolio.compile(circuit));
  }
  state.SetLabel(std::to_string(state.range(0)) + " threads");
}
BENCHMARK(BM_PortfolioCompile)->Arg(1)->Arg(2)->Arg(4);

void BM_FixedStrategyCompile(benchmark::State& state) {
  const Device device = devices::surface17();
  CompilerOptions options;
  options.placer = "greedy";
  options.router = "sabre";
  const Compiler compiler(device, options);
  Rng rng(99);
  const Circuit circuit = workloads::random_circuit(10, 80, rng, 0.45);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler.compile(circuit));
  }
  state.SetLabel("greedy+sabre");
}
BENCHMARK(BM_FixedStrategyCompile);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
