// StreamRouteCore: the sliding-window routing core behind
// Router::route_stream for the sabre family (sabre.cpp, bridge.cpp).
//
// Where RouteCore (route_ir.hpp) builds the whole circuit's CSR DAG up
// front, StreamRouteCore holds only a window of gates [base_, next_gid_):
// the DAG grows at the tail as chunks are pulled from a GateSource and is
// reclaimed from the head once a prefix is fully scheduled. Routed output
// leaves through the RoutingEmitter's sink spill, so peak memory is
// O(window + spill threshold), not O(circuit).
//
// Fidelity contract: a streamed route is byte-identical to route() on the
// materialized circuit. Both paths instantiate the same run_sabre_loop
// template (sabre_loop.hpp); this core guarantees that every query the
// loop makes returns the same answer the materialized core would give,
// by maintaining the window-advance invariant — before every flush pass
// and every swap decision, the window contains
//
//   (a) every gate that is ready in the *full* dependency DAG, and
//   (b) at least extended_window unscheduled non-front two-qubit gates
//       (or the source is dry).
//
// For (a) it suffices that every program qubit has an unscheduled
// in-window gate touching it: consecutive gates on a qubit are chained by
// sequential last-writer edges, so they are scheduled strictly in program
// order — while a qubit has any unscheduled in-window toucher, its last
// in-window toucher is unscheduled, and every beyond-tail gate on that
// qubit has an unscheduled predecessor and cannot be ready. The core
// therefore pulls while any qubit is "idle" (no unscheduled toucher).
// For (b) it pulls while the unscheduled two-qubit count is below
// extended_window plus the ready-list size (a conservative bound on the
// front layer). Consequence: the resident window is bounded by the
// circuit's qubit-reuse distance — the largest program-order gap between
// consecutive gates on one qubit — which is small for circuits that keep
// all qubits active (QFT, adders, layered random circuits) but degrades
// to the whole circuit for a qubit that goes quiet until the end.
//
// Only DagMode::Sequential is supported: the commutation-aware DAG needs
// unbounded lookahead (any later gate on a shared qubit may or may not
// commute), which has no windowed form.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "arch/artifacts.hpp"
#include "arch/device.hpp"
#include "ir/gate_stream.hpp"
#include "layout/placement.hpp"
#include "route/router.hpp"
#include "route/sabre_loop.hpp"

namespace qmap {

class StreamRouteCore {
 public:
  static constexpr std::uint32_t kNoQubit = 0xFFFFFFFFu;
  static constexpr std::uint8_t kFlagTwoQubit = 1u;

  StreamRouteCore(GateSource& source, const Device& device,
                  const ArchArtifacts* artifacts, const Placement& initial,
                  std::size_t chunk_gates, std::size_t extended_window,
                  bool enable_bridge);

  // --- the run_sabre_loop Core concept (see sabre_loop.hpp) ---

  [[nodiscard]] const SabreLoopBuffers& buffers() const { return buffers_; }
  [[nodiscard]] bool all_scheduled() const {
    return dry_ && num_unscheduled_ == 0;
  }
  /// Extends the window to the invariant, then emits every executable
  /// ready gate until fixpoint (re-extending between passes), retires the
  /// scheduled prefix and spills buffered output downstream.
  bool flush(RoutingEmitter& emitter);
  void refresh_front();
  [[nodiscard]] std::uint32_t front_size() const {
    return static_cast<std::uint32_t>(front_buf_.size());
  }
  [[nodiscard]] const std::uint32_t* front_gates() const {
    return front_buf_.data();
  }
  /// min(extended_window, two-qubit gates seen so far). Equal at every
  /// decision point to the materialized min(extended_window, total): the
  /// quota invariant (b) guarantees seen >= extended_window while the
  /// source has gates left, and once dry seen == total.
  [[nodiscard]] std::size_t ext_cap() const {
    return std::min(extended_window_, seen_two_qubit_);
  }
  std::uint32_t collect_extended(std::size_t window, std::uint32_t* out);
  void mark_relevant(std::uint8_t* relevant) const;
  void collect_endpoints(const std::uint32_t* nodes, std::uint32_t count,
                         std::int32_t* pa, std::int32_t* pb) const {
    for (std::uint32_t k = 0; k < count; ++k) {
      pa[k] = static_cast<std::int32_t>(phys_of_[q0_[idx(nodes[k])]]);
      pb[k] = static_cast<std::int32_t>(phys_of_[q1_[idx(nodes[k])]]);
    }
  }
  [[nodiscard]] int dist_pair(std::int32_t pa, std::int32_t pb) const {
    return dist(pa, pb);
  }
  [[nodiscard]] int dist_pair_swapped(std::int32_t pa, std::int32_t pb,
                                      int ea, int eb) const {
    if (pa == ea) pa = eb;
    else if (pa == eb) pa = ea;
    if (pb == ea) pb = eb;
    else if (pb == eb) pb = ea;
    return dist(pa, pb);
  }
  [[nodiscard]] GateKind kind_of(std::uint32_t node) const {
    return static_cast<GateKind>(kind_[idx(node)]);
  }
  [[nodiscard]] int gate_dist(std::uint32_t node) const {
    return dist(static_cast<int>(phys_of_[q0_[idx(node)]]),
                static_cast<int>(phys_of_[q1_[idx(node)]]));
  }
  [[nodiscard]] int phys_q0(std::uint32_t node) const {
    return static_cast<int>(phys_of_[q0_[idx(node)]]);
  }
  [[nodiscard]] int phys_q1(std::uint32_t node) const {
    return static_cast<int>(phys_of_[q1_[idx(node)]]);
  }
  [[nodiscard]] std::vector<int> shortest_path(int a, int b) const {
    return artifacts_ != nullptr ? artifacts_->shortest_path(a, b)
                                 : device_->coupling().shortest_path(a, b);
  }
  void emit_swap(RoutingEmitter& emitter, int phys_a, int phys_b) {
    emitter.emit_swap(phys_a, phys_b);
    const std::int32_t wa = prog_at_[phys_a];
    const std::int32_t wb = prog_at_[phys_b];
    prog_at_[phys_a] = wb;
    prog_at_[phys_b] = wa;
    if (wa >= 0) phys_of_[wa] = static_cast<std::uint32_t>(phys_b);
    if (wb >= 0) phys_of_[wb] = static_cast<std::uint32_t>(phys_a);
  }
  void mark_front_scheduled(std::uint32_t node) { mark_scheduled(node); }

  // --- stream statistics ---

  [[nodiscard]] std::size_t gates_seen() const noexcept {
    return gates_seen_;
  }
  [[nodiscard]] std::size_t window_peak_gates() const noexcept {
    return window_peak_;
  }

 private:
  [[nodiscard]] std::size_t idx(std::uint32_t gid) const {
    return gid - base_;
  }
  [[nodiscard]] int dist(int a, int b) const {
    return dist_[static_cast<std::size_t>(a) *
                     static_cast<std::size_t>(num_phys_) +
                 static_cast<std::size_t>(b)];
  }
  [[nodiscard]] bool executable(std::uint32_t node) const {
    if ((flags_[idx(node)] & kFlagTwoQubit) == 0) return true;
    return gate_dist(node) == 1;
  }
  /// Pulls until the window-advance invariant holds or the source dries.
  void advance_window();
  bool pull_chunk();
  void append_gate(Gate&& gate);
  void add_successor(std::uint32_t prev, std::uint32_t gid);
  /// FrontLayer::mark_scheduled over the window: removes `node` from the
  /// sorted ready list (CircuitError if absent), decrements successor
  /// in-degrees, inserts newly enabled successors at their sorted
  /// position, and maintains the per-qubit toucher counts.
  void mark_scheduled(std::uint32_t node);
  /// Reclaims the fully-scheduled prefix once it is worth the compaction.
  void retire();

  GateSource* source_;
  const Device* device_;
  const ArchArtifacts* artifacts_;  // maybe null
  std::size_t chunk_gates_;
  std::size_t extended_window_;
  bool enable_bridge_;
  int num_phys_ = 0;
  int num_program_qubits_ = 0;

  // Distance matrix: artifacts' shared row-major matrix, or a one-off
  // flat copy of the device's warmed cache.
  const int* dist_ = nullptr;
  std::vector<int> dist_store_;

  // Placement mirror (kept in lockstep with the emitter's Placement).
  std::vector<std::uint32_t> phys_of_;  // program qubit -> physical
  std::vector<std::int32_t> prog_at_;   // physical -> program (-1 = free)

  // --- the window: per-gate arrays indexed by gid - base_ ---
  std::uint32_t base_ = 0;      // first resident gid
  std::uint32_t next_gid_ = 0;  // one past the last resident gid
  std::vector<Gate> gates_;     // moved out at emission (arity <= 2)
  std::vector<std::uint8_t> kind_;
  std::vector<std::uint8_t> flags_;
  std::vector<std::uint8_t> nops_;  // operand count, saturated at 3
  std::vector<std::uint32_t> q0_;
  std::vector<std::uint32_t> q1_;
  // Successor lists: out-degree is bounded by arity (one edge per operand
  // under the last-writer rule), so two inline slots cover every gate of
  // arity <= 2; wider barriers overflow to a heap list keyed by gid.
  // succ_count_ 0..2 = inline size, 3 = consult succ_overflow_.
  std::vector<std::array<std::uint32_t, 2>> succ_inline_;
  std::vector<std::uint8_t> succ_count_;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> succ_overflow_;
  std::vector<std::uint32_t> indegree_;  // unscheduled in-window preds
  std::vector<std::uint8_t> scheduled_;

  // Scheduling state over global gids.
  std::vector<std::uint32_t> ready_;      // sorted ascending
  std::vector<std::uint32_t> snapshot_;   // flush pass scratch
  std::vector<std::uint32_t> two_qubit_;  // resident 2q gids, ascending
  std::size_t tq_cursor_ = 0;  // first maybe-unscheduled index (monotonic)
  std::size_t num_unscheduled_ = 0;
  std::size_t unscheduled_2q_ = 0;
  std::size_t seen_two_qubit_ = 0;  // cumulative, never reclaimed

  // Window-advance bookkeeping (invariant (a)).
  std::vector<std::int64_t> last_writer_;  // global gid, -1 = none yet
  std::vector<std::uint32_t> unscheduled_touchers_;  // per program qubit
  int num_idle_qubits_ = 0;  // qubits with zero unscheduled touchers
  std::vector<std::uint32_t> pred_scratch_;
  std::vector<Gate> pull_buf_;
  bool dry_ = false;

  // Loop scratch, exposed via buffers(). decay/relevant/extended stay
  // pointer-stable; the front-sized ones may grow (and move) inside
  // refresh_front(), which re-points buffers_.
  std::vector<double> decay_;
  std::vector<std::uint8_t> relevant_;
  std::vector<std::uint32_t> extended_;
  std::vector<std::uint32_t> front_buf_;
  std::vector<std::uint32_t> to_bridge_;
  std::vector<std::int32_t> front_pa_;
  std::vector<std::int32_t> front_pb_;
  std::vector<std::int32_t> ext_pa_;
  std::vector<std::int32_t> ext_pb_;
  SabreLoopBuffers buffers_;

  std::size_t gates_seen_ = 0;
  std::size_t window_peak_ = 0;
};

/// One streaming sabre/bridge route, start to finish: builds the window
/// core, runs the shared loop, drains the emitter into the sink (sink
/// flush included) and assembles the stats. `loop_stats` (optional)
/// receives the loop counters for observability.
StreamRouteStats run_sabre_stream(GateSource& source, const Device& device,
                                  const ArchArtifacts* artifacts,
                                  const Placement& initial, GateSink& sink,
                                  const StreamRouteOptions& options,
                                  std::size_t extended_window,
                                  const SabreLoopParams& params,
                                  const std::function<void()>& check_cancelled,
                                  SabreLoopStats* loop_stats = nullptr);

}  // namespace qmap
