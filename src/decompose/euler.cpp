#include "decompose/euler.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qmap {
namespace {

constexpr double kTolerance = 1e-10;

Matrix rz(double angle) {
  const Complex e = std::polar(1.0, angle / 2.0);
  return Matrix(2, {std::conj(e), Complex{0, 0}, Complex{0, 0}, e});
}

Matrix ry(double angle) {
  const double c = std::cos(angle / 2.0);
  const double s = std::sin(angle / 2.0);
  return Matrix(2, {Complex{c, 0}, Complex{-s, 0}, Complex{s, 0},
                    Complex{c, 0}});
}

Matrix rx(double angle) {
  const double c = std::cos(angle / 2.0);
  const double s = std::sin(angle / 2.0);
  const Complex mis{0.0, -s};
  return Matrix(2, {Complex{c, 0}, mis, mis, Complex{c, 0}});
}

/// The Bloch-sphere rotation by -120 degrees about (1,1,1)/sqrt(3):
/// conjugation by this unitary maps Rz -> Ry and Ry -> Rx, which turns a
/// ZYZ decomposition of the conjugated matrix into a YXY decomposition of
/// the original.
Matrix axis_cycle() {
  // T = (I + i(X + Y + Z)) / 2.
  const Complex i{0.0, 1.0};
  const Complex half{0.5, 0.0};
  return Matrix(2, {half * (Complex{1, 0} + i), half * (i + Complex{1, 0}),
                    half * (i - Complex{1, 0}), half * (Complex{1, 0} - i)});
}

}  // namespace

EulerAngles zyz_decompose(const Matrix& u) {
  if (u.rows() != 2 || u.cols() != 2) {
    throw Error("zyz_decompose: expected 2x2 matrix");
  }
  if (!u.is_unitary(1e-8)) {
    throw Error("zyz_decompose: matrix is not unitary");
  }
  const Complex a = u.at(0, 0);
  const Complex b = u.at(0, 1);
  const Complex c = u.at(1, 0);
  const Complex d = u.at(1, 1);
  EulerAngles out;
  out.theta = 2.0 * std::atan2(std::abs(c), std::abs(a));
  if (std::abs(c) < kTolerance) {
    // Diagonal (theta ~ 0): only phi + lambda is determined.
    out.lambda = 0.0;
    out.phi = std::arg(d) - std::arg(a);
    out.phase = std::arg(a) + (out.phi + out.lambda) / 2.0;
  } else if (std::abs(a) < kTolerance) {
    // Anti-diagonal (theta ~ pi): only phi - lambda is determined.
    out.lambda = 0.0;
    out.phi = std::arg(c) - std::arg(-b);
    out.phase = (std::arg(c) + std::arg(-b)) / 2.0;
  } else {
    out.phi = std::arg(c) - std::arg(a);
    out.lambda = std::arg(d) - std::arg(c);
    out.phase = std::arg(a) + (out.phi + out.lambda) / 2.0;
  }
  return out;
}

EulerAngles yxy_decompose(const Matrix& u) {
  const Matrix t = axis_cycle();
  const Matrix conjugated = t.dagger() * u * t;
  return zyz_decompose(conjugated);
}

Matrix matrix_from_zyz(const EulerAngles& angles) {
  Matrix m = rz(angles.phi) * ry(angles.theta) * rz(angles.lambda);
  const Complex phase = std::polar(1.0, angles.phase);
  Matrix out(2, 2);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) out.at(r, c) = phase * m.at(r, c);
  }
  return out;
}

Matrix matrix_from_yxy(const EulerAngles& angles) {
  Matrix m = ry(angles.phi) * rx(angles.theta) * ry(angles.lambda);
  const Complex phase = std::polar(1.0, angles.phase);
  Matrix out(2, 2);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) out.at(r, c) = phase * m.at(r, c);
  }
  return out;
}

}  // namespace qmap
