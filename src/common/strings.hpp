// Small string helpers used by the parsers and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace qmap {

/// Remove leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Split on a single character; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Split on any run of ASCII whitespace; empty fields are dropped.
[[nodiscard]] std::vector<std::string> split_whitespace(std::string_view s);

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] std::string to_lower(std::string_view s);

/// Join the elements of `parts` with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Format a double compactly: no trailing zeros, "pi"-free plain decimal.
[[nodiscard]] std::string format_double(double value);

/// Escape `s` for inclusion inside a JSON string literal (no surrounding
/// quotes): '"', '\\', and the short escapes \b \f \n \r \t, with every
/// other control character < 0x20 as \u00XX. The single escaper shared by
/// the Json dumper and the hand-built exporters in obs/.
[[nodiscard]] std::string json_escape(std::string_view s);

/// json_escape(s) wrapped in double quotes — a complete JSON string token.
[[nodiscard]] std::string json_quote(std::string_view s);

}  // namespace qmap
