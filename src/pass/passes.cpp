#include "pass/passes.hpp"

#include <numeric>

#include "decompose/decomposer.hpp"
#include "decompose/peephole.hpp"
#include "obs/obs.hpp"
#include "pass/context.hpp"
#include "pass/registry.hpp"
#include "route/measure_relocation.hpp"
#include "route/token_swap.hpp"
#include "schedule/schedulers.hpp"

namespace qmap {

void DecomposePass::run(CompileContext& ctx) {
  const Circuit& circuit = ctx.input();
  const Device& device = ctx.device();
  // SWAPs stay as routing placeholders in the working copy.
  ctx.result.lowered =
      lower_to_native_ ? lower_to_device(circuit, device, /*keep_swaps=*/true)
                       : circuit;
  // Baseline latency: decomposed, dependency-only schedule (Sec. V).
  const Circuit baseline =
      lower_to_native_ ? lower_to_device(circuit, device, /*keep_swaps=*/false)
                       : circuit;
  ctx.result.baseline_cycles = schedule_asap(baseline, device).total_cycles();
}

PlacePass::PlacePass(std::string algorithm)
    : algorithm_(std::move(algorithm)) {
  // Validate eagerly so a bad pipeline spec fails at build time, not after
  // earlier passes already ran.
  (void)make_placer(algorithm_);
}

void PlacePass::run(CompileContext& ctx) {
  std::unique_ptr<Placer> placer = make_placer(algorithm_, ctx.seed());
  placer->set_cancel_token(ctx.cancel());
  ctx.placement = placer->place(ctx.result.lowered, ctx.device());
  ctx.placed = true;
}

RoutePass::RoutePass(std::string algorithm)
    : algorithm_(std::move(algorithm)) {
  (void)make_router(algorithm_);
}

void RoutePass::run(CompileContext& ctx) {
  if (!ctx.placed) {
    throw MappingError(
        "pass 'router' needs an initial placement: add a 'placer' pass "
        "earlier in the pipeline");
  }
  std::unique_ptr<Router> router = make_router(algorithm_);
  router->set_cancel_token(ctx.cancel());
  router->set_observer(ctx.obs());
  router->set_artifacts(&ctx.artifacts());
  ctx.result.routing =
      router->route(ctx.result.lowered, ctx.device(), ctx.placement);
  ctx.routed = true;
}

void TokenSwapFinisherPass::run(CompileContext& ctx) {
  if (!ctx.routed) {
    throw MappingError(
        "pass 'token_swap_finisher' needs a routing result: add a 'router' "
        "pass earlier in the pipeline");
  }
  if (ctx.postrouted) {
    throw MappingError(
        "pass 'token_swap_finisher' must run before 'postroute': its cleanup "
        "SWAPs are placeholders the postroute pass expands");
  }
  RoutingResult& routing = ctx.result.routing;
  const TokenSwapPlan plan = plan_token_swaps(routing.final, routing.initial,
                                              ctx.device(), &ctx.artifacts());
  obs::add(ctx.obs(), "router.bridge.token_swap_rounds", plan.rounds.size());
  obs::add(ctx.obs(), "router.bridge.token_swap_swaps", plan.total_swaps());
  if (plan.rounds.empty()) return;

  // The cleanup SWAPs are unitaries, and relocate_measurements (postroute)
  // rejects unitaries after a deferred measurement — so splice the rounds
  // in *before* the trailing measurement/barrier suffix and route those
  // terminal operands through the cleanup permutation.
  const Circuit& routed = routing.circuit;
  std::size_t split = routed.size();
  while (split > 0) {
    const GateKind kind = routed.gate(split - 1).kind;
    if (kind != GateKind::Measure && kind != GateKind::Barrier) break;
    --split;
  }
  Circuit out(routed.num_qubits(), routed.name());
  for (std::size_t i = 0; i < split; ++i) out.add(routed.gate(i));
  // position_of[p]: where the wire sitting on p at the split point ends up
  // once the cleanup rounds have run.
  std::vector<int> position_of(static_cast<std::size_t>(routed.num_qubits()));
  std::vector<int> content_at(position_of.size());
  std::iota(position_of.begin(), position_of.end(), 0);
  std::iota(content_at.begin(), content_at.end(), 0);
  for (const SwapRound& round : plan.rounds) {
    for (const auto& [a, b] : round) {
      out.swap(a, b);
      routing.final.apply_swap(a, b);
      const int x = content_at[static_cast<std::size_t>(a)];
      const int y = content_at[static_cast<std::size_t>(b)];
      std::swap(content_at[static_cast<std::size_t>(a)],
                content_at[static_cast<std::size_t>(b)]);
      position_of[static_cast<std::size_t>(x)] = b;
      position_of[static_cast<std::size_t>(y)] = a;
    }
  }
  for (std::size_t i = split; i < routed.size(); ++i) {
    Gate gate = routed.gate(i);
    for (int& q : gate.qubits) q = position_of[static_cast<std::size_t>(q)];
    out.add(std::move(gate));
  }
  routing.added_swaps += plan.total_swaps();
  routing.circuit = std::move(out);
}

void PostRoutePass::run(CompileContext& ctx) {
  if (!ctx.routed) {
    throw MappingError(
        "pass 'postroute' needs a routing result: add a 'router' pass "
        "earlier in the pipeline");
  }
  const Device& device = ctx.device();
  Circuit relocated =
      relocate_measurements(ctx.result.routing.circuit, device,
                            ctx.result.routing.final, &ctx.artifacts());
  if (peephole_) relocated = peephole_optimize(relocated);
  Circuit final_circuit = expand_swaps(relocated, device);
  final_circuit = fix_cx_directions(final_circuit, device);
  if (peephole_) final_circuit = peephole_optimize(final_circuit);
  if (lower_to_native_) {
    final_circuit = fuse_single_qubit(final_circuit);
    final_circuit = lower_single_qubit(final_circuit, device);
  }
  final_circuit.set_name(ctx.input().name() + "@" + device.name());
  ctx.result.final_circuit = std::move(final_circuit);
  ctx.result.final_metrics = compute_metrics(ctx.result.final_circuit);
  ctx.postrouted = true;
}

void SchedulePass::run(CompileContext& ctx) {
  if (!ctx.postrouted) {
    throw MappingError(
        "pass 'schedule' needs a finalized circuit: add a 'postroute' pass "
        "earlier in the pipeline");
  }
  ctx.result.schedule =
      use_control_constraints_
          ? schedule_for_device(ctx.result.final_circuit, ctx.device(),
                                ctx.obs())
          : schedule_asap(ctx.result.final_circuit, ctx.device());
  ctx.result.scheduled_cycles = ctx.result.schedule.total_cycles();
}

}  // namespace qmap
