// Rendering-path tests: ASCII circuit art, schedule tables, placement and
// tableau string forms — cheap to break silently, so pinned here.
#include <gtest/gtest.h>

#include "arch/builtin.hpp"
#include "ir/ascii.hpp"
#include "layout/placement.hpp"
#include "schedule/schedulers.hpp"
#include "sim/stabilizer.hpp"
#include "workloads/workloads.hpp"

namespace qmap {
namespace {

TEST(Ascii, MeasurementBoxes) {
  Circuit c(2);
  c.h(0).measure(0, 0);
  const std::string art = draw_ascii(c);
  EXPECT_NE(art.find("[M]"), std::string::npos);
}

TEST(Ascii, BarriersSpanTheRegister) {
  Circuit c(3);
  c.x(0).barrier().x(2);
  const std::string art = draw_ascii(c);
  // Barrier column renders as '|' on every wire it covers.
  EXPECT_GE(std::count(art.begin(), art.end(), '|'),
            3L);  // 3 wires + connectors
}

TEST(Ascii, ParameterizedGateLabels) {
  Circuit c(1);
  c.rz(0.5, 0);
  EXPECT_NE(draw_ascii(c).find("[RZ(0.5)]"), std::string::npos);
}

TEST(Ascii, ThreeQubitGateConnectors) {
  Circuit c(3);
  c.ccx(0, 1, 2);
  const std::string art = draw_ascii(c);
  EXPECT_GE(std::count(art.begin(), art.end(), '*'), 2L);  // two controls
  EXPECT_NE(art.find('+'), std::string::npos);             // target
}

TEST(Ascii, EmptyCircuitRendersWires) {
  const Circuit c(2);
  const std::string art = draw_ascii(c);
  EXPECT_NE(art.find("q0:"), std::string::npos);
  EXPECT_NE(art.find("q1:"), std::string::npos);
}

TEST(ScheduleTable, MultiCycleGatesShowContinuation) {
  const Device s17 = devices::surface17();
  Circuit c(17);
  c.cz(1, 5);
  const std::string table = schedule_asap(c, s17).to_table();
  EXPECT_NE(table.find("cz"), std::string::npos);
  // Second cycle of the 2-cycle CZ renders as '|'.
  EXPECT_NE(table.find('|'), std::string::npos);
}

TEST(ScheduleTable, EmptyScheduleHasHeaderOnly) {
  Schedule schedule(2);
  const std::string table = schedule.to_table();
  EXPECT_NE(table.find("cycle"), std::string::npos);
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 1L);
}

TEST(PlacementString, ShowsFreeSlots) {
  const Placement p = Placement::from_program_map({2}, 3);
  const std::string text = p.to_string();
  EXPECT_NE(text.find("Q2:q0"), std::string::npos);
  EXPECT_NE(text.find("Q0:free"), std::string::npos);
}

TEST(TableauString, PauliRows) {
  CliffordTableau t(2);
  const std::string text = t.to_string();
  EXPECT_NE(text.find("+XI"), std::string::npos);
  EXPECT_NE(text.find("+ZI"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);  // destab/stab divider
  CliffordTableau flipped(1);
  flipped.apply(make_gate(GateKind::X, {0}));
  EXPECT_NE(flipped.to_string().find("-Z"), std::string::npos);
}

TEST(GateStrings, MoveAndBarrier) {
  EXPECT_EQ(make_gate(GateKind::Move, {1, 2}).to_string(), "move q1, q2");
  EXPECT_EQ(make_barrier({0, 1}).to_string(), "barrier q0, q1");
}

}  // namespace
}  // namespace qmap
