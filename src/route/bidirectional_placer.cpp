#include "route/bidirectional_placer.hpp"

#include "route/sabre.hpp"

namespace qmap {

Placement BidirectionalPlacer::place(const Circuit& circuit,
                                     const Device& device) {
  // Reversal only needs the two-qubit structure; single-qubit gates do not
  // influence routing, and the skeleton sidesteps non-invertible gates
  // (measurements).
  Circuit forward = circuit.two_qubit_skeleton();
  Circuit backward(forward.num_qubits(), forward.name() + "_rev");
  for (auto it = forward.gates().rbegin(); it != forward.gates().rend();
       ++it) {
    backward.add(*it);
  }

  Placement placement = GreedyPlacer().place(circuit, device);
  SabreRouter router;
  for (int pass = 0; pass < passes_; ++pass) {
    // Each refinement pass is a full SABRE run; poll between them so a
    // deadline bounds the multi-pass search as a whole.
    check_cancelled();
    placement = router.route(forward, device, placement).final;
    placement = router.route(backward, device, placement).final;
  }
  return placement;
}

}  // namespace qmap
