// PipelineSpec: a pipeline as data — an ordered list of pass names plus
// per-pass options, JSON-round-trippable.
//
// This is what turns strategies and resilience rungs into configuration:
// the portfolio engine expands each StrategySpec into a PipelineSpec, the
// fallback ladder's rungs are PipelineSpecs, and a user can reorder or
// drop stages from a JSON file without touching code (see the README
// "Building a custom pipeline" quickstart).
//
// JSON shape (to_json emits the object form; from_json also accepts a bare
// array, and a bare string wherever a pass object is expected):
//
//   {"passes": [
//     {"pass": "decompose"},
//     {"pass": "placer", "options": {"algorithm": "greedy"}},
//     {"pass": "router", "options": {"algorithm": "sabre"}},
//     "postroute",
//     {"pass": "schedule", "options": {"use_control_constraints": true}}
//   ]}
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "pass/pass.hpp"

namespace qmap {

/// One pipeline entry: a canonical pass name plus its options (null =
/// defaults). Constructed through PipelineSpec so names/options are always
/// validated.
struct PassSpec {
  std::string pass;
  Json options;

  [[nodiscard]] Json to_json() const;

  friend bool operator==(const PassSpec& a, const PassSpec& b) {
    return a.pass == b.pass && a.options == b.options;
  }
  friend bool operator!=(const PassSpec& a, const PassSpec& b) {
    return !(a == b);
  }
};

class PipelineSpec {
 public:
  PipelineSpec() = default;

  /// The classic Fig. 2 preset: decompose, placer, router, postroute, and
  /// (when `run_scheduler`) schedule — with options spelled out so the
  /// JSON form is self-describing. Compiler::pipeline() builds this from
  /// its CompilerOptions; parity with the pre-pass facade is pinned in
  /// tests/test_pass.cpp.
  [[nodiscard]] static PipelineSpec standard(
      const std::string& placer = "greedy",
      const std::string& router = "sabre", bool lower_to_native = true,
      bool peephole = true, bool run_scheduler = true,
      bool use_control_constraints = true);

  /// Parses {"passes": [...]} or a bare array. Validates every name
  /// (aliases resolved to canonical) and every option key; throws
  /// MappingError with the offending name/key and the valid choices.
  [[nodiscard]] static PipelineSpec from_json(const Json& json);
  [[nodiscard]] static PipelineSpec from_json_text(std::string_view text);
  /// Emits object keys in sorted order (JsonObject is an ordered map), so
  /// the key order of the *source* JSON can never leak into the output —
  /// two parses of the same spec with shuffled keys dump byte-identically.
  /// Contract pinned by tests/test_pass.cpp; the service cache key relies
  /// on it.
  [[nodiscard]] Json to_json() const;

  /// The normal form: every pass carries its complete option object, with
  /// elided options materialized to the defaults make_pass() would use
  /// (registry default_pass_options()). Two semantically equal specs —
  /// one spelling out {"algorithm": "sabre"}, one omitting it — have equal
  /// canonical forms, so a content-addressed cache keyed on
  /// canonical_json().dump() cannot be split by option elision or source
  /// key order.
  [[nodiscard]] PipelineSpec canonical() const;
  /// to_json() of canonical(): the serialization a cache key must use.
  [[nodiscard]] Json canonical_json() const;

  [[nodiscard]] const std::vector<PassSpec>& passes() const noexcept {
    return passes_;
  }
  [[nodiscard]] bool empty() const noexcept { return passes_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return passes_.size(); }

  /// Appends one entry; validates the name (alias ok, stored canonical)
  /// and options by constructing the pass once.
  void append(const std::string& pass, Json options = Json());

  /// "placer_algorithm+router_algorithm" when both stages are present
  /// (e.g. "greedy+sabre", matching StrategySpec::label()); otherwise the
  /// pass names joined with '+'.
  [[nodiscard]] std::string label() const;

  /// Algorithm of the first placer/router pass; "" when that stage is
  /// absent. Used for compile-span args and strategy labels.
  [[nodiscard]] std::string placer_name() const;
  [[nodiscard]] std::string router_name() const;

  /// Instantiates the pipeline in order.
  [[nodiscard]] std::vector<std::unique_ptr<Pass>> build() const;

  friend bool operator==(const PipelineSpec& a, const PipelineSpec& b) {
    return a.passes_ == b.passes_;
  }
  friend bool operator!=(const PipelineSpec& a, const PipelineSpec& b) {
    return !(a == b);
  }

 private:
  [[nodiscard]] std::string algorithm_of(const std::string& pass) const;

  std::vector<PassSpec> passes_;
};

}  // namespace qmap
