// Bidirectional placement refinement (the SABRE initial-mapping trick,
// [40]): route the circuit forward from a seed placement, reuse the final
// placement as the seed for routing the *reversed* circuit, and iterate.
// Because the reverse circuit's final placement is, by construction, a
// placement under which the forward circuit's *early* gates are local,
// a few passes converge to a seed that needs fewer SWAPs than any static
// interaction-graph heuristic.
#pragma once

#include <memory>

#include "layout/placers.hpp"
#include "route/router.hpp"

namespace qmap {

class BidirectionalPlacer final : public Placer {
 public:
  /// `passes` = number of forward+backward refinement rounds.
  explicit BidirectionalPlacer(int passes = 2) : passes_(passes) {}

  [[nodiscard]] std::string name() const override { return "bidirectional"; }
  [[nodiscard]] Placement place(const Circuit& circuit,
                                const Device& device) override;

 private:
  int passes_;
};

}  // namespace qmap
