// E10 / Sec. VI-A — "Every device is (almost) equal before the compiler":
// device-type ablation.
//
// The section classifies devices by (1) two-qubit gate symmetry, (2)
// single-qubit gate homogeneity, (3) measurement uniformity, and argues
// that asymmetric gates couple routing with decomposition (extra H gates
// decided at routing time). This bench isolates those effects:
//   * same topology, directed CX vs symmetric CX vs symmetric CZ,
//   * topology family sweep (line / grid / surface / all-to-all) at a fixed
//     workload, quantifying how connectivity buys routing cost down.
// Expected shape: direction fixes vanish on symmetric devices; SWAP counts
// drop monotonically with connectivity (all-to-all needs none — the
// trapped-ion case of Sec. VI-C).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace qmap;
using namespace qmap::bench;

Device qx4_variant(const std::string& flavour) {
  // Same 5-qubit topology as IBM QX4, different gate-type rules.
  const Device base = devices::ibm_qx4();
  if (flavour == "directed-cx") return base;
  CouplingGraph coupling(base.num_qubits());
  for (const auto& edge : base.coupling().edges()) {
    coupling.add_edge(edge.a, edge.b, /*directed=*/false);
  }
  Device device("qx4_" + flavour, std::move(coupling));
  if (flavour == "symmetric-cx") {
    device.set_native_two_qubit(GateKind::CX);
    device.set_native_single_qubit({GateKind::U, GateKind::I});
  } else {  // symmetric-cz
    device.set_native_two_qubit(GateKind::CZ);
    device.set_native_single_qubit(
        {GateKind::Rx, GateKind::Ry, GateKind::X, GateKind::Y, GateKind::I});
  }
  return device;
}

void print_figure() {
  paper_note(
      "Sec. VI-A: 'When the two-qubit gates are asymmetric, decisions "
      "concerning the addition of extra gates must be made at the time of "
      "routing and scheduling.'");

  section("Gate-type ablation: QX4 topology, three device types");
  TextTable type_table({"workload", "device type", "swaps", "dir-fixes",
                        "native gates", "depth"});
  Rng rng(2);
  const std::vector<std::pair<std::string, Circuit>> workloads_list = {
      {"fig1", workloads::fig1_example()},
      {"qft4", workloads::qft(4)},
      {"random5", workloads::random_circuit(5, 30, rng, 0.5)},
  };
  for (const auto& [label, circuit] : workloads_list) {
    for (const char* flavour :
         {"directed-cx", "symmetric-cx", "symmetric-cz"}) {
      const Device device = qx4_variant(flavour);
      const Circuit lowered =
          lower_to_device(circuit, device, /*keep_swaps=*/true);
      const Placement initial = GreedyPlacer().place(lowered, device);
      const MappedOutcome outcome =
          map_and_verify(circuit, device, "sabre", initial);
      type_table.add_row({label, flavour,
                          TextTable::num(outcome.routing.added_swaps),
                          TextTable::num(outcome.routing.direction_fixes),
                          TextTable::num(outcome.metrics.total_gates),
                          TextTable::num(outcome.metrics.depth)});
    }
  }
  std::cout << type_table.str();

  section("Topology ablation: 8-qubit QFT across connectivity families");
  paper_note(
      "Sec. VI-C: 'trapped ions provide all-to-all connectivity ... at the "
      "price of reduced two-qubit gate parallelism.'");
  TextTable topo_table({"device", "diameter", "swaps", "native gates",
                        "depth"});
  const Circuit qft8 = workloads::qft(8);
  for (const Device& device :
       {devices::linear(8), devices::grid(2, 4), devices::grid(3, 3),
        devices::surface17(), devices::all_to_all(8)}) {
    const Circuit lowered = lower_to_device(qft8, device, /*keep_swaps=*/true);
    const Placement initial = GreedyPlacer().place(lowered, device);
    const MappedOutcome outcome =
        map_and_verify(qft8, device, "sabre", initial);
    topo_table.add_row({device.name(),
                        TextTable::num(device.coupling().diameter()),
                        TextTable::num(outcome.routing.added_swaps),
                        TextTable::num(outcome.metrics.total_gates),
                        TextTable::num(outcome.metrics.depth)});
  }
  std::cout << topo_table.str();
}

void BM_RouteByDeviceType(benchmark::State& state) {
  static const char* flavours[] = {"directed-cx", "symmetric-cx",
                                   "symmetric-cz"};
  const char* flavour = flavours[state.range(0)];
  const Device device = qx4_variant(flavour);
  const Circuit lowered =
      lower_to_device(workloads::qft(4), device, /*keep_swaps=*/true);
  const Placement initial = GreedyPlacer().place(lowered, device);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        make_router("sabre")->route(lowered, device, initial));
  }
  state.SetLabel(flavour);
}
BENCHMARK(BM_RouteByDeviceType)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
