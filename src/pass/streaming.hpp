// Streaming execution mode for the pass pipeline (out-of-core
// compilation).
//
// PassManager::run_stream threads a GateSource through the pipeline into a
// GateSink. The window-capable chain — decompose, route, and the token-swap
// finisher — runs chunk-by-chunk with peak memory proportional to the
// routing window, so million-gate circuits compile without ever being
// resident. Everything else falls back transparently:
//
//   * a placer other than "identity" needs the whole interaction graph, so
//     the source is materialized and the pre-route stages run normally;
//     routing still streams (byte-identical to the materialized route);
//   * postroute/schedule passes are whole-circuit analyses, so the routed
//     stream is collected back into memory before they run;
//   * a non-streamable router (or a non-standard pipeline shape) runs the
//     entire materialized pipeline and forwards its product to the sink.
//
// In every mode the sink receives the pipeline's product — the final
// circuit when a postroute pass is present, the routed (plus token-swap
// cleanup) stream otherwise — followed by one flush(). StreamStats records
// which passes fell back, so callers can assert a pipeline really ran
// out-of-core.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "pass/context.hpp"

namespace qmap {

/// Knobs of a streaming pipeline run.
struct StreamPipelineOptions {
  /// Pull granularity from the source (and the router's window-extension
  /// chunk size).
  std::size_t chunk_gates = 4096;
  /// Routed-output gates buffered in the emitter before being pushed
  /// downstream.
  std::size_t spill_gates = 4096;
};

/// What actually streamed. A fully out-of-core run has streamed_route true,
/// materialized_input false, and materialized_passes empty.
struct StreamStats {
  /// True when routing ran through the bounded window (route_stream).
  bool streamed_route = false;
  /// True when the source was drained into an in-memory circuit before the
  /// pipeline ran (non-streamable placer or full fallback).
  bool materialized_input = false;
  /// Names of the passes that ran on a materialized circuit.
  std::vector<std::string> materialized_passes;
  /// Program gates pulled from the source.
  std::size_t gates_in = 0;
  /// Gates pushed to the sink.
  std::size_t gates_out = 0;
  /// Router window high-water mark (0 when routing did not stream).
  std::size_t window_peak_gates = 0;
};

/// Product of a streaming run. `result` carries the same placements,
/// routing counters, metrics, and latency numbers a materialized run
/// produces; circuit-valued fields are only populated for the stages that
/// fell back to materialization (a fully streamed run leaves
/// original/lowered/routing.circuit/final_circuit empty — the gates went to
/// the sink).
struct StreamReport {
  CompilationResult result;
  StreamStats stream;
};

}  // namespace qmap
