# Empty compiler generated dependencies file for qmap_workloads.
# This may be replaced when dependencies are built.
