// Tests for the bundled cQASM schedule export (Fig. 2 output format) and
// the bidirectional placement refinement.
#include <gtest/gtest.h>

#include "arch/builtin.hpp"
#include "core/compiler.hpp"
#include "qasm/cqasm.hpp"
#include "route/bidirectional_placer.hpp"
#include "route/sabre.hpp"
#include "schedule/export.hpp"
#include "schedule/schedulers.hpp"
#include "sim/equivalence.hpp"
#include "workloads/workloads.hpp"

namespace qmap {
namespace {

TEST(BundledExport, ParallelGatesShareABundle) {
  const Device s7 = devices::surface7();
  Circuit c(7);
  c.x(0).x(1).cz(3, 5);
  const Schedule schedule = schedule_asap(c, s7);
  const std::string text = to_cqasm_bundled(schedule);
  // All three start in cycle 0 -> one bundle with two '|' separators.
  EXPECT_NE(text.find("{ "), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '|'), 2);
}

TEST(BundledExport, SequentialGatesGetOwnLines) {
  const Device s7 = devices::surface7();
  Circuit c(7);
  c.x(0).y(0).z(0);
  const Schedule schedule = schedule_asap(c, s7);
  const std::string text = to_cqasm_bundled(schedule);
  EXPECT_EQ(text.find('{'), std::string::npos);
  EXPECT_NE(text.find("x q[0]"), std::string::npos);
  EXPECT_NE(text.find("y q[0]"), std::string::npos);
}

TEST(BundledExport, CycleComments) {
  const Device s7 = devices::surface7();
  Circuit c(7);
  c.x(0).y(0);
  const std::string text =
      to_cqasm_bundled(schedule_asap(c, s7), /*cycle_comments=*/true);
  EXPECT_NE(text.find("# cycle 0"), std::string::npos);
  EXPECT_NE(text.find("# cycle 1"), std::string::npos);
}

TEST(BundledExport, RoundTripsThroughTheParserEquivalently) {
  // Full pipeline: compile, schedule, export with bundles, re-parse; the
  // flattened circuit must be equivalent to the scheduled circuit.
  const Device s17 = devices::surface17();
  const Compiler compiler(s17);
  const CompilationResult result = compiler.compile(workloads::qft(4));
  const std::string text = to_cqasm_bundled(result.schedule);
  const Circuit reparsed = parse_cqasm(text);
  Rng rng(5);
  EXPECT_TRUE(circuits_equivalent(
      result.schedule.to_circuit().unitary_part(), reparsed, rng, 3));
}

TEST(BundledExport, InstructionFormatterCoversMoveGates) {
  EXPECT_EQ(cqasm_instruction(make_gate(GateKind::Move, {0, 1})),
            "swap q[0], q[1]");
  EXPECT_EQ(cqasm_instruction(make_barrier({0})), "");
}

TEST(BidirectionalPlacer, ProducesValidBijection) {
  const Device s17 = devices::surface17();
  const Circuit circuit = workloads::qft(5);
  const Placement placement = BidirectionalPlacer().place(circuit, s17);
  std::vector<bool> seen(17, false);
  for (int w = 0; w < 17; ++w) {
    const int phys = placement.phys_of_wire(w);
    EXPECT_FALSE(seen[static_cast<std::size_t>(phys)]);
    seen[static_cast<std::size_t>(phys)] = true;
  }
  EXPECT_EQ(placement.num_program_qubits(), 5);
}

TEST(BidirectionalPlacer, ReducesSwapsVsGreedyOnAggregate) {
  const Device s17 = devices::surface17();
  Rng rng(31);
  std::size_t greedy_total = 0;
  std::size_t bidir_total = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const Circuit circuit = workloads::random_circuit(7, 50, rng, 0.45);
    SabreRouter router;
    greedy_total +=
        router.route(circuit, s17, GreedyPlacer().place(circuit, s17))
            .added_swaps;
    bidir_total +=
        router
            .route(circuit, s17, BidirectionalPlacer().place(circuit, s17))
            .added_swaps;
  }
  EXPECT_LE(bidir_total, greedy_total);
}

TEST(BidirectionalPlacer, EndToEndThroughCompiler) {
  CompilerOptions options;
  options.placer = "bidirectional";
  const Compiler compiler(devices::ibm_qx5(), options);
  const CompilationResult result = compiler.compile(workloads::qft(5));
  EXPECT_TRUE(Compiler::verify(result));
}

TEST(BidirectionalPlacer, HandlesMeasurementsViaSkeleton) {
  Circuit c = workloads::ghz(4);
  c.measure_all();
  const Placement placement =
      BidirectionalPlacer().place(c, devices::surface17());
  EXPECT_EQ(placement.num_program_qubits(), 4);
}

}  // namespace
}  // namespace qmap
