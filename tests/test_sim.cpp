// State-vector simulator and equivalence-checker tests.
#include <cmath>

#include <gtest/gtest.h>

#include "sim/equivalence.hpp"
#include "sim/statevector.hpp"
#include "workloads/workloads.hpp"

namespace qmap {
namespace {

constexpr double kTol = 1e-9;

TEST(StateVector, InitializesToAllZeros) {
  StateVector state(3);
  EXPECT_EQ(state.dimension(), 8u);
  EXPECT_NEAR(std::abs(state.amplitude(0)), 1.0, kTol);
  for (std::uint64_t i = 1; i < 8; ++i) {
    EXPECT_NEAR(std::abs(state.amplitude(i)), 0.0, kTol);
  }
}

TEST(StateVector, RejectsTooManyQubits) {
  EXPECT_THROW(StateVector(27), SimulationError);
}

TEST(StateVector, HadamardCreatesUniformSuperposition) {
  StateVector state(1);
  state.apply(make_gate(GateKind::H, {0}));
  EXPECT_NEAR(state.amplitude(0).real(), 1.0 / std::sqrt(2.0), kTol);
  EXPECT_NEAR(state.amplitude(1).real(), 1.0 / std::sqrt(2.0), kTol);
}

TEST(StateVector, BellPairProbabilities) {
  StateVector state(2);
  state.apply(make_gate(GateKind::H, {0}));
  state.apply(make_gate(GateKind::CX, {0, 1}));
  EXPECT_NEAR(std::norm(state.amplitude(0b00)), 0.5, kTol);
  EXPECT_NEAR(std::norm(state.amplitude(0b11)), 0.5, kTol);
  EXPECT_NEAR(std::norm(state.amplitude(0b01)), 0.0, kTol);
  EXPECT_NEAR(std::norm(state.amplitude(0b10)), 0.0, kTol);
}

TEST(StateVector, CxConventionControlIsMsb) {
  // qubits = {control, target}; qubit 0 is the MSB of the basis index.
  StateVector state(2);
  state.apply(make_gate(GateKind::X, {0}));  // |10>
  state.apply(make_gate(GateKind::CX, {0, 1}));
  EXPECT_NEAR(std::norm(state.amplitude(0b11)), 1.0, kTol);
}

TEST(StateVector, CxReversedOperands) {
  StateVector state(2);
  state.apply(make_gate(GateKind::X, {1}));  // |01>
  state.apply(make_gate(GateKind::CX, {1, 0}));
  EXPECT_NEAR(std::norm(state.amplitude(0b11)), 1.0, kTol);
}

TEST(StateVector, SwapExchangesQubits) {
  StateVector state(3);
  state.apply(make_gate(GateKind::X, {0}));  // |100>
  state.apply(make_gate(GateKind::SWAP, {0, 2}));
  EXPECT_NEAR(std::norm(state.amplitude(0b001)), 1.0, kTol);
}

TEST(StateVector, ToffoliFiresOnlyWhenBothControlsSet) {
  StateVector state(3);
  state.apply(make_gate(GateKind::X, {0}));
  state.apply(make_gate(GateKind::CCX, {0, 1, 2}));
  EXPECT_NEAR(std::norm(state.amplitude(0b100)), 1.0, kTol);
  state.apply(make_gate(GateKind::X, {1}));
  state.apply(make_gate(GateKind::CCX, {0, 1, 2}));
  EXPECT_NEAR(std::norm(state.amplitude(0b111)), 1.0, kTol);
}

TEST(StateVector, GhzState) {
  StateVector state(4);
  state.run(workloads::ghz(4));
  EXPECT_NEAR(std::norm(state.amplitude(0b0000)), 0.5, kTol);
  EXPECT_NEAR(std::norm(state.amplitude(0b1111)), 0.5, kTol);
}

TEST(StateVector, ProbabilityOne) {
  StateVector state(2);
  state.apply(make_gate(GateKind::H, {0}));
  EXPECT_NEAR(state.probability_one(0), 0.5, kTol);
  EXPECT_NEAR(state.probability_one(1), 0.0, kTol);
}

TEST(StateVector, MeasureCollapses) {
  Rng rng(7);
  StateVector state(2);
  state.apply(make_gate(GateKind::H, {0}));
  state.apply(make_gate(GateKind::CX, {0, 1}));
  const int outcome = state.measure(0, rng);
  // After measuring one half of a Bell pair the other is determined.
  EXPECT_NEAR(state.probability_one(1), static_cast<double>(outcome), kTol);
  EXPECT_NEAR(state.norm(), 1.0, kTol);
}

TEST(StateVector, RandomizeProducesUnitNorm) {
  Rng rng(11);
  StateVector state(5);
  state.randomize(rng);
  EXPECT_NEAR(state.norm(), 1.0, kTol);
}

TEST(StateVector, PermuteMovesWireContents) {
  StateVector state(3);
  state.apply(make_gate(GateKind::X, {0}));  // |100>
  // Move content of qubit 0 to qubit 2 (cyclic shift).
  state.permute({0, 1, 2}, {2, 0, 1});
  EXPECT_NEAR(std::norm(state.amplitude(0b001)), 1.0, kTol);
}

TEST(StateVector, PermuteIdentityIsNoOp) {
  Rng rng(3);
  StateVector state(4);
  state.randomize(rng);
  StateVector copy = state;
  state.permute({0, 1, 2, 3}, {0, 1, 2, 3});
  EXPECT_TRUE(state.approx_equal(copy, kTol));
}

TEST(StateVector, FidelityOfOrthogonalStatesIsZero) {
  StateVector a(1);
  StateVector b(1);
  b.reset(1);
  EXPECT_NEAR(a.fidelity(b), 0.0, kTol);
}

TEST(StateVector, GlobalPhaseInvariantEquality) {
  Rng rng(5);
  StateVector a(3);
  a.randomize(rng);
  StateVector b = a;
  // Apply a global phase via Rz + Phase trickery on a |+> independent wire:
  // simplest global phase: multiply amplitudes using Rz on every branch is
  // not global; instead use the same state and check equality.
  EXPECT_TRUE(a.approx_equal(b));
}

TEST(CircuitUnitary, HadamardMatrix) {
  Circuit c(1);
  c.h(0);
  const Matrix u = circuit_unitary(c);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(u.at(0, 0).real(), inv_sqrt2, kTol);
  EXPECT_NEAR(u.at(1, 1).real(), -inv_sqrt2, kTol);
}

TEST(CircuitUnitary, MatchesGateMatrix) {
  Circuit c(2);
  c.cx(0, 1);
  const Matrix u = circuit_unitary(c);
  EXPECT_TRUE(u.approx_equal(make_gate(GateKind::CX, {0, 1}).matrix(), kTol));
}

TEST(CircuitUnitary, InverseYieldsIdentity) {
  Rng rng(17);
  const Circuit c = workloads::random_circuit(4, 40, rng);
  Circuit both = c;
  both.append(c.inverse());
  const Matrix u = circuit_unitary(both);
  EXPECT_TRUE(u.equal_up_to_global_phase(Matrix::identity(16), 1e-7));
}

TEST(Equivalence, IdenticalCircuitsAreEquivalent) {
  Rng rng(1);
  const Circuit c = workloads::qft(4);
  EXPECT_TRUE(circuits_equivalent(c, c, rng));
}

TEST(Equivalence, DetectsDifference) {
  Rng rng(1);
  Circuit a(2);
  a.h(0).cx(0, 1);
  Circuit b(2);
  b.h(0).cx(1, 0);
  EXPECT_FALSE(circuits_equivalent(a, b, rng));
}

TEST(Equivalence, ExactCheckAgreesWithRandomized) {
  Circuit a(2);
  a.h(1).cz(0, 1).h(1);
  Circuit b(2);
  b.cx(0, 1);
  EXPECT_TRUE(circuits_equivalent_exact(a, b));
  Rng rng(2);
  EXPECT_TRUE(circuits_equivalent(a, b, rng));
}

TEST(Equivalence, MappingEquivalenceWithSwapPermutation) {
  // Program circuit: cx(q0, q1) on a 3-qubit device with a line 0-1-2 where
  // q0 sits on Q0, q1 on Q2. Routed version swaps Q1, Q2 then cx(Q0, Q1).
  Circuit original(2);
  original.cx(0, 1);
  Circuit mapped(3);
  mapped.swap(1, 2).cx(0, 1);
  // wires: q0 -> Q0, q1 -> Q2, free wire 2 -> Q1.
  const std::vector<int> initial{0, 2, 1};
  // After SWAP(Q1, Q2): q1 now on Q1, free wire on Q2.
  const std::vector<int> final{0, 1, 2};
  Rng rng(9);
  EXPECT_TRUE(mapping_equivalent(original, mapped, initial, final, rng));
}

TEST(Equivalence, MappingCheckCatchesWrongFinalPlacement) {
  Circuit original(2);
  original.cx(0, 1);
  Circuit mapped(3);
  mapped.swap(1, 2).cx(0, 1);
  const std::vector<int> initial{0, 2, 1};
  const std::vector<int> wrong_final{0, 2, 1};  // pretends no swap happened
  Rng rng(9);
  EXPECT_FALSE(
      mapping_equivalent(original, mapped, initial, wrong_final, rng));
}

TEST(Equivalence, RejectsNonBijectivePlacement) {
  Circuit original(2);
  Circuit mapped(2);
  Rng rng(1);
  EXPECT_THROW(
      (void)mapping_equivalent(original, mapped, {0, 0}, {0, 1}, rng),
      SimulationError);
}

}  // namespace
}  // namespace qmap
