#include "arch/topology.hpp"

#include <algorithm>
#include <deque>

#include "common/error.hpp"

namespace qmap {

CouplingGraph::CouplingGraph(int num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits < 0) throw DeviceError("negative qubit count");
  adjacency_.resize(static_cast<std::size_t>(num_qubits));
  link_.assign(static_cast<std::size_t>(num_qubits) *
                   static_cast<std::size_t>(num_qubits),
               0);
}

CouplingGraph::CouplingGraph(const CouplingGraph& other) { *this = other; }

CouplingGraph::CouplingGraph(CouplingGraph&& other) noexcept {
  *this = std::move(other);
}

CouplingGraph& CouplingGraph::operator=(const CouplingGraph& other) {
  if (this == &other) return *this;
  const std::lock_guard<std::mutex> lock(other.distance_mutex_);
  num_qubits_ = other.num_qubits_;
  adjacency_ = other.adjacency_;
  edges_ = other.edges_;
  link_ = other.link_;
  distances_ = other.distances_;
  distances_valid_.store(other.distances_valid_.load(std::memory_order_acquire),
                         std::memory_order_release);
  return *this;
}

CouplingGraph& CouplingGraph::operator=(CouplingGraph&& other) noexcept {
  if (this == &other) return *this;
  const std::lock_guard<std::mutex> lock(other.distance_mutex_);
  num_qubits_ = other.num_qubits_;
  adjacency_ = std::move(other.adjacency_);
  edges_ = std::move(other.edges_);
  link_ = std::move(other.link_);
  distances_ = std::move(other.distances_);
  distances_valid_.store(other.distances_valid_.load(std::memory_order_acquire),
                         std::memory_order_release);
  other.distances_valid_.store(false, std::memory_order_release);
  return *this;
}

void CouplingGraph::check_qubit(int q) const {
  if (q < 0 || q >= num_qubits_) {
    throw DeviceError("physical qubit Q" + std::to_string(q) +
                      " out of range (device has " +
                      std::to_string(num_qubits_) + " qubits)");
  }
}

void CouplingGraph::add_edge(int a, int b, bool directed) {
  check_qubit(a);
  check_qubit(b);
  if (a == b) throw DeviceError("self-loop edge on Q" + std::to_string(a));
  const auto m = static_cast<std::size_t>(num_qubits_);
  const auto ab = static_cast<std::size_t>(a) * m + static_cast<std::size_t>(b);
  const auto ba = static_cast<std::size_t>(b) * m + static_cast<std::size_t>(a);
  link_[ab] |= kLinkConnected | kLinkOriented;
  link_[ba] |= kLinkConnected;
  if (!directed) link_[ba] |= kLinkOriented;
  const int lo = std::min(a, b);
  const int hi = std::max(a, b);
  for (Edge& edge : edges_) {
    if (edge.a == lo && edge.b == hi) {
      // Existing connection: widen the allowed orientations.
      if (!directed) {
        edge.a_to_b = edge.b_to_a = true;
      } else if (a == lo) {
        edge.a_to_b = true;
      } else {
        edge.b_to_a = true;
      }
      return;
    }
  }
  Edge edge;
  edge.a = lo;
  edge.b = hi;
  if (!directed) {
    edge.a_to_b = edge.b_to_a = true;
  } else if (a == lo) {
    edge.a_to_b = true;
  } else {
    edge.b_to_a = true;
  }
  edges_.push_back(edge);
  adjacency_[static_cast<std::size_t>(lo)].push_back(hi);
  adjacency_[static_cast<std::size_t>(hi)].push_back(lo);
  std::sort(adjacency_[static_cast<std::size_t>(lo)].begin(),
            adjacency_[static_cast<std::size_t>(lo)].end());
  std::sort(adjacency_[static_cast<std::size_t>(hi)].begin(),
            adjacency_[static_cast<std::size_t>(hi)].end());
  distances_valid_.store(false, std::memory_order_release);
}

bool CouplingGraph::connected(int a, int b) const {
  check_qubit(a);
  check_qubit(b);
  return (link_[static_cast<std::size_t>(a) *
                    static_cast<std::size_t>(num_qubits_) +
                static_cast<std::size_t>(b)] &
          kLinkConnected) != 0;
}

bool CouplingGraph::orientation_allowed(int control, int target) const {
  check_qubit(control);
  check_qubit(target);
  return (link_[static_cast<std::size_t>(control) *
                    static_cast<std::size_t>(num_qubits_) +
                static_cast<std::size_t>(target)] &
          kLinkOriented) != 0;
}

const std::vector<int>& CouplingGraph::neighbors(int q) const {
  check_qubit(q);
  return adjacency_[static_cast<std::size_t>(q)];
}

void CouplingGraph::compute_distances() const {
  const auto n = static_cast<std::size_t>(num_qubits_);
  distances_.assign(n, std::vector<int>(n, -1));
  for (std::size_t source = 0; source < n; ++source) {
    auto& dist = distances_[source];
    dist[source] = 0;
    std::deque<int> queue{static_cast<int>(source)};
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      for (const int v : adjacency_[static_cast<std::size_t>(u)]) {
        if (dist[static_cast<std::size_t>(v)] < 0) {
          dist[static_cast<std::size_t>(v)] =
              dist[static_cast<std::size_t>(u)] + 1;
          queue.push_back(v);
        }
      }
    }
  }
  distances_valid_.store(true, std::memory_order_release);
}

void CouplingGraph::ensure_distances() const {
  if (distances_valid_.load(std::memory_order_acquire)) return;
  const std::lock_guard<std::mutex> lock(distance_mutex_);
  if (!distances_valid_.load(std::memory_order_relaxed)) compute_distances();
}

void CouplingGraph::precompute_distances() const { ensure_distances(); }

int CouplingGraph::distance(int a, int b) const {
  check_qubit(a);
  check_qubit(b);
  ensure_distances();
  return distances_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
}

std::vector<int> CouplingGraph::shortest_path(int a, int b) const {
  check_qubit(a);
  check_qubit(b);
  if (a == b) return {a};
  std::vector<int> parent(static_cast<std::size_t>(num_qubits_), -1);
  parent[static_cast<std::size_t>(a)] = a;
  std::deque<int> queue{a};
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    if (u == b) break;
    for (const int v : adjacency_[static_cast<std::size_t>(u)]) {
      if (parent[static_cast<std::size_t>(v)] < 0) {
        parent[static_cast<std::size_t>(v)] = u;
        queue.push_back(v);
      }
    }
  }
  if (parent[static_cast<std::size_t>(b)] < 0) return {};
  std::vector<int> path;
  for (int v = b; v != a; v = parent[static_cast<std::size_t>(v)]) {
    path.push_back(v);
  }
  path.push_back(a);
  std::reverse(path.begin(), path.end());
  return path;
}

bool CouplingGraph::is_connected() const {
  if (num_qubits_ == 0) return true;
  for (int q = 1; q < num_qubits_; ++q) {
    if (distance(0, q) < 0) return false;
  }
  return true;
}

int CouplingGraph::diameter() const {
  int best = 0;
  for (int a = 0; a < num_qubits_; ++a) {
    for (int b = a + 1; b < num_qubits_; ++b) {
      const int d = distance(a, b);
      if (d < 0) return -1;
      best = std::max(best, d);
    }
  }
  return best;
}

long CouplingGraph::total_distance_from(int q) const {
  long sum = 0;
  for (int other = 0; other < num_qubits_; ++other) {
    const int d = distance(q, other);
    if (d < 0) return -1;
    sum += d;
  }
  return sum;
}

}  // namespace qmap
