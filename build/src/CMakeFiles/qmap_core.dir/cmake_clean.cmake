file(REMOVE_RECURSE
  "CMakeFiles/qmap_core.dir/core/compiler.cpp.o"
  "CMakeFiles/qmap_core.dir/core/compiler.cpp.o.d"
  "CMakeFiles/qmap_core.dir/core/report.cpp.o"
  "CMakeFiles/qmap_core.dir/core/report.cpp.o.d"
  "CMakeFiles/qmap_core.dir/core/snapshot.cpp.o"
  "CMakeFiles/qmap_core.dir/core/snapshot.cpp.o.d"
  "libqmap_core.a"
  "libqmap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qmap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
