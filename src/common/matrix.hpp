// Dense complex matrices for gate semantics and unitary equivalence checks.
//
// Sizes stay tiny (2x2, 4x4, 8x8) on the gate-decomposition path and reach
// 2^n x 2^n only in the unitary-builder used for small-circuit verification,
// so a straightforward row-major std::vector representation is appropriate.
#pragma once

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace qmap {

using Complex = std::complex<double>;

/// Row-major dense complex matrix with value semantics.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, Complex{0.0, 0.0}) {}
  /// Square matrix from a row-major initializer list; size must be a square.
  Matrix(std::size_t n, std::initializer_list<Complex> values);

  [[nodiscard]] static Matrix identity(std::size_t n);
  [[nodiscard]] static Matrix zero(std::size_t n) { return Matrix(n, n); }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] Complex& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const Complex& at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  Complex& operator()(std::size_t r, std::size_t c) { return at(r, c); }
  const Complex& operator()(std::size_t r, std::size_t c) const {
    return at(r, c);
  }

  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  [[nodiscard]] Matrix dagger() const;
  [[nodiscard]] Matrix kron(const Matrix& rhs) const;

  /// Frobenius-norm distance.
  [[nodiscard]] double distance(const Matrix& other) const;

  /// True when the matrix is unitary within `tolerance`.
  [[nodiscard]] bool is_unitary(double tolerance = 1e-9) const;

  /// Element-wise equality within `tolerance`.
  [[nodiscard]] bool approx_equal(const Matrix& other,
                                  double tolerance = 1e-9) const;

  /// Equality up to a global phase: true when other == e^{i phi} * this.
  [[nodiscard]] bool equal_up_to_global_phase(const Matrix& other,
                                              double tolerance = 1e-9) const;

  [[nodiscard]] std::string to_string(int precision = 3) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Complex> data_;
};

}  // namespace qmap
