// Differential fuzzing demo: the full bug-hunting loop on a planted fault.
//
// 1. A clean campaign across several placer x router strategies on QX4 and
//    Surface-7 comes back green — every mapping is valid and equivalent.
// 2. The same campaign with a planted router bug (the last routing SWAP is
//    dropped) is caught by the equivalence oracle.
// 3. The failing circuit is delta-debugged down to a handful of gates and
//    dumped as a QASM + JSON reproducer.
// 4. The reproducer is reloaded from disk and replayed: same failure.
//
// Exits non-zero if any of those steps misbehaves, so this doubles as an
// integration test of the verification harness.
#include <cstdio>
#include <filesystem>

#include "arch/builtin.hpp"
#include "verify/fuzzer.hpp"
#include "verify/reproducer.hpp"

using namespace qmap;
using namespace qmap::verify;

int main() {
  FuzzOptions options;
  options.num_circuits = 10;
  options.min_qubits = 4;
  options.max_qubits = 5;
  options.min_gates = 14;
  options.max_gates = 26;
  options.two_qubit_fraction = 0.6;
  options.base_seed = 0xDE30;
  options.trials = 2;
  options.placers = {"identity", "greedy"};
  options.routers = {"naive", "sabre", "astar"};

  std::printf("=== 1. clean campaign ===\n");
  const FuzzReport clean =
      DifferentialFuzzer({devices::ibm_qx4(), devices::surface7()}, options)
          .run();
  std::printf("%s\n", clean.report().c_str());
  if (!clean.ok()) {
    std::printf("FAIL: clean campaign reported failures\n");
    return 1;
  }

  std::printf("=== 2. campaign with a planted bug (dropped SWAP) ===\n");
  const std::string dir =
      (std::filesystem::temp_directory_path() / "qmap_fuzz_demo").string();
  options.fault = FaultInjection::DropLastSwap;
  options.reproducer_dir = dir;
  const FuzzReport faulty =
      DifferentialFuzzer({devices::ibm_qx4()}, options).run();
  std::printf("%s\n", faulty.report().c_str());
  if (faulty.ok()) {
    std::printf("FAIL: planted bug was not detected\n");
    return 1;
  }

  std::printf("=== 3. shrunk counterexamples ===\n");
  for (const FuzzFailure& failure : faulty.failures) {
    std::printf("%s\n", failure.to_string().c_str());
    std::printf("  shrunk from %zu to %zu gates (%zu shrink tests)\n",
                failure.circuit.size(), failure.shrunk.size(),
                failure.shrink_tests);
    if (failure.shrunk.size() > 10) {
      std::printf("FAIL: shrinker left more than 10 gates\n");
      return 1;
    }
    if (failure.reproducer_path.empty()) {
      std::printf("FAIL: no reproducer dumped\n");
      return 1;
    }
  }

  std::printf("=== 4. replaying the first reproducer ===\n");
  const FuzzFailure& first = faulty.failures.front();
  const Reproducer repro = load_reproducer(first.reproducer_path);
  const RunOutcome outcome = replay(repro);
  std::printf("replayed %s: %s\n", first.reproducer_path.c_str(),
              failure_kind_name(outcome.kind).c_str());
  if (failure_kind_name(outcome.kind) != repro.kind) {
    std::printf("FAIL: replay produced '%s', reproducer recorded '%s'\n",
                failure_kind_name(outcome.kind).c_str(), repro.kind.c_str());
    return 1;
  }

  std::printf("\nfuzz demo OK\n");
  return 0;
}
