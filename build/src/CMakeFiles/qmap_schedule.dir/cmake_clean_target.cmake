file(REMOVE_RECURSE
  "libqmap_schedule.a"
)
