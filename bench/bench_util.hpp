// Shared helpers for the benchmark harness.
//
// Every bench binary prints the table/figure data it reproduces (workload,
// parameters, measured values, and the paper's expectation) and then runs
// its google-benchmark timing section. Benches exit non-zero if a
// correctness verification fails, so the harness doubles as an integration
// check.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "arch/builtin.hpp"
#include "core/compiler.hpp"
#include "core/report.hpp"
#include "decompose/decomposer.hpp"
#include "ir/ascii.hpp"
#include "ir/metrics.hpp"
#include "layout/placers.hpp"
#include "schedule/schedulers.hpp"
#include "sim/equivalence.hpp"
#include "workloads/workloads.hpp"

namespace qmap::bench {

inline void section(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

inline void paper_note(const std::string& note) {
  std::cout << "[paper] " << note << "\n";
}

/// Route + finalize, returning the final native circuit and the routing
/// stats; verifies equivalence and aborts the bench on mismatch.
struct MappedOutcome {
  RoutingResult routing;
  Circuit final_circuit;
  CircuitMetrics metrics;
};

inline MappedOutcome map_and_verify(const Circuit& circuit,
                                    const Device& device,
                                    const std::string& router,
                                    const Placement& initial) {
  MappedOutcome outcome;
  const Circuit lowered = lower_to_device(circuit, device, /*keep_swaps=*/true);
  outcome.routing = make_router(router)->route(lowered, device, initial);
  Circuit final_circuit = expand_swaps(outcome.routing.circuit, device);
  final_circuit = fix_cx_directions(final_circuit, device);
  final_circuit = lower_single_qubit(fuse_single_qubit(final_circuit), device);
  outcome.final_circuit = std::move(final_circuit);
  outcome.metrics = compute_metrics(outcome.final_circuit);
  Rng rng(0xBE7C);
  if (!mapping_equivalent(circuit, outcome.final_circuit,
                          outcome.routing.initial.wire_to_phys(),
                          outcome.routing.final.wire_to_phys(), rng, 2)) {
    std::cerr << "FATAL: mapped circuit not equivalent (" << router << " on "
              << device.name() << ", " << circuit.name() << ")\n";
    std::exit(1);
  }
  return outcome;
}

/// Enumerates every placement whose interaction-distance cost is optimal
/// (several exist by device symmetry) and returns the one whose routed SWAP
/// count is smallest — the ILP-quality joint placement+routing Qmap's
/// initial-placement stage provides (see DESIGN.md substitutions). Only
/// viable for paper-scale instances (enumerates m-permutations of n).
inline Placement best_optimal_placement(const Circuit& lowered,
                                        const Device& device,
                                        const std::string& router) {
  const InteractionGraph interactions(lowered);
  const int n = lowered.num_qubits();
  const int m = device.num_qubits();
  const long optimal_cost = placement_cost(
      interactions, ExhaustivePlacer().place(lowered, device), device);

  Placement best = ExhaustivePlacer().place(lowered, device);
  std::size_t best_swaps =
      make_router(router)->route(lowered, device, best).added_swaps;

  std::vector<int> program_to_phys(static_cast<std::size_t>(n), -1);
  std::vector<bool> used(static_cast<std::size_t>(m), false);
  const auto recurse = [&](const auto& self, int k) -> void {
    if (k == n) {
      const Placement candidate =
          Placement::from_program_map(program_to_phys, m);
      if (placement_cost(interactions, candidate, device) != optimal_cost) {
        return;
      }
      const std::size_t swaps =
          make_router(router)->route(lowered, device, candidate).added_swaps;
      if (swaps < best_swaps) {
        best_swaps = swaps;
        best = candidate;
      }
      return;
    }
    for (int phys = 0; phys < m; ++phys) {
      if (used[static_cast<std::size_t>(phys)]) continue;
      used[static_cast<std::size_t>(phys)] = true;
      program_to_phys[static_cast<std::size_t>(k)] = phys;
      self(self, k + 1);
      used[static_cast<std::size_t>(phys)] = false;
    }
  };
  recurse(recurse, 0);
  return best;
}

}  // namespace qmap::bench
