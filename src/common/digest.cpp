#include "common/digest.hpp"

#include <cstdio>

namespace qmap {

std::uint64_t fnv1a64(std::string_view data, std::uint64_t basis) {
  std::uint64_t hash = basis;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::string content_digest(std::string_view data) {
  // Second basis: splitmix64 of the standard one — unrelated enough that
  // the two 64-bit streams do not cancel on the same input.
  const std::uint64_t a = fnv1a64(data);
  const std::uint64_t b = fnv1a64(data, 0x9E3779B97F4A7C15ULL);
  char out[33];
  std::snprintf(out, sizeof(out), "%016llx%016llx",
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  return out;
}

}  // namespace qmap
