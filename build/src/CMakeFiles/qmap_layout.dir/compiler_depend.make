# Empty compiler generated dependencies file for qmap_layout.
# This may be replaced when dependencies are built.
