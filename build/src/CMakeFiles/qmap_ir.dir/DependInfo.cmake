
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/ascii.cpp" "src/CMakeFiles/qmap_ir.dir/ir/ascii.cpp.o" "gcc" "src/CMakeFiles/qmap_ir.dir/ir/ascii.cpp.o.d"
  "/root/repo/src/ir/circuit.cpp" "src/CMakeFiles/qmap_ir.dir/ir/circuit.cpp.o" "gcc" "src/CMakeFiles/qmap_ir.dir/ir/circuit.cpp.o.d"
  "/root/repo/src/ir/dag.cpp" "src/CMakeFiles/qmap_ir.dir/ir/dag.cpp.o" "gcc" "src/CMakeFiles/qmap_ir.dir/ir/dag.cpp.o.d"
  "/root/repo/src/ir/gate.cpp" "src/CMakeFiles/qmap_ir.dir/ir/gate.cpp.o" "gcc" "src/CMakeFiles/qmap_ir.dir/ir/gate.cpp.o.d"
  "/root/repo/src/ir/metrics.cpp" "src/CMakeFiles/qmap_ir.dir/ir/metrics.cpp.o" "gcc" "src/CMakeFiles/qmap_ir.dir/ir/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qmap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
