// Chunked OpenQASM streaming: a GateSource that parses incrementally
// from an std::istream, and a GateSink that serializes gates as they
// arrive. Both sides hold O(chunk) state, so a million-gate .qasm file
// flows through the compiler without ever being resident — and both are
// byte-compatible with the materialized front end (parse_openqasm /
// to_openqasm), which the stream tests pin.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "ir/gate_stream.hpp"

namespace qmap {

namespace qasm_detail {
class StatementLexer;
class OpenQasmParser;
}  // namespace qasm_detail

/// Parses OpenQASM 2.0 from `in`, one statement at a time, yielding
/// gates through the GateSource interface. The register layout (qubit
/// count) is discovered during construction by parsing up to the first
/// gate-producing statement; gates parsed while priming are buffered
/// and delivered by the first pull(). The stream is borrowed and must
/// outlive the source. Parse errors surface as ParseError from the
/// constructor or from pull(), with true line/column positions.
class QasmStreamSource final : public GateSource {
 public:
  explicit QasmStreamSource(std::istream& in, std::string name = "openqasm");
  ~QasmStreamSource() override;

  [[nodiscard]] int num_qubits() const override;
  [[nodiscard]] int num_cbits() const override;
  [[nodiscard]] std::string name() const override { return name_; }

  std::size_t pull(std::vector<Gate>& out, std::size_t max_gates) override;

 private:
  /// Parses one statement; returns false (and finalizes) at EOF.
  bool pump();

  std::unique_ptr<qasm_detail::StatementLexer> lexer_;
  std::unique_ptr<qasm_detail::OpenQasmParser> parser_;
  std::string name_;
  std::string statement_;      // scratch for the lexer
  std::vector<Gate> pending_;  // drained from the parser, not yet pulled
  std::size_t pending_pos_ = 0;
  bool done_ = false;
};

/// Serializes a gate stream as OpenQASM 2.0. The header and register
/// declarations are written at construction (the classical register must
/// therefore be declared up front); gates append as they arrive, through
/// an internal buffer flushed at ~64 KiB. Output bytes match
/// to_openqasm() for the same gates and register sizes. The stream is
/// borrowed and must outlive the sink; call flush() after the last gate.
class QasmStreamSink final : public GateSink {
 public:
  QasmStreamSink(std::ostream& out, int num_qubits, int num_cbits = 0);

  void put(Gate gate) override;
  void put_chunk(std::vector<Gate>& gates) override;
  void flush() override;

  [[nodiscard]] std::size_t gates_written() const noexcept { return gates_; }

 private:
  void append(const Gate& gate);

  std::ostream* out_;
  int num_cbits_;
  std::string buffer_;
  std::size_t gates_ = 0;
};

}  // namespace qmap
