// Schedule export in the paper's own output format: Fig. 2 shows the
// compiler's result as cQASM with single-line parallel bundles
// "{ g1 | g2 }" — gates in the same bundle start in the same cycle. A
// bundled program re-parsed with parse_cqasm flattens back to a circuit
// with identical semantics.
#pragma once

#include <string>

#include "schedule/schedule.hpp"

namespace qmap {

/// Serializes the schedule as cQASM v1 with one bundle per start cycle.
/// Gates that cQASM cannot express throw ParseError. A "# cycle N" comment
/// precedes each bundle when `cycle_comments` is set.
[[nodiscard]] std::string to_cqasm_bundled(const Schedule& schedule,
                                           bool cycle_comments = false);

}  // namespace qmap
