# Empty compiler generated dependencies file for example_noise_aware_mapping.
# This may be replaced when dependencies are built.
