// Workload-aware architecture exploration.
//
// The paper's closing discussion (Sec. VII) points at [69], "Towards
// exploring the potential of alternative quantum computing architectures":
// "these optimizations should consider both the quantum device and the
// quantum application characteristics. In this direction, reference [69]
// proposes an approach which takes the planned quantum functionality into
// account when determining an architecture."
//
// This module inverts the mapping problem: given the circuits you plan to
// run and a coupling-edge budget (edges are resonators/couplers — the
// expensive resource), find the topology that minimizes the routing cost.
// The search is greedy: start from a cost-optimal spanning tree of the
// workload's interaction graph and repeatedly add the edge with the
// largest measured routing-cost reduction.
#pragma once

#include <string>
#include <vector>

#include "arch/device.hpp"
#include "ir/circuit.hpp"

namespace qmap {

struct ArchitectureSearchOptions {
  int edge_budget = 0;          // total edges allowed (>= n-1); 0 = n-1
  GateKind native_two_qubit = GateKind::CZ;
  std::string router = "sabre";  // evaluation router
  std::string placer = "greedy";
};

struct ArchitectureSearchResult {
  Device device;                 // the found topology
  long initial_cost = 0;        // routed cost of the spanning tree
  long final_cost = 0;          // routed cost of the found topology
  std::vector<std::pair<int, int>> added_edges;  // in addition order
};

/// Routed cost of running every workload on `device`: total SWAPs added
/// (each three native two-qubit gates) summed over the workloads.
[[nodiscard]] long evaluate_architecture(
    const Device& device, const std::vector<Circuit>& workloads,
    const ArchitectureSearchOptions& options = {});

/// Greedy workload-aware topology search over `num_qubits` qubits.
/// Throws MappingError when the budget cannot connect the device.
[[nodiscard]] ArchitectureSearchResult search_architecture(
    int num_qubits, const std::vector<Circuit>& workloads,
    const ArchitectureSearchOptions& options);

}  // namespace qmap
