// Router property tests.
//
// For every (router, device, workload) combination:
//   1. the routed circuit only uses coupling-legal interactions/orientations
//      (after SWAP expansion and direction fixing),
//   2. the routed circuit is unitarily equivalent to the input under the
//      reported initial/final placements,
//   3. routing statistics are internally consistent.
// Plus router-specific guarantees (exact <= heuristics on shared
// instances; naive >= smarter routers on the Fig. 3 example).
#include <gtest/gtest.h>

#include "arch/builtin.hpp"
#include "core/compiler.hpp"
#include "decompose/decomposer.hpp"
#include "layout/placers.hpp"
#include "route/astar_layer.hpp"
#include "route/bridge.hpp"
#include "route/exact.hpp"
#include "route/naive.hpp"
#include "route/qmap_router.hpp"
#include "route/sabre.hpp"
#include "route/token_swap.hpp"
#include "sim/equivalence.hpp"
#include "sim/stabilizer.hpp"
#include "verify/validity.hpp"
#include "workloads/workloads.hpp"

namespace qmap {
namespace {

/// Shared post-condition for every routing result: after SWAP expansion
/// and direction repair the circuit passes the verify-subsystem audit
/// (coupling edges, orientations, measurability) and is unitarily
/// equivalent to the input under the reported placements. Swap-count
/// assertions alone would accept a router that silently corrupts the
/// permutation; this closes that hole.
void expect_routed_valid_and_equivalent(const Circuit& original,
                                        const Device& device,
                                        const RoutingResult& result) {
  Circuit legal = expand_swaps(result.circuit, device);
  legal = fix_cx_directions(legal, device);
  verify::CheckOptions options;
  options.require_native = false;  // audit happens before gate lowering
  const verify::ValidityReport report =
      verify::ValidityChecker(device, options).check_circuit(legal);
  EXPECT_TRUE(report.ok()) << report.to_string();
  Rng rng(99);
  EXPECT_TRUE(mapping_equivalent(original.unitary_part(),
                                 legal.unitary_part(),
                                 result.initial.wire_to_phys(),
                                 result.final.wire_to_phys(), rng, 3));
}

struct RouteCase {
  std::string router;
  std::string device;
  std::string workload;
};

std::string case_name(const testing::TestParamInfo<RouteCase>& info) {
  return info.param.router + "_" + info.param.device + "_" +
         info.param.workload;
}

Device get_device(const std::string& name) {
  if (name == "qx4") return devices::ibm_qx4();
  if (name == "qx5") return devices::ibm_qx5();
  if (name == "s17") return devices::surface17();
  if (name == "s7") return devices::surface7();
  if (name == "line5") return devices::linear(5);
  if (name == "grid9") return devices::grid(3, 3);
  throw std::runtime_error("unknown device " + name);
}

Circuit get_workload(const std::string& name) {
  Rng rng(2026);
  if (name == "fig1") return workloads::fig1_example();
  if (name == "ghz4") return workloads::ghz(4);
  if (name == "ghz5") return workloads::ghz(5);
  if (name == "qft4") return workloads::qft(4);
  if (name == "bv4") {
    Circuit c = workloads::bernstein_vazirani({1, 0, 1}).unitary_part();
    return c;
  }
  if (name == "random") return workloads::random_circuit(4, 30, rng, 0.4);
  if (name == "random5") return workloads::random_circuit(5, 40, rng, 0.4);
  throw std::runtime_error("unknown workload " + name);
}

class RouterProperty : public testing::TestWithParam<RouteCase> {};

TEST_P(RouterProperty, RoutedCircuitIsLegalAndEquivalent) {
  const RouteCase& param = GetParam();
  const Device device = get_device(param.device);
  const Circuit circuit = get_workload(param.workload);
  ASSERT_LE(circuit.num_qubits(), device.num_qubits());

  // Route the (un-lowered) circuit directly: routers accept any arity-<=2
  // gates. CPhase on directed devices cannot be direction-fixed, so lower
  // first exactly as the compiler pipeline does.
  const Circuit input = lower_to_device(circuit, device, /*keep_swaps=*/true);
  const Placement initial = GreedyPlacer().place(input, device);
  const auto router = make_router(param.router);
  const RoutingResult result = router->route(input, device, initial);

  // Stats consistency: output SWAPs = routing SWAPs + program SWAPs
  // (e.g. the QFT's final reversal SWAPs are semantic gates, not routing).
  std::size_t program_swaps = 0;
  for (const Gate& gate : input) {
    if (gate.kind == GateKind::SWAP) ++program_swaps;
  }
  std::size_t swap_count = 0;
  for (const Gate& gate : result.circuit) {
    if (gate.kind == GateKind::SWAP) ++swap_count;
  }
  EXPECT_EQ(swap_count, result.added_swaps + program_swaps);
  EXPECT_EQ(result.initial, initial);

  // CX accounting: each BRIDGE contributes exactly 3 extra CXs over the
  // gate it realizes, and nothing else mints or destroys CXs (direction
  // fixes rewrite a CX into H·CX·H, preserving the count).
  std::size_t program_cx = 0;
  for (const Gate& gate : input) {
    if (gate.kind == GateKind::CX) ++program_cx;
  }
  std::size_t routed_cx = 0;
  for (const Gate& gate : result.circuit) {
    if (gate.kind == GateKind::CX) ++routed_cx;
  }
  EXPECT_EQ(routed_cx, program_cx + 3 * result.added_bridges);

  // Legality after SWAP expansion + direction repair.
  Circuit legal = expand_swaps(result.circuit, device);
  legal = fix_cx_directions(legal, device);
  EXPECT_TRUE(respects_coupling(legal, device));

  // Unitary equivalence under the reported placements.
  Rng rng(99);
  EXPECT_TRUE(mapping_equivalent(circuit, legal,
                                 result.initial.wire_to_phys(),
                                 result.final.wire_to_phys(), rng, 3));
}

const char* kRouters[] = {"naive", "sabre", "bridge", "astar", "qmap"};
const char* kDevices[] = {"qx4", "s17", "s7", "line5", "grid9"};
const char* kWorkloads[] = {"fig1", "ghz4", "qft4", "random"};

std::vector<RouteCase> all_cases() {
  std::vector<RouteCase> cases;
  for (const char* router : kRouters) {
    for (const char* device : kDevices) {
      for (const char* workload : kWorkloads) {
        cases.push_back({router, device, workload});
      }
    }
  }
  // Exact router only on the small device (by design).
  for (const char* workload : kWorkloads) {
    cases.push_back({"exact", "qx4", workload});
    cases.push_back({"exact", "line5", workload});
  }
  // Bigger instances for the scalable routers.
  for (const char* router : {"sabre", "bridge", "astar", "qmap"}) {
    cases.push_back({router, "qx5", "random5"});
    cases.push_back({router, "s17", "random5"});
    cases.push_back({router, "qx5", "ghz5"});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, RouterProperty,
                         testing::ValuesIn(all_cases()), case_name);

// --- Router-specific guarantees ---

TEST(ExactRouter, NeverWorseThanHeuristicsOnQx4) {
  // Exact minimality holds w.r.t. the given total gate order, so compare on
  // circuits whose dependency DAG is a chain (each CNOT shares a qubit with
  // its predecessor): there the heuristics have no reordering freedom.
  const Device qx4 = devices::ibm_qx4();
  Rng rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    Circuit circuit(4, "chain");
    int previous = 0;
    for (int g = 0; g < 10; ++g) {
      int other =
          static_cast<int>(rng.index(static_cast<std::size_t>(3)));
      if (other >= previous) ++other;
      circuit.cx(previous, other);
      previous = other;
    }
    const Placement initial =
        Placement::identity(circuit.num_qubits(), qx4.num_qubits());
    const RoutingResult exact = ExactRouter().route(circuit, qx4, initial);
    expect_routed_valid_and_equivalent(circuit, qx4, exact);
    for (const char* name : {"naive", "sabre", "astar", "qmap"}) {
      const RoutingResult heuristic =
          make_router(name)->route(circuit, qx4, initial);
      EXPECT_LE(exact.added_swaps, heuristic.added_swaps)
          << "exact beat by " << name << " on trial " << trial;
      expect_routed_valid_and_equivalent(circuit, qx4, heuristic);
    }
  }
}

TEST(ExactRouter, ZeroSwapsWhenAlreadyRoutable) {
  const Device line = devices::linear(4);
  Circuit c(4);
  c.cx(0, 1).cx(1, 2).cx(2, 3);
  const RoutingResult result = ExactRouter().route(
      c, line, Placement::identity(4, 4));
  EXPECT_EQ(result.added_swaps, 0u);
  expect_routed_valid_and_equivalent(c, line, result);
}

TEST(ExactRouter, SingleSwapOnLineEndToEnd) {
  // cx(0, 2) on a 3-qubit line needs exactly one SWAP.
  const Device line = devices::linear(3);
  Circuit c(3);
  c.cx(0, 2);
  const RoutingResult result =
      ExactRouter().route(c, line, Placement::identity(3, 3));
  EXPECT_EQ(result.added_swaps, 1u);
  expect_routed_valid_and_equivalent(c, line, result);
}

TEST(ExactRouter, ThrowsWhenStateBudgetExceeded) {
  ExactRouter::Options options;
  options.max_states = 10;
  const Device grid = devices::grid(3, 3);
  Rng rng(5);
  const Circuit circuit = workloads::random_circuit(8, 30, rng, 0.7);
  EXPECT_THROW((void)ExactRouter(options).route(
                   circuit, grid, Placement::identity(8, 9)),
               MappingError);
}

TEST(Routers, NaiveIsTheOverheadBaselineOnFig1Skeleton) {
  // Fig. 3: the naive solution "yields a significant overhead", heuristics
  // are "significantly cheaper", the exact result is minimal.
  const Device qx4 = devices::ibm_qx4();
  const Circuit skeleton = workloads::fig1_skeleton();
  const Placement initial =
      Placement::identity(skeleton.num_qubits(), qx4.num_qubits());
  const RoutingResult naive = NaiveRouter().route(skeleton, qx4, initial);
  const RoutingResult exact = ExactRouter().route(skeleton, qx4, initial);
  EXPECT_LE(exact.added_swaps, naive.added_swaps);
  expect_routed_valid_and_equivalent(skeleton, qx4, naive);
  expect_routed_valid_and_equivalent(skeleton, qx4, exact);
}

TEST(Routers, RejectArityThreeGates) {
  const Device qx4 = devices::ibm_qx4();
  Circuit c(3);
  c.ccx(0, 1, 2);
  for (const char* name : {"naive", "sabre", "bridge", "astar", "exact",
                           "qmap"}) {
    EXPECT_THROW((void)make_router(name)->route(
                     c, qx4, Placement::identity(3, 5)),
                 MappingError)
        << name;
  }
}

TEST(Routers, RejectOversizedCircuits) {
  const Device qx4 = devices::ibm_qx4();
  const Circuit c = workloads::ghz(6);
  for (const char* name : {"naive", "sabre", "bridge", "astar", "exact",
                           "qmap"}) {
    EXPECT_THROW((void)make_router(name)->route(
                     c, qx4, Placement::identity(6, 6)),
                 MappingError)
        << name;
  }
}

TEST(Routers, EmptyCircuitRoutesToEmpty) {
  const Device s7 = devices::surface7();
  const Circuit c(3, "empty");
  for (const char* name : {"naive", "sabre", "bridge", "astar", "exact",
                           "qmap"}) {
    const RoutingResult result =
        make_router(name)->route(c, s7, Placement::identity(3, 7));
    EXPECT_EQ(result.circuit.size(), 0u) << name;
    EXPECT_EQ(result.added_swaps, 0u) << name;
  }
}

TEST(Routers, SingleQubitOnlyCircuitNeedsNoSwaps) {
  const Device qx4 = devices::ibm_qx4();
  Circuit c(4);
  c.h(0).t(1).x(2).rz(0.4, 3);
  for (const char* name : {"naive", "sabre", "bridge", "astar", "exact",
                           "qmap"}) {
    const RoutingResult result =
        make_router(name)->route(c, qx4, Placement::identity(4, 5));
    EXPECT_EQ(result.added_swaps, 0u) << name;
    EXPECT_EQ(result.circuit.size(), c.size()) << name;
    expect_routed_valid_and_equivalent(c, qx4, result);
  }
}

TEST(Routers, MeasurementsSurviveRouting) {
  const Device s7 = devices::surface7();
  Circuit c = workloads::ghz(3);
  c.measure_all();
  const RoutingResult result =
      SabreRouter().route(c, s7, GreedyPlacer().place(c, s7));
  std::size_t measures = 0;
  for (const Gate& gate : result.circuit) {
    if (gate.kind == GateKind::Measure) ++measures;
  }
  EXPECT_EQ(measures, 3u);
  expect_routed_valid_and_equivalent(c, s7, result);
}

// --- BridgeRouter / BRIDGE template ---

TEST(BridgeRouter, EmitsTheFourCxTemplateOnALine) {
  // cx(0, 2) on a 3-qubit line: distance 2, nothing else in the front
  // layer, so the router must bridge instead of swapping — and the
  // template bytes are pinned: CX(c,m) CX(m,t) CX(c,m) CX(m,t).
  const Device line = devices::linear(3);
  Circuit c(3);
  c.cx(0, 2);
  const RoutingResult result =
      BridgeRouter().route(c, line, Placement::identity(3, 3));
  EXPECT_EQ(result.added_bridges, 1u);
  EXPECT_EQ(result.added_swaps, 0u);
  EXPECT_EQ(result.final, result.initial);
  ASSERT_EQ(result.circuit.size(), 4u);
  const int expected[4][2] = {{0, 1}, {1, 2}, {0, 1}, {1, 2}};
  for (std::size_t i = 0; i < 4; ++i) {
    const Gate& gate = result.circuit.gate(i);
    EXPECT_EQ(gate.kind, GateKind::CX) << "gate " << i;
    EXPECT_EQ(gate.qubits[0], expected[i][0]) << "gate " << i;
    EXPECT_EQ(gate.qubits[1], expected[i][1]) << "gate " << i;
  }
  expect_routed_valid_and_equivalent(c, line, result);
}

TEST(BridgeRouter, BridgeLeavesThePlacementAlone) {
  // A lone distance-2 CX must never move qubits: final == initial even
  // though the gate was not directly executable.
  const Device qx5 = devices::ibm_qx5();
  Circuit c(3);
  c.h(0).cx(0, 2).h(2);
  const Placement initial = GreedyPlacer().place(c, qx5);
  const RoutingResult result = BridgeRouter().route(c, qx5, initial);
  if (result.added_swaps == 0) {
    EXPECT_EQ(result.final, result.initial);
  }
  expect_routed_valid_and_equivalent(c, qx5, result);
}

TEST(RoutingEmitter, BridgeIsLegalAndEquivalentOnEveryDistance2Pair) {
  // Property: for every ordered physical pair at hop distance exactly 2
  // on the real devices, emit_bridge produces a coupling-legal 4-CX
  // realization (direction-repaired where needed) equivalent to the
  // direct CX, without touching the placement.
  for (const Device& device :
       {devices::ibm_qx4(), devices::ibm_qx5(), devices::surface17()}) {
    const int n = device.num_qubits();
    const CouplingGraph& coupling = device.coupling();
    std::size_t pairs = 0;
    for (int c = 0; c < n; ++c) {
      for (int t = 0; t < n; ++t) {
        if (c == t || coupling.distance(c, t) != 2) continue;
        const std::vector<int> path = coupling.shortest_path(c, t);
        ASSERT_EQ(path.size(), 3u);
        const Placement identity = Placement::identity(n, n);
        RoutingEmitter emitter(device, identity, "bridge");
        emitter.emit_bridge(c, path[1], t);
        const RoutingResult result = std::move(emitter).finish(identity, 0.0);
        EXPECT_EQ(result.added_bridges, 1u);
        EXPECT_TRUE(respects_coupling(result.circuit, device))
            << device.name() << " Q" << c << "->Q" << t;
        EXPECT_EQ(result.final, result.initial);
        Circuit direct(n);
        direct.cx(c, t);
        // The bridge is Clifford, so the exact tableau oracle applies at
        // any width (QX5/Surface-17 are 16/17 qubits).
        EXPECT_TRUE(clifford_mapping_equivalent(
            direct, result.circuit, identity.wire_to_phys(),
            identity.wire_to_phys()))
            << device.name() << " Q" << c << "->Q" << t;
        ++pairs;
      }
    }
    EXPECT_GT(pairs, 0u) << device.name();
  }
}

TEST(RoutingEmitter, BridgeRejectsIllegalTriples) {
  const Device line = devices::linear(4);
  const Placement identity = Placement::identity(4, 4);
  {  // non-distinct qubits
    RoutingEmitter emitter(line, identity, "t");
    EXPECT_THROW(emitter.emit_bridge(0, 1, 0), MappingError);
  }
  {  // second leg not adjacent
    RoutingEmitter emitter(line, identity, "t");
    EXPECT_THROW(emitter.emit_bridge(0, 1, 3), MappingError);
  }
  {  // control/target adjacent (QX4's 0-1-2 triangle): emit the CX instead
    const Device qx4 = devices::ibm_qx4();
    RoutingEmitter emitter(qx4, Placement::identity(5, 5), "t");
    EXPECT_THROW(emitter.emit_bridge(0, 2, 1), MappingError);
  }
}

// --- Token swapping ---

/// Applies a plan to `start`, asserting every structural invariant along
/// the way: pairs are coupling edges, rounds are vertex-disjoint.
Placement apply_plan(const TokenSwapPlan& plan, const Placement& start,
                     const Device& device) {
  Placement place = start;
  for (const SwapRound& round : plan.rounds) {
    std::vector<bool> touched(
        static_cast<std::size_t>(device.num_qubits()), false);
    for (const auto& [a, b] : round) {
      EXPECT_TRUE(device.coupling().connected(a, b))
          << "Q" << a << ", Q" << b;
      EXPECT_FALSE(touched[static_cast<std::size_t>(a)]) << "Q" << a;
      EXPECT_FALSE(touched[static_cast<std::size_t>(b)]) << "Q" << b;
      touched[static_cast<std::size_t>(a)] = true;
      touched[static_cast<std::size_t>(b)] = true;
      place.apply_swap(a, b);
    }
  }
  return place;
}

void expect_program_wires_home(const Placement& place,
                               const Placement& target) {
  for (int w = 0; w < target.num_program_qubits(); ++w) {
    EXPECT_EQ(place.phys_of_wire(w), target.phys_of_wire(w)) << "wire " << w;
  }
}

TEST(TokenSwap, RestoresRandomPermutationsOnEveryDevice) {
  Rng rng(4242);
  for (const Device& device :
       {devices::ibm_qx4(), devices::surface17(), devices::grid(3, 3),
        devices::linear(5)}) {
    const int n = device.num_qubits();
    for (int trial = 0; trial < 12; ++trial) {
      // Vary the program width so free (don't-care) wires get exercised.
      const int k = 2 + static_cast<int>(rng.index(
                            static_cast<std::size_t>(n - 1)));
      const auto scramble = [&] {
        Placement place = Placement::identity(k, n);
        for (int step = 0; step < 3 * n; ++step) {
          const auto& edge = device.coupling().edges()[rng.index(
              device.coupling().edges().size())];
          place.apply_swap(edge.a, edge.b);
        }
        return place;
      };
      const Placement current = scramble();
      const Placement target = scramble();
      const TokenSwapPlan plan =
          plan_token_swaps(current, target, device, nullptr);
      const Placement reached = apply_plan(plan, current, device);
      expect_program_wires_home(reached, target);
    }
  }
}

TEST(TokenSwap, ParallelRoundsBeatTheSequentialChainOnDisjointCycles) {
  // Two disjoint transpositions on a 4-line: one round of two parallel
  // swaps suffices; a sequential chain would serialize them.
  const Device line = devices::linear(4);
  Placement current = Placement::identity(4, 4);
  current.apply_swap(0, 1);
  current.apply_swap(2, 3);
  const Placement target = Placement::identity(4, 4);
  const TokenSwapPlan plan = plan_token_swaps(current, target, line, nullptr);
  ASSERT_EQ(plan.rounds.size(), 1u);
  EXPECT_EQ(plan.rounds[0].size(), 2u);
  expect_program_wires_home(apply_plan(plan, current, line), target);
}

TEST(TokenSwap, EscapesTheDistance2TranspositionStall) {
  // Swapping the endpoints of a 3-line while the middle stays put: no
  // single swap has positive gain, so the zero-gain escape must engage.
  const Device line = devices::linear(3);
  Placement current = Placement::identity(3, 3);
  current.apply_swap(0, 1);
  current.apply_swap(1, 2);
  current.apply_swap(0, 1);  // net effect: wires 0 and 2 exchanged
  const Placement target = Placement::identity(3, 3);
  const TokenSwapPlan plan = plan_token_swaps(current, target, line, nullptr);
  EXPECT_GE(plan.escape_swaps, 1u);
  expect_program_wires_home(apply_plan(plan, current, line), target);
}

TEST(TokenSwap, SpanningTreeFallbackAlwaysTerminates) {
  // Escape budget 0 disables phase 2, forcing the spanning-tree sort the
  // moment the greedy stalls; the result must still be correct.
  const Device line = devices::linear(3);
  Placement current = Placement::identity(3, 3);
  current.apply_swap(0, 1);
  current.apply_swap(1, 2);
  current.apply_swap(0, 1);
  const Placement target = Placement::identity(3, 3);
  const TokenSwapPlan plan =
      plan_token_swaps(current, target, line, nullptr, /*escape_budget=*/0);
  EXPECT_GE(plan.fallback_swaps, 1u);
  expect_program_wires_home(apply_plan(plan, current, line), target);
}

TEST(TokenSwap, IdenticalPlacementsNeedNoSwaps) {
  const Device qx4 = devices::ibm_qx4();
  const Placement identity = Placement::identity(4, 5);
  const TokenSwapPlan plan =
      plan_token_swaps(identity, identity, qx4, nullptr);
  EXPECT_TRUE(plan.rounds.empty());
  EXPECT_EQ(plan.total_swaps(), 0u);
}

TEST(TokenSwap, FreeWiresAreDontCares) {
  // One program wire out of place on a 3-line; only its path matters, the
  // free wires may land anywhere.
  const Device line = devices::linear(3);
  Placement current = Placement::identity(1, 3);
  current.apply_swap(0, 1);
  current.apply_swap(1, 2);  // program wire 0 now at phys 2
  const Placement target = Placement::identity(1, 3);
  const TokenSwapPlan plan = plan_token_swaps(current, target, line, nullptr);
  EXPECT_EQ(plan.total_swaps(), 2u);  // straight walk home, nothing extra
  expect_program_wires_home(apply_plan(plan, current, line), target);
}

TEST(TokenSwap, RejectsMismatchedPlacements) {
  const Device qx4 = devices::ibm_qx4();
  EXPECT_THROW((void)plan_token_swaps(Placement::identity(3, 5),
                                      Placement::identity(3, 7), qx4,
                                      nullptr),
               MappingError);
}

TEST(RoutingEmitter, RefusesNonAdjacentTwoQubitGate) {
  const Device line = devices::linear(3);
  RoutingEmitter emitter(line, Placement::identity(3, 3), "t");
  EXPECT_THROW(emitter.emit_program_gate(make_gate(GateKind::CX, {0, 2})),
               MappingError);
}

TEST(RoutingEmitter, RefusesNonAdjacentSwap) {
  const Device line = devices::linear(3);
  RoutingEmitter emitter(line, Placement::identity(3, 3), "t");
  EXPECT_THROW(emitter.emit_swap(0, 2), MappingError);
}

TEST(RespectsCoupling, DetectsBadOrientation) {
  const Device qx4 = devices::ibm_qx4();
  Circuit c(5);
  c.cx(0, 1);  // reversed orientation
  EXPECT_FALSE(respects_coupling(c, qx4));
  Circuit ok(5);
  ok.cx(1, 0);
  EXPECT_TRUE(respects_coupling(ok, qx4));
}

}  // namespace
}  // namespace qmap
