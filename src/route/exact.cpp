#include "route/exact.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <queue>

#include "common/error.hpp"

namespace qmap {
namespace {

using ProgramMap = std::vector<int>;        // program qubit -> physical
using State = std::pair<int, ProgramMap>;   // (next 2q gate index, placement)

struct Action {
  bool is_swap = false;
  int a = -1;  // swap endpoints (physical)
  int b = -1;
};

}  // namespace

RoutingResult ExactRouter::route(const Circuit& circuit, const Device& device,
                                 const Placement& initial) {
  const auto start_time = std::chrono::steady_clock::now();
  check_routable(circuit, device);
  const CouplingGraph& coupling = device.coupling();
  const int n = circuit.num_qubits();

  // The two-qubit gates in program order drive the search.
  std::vector<int> two_qubit_nodes;
  for (std::size_t i = 0; i < circuit.size(); ++i) {
    if (circuit.gate(i).is_two_qubit()) {
      two_qubit_nodes.push_back(static_cast<int>(i));
    }
  }
  const int num_targets = static_cast<int>(two_qubit_nodes.size());

  ProgramMap start(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    start[static_cast<std::size_t>(k)] = initial.phys_of_program(k);
  }

  // Dijkstra.
  std::map<State, long> dist;
  std::map<State, std::pair<State, Action>> parent;
  using QueueEntry = std::pair<long, State>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      open;
  const State initial_state{0, start};
  dist[initial_state] = 0;
  open.emplace(0, initial_state);

  State goal_state{-1, {}};
  std::size_t pops = 0;
  while (!open.empty()) {
    // Poll the cancellation token every few hundred expansions: often
    // enough for ms-scale deadlines, rare enough to stay off the profile.
    if ((++pops & 0xFF) == 0) check_cancelled();
    const auto [d, state] = open.top();
    open.pop();
    const auto it = dist.find(state);
    if (it == dist.end() || it->second < d) continue;
    const auto& [gate_index, placement] = state;
    if (gate_index == num_targets) {
      goal_state = state;
      break;
    }
    if (dist.size() > options_.max_states) {
      throw MappingError("exact router: state budget exceeded (" +
                         std::to_string(options_.max_states) +
                         " states); use a heuristic router");
    }

    const auto relax = [&](State next, long cost, const Action& action) {
      const long nd = d + cost;
      const auto found = dist.find(next);
      if (found != dist.end() && found->second <= nd) return;
      dist[next] = nd;
      parent[next] = {state, action};
      open.emplace(nd, std::move(next));
    };

    // Execute the pending gate when its operands are adjacent.
    const Gate& gate =
        circuit.gate(static_cast<std::size_t>(
            two_qubit_nodes[static_cast<std::size_t>(gate_index)]));
    const int pa = placement[static_cast<std::size_t>(gate.qubits[0])];
    const int pb = placement[static_cast<std::size_t>(gate.qubits[1])];
    if (coupling.connected(pa, pb)) {
      const bool needs_fix =
          gate.is_directional() && !coupling.orientation_allowed(pa, pb);
      relax({gate_index + 1, placement},
            needs_fix ? options_.cost_per_direction_fix : 0,
            Action{false, -1, -1});
    }

    // Or apply any SWAP.
    for (const auto& edge : coupling.edges()) {
      ProgramMap next = placement;
      for (int& phys : next) {
        if (phys == edge.a) phys = edge.b;
        else if (phys == edge.b) phys = edge.a;
      }
      relax({gate_index, std::move(next)}, options_.cost_per_swap,
            Action{true, edge.a, edge.b});
    }
  }

  if (goal_state.first < 0) {
    throw MappingError("exact router: no solution found");
  }

  // Reconstruct the action sequence.
  std::vector<Action> actions;
  State cursor = goal_state;
  while (!(cursor == initial_state)) {
    const auto& [prev, action] = parent.at(cursor);
    actions.push_back(action);
    cursor = prev;
  }
  std::reverse(actions.begin(), actions.end());

  // Replay: interleave the original gates with the found SWAPs.
  RoutingEmitter emitter(device, initial,
                         circuit.name() + "@" + device.name());
  std::size_t next_gate = 0;  // index into circuit gates
  std::size_t target_index = 0;
  const auto emit_up_to_next_target = [&] {
    const std::size_t stop =
        target_index < two_qubit_nodes.size()
            ? static_cast<std::size_t>(
                  two_qubit_nodes[target_index])
            : circuit.size();
    while (next_gate < stop) {
      emitter.emit_program_gate(circuit.gate(next_gate));
      ++next_gate;
    }
  };
  for (const Action& action : actions) {
    emit_up_to_next_target();
    if (action.is_swap) {
      emitter.emit_swap(action.a, action.b);
    } else {
      emitter.emit_program_gate(circuit.gate(next_gate));  // the 2q gate
      ++next_gate;
      ++target_index;
    }
  }
  emit_up_to_next_target();  // trailing single-qubit gates

  const double runtime_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_time)
          .count();
  return std::move(emitter).finish(initial, runtime_ms);
}

}  // namespace qmap
