#include "resilience/resilience.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "engine/cancel.hpp"
#include "qasm/openqasm.hpp"
#include "verify/validity.hpp"

namespace qmap::resilience {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string format_ms(double ms) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f", ms);
  return buffer;
}

// Distinct stream tags so no two consumers of the policy seed collide.
constexpr std::uint64_t kFaultStream = 0xFA170000;
constexpr std::uint64_t kBackoffStream = 0xB0FF0000;
constexpr std::uint64_t kRungStream = 0x1A000000;

}  // namespace

Json AttemptReport::to_json() const {
  Json out;
  out["attempt"] = Json(attempt);
  out["ok"] = Json(ok);
  if (!ok) {
    out["error_class"] = Json(std::string(error_class_name(error_class)));
    out["error"] = Json(error);
  }
  out["backoff_ms"] = Json(backoff_ms);
  out["wall_ms"] = Json(wall_ms);
  if (!injected_faults.empty()) {
    JsonArray faults;
    for (const std::string& f : injected_faults) faults.push_back(Json(f));
    out["injected_faults"] = Json(std::move(faults));
  }
  return out;
}

Json RungReport::to_json() const {
  Json out;
  out["rung"] = Json(rung);
  out["label"] = Json(label);
  out["ok"] = Json(ok);
  out["skipped"] = Json(skipped);
  JsonArray attempt_list;
  for (const AttemptReport& a : attempts) attempt_list.push_back(a.to_json());
  out["attempts"] = Json(std::move(attempt_list));
  if (!strategies.empty()) {
    JsonArray strategy_list;
    for (const StrategyTelemetry& t : strategies) {
      strategy_list.push_back(t.to_json());
    }
    out["strategies"] = Json(std::move(strategy_list));
  }
  return out;
}

std::string CompileOutcome::report() const {
  std::string out = "admission: " + admission.to_string() + "\n";
  for (const RungReport& rr : rungs) {
    out += "rung " + std::to_string(rr.rung) + " (" + rr.label + "): ";
    if (rr.skipped) {
      out += "skipped\n";
      continue;
    }
    out += rr.ok ? "ok" : "failed";
    out += "\n";
    for (const AttemptReport& a : rr.attempts) {
      out += "  attempt " + std::to_string(a.attempt);
      if (a.backoff_ms > 0.0) {
        out += " (after " + format_ms(a.backoff_ms) + " ms backoff)";
      }
      out += ": ";
      out += a.ok ? "ok" : (std::string(error_class_name(a.error_class)) +
                            " — " + a.error);
      out += " [" + format_ms(a.wall_ms) + " ms]";
      if (!a.injected_faults.empty()) {
        out += " faults: " + join(a.injected_faults, ", ");
      }
      out += "\n";
    }
  }
  if (ok) {
    out += "result: rung " + std::to_string(rung) + ", " + winner_label +
           (degraded() ? " (degraded)" : "") +
           (validated ? ", validated" : ", not re-validated") + ", " +
           std::to_string(total_retries) + " retries\n";
  } else {
    out += "result: FAILED — " + error + "\n";
  }
  return out;
}

Json CompileOutcome::to_json() const {
  Json out;
  out["ok"] = Json(ok);
  out["admission"] = admission.to_json();
  out["rung"] = Json(rung);
  out["winner"] = Json(winner_label);
  out["degraded"] = Json(degraded());
  out["total_retries"] = Json(total_retries);
  out["validated"] = Json(validated);
  JsonArray faults;
  for (const std::string& f : injected_faults) faults.push_back(Json(f));
  out["injected_faults"] = Json(std::move(faults));
  JsonArray rung_list;
  for (const RungReport& rr : rungs) rung_list.push_back(rr.to_json());
  out["rungs"] = Json(std::move(rung_list));
  out["wall_ms"] = Json(wall_ms);
  if (!ok) out["error"] = Json(error);
  if (ok) out["result"] = result.to_json();
  return out;
}

std::string CompileOutcome::fingerprint() const {
  // Everything decision-shaped, nothing clock-shaped: wall times and
  // backoff delays are excluded, attempt/fault/rung structure is included.
  std::string out;
  out += "admission " + admission_verdict_name(admission.verdict) + "\n";
  out += "ok " + std::to_string(ok ? 1 : 0) + "\n";
  out += "rung " + std::to_string(rung) + " " + winner_label + "\n";
  out += "retries " + std::to_string(total_retries) + "\n";
  out += "validated " + std::to_string(validated ? 1 : 0) + "\n";
  out += "faults " + join(injected_faults, ",") + "\n";
  for (const RungReport& rr : rungs) {
    out += "r" + std::to_string(rr.rung);
    if (rr.skipped) {
      out += " skipped\n";
      continue;
    }
    for (const AttemptReport& a : rr.attempts) {
      out += " ";
      out += a.ok ? "ok" : error_class_name(a.error_class);
      if (!a.injected_faults.empty()) {
        out += "[" + join(a.injected_faults, ",") + "]";
      }
    }
    out += "\n";
  }
  if (ok) {
    out += "scheduled_cycles " + std::to_string(result.scheduled_cycles) +
           "\ninitial";
    for (const int p : result.routing.initial.wire_to_phys()) {
      out += " " + std::to_string(p);
    }
    out += "\nfinal";
    for (const int p : result.routing.final.wire_to_phys()) {
      out += " " + std::to_string(p);
    }
    out += "\n" + to_openqasm(result.final_circuit);
  }
  return out;
}

ResilientCompiler::ResilientCompiler(Device device, Policy policy)
    : device_(std::move(device)),
      policy_(std::move(policy)),
      num_strategies_(policy_.portfolio.empty()
                          ? PortfolioCompiler::default_portfolio(device_).size()
                          : policy_.portfolio.size()),
      guard_(device_, policy_.budget) {
  // Fail on nonsense now, not three rungs deep into a compile.
  (void)make_placer(policy_.fallback_placer);
  (void)make_router(policy_.fallback_router);
  for (const StrategySpec& spec : policy_.portfolio) {
    (void)make_placer(spec.placer);
    (void)make_router(spec.router);
  }
  if (policy_.rung1_pipeline) (void)policy_.rung1_pipeline->build();
  if (policy_.rung2_pipeline) (void)policy_.rung2_pipeline->build();
  (void)FaultInjector(policy_.faults);  // validates fault-point names
  if (policy_.rung0_deadline_fraction <= 0.0 ||
      policy_.rung0_deadline_fraction > 1.0 ||
      policy_.rung1_deadline_fraction <= 0.0 ||
      policy_.rung1_deadline_fraction > 1.0) {
    throw MappingError(
        "resilience policy: rung deadline fractions must be in (0, 1]");
  }
  if (policy_.max_retries_per_rung < 0) {
    throw MappingError("resilience policy: max_retries_per_rung < 0");
  }
  if (policy_.first_rung < 0 || policy_.first_rung > 2) {
    throw MappingError("resilience policy: first_rung must be 0, 1, or 2");
  }
  artifacts_ = ArchArtifacts::shared(device_);
}

AdmissionReport ResilientCompiler::assess(const Circuit& circuit) const {
  return guard_.assess(circuit, num_strategies_, policy_.deadline_ms);
}

CompileOutcome ResilientCompiler::compile(const Circuit& circuit) const {
  ThreadPool pool(policy_.num_threads);
  return compile_(circuit, pool, policy_.seed);
}

CompileOutcome ResilientCompiler::compile(const Circuit& circuit,
                                          ThreadPool& pool) const {
  return compile_(circuit, pool, policy_.seed);
}

std::vector<CompileOutcome> ResilientCompiler::compile_batch(
    const std::vector<Circuit>& circuits) const {
  ThreadPool pool(policy_.num_threads);
  std::vector<CompileOutcome> outcomes;
  outcomes.reserve(circuits.size());
  for (std::size_t k = 0; k < circuits.size(); ++k) {
    // compile_ contains failures by design; the catch is the batch-level
    // belt over those suspenders so a poisoned item can never sink its
    // siblings even if the supervisor itself misbehaves.
    try {
      outcomes.push_back(
          compile_(circuits[k], pool, Rng::derive_stream(policy_.seed, k)));
    } catch (const std::exception& e) {
      CompileOutcome failed;
      failed.error = e.what();
      outcomes.push_back(std::move(failed));
    } catch (...) {
      CompileOutcome failed;
      failed.error = "unknown exception";
      outcomes.push_back(std::move(failed));
    }
  }
  return outcomes;
}

CompileOutcome ResilientCompiler::compile_(const Circuit& circuit,
                                           ThreadPool& pool,
                                           std::uint64_t seed) const {
  const Clock::time_point start = Clock::now();
  CompileOutcome outcome;

  obs::Observer* const obs =
      policy_.obs != nullptr ? policy_.obs : policy_.base.obs;
  obs::Span root_span(obs, "resilient_compile", "resilience");
  if (root_span.active()) root_span.arg("circuit", circuit.name());
  obs::add(obs, "resilience.compiles");

  const CancelToken* const client_cancel = policy_.cancel;
  const auto client_cancelled = [client_cancel] {
    return client_cancel != nullptr && client_cancel->cancelled();
  };
  if (client_cancelled()) {
    outcome.error = "cancelled by caller before admission";
    outcome.wall_ms = ms_since(start);
    obs::add(obs, "resilience.cancelled");
    return outcome;
  }

  outcome.admission = assess(circuit);
  if (!outcome.admission.admitted()) {
    outcome.error =
        "rejected at admission: " + join(outcome.admission.reasons, "; ");
    outcome.wall_ms = ms_since(start);
    obs::add(obs, "resilience.admission_rejections");
    return outcome;
  }
  const int first_rung = std::max(
      policy_.first_rung,
      outcome.admission.verdict == AdmissionVerdict::DownTier ? 1 : 0);

  const FaultInjector injector(policy_.faults,
                               Rng::derive_stream(seed, kFaultStream));
  Backoff backoff(policy_.backoff, Rng::derive_stream(seed, kBackoffStream));
  const verify::ValidityChecker checker(device_);

  const bool has_deadline = policy_.deadline_ms > 0.0;
  const auto remaining_ms = [&] {
    return policy_.deadline_ms - ms_since(start);
  };

  for (int rung = 0; rung < 3; ++rung) {
    RungReport rr;
    rr.rung = rung;
    rr.label =
        rung == 0 ? "portfolio"
        : rung == 1
            ? (policy_.rung1_pipeline
                   ? policy_.rung1_pipeline->label()
                   : policy_.fallback_placer + "+" + policy_.fallback_router)
            : (policy_.rung2_pipeline ? policy_.rung2_pipeline->label()
                                      : "identity+naive");
    const bool shielded = rung == 2 && policy_.shield_last_rung;
    // Explicit caller cancellation stops the ladder even ahead of the
    // shielded rung: it is a request, not a failure, so the never-fails
    // guarantee is not owed to a caller who hung up.
    const bool cancelled_now = !outcome.ok && client_cancelled();
    if (cancelled_now && outcome.error.empty()) {
      outcome.error = "cancelled by caller";
      obs::add(obs, "resilience.cancelled");
    }
    if (outcome.ok || cancelled_now || rung < first_rung ||
        (rung < 2 && has_deadline && remaining_ms() <= 0.0)) {
      rr.skipped = true;
      outcome.rungs.push_back(std::move(rr));
      continue;
    }

    obs::Span rung_span(obs, "rung" + std::to_string(rung), "resilience");
    if (rung_span.active()) rung_span.arg("label", rr.label);

    for (int attempt = 0; attempt <= policy_.max_retries_per_rung;
         ++attempt) {
      if (client_cancelled()) {
        if (outcome.error.empty()) {
          outcome.error = "cancelled by caller";
          obs::add(obs, "resilience.cancelled");
        }
        break;
      }
      AttemptReport ar;
      ar.attempt = attempt;
      obs::Span attempt_span(obs, "attempt", "resilience");
      if (attempt_span.active()) {
        attempt_span.arg("rung", std::to_string(rung));
        attempt_span.arg("attempt", std::to_string(attempt));
      }
      if (attempt > 0) {
        double delay = backoff.next_ms();
        if (has_deadline) delay = std::min(delay, std::max(0.0, remaining_ms()));
        if (delay > 0.0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(delay));
        }
        ar.backoff_ms = delay;
        ++outcome.total_retries;
      }
      const Clock::time_point attempt_start = Clock::now();

      // Corruption + validation shared by every rung's success path. On a
      // failed audit the attempt is recorded Permanent: re-running the
      // same deterministic pipeline reproduces the corruption, so the
      // ladder falls back instead of retrying.
      const auto accept = [&](CompilationResult candidate, int strategy,
                              std::string label) {
        if (!shielded) {
          (void)injector.corrupt(candidate, device_, rung, strategy, attempt);
        }
        const bool must_validate = rung == 2 || policy_.validate_intermediate;
        if (must_validate) {
          const verify::ValidityReport audit = checker.check_result(candidate);
          if (!audit.ok()) {
            ar.ok = false;
            ar.error_class = ErrorClass::Permanent;
            ar.error = "result failed post-validation: " +
                       audit.violations.front().to_string() +
                       (audit.violations.size() > 1
                            ? " (+" +
                                  std::to_string(audit.violations.size() - 1) +
                                  " more)"
                            : "");
            return;
          }
        }
        ar.ok = true;
        outcome.ok = true;
        outcome.rung = rung;
        outcome.winner_label = std::move(label);
        outcome.validated = must_validate;
        outcome.result = std::move(candidate);
      };

      try {
        if (rung == 0) {
          PortfolioOptions popt;
          popt.strategies = policy_.portfolio;
          popt.num_threads = policy_.num_threads;
          popt.base_seed = Rng::derive_stream(
              seed, kRungStream + static_cast<std::uint64_t>(attempt));
          popt.base = policy_.base;
          popt.obs = obs;
          popt.cancel = client_cancel;
          popt.artifacts = artifacts_;
          if (has_deadline) {
            popt.portfolio_deadline_ms =
                std::min(policy_.deadline_ms * policy_.rung0_deadline_fraction,
                         std::max(0.0, remaining_ms()));
          }
          if (!injector.empty()) {
            const FaultInjector* inj = &injector;
            popt.stage_hook = [inj, rung, attempt](const char* stage,
                                                   int strategy) {
              inj->at_stage(stage, rung, strategy, attempt);
            };
          }
          const PortfolioCompiler racer(device_, popt);
          PortfolioResult pr = racer.try_compile(circuit, pool);
          rr.strategies = pr.telemetry;
          if (pr.winner_index >= 0) {
            accept(std::move(pr.best), pr.winner_index,
                   std::move(pr.winner_label));
          } else {
            // Classify the whole race from the per-strategy evidence: any
            // transient loss means a retry could win; otherwise resource
            // exhaustion dominates permanence.
            ar.ok = false;
            ar.error_class = ErrorClass::Permanent;
            bool any_resource = false;
            for (const StrategyTelemetry& t : pr.telemetry) {
              if (t.status == StrategyTelemetry::Status::Completed ||
                  t.status == StrategyTelemetry::Status::Skipped) {
                continue;
              }
              if (t.error_class == ErrorClass::Transient) {
                ar.error_class = ErrorClass::Transient;
                break;
              }
              any_resource =
                  any_resource || t.error_class == ErrorClass::ResourceExhausted;
            }
            if (ar.error_class != ErrorClass::Transient && any_resource) {
              ar.error_class = ErrorClass::ResourceExhausted;
            }
            ar.error = "no strategy completed (" +
                       std::to_string(pr.cancelled_count()) + " cancelled, " +
                       std::to_string(pr.telemetry.size() -
                                      pr.cancelled_count() -
                                      pr.completed_count()) +
                       " failed/skipped)";
          }
        } else {
          CompilerOptions copt = policy_.base;
          copt.placer = rung == 1 ? policy_.fallback_placer : "identity";
          copt.router = rung == 1 ? policy_.fallback_router : "naive";
          copt.seed = Rng::derive_stream(
              seed, kRungStream + (static_cast<std::uint64_t>(rung) << 8) +
                        static_cast<std::uint64_t>(attempt));
          CancelToken token;
          copt.cancel = nullptr;
          copt.stage_hook = nullptr;
          copt.obs = obs;
          if (rung == 1 && has_deadline) {
            token.set_deadline_after_ms(std::max(0.0, remaining_ms()) *
                                        policy_.rung1_deadline_fraction);
            copt.cancel = &token;
          }
          // Rung 2 stays uncancellable mid-run: the shield's never-fails
          // guarantee holds once the last rung has started; disconnects
          // are honoured at the attempt/rung checkpoints above instead.
          if (rung == 1 && client_cancel != nullptr) {
            token.link_parent(client_cancel);
            copt.cancel = &token;
          }
          if (!injector.empty() && !shielded) {
            const FaultInjector* inj = &injector;
            copt.stage_hook = [inj, rung, attempt](const char* stage) {
              inj->at_stage(stage, rung, 0, attempt);
            };
          }
          copt.artifacts = artifacts_;
          // The rung is pipeline data: an explicit policy override or the
          // standard preset derived from copt's placer/router/toggles.
          // Either way the compile path below is the same PassManager run.
          const std::optional<PipelineSpec>& pipeline_override =
              rung == 1 ? policy_.rung1_pipeline : policy_.rung2_pipeline;
          const Compiler compiler(device_, copt);
          accept(compiler.compile(circuit, pipeline_override
                                               ? *pipeline_override
                                               : compiler.pipeline()),
                 0, rr.label);
        }
      } catch (const CancelledError& e) {
        ar.ok = false;
        ar.error_class = ErrorClass::Transient;
        ar.error = e.what();
      } catch (const std::exception& e) {
        ar.ok = false;
        ar.error_class = classify_exception(e);
        ar.error = e.what();
      } catch (...) {
        ar.ok = false;
        ar.error_class = ErrorClass::Permanent;
        ar.error = "unknown exception";
      }

      ar.wall_ms = ms_since(attempt_start);
      ar.injected_faults = injector.drain_fired();
      for (const std::string& f : ar.injected_faults) {
        outcome.injected_faults.push_back(f);
        // Marker events nest under the still-open attempt span.
        obs::instant(obs, "fault:" + f, "fault");
        obs::add(obs, "resilience.faults_fired");
      }
      obs::add(obs, "resilience.attempts");
      if (attempt > 0) obs::add(obs, "resilience.retries");
      if (attempt_span.active()) {
        attempt_span.arg("ok", ar.ok ? "true" : "false");
      }
      const bool succeeded = ar.ok;
      const bool transient = ar.error_class == ErrorClass::Transient;
      rr.attempts.push_back(std::move(ar));
      if (succeeded) {
        rr.ok = true;
        break;
      }
      // Transient failures retry (budget permitting); Permanent and
      // ResourceExhausted fall through to the next, cheaper rung.
      if (!transient) break;
      if (has_deadline && remaining_ms() <= 0.0 && rung < 2) break;
    }
    outcome.rungs.push_back(std::move(rr));
  }

  std::sort(outcome.injected_faults.begin(), outcome.injected_faults.end());
  outcome.injected_faults.erase(std::unique(outcome.injected_faults.begin(),
                                            outcome.injected_faults.end()),
                                outcome.injected_faults.end());
  if (!outcome.ok && outcome.error.empty()) {
    outcome.error =
        "every rung exhausted (shield_last_rung off or device unroutable)";
  }
  outcome.wall_ms = ms_since(start);
  if (outcome.ok) {
    obs::add(obs, "resilience.ok");
    obs::add(obs, "resilience.rung_used." + std::to_string(outcome.rung));
    if (outcome.degraded()) obs::add(obs, "resilience.degraded");
  } else {
    obs::add(obs, "resilience.exhausted");
  }
  return outcome;
}

CompileOutcome compile(const Circuit& circuit, const Device& device,
                       const Policy& policy) {
  return ResilientCompiler(device, policy).compile(circuit);
}

}  // namespace qmap::resilience
