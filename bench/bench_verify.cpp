// Verification harness micro-benchmarks: what does it cost to audit a
// mapping, to run one differential check, and to shrink a counterexample?
//
// The audit should be negligible next to a compile (so it can run after
// every mapping in CI), run_strategy is the fuzzer's unit of work (its
// cost bounds campaign throughput), and the shrink cost is dominated by
// the predicate recompiles ddmin spends.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "verify/fuzzer.hpp"
#include "verify/shrink.hpp"
#include "verify/validity.hpp"

namespace qmap {
namespace {

void BM_ValidityAudit(benchmark::State& state) {
  const Device s17 = devices::surface17();
  Rng rng(21);
  const CompilationResult result = Compiler(s17).compile(
      workloads::random_circuit(8, 60, rng, 0.4));
  const verify::ValidityChecker checker(s17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check_result(result));
  }
}
BENCHMARK(BM_ValidityAudit);

void BM_RunStrategyQx4(benchmark::State& state) {
  const Device qx4 = devices::ibm_qx4();
  Rng rng(22);
  const Circuit circuit = workloads::random_circuit(5, 25, rng, 0.5);
  const verify::FuzzStrategy strategy{"greedy", "sabre"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        verify::run_strategy(circuit, qx4, strategy, 0xBE7C));
  }
}
BENCHMARK(BM_RunStrategyQx4);

void BM_RunStrategyCliffordSurface17(benchmark::State& state) {
  // Wide-device path: equivalence via the exact stabilizer tableau.
  const Device s17 = devices::surface17();
  Rng rng(23);
  const Circuit circuit = workloads::random_clifford_circuit(8, 35, rng, 0.5);
  const verify::FuzzStrategy strategy{"greedy", "astar"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        verify::run_strategy(circuit, s17, strategy, 0xBE7C));
  }
}
BENCHMARK(BM_RunStrategyCliffordSurface17);

void BM_ShrinkPlantedFault(benchmark::State& state) {
  // Real-world shrink: predicate re-runs the full compile + oracle with a
  // planted dropped-SWAP fault, the exact loop the fuzzer runs on a
  // genuine failure.
  const Device qx4 = devices::ibm_qx4();
  Rng rng(24);
  const Circuit circuit = workloads::random_circuit(5, 20, rng, 0.6);
  const verify::FuzzStrategy strategy{"greedy", "sabre"};
  const auto fails = [&](const Circuit& candidate) {
    return verify::run_strategy(candidate, qx4, strategy, 0xBE7C, 2,
                                verify::FaultInjection::DropLastSwap)
               .kind != verify::FailureKind::None;
  };
  if (!fails(circuit)) {
    state.SkipWithError("planted fault did not fire on the bench circuit");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::Shrinker().shrink(circuit, fails));
  }
}
BENCHMARK(BM_ShrinkPlantedFault)->Unit(benchmark::kMillisecond);

void BM_FuzzCampaignQx4(benchmark::State& state) {
  // End-to-end throughput of a small campaign (threads = state.range(0)).
  verify::FuzzOptions options;
  options.num_circuits = 8;
  options.max_qubits = 5;
  options.max_gates = 20;
  options.base_seed = 0xCAFE;
  options.trials = 2;
  options.placers = {"identity", "greedy"};
  options.routers = {"naive", "sabre", "astar"};
  options.num_threads = static_cast<int>(state.range(0));
  const verify::DifferentialFuzzer fuzzer({devices::ibm_qx4()}, options);
  for (auto _ : state) {
    const verify::FuzzReport report = fuzzer.run();
    if (!report.ok()) {
      state.SkipWithError("campaign reported failures");
      return;
    }
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_FuzzCampaignQx4)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qmap

BENCHMARK_MAIN();
