file(REMOVE_RECURSE
  "CMakeFiles/qmap_ir.dir/ir/ascii.cpp.o"
  "CMakeFiles/qmap_ir.dir/ir/ascii.cpp.o.d"
  "CMakeFiles/qmap_ir.dir/ir/circuit.cpp.o"
  "CMakeFiles/qmap_ir.dir/ir/circuit.cpp.o.d"
  "CMakeFiles/qmap_ir.dir/ir/dag.cpp.o"
  "CMakeFiles/qmap_ir.dir/ir/dag.cpp.o.d"
  "CMakeFiles/qmap_ir.dir/ir/gate.cpp.o"
  "CMakeFiles/qmap_ir.dir/ir/gate.cpp.o.d"
  "CMakeFiles/qmap_ir.dir/ir/metrics.cpp.o"
  "CMakeFiles/qmap_ir.dir/ir/metrics.cpp.o.d"
  "libqmap_ir.a"
  "libqmap_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qmap_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
