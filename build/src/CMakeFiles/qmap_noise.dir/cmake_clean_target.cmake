file(REMOVE_RECURSE
  "libqmap_noise.a"
)
