// Monte Carlo Pauli-trajectory noise simulation.
//
// The empirical counterpart of the analytic ESP estimator: each trajectory
// runs the circuit on the state-vector simulator and, after every gate,
// injects a uniformly random Pauli on each operand with the calibrated
// error probability (depolarizing channel, trajectory unravelling).
// Averaging the squared overlap with the ideal final state over many
// trajectories estimates the circuit fidelity on the noisy device — what a
// real NISQ execution would deliver (Sec. I: "The success rate of the
// algorithm is consequently reduced since quantum operations are error
// prone").
#pragma once

#include "arch/device.hpp"
#include "common/rng.hpp"
#include "ir/circuit.hpp"

namespace qmap {

struct TrajectoryResult {
  double fidelity = 1.0;        // mean |<ideal|noisy>|^2
  double error_free_rate = 1.0; // fraction of trajectories with no fault
  int trajectories = 0;
};

/// Simulates `circuit` (physical qubits, measurement-free after
/// unitary_part()) under the device's noise model. Throws DeviceError when
/// the device has no noise model, SimulationError when too wide.
[[nodiscard]] TrajectoryResult simulate_noisy(const Circuit& circuit,
                                              const Device& device, Rng& rng,
                                              int trajectories = 200);

}  // namespace qmap
