// PassManager: executes a declared pipeline over a CompileContext.
//
// All cross-cutting ceremony lives here, once, instead of being hand-rolled
// per stage in the facade: cancellation checkpoints, the stage hook (the
// resilience fault injector's seam), per-stage obs spans under one compile
// span, per-pass wall-clock timings, and the final compile counters. A
// PassManager is immutable after construction and safe to run concurrently
// from multiple threads (each run gets its own CompileContext).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pass/context.hpp"
#include "pass/spec.hpp"
#include "pass/streaming.hpp"

namespace qmap {

class PassManager {
 public:
  /// Builds every pass up front; throws MappingError on unknown names or
  /// options (see pass/registry.hpp).
  explicit PassManager(const PipelineSpec& spec);

  [[nodiscard]] const PipelineSpec& spec() const noexcept { return spec_; }

  /// Runs the pipeline over an existing context (the caller reads
  /// ctx.result / ctx.timings afterwards).
  void run(CompileContext& ctx) const;

  /// Convenience: build a context, run, return the result.
  [[nodiscard]] CompilationResult run(const Circuit& circuit,
                                      const Device& device,
                                      const PipelineRuntime& runtime) const;

  /// Streaming execution mode (pass/streaming.hpp): pulls program gates
  /// from `source`, pushes the pipeline's product to `sink`. Window-capable
  /// passes run chunk-by-chunk; the rest transparently materialize. Stage
  /// hooks, cancellation checkpoints, and per-pass timings behave as in
  /// run(). Implemented in streaming.cpp.
  [[nodiscard]] StreamReport run_stream(
      GateSource& source, const Device& device, GateSink& sink,
      const PipelineRuntime& runtime,
      const StreamPipelineOptions& options = {}) const;

 private:
  PipelineSpec spec_;
  std::vector<std::unique_ptr<Pass>> passes_;
  // Cached for the compile span's args; empty when the stage is absent.
  std::string placer_label_;
  std::string router_label_;
};

}  // namespace qmap
