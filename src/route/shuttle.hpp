// Shuttle-aware router for quantum-dot-style devices (Sec. VI-C).
//
// "certain dots can be momentarily empty and electrons can be moved to
//  empty dots in a way that maintains the qubit coherence, the so called
//  shuttling operation. The electron movement can be interpreted either as
//  a change in the device connectivity or as an alternative qubit routing
//  not based on SWAP gates. Specialized mappers are required to take full
//  advantage of these capabilities."
//
// This is that specialized mapper: a SABRE-style front-layer router whose
// action set contains both SWAPs (cost: 3 native two-qubit gates) and
// Moves into empty sites (cost: 1 native operation). When the program uses
// fewer qubits than the device has dots, most routing traffic rides the
// cheap moves; with a full register it degrades gracefully to SWAP-only
// routing.
#pragma once

#include "route/router.hpp"

namespace qmap {

class ShuttleRouter final : public Router {
 public:
  struct Options {
    int extended_window = 20;
    double extended_weight = 0.5;
    /// Relative cost of one SWAP vs one Move in the action score. The
    /// physical default (3 two-qubit gates vs 1 shuttle) is 3.
    double swap_cost = 3.0;
    double move_cost = 1.0;
    /// Weight of the action cost against the distance terms: distance
    /// progress dominates (routing quality first); among equally useful
    /// actions the cheaper one (a Move) wins.
    double action_cost_weight = 0.1;
    double decay_increment = 0.1;
    int decay_reset_interval = 5;
  };

  ShuttleRouter() = default;
  explicit ShuttleRouter(const Options& options) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "shuttle"; }
  /// Throws MappingError when the device does not support shuttling.
  [[nodiscard]] RoutingResult route(const Circuit& circuit,
                                    const Device& device,
                                    const Placement& initial) override;

 private:
  Options options_;
};

}  // namespace qmap
