# Empty dependencies file for qmap_ir.
# This may be replaced when dependencies are built.
