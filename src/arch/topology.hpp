// Coupling graph: which physical-qubit pairs may host a two-qubit gate.
//
// IBM devices (Sec. IV of the paper) publish a *directed* coupling graph —
// an edge Qi -> Qj means a CNOT with control Qi and target Qj is allowed,
// and nothing else. Devices like Surface-17 (Sec. V) are symmetric: a CZ
// may run on any connected pair in either orientation. Both are captured
// here: connectivity is stored undirected, and each undirected edge records
// which orientations are permitted.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace qmap {

class CouplingGraph {
 public:
  CouplingGraph() = default;
  explicit CouplingGraph(int num_qubits);

  [[nodiscard]] int num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }

  /// Adds an edge. `directed == true` permits only the (a -> b) orientation
  /// for directional gates; `false` permits both. Adding both (a,b) and
  /// (b,a) directed edges yields a fully symmetric connection.
  void add_edge(int a, int b, bool directed = false);

  /// True when a two-qubit gate may couple a and b in *some* orientation.
  [[nodiscard]] bool connected(int a, int b) const;

  /// True when a *directional* two-qubit gate with control `control` and
  /// target `target` is allowed as-is (without inserting direction fixes).
  [[nodiscard]] bool orientation_allowed(int control, int target) const;

  [[nodiscard]] const std::vector<int>& neighbors(int q) const;

  /// Undirected edge list, each pair with a < b plus orientation flags.
  struct Edge {
    int a = 0;
    int b = 0;
    bool a_to_b = false;  // orientation a(control) -> b(target) allowed
    bool b_to_a = false;
  };
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept {
    return edges_;
  }

  /// Hop distance over the undirected graph; -1 when disconnected.
  [[nodiscard]] int distance(int a, int b) const;

  /// Fills the lazy all-pairs distance matrix now. The first distance()
  /// call otherwise computes it on demand — a logically-const mutation
  /// that is a data race under concurrent first calls. The portfolio
  /// engine warms the cache once before sharing a device across workers,
  /// after which distance() is a pure read.
  void precompute_distances() const {
    if (!distances_valid_) compute_distances();
  }

  /// One shortest undirected path from a to b (inclusive of endpoints).
  /// Empty when disconnected.
  [[nodiscard]] std::vector<int> shortest_path(int a, int b) const;

  [[nodiscard]] bool is_connected() const;
  [[nodiscard]] int diameter() const;

  /// Sum of distances from q to all other qubits (used by placement
  /// heuristics to find the graph center).
  [[nodiscard]] long total_distance_from(int q) const;

 private:
  void check_qubit(int q) const;
  void compute_distances() const;

  int num_qubits_ = 0;
  std::vector<std::vector<int>> adjacency_;
  std::vector<Edge> edges_;
  // Distance matrix, computed lazily and invalidated by add_edge.
  mutable std::vector<std::vector<int>> distances_;
  mutable bool distances_valid_ = false;
};

}  // namespace qmap
