#include "sim/statevector.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qmap {

namespace {
constexpr int kMaxQubits = 26;
}

StateVector::StateVector(int num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits < 0 || num_qubits > kMaxQubits) {
    throw SimulationError("state vector supports 0.." +
                          std::to_string(kMaxQubits) + " qubits, got " +
                          std::to_string(num_qubits));
  }
  amplitudes_.assign(std::size_t{1} << num_qubits, Complex{0.0, 0.0});
  amplitudes_[0] = Complex{1.0, 0.0};
}

Complex StateVector::amplitude(std::uint64_t basis_index) const {
  if (basis_index >= amplitudes_.size()) {
    throw SimulationError("basis index out of range");
  }
  return amplitudes_[basis_index];
}

void StateVector::reset(std::uint64_t basis_index) {
  if (basis_index >= amplitudes_.size()) {
    throw SimulationError("basis index out of range");
  }
  std::fill(amplitudes_.begin(), amplitudes_.end(), Complex{0.0, 0.0});
  amplitudes_[basis_index] = Complex{1.0, 0.0};
}

void StateVector::randomize(Rng& rng) {
  std::normal_distribution<double> gauss(0.0, 1.0);
  double norm_sq = 0.0;
  for (Complex& amp : amplitudes_) {
    amp = Complex{gauss(rng.engine()), gauss(rng.engine())};
    norm_sq += std::norm(amp);
  }
  const double scale = 1.0 / std::sqrt(norm_sq);
  for (Complex& amp : amplitudes_) amp *= scale;
}

void StateVector::apply_matrix(const Matrix& m,
                               const std::vector<int>& qubits) {
  const int k = static_cast<int>(qubits.size());
  const std::size_t block = std::size_t{1} << k;
  // Bit masks, ordered so that qubits[0] is the MSB of the block index.
  std::vector<std::uint64_t> masks(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    masks[static_cast<std::size_t>(i)] =
        std::uint64_t{1} << bit_shift(qubits[static_cast<std::size_t>(i)]);
  }
  std::uint64_t gate_mask = 0;
  for (const std::uint64_t m_bit : masks) gate_mask |= m_bit;

  std::vector<Complex> scratch(block);
  const std::uint64_t dim = amplitudes_.size();
  for (std::uint64_t base = 0; base < dim; ++base) {
    if ((base & gate_mask) != 0) continue;  // enumerate blocks once
    // Gather the 2^k amplitudes of this block.
    for (std::size_t local = 0; local < block; ++local) {
      std::uint64_t index = base;
      for (int i = 0; i < k; ++i) {
        if ((local >> (k - 1 - i)) & 1) {
          index |= masks[static_cast<std::size_t>(i)];
        }
      }
      scratch[local] = amplitudes_[index];
    }
    // Multiply by the gate matrix and scatter back.
    for (std::size_t row = 0; row < block; ++row) {
      Complex value{0.0, 0.0};
      for (std::size_t col = 0; col < block; ++col) {
        const Complex& entry = m.at(row, col);
        if (entry != Complex{0.0, 0.0}) value += entry * scratch[col];
      }
      std::uint64_t index = base;
      for (int i = 0; i < k; ++i) {
        if ((row >> (k - 1 - i)) & 1) {
          index |= masks[static_cast<std::size_t>(i)];
        }
      }
      amplitudes_[index] = value;
    }
  }
}

void StateVector::apply(const Gate& gate) {
  if (gate.kind == GateKind::Barrier) return;
  if (!gate.is_unitary()) {
    throw SimulationError("apply() on non-unitary gate; use measure()");
  }
  for (const int q : gate.qubits) {
    if (q < 0 || q >= num_qubits_) {
      throw SimulationError("gate qubit out of range");
    }
  }
  apply_matrix(gate.matrix(), gate.qubits);
}

void StateVector::run(const Circuit& circuit, Rng* rng) {
  if (circuit.num_qubits() > num_qubits_) {
    throw SimulationError("circuit wider than state vector");
  }
  for (const Gate& gate : circuit) {
    if (gate.kind == GateKind::Measure) {
      if (rng == nullptr) {
        throw SimulationError("measurement requires an Rng");
      }
      (void)measure(gate.qubits[0], *rng);
    } else {
      apply(gate);
    }
  }
}

double StateVector::probability_one(int qubit) const {
  if (qubit < 0 || qubit >= num_qubits_) {
    throw SimulationError("qubit out of range");
  }
  const std::uint64_t mask = std::uint64_t{1} << bit_shift(qubit);
  double p = 0.0;
  for (std::uint64_t i = 0; i < amplitudes_.size(); ++i) {
    if (i & mask) p += std::norm(amplitudes_[i]);
  }
  return p;
}

int StateVector::measure(int qubit, Rng& rng) {
  const double p1 = probability_one(qubit);
  const int outcome = rng.uniform() < p1 ? 1 : 0;
  const std::uint64_t mask = std::uint64_t{1} << bit_shift(qubit);
  const double keep_probability = outcome == 1 ? p1 : 1.0 - p1;
  const double scale =
      keep_probability > 0.0 ? 1.0 / std::sqrt(keep_probability) : 0.0;
  for (std::uint64_t i = 0; i < amplitudes_.size(); ++i) {
    const bool is_one = (i & mask) != 0;
    if (is_one == (outcome == 1)) {
      amplitudes_[i] *= scale;
    } else {
      amplitudes_[i] = Complex{0.0, 0.0};
    }
  }
  return outcome;
}

std::uint64_t StateVector::sample(Rng& rng) const {
  double r = rng.uniform();
  for (std::uint64_t i = 0; i < amplitudes_.size(); ++i) {
    r -= std::norm(amplitudes_[i]);
    if (r <= 0.0) return i;
  }
  return amplitudes_.size() - 1;
}

void StateVector::permute(const std::vector<int>& from,
                          const std::vector<int>& to) {
  if (from.size() != to.size() ||
      from.size() != static_cast<std::size_t>(num_qubits_)) {
    throw SimulationError("permute: from/to must cover all qubits");
  }
  std::vector<Complex> out(amplitudes_.size(), Complex{0.0, 0.0});
  for (std::uint64_t index = 0; index < amplitudes_.size(); ++index) {
    std::uint64_t permuted = 0;
    for (std::size_t w = 0; w < from.size(); ++w) {
      const std::uint64_t bit =
          (index >> bit_shift(from[w])) & std::uint64_t{1};
      permuted |= bit << bit_shift(to[w]);
    }
    out[permuted] = amplitudes_[index];
  }
  amplitudes_ = std::move(out);
}

double StateVector::fidelity(const StateVector& other) const {
  if (other.num_qubits_ != num_qubits_) {
    throw SimulationError("fidelity: qubit count mismatch");
  }
  Complex inner{0.0, 0.0};
  for (std::uint64_t i = 0; i < amplitudes_.size(); ++i) {
    inner += std::conj(amplitudes_[i]) * other.amplitudes_[i];
  }
  return std::abs(inner);
}

bool StateVector::approx_equal(const StateVector& other,
                               double tolerance) const {
  if (other.num_qubits_ != num_qubits_) return false;
  return std::abs(fidelity(other) - 1.0) <= tolerance;
}

double StateVector::norm() const {
  double sum = 0.0;
  for (const Complex& amp : amplitudes_) sum += std::norm(amp);
  return std::sqrt(sum);
}

std::string StateVector::to_string(double threshold) const {
  std::string out;
  char buffer[128];
  for (std::uint64_t i = 0; i < amplitudes_.size(); ++i) {
    if (std::abs(amplitudes_[i]) <= threshold) continue;
    std::string bits;
    for (int q = 0; q < num_qubits_; ++q) {
      bits += ((i >> bit_shift(q)) & 1) ? '1' : '0';
    }
    std::snprintf(buffer, sizeof(buffer), "(%+.4f%+.4fi) |%s>\n",
                  amplitudes_[i].real(), amplitudes_[i].imag(), bits.c_str());
    out += buffer;
  }
  return out;
}

Matrix circuit_unitary(const Circuit& circuit) {
  const int n = circuit.num_qubits();
  if (n > 12) {
    throw SimulationError("circuit_unitary limited to 12 qubits");
  }
  const std::size_t dim = std::size_t{1} << n;
  Matrix unitary(dim, dim);
  for (std::size_t column = 0; column < dim; ++column) {
    StateVector state(n);
    state.reset(column);
    for (const Gate& gate : circuit) {
      if (!gate.is_unitary() && gate.kind != GateKind::Barrier) {
        throw SimulationError("circuit_unitary: circuit has measurements");
      }
      state.apply(gate);
    }
    for (std::size_t row = 0; row < dim; ++row) {
      unitary.at(row, column) = state.amplitudes()[row];
    }
  }
  return unitary;
}

}  // namespace qmap
