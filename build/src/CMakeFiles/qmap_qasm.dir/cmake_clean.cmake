file(REMOVE_RECURSE
  "CMakeFiles/qmap_qasm.dir/qasm/cqasm.cpp.o"
  "CMakeFiles/qmap_qasm.dir/qasm/cqasm.cpp.o.d"
  "CMakeFiles/qmap_qasm.dir/qasm/expr.cpp.o"
  "CMakeFiles/qmap_qasm.dir/qasm/expr.cpp.o.d"
  "CMakeFiles/qmap_qasm.dir/qasm/openqasm.cpp.o"
  "CMakeFiles/qmap_qasm.dir/qasm/openqasm.cpp.o.d"
  "libqmap_qasm.a"
  "libqmap_qasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qmap_qasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
