// E4 / Fig. 4 — the Surface-17 device model: lattice, frequency groups,
// measurement feedlines, and the CZ parking rule.
//
// Regenerates the figure as text (coordinates, adjacency, colour groups,
// feedline membership) and checks every concrete fact the paper states
// about it. Timing section covers the device-model queries routers hammer
// (distance lookups, parking sets).
#include <benchmark/benchmark.h>

#include "arch/draw.hpp"
#include "bench_util.hpp"

namespace {

using namespace qmap;
using namespace qmap::bench;

void print_figure() {
  const Device s17 = devices::surface17();
  section("Fig. 4: Surface-17 lattice");
  std::cout << s17.summary() << "\n" << draw_device(s17) << "\n";

  TextTable table({"qubit", "row", "col", "freq group", "feedline",
                   "neighbours"});
  const char* group_names[] = {"f1 (red)", "f2 (blue)", "f3 (pink)"};
  for (int q = 0; q < s17.num_qubits(); ++q) {
    std::string neighbours;
    for (const int n : s17.coupling().neighbors(q)) {
      if (!neighbours.empty()) neighbours += " ";
      neighbours += std::to_string(n);
    }
    const auto [row, col] = s17.coordinates()[static_cast<std::size_t>(q)];
    table.add_row({TextTable::num(q), TextTable::num(row, 0),
                   TextTable::num(col, 0),
                   group_names[s17.frequency_group(q)],
                   TextTable::num(s17.feedline(q)), neighbours});
  }
  std::cout << table.str();

  section("Facts stated in Sec. V");
  const auto check = [](const std::string& what, bool ok) {
    std::cout << "  " << what << ": " << (ok ? "OK" : "MISMATCH") << "\n";
    if (!ok) std::exit(1);
  };
  check("qubits 1 and 5 can interact", s17.coupling().connected(1, 5));
  check("qubits 1 and 7 cannot interact", !s17.coupling().connected(1, 7));
  check("no control/target restriction (symmetric CZ)",
        s17.coupling().orientation_allowed(1, 5) &&
            s17.coupling().orientation_allowed(5, 1));
  bool feedline_ok = true;
  for (const int q : {2, 3, 6, 9, 12}) {
    feedline_ok = feedline_ok && s17.feedline(q) == s17.feedline(0);
  }
  check("qubits {0,2,3,6,9,12} share a feedline", feedline_ok);
  check("three microwave frequencies f1 > f2 > f3",
        [&] {
          std::vector<int> groups = s17.frequency_groups();
          std::sort(groups.begin(), groups.end());
          return groups.front() == 0 && groups.back() == 2;
        }());

  section("CZ parking sets (Sec. V: detuned neighbours per CZ)");
  TextTable parking({"CZ edge", "high-freq qubit", "parked qubits"});
  for (const auto& edge : s17.coupling().edges()) {
    const std::vector<int> parked = s17.parked_qubits(edge.a, edge.b);
    if (parked.empty()) continue;
    const int high = s17.frequency_group(edge.a) < s17.frequency_group(edge.b)
                         ? edge.a
                         : edge.b;
    std::string parked_str;
    for (const int p : parked) {
      if (!parked_str.empty()) parked_str += " ";
      parked_str += std::to_string(p);
    }
    parking.add_row({"Q" + std::to_string(edge.a) + "-Q" +
                         std::to_string(edge.b),
                     TextTable::num(high), parked_str});
  }
  std::cout << parking.str();
}

void BM_DistanceQueries(benchmark::State& state) {
  const Device s17 = devices::surface17();
  int sink = 0;
  for (auto _ : state) {
    for (int a = 0; a < 17; ++a) {
      for (int b = 0; b < 17; ++b) {
        sink += s17.coupling().distance(a, b);
      }
    }
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_DistanceQueries);

void BM_ParkingSets(benchmark::State& state) {
  const Device s17 = devices::surface17();
  for (auto _ : state) {
    for (const auto& edge : s17.coupling().edges()) {
      benchmark::DoNotOptimize(s17.parked_qubits(edge.a, edge.b));
    }
  }
}
BENCHMARK(BM_ParkingSets);

void BM_ShortestPath(benchmark::State& state) {
  const Device s17 = devices::surface17();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s17.coupling().shortest_path(4, 12));
  }
}
BENCHMARK(BM_ShortestPath);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
