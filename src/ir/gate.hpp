// Gate model: the instruction set of the circuit IR.
//
// The gate zoo covers the universal set reviewed in Sec. II of the paper
// (H, X, Y, Z, T, CX, CZ, SWAP), the IBM native set of Sec. IV
// (U(theta,phi,lambda) and CX), the Surface-17 native set of Sec. V
// (Rx, Ry rotations and CZ), plus the usual multi-qubit gates that the
// decomposition passes lower (Toffoli, Fredkin) and the non-unitary
// operations needed end-to-end (measurement, barrier).
//
// Matrix convention: for a k-qubit gate, `qubits[0]` is the MOST significant
// bit of the 2^k-dimensional basis index. Thus CX with qubits = {c, t} maps
// |c t> = |1 0> to |1 1>, matching the CX matrix printed in the paper.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/matrix.hpp"

namespace qmap {

enum class GateKind : std::uint8_t {
  // Single-qubit, parameter-free.
  I, X, Y, Z, H, S, Sdg, T, Tdg, SX, SXdg,
  // Single-qubit, parameterized (radians).
  Rx, Ry, Rz, Phase,  // Phase(lambda) = diag(1, e^{i lambda})
  U,                  // U(theta, phi, lambda) -- IBM native one-qubit gate
  // Two-qubit.
  CX, CZ, SWAP, ISWAP, CPhase, CRz,
  // Shuttling move (Sec. VI-C, silicon quantum dots): physically relocates
  // a qubit into an *empty* adjacent site. Wire semantics equal SWAP (the
  // vacated site's free wire travels back), but it is a single native
  // operation, not three two-qubit gates — routers exploit the difference.
  Move,
  // Three-qubit.
  CCX,    // Toffoli
  CSWAP,  // Fredkin
  // Non-unitary.
  Measure,  // computational-basis measurement into a classical bit
  Barrier,  // scheduling barrier across its operand qubits
};

/// Static properties of a gate kind.
struct GateInfo {
  std::string_view name;   // canonical lower-case mnemonic (OpenQASM style)
  int arity;               // number of qubit operands
  int num_params;          // number of angle parameters
  bool unitary;            // false for Measure / Barrier
  bool symmetric;          // invariant under operand exchange (CZ, SWAP, ...)
  bool diagonal;           // diagonal in the computational basis
};

/// Lookup table access; total over all GateKind values.
[[nodiscard]] const GateInfo& gate_info(GateKind kind);

/// Parse a canonical mnemonic ("cx", "u", "rz", ...). Throws ParseError.
[[nodiscard]] GateKind gate_kind_from_name(std::string_view name);

/// One instruction: a gate kind applied to concrete qubit operands.
struct Gate {
  GateKind kind = GateKind::I;
  std::vector<int> qubits;    // size == gate_info(kind).arity (Barrier: any)
  std::vector<double> params; // size == gate_info(kind).num_params
  int cbit = -1;              // classical destination for Measure

  [[nodiscard]] bool is_unitary() const { return gate_info(kind).unitary; }
  [[nodiscard]] bool is_two_qubit() const {
    return gate_info(kind).arity == 2 && kind != GateKind::Barrier;
  }
  /// True when exchanging the operands changes the semantics (e.g. CX).
  [[nodiscard]] bool is_directional() const {
    return is_two_qubit() && !gate_info(kind).symmetric;
  }

  /// Human-readable form, e.g. "cx q2, q4" or "rz(0.5) q1".
  [[nodiscard]] std::string to_string() const;

  /// Unitary matrix (2^arity square). Throws CircuitError for non-unitary
  /// kinds. Uses the qubit-ordering convention documented above.
  [[nodiscard]] Matrix matrix() const;

  friend bool operator==(const Gate& a, const Gate& b) = default;
};

/// Convenience constructors.
[[nodiscard]] Gate make_gate(GateKind kind, std::vector<int> qubits,
                             std::vector<double> params = {});
[[nodiscard]] Gate make_measure(int qubit, int cbit);
[[nodiscard]] Gate make_barrier(std::vector<int> qubits);

}  // namespace qmap
