# Empty dependencies file for test_export_and_bidir.
# This may be replaced when dependencies are built.
