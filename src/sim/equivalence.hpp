// Equivalence checking between original and mapped circuits.
//
// A correct mapper output satisfies, for every input state |psi> on the
// device register:
//
//     U_mapped |psi>  ==  P  U_embedded |psi>
//
// where U_embedded applies the original program gates at the *initial*
// placement and P is the wire permutation accumulated by the routing SWAPs
// (initial placement -> final placement). Randomized state-vector checks of
// this identity catch any routing/decomposition bug with overwhelming
// probability; small circuits can additionally be checked exactly at the
// unitary level.
#pragma once

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ir/circuit.hpp"

namespace qmap {

/// Randomized equivalence of two same-width, measurement-free circuits
/// (up to global phase). Runs `trials` random-state comparisons.
[[nodiscard]] bool circuits_equivalent(const Circuit& a, const Circuit& b,
                                       Rng& rng, int trials = 4,
                                       double tolerance = 1e-7);

/// Exact unitary-level equivalence up to global phase (width <= 10).
[[nodiscard]] bool circuits_equivalent_exact(const Circuit& a,
                                             const Circuit& b,
                                             double tolerance = 1e-7);

/// Randomized check that `mapped` (on `num_physical` qubits) realizes
/// `original` (on <= num_physical program qubits).
///
/// `initial_wire_to_phys` / `final_wire_to_phys` have one entry per wire;
/// wires 0..n-1 carry the program qubits, the rest are free-but-tracked
/// wires (the paper's "free" placement entries). Both must be bijections
/// onto the physical qubits.
[[nodiscard]] bool mapping_equivalent(
    const Circuit& original, const Circuit& mapped,
    const std::vector<int>& initial_wire_to_phys,
    const std::vector<int>& final_wire_to_phys, Rng& rng, int trials = 4,
    double tolerance = 1e-7);

}  // namespace qmap
