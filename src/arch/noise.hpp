// Noise model: per-qubit and per-edge calibration data.
//
// Sec. III-B: "Recent works started optimising directly for circuit
// reliability (i.e. minimize the error rate by choosing the most reliable
// paths) [45]-[47]", and [50] ("Not all qubits are created equal") shows
// that real devices have strongly heterogeneous error rates. This model
// carries the calibration data a cloud backend publishes: single-qubit
// gate error, two-qubit gate error per coupling, readout error, and
// coherence times.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "arch/topology.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"

namespace qmap {

class NoiseModel {
 public:
  NoiseModel() = default;

  /// Uniform calibration: every qubit/edge gets the same numbers.
  [[nodiscard]] static NoiseModel uniform(const CouplingGraph& coupling,
                                          double single_qubit_error,
                                          double two_qubit_error,
                                          double readout_error,
                                          double t1_us = 50.0,
                                          double t2_us = 30.0);

  /// Heterogeneous calibration: each parameter drawn log-uniformly from
  /// [value/spread, value*spread] — the "not all qubits are created equal"
  /// regime of [50].
  [[nodiscard]] static NoiseModel randomized(const CouplingGraph& coupling,
                                             Rng& rng,
                                             double single_qubit_error,
                                             double two_qubit_error,
                                             double readout_error,
                                             double spread = 4.0,
                                             double t1_us = 50.0,
                                             double t2_us = 30.0);

  [[nodiscard]] bool empty() const noexcept {
    return single_qubit_error_.empty();
  }
  [[nodiscard]] int num_qubits() const noexcept {
    return static_cast<int>(single_qubit_error_.size());
  }

  [[nodiscard]] double single_qubit_error(int qubit) const;
  [[nodiscard]] double readout_error(int qubit) const;
  [[nodiscard]] double t1_us(int qubit) const;
  [[nodiscard]] double t2_us(int qubit) const;
  /// Error of a two-qubit gate on (a, b); operand order irrelevant.
  /// Throws DeviceError when the pair is not calibrated (not an edge).
  [[nodiscard]] double two_qubit_error(int a, int b) const;

  void set_single_qubit_error(int qubit, double error);
  void set_readout_error(int qubit, double error);
  void set_coherence(int qubit, double t1_us, double t2_us);
  void set_two_qubit_error(int a, int b, double error);

  /// -log(1 - error) of a SWAP over edge (a, b): three two-qubit gates.
  /// Used as the edge weight for reliability-aware routing.
  [[nodiscard]] double swap_log_cost(int a, int b) const;

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static NoiseModel from_json(const Json& json);

 private:
  explicit NoiseModel(int num_qubits);
  void check_qubit(int qubit) const;

  std::vector<double> single_qubit_error_;
  std::vector<double> readout_error_;
  std::vector<double> t1_us_;
  std::vector<double> t2_us_;
  std::map<std::pair<int, int>, double> two_qubit_error_;
};

}  // namespace qmap
