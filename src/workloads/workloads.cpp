#include "workloads/workloads.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace qmap::workloads {
namespace {
constexpr double kPi = 3.14159265358979323846;
}

Circuit fig1_example() {
  Circuit c(4, "fig1");
  c.h(0).h(2);
  c.cx(2, 3);  // paper notation: CNOT(q3 -> q4), the gate QX4 rejects
  c.t(1);
  c.cx(0, 1);
  c.h(3);
  c.cx(1, 2);
  c.t(0);
  c.cx(0, 2);
  c.cx(2, 3);
  return c;
}

Circuit fig1_skeleton() {
  Circuit c = fig1_example().two_qubit_skeleton();
  c.set_name("fig1_skeleton");
  return c;
}

Circuit ghz(int n) {
  if (n < 1) throw CircuitError("ghz: need at least 1 qubit");
  Circuit c(n, "ghz" + std::to_string(n));
  c.h(0);
  for (int q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  return c;
}

Circuit qft(int n, bool with_swaps) {
  if (n < 1) throw CircuitError("qft: need at least 1 qubit");
  Circuit c(n, "qft" + std::to_string(n));
  for (int target = 0; target < n; ++target) {
    c.h(target);
    for (int control = target + 1; control < n; ++control) {
      c.cp(kPi / static_cast<double>(1 << (control - target)), control,
           target);
    }
  }
  if (with_swaps) {
    for (int q = 0; q < n / 2; ++q) c.swap(q, n - 1 - q);
  }
  return c;
}

Circuit bernstein_vazirani(const std::vector<int>& secret) {
  const int n = static_cast<int>(secret.size());
  if (n < 1) throw CircuitError("bernstein_vazirani: empty secret");
  Circuit c(n + 1, "bv" + std::to_string(n));
  const int ancilla = n;
  c.x(ancilla).h(ancilla);
  for (int q = 0; q < n; ++q) c.h(q);
  for (int q = 0; q < n; ++q) {
    if (secret[static_cast<std::size_t>(q)] != 0) c.cx(q, ancilla);
  }
  for (int q = 0; q < n; ++q) c.h(q);
  for (int q = 0; q < n; ++q) c.measure(q, q);
  return c;
}

Circuit cuccaro_adder(int n) {
  if (n < 1) throw CircuitError("cuccaro_adder: need n >= 1");
  // Register layout: carry-in c0 = qubit 0, then interleaved b_i, a_i,
  // carry-out/z = last qubit. Result: b <- a + b.
  const int total = 2 * n + 2;
  Circuit c(total, "adder" + std::to_string(n));
  const auto a = [&](int i) { return 2 * i + 2; };
  const auto b = [&](int i) { return 2 * i + 1; };
  const int carry_in = 0;
  const int carry_out = total - 1;
  const auto maj = [&](int x, int y, int z) {
    c.cx(z, y).cx(z, x).ccx(x, y, z);
  };
  const auto uma = [&](int x, int y, int z) {
    c.ccx(x, y, z).cx(z, x).cx(x, y);
  };
  maj(carry_in, b(0), a(0));
  for (int i = 1; i < n; ++i) maj(a(i - 1), b(i), a(i));
  c.cx(a(n - 1), carry_out);
  for (int i = n - 1; i >= 1; --i) uma(a(i - 1), b(i), a(i));
  uma(carry_in, b(0), a(0));
  return c;
}

Circuit grover(int n, int marked, int iterations) {
  if (n != 2 && n != 3) throw CircuitError("grover: n must be 2 or 3");
  if (marked < 0 || marked >= (1 << n)) {
    throw CircuitError("grover: marked index out of range");
  }
  Circuit c(n, "grover" + std::to_string(n));
  for (int q = 0; q < n; ++q) c.h(q);
  const auto phase_flip_on = [&](int basis) {
    // X-conjugate qubits whose bit is 0, apply multi-controlled Z, undo.
    // Bit convention matches the simulator: qubit 0 is the MSB.
    for (int q = 0; q < n; ++q) {
      if (((basis >> (n - 1 - q)) & 1) == 0) c.x(q);
    }
    if (n == 2) {
      c.cz(0, 1);
    } else {
      c.h(2).ccx(0, 1, 2).h(2);  // CCZ
    }
    for (int q = 0; q < n; ++q) {
      if (((basis >> (n - 1 - q)) & 1) == 0) c.x(q);
    }
  };
  for (int it = 0; it < iterations; ++it) {
    phase_flip_on(marked);        // oracle
    for (int q = 0; q < n; ++q) c.h(q);
    phase_flip_on(0);             // diffusion = H X .. Z .. X H
    for (int q = 0; q < n; ++q) c.h(q);
  }
  return c;
}

Circuit random_circuit(int n, int num_gates, Rng& rng,
                       double two_qubit_fraction) {
  if (n < 2) throw CircuitError("random_circuit: need n >= 2");
  Circuit c(n, "random" + std::to_string(n) + "x" + std::to_string(num_gates));
  for (int g = 0; g < num_gates; ++g) {
    if (rng.chance(two_qubit_fraction)) {
      const int a = static_cast<int>(rng.index(static_cast<std::size_t>(n)));
      int b = static_cast<int>(rng.index(static_cast<std::size_t>(n - 1)));
      if (b >= a) ++b;
      c.cx(a, b);
    } else {
      const int q = static_cast<int>(rng.index(static_cast<std::size_t>(n)));
      switch (rng.index(4)) {
        case 0: c.h(q); break;
        case 1: c.t(q); break;
        case 2: c.rx(rng.uniform(0.0, 2.0 * kPi), q); break;
        default: c.rz(rng.uniform(0.0, 2.0 * kPi), q); break;
      }
    }
  }
  return c;
}

Circuit random_clifford_circuit(int n, int num_gates, Rng& rng,
                                double two_qubit_fraction) {
  if (n < 2) throw CircuitError("random_clifford_circuit: need n >= 2");
  Circuit c(n, "clifford" + std::to_string(n) + "x" +
                   std::to_string(num_gates));
  for (int g = 0; g < num_gates; ++g) {
    if (rng.chance(two_qubit_fraction)) {
      const int a = static_cast<int>(rng.index(static_cast<std::size_t>(n)));
      int b = static_cast<int>(rng.index(static_cast<std::size_t>(n - 1)));
      if (b >= a) ++b;
      switch (rng.index(3)) {
        case 0: c.cx(a, b); break;
        case 1: c.cz(a, b); break;
        default: c.swap(a, b); break;
      }
    } else {
      const int q = static_cast<int>(rng.index(static_cast<std::size_t>(n)));
      switch (rng.index(7)) {
        case 0: c.h(q); break;
        case 1: c.s(q); break;
        case 2: c.sdg(q); break;
        case 3: c.x(q); break;
        case 4: c.y(q); break;
        case 5: c.z(q); break;
        default: c.sx(q); break;
      }
    }
  }
  return c;
}

Circuit quantum_volume(int n, int depth, Rng& rng) {
  if (n < 2) throw CircuitError("quantum_volume: need n >= 2");
  Circuit c(n, "qv" + std::to_string(n) + "d" + std::to_string(depth));
  std::vector<int> qubits(static_cast<std::size_t>(n));
  std::iota(qubits.begin(), qubits.end(), 0);
  const auto random_u = [&](int q) {
    c.u(rng.uniform(0.0, kPi), rng.uniform(0.0, 2.0 * kPi),
        rng.uniform(0.0, 2.0 * kPi), q);
  };
  for (int layer = 0; layer < depth; ++layer) {
    std::shuffle(qubits.begin(), qubits.end(), rng.engine());
    for (int pair = 0; pair + 1 < n; pair += 2) {
      const int a = qubits[static_cast<std::size_t>(pair)];
      const int b = qubits[static_cast<std::size_t>(pair + 1)];
      // Random SU(4)-style block: 3 CNOTs dressed with random U gates.
      random_u(a);
      random_u(b);
      c.cx(a, b);
      random_u(a);
      random_u(b);
      c.cx(b, a);
      random_u(a);
      random_u(b);
      c.cx(a, b);
      random_u(a);
      random_u(b);
    }
  }
  return c;
}

Circuit qaoa_maxcut(int n, const std::vector<std::pair<int, int>>& edges,
                    int layers, Rng& rng) {
  if (n < 2) throw CircuitError("qaoa_maxcut: need n >= 2");
  Circuit c(n, "qaoa" + std::to_string(n) + "p" + std::to_string(layers));
  for (int q = 0; q < n; ++q) c.h(q);
  for (int layer = 0; layer < layers; ++layer) {
    const double gamma = rng.uniform(0.1, kPi);
    const double beta = rng.uniform(0.1, kPi / 2.0);
    for (const auto& [a, b] : edges) {
      if (a < 0 || a >= n || b < 0 || b >= n || a == b) {
        throw CircuitError("qaoa_maxcut: bad edge");
      }
      // exp(-i gamma Z_a Z_b / ...): the ZZ phase separator.
      c.cx(a, b).rz(2.0 * gamma, b).cx(a, b);
    }
    for (int q = 0; q < n; ++q) c.rx(2.0 * beta, q);
  }
  return c;
}

Circuit deutsch_jozsa(const std::vector<int>& mask) {
  const int n = static_cast<int>(mask.size());
  if (n < 1) throw CircuitError("deutsch_jozsa: empty mask");
  Circuit c(n + 1, "dj" + std::to_string(n));
  const int ancilla = n;
  c.x(ancilla).h(ancilla);
  for (int q = 0; q < n; ++q) c.h(q);
  // Inner-product oracle f(x) = mask . x (balanced unless mask == 0).
  for (int q = 0; q < n; ++q) {
    if (mask[static_cast<std::size_t>(q)] != 0) c.cx(q, ancilla);
  }
  for (int q = 0; q < n; ++q) c.h(q);
  return c;
}

Circuit w_state(int n) {
  if (n < 2) throw CircuitError("w_state: need n >= 2");
  Circuit c(n, "w" + std::to_string(n));
  c.x(0);
  // Cascade: at step k split amplitude so position k keeps 1/sqrt(n).
  for (int k = 0; k + 1 < n; ++k) {
    const double theta =
        2.0 * std::acos(1.0 / std::sqrt(static_cast<double>(n - k)));
    // Controlled-Ry(theta) from q_k onto q_{k+1}:
    c.ry(theta / 2.0, k + 1)
        .cx(k, k + 1)
        .ry(-theta / 2.0, k + 1)
        .cx(k, k + 1);
    // Move the "kept" branch marker: |1 1> -> |0 1>.
    c.cx(k + 1, k);
  }
  return c;
}

Circuit phase_estimation(int precision_bits, double phase) {
  if (precision_bits < 1) {
    throw CircuitError("phase_estimation: need >= 1 counting qubit");
  }
  const int m = precision_bits;
  Circuit c(m + 1, "qpe" + std::to_string(m));
  const int target = m;
  c.x(target);  // |1> is the e^{2 pi i phase} eigenstate of P(2 pi phase)
  for (int k = 0; k < m; ++k) c.h(k);
  for (int k = 0; k < m; ++k) {
    // Counting qubit k (MSB first) controls P^(2^(m-1-k)).
    const double lambda =
        2.0 * kPi * phase * static_cast<double>(1 << (m - 1 - k));
    c.cp(lambda, k, target);
  }
  // Inverse QFT on the counting register.
  Circuit iqft = qft(m, /*with_swaps=*/true).inverse();
  std::vector<int> counting(static_cast<std::size_t>(m));
  for (int k = 0; k < m; ++k) counting[static_cast<std::size_t>(k)] = k;
  c.append_mapped(iqft, counting);
  return c;
}

}  // namespace qmap::workloads
