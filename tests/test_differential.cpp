// Bounded differential-fuzz smoke: seeded random circuits fanned across
// every applicable placer x router strategy on the paper's devices must
// map to valid, equivalent circuits. Runs under the `fuzz` ctest label
// with a hard timeout (tests/CMakeLists.txt) so a runaway router fails
// fast instead of hanging the suite.
//
// Budget note: QX4 fuzzes with general (non-Clifford) circuits — 5 qubits
// keep the state-vector oracle cheap. QX5 and Surface-17 are too wide for
// state vectors at this volume, so they fuzz Clifford-only circuits and
// the exact stabilizer-tableau oracle checks equivalence at full width.
#include <gtest/gtest.h>

#include <filesystem>

#include "arch/builtin.hpp"
#include "verify/fuzzer.hpp"
#include "verify/reproducer.hpp"
#include "verify/shrink.hpp"
#include "workloads/workloads.hpp"

namespace qmap::verify {
namespace {

TEST(DifferentialFuzz, Qx4AllStrategiesStateVector) {
  FuzzOptions options;
  options.num_circuits = 15;
  options.min_qubits = 2;
  options.max_qubits = 5;
  options.min_gates = 4;
  options.max_gates = 25;
  options.base_seed = 0x51D0A;
  options.trials = 2;
  // Empty placers/routers = everything applicable: QX4's 5 qubits keep
  // even the exhaustive placer and the exact router in play.
  const DifferentialFuzzer fuzzer({devices::ibm_qx4()}, options);
  const auto strategies = fuzzer.strategies_for(devices::ibm_qx4());
  ASSERT_GE(strategies.size(), 12u);
  // The default enumeration covers the BRIDGE router and the
  // token_swap_finisher pipeline variants ("+tsf" labels).
  bool saw_bridge = false;
  bool saw_finisher = false;
  for (const FuzzStrategy& strategy : strategies) {
    saw_bridge = saw_bridge || strategy.router == "bridge";
    saw_finisher = saw_finisher || strategy.finisher;
  }
  EXPECT_TRUE(saw_bridge);
  EXPECT_TRUE(saw_finisher);
  const FuzzReport report = fuzzer.run();
  EXPECT_TRUE(report.ok()) << report.report();
  EXPECT_GT(report.runs, 0u);
  for (const StrategyTally& tally : report.tallies) {
    EXPECT_GT(tally.runs, 0u) << tally.strategy.label();
  }
}

TEST(DifferentialFuzz, WideDevicesCliffordTableau) {
  FuzzOptions options;
  options.num_circuits = 20;
  options.min_qubits = 3;
  options.max_qubits = 8;
  options.min_gates = 8;
  options.max_gates = 35;
  options.clifford_only = true;  // exact tableau oracle at 16/17 qubits
  options.base_seed = 0xC11FF;
  options.placers = {"identity", "greedy", "annealing", "bidirectional"};
  options.routers = {"naive", "sabre", "sabre+commute", "bridge", "astar",
                     "qmap"};
  const DifferentialFuzzer fuzzer(
      {devices::ibm_qx5(), devices::surface17()}, options);
  const FuzzReport report = fuzzer.run();
  EXPECT_TRUE(report.ok()) << report.report();
  // Clifford circuits are tableau-checkable at any width: the oracle must
  // never have been skipped.
  for (const StrategyTally& tally : report.tallies) {
    EXPECT_EQ(tally.equivalence_skipped, 0u) << tally.strategy.label();
  }
}

TEST(DifferentialFuzz, Surface17MixedGateSet) {
  // A small non-Clifford batch on Surface-17 exercises the {Rx, Ry, CZ}
  // lowering and the constrained scheduler; widths stay under the
  // state-vector cap so equivalence is still checked.
  FuzzOptions options;
  options.num_circuits = 10;
  options.min_qubits = 3;
  options.max_qubits = 6;
  options.min_gates = 6;
  options.max_gates = 24;
  options.base_seed = 0x517;
  options.trials = 2;
  options.max_statevector_qubits = 17;
  options.placers = {"greedy"};
  options.routers = {"naive", "sabre", "bridge", "astar", "qmap"};
  const FuzzReport report =
      DifferentialFuzzer({devices::surface17()}, options).run();
  EXPECT_TRUE(report.ok()) << report.report();
}

TEST(DifferentialFuzz, ReportIsByteIdenticalAcrossThreadCounts) {
  FuzzOptions options;
  options.num_circuits = 8;
  options.max_qubits = 5;
  options.max_gates = 20;
  options.base_seed = 0xD15C0;
  options.trials = 2;
  options.placers = {"identity", "greedy"};
  options.routers = {"naive", "sabre", "astar"};

  std::vector<std::string> fingerprints;
  for (const int threads : {1, 2, 8}) {
    options.num_threads = threads;
    const FuzzReport report =
        DifferentialFuzzer({devices::ibm_qx4(), devices::surface7()}, options)
            .run();
    EXPECT_TRUE(report.ok()) << report.report();
    fingerprints.push_back(report.fingerprint());
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
  EXPECT_EQ(fingerprints[0], fingerprints[2]);
}

TEST(DifferentialFuzz, FingerprintCapturesPlantedFailures) {
  // Same campaign with and without a planted fault: the fault must change
  // the fingerprint (failures are part of the digest), and the two
  // faulty runs must agree with each other.
  FuzzOptions options;
  options.num_circuits = 5;
  options.min_qubits = 4;
  options.max_qubits = 5;
  options.min_gates = 14;
  options.max_gates = 24;
  options.two_qubit_fraction = 0.6;
  options.base_seed = 0xFA117;
  options.trials = 2;
  options.placers = {"greedy"};
  options.routers = {"sabre"};
  options.shrink_failures = false;

  const FuzzReport clean =
      DifferentialFuzzer({devices::ibm_qx4()}, options).run();
  options.fault = FaultInjection::DropLastSwap;
  const FuzzReport faulty1 =
      DifferentialFuzzer({devices::ibm_qx4()}, options).run();
  const FuzzReport faulty2 =
      DifferentialFuzzer({devices::ibm_qx4()}, options).run();

  EXPECT_TRUE(clean.ok()) << clean.report();
  EXPECT_FALSE(faulty1.ok()) << "planted SWAP drop went unnoticed";
  EXPECT_NE(clean.fingerprint(), faulty1.fingerprint());
  EXPECT_EQ(faulty1.fingerprint(), faulty2.fingerprint());
}

// --- RouteIR-backed routers vs the oracles ----------------------------------

TEST(DifferentialFuzz, RouteIrRoutersZeroMismatchesStateVector) {
  // All five routers whose inner loops run on RouteIR (SoA gates + CSR
  // DAG + flat distance reads), pinned explicitly so this test keeps
  // covering them even if the default enumeration changes. Non-Clifford
  // circuits on QX4 put the state-vector oracle behind every route.
  FuzzOptions options;
  options.num_circuits = 10;
  options.min_qubits = 3;
  options.max_qubits = 5;
  options.min_gates = 8;
  options.max_gates = 30;
  options.two_qubit_fraction = 0.5;
  options.base_seed = 0x5017E1;
  options.trials = 2;
  options.placers = {"greedy", "annealing"};
  options.routers = {"sabre", "sabre+commute", "bridge", "astar", "qmap"};
  options.num_threads = 2;

  const DifferentialFuzzer fuzzer({devices::ibm_qx4()}, options);
  const FuzzReport report = fuzzer.run();
  EXPECT_TRUE(report.ok()) << report.report();
  EXPECT_EQ(report.failures.size(), 0u);
  for (const StrategyTally& tally : report.tallies) {
    EXPECT_GT(tally.runs, 0u) << tally.strategy.label();
    EXPECT_EQ(tally.equivalence_skipped, 0u)
        << tally.strategy.label() << ": oracle must never be width-capped";
  }
}

TEST(DifferentialFuzz, RouteIrRoutersZeroMismatchesCliffordWide) {
  // Same RouteIR router set at QX5 width, where the flat 16x16 distance
  // matrix and larger front layers exercise different code paths; the
  // stabilizer tableau keeps the oracle exact at full width.
  FuzzOptions options;
  options.num_circuits = 8;
  options.min_qubits = 4;
  options.max_qubits = 9;
  options.min_gates = 10;
  options.max_gates = 40;
  options.clifford_only = true;
  options.base_seed = 0x5017E2;
  options.trials = 2;
  options.placers = {"greedy"};
  options.routers = {"sabre", "sabre+commute", "bridge", "astar", "qmap"};
  options.num_threads = 2;

  const FuzzReport report =
      DifferentialFuzzer({devices::ibm_qx5()}, options).run();
  EXPECT_TRUE(report.ok()) << report.report();
}

TEST(DifferentialFuzz, RouteIrFailureShrinksAndRoundTripsReproducer) {
  // ddmin round-trip on a RouteIR route: plant a dropped SWAP behind the
  // sabre route of a random circuit, shrink the failure to a minimal
  // circuit with the same deterministic predicate, dump a reproducer to
  // disk, reload it, and replay — the replay must reproduce the same
  // failure kind from the shrunk circuit alone.
  const Device device = devices::ibm_qx4();
  const FuzzStrategy strategy{"greedy", "sabre", false};
  Rng rng(41);
  const Circuit original = workloads::random_circuit(5, 24, rng, 0.6);

  const auto fails = [&](const Circuit& candidate) {
    const RunOutcome outcome =
        run_strategy(candidate, device, strategy, 7, /*trials=*/2,
                     FaultInjection::DropLastSwap);
    return outcome.kind == FailureKind::Equivalence;
  };
  ASSERT_TRUE(fails(original)) << "planted fault must fail on the original";

  const Shrinker::Result shrunk = Shrinker().shrink(original, fails);
  EXPECT_LT(shrunk.circuit.size(), original.size());
  EXPECT_TRUE(fails(shrunk.circuit));

  Reproducer repro;
  repro.circuit = shrunk.circuit;
  repro.device = device.name();
  repro.strategy = strategy;
  repro.seed = 7;
  repro.trials = 2;
  repro.fault = FaultInjection::DropLastSwap;
  repro.kind = failure_kind_name(FailureKind::Equivalence);
  repro.message = "dropped routing SWAP (planted)";

  const std::string dir =
      (std::filesystem::path(testing::TempDir()) / "qmap_route_ir_repro")
          .string();
  const std::string path = save_reproducer(repro, dir, "route_ir_case");
  const Reproducer loaded = load_reproducer(path);
  EXPECT_EQ(loaded.circuit.size(), shrunk.circuit.size());
  const RunOutcome replayed = replay(loaded);
  EXPECT_EQ(replayed.kind, FailureKind::Equivalence) << replayed.message;
  EXPECT_EQ(failure_kind_name(replayed.kind), loaded.kind);
}

}  // namespace
}  // namespace qmap::verify
