file(REMOVE_RECURSE
  "libqmap_core.a"
)
