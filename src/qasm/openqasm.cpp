#include "qasm/openqasm.hpp"

#include <cctype>
#include <fstream>
#include <istream>
#include <streambuf>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "qasm/expr.hpp"
#include "qasm/openqasm_parser.hpp"

namespace qmap {
namespace qasm_detail {

// ---------------------------------------------------------------------------
// StatementLexer

int StatementLexer::raw_get() {
  const int c = in_->get();
  if (c == std::char_traits<char>::eof()) return c;
  char_line_ = line_;
  char_column_ = column_;
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

int StatementLexer::get() {
  int c = raw_get();
  if (c == '/' && in_->peek() == '/') {
    // Line comment: consume to (and including) the newline so a ';'
    // inside a comment cannot split statements. The newline is returned
    // as the comment's whitespace residue, keeping line counts exact.
    while (c != std::char_traits<char>::eof() && c != '\n') c = raw_get();
  }
  return c;
}

bool StatementLexer::next(std::string& statement, int& line, int& column) {
  statement.clear();
  constexpr int kEof = std::char_traits<char>::eof();
  int brace_depth = 0;
  bool has_content = false;
  for (;;) {
    const int c = get();
    if (c == kEof) {
      if (brace_depth != 0) {
        throw ParseError("OpenQASM: unterminated gate definition", line_,
                         column_);
      }
      if (has_content) {
        throw ParseError("OpenQASM: missing ';' after final statement", line,
                         column);
      }
      return false;
    }
    if (c == '{') ++brace_depth;
    if (c == '}') {
      if (--brace_depth < 0) {
        throw ParseError("OpenQASM: unbalanced '}'", char_line_, char_column_);
      }
      if (brace_depth == 0) {
        // End of a gate-definition block.
        statement += '}';
        return true;
      }
    }
    if (c == ';' && brace_depth == 0) {
      if (has_content) return true;
      continue;  // stray ';' — matches the old parser's empty statement
    }
    if (!has_content && !std::isspace(static_cast<unsigned char>(c))) {
      has_content = true;
      line = char_line_;
      column = char_column_;
    }
    if (has_content) statement += static_cast<char>(c);
  }
}

// ---------------------------------------------------------------------------
// OpenQasmParser

void OpenQasmParser::fail(const std::string& message, int line) const {
  throw ParseError("OpenQASM: " + message, line, column_);
}

void OpenQasmParser::handle_statement(std::string_view raw, int line,
                                      int column) {
  column_ = column;
  const std::string_view statement = trim(raw);
  if (statement.empty()) return;
  if (starts_with(statement, "OPENQASM")) {
    saw_header_ = true;
    return;
  }
  if (starts_with(statement, "include")) return;  // qelib1.inc is built in
  if (starts_with(statement, "qreg")) {
    declare_register(statement.substr(4), line, /*quantum=*/true);
    return;
  }
  if (starts_with(statement, "creg")) {
    declare_register(statement.substr(4), line, /*quantum=*/false);
    return;
  }
  if (starts_with(statement, "gate ")) {
    define_gate(statement.substr(5), line);
    return;
  }
  if (starts_with(statement, "opaque") || starts_with(statement, "if") ||
      starts_with(statement, "reset")) {
    fail("unsupported construct: '" + std::string(statement) + "'", line);
  }
  if (starts_with(statement, "measure")) {
    handle_measure(statement.substr(7), line);
    return;
  }
  if (starts_with(statement, "barrier")) {
    handle_barrier(statement.substr(7), line);
    return;
  }
  handle_gate(statement, line);
}

void OpenQasmParser::declare_register(std::string_view rest, int line,
                                      bool quantum) {
  const std::string_view spec = trim(rest);
  const std::size_t open = spec.find('[');
  const std::size_t close = spec.find(']');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    fail("malformed register declaration", line);
  }
  const std::string name(trim(spec.substr(0, open)));
  int size = 0;
  try {
    size = static_cast<int>(
        eval_expression(spec.substr(open + 1, close - open - 1)));
  } catch (const ParseError&) {
    fail("malformed register size", line);
  }
  if (size <= 0) fail("register size must be positive", line);
  auto& table = quantum ? qregs_ : cregs_;
  if (table.count(name) != 0) fail("duplicate register '" + name + "'", line);
  int& total = quantum ? num_qubits_ : num_cbits_;
  table[name] = Register{total, size};
  total += size;
}

OpenQasmParser::Operand OpenQasmParser::parse_operand(std::string_view text,
                                                      int line,
                                                      bool quantum) const {
  const std::string_view spec = trim(text);
  const auto& table = quantum ? qregs_ : cregs_;
  const std::size_t open = spec.find('[');
  std::string name;
  int element = -1;
  if (open == std::string_view::npos) {
    name = std::string(spec);
  } else {
    const std::size_t close = spec.find(']');
    if (close == std::string_view::npos || close < open) {
      fail("malformed operand '" + std::string(spec) + "'", line);
    }
    name = std::string(trim(spec.substr(0, open)));
    try {
      element = static_cast<int>(
          eval_expression(spec.substr(open + 1, close - open - 1)));
    } catch (const ParseError&) {
      fail("malformed operand index", line);
    }
  }
  const auto it = table.find(name);
  if (it == table.end()) {
    fail("unknown register '" + name + "'", line);
  }
  if (element >= it->second.size) {
    fail("index " + std::to_string(element) + " out of range for register '" +
             name + "'",
         line);
  }
  return Operand{it->second, element};
}

void OpenQasmParser::ensure_circuit() {
  if (!circuit_initialized_) {
    circuit_ = Circuit(num_qubits_, "openqasm");
    circuit_initialized_ = true;
  }
  circuit_.declare_cbits(num_cbits_);
}

std::vector<Gate> OpenQasmParser::drain_gates() {
  if (!circuit_initialized_) return {};
  return circuit_.take_gates();
}

void OpenQasmParser::handle_measure(std::string_view rest, int line) {
  ensure_circuit();
  const std::size_t arrow = rest.find("->");
  if (arrow == std::string_view::npos) {
    fail("measure requires '->'", line);
  }
  const Operand qubit = parse_operand(rest.substr(0, arrow), line, true);
  const Operand cbit = parse_operand(rest.substr(arrow + 2), line, false);
  if ((qubit.element < 0) != (cbit.element < 0)) {
    fail("measure operands must both be registers or both elements", line);
  }
  if (qubit.element < 0) {
    if (qubit.reg.size != cbit.reg.size) {
      fail("measure register size mismatch", line);
    }
    for (int i = 0; i < qubit.reg.size; ++i) {
      circuit_.measure(qubit.reg.offset + i, cbit.reg.offset + i);
    }
  } else {
    circuit_.measure(qubit.reg.offset + qubit.element,
                     cbit.reg.offset + cbit.element);
  }
}

void OpenQasmParser::handle_barrier(std::string_view rest, int line) {
  ensure_circuit();
  std::vector<int> qubits;
  for (const std::string& token : split(rest, ',')) {
    if (trim(token).empty()) continue;
    const Operand operand = parse_operand(token, line, true);
    if (operand.element < 0) {
      for (int i = 0; i < operand.reg.size; ++i) {
        qubits.push_back(operand.reg.offset + i);
      }
    } else {
      qubits.push_back(operand.reg.offset + operand.element);
    }
  }
  if (qubits.empty()) fail("barrier requires operands", line);
  circuit_.barrier(std::move(qubits));
}

void OpenQasmParser::define_gate(std::string_view rest, int line) {
  const std::size_t open_brace = rest.find('{');
  const std::size_t close_brace = rest.rfind('}');
  if (open_brace == std::string_view::npos ||
      close_brace == std::string_view::npos || close_brace < open_brace) {
    fail("malformed gate definition", line);
  }
  std::string_view header = trim(rest.substr(0, open_brace));
  const std::string_view body_text =
      rest.substr(open_brace + 1, close_brace - open_brace - 1);

  GateDefinition definition;
  // Name.
  std::size_t name_end = 0;
  while (name_end < header.size() &&
         (std::isalnum(static_cast<unsigned char>(header[name_end])) ||
          header[name_end] == '_')) {
    ++name_end;
  }
  const std::string name = to_lower(header.substr(0, name_end));
  if (name.empty()) fail("gate definition without a name", line);
  header = trim(header.substr(name_end));
  // Optional parameter list.
  if (!header.empty() && header.front() == '(') {
    const std::size_t close = header.find(')');
    if (close == std::string_view::npos) fail("missing ')'", line);
    for (const std::string& p : split(header.substr(1, close - 1), ',')) {
      if (!trim(p).empty()) definition.params.emplace_back(trim(p));
    }
    header = trim(header.substr(close + 1));
  }
  // Formal qubit arguments.
  for (const std::string& a : split(header, ',')) {
    if (!trim(a).empty()) definition.args.emplace_back(trim(a));
  }
  if (definition.args.empty()) {
    fail("gate definition needs at least one qubit argument", line);
  }
  // Body statements.
  for (const std::string& s : split(body_text, ';')) {
    if (!trim(s).empty()) definition.body.emplace_back(trim(s));
  }
  if (gate_definitions_.count(name) != 0) {
    fail("duplicate gate definition '" + name + "'", line);
  }
  gate_definitions_[name] = std::move(definition);
}

namespace {

/// Identifier-boundary-aware substitution of formal names.
std::string substitute(std::string_view text,
                       const std::map<std::string, std::string>& replacements) {
  std::string out;
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t end = i;
      while (end < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[end])) ||
              text[end] == '_')) {
        ++end;
      }
      const std::string word(text.substr(i, end - i));
      const auto it = replacements.find(word);
      out += it != replacements.end() ? it->second : word;
      i = end;
    } else {
      out += c;
      ++i;
    }
  }
  return out;
}

}  // namespace

void OpenQasmParser::expand_definition(
    const std::string& name, const GateDefinition& definition,
    const std::vector<double>& params,
    const std::vector<std::string>& operand_texts, int line) {
  if (params.size() != definition.params.size()) {
    fail("gate '" + name + "' expects " +
             std::to_string(definition.params.size()) + " parameters",
         line);
  }
  if (operand_texts.size() != definition.args.size()) {
    fail("gate '" + name + "' expects " +
             std::to_string(definition.args.size()) + " operands",
         line);
  }
  if (++expansion_depth_ > 64) {
    fail("gate definitions nested too deeply (recursive definition?)", line);
  }
  std::map<std::string, std::string> replacements;
  for (std::size_t i = 0; i < params.size(); ++i) {
    replacements[definition.params[i]] = format_double(params[i]);
  }
  for (std::size_t i = 0; i < operand_texts.size(); ++i) {
    replacements[definition.args[i]] = operand_texts[i];
  }
  const int column = column_;
  for (const std::string& body_statement : definition.body) {
    handle_statement(substitute(body_statement, replacements), line, column);
  }
  --expansion_depth_;
}

void OpenQasmParser::handle_gate(std::string_view statement, int line) {
  ensure_circuit();
  // Split mnemonic(+params) from operands.
  std::size_t name_end = 0;
  while (name_end < statement.size() &&
         (std::isalnum(static_cast<unsigned char>(statement[name_end])) ||
          statement[name_end] == '_')) {
    ++name_end;
  }
  std::string name = to_lower(statement.substr(0, name_end));
  if (name.empty()) fail("malformed statement", line);
  std::string_view rest = statement.substr(name_end);

  std::vector<double> params;
  const std::string_view rest_trimmed = trim(rest);
  if (!rest_trimmed.empty() && rest_trimmed.front() == '(') {
    int depth = 0;
    std::size_t close = std::string_view::npos;
    for (std::size_t i = 0; i < rest_trimmed.size(); ++i) {
      if (rest_trimmed[i] == '(') ++depth;
      if (rest_trimmed[i] == ')' && --depth == 0) {
        close = i;
        break;
      }
    }
    if (close == std::string_view::npos) fail("missing ')'", line);
    const std::string_view param_text = rest_trimmed.substr(1, close - 1);
    // Split params on top-level commas.
    int nesting = 0;
    std::string current;
    const auto flush = [&] {
      if (!trim(current).empty()) {
        try {
          params.push_back(eval_expression(current));
        } catch (const ParseError& e) {
          fail(e.what(), line);
        }
      }
      current.clear();
    };
    for (const char c : param_text) {
      if (c == '(') ++nesting;
      if (c == ')') --nesting;
      if (c == ',' && nesting == 0) {
        flush();
      } else {
        current += c;
      }
    }
    flush();
    rest = rest_trimmed.substr(close + 1);
  }

  // User-defined gates expand by substitution before builtin lookup.
  const auto definition = gate_definitions_.find(name);
  if (definition != gate_definitions_.end()) {
    std::vector<std::string> operand_texts;
    for (const std::string& token : split(rest, ',')) {
      if (!trim(token).empty()) operand_texts.emplace_back(trim(token));
    }
    expand_definition(name, definition->second, params, operand_texts, line);
    return;
  }

  std::vector<Operand> operands;
  for (const std::string& token : split(rest, ',')) {
    if (trim(token).empty()) continue;
    operands.push_back(parse_operand(token, line, true));
  }
  if (operands.empty()) fail("gate without operands", line);

  // u2(phi, lambda) = U(pi/2, phi, lambda) is the only alias that also
  // rewrites parameters.
  GateKind kind{};
  if (name == "u2") {
    if (params.size() != 2) fail("u2 expects 2 parameters", line);
    kind = GateKind::U;
    params = {3.14159265358979323846 / 2.0, params[0], params[1]};
  } else {
    try {
      kind = gate_kind_from_name(name);
    } catch (const ParseError&) {
      fail("unknown gate '" + name + "'", line);
    }
  }

  // Broadcast semantics: whole-register operands expand element-wise; all
  // broadcast registers must have the same length.
  int broadcast = 1;
  for (const Operand& operand : operands) {
    if (operand.element < 0) {
      if (broadcast != 1 && broadcast != operand.reg.size) {
        fail("broadcast register size mismatch", line);
      }
      broadcast = operand.reg.size;
    }
  }
  for (int rep = 0; rep < broadcast; ++rep) {
    std::vector<int> qubits;
    qubits.reserve(operands.size());
    for (const Operand& operand : operands) {
      qubits.push_back(operand.element < 0
                           ? operand.reg.offset + rep
                           : operand.reg.offset + operand.element);
    }
    try {
      circuit_.add(make_gate(kind, std::move(qubits), params));
    } catch (const Error& e) {
      fail(e.what(), line);
    }
  }
}

void OpenQasmParser::finalize() {
  ensure_circuit();  // also declares trailing creg bits
  if (!saw_header_) {
    throw ParseError("OpenQASM: missing 'OPENQASM 2.0;' header", 1, 1);
  }
}

void append_openqasm_gate(std::string& out, const Gate& gate) {
  if (gate.kind == GateKind::Measure) {
    out += "measure q[" + std::to_string(gate.qubits[0]) + "] -> c[" +
           std::to_string(gate.cbit) + "];\n";
    return;
  }
  std::string name{gate_info(gate.kind).name};
  if (gate.kind == GateKind::U) name = "u3";  // widest compatibility
  if (gate.kind == GateKind::Phase) name = "u1";
  out += name;
  if (!gate.params.empty()) {
    out += '(';
    for (std::size_t i = 0; i < gate.params.size(); ++i) {
      if (i != 0) out += ',';
      out += format_double(gate.params[i]);
    }
    out += ')';
  }
  out += ' ';
  for (std::size_t i = 0; i < gate.qubits.size(); ++i) {
    if (i != 0) out += ',';
    out += "q[" + std::to_string(gate.qubits[i]) + "]";
  }
  out += ";\n";
}

}  // namespace qasm_detail

namespace {

/// A zero-copy streambuf over a string_view, so the string_view overload
/// of parse_openqasm shares the incremental istream code path without
/// duplicating the source text.
class ViewBuf final : public std::streambuf {
 public:
  explicit ViewBuf(std::string_view view) {
    char* data = const_cast<char*>(view.data());
    setg(data, data, data + view.size());
  }
};

}  // namespace

Circuit parse_openqasm(std::istream& in) {
  qasm_detail::StatementLexer lexer(in);
  qasm_detail::OpenQasmParser parser;
  std::string statement;
  int line = 1;
  int column = 1;
  while (lexer.next(statement, line, column)) {
    parser.handle_statement(statement, line, column);
  }
  parser.finalize();
  return std::move(parser).take();
}

Circuit parse_openqasm(std::string_view source) {
  ViewBuf buffer(source);
  std::istream in(&buffer);
  return parse_openqasm(in);
}

Circuit load_openqasm(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open file: " + path);
  Circuit circuit = parse_openqasm(in);
  circuit.set_name(path);
  return circuit;
}

std::string to_openqasm(const Circuit& circuit) {
  std::string out = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
  out += "qreg q[" + std::to_string(circuit.num_qubits()) + "];\n";
  if (circuit.num_cbits() > 0) {
    out += "creg c[" + std::to_string(circuit.num_cbits()) + "];\n";
  }
  for (const Gate& gate : circuit) {
    qasm_detail::append_openqasm_gate(out, gate);
  }
  return out;
}

void save_openqasm(const Circuit& circuit, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw ParseError("cannot write file: " + path);
  out << to_openqasm(circuit);
}

}  // namespace qmap
