file(REMOVE_RECURSE
  "CMakeFiles/bench_router_comparison.dir/bench_router_comparison.cpp.o"
  "CMakeFiles/bench_router_comparison.dir/bench_router_comparison.cpp.o.d"
  "bench_router_comparison"
  "bench_router_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_router_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
