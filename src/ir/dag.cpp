#include "ir/dag.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qmap {

QubitAction qubit_action(const Gate& gate, int qubit) {
  switch (gate.kind) {
    // Single-qubit Z-diagonal.
    case GateKind::I:
    case GateKind::Z:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::T:
    case GateKind::Tdg:
    case GateKind::Rz:
    case GateKind::Phase:
      return QubitAction::Diagonal;
    // Single-qubit X-basis diagonal.
    case GateKind::X:
    case GateKind::Rx:
    case GateKind::SX:
    case GateKind::SXdg:
      return QubitAction::AntiDiagonalX;
    // Controlled gates: controls are Z-diagonal; targets follow the base
    // gate's axis.
    case GateKind::CX:
      return qubit == gate.qubits[0] ? QubitAction::Diagonal
                                     : QubitAction::AntiDiagonalX;
    case GateKind::CZ:
    case GateKind::CPhase:
    case GateKind::CRz:
      return QubitAction::Diagonal;  // fully diagonal two-qubit gates
    case GateKind::CCX:
      return qubit == gate.qubits[2] ? QubitAction::AntiDiagonalX
                                     : QubitAction::Diagonal;
    default:
      return QubitAction::Other;
  }
}

bool gates_commute(const Gate& a, const Gate& b) {
  if (!a.is_unitary() || !b.is_unitary()) return false;  // Measure/Barrier
  for (const int qa : a.qubits) {
    for (const int qb : b.qubits) {
      if (qa != qb) continue;
      const QubitAction action_a = qubit_action(a, qa);
      const QubitAction action_b = qubit_action(b, qa);
      if (action_a == QubitAction::Other || action_a != action_b) {
        return false;
      }
    }
  }
  return true;
}

DependencyDag::DependencyDag(const Circuit& circuit, DagMode mode)
    : circuit_(&circuit) {
  const std::size_t n = circuit.size();
  preds_.resize(n);
  succs_.resize(n);
  const auto add_edge = [this](int from, std::size_t to) {
    auto& succ = succs_[static_cast<std::size_t>(from)];
    if (std::find(succ.begin(), succ.end(), static_cast<int>(to)) ==
        succ.end()) {
      succ.push_back(static_cast<int>(to));
      preds_[to].push_back(from);
    }
  };
  if (mode == DagMode::Sequential) {
    // last_writer[q] = index of the most recent gate acting on qubit q.
    std::vector<int> last_writer(
        static_cast<std::size_t>(circuit.num_qubits()), -1);
    for (std::size_t i = 0; i < n; ++i) {
      const Gate& gate = circuit.gate(i);
      for (const int q : gate.qubits) {
        const int prev = last_writer[static_cast<std::size_t>(q)];
        if (prev >= 0) add_edge(prev, i);
        last_writer[static_cast<std::size_t>(q)] = static_cast<int>(i);
      }
    }
  } else {
    // Commutation-aware: gate i depends on every earlier gate sharing a
    // qubit that it does not provably commute with. Transitively redundant
    // edges are harmless for the ready-set machinery.
    std::vector<std::vector<int>> per_qubit(
        static_cast<std::size_t>(circuit.num_qubits()));
    for (std::size_t i = 0; i < n; ++i) {
      const Gate& gate = circuit.gate(i);
      for (const int q : gate.qubits) {
        for (const int prev : per_qubit[static_cast<std::size_t>(q)]) {
          if (!gates_commute(circuit.gate(static_cast<std::size_t>(prev)),
                             gate)) {
            add_edge(prev, i);
          }
        }
        per_qubit[static_cast<std::size_t>(q)].push_back(
            static_cast<int>(i));
      }
    }
    // Keep predecessor lists sorted for deterministic iteration.
    for (auto& preds : preds_) std::sort(preds.begin(), preds.end());
  }
  colors_.assign(n, NodeColor::Pending);
  unscheduled_pred_count_.resize(n);
  reset();
}

void DependencyDag::reset() {
  num_scheduled_ = 0;
  ready_.clear();
  for (std::size_t i = 0; i < num_nodes(); ++i) {
    unscheduled_pred_count_[i] = static_cast<int>(preds_[i].size());
    if (unscheduled_pred_count_[i] == 0) {
      colors_[i] = NodeColor::Ready;
      ready_.push_back(static_cast<int>(i));
    } else {
      colors_[i] = NodeColor::Pending;
    }
  }
}

std::vector<int> DependencyDag::ready_two_qubit() const {
  std::vector<int> out;
  for (const int node : ready_) {
    if (circuit_->gate(static_cast<std::size_t>(node)).is_two_qubit()) {
      out.push_back(node);
    }
  }
  return out;
}

void DependencyDag::mark_scheduled(int node) {
  const auto idx = static_cast<std::size_t>(node);
  if (idx >= num_nodes() || colors_[idx] != NodeColor::Ready) {
    throw CircuitError("mark_scheduled: node " + std::to_string(node) +
                       " is not ready");
  }
  colors_[idx] = NodeColor::Scheduled;
  ++num_scheduled_;
  ready_.erase(std::find(ready_.begin(), ready_.end(), node));
  for (const int succ : succs_[idx]) {
    const auto sidx = static_cast<std::size_t>(succ);
    if (--unscheduled_pred_count_[sidx] == 0) {
      colors_[sidx] = NodeColor::Ready;
      // Keep ready_ sorted for deterministic iteration.
      ready_.insert(std::upper_bound(ready_.begin(), ready_.end(), succ),
                    succ);
    }
  }
}

std::vector<int> DependencyDag::topological_order() const {
  // Program order is topological by construction of the edges.
  std::vector<int> order(num_nodes());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  return order;
}

double DependencyDag::critical_path(
    const std::function<double(int)>& weight) const {
  std::vector<double> finish(num_nodes(), 0.0);
  double best = 0.0;
  for (std::size_t i = 0; i < num_nodes(); ++i) {
    double start = 0.0;
    for (const int p : preds_[i]) {
      start = std::max(start, finish[static_cast<std::size_t>(p)]);
    }
    finish[i] = start + weight(static_cast<int>(i));
    best = std::max(best, finish[i]);
  }
  return best;
}

int DependencyDag::depth() const {
  const double d = critical_path([this](int i) {
    return circuit_->gate(static_cast<std::size_t>(i)).kind ==
                   GateKind::Barrier
               ? 0.0
               : 1.0;
  });
  return static_cast<int>(d + 0.5);
}

}  // namespace qmap
