#include "core/report.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace qmap {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw Error("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += c == 0 ? "| " : " | ";
      std::string cell = row[c];
      cell.resize(width[c], ' ');
      line += cell;
    }
    line += " |\n";
    return line;
  };
  std::string out = emit_row(header_);
  std::string rule = "|";
  for (const std::size_t w : width) {
    rule += std::string(w + 2, '-') + "|";
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += emit_row(row);
  return out;
}

}  // namespace qmap
