# Empty compiler generated dependencies file for bench_trapped_ion.
# This may be replaced when dependencies are built.
