#include "ir/circuit.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qmap {

Circuit::Circuit(int num_qubits, std::string name)
    : num_qubits_(num_qubits), name_(std::move(name)) {
  if (num_qubits < 0) throw CircuitError("negative qubit count");
}

void Circuit::declare_cbits(int count) {
  if (count < 0) throw CircuitError("negative classical bit count");
  num_cbits_ = std::max(num_cbits_, count);
}

void Circuit::validate(const Gate& gate) const {
  for (const int q : gate.qubits) {
    if (q < 0 || q >= num_qubits_) {
      throw CircuitError("qubit q" + std::to_string(q) +
                         " out of range for circuit with " +
                         std::to_string(num_qubits_) + " qubits");
    }
  }
}

std::size_t Circuit::add(Gate gate) {
  validate(gate);
  if (gate.kind == GateKind::Measure) {
    num_cbits_ = std::max(num_cbits_, gate.cbit + 1);
  }
  gates_.push_back(std::move(gate));
  return gates_.size() - 1;
}

Circuit& Circuit::emit(GateKind kind, std::vector<int> qubits,
                       std::vector<double> params) {
  add(make_gate(kind, std::move(qubits), std::move(params)));
  return *this;
}

Circuit& Circuit::measure(int qubit, int cbit) {
  if (cbit < 0) throw CircuitError("negative classical bit index");
  add(make_measure(qubit, cbit));
  return *this;
}

Circuit& Circuit::measure_all() {
  for (int q = 0; q < num_qubits_; ++q) measure(q, q);
  return *this;
}

Circuit& Circuit::barrier(std::vector<int> qubits) {
  if (qubits.empty()) {
    qubits.resize(static_cast<std::size_t>(num_qubits_));
    for (int q = 0; q < num_qubits_; ++q) {
      qubits[static_cast<std::size_t>(q)] = q;
    }
  }
  add(make_barrier(std::move(qubits)));
  return *this;
}

Circuit& Circuit::append(const Circuit& other) {
  for (const Gate& gate : other.gates_) add(gate);
  return *this;
}

Circuit& Circuit::append_mapped(const Circuit& other,
                                const std::vector<int>& mapping) {
  if (mapping.size() != static_cast<std::size_t>(other.num_qubits())) {
    throw CircuitError("append_mapped: mapping size mismatch");
  }
  for (const Gate& gate : other.gates_) {
    Gate remapped = gate;
    for (int& q : remapped.qubits) q = mapping[static_cast<std::size_t>(q)];
    add(std::move(remapped));
  }
  return *this;
}

namespace {

/// Inverse of a single unitary gate as a replacement gate sequence.
Gate invert_gate(const Gate& gate) {
  Gate out = gate;
  switch (gate.kind) {
    case GateKind::S: out.kind = GateKind::Sdg; return out;
    case GateKind::Sdg: out.kind = GateKind::S; return out;
    case GateKind::T: out.kind = GateKind::Tdg; return out;
    case GateKind::Tdg: out.kind = GateKind::T; return out;
    case GateKind::SX: out.kind = GateKind::SXdg; return out;
    case GateKind::SXdg: out.kind = GateKind::SX; return out;
    case GateKind::Rx:
    case GateKind::Ry:
    case GateKind::Rz:
    case GateKind::Phase:
    case GateKind::CPhase:
    case GateKind::CRz:
      out.params[0] = -gate.params[0];
      return out;
    case GateKind::U:
      // (Rz(phi) Ry(theta) Rz(lambda))^-1 = Rz(-lambda) Ry(-theta) Rz(-phi)
      out.params = {-gate.params[0], -gate.params[2], -gate.params[1]};
      return out;
    case GateKind::ISWAP: {
      // iSWAP^-1 differs from iSWAP; no single-gate representation here.
      throw CircuitError("inverse(): iswap inverse not representable");
    }
    default:
      // Self-inverse gates: I, X, Y, Z, H, CX, CZ, SWAP, CCX, CSWAP.
      return out;
  }
}

}  // namespace

Circuit Circuit::inverse() const {
  Circuit out(num_qubits_, name_ + "_inv");
  for (auto it = gates_.rbegin(); it != gates_.rend(); ++it) {
    if (it->kind == GateKind::Barrier) {
      out.add(*it);
      continue;
    }
    if (!it->is_unitary()) {
      throw CircuitError("inverse(): circuit contains measurements");
    }
    out.add(invert_gate(*it));
  }
  return out;
}

Circuit Circuit::unitary_part() const {
  Circuit out(num_qubits_, name_);
  for (const Gate& gate : gates_) {
    if (gate.is_unitary()) out.add(gate);
  }
  return out;
}

Circuit Circuit::two_qubit_skeleton() const {
  Circuit out(num_qubits_, name_ + "_2q");
  for (const Gate& gate : gates_) {
    if (gate.is_two_qubit()) out.add(gate);
  }
  return out;
}

std::string Circuit::to_string() const {
  std::string out = name_ + " (" + std::to_string(num_qubits_) + " qubits, " +
                    std::to_string(gates_.size()) + " gates)\n";
  for (const Gate& gate : gates_) {
    out += "  " + gate.to_string() + "\n";
  }
  return out;
}

}  // namespace qmap
