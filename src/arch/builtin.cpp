#include "arch/builtin.hpp"

#include <cmath>
#include <cstdlib>

namespace qmap::devices {
namespace {

Device make_ibm(std::string name, int n,
                const std::vector<std::pair<int, int>>& directed_edges) {
  CouplingGraph coupling(n);
  for (const auto& [control, target] : directed_edges) {
    coupling.add_edge(control, target, /*directed=*/true);
  }
  Device device(std::move(name), std::move(coupling));
  device.set_native_two_qubit(GateKind::CX);
  device.set_native_single_qubit({GateKind::U, GateKind::I});
  // IBM devices in this model run a 10 ns-resolution schedule; what matters
  // for the benchmarks is relative cost, so reuse the default cycle.
  return device;
}

}  // namespace

Device ibm_qx4() {
  // Fig. 3(a): arrows give the allowed CNOT (control -> target) pairs.
  return make_ibm("ibm_qx4", 5,
                  {{1, 0}, {2, 0}, {2, 1}, {2, 4}, {3, 2}, {3, 4}});
}

Device ibm_qx5() {
  return make_ibm(
      "ibm_qx5", 16,
      {{1, 0},  {1, 2},   {2, 3},   {3, 4},   {3, 14},  {5, 4},
       {6, 5},  {6, 7},   {6, 11},  {7, 10},  {8, 7},   {9, 8},
       {9, 10}, {11, 10}, {12, 5},  {12, 11}, {12, 13}, {13, 4},
       {13, 14}, {15, 0}, {15, 2},  {15, 14}});
}

namespace {

/// Builds a device from lattice coordinates: qubits are adjacent when their
/// (row, col) positions differ by exactly (+-1, +-1) — the rotated
/// surface-code lattice geometry.
Device make_surface(std::string name,
                    const std::vector<std::pair<int, int>>& coords) {
  const int n = static_cast<int>(coords.size());
  CouplingGraph coupling(n);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const int dr = std::abs(coords[static_cast<std::size_t>(a)].first -
                              coords[static_cast<std::size_t>(b)].first);
      const int dc = std::abs(coords[static_cast<std::size_t>(a)].second -
                              coords[static_cast<std::size_t>(b)].second);
      if (dr == 1 && dc == 1) coupling.add_edge(a, b, /*directed=*/false);
    }
  }
  Device device(std::move(name), std::move(coupling));
  device.set_native_two_qubit(GateKind::CZ);
  device.set_native_single_qubit(
      {GateKind::Rx, GateKind::Ry, GateKind::X, GateKind::Y, GateKind::I});
  Durations d;
  d.cycle_ns = 20.0;        // Sec. V: 20 ns per cycle
  d.single_qubit_cycles = 1;
  d.two_qubit_cycles = 2;   // 40 ns CZ flux pulse
  d.measure_cycles = 30;    // 600 ns measurement
  device.set_durations(d);
  std::vector<std::pair<double, double>> dcoords;
  dcoords.reserve(coords.size());
  for (const auto& [r, c] : coords) dcoords.emplace_back(r, c);
  device.set_coordinates(std::move(dcoords));
  return device;
}

}  // namespace

Device surface17() {
  // Rotated distance-3 surface-code lattice, numbered in reading order.
  // Data qubits sit at (even, even); ancillas at (odd, odd), including the
  // four boundary ancillas that stick out of the 3x3 data block.
  const std::vector<std::pair<int, int>> coords = {
      {-1, 3},                    // 0
      {0, 0}, {0, 2}, {0, 4},     // 1  2  3
      {1, -1}, {1, 1}, {1, 3},    // 4  5  6
      {2, 0}, {2, 2}, {2, 4},     // 7  8  9
      {3, 1}, {3, 3}, {3, 5},     // 10 11 12
      {4, 0}, {4, 2}, {4, 4},     // 13 14 15
      {5, 1},                     // 16
  };
  Device device = make_surface("surface17", coords);

  // Three microwave frequencies f1 > f2 > f3 (groups 0, 1, 2; Fig. 4's
  // red / blue / pink). Data qubits alternate f1/f3 in a checkerboard; all
  // ancillas sit at the intermediate f2, so every CZ pairs adjacent
  // frequency groups (Versluis et al. scheme).
  std::vector<int> groups(17, 1);  // default: f2 (ancillas)
  for (std::size_t q = 0; q < coords.size(); ++q) {
    const auto [r, c] = coords[q];
    if (r % 2 == 0 && c % 2 == 0) {
      groups[q] = ((r / 2 + c / 2) % 2 == 0) ? 0 : 2;  // f1 or f3
    }
  }
  device.set_frequency_groups(std::move(groups));

  // Three feedlines running diagonally across the chip. The first matches
  // the paper's example: "qubits 0, 2, 3, 6, 9, and 12 are coupled to the
  // same feedline".
  std::vector<int> feedlines(17, -1);
  for (const int q : {0, 2, 3, 6, 9, 12}) feedlines[static_cast<std::size_t>(q)] = 0;
  for (const int q : {1, 4, 5, 7, 8, 10}) feedlines[static_cast<std::size_t>(q)] = 1;
  for (const int q : {11, 13, 14, 15, 16}) feedlines[static_cast<std::size_t>(q)] = 2;
  device.set_feedlines(std::move(feedlines));
  return device;
}

Device surface7() {
  //    0   1
  //  2   3   4
  //    5   6
  const std::vector<std::pair<int, int>> coords = {
      {0, 1}, {0, 3},          // 0 1
      {1, 0}, {1, 2}, {1, 4},  // 2 3 4
      {2, 1}, {2, 3},          // 5 6
  };
  Device device = make_surface("surface7", coords);
  // Same control scheme at smaller scale: data qubits (row 1) at f1/f3,
  // ancillas (rows 0 and 2) at f2.
  device.set_frequency_groups({1, 1, 0, 2, 0, 1, 1});
  device.set_feedlines({0, 0, 1, 1, 1, 2, 2});
  return device;
}

Device linear(int n, GateKind two_qubit) {
  CouplingGraph coupling(n);
  for (int q = 0; q + 1 < n; ++q) coupling.add_edge(q, q + 1);
  Device device("linear" + std::to_string(n), std::move(coupling));
  device.set_native_two_qubit(two_qubit);
  return device;
}

Device grid(int rows, int cols, GateKind two_qubit) {
  CouplingGraph coupling(rows * cols);
  const auto index = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) coupling.add_edge(index(r, c), index(r, c + 1));
      if (r + 1 < rows) coupling.add_edge(index(r, c), index(r + 1, c));
    }
  }
  Device device("grid" + std::to_string(rows) + "x" + std::to_string(cols),
                std::move(coupling));
  device.set_native_two_qubit(two_qubit);
  return device;
}

Device trapped_ion(int n) {
  Device device = all_to_all(n, GateKind::CX);
  device = Device("ion" + std::to_string(n), device.coupling());
  device.set_native_two_qubit(GateKind::CX);
  device.set_max_parallel_two_qubit(1);  // one XX gate on the bus at a time
  Durations d;
  d.cycle_ns = 1000.0;        // ions run microsecond-scale gates
  d.single_qubit_cycles = 1;  // ~1 us single-qubit rotation
  d.two_qubit_cycles = 10;    // ~10 us Molmer-Sorensen interaction
  d.measure_cycles = 100;     // ~100 us fluorescence readout
  device.set_durations(d);
  return device;
}

Device quantum_dot_array(int rows, int cols) {
  Device device = grid(rows, cols, GateKind::CZ);
  device = Device("qdot" + std::to_string(rows) + "x" + std::to_string(cols),
                  device.coupling());
  device.set_native_two_qubit(GateKind::CZ);
  device.set_native_single_qubit(
      {GateKind::Rx, GateKind::Ry, GateKind::X, GateKind::Y, GateKind::I});
  device.set_supports_shuttling(true);
  Durations d;
  d.cycle_ns = 20.0;
  d.single_qubit_cycles = 1;
  d.two_qubit_cycles = 2;
  d.move_cycles = 1;  // coherent shuttles are fast relative to exchange CZs
  d.measure_cycles = 30;
  device.set_durations(d);
  return device;
}

Device all_to_all(int n, GateKind two_qubit) {
  CouplingGraph coupling(n);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) coupling.add_edge(a, b);
  }
  Device device("all_to_all" + std::to_string(n), std::move(coupling));
  device.set_native_two_qubit(two_qubit);
  return device;
}

}  // namespace qmap::devices
