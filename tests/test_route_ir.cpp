// RouteIR byte-parity and structural tests.
//
// The data-oriented routing core (src/route/route_ir.hpp) re-implements
// the sabre/bridge/astar/qmap inner loops over flat SoA arrays and a CSR
// dependency DAG. The refactor's contract is *byte identity*: every
// RouteIR-backed router must produce exactly the CompilationResult the
// pointer-chasing implementation produced, for every device and seed.
//
// The parity matrix below pins that contract against golden fingerprint
// digests generated from the PRE-refactor routers and checked in under
// tests/golden/route_ir_fingerprints.txt. Do not regenerate them after a
// router change unless the change is an intentional behavior change:
//   QMAP_REGEN_GOLDEN=1 ./build/tests/test_route_ir
// then review and commit the diff.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/digest.hpp"
#include "common/rng.hpp"
#include "core/compiler.hpp"
#include "verify/reproducer.hpp"
#include "workloads/workloads.hpp"

namespace qmap {
namespace {

// --- Parity matrix: router x device x seed -> fingerprint digest ---

const char* const kParityRouters[] = {"sabre", "sabre+commute", "bridge",
                                      "astar", "qmap"};
const char* const kParityDevices[] = {"ibm_qx4", "ibm_qx5", "surface17"};
const std::uint64_t kParitySeeds[] = {1, 2, 3};

// One random workload per seed, wide enough to stress routing on the
// 5-qubit QX4 and identical across all devices.
Circuit parity_circuit(std::uint64_t seed) {
  Rng rng(Rng::derive_stream(0x50A17E, seed));
  return workloads::random_circuit(5, 60, rng, 0.5);
}

std::string parity_case_id(const std::string& router,
                           const std::string& device, std::uint64_t seed) {
  std::string id = router + "@" + device + "#" + std::to_string(seed);
  for (char& c : id) {
    if (c == '+') c = 'P';
  }
  return id;
}

std::string parity_digest(const std::string& router, const std::string& device,
                          std::uint64_t seed) {
  CompilerOptions options;
  // The annealing placer consumes the seed, so each seed exercises the
  // router from a genuinely different starting placement.
  options.placer = "annealing";
  options.router = router;
  options.seed = seed;
  const Circuit circuit = parity_circuit(seed);
  const CompilationResult result =
      Compiler(verify::device_by_name(device), options).compile(circuit);
  return content_digest(result.fingerprint());
}

std::string golden_fingerprint_path() {
  return std::string(QMAP_GOLDEN_DIR) + "/route_ir_fingerprints.txt";
}

std::map<std::string, std::string> load_golden_fingerprints() {
  std::map<std::string, std::string> out;
  std::ifstream in(golden_fingerprint_path());
  std::string id;
  std::string digest;
  while (in >> id >> digest) out[id] = digest;
  return out;
}

TEST(RouteIrParity, MatchesPreRefactorGoldenFingerprints) {
  std::map<std::string, std::string> actual;
  for (const char* router : kParityRouters) {
    for (const char* device : kParityDevices) {
      for (const std::uint64_t seed : kParitySeeds) {
        actual[parity_case_id(router, device, seed)] =
            parity_digest(router, device, seed);
      }
    }
  }

  const char* regen = std::getenv("QMAP_REGEN_GOLDEN");
  if (regen != nullptr && *regen != '\0') {
    std::ofstream out(golden_fingerprint_path(), std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << golden_fingerprint_path();
    for (const auto& [id, digest] : actual) out << id << ' ' << digest << '\n';
    GTEST_SKIP() << "regenerated " << golden_fingerprint_path();
  }

  const std::map<std::string, std::string> golden = load_golden_fingerprints();
  ASSERT_FALSE(golden.empty())
      << "no golden fingerprints at " << golden_fingerprint_path()
      << " (QMAP_REGEN_GOLDEN=1 generates them)";
  ASSERT_EQ(actual.size(), golden.size());
  for (const auto& [id, digest] : actual) {
    const auto it = golden.find(id);
    ASSERT_NE(it, golden.end()) << "missing golden for " << id;
    EXPECT_EQ(digest, it->second)
        << id << ": RouteIR-backed router output drifted from the "
        << "pre-refactor fingerprint";
  }
}

}  // namespace
}  // namespace qmap
