#include "sim/stabilizer.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qmap {
namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kAngleTol = 1e-9;

/// Snaps `angle` to a multiple of pi/2 in [0, 4); -1 when not Clifford.
int quarter_turns(double angle) {
  const double turns = angle / (kPi / 2.0);
  const double rounded = std::nearbyint(turns);
  if (std::abs(turns - rounded) > kAngleTol) return -1;
  int q = static_cast<int>(rounded) % 4;
  if (q < 0) q += 4;
  return q;
}

}  // namespace

bool is_clifford_gate(const Gate& gate) {
  switch (gate.kind) {
    case GateKind::I:
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
    case GateKind::H:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::SX:
    case GateKind::SXdg:
    case GateKind::CX:
    case GateKind::CZ:
    case GateKind::SWAP:
    case GateKind::Move:
    case GateKind::ISWAP:
    case GateKind::Measure:
    case GateKind::Barrier:
      return true;
    case GateKind::Rx:
    case GateKind::Ry:
    case GateKind::Rz:
    case GateKind::Phase:
      return quarter_turns(gate.params[0]) >= 0;
    case GateKind::U:
      return quarter_turns(gate.params[0]) >= 0 &&
             quarter_turns(gate.params[1]) >= 0 &&
             quarter_turns(gate.params[2]) >= 0;
    case GateKind::CPhase:
    case GateKind::CRz: {
      const int q = quarter_turns(gate.params[0]);
      return q == 0 || q == 2;  // identity or CZ-like
    }
    default:
      return false;
  }
}

bool is_clifford_circuit(const Circuit& circuit) {
  for (const Gate& gate : circuit) {
    if (!is_clifford_gate(gate)) return false;
  }
  return true;
}

CliffordTableau::CliffordTableau(int num_qubits) : n_(num_qubits) {
  if (num_qubits < 1) throw SimulationError("tableau needs >= 1 qubit");
  words_ = (num_qubits + 63) / 64;
  const std::size_t rows = 2 * static_cast<std::size_t>(n_);
  x_bits_.assign(rows * static_cast<std::size_t>(words_), 0);
  z_bits_.assign(rows * static_cast<std::size_t>(words_), 0);
  r_.assign(rows, 0);
  // Destabilizer i = X_i, stabilizer n+i = Z_i.
  for (int i = 0; i < n_; ++i) {
    set_bit(x_bits_, i, i, true);
    set_bit(z_bits_, n_ + i, i, true);
  }
}

bool CliffordTableau::get_bit(const std::vector<std::uint64_t>& bits, int row,
                              int qubit) const {
  return (bits[static_cast<std::size_t>(row) *
                   static_cast<std::size_t>(words_) +
               static_cast<std::size_t>(qubit / 64)] >>
          (qubit % 64)) &
         1u;
}

void CliffordTableau::set_bit(std::vector<std::uint64_t>& bits, int row,
                              int qubit, bool value) {
  auto& word = bits[static_cast<std::size_t>(row) *
                        static_cast<std::size_t>(words_) +
                    static_cast<std::size_t>(qubit / 64)];
  const std::uint64_t mask = std::uint64_t{1} << (qubit % 64);
  if (value) word |= mask;
  else word &= ~mask;
}

bool CliffordTableau::x(int row, int qubit) const {
  return get_bit(x_bits_, row, qubit);
}
bool CliffordTableau::z(int row, int qubit) const {
  return get_bit(z_bits_, row, qubit);
}
bool CliffordTableau::sign(int row) const {
  return r_[static_cast<std::size_t>(row)] != 0;
}

void CliffordTableau::apply_h(int q) {
  for (int row = 0; row < 2 * n_; ++row) {
    const bool xb = get_bit(x_bits_, row, q);
    const bool zb = get_bit(z_bits_, row, q);
    r_[static_cast<std::size_t>(row)] ^= static_cast<std::uint8_t>(xb && zb);
    set_bit(x_bits_, row, q, zb);
    set_bit(z_bits_, row, q, xb);
  }
}

void CliffordTableau::apply_s(int q) {
  for (int row = 0; row < 2 * n_; ++row) {
    const bool xb = get_bit(x_bits_, row, q);
    const bool zb = get_bit(z_bits_, row, q);
    r_[static_cast<std::size_t>(row)] ^= static_cast<std::uint8_t>(xb && zb);
    set_bit(z_bits_, row, q, zb ^ xb);
  }
}

void CliffordTableau::apply_cx(int control, int target) {
  for (int row = 0; row < 2 * n_; ++row) {
    const bool xc = get_bit(x_bits_, row, control);
    const bool zc = get_bit(z_bits_, row, control);
    const bool xt = get_bit(x_bits_, row, target);
    const bool zt = get_bit(z_bits_, row, target);
    r_[static_cast<std::size_t>(row)] ^=
        static_cast<std::uint8_t>(xc && zt && (xt == zc));
    set_bit(x_bits_, row, target, xt ^ xc);
    set_bit(z_bits_, row, control, zc ^ zt);
  }
}

void CliffordTableau::rowsum(int h, int i) {
  // Phase exponent accumulation mod 4 (Aaronson-Gottesman g function).
  int phase = 2 * r_[static_cast<std::size_t>(h)] +
              2 * r_[static_cast<std::size_t>(i)];
  for (int q = 0; q < n_; ++q) {
    const int x1 = get_bit(x_bits_, i, q);
    const int z1 = get_bit(z_bits_, i, q);
    const int x2 = get_bit(x_bits_, h, q);
    const int z2 = get_bit(z_bits_, h, q);
    if (x1 == 0 && z1 == 0) continue;
    if (x1 == 1 && z1 == 1) phase += z2 - x2;
    else if (x1 == 1 && z1 == 0) phase += z2 * (2 * x2 - 1);
    else phase += x2 * (1 - 2 * z2);
  }
  phase = ((phase % 4) + 4) % 4;
  r_[static_cast<std::size_t>(h)] = static_cast<std::uint8_t>(phase == 2);
  for (int w = 0; w < words_; ++w) {
    x_bits_[static_cast<std::size_t>(h) * words_ + w] ^=
        x_bits_[static_cast<std::size_t>(i) * words_ + w];
    z_bits_[static_cast<std::size_t>(h) * words_ + w] ^=
        z_bits_[static_cast<std::size_t>(i) * words_ + w];
  }
}

void CliffordTableau::apply(const Gate& gate) {
  if (gate.kind == GateKind::Barrier || gate.kind == GateKind::I) return;
  if (!is_clifford_gate(gate) || gate.kind == GateKind::Measure) {
    throw SimulationError("tableau: gate '" + gate.to_string() +
                          "' is not a Clifford unitary");
  }
  const auto q0 = [&] { return gate.qubits[0]; };
  switch (gate.kind) {
    case GateKind::H: apply_h(q0()); break;
    case GateKind::S: apply_s(q0()); break;
    case GateKind::Sdg:
      apply_s(q0());
      apply_s(q0());
      apply_s(q0());
      break;
    case GateKind::Z:
      apply_s(q0());
      apply_s(q0());
      break;
    case GateKind::X:
      apply_h(q0());
      apply_s(q0());
      apply_s(q0());
      apply_h(q0());
      break;
    case GateKind::Y:  // conjugation of Y == conjugation of Z then X
      apply_s(q0());
      apply_s(q0());
      apply_h(q0());
      apply_s(q0());
      apply_s(q0());
      apply_h(q0());
      break;
    case GateKind::SX:  // SX = H S H exactly
      apply_h(q0());
      apply_s(q0());
      apply_h(q0());
      break;
    case GateKind::SXdg:
      apply_h(q0());
      apply_s(q0());
      apply_s(q0());
      apply_s(q0());
      apply_h(q0());
      break;
    case GateKind::Rz:
    case GateKind::Phase: {
      const int turns = quarter_turns(gate.params[0]);
      for (int t = 0; t < turns; ++t) apply_s(q0());
      break;
    }
    case GateKind::Rx: {  // Rx = H Rz H
      const int turns = quarter_turns(gate.params[0]);
      if (turns != 0) {
        apply_h(q0());
        for (int t = 0; t < turns; ++t) apply_s(q0());
        apply_h(q0());
      }
      break;
    }
    case GateKind::Ry: {
      // Ry(t) = S Rx(t) Sdg as an operator product, i.e. circuit order
      // Sdg, Rx, S.
      const int turns = quarter_turns(gate.params[0]);
      if (turns != 0) {
        apply_s(q0());  // Sdg = S^3
        apply_s(q0());
        apply_s(q0());
        apply_h(q0());  // Rx = H Rz H (symmetric)
        for (int t = 0; t < turns; ++t) apply_s(q0());
        apply_h(q0());
        apply_s(q0());
      }
      break;
    }
    case GateKind::U: {
      // U(theta, phi, lambda) = Rz(phi) Ry(theta) Rz(lambda): circuit
      // order Rz(lambda), Ry(theta), Rz(phi).
      apply(make_gate(GateKind::Rz, {q0()}, {gate.params[2]}));
      apply(make_gate(GateKind::Ry, {q0()}, {gate.params[0]}));
      apply(make_gate(GateKind::Rz, {q0()}, {gate.params[1]}));
      break;
    }
    case GateKind::CX:
      apply_cx(gate.qubits[0], gate.qubits[1]);
      break;
    case GateKind::CZ:
      apply_h(gate.qubits[1]);
      apply_cx(gate.qubits[0], gate.qubits[1]);
      apply_h(gate.qubits[1]);
      break;
    case GateKind::CPhase:
    case GateKind::CRz: {
      if (quarter_turns(gate.params[0]) == 2) {  // == CZ (up to phase)
        apply_h(gate.qubits[1]);
        apply_cx(gate.qubits[0], gate.qubits[1]);
        apply_h(gate.qubits[1]);
      }
      break;
    }
    case GateKind::SWAP:
    case GateKind::Move:
      apply_cx(gate.qubits[0], gate.qubits[1]);
      apply_cx(gate.qubits[1], gate.qubits[0]);
      apply_cx(gate.qubits[0], gate.qubits[1]);
      break;
    case GateKind::ISWAP:
      // iSWAP = S_a S_b H_a CX(a,b) CX(b,a) H_b
      apply_s(gate.qubits[0]);
      apply_s(gate.qubits[1]);
      apply_h(gate.qubits[0]);
      apply_cx(gate.qubits[0], gate.qubits[1]);
      apply_cx(gate.qubits[1], gate.qubits[0]);
      apply_h(gate.qubits[1]);
      break;
    default:
      throw SimulationError("tableau: unhandled Clifford gate");
  }
}

void CliffordTableau::run(const Circuit& circuit) {
  if (circuit.num_qubits() > n_) {
    throw SimulationError("circuit wider than tableau");
  }
  for (const Gate& gate : circuit) apply(gate);
}

void CliffordTableau::permute(const std::vector<int>& from,
                              const std::vector<int>& to) {
  if (from.size() != to.size() ||
      from.size() != static_cast<std::size_t>(n_)) {
    throw SimulationError("permute: maps must cover all qubits");
  }
  std::vector<std::uint64_t> new_x(x_bits_.size(), 0);
  std::vector<std::uint64_t> new_z(z_bits_.size(), 0);
  const auto old_x = x_bits_;
  const auto old_z = z_bits_;
  x_bits_ = std::move(new_x);
  z_bits_ = std::move(new_z);
  for (int row = 0; row < 2 * n_; ++row) {
    for (std::size_t k = 0; k < from.size(); ++k) {
      const int src = from[k];
      const int dst = to[k];
      const bool xb =
          (old_x[static_cast<std::size_t>(row) * words_ + src / 64] >>
           (src % 64)) &
          1u;
      const bool zb =
          (old_z[static_cast<std::size_t>(row) * words_ + src / 64] >>
           (src % 64)) &
          1u;
      set_bit(x_bits_, row, dst, xb);
      set_bit(z_bits_, row, dst, zb);
    }
  }
}

bool CliffordTableau::operator==(const CliffordTableau& other) const {
  return n_ == other.n_ && x_bits_ == other.x_bits_ &&
         z_bits_ == other.z_bits_ && r_ == other.r_;
}

std::string CliffordTableau::to_string() const {
  std::string out;
  for (int row = 0; row < 2 * n_; ++row) {
    out += sign(row) ? '-' : '+';
    for (int q = 0; q < n_; ++q) {
      const bool xb = x(row, q);
      const bool zb = z(row, q);
      out += xb ? (zb ? 'Y' : 'X') : (zb ? 'Z' : 'I');
    }
    out += row == n_ - 1 ? "\n----\n" : "\n";
  }
  return out;
}

void StabilizerState::run_with_measurements(const Circuit& circuit,
                                            Rng* rng) {
  if (circuit.num_qubits() > num_qubits()) {
    throw SimulationError("circuit wider than stabilizer state");
  }
  for (const Gate& gate : circuit) {
    if (gate.kind == GateKind::Measure) {
      if (rng == nullptr) {
        throw SimulationError("measurement requires an Rng");
      }
      (void)measure(gate.qubits[0], *rng);
    } else {
      apply(gate);
    }
  }
}

bool StabilizerState::deterministic(int qubit) const {
  for (int p = n_; p < 2 * n_; ++p) {
    if (x(p, qubit)) return false;
  }
  return true;
}

int StabilizerState::measure(int qubit, Rng& rng) {
  if (qubit < 0 || qubit >= n_) {
    throw SimulationError("measure: qubit out of range");
  }
  int p = -1;
  for (int row = n_; row < 2 * n_; ++row) {
    if (x(row, qubit)) {
      p = row;
      break;
    }
  }
  if (p >= 0) {
    // Random outcome.
    for (int row = 0; row < 2 * n_; ++row) {
      if (row != p && x(row, qubit)) rowsum(row, p);
    }
    // Destabilizer p-n <- old stabilizer p; stabilizer p <- +-Z_qubit.
    for (int w = 0; w < words_; ++w) {
      x_bits_[static_cast<std::size_t>(p - n_) * words_ + w] =
          x_bits_[static_cast<std::size_t>(p) * words_ + w];
      z_bits_[static_cast<std::size_t>(p - n_) * words_ + w] =
          z_bits_[static_cast<std::size_t>(p) * words_ + w];
      x_bits_[static_cast<std::size_t>(p) * words_ + w] = 0;
      z_bits_[static_cast<std::size_t>(p) * words_ + w] = 0;
    }
    r_[static_cast<std::size_t>(p - n_)] = r_[static_cast<std::size_t>(p)];
    set_bit(z_bits_, p, qubit, true);
    const int outcome = rng.chance(0.5) ? 1 : 0;
    r_[static_cast<std::size_t>(p)] = static_cast<std::uint8_t>(outcome);
    return outcome;
  }
  // Deterministic outcome: accumulate into a scratch row appended at the
  // end (temporarily extend the arrays).
  const int scratch = 2 * n_;
  x_bits_.resize(x_bits_.size() + static_cast<std::size_t>(words_), 0);
  z_bits_.resize(z_bits_.size() + static_cast<std::size_t>(words_), 0);
  r_.push_back(0);
  for (int i = 0; i < n_; ++i) {
    if (x(i, qubit)) rowsum(scratch, i + n_);
  }
  const int outcome = r_[static_cast<std::size_t>(scratch)] != 0 ? 1 : 0;
  x_bits_.resize(x_bits_.size() - static_cast<std::size_t>(words_));
  z_bits_.resize(z_bits_.size() - static_cast<std::size_t>(words_));
  r_.pop_back();
  return outcome;
}

bool clifford_equivalent(const Circuit& a, const Circuit& b) {
  if (a.num_qubits() != b.num_qubits()) return false;
  CliffordTableau ta(a.num_qubits());
  ta.run(a.unitary_part());
  CliffordTableau tb(b.num_qubits());
  tb.run(b.unitary_part());
  return ta == tb;
}

bool clifford_mapping_equivalent(
    const Circuit& original, const Circuit& mapped,
    const std::vector<int>& initial_wire_to_phys,
    const std::vector<int>& final_wire_to_phys) {
  const int m = mapped.num_qubits();
  const int n = original.num_qubits();
  if (n > m) throw SimulationError("original wider than mapped");
  Circuit embedded(m, original.name() + "_embedded");
  std::vector<int> program_map(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    program_map[static_cast<std::size_t>(k)] =
        initial_wire_to_phys[static_cast<std::size_t>(k)];
  }
  embedded.append_mapped(original.unitary_part(), program_map);

  CliffordTableau reference(m);
  reference.run(embedded);
  reference.permute(initial_wire_to_phys, final_wire_to_phys);
  CliffordTableau routed(m);
  routed.run(mapped.unitary_part());
  return reference == routed;
}

}  // namespace qmap
