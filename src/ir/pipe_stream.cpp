#include "ir/pipe_stream.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace qmap {

namespace {
// Producer-side batching granularity: put() calls accumulate into chunks
// of this size before taking the pipe lock, so the lock is contended per
// chunk, not per gate.
constexpr std::size_t kPipeChunkGates = 1024;
}  // namespace

GatePipe::GatePipe(int num_qubits, std::string name,
                   std::size_t capacity_gates, int num_cbits)
    : num_qubits_(num_qubits),
      num_cbits_(num_cbits),
      name_(std::move(name)),
      capacity_gates_(std::max<std::size_t>(1, capacity_gates)) {}

void GatePipe::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;
    closed_ = true;
  }
  can_pop_.notify_all();
  can_push_.notify_all();
}

void GatePipe::push_chunk(std::vector<Gate> chunk) {
  if (chunk.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  can_push_.wait(lock, [&] {
    return closed_ || buffered_gates_ < capacity_gates_;
  });
  if (closed_) {
    throw CircuitError("GatePipe: push after close");
  }
  buffered_gates_ += chunk.size();
  chunks_.push_back(std::move(chunk));
  lock.unlock();
  can_pop_.notify_one();
}

std::vector<Gate> GatePipe::pop_chunk() {
  std::unique_lock<std::mutex> lock(mutex_);
  can_pop_.wait(lock, [&] { return closed_ || !chunks_.empty(); });
  if (chunks_.empty()) return {};  // closed and drained
  std::vector<Gate> chunk = std::move(chunks_.front());
  chunks_.pop_front();
  buffered_gates_ -= chunk.size();
  lock.unlock();
  can_push_.notify_one();
  return chunk;
}

void GatePipe::PipeSink::put(Gate gate) {
  pending_.push_back(std::move(gate));
  if (pending_.size() >= kPipeChunkGates) {
    pipe_->push_chunk(std::move(pending_));
    pending_.clear();
  }
}

void GatePipe::PipeSink::put_chunk(std::vector<Gate>& gates) {
  if (!pending_.empty()) {
    pipe_->push_chunk(std::move(pending_));
    pending_.clear();
  }
  pipe_->push_chunk(std::move(gates));
  gates.clear();
}

void GatePipe::PipeSink::flush() {
  if (!pending_.empty()) {
    pipe_->push_chunk(std::move(pending_));
    pending_.clear();
  }
  pipe_->close();
}

std::size_t GatePipe::PipeSource::pull(std::vector<Gate>& out,
                                       std::size_t max_gates) {
  std::size_t pulled = 0;
  while (pulled < max_gates) {
    if (chunk_pos_ == chunk_.size()) {
      chunk_ = pipe_->pop_chunk();
      chunk_pos_ = 0;
      if (chunk_.empty()) break;  // closed and drained
    }
    const std::size_t take =
        std::min(max_gates - pulled, chunk_.size() - chunk_pos_);
    for (std::size_t i = 0; i < take; ++i) {
      out.push_back(std::move(chunk_[chunk_pos_ + i]));
    }
    chunk_pos_ += take;
    pulled += take;
  }
  return pulled;
}

}  // namespace qmap
