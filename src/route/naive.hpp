// Naive router — the "straight-forward approach" of Sec. IV / Fig. 3(b):
// for every two-qubit gate whose operands are not adjacent, SWAP one
// operand along a shortest path until the pair is connected, then execute
// the gate. No lookahead, no placement reuse — the overhead baseline every
// smarter mapper is measured against.
//
// Termination guarantee (audited for the resilience pipeline, which uses
// identity+naive as the last fallback rung that must never fail): the
// router makes exactly one pass over the gate list, and per two-qubit gate
// emits at most (shortest-path length - 2) <= num_qubits SWAPs — no search,
// no retry loop, no data-dependent iteration beyond the fixed path walk. On
// a connected device with a routable circuit (arity <= 2, width <= device;
// both pre-checked by check_routable) every shortest_path() call is
// non-empty, so the total work is O(gates * num_qubits): the router always
// terminates, and cannot fail after check_routable passes. It still polls
// its CancelToken between gates like every other router; the resilience
// pipeline simply does not arm one on the last rung.
#pragma once

#include "route/router.hpp"

namespace qmap {

class NaiveRouter final : public Router {
 public:
  [[nodiscard]] std::string name() const override { return "naive"; }
  [[nodiscard]] RoutingResult route(const Circuit& circuit,
                                    const Device& device,
                                    const Placement& initial) override;
};

}  // namespace qmap
