// Analytic reliability estimator.
//
// Sec. III-B / Sec. VII open question 1: "what is the best metric to
// optimize? ... Recent works started considering the expected reliability
// of the overall quantum computation." This estimator computes the
// standard product-form Estimated Success Probability used by [45]-[47],
// [50]:
//
//   ESP = prod_gates (1 - error(gate)) * prod_qubits exp(-t_idle / T1)
//
// where t_idle is the qubit's idle time in the schedule (decoherence while
// waiting). The log-domain version is the cost a reliability-aware mapper
// minimizes.
#pragma once

#include "arch/device.hpp"
#include "ir/circuit.hpp"
#include "schedule/schedule.hpp"

namespace qmap {

/// Gate-error-only ESP (ignores decoherence): product of (1 - error) over
/// unitary gates and (1 - readout) over measurements. The circuit must be
/// on physical qubits; two-qubit gates must be coupling edges.
[[nodiscard]] double estimated_success_probability(const Circuit& circuit,
                                                   const Device& device);

/// Full ESP including idle-time decoherence, computed from a schedule.
[[nodiscard]] double estimated_success_probability(const Schedule& schedule,
                                                   const Device& device);

/// -log(ESP) of one gate: the additive reliability cost of executing it.
[[nodiscard]] double gate_log_cost(const Gate& gate, const Device& device);

}  // namespace qmap
