#include "ir/gate.hpp"

#include <array>
#include <cmath>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace qmap {
namespace {

constexpr double kPi = 3.14159265358979323846;

// Indexed by static_cast<size_t>(GateKind).
constexpr std::array<GateInfo, 27> kGateInfos{{
    {"id", 1, 0, true, false, true},      // I
    {"x", 1, 0, true, false, false},      // X
    {"y", 1, 0, true, false, false},      // Y
    {"z", 1, 0, true, false, true},       // Z
    {"h", 1, 0, true, false, false},      // H
    {"s", 1, 0, true, false, true},       // S
    {"sdg", 1, 0, true, false, true},     // Sdg
    {"t", 1, 0, true, false, true},       // T
    {"tdg", 1, 0, true, false, true},     // Tdg
    {"sx", 1, 0, true, false, false},     // SX
    {"sxdg", 1, 0, true, false, false},   // SXdg
    {"rx", 1, 1, true, false, false},     // Rx
    {"ry", 1, 1, true, false, false},     // Ry
    {"rz", 1, 1, true, false, true},      // Rz
    {"p", 1, 1, true, false, true},       // Phase
    {"u", 1, 3, true, false, false},      // U
    {"cx", 2, 0, true, false, false},     // CX
    {"cz", 2, 0, true, true, true},       // CZ
    {"swap", 2, 0, true, true, false},    // SWAP
    {"iswap", 2, 0, true, true, false},   // ISWAP
    {"cp", 2, 1, true, true, true},       // CPhase
    {"crz", 2, 1, true, false, true},     // CRz
    {"move", 2, 0, true, true, false},    // Move (shuttle)
    {"ccx", 3, 0, true, false, false},    // CCX
    {"cswap", 3, 0, true, false, false},  // CSWAP
    {"measure", 1, 0, false, false, false},  // Measure
    {"barrier", 0, 0, false, true, false},   // Barrier (variadic arity)
}};

Matrix one_qubit(Complex a, Complex b, Complex c, Complex d) {
  return Matrix(2, {a, b, c, d});
}

Matrix u_matrix(double theta, double phi, double lambda) {
  // U(theta, phi, lambda) = Rz(phi) Ry(theta) Rz(lambda), the IBM Euler
  // parameterization from Sec. IV, written in its standard matrix form.
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  const Complex eiphi = std::polar(1.0, phi);
  const Complex eilam = std::polar(1.0, lambda);
  return one_qubit(Complex{c, 0.0}, -eilam * s, eiphi * s, eiphi * eilam * c);
}

}  // namespace

const GateInfo& gate_info(GateKind kind) {
  return kGateInfos[static_cast<std::size_t>(kind)];
}

GateKind gate_kind_from_name(std::string_view name) {
  const std::string lowered = to_lower(name);
  for (std::size_t i = 0; i < kGateInfos.size(); ++i) {
    if (kGateInfos[i].name == lowered) return static_cast<GateKind>(i);
  }
  // Common aliases.
  if (lowered == "cnot") return GateKind::CX;
  if (lowered == "toffoli") return GateKind::CCX;
  if (lowered == "fredkin") return GateKind::CSWAP;
  if (lowered == "u3") return GateKind::U;
  if (lowered == "u1" || lowered == "phase") return GateKind::Phase;
  throw ParseError("unknown gate name: " + std::string(name));
}

std::string Gate::to_string() const {
  std::string out{gate_info(kind).name};
  if (!params.empty()) {
    out += '(';
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (i != 0) out += ", ";
      out += format_double(params[i]);
    }
    out += ')';
  }
  out += ' ';
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    if (i != 0) out += ", ";
    out += 'q' + std::to_string(qubits[i]);
  }
  if (kind == GateKind::Measure) out += " -> c" + std::to_string(cbit);
  return out;
}

Matrix Gate::matrix() const {
  const Complex i{0.0, 1.0};
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  switch (kind) {
    case GateKind::I:
      return Matrix::identity(2);
    case GateKind::X:
      return one_qubit(0, 1, 1, 0);
    case GateKind::Y:
      return one_qubit(0, -i, i, 0);
    case GateKind::Z:
      return one_qubit(1, 0, 0, -1);
    case GateKind::H:
      return one_qubit(inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2);
    case GateKind::S:
      return one_qubit(1, 0, 0, i);
    case GateKind::Sdg:
      return one_qubit(1, 0, 0, -i);
    case GateKind::T:
      return one_qubit(1, 0, 0, std::polar(1.0, kPi / 4.0));
    case GateKind::Tdg:
      return one_qubit(1, 0, 0, std::polar(1.0, -kPi / 4.0));
    case GateKind::SX:
      return one_qubit(Complex{0.5, 0.5}, Complex{0.5, -0.5},
                       Complex{0.5, -0.5}, Complex{0.5, 0.5});
    case GateKind::SXdg:
      return one_qubit(Complex{0.5, -0.5}, Complex{0.5, 0.5},
                       Complex{0.5, 0.5}, Complex{0.5, -0.5});
    case GateKind::Rx: {
      const double c = std::cos(params[0] / 2.0);
      const double s = std::sin(params[0] / 2.0);
      return one_qubit(c, -i * s, -i * s, c);
    }
    case GateKind::Ry: {
      const double c = std::cos(params[0] / 2.0);
      const double s = std::sin(params[0] / 2.0);
      return one_qubit(c, -s, s, c);
    }
    case GateKind::Rz: {
      const Complex e = std::polar(1.0, params[0] / 2.0);
      return one_qubit(std::conj(e), 0, 0, e);
    }
    case GateKind::Phase:
      return one_qubit(1, 0, 0, std::polar(1.0, params[0]));
    case GateKind::U:
      return u_matrix(params[0], params[1], params[2]);
    case GateKind::CX:
      return Matrix(4, {1, 0, 0, 0,  //
                        0, 1, 0, 0,  //
                        0, 0, 0, 1,  //
                        0, 0, 1, 0});
    case GateKind::CZ:
      return Matrix(4, {1, 0, 0, 0,  //
                        0, 1, 0, 0,  //
                        0, 0, 1, 0,  //
                        0, 0, 0, -1});
    case GateKind::SWAP:
    case GateKind::Move:  // wire semantics of a shuttle equal a SWAP
      return Matrix(4, {1, 0, 0, 0,  //
                        0, 0, 1, 0,  //
                        0, 1, 0, 0,  //
                        0, 0, 0, 1});
    case GateKind::ISWAP:
      return Matrix(4, {1, 0, 0, 0,  //
                        0, 0, i, 0,  //
                        0, i, 0, 0,  //
                        0, 0, 0, 1});
    case GateKind::CPhase: {
      Matrix m = Matrix::identity(4);
      m.at(3, 3) = std::polar(1.0, params[0]);
      return m;
    }
    case GateKind::CRz: {
      Matrix m = Matrix::identity(4);
      m.at(2, 2) = std::polar(1.0, -params[0] / 2.0);
      m.at(3, 3) = std::polar(1.0, params[0] / 2.0);
      return m;
    }
    case GateKind::CCX: {
      Matrix m = Matrix::identity(8);
      m.at(6, 6) = 0;
      m.at(7, 7) = 0;
      m.at(6, 7) = 1;
      m.at(7, 6) = 1;
      return m;
    }
    case GateKind::CSWAP: {
      Matrix m = Matrix::identity(8);
      m.at(5, 5) = 0;
      m.at(6, 6) = 0;
      m.at(5, 6) = 1;
      m.at(6, 5) = 1;
      return m;
    }
    case GateKind::Measure:
    case GateKind::Barrier:
      throw CircuitError("matrix() called on non-unitary gate");
  }
  throw CircuitError("matrix(): unhandled gate kind");
}

Gate make_gate(GateKind kind, std::vector<int> qubits,
               std::vector<double> params) {
  const GateInfo& info = gate_info(kind);
  if (kind != GateKind::Barrier &&
      qubits.size() != static_cast<std::size_t>(info.arity)) {
    throw CircuitError("gate '" + std::string(info.name) + "' expects " +
                       std::to_string(info.arity) + " qubits, got " +
                       std::to_string(qubits.size()));
  }
  if (params.size() != static_cast<std::size_t>(info.num_params)) {
    throw CircuitError("gate '" + std::string(info.name) + "' expects " +
                       std::to_string(info.num_params) + " params, got " +
                       std::to_string(params.size()));
  }
  for (std::size_t a = 0; a < qubits.size(); ++a) {
    for (std::size_t b = a + 1; b < qubits.size(); ++b) {
      if (qubits[a] == qubits[b]) {
        throw CircuitError("gate '" + std::string(info.name) +
                           "' has duplicate qubit operand q" +
                           std::to_string(qubits[a]));
      }
    }
  }
  Gate g;
  g.kind = kind;
  g.qubits = std::move(qubits);
  g.params = std::move(params);
  return g;
}

Gate make_measure(int qubit, int cbit) {
  Gate g;
  g.kind = GateKind::Measure;
  g.qubits = {qubit};
  g.cbit = cbit;
  return g;
}

Gate make_barrier(std::vector<int> qubits) {
  Gate g;
  g.kind = GateKind::Barrier;
  g.qubits = std::move(qubits);
  return g;
}

}  // namespace qmap
