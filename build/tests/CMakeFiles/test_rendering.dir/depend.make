# Empty dependencies file for test_rendering.
# This may be replaced when dependencies are built.
