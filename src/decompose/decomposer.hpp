// Gate-decomposition passes (task 1 of the compiler in Sec. III-A).
//
// The passes are deliberately split so the mapping pipeline can interleave
// them with routing the way Sec. VI-A describes: lowering to the native
// two-qubit gate and fusing single-qubit runs is placement-independent and
// happens before routing; fixing CNOT directions on directed-coupling
// devices (extra Hadamards, Sec. IV) can only happen at routing time when
// the placement is known.
#pragma once

#include <optional>
#include <vector>

#include "arch/device.hpp"
#include "common/matrix.hpp"
#include "ir/circuit.hpp"

namespace qmap {

/// Rewrites every gate of arity >= 3 and every non-`target` two-qubit gate
/// into single-qubit gates plus `target` (CX or CZ) two-qubit gates.
/// SWAPs are preserved when `keep_swaps` is set (routers insert SWAPs as
/// placeholders that are lowered at the end).
[[nodiscard]] Circuit lower_two_qubit(const Circuit& circuit, GateKind target,
                                      bool keep_swaps = false);

/// Merges maximal runs of adjacent single-qubit gates on each qubit into a
/// single U(theta, phi, lambda) gate; exact identities are dropped.
[[nodiscard]] Circuit fuse_single_qubit(const Circuit& circuit);

/// The stateful core of fuse_single_qubit, exposed so the streaming
/// pipeline can fuse across chunk boundaries: a run of single-qubit gates
/// is held as an accumulated 2x2 unitary per qubit and emitted (as one U,
/// identities dropped) only when a multi-qubit/non-unitary gate closes the
/// run — or at finish(), which flushes every open run in qubit order.
/// Feeding a circuit gate-by-gate through push() + one finish() produces
/// exactly fuse_single_qubit's output, regardless of how the gate sequence
/// was chunked; fuse_single_qubit itself is implemented on this class.
class SingleQubitFuser {
 public:
  explicit SingleQubitFuser(int num_qubits);

  /// Consumes one gate; appends any closed runs (and pass-through gates)
  /// to `out`.
  void push(const Gate& gate, Circuit& out);

  /// End of stream: flushes the open run of every qubit, lowest index
  /// first (matching fuse_single_qubit's end-of-circuit flush).
  void finish(Circuit& out);

 private:
  void flush(int qubit, Circuit& out);

  std::vector<std::optional<Matrix>> pending_;
};

/// Chunk-wise lower_to_device: the placement-independent lowering
/// (two-qubit target + single-qubit fusion + native single-qubit basis)
/// as a stateful object fed a bounded chunk at a time. The per-gate stages
/// are stateless, and cross-chunk fusion state lives in a SingleQubitFuser,
/// so concatenating the chunks appended by lower_chunk()/finish() yields
/// byte-for-byte the circuit lower_to_device would produce from the
/// materialized whole. Peak memory is O(chunk), not O(circuit).
class StreamingLowerer {
 public:
  /// Throws MappingError for unsupported native sets, like the batch
  /// passes would.
  StreamingLowerer(const Device& device, int num_qubits,
                   bool keep_swaps = false);

  /// Lowers `gates` in order, appending the result to `out`. Trailing
  /// single-qubit runs stay buffered in the fuser until a later chunk (or
  /// finish()) closes them.
  void lower_chunk(const std::vector<Gate>& gates, Circuit& out);

  /// End of stream: flushes the fuser's open runs through the native-basis
  /// stage into `out`.
  void finish(Circuit& out);

 private:
  void lower_fused(Circuit& fused, Circuit& out);

  const Device* device_;
  GateKind target_;
  bool keep_swaps_;
  bool lower_single_;  // false when the device's native 1q set is empty
  bool has_u_ = false;
  SingleQubitFuser fuser_;
  Circuit stage_a_;  // recycled per-chunk scratch
  Circuit stage_b_;
  Circuit fused_;
};

/// Re-expresses every single-qubit gate in the device's native basis:
///  * IBM-style ({U}): one U gate via ZYZ;
///  * Surface-style ({Rx, Ry}): up to three rotations via YXY, with
///    zero-angle rotations skipped;
///  * unrestricted: gates pass through unchanged.
[[nodiscard]] Circuit lower_single_qubit(const Circuit& circuit,
                                         const Device& device);

/// Full placement-independent lowering: lower_two_qubit to the device's
/// native two-qubit gate, fuse, then lower_single_qubit.
[[nodiscard]] Circuit lower_to_device(const Circuit& circuit,
                                      const Device& device,
                                      bool keep_swaps = false);

/// Replaces CX gates whose orientation the coupling graph forbids with the
/// 4-Hadamard inversion H H . CX(reversed) . H H (Sec. IV / Fig. 3(c)).
/// Throws MappingError if some CX connects qubits that are not coupled at
/// all (that is a routing failure, not a direction issue).
[[nodiscard]] Circuit fix_cx_directions(const Circuit& circuit,
                                        const Device& device);

/// Expands every SWAP into the device-native sequence: 3 CX (CX devices)
/// or 3 (H-wrapped) CZ (CZ devices, Fig. 6). Other gates pass through.
[[nodiscard]] Circuit expand_swaps(const Circuit& circuit,
                                   const Device& device);

/// Number of native two-qubit gates one routing SWAP costs on this device.
[[nodiscard]] int swap_two_qubit_cost(const Device& device);

}  // namespace qmap
