#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

#include "common/strings.hpp"

namespace qmap {
namespace {

/// Recursive-descent JSON parser over a string_view with line tracking.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    int line = 1;
    int column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw ParseError("JSON: " + message, line, column);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        // Allow // comments: device config files benefit from annotations.
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject object;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(object));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object[std::move(key)] = parse_value();
      skip_whitespace();
      const char c = next();
      if (c == '}') return Json(std::move(object));
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  Json parse_array() {
    expect('[');
    JsonArray array;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(array));
    }
    while (true) {
      array.push_back(parse_value());
      skip_whitespace();
      const char c = next();
      if (c == ']') return Json(std::move(array));
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (c == '\\') {
        const char escape = next();
        switch (escape) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else fail("invalid \\u escape");
            }
            // Encode as UTF-8 (BMP only; surrogate pairs unsupported).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("invalid escape sequence");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out += c;
      }
    }
  }

  Json parse_number() {
    const std::size_t begin = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == begin) fail("invalid number");
    double value = 0;
    const auto result =
        std::from_chars(text_.data() + begin, text_.data() + pos_, value);
    if (result.ec != std::errc() || result.ptr != text_.data() + pos_) {
      fail("invalid number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_string(std::string& out, const std::string& s) {
  out += json_quote(s);
}

}  // namespace

Json::Type Json::type() const {
  return static_cast<Type>(value_.index());
}

bool Json::as_bool() const {
  if (const bool* b = std::get_if<bool>(&value_)) return *b;
  throw ParseError("JSON: value is not a boolean");
}

double Json::as_number() const {
  if (const double* d = std::get_if<double>(&value_)) return *d;
  throw ParseError("JSON: value is not a number");
}

int Json::as_int() const {
  const double d = as_number();
  const double rounded = std::nearbyint(d);
  if (std::abs(d - rounded) > 1e-9) {
    throw ParseError("JSON: value is not an integer");
  }
  return static_cast<int>(rounded);
}

const std::string& Json::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&value_)) return *s;
  throw ParseError("JSON: value is not a string");
}

const JsonArray& Json::as_array() const {
  if (const JsonArray* a = std::get_if<JsonArray>(&value_)) return *a;
  throw ParseError("JSON: value is not an array");
}

const JsonObject& Json::as_object() const {
  if (const JsonObject* o = std::get_if<JsonObject>(&value_)) return *o;
  throw ParseError("JSON: value is not an object");
}

JsonArray& Json::as_array() {
  if (JsonArray* a = std::get_if<JsonArray>(&value_)) return *a;
  throw ParseError("JSON: value is not an array");
}

JsonObject& Json::as_object() {
  if (JsonObject* o = std::get_if<JsonObject>(&value_)) return *o;
  throw ParseError("JSON: value is not an object");
}

const Json& Json::at(const std::string& key) const {
  const JsonObject& object = as_object();
  const auto it = object.find(key);
  if (it == object.end()) {
    throw ParseError("JSON: missing key \"" + key + "\"");
  }
  return it->second;
}

const Json* Json::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const JsonObject& object = as_object();
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

bool Json::contains(const std::string& key) const {
  return find(key) != nullptr;
}

const Json& Json::at(std::size_t index) const {
  const JsonArray& array = as_array();
  if (index >= array.size()) throw ParseError("JSON: array index out of range");
  return array[index];
}

std::size_t Json::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  throw ParseError("JSON: size() on non-container");
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = JsonObject{};
  return as_object()[key];
}

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

void Json::dump_impl(std::string& out, int indent, int depth) const {
  const auto newline_and_pad = [&](int d) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type()) {
    case Type::Null:
      out += "null";
      break;
    case Type::Bool:
      out += std::get<bool>(value_) ? "true" : "false";
      break;
    case Type::Number: {
      const double d = std::get<double>(value_);
      if (std::nearbyint(d) == d && std::abs(d) < 1e15) {
        out += std::to_string(static_cast<long long>(d));
      } else {
        // %.17g round-trips IEEE doubles exactly through the parser.
        char buffer[40];
        std::snprintf(buffer, sizeof(buffer), "%.17g", d);
        out += buffer;
      }
      break;
    }
    case Type::String:
      dump_string(out, std::get<std::string>(value_));
      break;
    case Type::Array: {
      const JsonArray& array = std::get<JsonArray>(value_);
      if (array.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array.size(); ++i) {
        if (i != 0) out += ',';
        newline_and_pad(depth + 1);
        array[i].dump_impl(out, indent, depth + 1);
      }
      newline_and_pad(depth);
      out += ']';
      break;
    }
    case Type::Object: {
      const JsonObject& object = std::get<JsonObject>(value_);
      if (object.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : object) {
        if (!first) out += ',';
        first = false;
        newline_and_pad(depth + 1);
        dump_string(out, key);
        out += indent < 0 ? ":" : ": ";
        value.dump_impl(out, indent, depth + 1);
      }
      newline_and_pad(depth);
      out += '}';
      break;
    }
  }
}

}  // namespace qmap
