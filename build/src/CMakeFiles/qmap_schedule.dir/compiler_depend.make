# Empty compiler generated dependencies file for qmap_schedule.
# This may be replaced when dependencies are built.
