#include "route/shuttle.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/error.hpp"
#include "ir/dag.hpp"

namespace qmap {

RoutingResult ShuttleRouter::route(const Circuit& circuit,
                                   const Device& device,
                                   const Placement& initial) {
  const auto start_time = std::chrono::steady_clock::now();
  check_routable(circuit, device);
  if (!device.supports_shuttling()) {
    throw MappingError("shuttle router requires a device with shuttling "
                       "support (set_supports_shuttling)");
  }
  const CouplingGraph& coupling = device.coupling();
  DependencyDag dag(circuit);
  RoutingEmitter emitter(device, initial,
                         circuit.name() + "@" + device.name());

  std::vector<double> decay(static_cast<std::size_t>(device.num_qubits()),
                            1.0);
  int actions_since_reset = 0;
  int actions_since_progress = 0;
  const int stall_limit = 10 * std::max(1, device.num_qubits());

  const auto executable = [&](int node) {
    const Gate& gate = circuit.gate(static_cast<std::size_t>(node));
    if (!gate.is_two_qubit()) return true;
    return coupling.connected(
        emitter.placement().phys_of_program(gate.qubits[0]),
        emitter.placement().phys_of_program(gate.qubits[1]));
  };

  const auto flush_executable = [&] {
    bool progressed = true;
    bool any = false;
    while (progressed) {
      progressed = false;
      const std::vector<int> ready = dag.ready();
      for (const int node : ready) {
        if (!executable(node)) continue;
        emitter.emit_program_gate(
            circuit.gate(static_cast<std::size_t>(node)));
        dag.mark_scheduled(node);
        progressed = true;
        any = true;
      }
    }
    return any;
  };

  const auto gate_distance = [&](int node, const Placement& placement) {
    const Gate& gate = circuit.gate(static_cast<std::size_t>(node));
    return phys_distance(device, placement.phys_of_program(gate.qubits[0]),
                         placement.phys_of_program(gate.qubits[1]));
  };

  while (!dag.all_scheduled()) {
    if (flush_executable()) {
      actions_since_progress = 0;
      continue;
    }
    const std::vector<int> front = dag.ready_two_qubit();
    if (front.empty()) {
      throw MappingError("shuttle router: stalled");
    }
    std::vector<int> extended;
    for (std::size_t i = 0;
         i < circuit.size() &&
         extended.size() < static_cast<std::size_t>(options_.extended_window);
         ++i) {
      const int node = static_cast<int>(i);
      if (dag.color(node) == NodeColor::Scheduled) continue;
      if (std::find(front.begin(), front.end(), node) != front.end()) continue;
      if (circuit.gate(i).is_two_qubit()) extended.push_back(node);
    }

    std::vector<bool> relevant(static_cast<std::size_t>(device.num_qubits()),
                               false);
    for (const int node : front) {
      const Gate& gate = circuit.gate(static_cast<std::size_t>(node));
      for (const int q : gate.qubits) {
        relevant[static_cast<std::size_t>(
            emitter.placement().phys_of_program(q))] = true;
      }
    }

    // Candidate actions: SWAP any relevant edge, or Move the occupant of a
    // relevant site into an adjacent empty site.
    double best_score = std::numeric_limits<double>::infinity();
    int best_a = -1;
    int best_b = -1;
    bool best_is_move = false;
    const auto consider = [&](int a, int b, bool is_move) {
      Placement trial = emitter.placement();
      trial.apply_swap(a, b);
      double front_term = 0.0;
      for (const int node : front) front_term += gate_distance(node, trial);
      front_term /= static_cast<double>(front.size());
      double extended_term = 0.0;
      if (!extended.empty()) {
        for (const int node : extended) {
          extended_term += gate_distance(node, trial);
        }
        extended_term /= static_cast<double>(extended.size());
      }
      const double decay_factor = std::max(
          decay[static_cast<std::size_t>(a)],
          decay[static_cast<std::size_t>(b)]);
      const double action_cost =
          is_move ? options_.move_cost : options_.swap_cost;
      const double score =
          decay_factor *
          (front_term + options_.extended_weight * extended_term +
           options_.action_cost_weight * action_cost);
      if (score < best_score) {
        best_score = score;
        best_a = a;
        best_b = b;
        best_is_move = is_move;
      }
    };
    for (const auto& edge : coupling.edges()) {
      if (!relevant[static_cast<std::size_t>(edge.a)] &&
          !relevant[static_cast<std::size_t>(edge.b)]) {
        continue;
      }
      const bool a_free = emitter.placement().program_at_phys(edge.a) == -1;
      const bool b_free = emitter.placement().program_at_phys(edge.b) == -1;
      if (b_free && !a_free) {
        consider(edge.a, edge.b, /*is_move=*/true);
      } else if (a_free && !b_free) {
        consider(edge.b, edge.a, /*is_move=*/true);
      } else if (!a_free && !b_free) {
        consider(edge.a, edge.b, /*is_move=*/false);
      }
      // Two free sites: moving vacuum around is useless.
    }
    if (best_a < 0) throw MappingError("shuttle router: no candidate action");

    ++actions_since_progress;
    if (actions_since_progress > stall_limit) {
      const Gate& gate = circuit.gate(static_cast<std::size_t>(front.front()));
      const int pa = emitter.placement().phys_of_program(gate.qubits[0]);
      const int pb = emitter.placement().phys_of_program(gate.qubits[1]);
      const std::vector<int> path = phys_shortest_path(device, pa, pb);
      for (std::size_t i = 0; i + 2 < path.size(); ++i) {
        // Prefer moves along the forced path too.
        if (emitter.placement().program_at_phys(path[i + 1]) == -1) {
          emitter.emit_move(path[i], path[i + 1]);
        } else {
          emitter.emit_swap(path[i], path[i + 1]);
        }
      }
      actions_since_progress = 0;
      continue;
    }

    if (best_is_move) {
      emitter.emit_move(best_a, best_b);
    } else {
      emitter.emit_swap(best_a, best_b);
    }
    decay[static_cast<std::size_t>(best_a)] += options_.decay_increment;
    decay[static_cast<std::size_t>(best_b)] += options_.decay_increment;
    if (++actions_since_reset >= options_.decay_reset_interval) {
      std::fill(decay.begin(), decay.end(), 1.0);
      actions_since_reset = 0;
    }
  }

  const double runtime_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_time)
          .count();
  return std::move(emitter).finish(initial, runtime_ms);
}

}  // namespace qmap
