#include "decompose/peephole.hpp"

#include <cmath>
#include <optional>

namespace qmap {
namespace {

constexpr double kTwoPi = 2.0 * 3.14159265358979323846;

bool same_pair(const Gate& a, const Gate& b, bool allow_reversed) {
  if (a.qubits == b.qubits) return true;
  if (!allow_reversed) return false;
  return a.qubits.size() == 2 && b.qubits.size() == 2 &&
         a.qubits[0] == b.qubits[1] && a.qubits[1] == b.qubits[0];
}

/// Is this kind a self-inverse two-qubit gate we cancel in pairs?
bool cancellable_two_qubit(GateKind kind) {
  return kind == GateKind::CX || kind == GateKind::CZ ||
         kind == GateKind::SWAP;
}

/// Symmetric kinds also cancel when the operand order is reversed.
bool cancels_reversed(GateKind kind) {
  return gate_info(kind).symmetric;
}

}  // namespace

Circuit cancel_two_qubit_pairs(const Circuit& circuit) {
  // pending[q] = index into `kept` of the unmatched cancellable two-qubit
  // gate currently "live" on qubit q (or -1).
  std::vector<std::optional<Gate>> kept;
  std::vector<int> live(static_cast<std::size_t>(circuit.num_qubits()), -1);

  for (const Gate& gate : circuit) {
    bool cancelled = false;
    if (gate.is_two_qubit() && cancellable_two_qubit(gate.kind)) {
      const int la = live[static_cast<std::size_t>(gate.qubits[0])];
      const int lb = live[static_cast<std::size_t>(gate.qubits[1])];
      if (la >= 0 && la == lb && kept[static_cast<std::size_t>(la)] &&
          kept[static_cast<std::size_t>(la)]->kind == gate.kind &&
          same_pair(*kept[static_cast<std::size_t>(la)], gate,
                    cancels_reversed(gate.kind))) {
        // Annihilate the pair.
        kept[static_cast<std::size_t>(la)].reset();
        live[static_cast<std::size_t>(gate.qubits[0])] = -1;
        live[static_cast<std::size_t>(gate.qubits[1])] = -1;
        cancelled = true;
      }
    }
    if (cancelled) continue;
    // The gate interrupts any live candidates on its qubits.
    for (const int q : gate.qubits) {
      live[static_cast<std::size_t>(q)] = -1;
    }
    kept.emplace_back(gate);
    if (gate.is_two_qubit() && cancellable_two_qubit(gate.kind)) {
      const int index = static_cast<int>(kept.size()) - 1;
      live[static_cast<std::size_t>(gate.qubits[0])] = index;
      live[static_cast<std::size_t>(gate.qubits[1])] = index;
    }
  }

  Circuit out(circuit.num_qubits(), circuit.name());
  for (const auto& gate : kept) {
    if (gate.has_value()) out.add(*gate);
  }
  return out;
}

Circuit merge_rotations(const Circuit& circuit) {
  const auto mergeable = [](GateKind kind) {
    return kind == GateKind::Rx || kind == GateKind::Ry ||
           kind == GateKind::Rz || kind == GateKind::Phase ||
           kind == GateKind::CPhase || kind == GateKind::CRz;
  };
  // Rotations are periodic: Rx/Ry/Rz/CRz with angle ~ 0 mod 4pi are exact
  // identity (2pi gives a global phase -1, which is unobservable for 1q
  // rotations but NOT for controlled ones, so be conservative there);
  // Phase/CPhase have period 2pi.
  const auto is_identity_angle = [](GateKind kind, double angle) {
    const double period =
        (kind == GateKind::Phase || kind == GateKind::CPhase) ? kTwoPi
                                                              : 2.0 * kTwoPi;
    const double remainder = std::fmod(std::abs(angle), period);
    return remainder < 1e-12 || period - remainder < 1e-12;
  };

  std::vector<std::optional<Gate>> kept;
  // live rotation per qubit: index into kept; valid only when the gate at
  // that index is a mergeable rotation whose operand set matches exactly.
  std::vector<int> live(static_cast<std::size_t>(circuit.num_qubits()), -1);

  for (const Gate& gate : circuit) {
    if (mergeable(gate.kind)) {
      // All operands must point at the same live rotation with identical
      // kind and operand order.
      int candidate = live[static_cast<std::size_t>(gate.qubits[0])];
      bool matches = candidate >= 0 &&
                     kept[static_cast<std::size_t>(candidate)].has_value() &&
                     kept[static_cast<std::size_t>(candidate)]->kind ==
                         gate.kind &&
                     kept[static_cast<std::size_t>(candidate)]->qubits ==
                         gate.qubits;
      for (const int q : gate.qubits) {
        if (live[static_cast<std::size_t>(q)] != candidate) matches = false;
      }
      if (matches) {
        Gate& target = *kept[static_cast<std::size_t>(candidate)];
        target.params[0] += gate.params[0];
        if (is_identity_angle(target.kind, target.params[0])) {
          kept[static_cast<std::size_t>(candidate)].reset();
          for (const int q : gate.qubits) {
            live[static_cast<std::size_t>(q)] = -1;
          }
        }
        continue;
      }
    }
    for (const int q : gate.qubits) live[static_cast<std::size_t>(q)] = -1;
    if (mergeable(gate.kind) &&
        is_identity_angle(gate.kind, gate.params[0])) {
      continue;  // drop an exact-identity rotation outright
    }
    kept.emplace_back(gate);
    if (mergeable(gate.kind)) {
      const int index = static_cast<int>(kept.size()) - 1;
      for (const int q : gate.qubits) {
        live[static_cast<std::size_t>(q)] = index;
      }
    }
  }

  Circuit out(circuit.num_qubits(), circuit.name());
  for (const auto& gate : kept) {
    if (gate.has_value()) out.add(*gate);
  }
  return out;
}

Circuit peephole_optimize(const Circuit& circuit, int max_iterations) {
  Circuit current = circuit;
  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    const std::size_t before = current.size();
    current = cancel_two_qubit_pairs(current);
    current = merge_rotations(current);
    if (current.size() == before) break;
  }
  return current;
}

}  // namespace qmap
