// E6 / Fig. 6 — gate decomposition into the native gates of the
// superconducting Surface-17 processor (and, for contrast, the IBM set).
//
// Regenerates the figure's content: what CNOT, SWAP, H and T compile to on
// a {Rx, Ry, CZ} device, verified unitarily, with per-gate cost tables for
// both device families.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace qmap;
using namespace qmap::bench;

void show_decomposition(const std::string& label, const Circuit& circuit,
                        const Device& device) {
  const Circuit lowered = lower_to_device(circuit, device);
  std::cout << "\n" << label << " on " << device.name() << " ("
            << lowered.size() << " native gates):\n";
  std::cout << draw_ascii(lowered);
  if (circuit.num_qubits() <= 3 &&
      !circuits_equivalent_exact(circuit, lowered, 1e-7)) {
    std::cerr << "FATAL: decomposition of " << label << " not equivalent\n";
    std::exit(1);
  }
}

void print_figure() {
  const Device s17_small =
      [] {
        // A 2-qubit CZ device with the Surface-17 native set, so the ASCII
        // diagrams match the figure's 2-wire layout.
        Device d("surface_native", [] {
          CouplingGraph g(2);
          g.add_edge(0, 1);
          return g;
        }());
        d.set_native_two_qubit(GateKind::CZ);
        d.set_native_single_qubit({GateKind::Rx, GateKind::Ry, GateKind::X,
                                   GateKind::Y, GateKind::I});
        return d;
      }();
  const Device qx_small = [] {
    Device d("ibm_native", [] {
      CouplingGraph g(2);
      g.add_edge(0, 1, true);
      g.add_edge(1, 0, true);
      return g;
    }());
    d.set_native_two_qubit(GateKind::CX);
    d.set_native_single_qubit({GateKind::U, GateKind::I});
    return d;
  }();

  section("Fig. 6: decomposition into Surface-17 native gates {Rx, Ry, CZ}");
  Circuit cnot(2, "cnot");
  cnot.cx(0, 1);
  show_decomposition("CNOT", cnot, s17_small);
  Circuit swap_circuit(2, "swap");
  swap_circuit.swap(0, 1);
  show_decomposition("SWAP", swap_circuit, s17_small);
  paper_note(
      "Sec. V: 'qubits can be moved to adjacent positions by using SWAP "
      "operations that in Surface-17 chip need to be further decomposed "
      "into CZ and Y rotations.'");
  Circuit hadamard(1, "h");
  hadamard.h(0);
  show_decomposition("H", hadamard, s17_small);
  Circuit t_gate(1, "t");
  t_gate.t(0);
  show_decomposition("T", t_gate, s17_small);

  section("Same gates on the IBM native set {U(theta,phi,lambda), CX}");
  show_decomposition("SWAP", swap_circuit, qx_small);
  Circuit cz(2, "cz");
  cz.cz(0, 1);
  show_decomposition("CZ", cz, qx_small);
  show_decomposition("H", hadamard, qx_small);

  section("Native-gate cost table");
  TextTable table({"gate", "surface {rx,ry,cz}", "ibm {u,cx}"});
  const auto cost = [](const Circuit& c, const Device& d) {
    return TextTable::num(lower_to_device(c, d).size());
  };
  Circuit toffoli(3, "ccx");
  toffoli.ccx(0, 1, 2);
  Device s17_3q = devices::surface17();
  Device qx_3q = devices::ibm_qx5();
  table.add_row({"cnot", cost(cnot, s17_small), cost(cnot, qx_small)});
  table.add_row({"cz", cost(cz, s17_small), cost(cz, qx_small)});
  table.add_row(
      {"swap", cost(swap_circuit, s17_small), cost(swap_circuit, qx_small)});
  table.add_row({"h", cost(hadamard, s17_small), cost(hadamard, qx_small)});
  table.add_row({"t", cost(t_gate, s17_small), cost(t_gate, qx_small)});
  table.add_row({"toffoli", cost(toffoli, s17_3q), cost(toffoli, qx_3q)});
  std::cout << table.str();
}

void BM_LowerFig1ToSurface(benchmark::State& state) {
  const Device s17 = devices::surface17();
  const Circuit circuit = workloads::fig1_example();
  for (auto _ : state) {
    benchmark::DoNotOptimize(lower_to_device(circuit, s17));
  }
}
BENCHMARK(BM_LowerFig1ToSurface);

void BM_LowerFig1ToIbm(benchmark::State& state) {
  const Device qx4 = devices::ibm_qx4();
  const Circuit circuit = workloads::fig1_example();
  for (auto _ : state) {
    benchmark::DoNotOptimize(lower_to_device(circuit, qx4));
  }
}
BENCHMARK(BM_LowerFig1ToIbm);

void BM_FuseSingleQubitRuns(benchmark::State& state) {
  Rng rng(5);
  const Circuit circuit = workloads::random_circuit(8, 200, rng, 0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fuse_single_qubit(circuit));
  }
}
BENCHMARK(BM_FuseSingleQubitRuns);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
