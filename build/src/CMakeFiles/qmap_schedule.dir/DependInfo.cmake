
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schedule/constraints.cpp" "src/CMakeFiles/qmap_schedule.dir/schedule/constraints.cpp.o" "gcc" "src/CMakeFiles/qmap_schedule.dir/schedule/constraints.cpp.o.d"
  "/root/repo/src/schedule/export.cpp" "src/CMakeFiles/qmap_schedule.dir/schedule/export.cpp.o" "gcc" "src/CMakeFiles/qmap_schedule.dir/schedule/export.cpp.o.d"
  "/root/repo/src/schedule/schedule.cpp" "src/CMakeFiles/qmap_schedule.dir/schedule/schedule.cpp.o" "gcc" "src/CMakeFiles/qmap_schedule.dir/schedule/schedule.cpp.o.d"
  "/root/repo/src/schedule/schedulers.cpp" "src/CMakeFiles/qmap_schedule.dir/schedule/schedulers.cpp.o" "gcc" "src/CMakeFiles/qmap_schedule.dir/schedule/schedulers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qmap_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qmap_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qmap_qasm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qmap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
