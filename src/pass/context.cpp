#include "pass/context.hpp"

#include <cstdio>

#include "engine/cancel.hpp"

namespace qmap {

CompileContext::CompileContext(const Circuit& circuit, const Device& device,
                               PipelineRuntime runtime)
    : input_(&circuit), device_(&device), runtime_(std::move(runtime)) {
  if (!runtime_.artifacts) {
    runtime_.artifacts = ArchArtifacts::shared(device);
  }
  result.original = circuit;
  result.original_metrics = compute_metrics(circuit);
  // A pipeline without a decompose pass routes the input verbatim.
  result.lowered = circuit;
}

void CompileContext::checkpoint() const {
  if (runtime_.cancel) runtime_.cancel->check();
}

namespace {

Json metrics_to_json(const CircuitMetrics& m) {
  Json out;
  out["total_gates"] = Json(m.total_gates);
  out["single_qubit_gates"] = Json(m.single_qubit_gates);
  out["two_qubit_gates"] = Json(m.two_qubit_gates);
  out["swap_gates"] = Json(m.swap_gates);
  out["measurements"] = Json(m.measurements);
  out["depth"] = Json(m.depth);
  out["two_qubit_depth"] = Json(m.two_qubit_depth);
  return out;
}

Json placement_to_json(const Placement& placement) {
  JsonArray array;
  for (const int p : placement.phys_to_program()) array.push_back(Json(p));
  return Json(std::move(array));
}

void append_placement(std::string& out, const Placement& placement) {
  for (const int p : placement.wire_to_phys()) {
    out += ' ';
    out += std::to_string(p);
  }
}

}  // namespace

Json CompilationResult::to_json() const {
  Json out;
  out["circuit"] = Json(original.name());
  out["original"] = metrics_to_json(original_metrics);
  out["mapped"] = metrics_to_json(final_metrics);
  Json routing_json;
  routing_json["added_swaps"] = Json(routing.added_swaps);
  routing_json["added_moves"] = Json(routing.added_moves);
  routing_json["direction_fixes"] = Json(routing.direction_fixes);
  routing_json["runtime_ms"] = Json(routing.runtime_ms);
  routing_json["initial_placement"] = placement_to_json(routing.initial);
  routing_json["final_placement"] = placement_to_json(routing.final);
  out["routing"] = std::move(routing_json);
  out["baseline_cycles"] = Json(baseline_cycles);
  out["scheduled_cycles"] = Json(scheduled_cycles);
  if (baseline_cycles > 0 && scheduled_cycles > 0) {
    out["latency_ratio"] = Json(latency_ratio());
  }
  return out;
}

std::string CompilationResult::report() const {
  std::string out;
  out += "circuit: " + original.name() + "\n";
  out += "  original: " + original_metrics.to_string() + "\n";
  out += "  mapped:   " + final_metrics.to_string() + "\n";
  out += "  routing:  " + routing.to_string() + "\n";
  char buffer[160];
  if (scheduled_cycles > 0) {
    std::snprintf(buffer, sizeof(buffer),
                  "  latency: %d cycles (baseline %d, ratio %.2fx)\n",
                  scheduled_cycles, baseline_cycles, latency_ratio());
    out += buffer;
  }
  return out;
}

std::string CompilationResult::fingerprint() const {
  std::string out;
  out += "circuit " + original.name() + "\n";
  out += "final " + final_circuit.name() + "\n";
  for (const Gate& gate : final_circuit.gates()) {
    out += gate.to_string();
    out += '\n';
  }
  out += "initial";
  append_placement(out, routing.initial);
  out += "\nfinal";
  append_placement(out, routing.final);
  out += "\nswaps " + std::to_string(routing.added_swaps) + " moves " +
         std::to_string(routing.added_moves) + " dirfixes " +
         std::to_string(routing.direction_fixes) + "\n";
  out += "original " + original_metrics.to_string() + "\n";
  out += "mapped " + final_metrics.to_string() + "\n";
  out += "cycles " + std::to_string(baseline_cycles) + " -> " +
         std::to_string(scheduled_cycles) + "\n";
  return out;
}

}  // namespace qmap
