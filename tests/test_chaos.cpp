// Chaos-hardening suite for the compile service (src/service/).
//
// The contract under test: the daemon never crashes, every accepted
// request gets exactly one response, and the deterministic core stays
// byte-deterministic — no matter what the wire does. The matrix drives
// seeded mixed-validity traffic (RequestFuzzer) through seeded wire
// corruption (ChaosTransport) across 1/2/8 dispatcher threads and diffs
// the surviving compile fingerprints against a fault-free baseline.
// Alongside it: overload shedding, brownout down-tiering, per-device
// circuit breakers, graceful drain, and the request-line byte cap.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/obs.hpp"
#include "qasm/openqasm.hpp"
#include "resilience/breaker.hpp"
#include "resilience/fault_injector.hpp"
#include "service/chaos.hpp"
#include "service/service.hpp"
#include "workloads/workloads.hpp"

namespace qmap::service {
namespace {

using resilience::BreakerState;
using resilience::FaultSpec;

FaultSpec wire_fault(const std::string& point, double probability) {
  FaultSpec spec;
  spec.point = point;
  spec.probability = probability;
  return spec;
}

std::string ghz_qasm(int n) { return to_openqasm(workloads::ghz(n)); }

ServiceRequest compile_request(const std::string& id,
                               const std::string& client,
                               const std::string& qasm,
                               std::uint64_t seed = 7) {
  ServiceRequest request;
  request.op = "compile";
  request.id = id;
  request.client = client;
  request.device = "ibm_qx4";
  request.qasm = qasm;
  request.seed = seed;
  return request;
}

/// Matrix-friendly service shape: wide per-client queues and no overload
/// control, so only the wire faults under test perturb the outcome.
ServiceConfig matrix_config(int workers) {
  ServiceConfig config;
  config.num_workers = workers;
  config.num_compile_threads = 2;
  config.max_queued_per_client = 4096;
  config.overload.max_queued_total = 0;  // also disables brownout
  return config;
}

/// Parses serve() output into (ordered JSON lines, id -> response).
struct ParsedReplies {
  std::vector<Json> lines;
  std::map<std::string, Json> by_id;
};

ParsedReplies parse_replies(const std::string& text) {
  ParsedReplies parsed;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    Json json = Json::parse(line);  // every response must be valid JSON
    if (json.contains("id")) {
      parsed.by_id.emplace(json.at("id").as_string(), json);
    }
    parsed.lines.push_back(std::move(json));
  }
  return parsed;
}

// ------------------------------------------------------- ChaosTransport --

TEST(ChaosTransport, RejectsNonServiceFaultPoints) {
  ChaosConfig config;
  config.faults = {wire_fault("stall-ms", 1.0)};  // registry-known, not wire
  EXPECT_THROW(ChaosTransport{config}, MappingError);
  config.faults = {wire_fault("service.typo", 1.0)};
  EXPECT_THROW(ChaosTransport{config}, MappingError);
}

TEST(ChaosTransport, CorruptionIsDeterministicForAFixedSeed) {
  ChaosConfig config;
  config.faults = {wire_fault("service.truncate-line", 0.5),
                   wire_fault("service.garbage-bytes", 0.5)};
  config.seed = 1234;
  const ChaosTransport transport(config);

  std::vector<std::string> lines;
  for (int i = 0; i < 64; ++i) {
    lines.push_back("{\"op\":\"ping\",\"id\":\"p" + std::to_string(i) + "\"}");
  }
  const auto first = transport.corrupt(lines);
  const auto second = transport.corrupt(lines);
  ASSERT_EQ(first.size(), second.size());
  int corrupted = 0;
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].wire, second[i].wire);
    EXPECT_EQ(first[i].intact, second[i].intact);
    if (!first[i].intact) ++corrupted;
  }
  // p=0.5 on two faults over 64 lines: some corruption, not total.
  EXPECT_GT(corrupted, 0);
  EXPECT_LT(corrupted, 64);
}

TEST(ChaosTransport, DisconnectCutsTheStreamMidLine) {
  ChaosConfig config;
  config.faults = {wire_fault("service.disconnect", 0.2)};
  const ChaosTransport transport(config);
  std::vector<std::string> lines(32, R"({"op":"ping","id":"x"})");
  const auto fates = transport.corrupt(lines);

  const auto cut = std::find_if(fates.begin(), fates.end(),
                                [](const auto& f) { return f.cut_here; });
  ASSERT_NE(cut, fates.end()) << "p=0.2 over 32 lines must cut somewhere";
  for (auto it = cut + 1; it != fates.end(); ++it) {
    EXPECT_FALSE(it->delivered);
  }
  const std::string wire = ChaosTransport::wire(fates);
  // The wire ends with the cut line's prefix, no trailing newline.
  EXPECT_TRUE(wire.empty() || wire.back() != '\n');
}

TEST(ChaosTransport, ExpectedLinesMirrorsServeFraming) {
  EXPECT_EQ(ChaosTransport::expected_lines(""), 0);
  EXPECT_EQ(ChaosTransport::expected_lines("\n\n  \n"), 0);
  EXPECT_EQ(ChaosTransport::expected_lines("a\nb\n"), 2);
  EXPECT_EQ(ChaosTransport::expected_lines("a\n\nb"), 2);   // cut fragment
  EXPECT_EQ(ChaosTransport::expected_lines("  \nxy"), 1);   // ws + fragment
}

TEST(StallingStream, DelaysButNeverLosesWrites) {
  std::ostringstream sink;
  StallingStream slow(sink, /*stall_ms=*/2.0, /*stall_every=*/2);
  for (int i = 0; i < 6; ++i) {
    slow << "line" << i << "\n";
    slow.flush();
  }
  EXPECT_GE(slow.stalls(), 3);
  EXPECT_EQ(sink.str(),
            "line0\nline1\nline2\nline3\nline4\nline5\n");
}

// -------------------------------------------------------- RequestFuzzer --

TEST(RequestFuzzer, DeterministicMixOfValidAndMalformed) {
  RequestFuzzer a(42);
  RequestFuzzer b(42);
  const auto first = a.generate(200);
  const auto second = b.generate(200);
  ASSERT_EQ(first.size(), second.size());

  int well_formed = 0;
  int malformed = 0;
  int compiles = 0;
  std::vector<std::string> ids;
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].line, second[i].line);
    if (first[i].well_formed) {
      ++well_formed;
      // A well-formed line must parse through the real request path.
      EXPECT_NO_THROW(ServiceRequest::from_json(Json::parse(first[i].line)));
    } else {
      ++malformed;
    }
    if (first[i].is_compile) ++compiles;
    if (!first[i].id.empty()) ids.push_back(first[i].id);
  }
  EXPECT_GT(well_formed, 100);
  EXPECT_GT(malformed, 20);
  EXPECT_GT(compiles, 50);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end())
      << "fuzzer ids must be unique";
}

// ------------------------------------------------------- the big matrix --

/// Fault-free baseline: id -> fingerprint for every well-formed compile in
/// the fuzzed batch. Computed once (it is deterministic) and shared.
const std::vector<FuzzItem>& fuzz_batch() {
  static const std::vector<FuzzItem> items =
      RequestFuzzer(0xFADE).generate(520);
  return items;
}

const std::map<std::string, std::string>& baseline_fingerprints() {
  static const std::map<std::string, std::string> baseline = [] {
    CompileService service(matrix_config(1));
    std::istringstream in([] {
      std::string text;
      for (const FuzzItem& item : fuzz_batch()) text += item.line + "\n";
      return text;
    }());
    std::ostringstream out;
    service.serve(in, out);
    const ParsedReplies replies = parse_replies(out.str());
    std::map<std::string, std::string> fingerprints;
    for (const FuzzItem& item : fuzz_batch()) {
      if (!item.is_compile) continue;
      const auto it = replies.by_id.find(item.id);
      if (it == replies.by_id.end()) continue;
      fingerprints[item.id] = it->second.at("fingerprint").as_string();
    }
    return fingerprints;
  }();
  return baseline;
}

struct MatrixCase {
  const char* name;
  std::vector<FaultSpec> faults;
};

std::vector<MatrixCase> matrix_cases() {
  return {
      {"fault-free", {}},
      {"truncate+garbage",
       {wire_fault("service.truncate-line", 0.10),
        wire_fault("service.garbage-bytes", 0.10)}},
      {"oversize+disconnect",
       {wire_fault("service.oversize-line", 0.05),
        wire_fault("service.disconnect", 0.002)}},
      {"everything",
       {wire_fault("service.truncate-line", 0.05),
        wire_fault("service.garbage-bytes", 0.05),
        wire_fault("service.oversize-line", 0.03),
        wire_fault("service.disconnect", 0.001),
        wire_fault("service.stall-write", 1.0)}},
  };
}

TEST(ChaosMatrix, NoCrashOneResponsePerRequestFingerprintsPinned) {
  const auto& items = fuzz_batch();
  std::vector<std::string> lines;
  lines.reserve(items.size());
  for (const FuzzItem& item : items) lines.push_back(item.line);
  const auto& baseline = baseline_fingerprints();
  ASSERT_GT(baseline.size(), 100u);

  for (const MatrixCase& matrix_case : matrix_cases()) {
    ChaosConfig chaos_config;
    chaos_config.faults = matrix_case.faults;
    chaos_config.oversize_bytes = 1 << 16;
    const ChaosTransport transport(chaos_config);
    const auto fates = transport.corrupt(lines);
    const std::string wire = ChaosTransport::wire(fates);
    const int expected = ChaosTransport::expected_lines(wire);

    const bool stalling =
        std::any_of(matrix_case.faults.begin(), matrix_case.faults.end(),
                    [](const FaultSpec& f) {
                      return f.point == "service.stall-write";
                    });

    for (const int workers : {1, 2, 8}) {
      ServiceConfig config = matrix_config(workers);
      // Oversize faults must actually exceed the cap to exercise it.
      config.max_request_line_bytes = 8192;
      CompileService service(std::move(config));

      std::istringstream in(wire);
      std::ostringstream out;
      int consumed = 0;
      if (stalling) {
        StallingStream slow(out, /*stall_ms=*/1.0, /*stall_every=*/16);
        consumed = service.serve(in, slow);
      } else {
        consumed = service.serve(in, out);
      }

      const ParsedReplies replies = parse_replies(out.str());
      // Exactly one response per accepted request: serve()'s own count,
      // the framing mirror, and the parsed output must all agree.
      EXPECT_EQ(consumed, expected)
          << matrix_case.name << " workers=" << workers;
      EXPECT_EQ(replies.lines.size(), static_cast<std::size_t>(expected))
          << matrix_case.name << " workers=" << workers;

      // Every line that reached the service byte-intact and carries a
      // well-formed compile answers with the baseline fingerprint.
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (!items[i].is_compile) continue;
        if (!fates[i].intact || !fates[i].delivered || fates[i].cut_here) {
          continue;
        }
        const auto reply = replies.by_id.find(items[i].id);
        ASSERT_NE(reply, replies.by_id.end())
            << matrix_case.name << " workers=" << workers
            << " lost id " << items[i].id;
        EXPECT_EQ(reply->second.at("status").as_string(), "ok");
        EXPECT_EQ(reply->second.at("fingerprint").as_string(),
                  baseline.at(items[i].id))
            << matrix_case.name << " workers=" << workers
            << " id " << items[i].id;
      }
    }
  }
}

TEST(ChaosMatrix, MetricsFingerprintIdenticalAcrossIdenticalRuns) {
  // With one dispatcher (no hit-vs-coalesced races) and overload control
  // off, two identical runs must produce byte-identical metrics — the
  // chaos machinery itself introduces no nondeterminism. The one excluded
  // gauge: service.cache.bytes sizes the stored outcome JSON, which embeds
  // wall-clock digits, so its value is timing- not traffic-dependent.
  std::vector<std::string> fingerprints;
  for (int run = 0; run < 2; ++run) {
    obs::Observer observer;
    ServiceConfig config = matrix_config(1);
    config.obs = &observer;
    CompileService service(std::move(config));
    std::string text;
    for (const FuzzItem& item : fuzz_batch()) text += item.line + "\n";
    std::istringstream in(text);
    std::ostringstream out;
    service.serve(in, out);
    Json metrics = Json::parse(observer.metrics().fingerprint());
    metrics.as_object().at("gauges").as_object().erase("service.cache.bytes");
    fingerprints.push_back(metrics.dump());
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
}

// ------------------------------------------------------- line byte cap --

TEST(CompileService, OversizedRequestLineAnsweredWithoutWedging) {
  ServiceConfig config;
  config.max_request_line_bytes = 64;
  CompileService service(std::move(config));

  const std::string big(1 << 12, 'x');
  std::istringstream in(big + "\n" +
                        std::string(200, ' ') + "\n" +  // over-cap whitespace
                        "{\"op\":\"ping\",\"id\":\"p\"}\n");
  std::ostringstream out;
  const int lines = service.serve(in, out);
  EXPECT_EQ(lines, 2);  // the whitespace run is skipped like a blank line

  const ParsedReplies replies = parse_replies(out.str());
  ASSERT_EQ(replies.lines.size(), 2u);
  EXPECT_EQ(replies.lines[0].at("status").as_string(), "error");
  EXPECT_NE(replies.lines[0].at("error").as_string().find("64-byte cap"),
            std::string::npos);
  ASSERT_TRUE(replies.by_id.count("p"));
  EXPECT_EQ(replies.by_id.at("p").at("status").as_string(), "pong");
}

// ------------------------------------------------------------ shedding --

TEST(CompileService, DeadlineAwareAdmissionShedsDoomedRequests) {
  ServiceConfig config;
  config.num_workers = 1;
  config.overload.initial_cost_ms = 1e6;  // predicted wait dwarfs any deadline
  config.overload.cost_ema_alpha = 0.0;   // pin the estimate
  config.overload.brownout_enabled = false;
  // Keep r1 in flight long enough that r2's admission check sees it.
  FaultSpec stall;
  stall.point = "stall-ms";
  stall.stall_ms = 100.0;
  config.policy.faults = {stall};
  CompileService service(std::move(config));

  // r1 is admitted (no deadline => no prediction to violate) and holds
  // outstanding >= 1 until it completes.
  auto first = service.submit(compile_request("r1", "a", ghz_qasm(3)));
  ServiceRequest doomed = compile_request("r2", "b", ghz_qasm(4));
  doomed.deadline_ms = 10.0;
  const ServiceResponse shed = service.submit(std::move(doomed)).get();
  EXPECT_EQ(shed.status, "shed");
  EXPECT_NE(shed.error.find("deadline"), std::string::npos);
  EXPECT_GE(shed.retry_after_ms, 10.0);
  EXPECT_EQ(first.get().status, "ok");

  // Load gone: the same deadline is admitted now.
  service.wait_idle();
  const LoadDecision decision = service.assess_load(10.0);
  EXPECT_FALSE(decision.shed) << decision.reason;
}

TEST(CompileService, GlobalQueueBudgetShedsBeyondWatermark) {
  ServiceConfig config;
  config.num_workers = 1;
  config.overload.max_queued_total = 1;
  config.overload.brownout_enabled = false;
  config.overload.retry_after_ms = 25.0;
  // Stall every attempt so the first request pins the dispatcher while
  // the rest arrive.
  FaultSpec stall;
  stall.point = "stall-ms";
  stall.stall_ms = 100.0;
  config.policy.faults = {stall};
  CompileService service(std::move(config));

  std::vector<std::future<ServiceResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(service.submit(compile_request(
        "r" + std::to_string(i), "c" + std::to_string(i), ghz_qasm(3),
        static_cast<std::uint64_t>(i))));
  }
  int shed = 0;
  int served = 0;
  for (auto& future : futures) {
    const ServiceResponse response = future.get();
    if (response.status == "shed") {
      ++shed;
      EXPECT_NE(response.error.find("queue budget"), std::string::npos);
      EXPECT_GE(response.retry_after_ms, 25.0);
    } else {
      ++served;
    }
  }
  // The budget is a watermark: at least one request must bounce, at least
  // the first must land.
  EXPECT_GE(shed, 1);
  EXPECT_GE(served, 1);
}

// ------------------------------------------------------------ brownout --

TEST(CompileService, BrownoutDownTiersToRungTwoAndNeverCaches) {
  obs::Observer observer;
  ServiceConfig config;
  config.num_workers = 1;
  config.obs = &observer;
  // Sticky brownout: enters at the first queued request, never exits.
  config.overload.max_queued_total = 64;
  config.overload.brownout_enter_fraction = 0.0;
  config.overload.brownout_exit_fraction = -1.0;
  CompileService service(std::move(config));

  const ServiceResponse degraded =
      service.submit(compile_request("r1", "a", ghz_qasm(3))).get();
  ASSERT_EQ(degraded.status, "ok");
  EXPECT_EQ(degraded.mode, "brownout");
  EXPECT_EQ(degraded.rung, 2);
  EXPECT_EQ(degraded.winner, "identity+naive");
  EXPECT_TRUE(service.brownout_active());
  // Degraded answers are never stored: the next identical request is a
  // fresh miss, not a replay of the cheap result.
  EXPECT_EQ(service.cache_stats().entries, 0u);
  const ServiceResponse again =
      service.submit(compile_request("r2", "a", ghz_qasm(3))).get();
  EXPECT_EQ(again.cache, "miss");
  EXPECT_EQ(again.mode, "brownout");
  EXPECT_GE(observer.metrics().counter("service.brownout_compiles"), 2u);
  EXPECT_EQ(observer.metrics().counter("service.brownout_entered"), 1u);
  EXPECT_EQ(observer.metrics().gauge("service.brownout"), 1.0);
}

TEST(CompileService, BrownoutHysteresisEntersAndExits) {
  obs::Observer observer;
  ServiceConfig config;
  config.num_workers = 2;
  config.obs = &observer;
  config.overload.max_queued_total = 4;
  config.overload.brownout_enter_fraction = 0.75;  // enter at depth 3
  config.overload.brownout_exit_fraction = 0.0;    // exit at depth 0
  FaultSpec stall;
  stall.point = "stall-ms";
  stall.stall_ms = 30.0;
  config.policy.faults = {stall};
  CompileService service(std::move(config));

  std::vector<std::future<ServiceResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(service.submit(compile_request(
        "r" + std::to_string(i), "c" + std::to_string(i % 4), ghz_qasm(3),
        static_cast<std::uint64_t>(i))));
  }
  for (auto& future : futures) (void)future.get();
  service.wait_idle();
  // The burst drove the queue over the enter watermark and the drain back
  // to zero: brownout entered and exited (hysteresis closed the loop).
  EXPECT_GE(observer.metrics().counter("service.brownout_entered"), 1u);
  EXPECT_EQ(observer.metrics().counter("service.brownout_entered"),
            observer.metrics().counter("service.brownout_exited"));
  EXPECT_FALSE(service.brownout_active());
  EXPECT_EQ(observer.metrics().gauge("service.brownout"), 0.0);
}

// ------------------------------------------------------------- breaker --

/// Service whose every compile fails Permanent (unshielded ladder + a
/// placer fault on every rung): the breaker's worst customer.
ServiceConfig poisoned_config(obs::Observer* observer,
                              std::int64_t* clock_us) {
  ServiceConfig config;
  config.num_workers = 1;
  config.obs = observer;
  config.policy.shield_last_rung = false;
  FaultSpec fault;
  fault.point = "throw-in-placer";
  fault.rung = -1;
  config.policy.faults = {fault};
  config.breaker.failure_threshold = 2;
  config.breaker.open_ms = 100.0;
  config.breaker.now_us = [clock_us] { return *clock_us; };
  return config;
}

TEST(CompileService, BreakerOpensAfterConsecutivePermanentFailures) {
  obs::Observer observer;
  std::int64_t clock_us = 0;
  CompileService service(poisoned_config(&observer, &clock_us));

  // Distinct seeds so negative caching cannot absorb the repeats.
  for (int i = 0; i < 2; ++i) {
    const ServiceResponse response =
        service.handle(compile_request("r" + std::to_string(i), "a",
                                       ghz_qasm(3),
                                       static_cast<std::uint64_t>(i)));
    EXPECT_EQ(response.status, "error") << response.error;
  }
  EXPECT_EQ(service.breaker_state("ibm_qx4"), BreakerState::Open);

  // Fresh work fast-fails with a backoff hint...
  const ServiceResponse unavailable =
      service.handle(compile_request("r9", "a", ghz_qasm(3), 99));
  EXPECT_EQ(unavailable.status, "unavailable");
  EXPECT_NE(unavailable.error.find("circuit breaker open"),
            std::string::npos);
  EXPECT_GT(unavailable.retry_after_ms, 0.0);
  EXPECT_GE(observer.metrics().counter("service.breaker_fast_fail"), 1u);
  EXPECT_GE(observer.metrics().counter("service.breaker_open"), 1u);
  EXPECT_EQ(observer.metrics().gauge("service.breaker.ibm_qx4.state"), 2.0);

  // ...but cached answers (here: the negative entry for seed 0) still
  // serve while the breaker is open.
  const ServiceResponse cached =
      service.handle(compile_request("r0-again", "a", ghz_qasm(3), 0));
  EXPECT_EQ(cached.cache, "negative-hit");

  // Per-device isolation: qx5's breaker is untouched.
  ServiceRequest other = compile_request("qx5", "a", ghz_qasm(3), 5);
  other.device = "ibm_qx5";
  const ServiceResponse neighbour = service.handle(std::move(other));
  EXPECT_EQ(neighbour.status, "error");  // still failing, NOT unavailable
  EXPECT_EQ(service.breaker_state("ibm_qx5"), BreakerState::Closed);
}

TEST(CompileService, BreakerHalfOpenProbeFailureReopens) {
  obs::Observer observer;
  std::int64_t clock_us = 0;
  CompileService service(poisoned_config(&observer, &clock_us));

  for (int i = 0; i < 2; ++i) {
    (void)service.handle(compile_request("r" + std::to_string(i), "a",
                                         ghz_qasm(3),
                                         static_cast<std::uint64_t>(i)));
  }
  ASSERT_EQ(service.breaker_state("ibm_qx4"), BreakerState::Open);

  clock_us += 100 * 1000;  // open window lapses: next request is a probe
  const ServiceResponse probe =
      service.handle(compile_request("probe", "a", ghz_qasm(3), 11));
  EXPECT_EQ(probe.status, "error");  // the probe ran (and failed)
  EXPECT_EQ(service.breaker_state("ibm_qx4"), BreakerState::Open);
  EXPECT_GE(observer.metrics().counter("service.breaker_open"), 2u);
  EXPECT_GE(observer.metrics().counter("service.breaker_half_open"), 1u);
}

TEST(CompileService, BreakerNeverCountsAdmissionRejections) {
  obs::Observer observer;
  ServiceConfig config;
  config.obs = &observer;
  config.breaker.failure_threshold = 2;
  CompileService service(std::move(config));

  // 6 qubits on 5-qubit QX4: rejected at admission, forever. Distinct
  // seeds dodge the negative cache so every request runs assess().
  for (int i = 0; i < 6; ++i) {
    const ServiceResponse response =
        service.handle(compile_request("r" + std::to_string(i), "a",
                                       ghz_qasm(6),
                                       static_cast<std::uint64_t>(i)));
    EXPECT_EQ(response.status, "rejected");
  }
  EXPECT_EQ(service.breaker_state("ibm_qx4"), BreakerState::Closed);
}

// --------------------------------------------------------------- drain --

TEST(CompileService, CleanDrainFinishesInFlightWork) {
  obs::Observer observer;
  ServiceConfig config;
  config.num_workers = 2;
  config.obs = &observer;
  CompileService service(std::move(config));

  std::vector<std::future<ServiceResponse>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(service.submit(compile_request(
        "r" + std::to_string(i), "a", ghz_qasm(3),
        static_cast<std::uint64_t>(i))));
  }
  const DrainReport report = service.drain(10000.0);
  EXPECT_TRUE(report.clean);
  EXPECT_LT(report.wall_ms, 10000.0);
  for (auto& future : futures) {
    EXPECT_EQ(future.get().status, "ok");
  }
  EXPECT_TRUE(service.draining());
  EXPECT_EQ(observer.metrics().counter("service.drain_forced"), 0u);

  // Admission is closed: post-drain submits shed immediately.
  const ServiceResponse late =
      service.submit(compile_request("late", "a", ghz_qasm(4))).get();
  EXPECT_EQ(late.status, "shed");
  EXPECT_NE(late.error.find("draining"), std::string::npos);
}

TEST(CompileService, ForcedDrainCancelsStragglersButAnswersEveryone) {
  obs::Observer observer;
  ServiceConfig config;
  config.num_workers = 1;
  config.obs = &observer;
  FaultSpec stall;
  stall.point = "stall-ms";
  stall.stall_ms = 150.0;
  config.policy.faults = {stall};
  CompileService service(std::move(config));

  std::vector<std::future<ServiceResponse>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(service.submit(compile_request(
        "r" + std::to_string(i), "a", ghz_qasm(4),
        static_cast<std::uint64_t>(i))));
  }
  const DrainReport report = service.drain(20.0);
  EXPECT_FALSE(report.clean);
  // Forcing is bounded: stalls are ~150ms per stage, not the full ladder.
  EXPECT_LT(report.wall_ms, 30000.0);
  int cancelled = 0;
  for (auto& future : futures) {
    const ServiceResponse response = future.get();  // all answered: no hangs
    EXPECT_TRUE(response.status == "ok" || response.status == "cancelled" ||
                response.status == "error")
        << response.status;
    if (response.status == "cancelled") ++cancelled;
  }
  EXPECT_GE(cancelled, 1);
  EXPECT_EQ(observer.metrics().counter("service.drain_forced"), 1u);
}

TEST(CompileService, DrainDuringServeFlushesEveryResponse) {
  // serve() on a background thread, drain racing the request stream: the
  // response count must still match the accepted-line count exactly.
  ServiceConfig config;
  config.num_workers = 2;
  CompileService service(std::move(config));

  std::string text;
  for (int i = 0; i < 12; ++i) {
    ServiceRequest request = compile_request(
        "r" + std::to_string(i), "a", ghz_qasm(3),
        static_cast<std::uint64_t>(i % 3));
    text += request.to_json().dump() + "\n";
  }
  std::istringstream in(text);
  std::ostringstream out;
  std::thread server([&] { service.serve(in, out); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const DrainReport report = service.drain(5000.0);
  server.join();

  const ParsedReplies replies = parse_replies(out.str());
  EXPECT_EQ(replies.lines.size(), 12u);  // one response per accepted line
  EXPECT_LT(report.wall_ms, 5001.0);
  for (const Json& line : replies.lines) {
    const std::string status = line.at("status").as_string();
    EXPECT_TRUE(status == "ok" || status == "shed" || status == "cancelled")
        << status;
  }
}

}  // namespace
}  // namespace qmap::service
