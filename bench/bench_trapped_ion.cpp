// E15 / Sec. VI-C — the trapped-ion trade-off:
//
//   "trapped ions provide all-to-all connectivity ... However this
//    desirable property comes at the price of reduced two-qubit gate
//    parallelism."
//
// Same workloads compiled to a Surface-17 (limited connectivity, parallel
// CZs) and a 17-ion trap (all-to-all, one two-qubit gate at a time).
// Reported per device: added SWAPs, native two-qubit gates, and schedule
// latency in *gate-depth-equivalent* units (each device's own cycle time
// differs by ~50x, so both cycles and normalized 2q-slots are shown).
// Expected shape: ions need zero SWAPs but their schedules serialize; the
// superconducting chip pays SWAP overhead but retains parallelism —
// exactly the trade the paper describes.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace qmap;
using namespace qmap::bench;

void print_figure() {
  paper_note(
      "Sec. VI-C: connectivity vs two-qubit parallelism. Ion two-qubit "
      "gates are also ~50x slower in wall-clock; the table reports both "
      "device cycles and nanoseconds.");
  section("Surface-17 (NN coupling, parallel CZ) vs 17-ion trap "
          "(all-to-all, serialized 2q)");
  TextTable table({"workload", "device", "swaps", "2q gates",
                   "latency cycles", "latency us"});
  Rng rng(7);
  std::vector<std::pair<std::string, Circuit>> suite;
  suite.emplace_back("ghz8", workloads::ghz(8));
  suite.emplace_back("qft6", workloads::qft(6));
  suite.emplace_back("adder2", workloads::cuccaro_adder(2));
  suite.emplace_back("qv8", workloads::quantum_volume(8, 2, rng));
  for (const auto& [label, circuit] : suite) {
    for (const Device& device :
         {devices::surface17(), devices::trapped_ion(17)}) {
      CompilerOptions options;
      options.router = "sabre";
      const Compiler compiler(device, options);
      const CompilationResult result = compiler.compile(circuit);
      if (!Compiler::verify(result)) {
        std::cerr << "FATAL: verification failed\n";
        std::exit(1);
      }
      table.add_row(
          {label, device.name(), TextTable::num(result.routing.added_swaps),
           TextTable::num(result.final_metrics.two_qubit_gates),
           TextTable::num(result.scheduled_cycles),
           TextTable::num(result.scheduled_cycles *
                              device.durations().cycle_ns / 1000.0,
                          2)});
    }
  }
  std::cout << table.str();

  section("Parallelism-limit sweep (qft6 on a hypothetical ion trap)");
  TextTable sweep({"max concurrent 2q", "latency cycles"});
  for (const int limit : {1, 2, 4, 8, 0}) {
    Device ion = devices::trapped_ion(17);
    ion.set_max_parallel_two_qubit(limit);
    const Compiler compiler(ion);
    const CompilationResult result = compiler.compile(workloads::qft(6));
    sweep.add_row({limit == 0 ? "unlimited" : TextTable::num(limit),
                   TextTable::num(result.scheduled_cycles)});
  }
  std::cout << sweep.str();
  paper_note("latency falls monotonically as the bus restriction relaxes.");
}

void BM_CompileIonVsSurface(benchmark::State& state) {
  const Device device = state.range(0) == 0 ? devices::surface17()
                                            : devices::trapped_ion(17);
  const Compiler compiler(device);
  const Circuit circuit = workloads::qft(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler.compile(circuit));
  }
  state.SetLabel(device.name());
}
BENCHMARK(BM_CompileIonVsSurface)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
