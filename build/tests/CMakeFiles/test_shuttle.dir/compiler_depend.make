# Empty compiler generated dependencies file for test_shuttle.
# This may be replaced when dependencies are built.
