// Fixed-size thread pool used by the portfolio and batch compilers.
//
// Deliberately work-stealing-free: a single mutex-protected FIFO queue
// feeds all workers, so tasks start in exactly the order they were
// submitted. The engine never relies on *completion* order anyway — every
// result is written to a caller-owned slot keyed by task index and winners
// are chosen by (cost, strategy index), so outputs are identical no matter
// how the OS schedules the workers.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace qmap {

class ThreadPool {
 public:
  /// Starts `num_threads` workers; values < 1 fall back to
  /// std::thread::hardware_concurrency() (itself clamped to >= 1).
  explicit ThreadPool(int num_threads = 0);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Enqueues a fire-and-forget task.
  void submit(std::function<void()> task);

  /// Enqueues a task and returns a future for its result. Exceptions
  /// thrown by the task surface on future.get().
  template <typename F>
  [[nodiscard]] auto async(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> future = packaged->get_future();
    submit([packaged] { (*packaged)(); });
    return future;
  }

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;      // tasks currently executing
  bool stopping_ = false;
};

}  // namespace qmap
