# Empty compiler generated dependencies file for qmap_sim.
# This may be replaced when dependencies are built.
