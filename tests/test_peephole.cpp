// Peephole-optimizer tests: every rewrite must be unitary-equivalent, and
// the targeted redundancies must actually disappear.
#include <gtest/gtest.h>

#include "arch/builtin.hpp"
#include "core/compiler.hpp"
#include "decompose/peephole.hpp"
#include "sim/equivalence.hpp"
#include "workloads/workloads.hpp"

namespace qmap {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(CancelPairs, AdjacentIdenticalCxCancel) {
  Circuit c(2);
  c.cx(0, 1).cx(0, 1);
  EXPECT_EQ(cancel_two_qubit_pairs(c).size(), 0u);
}

TEST(CancelPairs, ReversedCxDoesNotCancel) {
  Circuit c(2);
  c.cx(0, 1).cx(1, 0);
  EXPECT_EQ(cancel_two_qubit_pairs(c).size(), 2u);
}

TEST(CancelPairs, ReversedCzAndSwapCancel) {
  Circuit c(2);
  c.cz(0, 1).cz(1, 0).swap(0, 1).swap(1, 0);
  EXPECT_EQ(cancel_two_qubit_pairs(c).size(), 0u);
}

TEST(CancelPairs, InterveningGateBlocksCancellation) {
  Circuit blocked(2);
  blocked.cx(0, 1).h(1).cx(0, 1);
  EXPECT_EQ(cancel_two_qubit_pairs(blocked).size(), 3u);
  // A gate on an unrelated qubit does not block.
  Circuit unrelated(3);
  unrelated.cx(0, 1).h(2).cx(0, 1);
  EXPECT_EQ(cancel_two_qubit_pairs(unrelated).size(), 1u);
}

TEST(CancelPairs, SingleSidedInterruptionBlocks) {
  Circuit c(2);
  c.cx(0, 1).t(0).cx(0, 1);
  EXPECT_EQ(cancel_two_qubit_pairs(c).size(), 3u);
}

TEST(CancelPairs, ChainsOfFourCancelCompletely) {
  Circuit c(2);
  c.cx(0, 1).cx(0, 1).cx(0, 1).cx(0, 1);
  EXPECT_EQ(cancel_two_qubit_pairs(c).size(), 0u);
}

TEST(MergeRotations, SameAxisRunsCollapse) {
  Circuit c(1);
  c.rz(0.3, 0).rz(0.4, 0).rz(-0.2, 0);
  const Circuit merged = merge_rotations(c);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_NEAR(merged.gate(0).params[0], 0.5, 1e-12);
}

TEST(MergeRotations, OppositeRotationsVanish) {
  Circuit c(1);
  c.rx(0.7, 0).rx(-0.7, 0);
  EXPECT_EQ(merge_rotations(c).size(), 0u);
}

TEST(MergeRotations, DifferentAxesDoNotMerge) {
  Circuit c(1);
  c.rx(0.3, 0).rz(0.3, 0);
  EXPECT_EQ(merge_rotations(c).size(), 2u);
}

TEST(MergeRotations, ControlledRotationsMergeOnIdenticalPairs) {
  Circuit c(2);
  c.cp(0.3, 0, 1).cp(0.2, 0, 1);
  const Circuit merged = merge_rotations(c);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_NEAR(merged.gate(0).params[0], 0.5, 1e-12);
  // Different operand order is conservatively kept separate.
  Circuit reversed(2);
  reversed.cp(0.3, 0, 1).cp(0.2, 1, 0);
  EXPECT_EQ(merge_rotations(reversed).size(), 2u);
}

TEST(MergeRotations, DropsExactIdentityRotations) {
  Circuit c(1);
  c.rz(0.0, 0).p(2.0 * kPi, 0);
  EXPECT_EQ(merge_rotations(c).size(), 0u);
  // Rz(2pi) = -I is a global phase for an uncontrolled rotation, but the
  // conservative period used is 4pi, so it is kept.
  Circuit two_pi(1);
  two_pi.rz(2.0 * kPi, 0);
  EXPECT_EQ(merge_rotations(two_pi).size(), 1u);
}

TEST(Peephole, FixedPointAndEquivalenceOnRandomCircuits) {
  Rng rng(41);
  for (int trial = 0; trial < 8; ++trial) {
    const Circuit circuit = workloads::random_circuit(4, 40, rng, 0.5);
    const Circuit optimized = peephole_optimize(circuit);
    EXPECT_LE(optimized.size(), circuit.size());
    EXPECT_TRUE(circuits_equivalent_exact(circuit, optimized, 1e-7))
        << "trial " << trial;
    // Idempotent at the fixed point.
    EXPECT_EQ(peephole_optimize(optimized).size(), optimized.size());
  }
}

TEST(Peephole, CleansUpRedundantRoutingPatterns) {
  // The classic post-routing pattern: swap there and straight back.
  Circuit c(3);
  c.cx(0, 1).swap(1, 2).swap(1, 2).cx(0, 1).cx(0, 1).rz(0.2, 2).rz(-0.2, 2);
  const Circuit optimized = peephole_optimize(c);
  EXPECT_EQ(optimized.size(), 1u);  // only the first cx survives... paired?
  // cx appears 3 times: #2 and #3 cancel, #1 survives.
  EXPECT_EQ(optimized.gate(0).kind, GateKind::CX);
}

TEST(Peephole, CompilerOptionReducesGateCount) {
  const Circuit circuit = workloads::qft(5);
  CompilerOptions with;
  with.peephole = true;
  CompilerOptions without;
  without.peephole = false;
  const CompilationResult a =
      Compiler(devices::surface17(), with).compile(circuit);
  const CompilationResult b =
      Compiler(devices::surface17(), without).compile(circuit);
  EXPECT_LE(a.final_metrics.total_gates, b.final_metrics.total_gates);
  EXPECT_TRUE(Compiler::verify(a));
  EXPECT_TRUE(Compiler::verify(b));
}

}  // namespace
}  // namespace qmap
