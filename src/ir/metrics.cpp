#include "ir/metrics.hpp"

#include <algorithm>

#include "ir/dag.hpp"

namespace qmap {

std::string CircuitMetrics::to_string() const {
  std::string out;
  out += "gates=" + std::to_string(total_gates);
  out += " (1q=" + std::to_string(single_qubit_gates);
  out += ", 2q=" + std::to_string(two_qubit_gates);
  out += ", swap=" + std::to_string(swap_gates);
  out += ", cx=" + std::to_string(cx_gates);
  out += ", cz=" + std::to_string(cz_gates);
  out += ", h=" + std::to_string(h_gates);
  out += ", meas=" + std::to_string(measurements);
  out += ") depth=" + std::to_string(depth);
  out += " 2q-depth=" + std::to_string(two_qubit_depth);
  return out;
}

CircuitMetrics compute_metrics(const Circuit& circuit) {
  CircuitMetrics m;
  for (const Gate& gate : circuit) {
    if (gate.kind == GateKind::Barrier) continue;
    ++m.total_gates;
    if (gate.kind == GateKind::Measure) {
      ++m.measurements;
      continue;
    }
    const int arity = gate_info(gate.kind).arity;
    if (arity == 1) ++m.single_qubit_gates;
    if (arity == 2) ++m.two_qubit_gates;
    switch (gate.kind) {
      case GateKind::SWAP: ++m.swap_gates; break;
      case GateKind::CX: ++m.cx_gates; break;
      case GateKind::CZ: ++m.cz_gates; break;
      case GateKind::H: ++m.h_gates; break;
      default: break;
    }
  }
  const DependencyDag dag(circuit);
  m.depth = dag.depth();
  m.two_qubit_depth = static_cast<int>(
      dag.critical_path([&circuit](int i) {
        return circuit.gate(static_cast<std::size_t>(i)).is_two_qubit() ? 1.0
                                                                        : 0.0;
      }) +
      0.5);
  return m;
}

std::map<std::string, std::size_t> gate_histogram(const Circuit& circuit) {
  std::map<std::string, std::size_t> histogram;
  for (const Gate& gate : circuit) {
    ++histogram[std::string(gate_info(gate.kind).name)];
  }
  return histogram;
}

double circuit_latency(
    const Circuit& circuit,
    const std::function<double(const Gate&)>& duration) {
  const DependencyDag dag(circuit);
  return dag.critical_path([&](int i) {
    const Gate& gate = circuit.gate(static_cast<std::size_t>(i));
    return gate.kind == GateKind::Barrier ? 0.0 : duration(gate);
  });
}

std::string MappingOverhead::to_string() const {
  std::string out;
  out += "added_gates=" + std::to_string(added_gates);
  out += " added_2q=" + std::to_string(added_two_qubit_gates);
  out += " added_depth=" + std::to_string(added_depth);
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), " gate_ratio=%.2f depth_ratio=%.2f",
                gate_ratio, depth_ratio);
  out += buffer;
  return out;
}

MappingOverhead compute_overhead(const Circuit& original,
                                 const Circuit& mapped) {
  const CircuitMetrics before = compute_metrics(original);
  const CircuitMetrics after = compute_metrics(mapped);
  MappingOverhead overhead;
  overhead.added_gates = after.total_gates >= before.total_gates
                             ? after.total_gates - before.total_gates
                             : 0;
  overhead.added_two_qubit_gates =
      after.two_qubit_gates >= before.two_qubit_gates
          ? after.two_qubit_gates - before.two_qubit_gates
          : 0;
  overhead.added_depth = std::max(0, after.depth - before.depth);
  if (before.total_gates > 0) {
    overhead.gate_ratio = static_cast<double>(after.total_gates) /
                          static_cast<double>(before.total_gates);
  }
  if (before.depth > 0) {
    overhead.depth_ratio =
        static_cast<double>(after.depth) / static_cast<double>(before.depth);
  }
  return overhead;
}

}  // namespace qmap
