// E1 / Fig. 1 — the running example circuit.
//
// Regenerates both panels of Fig. 1: (a) the full example circuit with its
// single-qubit gates, (b) the CNOT skeleton used by the mapping discussion,
// plus the structural facts the rest of the paper relies on (first CNOT is
// q3->q4 in paper notation; the interaction graph contains a triangle).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "ir/dag.hpp"

namespace {

using namespace qmap;
using namespace qmap::bench;

void print_figure() {
  const Circuit example = workloads::fig1_example();
  section("Fig. 1(a): example quantum circuit");
  std::cout << draw_ascii(example);
  section("Fig. 1(b): CNOT skeleton (single-qubit gates removed)");
  std::cout << draw_ascii(workloads::fig1_skeleton());

  section("Structural facts");
  const CircuitMetrics metrics = compute_metrics(example);
  std::cout << "metrics: " << metrics.to_string() << "\n";
  const DependencyDag dag(example);
  std::cout << "dependency-DAG depth: " << dag.depth()
            << ", initial front layer size: " << dag.ready().size() << "\n";
  const Gate first_cnot = workloads::fig1_skeleton().gate(0);
  std::cout << "first CNOT: " << first_cnot.to_string()
            << "  (paper notation: control q3, target q4)\n";
  paper_note(
      "Sec. IV: under the trivial placement this CNOT is not allowed on "
      "IBM QX4's coupling graph.");
  const Device qx4 = devices::ibm_qx4();
  std::cout << "allowed on QX4 as placed? "
            << (qx4.coupling().orientation_allowed(first_cnot.qubits[0],
                                                   first_cnot.qubits[1])
                    ? "yes (MISMATCH)"
                    : "no (matches the paper)")
            << "\n";
}

void BM_BuildFig1(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(workloads::fig1_example());
  }
}
BENCHMARK(BM_BuildFig1);

void BM_Fig1Metrics(benchmark::State& state) {
  const Circuit example = workloads::fig1_example();
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_metrics(example));
  }
}
BENCHMARK(BM_Fig1Metrics);

void BM_Fig1DependencyDag(benchmark::State& state) {
  const Circuit example = workloads::fig1_example();
  for (auto _ : state) {
    const DependencyDag dag(example);
    benchmark::DoNotOptimize(dag.depth());
  }
}
BENCHMARK(BM_Fig1DependencyDag);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
